//! # `idl-lang` — surface syntax of the Interoperable Database Language
//!
//! Lexer, AST, recursive-descent parser and pretty-printer for the language
//! of *Krishnamurthy, Litwin & Kent, SIGMOD '91*. The grammar implemented is
//! the paper's §4.1 grammar, extended exactly as the paper itself extends it:
//!
//! * **higher-order variables** in attribute position (§4.3):
//!   `?.X.Y(.stkCode)` — `X` ranges over database names, `Y` over relation
//!   names;
//! * **update expressions** `+`/`-` on atomic, tuple and set expressions
//!   (§5.1), including the embedded forms used by the paper's update
//!   programs (`.S-=X`, `-.S`, `.chwab.r(-.S)`);
//! * **rules** `head <- body` defining (possibly higher-order) views (§6);
//! * **update programs** `head -> body` (§7.1);
//! * **arithmetic** in terms (`.clsPrice=C+10`), which §5.2 uses with the
//!   remark that it was left out of the formal grammar.
//!
//! Statements are separated by `;`. Comments run from `%` or `//` to end of
//! line. Variables are words starting with an uppercase letter, constants
//! are everything else (paper §4.1); `_` is an anonymous (fresh) variable.
//!
//! ```
//! use idl_lang::parse_statement;
//! let stmt = parse_statement("?.euter.r(.stkCode=hp, .clsPrice>60)").unwrap();
//! assert_eq!(stmt.to_string(), "?.euter.r(.stkCode = hp, .clsPrice > 60)");
//! ```

#![warn(missing_docs)]

pub mod ast;
pub mod error;
pub mod hash;
pub mod lexer;
pub mod parser;
pub mod printer;
pub mod sugar;
pub mod token;

pub use ast::{
    ArithOp, AttrTerm, ClauseError, Expr, Field, ProgramClause, RelOp, Request, Rule, Sign,
    Statement, Term, Var,
};
pub use error::{ParseError, ParseResult};
pub use hash::{canonical_hash, canonical_hash_items, CanonicalHasher};
pub use parser::{parse_expr, parse_program, parse_statement};
