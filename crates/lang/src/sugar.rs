//! SQL-flavoured syntactic sugar.
//!
//! The paper closes (§8): *"the next step is to incorporate these features
//! in a language with enough syntactic sugar. In particular, our goal is to
//! incorporate them into OSQL."* This module is a small such surface: a
//! SELECT/INSERT/DELETE dialect that *translates to IDL requests*, so the
//! sugar inherits every IDL capability — including querying metadata, since
//! a table name may be a variable:
//!
//! ```text
//! SELECT S, P FROM ource.S WHERE clsPrice = P AND P > 200
//! ```
//!
//! Grammar (case-insensitive keywords):
//!
//! ```text
//! stmt   := SELECT cols FROM table (',' table)* [WHERE cond (AND cond)*]
//!         | INSERT INTO table '(' col (',' col)* ')' VALUES '(' val (',' val)* ')'
//!         | DELETE FROM table [WHERE cond (AND cond)*]
//! table  := name '.' name          -- database.relation; either may be a
//!                                  -- Variable (higher-order!)
//! cols   := out (',' out)*         -- output variables to bind/select
//! cond   := operand relop operand  -- operands: column names, variables,
//!                                  -- literals
//! ```
//!
//! Semantics of the translation:
//! * every table contributes one relation scan; a *column name* used in
//!   `cols` or a condition refers to an attribute of (any) scanned table
//!   carrying that attribute and becomes a fresh IDL variable bound via
//!   `.col = Col`;
//! * using the same column name against two tables joins them (shared
//!   variable), the classic natural-join-by-mention — which also means
//!   every mentioned column must be present in *every* scanned table
//!   (there are no table qualifiers in this small dialect);
//! * uppercase identifiers are IDL variables and pass through, so
//!   higher-order positions work exactly as in IDL.

use crate::ast::{AttrTerm, Expr, Field, RelOp, Request, Sign, Statement, Term, Var};
use crate::error::{ParseError, ParseResult};
use crate::lexer::lex;
use crate::token::{Span, Spanned, Token};
use idl_object::Name;

/// Translates one sugar statement into an IDL [`Statement`].
pub fn parse_sugar(src: &str) -> ParseResult<Statement> {
    let toks = lex(src)?;
    let mut p = Sugar { src, toks, pos: 0 };
    let stmt = p.statement()?;
    p.expect_eof()?;
    Ok(stmt)
}

struct Sugar<'a> {
    src: &'a str,
    toks: Vec<Spanned>,
    pos: usize,
}

#[derive(Clone, Debug)]
struct TableRef {
    db: AttrTerm,
    rel: AttrTerm,
    /// Attribute → variable bound for it (accumulated during translation).
    bound: Vec<(Name, Var)>,
}

#[derive(Clone, Debug)]
enum Operand {
    /// lowercase identifier: a column of some scanned table.
    Column(Name),
    /// uppercase identifier: a pass-through IDL variable.
    Var(Var),
    /// literal value.
    Lit(idl_object::Value),
}

impl<'a> Sugar<'a> {
    fn peek(&self) -> &Token {
        &self.toks[self.pos].token
    }

    fn span(&self) -> Span {
        self.toks[self.pos].span
    }

    fn bump(&mut self) -> Token {
        let t = self.toks[self.pos].token.clone();
        if self.pos + 1 < self.toks.len() {
            self.pos += 1;
        }
        t
    }

    fn err(&self, msg: impl Into<String>) -> ParseError {
        ParseError::new(msg, self.span()).with_source(self.src)
    }

    fn expect_eof(&mut self) -> ParseResult<()> {
        if matches!(self.peek(), Token::Eof | Token::Semi) {
            Ok(())
        } else {
            Err(self.err(format!("unexpected `{}` after statement", self.peek())))
        }
    }

    /// Case-insensitive keyword match on identifiers/variables.
    fn keyword(&mut self, kw: &str) -> bool {
        let matches_kw = match self.peek() {
            Token::Ident(n) => n.as_str().eq_ignore_ascii_case(kw),
            Token::Variable(n) => n.as_str().eq_ignore_ascii_case(kw),
            _ => false,
        };
        if matches_kw {
            self.bump();
        }
        matches_kw
    }

    fn expect_keyword(&mut self, kw: &str) -> ParseResult<()> {
        if self.keyword(kw) {
            Ok(())
        } else {
            Err(self.err(format!("expected `{kw}`, found `{}`", self.peek())))
        }
    }

    fn statement(&mut self) -> ParseResult<Statement> {
        if self.keyword("select") {
            self.select()
        } else if self.keyword("insert") {
            self.insert()
        } else if self.keyword("delete") {
            self.delete()
        } else {
            Err(self.err("expected SELECT, INSERT or DELETE"))
        }
    }

    // ---- SELECT ---------------------------------------------------------

    fn select(&mut self) -> ParseResult<Statement> {
        let outputs = self.operand_list()?;
        self.expect_keyword("from")?;
        let mut tables = vec![self.table()?];
        while matches!(self.peek(), Token::Comma) {
            self.bump();
            tables.push(self.table()?);
        }
        let mut conds = if self.keyword("where") { self.conditions()? } else { Vec::new() };
        normalise_bare_words(&outputs, &mut conds);

        // Bind every column mentioned anywhere.
        let mut constraints: Vec<Expr> = Vec::new();
        for out in &outputs {
            if let Operand::Column(c) = out {
                bind_column(&mut tables, c);
            }
        }
        for (lhs, op, rhs) in &conds {
            for o in [lhs, rhs] {
                if let Operand::Column(c) = o {
                    bind_column(&mut tables, c);
                }
            }
            let lt = self.operand_term(lhs, &tables)?;
            let rt = self.operand_term(rhs, &tables)?;
            constraints.push(Expr::Constraint(lt, *op, rt));
        }

        let mut items: Vec<Expr> = tables.iter().map(table_scan).collect();
        items.extend(constraints);
        Ok(Statement::Request(Request::new(items)))
    }

    // ---- INSERT ---------------------------------------------------------

    fn insert(&mut self) -> ParseResult<Statement> {
        self.expect_keyword("into")?;
        let table = self.table()?;
        self.expect(Token::LParen)?;
        let mut cols = vec![self.column_name()?];
        while matches!(self.peek(), Token::Comma) {
            self.bump();
            cols.push(self.column_name()?);
        }
        self.expect(Token::RParen)?;
        self.expect_keyword("values")?;
        self.expect(Token::LParen)?;
        let mut vals = vec![self.literal()?];
        while matches!(self.peek(), Token::Comma) {
            self.bump();
            vals.push(self.literal()?);
        }
        self.expect(Token::RParen)?;
        if cols.len() != vals.len() {
            return Err(self.err(format!("{} columns but {} values", cols.len(), vals.len())));
        }
        let fields = cols
            .into_iter()
            .zip(vals)
            .map(|(c, v)| Field::q(AttrTerm::Const(c), Expr::Atomic(RelOp::Eq, Term::Const(v))))
            .collect();
        let insert = Expr::SetUpdate(Sign::Plus, Box::new(Expr::Tuple(fields)));
        Ok(Statement::Request(Request::new(vec![wrap_table(&table, insert)])))
    }

    // ---- DELETE ---------------------------------------------------------

    fn delete(&mut self) -> ParseResult<Statement> {
        self.expect_keyword("from")?;
        let mut table = self.table()?;
        let mut conds = if self.keyword("where") { self.conditions()? } else { Vec::new() };
        normalise_bare_words(&[], &mut conds);
        // Conditions on columns become fields of the minus payload when
        // they are simple equalities against literals; anything else binds
        // and constrains via a preceding query item.
        let mut payload_fields: Vec<Field> = Vec::new();
        let pre_items: Vec<Expr> = Vec::new();
        let mut constraints: Vec<Expr> = Vec::new();
        for (lhs, op, rhs) in &conds {
            match (lhs, op, rhs) {
                (Operand::Column(c), RelOp::Eq, Operand::Lit(v))
                | (Operand::Lit(v), RelOp::Eq, Operand::Column(c)) => {
                    payload_fields.push(Field::q(
                        AttrTerm::Const(c.clone()),
                        Expr::Atomic(RelOp::Eq, Term::Const(v.clone())),
                    ));
                }
                (Operand::Column(c), op, Operand::Lit(v)) => {
                    // e.g. DELETE … WHERE price > 100 — the condition can
                    // live directly in the minus payload as a non-simple
                    // expression? §5.1 requires simple payloads, so bind
                    // the column first and constrain.
                    bind_column_one(&mut table, c);
                    let var = lookup(&table, c).expect("just bound");
                    payload_fields.push(Field::q(
                        AttrTerm::Const(c.clone()),
                        Expr::Atomic(RelOp::Eq, Term::Var(var.clone())),
                    ));
                    let _ = pre_items.len();
                    constraints.push(Expr::Constraint(Term::Var(var), *op, Term::Const(v.clone())));
                }
                _ => return Err(self.err("unsupported DELETE condition")),
            }
        }
        let mut items = Vec::new();
        if !constraints.is_empty() {
            // bind via a scan, filter, then delete per binding
            items.push(table_scan(&table));
            items.extend(constraints);
        }
        let delete = Expr::SetUpdate(Sign::Minus, Box::new(Expr::Tuple(payload_fields)));
        items.push(wrap_table(&table, delete));
        Ok(Statement::Request(Request::new(items)))
    }

    // ---- pieces ---------------------------------------------------------

    fn table(&mut self) -> ParseResult<TableRef> {
        let db = self.name_or_var()?;
        self.expect(Token::Dot)?;
        let rel = self.name_or_var()?;
        Ok(TableRef { db, rel, bound: Vec::new() })
    }

    fn name_or_var(&mut self) -> ParseResult<AttrTerm> {
        match self.bump() {
            Token::Ident(n) => Ok(AttrTerm::Const(n)),
            Token::Variable(n) => Ok(AttrTerm::Var(Var(n))),
            t => Err(self.err(format!("expected a name, found `{t}`"))),
        }
    }

    fn column_name(&mut self) -> ParseResult<Name> {
        match self.bump() {
            Token::Ident(n) => Ok(n),
            t => Err(self.err(format!("expected a column name, found `{t}`"))),
        }
    }

    fn operand_list(&mut self) -> ParseResult<Vec<Operand>> {
        let mut out = vec![self.operand()?];
        while matches!(self.peek(), Token::Comma) {
            self.bump();
            out.push(self.operand()?);
        }
        Ok(out)
    }

    fn operand(&mut self) -> ParseResult<Operand> {
        match self.bump() {
            Token::Ident(n) => Ok(Operand::Column(n)),
            Token::Variable(n) => Ok(Operand::Var(Var(n))),
            Token::Int(i) => Ok(Operand::Lit(idl_object::Value::int(i))),
            Token::Float(f) => Ok(Operand::Lit(idl_object::Value::float(f))),
            Token::Str(s) => Ok(Operand::Lit(idl_object::Value::str(s))),
            Token::DateLit(d) => Ok(Operand::Lit(idl_object::Value::date(d))),
            Token::True => Ok(Operand::Lit(idl_object::Value::bool(true))),
            Token::False => Ok(Operand::Lit(idl_object::Value::bool(false))),
            Token::Null => Ok(Operand::Lit(idl_object::Value::null())),
            t => Err(self.err(format!("expected an operand, found `{t}`"))),
        }
    }

    fn literal(&mut self) -> ParseResult<idl_object::Value> {
        match self.operand()? {
            Operand::Lit(v) => Ok(v),
            Operand::Column(n) => Ok(idl_object::Value::from(n)), // bare word = string
            Operand::Var(v) => Err(self.err(format!("variable {v} not allowed in VALUES"))),
        }
    }

    fn conditions(&mut self) -> ParseResult<Vec<(Operand, RelOp, Operand)>> {
        let mut out = Vec::new();
        loop {
            let lhs = self.operand()?;
            let op = match self.bump() {
                Token::Lt => RelOp::Lt,
                Token::Le => RelOp::Le,
                Token::Eq => RelOp::Eq,
                Token::Ne => RelOp::Ne,
                Token::Gt => RelOp::Gt,
                Token::Ge => RelOp::Ge,
                t => return Err(self.err(format!("expected a comparison, found `{t}`"))),
            };
            let rhs = self.operand()?;
            out.push((lhs, op, rhs));
            if !self.keyword("and") {
                break;
            }
        }
        Ok(out)
    }

    fn operand_term(&self, o: &Operand, tables: &[TableRef]) -> ParseResult<Term> {
        match o {
            Operand::Lit(v) => Ok(Term::Const(v.clone())),
            Operand::Var(v) => Ok(Term::Var(v.clone())),
            Operand::Column(c) => {
                for t in tables {
                    if let Some(v) = lookup(t, c) {
                        return Ok(Term::Var(v));
                    }
                }
                Err(ParseError::new(format!("column {c} not bound"), Span::default()))
            }
        }
    }

    fn expect(&mut self, t: Token) -> ParseResult<()> {
        if *self.peek() == t {
            self.bump();
            Ok(())
        } else {
            Err(self.err(format!("expected `{t}`, found `{}`", self.peek())))
        }
    }
}

/// SQL-ish leniency: a bare lowercase word on one side of a condition is a
/// *column* only if that word is also used as a column elsewhere (an
/// output, or the other side's partner in some condition's left position);
/// otherwise it is a string literal — `WHERE stkCode = hp` means the
/// constant `hp`.
fn normalise_bare_words(outputs: &[Operand], conds: &mut [(Operand, RelOp, Operand)]) {
    use std::collections::BTreeSet;
    let mut known: BTreeSet<Name> = BTreeSet::new();
    for o in outputs {
        if let Operand::Column(c) = o {
            known.insert(c.clone());
        }
    }
    for (lhs, _, _) in conds.iter() {
        if let Operand::Column(c) = lhs {
            known.insert(c.clone());
        }
    }
    for (_, _, rhs) in conds.iter_mut() {
        if let Operand::Column(c) = rhs {
            if !known.contains(c) {
                *rhs = Operand::Lit(idl_object::Value::from(c.clone()));
            }
        }
    }
}

/// Column variable name: capitalised column (`clsPrice` → `ClsPrice`).
fn column_var(c: &Name) -> Var {
    let s = c.as_str();
    let mut chars = s.chars();
    let cap: String = match chars.next() {
        Some(f) => f.to_ascii_uppercase().to_string() + chars.as_str(),
        None => String::new(),
    };
    Var::new(format!("{cap}_"))
}

fn lookup(t: &TableRef, c: &Name) -> Option<Var> {
    t.bound.iter().find(|(n, _)| n == c).map(|(_, v)| v.clone())
}

/// Binds a column in *every* table (shared variable = natural join by
/// mention, the SELECT translation).
fn bind_column(tables: &mut [TableRef], c: &Name) {
    let var = column_var(c);
    for t in tables.iter_mut() {
        if lookup(t, c).is_none() {
            t.bound.push((c.clone(), var.clone()));
        }
    }
}

fn bind_column_one(t: &mut TableRef, c: &Name) {
    if lookup(t, c).is_none() {
        t.bound.push((c.clone(), column_var(c)));
    }
}

/// `.db.rel( .col = Var, … )`
fn table_scan(t: &TableRef) -> Expr {
    let fields = t
        .bound
        .iter()
        .map(|(c, v)| {
            Field::q(AttrTerm::Const(c.clone()), Expr::Atomic(RelOp::Eq, Term::Var(v.clone())))
        })
        .collect::<Vec<_>>();
    let inner = Expr::Set(Box::new(Expr::Tuple(fields)));
    wrap_table(t, inner)
}

fn wrap_table(t: &TableRef, inner: Expr) -> Expr {
    Expr::Tuple(vec![Field {
        sign: None,
        attr: t.db.clone(),
        expr: Expr::Tuple(vec![Field { sign: None, attr: t.rel.clone(), expr: inner }]),
    }])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idl(src: &str) -> String {
        parse_sugar(src).unwrap_or_else(|e| panic!("{src}: {e}")).to_string()
    }

    #[test]
    fn simple_select() {
        assert_eq!(
            idl("SELECT stkCode FROM euter.r WHERE clsPrice > 200"),
            "?.euter.r(.stkCode = StkCode_, .clsPrice = ClsPrice_), ClsPrice_ > 200"
        );
    }

    #[test]
    fn select_with_equality_literal() {
        assert_eq!(
            idl("SELECT clsPrice FROM euter.r WHERE stkCode = \"hp\""),
            "?.euter.r(.clsPrice = ClsPrice_, .stkCode = StkCode_), StkCode_ = hp"
        );
    }

    #[test]
    fn join_by_shared_column() {
        // the same column mentioned against two tables joins them
        let s = idl("SELECT date FROM euter.r, chwab.r WHERE clsPrice > 100");
        assert!(s.contains(".euter.r(.date = Date_, .clsPrice = ClsPrice_)"), "{s}");
        assert!(s.contains(".chwab.r(.date = Date_, .clsPrice = ClsPrice_)"), "{s}");
    }

    #[test]
    fn higher_order_table_name() {
        // table name may be a variable — metadata querying through SQL!
        assert_eq!(
            idl("SELECT S, clsPrice FROM ource.S WHERE clsPrice > 200"),
            "?.ource.S(.clsPrice = ClsPrice_), ClsPrice_ > 200"
        );
    }

    #[test]
    fn insert_translates_to_set_plus() {
        assert_eq!(
            idl("INSERT INTO euter.r (date, stkCode, clsPrice) VALUES (3/3/85, hp, 50)"),
            "?.euter.r+(.date = 3/3/85, .stkCode = hp, .clsPrice = 50)"
        );
    }

    #[test]
    fn delete_with_equalities() {
        assert_eq!(
            idl("DELETE FROM euter.r WHERE stkCode = hp AND date = 3/3/85"),
            "?.euter.r-(.stkCode = hp, .date = 3/3/85)"
        );
    }

    #[test]
    fn delete_with_range_binds_first() {
        let s = idl("DELETE FROM euter.r WHERE clsPrice > 100");
        assert!(s.contains("ClsPrice_ > 100"), "{s}");
        assert!(s.contains(".euter.r-(.clsPrice = ClsPrice_)"), "{s}");
    }

    #[test]
    fn errors_are_reported() {
        assert!(parse_sugar("SELECT FROM euter.r").is_err());
        assert!(parse_sugar("INSERT INTO euter.r (a,b) VALUES (1)").is_err());
        assert!(parse_sugar("UPDATE euter.r SET x = 1").is_err());
        assert!(parse_sugar("SELECT a FROM justonename").is_err());
    }

    #[test]
    fn keywords_case_insensitive() {
        assert_eq!(
            idl("select stkCode from euter.r where clsPrice > 200"),
            idl("SELECT stkCode FROM euter.r WHERE clsPrice > 200")
        );
    }
}
