//! Parse errors with source positions.

use crate::token::Span;
use std::fmt;

/// An error produced by the lexer or parser.
#[derive(Clone, PartialEq, Debug)]
pub struct ParseError {
    /// Human-readable description.
    pub message: String,
    /// Where in the input the error was detected.
    pub span: Span,
    /// The offending source line (for display), if available.
    pub context: Option<String>,
}

impl ParseError {
    /// Builds an error at a span.
    pub fn new(message: impl Into<String>, span: Span) -> Self {
        ParseError { message: message.into(), span, context: None }
    }

    /// Attaches the source text so `Display` can show line/column context.
    pub fn with_source(mut self, src: &str) -> Self {
        let start = self.span.start.min(src.len());
        let line_start = src[..start].rfind('\n').map_or(0, |i| i + 1);
        let line_end = src[start..].find('\n').map_or(src.len(), |i| start + i);
        self.context = Some(src[line_start..line_end].to_string());
        self
    }

    /// 1-based line and column of the error start, given the source text.
    pub fn line_col(&self, src: &str) -> (usize, usize) {
        let start = self.span.start.min(src.len());
        let line = src[..start].matches('\n').count() + 1;
        let col = start - src[..start].rfind('\n').map_or(0, |i| i + 1) + 1;
        (line, col)
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at byte {}: {}", self.span.start, self.message)?;
        if let Some(ctx) = &self.context {
            write!(f, "\n  | {ctx}")?;
        }
        Ok(())
    }
}

impl std::error::Error for ParseError {}

/// Result alias for parse operations.
pub type ParseResult<T> = Result<T, ParseError>;
