//! Hand-written lexer for IDL surface syntax.

use crate::error::{ParseError, ParseResult};
use crate::token::{Span, Spanned, Token};
use idl_object::{Date, Name};

/// Tokenises an entire source string.
pub fn lex(src: &str) -> ParseResult<Vec<Spanned>> {
    Lexer::new(src).run()
}

struct Lexer<'a> {
    src: &'a str,
    bytes: &'a [u8],
    pos: usize,
    out: Vec<Spanned>,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Self {
        Lexer { src, bytes: src.as_bytes(), pos: 0, out: Vec::new() }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn peek2(&self) -> Option<u8> {
        self.bytes.get(self.pos + 1).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn emit(&mut self, token: Token, start: usize) {
        self.out.push(Spanned { token, span: Span::new(start, self.pos) });
    }

    fn err(&self, msg: impl Into<String>, start: usize) -> ParseError {
        ParseError::new(msg, Span::new(start, self.pos)).with_source(self.src)
    }

    fn skip_trivia(&mut self) {
        loop {
            match self.peek() {
                Some(b) if (b as char).is_whitespace() => {
                    self.pos += 1;
                }
                Some(b'%') => self.skip_line(),
                Some(b'/') if self.peek2() == Some(b'/') => self.skip_line(),
                _ => break,
            }
        }
    }

    fn skip_line(&mut self) {
        while let Some(b) = self.peek() {
            self.pos += 1;
            if b == b'\n' {
                break;
            }
        }
    }

    fn run(mut self) -> ParseResult<Vec<Spanned>> {
        loop {
            self.skip_trivia();
            let start = self.pos;
            let Some(b) = self.peek() else {
                self.emit(Token::Eof, start);
                return Ok(self.out);
            };
            match b {
                b'?' => {
                    self.bump();
                    self.emit(Token::Question, start);
                }
                b'.' => {
                    self.bump();
                    self.emit(Token::Dot, start);
                }
                b',' => {
                    self.bump();
                    self.emit(Token::Comma, start);
                }
                b';' => {
                    self.bump();
                    self.emit(Token::Semi, start);
                }
                b'(' => {
                    self.bump();
                    self.emit(Token::LParen, start);
                }
                b')' => {
                    self.bump();
                    self.emit(Token::RParen, start);
                }
                b'+' => {
                    self.bump();
                    self.emit(Token::Plus, start);
                }
                b'*' => {
                    self.bump();
                    self.emit(Token::Star, start);
                }
                b'/' => {
                    self.bump();
                    self.emit(Token::Slash, start);
                }
                b'-' => {
                    self.bump();
                    if self.peek() == Some(b'>') {
                        self.bump();
                        self.emit(Token::ProgArrow, start);
                    } else {
                        self.emit(Token::Minus, start);
                    }
                }
                b'<' => {
                    self.bump();
                    match self.peek() {
                        Some(b'-') => {
                            self.bump();
                            self.emit(Token::RuleArrow, start);
                        }
                        Some(b'=') => {
                            self.bump();
                            self.emit(Token::Le, start);
                        }
                        Some(b'>') => {
                            self.bump();
                            self.emit(Token::Ne, start);
                        }
                        _ => self.emit(Token::Lt, start),
                    }
                }
                b'>' => {
                    self.bump();
                    if self.peek() == Some(b'=') {
                        self.bump();
                        self.emit(Token::Ge, start);
                    } else {
                        self.emit(Token::Gt, start);
                    }
                }
                b'=' => {
                    self.bump();
                    self.emit(Token::Eq, start);
                }
                b'!' => {
                    self.bump();
                    if self.peek() == Some(b'=') {
                        self.bump();
                        self.emit(Token::Ne, start);
                    } else {
                        self.emit(Token::Not, start);
                    }
                }
                b'"' | b'\'' => self.string(b)?,
                b'0'..=b'9' => self.number()?,
                _ if b.is_ascii_alphabetic() || b == b'_' => self.word(),
                _ => {
                    // Multi-byte operators: ¬ (U+00AC), ≤, ≥, ≠, ←, →
                    let rest = &self.src[self.pos..];
                    let (tok, len) = if let Some(s) = rest.strip_prefix('¬') {
                        let _ = s;
                        (Token::Not, '¬'.len_utf8())
                    } else if rest.starts_with('≤') {
                        (Token::Le, '≤'.len_utf8())
                    } else if rest.starts_with('≥') {
                        (Token::Ge, '≥'.len_utf8())
                    } else if rest.starts_with('≠') {
                        (Token::Ne, '≠'.len_utf8())
                    } else if rest.starts_with('←') {
                        (Token::RuleArrow, '←'.len_utf8())
                    } else if rest.starts_with('→') {
                        (Token::ProgArrow, '→'.len_utf8())
                    } else {
                        self.pos += rest.chars().next().map_or(1, char::len_utf8);
                        return Err(self.err(
                            format!("unexpected character {:?}", rest.chars().next().unwrap()),
                            start,
                        ));
                    };
                    self.pos += len;
                    self.emit(tok, start);
                }
            }
        }
    }

    /// Numbers and date literals. A date is `d+ '/' d+ '/' d+` with no
    /// intervening spaces (the paper's `3/3/85`); division must therefore be
    /// written with spaces around `/`.
    fn number(&mut self) -> ParseResult<()> {
        let start = self.pos;
        while self.peek().is_some_and(|b| b.is_ascii_digit()) {
            self.bump();
        }
        // date literal?
        if self.peek() == Some(b'/') && self.peek2().is_some_and(|b| b.is_ascii_digit()) {
            let save = self.pos;
            self.bump(); // '/'
            while self.peek().is_some_and(|b| b.is_ascii_digit()) {
                self.bump();
            }
            if self.peek() == Some(b'/') && self.peek2().is_some_and(|b| b.is_ascii_digit()) {
                self.bump();
                while self.peek().is_some_and(|b| b.is_ascii_digit()) {
                    self.bump();
                }
                let text = &self.src[start..self.pos];
                let date: Date = text.parse().map_err(|e| self.err(format!("{e}"), start))?;
                self.emit(Token::DateLit(date), start);
                return Ok(());
            }
            // not a date after all: rewind to before '/'
            self.pos = save;
        }
        // ISO date literal? `yyyy-mm-dd` (digits '-' digits '-' digits).
        // Only recognised when a '-' directly follows digits and the whole
        // pattern matches; otherwise '-' stays an operator.
        if self.peek() == Some(b'-') && self.peek2().is_some_and(|b| b.is_ascii_digit()) {
            let save = self.pos;
            self.bump();
            while self.peek().is_some_and(|b| b.is_ascii_digit()) {
                self.bump();
            }
            if self.peek() == Some(b'-') && self.peek2().is_some_and(|b| b.is_ascii_digit()) {
                self.bump();
                while self.peek().is_some_and(|b| b.is_ascii_digit()) {
                    self.bump();
                }
                let text = &self.src[start..self.pos];
                if let Ok(date) = text.parse::<Date>() {
                    self.emit(Token::DateLit(date), start);
                    return Ok(());
                }
            }
            self.pos = save;
        }
        // float?
        if self.peek() == Some(b'.') && self.peek2().is_some_and(|b| b.is_ascii_digit()) {
            self.bump();
            while self.peek().is_some_and(|b| b.is_ascii_digit()) {
                self.bump();
            }
            let text = &self.src[start..self.pos];
            let v: f64 = text.parse().map_err(|_| self.err("bad float literal", start))?;
            self.emit(Token::Float(v), start);
            return Ok(());
        }
        let text = &self.src[start..self.pos];
        let v: i64 = text.parse().map_err(|_| self.err("integer literal out of range", start))?;
        self.emit(Token::Int(v), start);
        Ok(())
    }

    fn word(&mut self) {
        let start = self.pos;
        while self.peek().is_some_and(|b| b.is_ascii_alphanumeric() || b == b'_') {
            self.bump();
        }
        let text = &self.src[start..self.pos];
        let token = match text {
            "null" => Token::Null,
            "true" => Token::True,
            "false" => Token::False,
            _ => {
                let first = text.chars().next().unwrap();
                if first.is_ascii_uppercase() || text == "_" || text.starts_with('_') {
                    Token::Variable(Name::new(text))
                } else {
                    Token::Ident(Name::new(text))
                }
            }
        };
        self.emit(token, start);
    }

    fn string(&mut self, quote: u8) -> ParseResult<()> {
        let start = self.pos;
        self.bump(); // opening quote
        let mut s = String::new();
        loop {
            match self.bump() {
                None => return Err(self.err("unterminated string literal", start)),
                Some(b) if b == quote => break,
                Some(b'\\') => match self.bump() {
                    Some(b'n') => s.push('\n'),
                    Some(b't') => s.push('\t'),
                    Some(b'\\') => s.push('\\'),
                    Some(b) if b == quote => s.push(b as char),
                    _ => return Err(self.err("bad escape in string literal", start)),
                },
                Some(b) if b.is_ascii() => s.push(b as char),
                Some(_) => {
                    // Re-sync to char boundary for multibyte UTF-8.
                    let ch_start = self.pos - 1;
                    while !self.src.is_char_boundary(self.pos) {
                        self.pos += 1;
                    }
                    s.push_str(&self.src[ch_start..self.pos]);
                }
            }
        }
        self.emit(Token::Str(s), start);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Token> {
        lex(src).unwrap().into_iter().map(|s| s.token).collect()
    }

    #[test]
    fn paper_query_lexes() {
        let t = toks("?.euter.r(.stkCode=hp, .clsPrice>60)");
        assert_eq!(
            t,
            vec![
                Token::Question,
                Token::Dot,
                Token::Ident("euter".into()),
                Token::Dot,
                Token::Ident("r".into()),
                Token::LParen,
                Token::Dot,
                Token::Ident("stkCode".into()),
                Token::Eq,
                Token::Ident("hp".into()),
                Token::Comma,
                Token::Dot,
                Token::Ident("clsPrice".into()),
                Token::Gt,
                Token::Int(60),
                Token::RParen,
                Token::Eof,
            ]
        );
    }

    #[test]
    fn date_literals() {
        let t = toks("3/3/85");
        assert!(matches!(t[0], Token::DateLit(_)));
        let t = toks("1985-03-03");
        assert!(matches!(t[0], Token::DateLit(_)));
        // division with spaces is not a date
        let t = toks("6 / 2");
        assert_eq!(t, vec![Token::Int(6), Token::Slash, Token::Int(2), Token::Eof]);
        // two-component slash is not a date either
        let t = toks("6/2");
        assert_eq!(t, vec![Token::Int(6), Token::Slash, Token::Int(2), Token::Eof]);
    }

    #[test]
    fn variables_vs_identifiers() {
        let t = toks("X stkCode Y2 _ _tmp");
        assert!(matches!(&t[0], Token::Variable(n) if n == "X"));
        assert!(matches!(&t[1], Token::Ident(n) if n == "stkCode"));
        assert!(matches!(&t[2], Token::Variable(n) if n == "Y2"));
        assert!(matches!(&t[3], Token::Variable(n) if n == "_"));
        assert!(matches!(&t[4], Token::Variable(n) if n == "_tmp"));
    }

    #[test]
    fn arrows_and_ops() {
        assert_eq!(
            toks("<- -> <= >= != <> ¬ ≤ ≥ ≠ ← →"),
            vec![
                Token::RuleArrow,
                Token::ProgArrow,
                Token::Le,
                Token::Ge,
                Token::Ne,
                Token::Ne,
                Token::Not,
                Token::Le,
                Token::Ge,
                Token::Ne,
                Token::RuleArrow,
                Token::ProgArrow,
                Token::Eof
            ]
        );
    }

    #[test]
    fn update_forms() {
        let t = toks("+(.a=1) -.S -=5 .S-=X");
        assert_eq!(t[0], Token::Plus);
        assert!(t.contains(&Token::Minus));
    }

    #[test]
    fn comments_skipped() {
        let t = toks("% a comment\n?.a // trailing\n.b");
        assert_eq!(t[0], Token::Question);
        assert_eq!(t.len(), 6); // ? . a . b eof
    }

    #[test]
    fn strings_and_numbers() {
        let t = toks(r#""hello world" 'x y' 3.25 42"#);
        assert_eq!(t[0], Token::Str("hello world".into()));
        assert_eq!(t[1], Token::Str("x y".into()));
        assert_eq!(t[2], Token::Float(3.25));
        assert_eq!(t[3], Token::Int(42));
    }

    #[test]
    fn error_position() {
        let err = lex("?.a @").unwrap_err();
        assert_eq!(err.span.start, 4);
        assert!(err.to_string().contains("unexpected character"));
    }

    #[test]
    fn float_requires_digit_after_dot() {
        // `60.` followed by an attribute: `.x` must stay a Dot token
        let t = toks("60 .x");
        assert_eq!(t[0], Token::Int(60));
        assert_eq!(t[1], Token::Dot);
    }
}
