//! Recursive-descent parser for IDL.
//!
//! Grammar (paper §4.1/§5.1 plus the paper's own usages):
//!
//! ```text
//! program   := statement (';' statement)* ';'? EOF
//! statement := '?' item (',' item)*                  -- query / update request
//!            | expr '<-' [item (',' item)*]          -- rule (view definition)
//!            | expr '->' [item (',' item)*]          -- update-program clause
//! item      := field                                 -- expression on the universe
//!            | term relop term                       -- constraint (?.X.Y, X = ource)
//!            | expr
//! expr      := ('¬'|'!') expr
//!            | sign expr'                            -- update forms
//!            | relop term                            -- atomic expression
//!            | field+                                -- tuple expression
//!            | '(' conjunct ')'                      -- set expression
//!            | ε
//! field     := [sign] '.' attrterm suffix
//! suffix    := '.' attrterm suffix                   -- path chaining
//!            | '(' conjunct ')' | '¬' suffix | sign …| relop term | ε
//! conjunct  := element (',' element)*                -- all fields → tuple expr
//! term      := arithmetic over constants & variables (no leading '.')
//! ```

use crate::ast::*;
use crate::error::{ParseError, ParseResult};
use crate::lexer::lex;
use crate::token::{Span, Spanned, Token};
use idl_object::Value;

/// Parses a whole multi-statement program (statements separated by `;`).
pub fn parse_program(src: &str) -> ParseResult<Vec<Statement>> {
    let mut p = Parser::new(src)?;
    let mut stmts = Vec::new();
    loop {
        while p.eat(&Token::Semi) {}
        if p.check(&Token::Eof) {
            break;
        }
        stmts.push(p.statement()?);
        if !p.check(&Token::Eof) {
            p.expect(Token::Semi)?;
        }
    }
    Ok(stmts)
}

/// Parses a single statement.
pub fn parse_statement(src: &str) -> ParseResult<Statement> {
    let mut p = Parser::new(src)?;
    let s = p.statement()?;
    p.expect(Token::Eof)?;
    Ok(s)
}

/// Parses a single expression (mostly for tests and the REPL-ish examples).
pub fn parse_expr(src: &str) -> ParseResult<Expr> {
    let mut p = Parser::new(src)?;
    let e = p.item()?;
    p.expect(Token::Eof)?;
    Ok(e)
}

struct Parser<'a> {
    src: &'a str,
    toks: Vec<Spanned>,
    pos: usize,
    fresh: u32,
}

impl<'a> Parser<'a> {
    fn new(src: &'a str) -> ParseResult<Self> {
        Ok(Parser { src, toks: lex(src)?, pos: 0, fresh: 0 })
    }

    fn peek(&self) -> &Token {
        &self.toks[self.pos].token
    }

    fn peek_at(&self, n: usize) -> &Token {
        let i = (self.pos + n).min(self.toks.len() - 1);
        &self.toks[i].token
    }

    fn span(&self) -> Span {
        self.toks[self.pos].span
    }

    fn bump(&mut self) -> Token {
        let t = self.toks[self.pos].token.clone();
        if self.pos + 1 < self.toks.len() {
            self.pos += 1;
        }
        t
    }

    fn check(&self, t: &Token) -> bool {
        self.peek() == t
    }

    fn eat(&mut self, t: &Token) -> bool {
        if self.check(t) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, t: Token) -> ParseResult<()> {
        if self.eat(&t) {
            Ok(())
        } else {
            Err(self.err(format!("expected `{t}`, found `{}`", self.peek())))
        }
    }

    fn err(&self, msg: impl Into<String>) -> ParseError {
        ParseError::new(msg, self.span()).with_source(self.src)
    }

    fn fresh_var(&mut self) -> Var {
        self.fresh += 1;
        Var::gensym(self.fresh)
    }

    // ---- statements -------------------------------------------------

    fn statement(&mut self) -> ParseResult<Statement> {
        if self.eat(&Token::Question) {
            let items = self.items()?;
            if items.is_empty() {
                return Err(self.err("empty request"));
            }
            return Ok(Statement::Request(Request::new(items)));
        }
        // rule or update program: head arrow body
        let head = self.item()?;
        if self.eat(&Token::RuleArrow) {
            let body = self.items()?;
            let head = normalise_rule_head(head);
            let rule = Rule::new(head, body).map_err(|e| self.err(e.to_string()))?;
            Ok(Statement::Rule(rule))
        } else if self.eat(&Token::ProgArrow) {
            let body = self.items()?;
            let clause = ProgramClause::new(head, body).map_err(|e| self.err(e.to_string()))?;
            Ok(Statement::Program(clause))
        } else {
            Err(self
                .err(format!("expected `<-` or `->` after clause head, found `{}`", self.peek())))
        }
    }

    fn items(&mut self) -> ParseResult<Vec<Expr>> {
        let mut items = Vec::new();
        if self.item_can_start() {
            items.push(self.item()?);
            while self.eat(&Token::Comma) {
                items.push(self.item()?);
            }
        }
        Ok(items)
    }

    fn item_can_start(&self) -> bool {
        !matches!(self.peek(), Token::Semi | Token::Eof | Token::RuleArrow | Token::ProgArrow)
    }

    /// One top-level conjunct: a universe expression or a term constraint.
    fn item(&mut self) -> ParseResult<Expr> {
        // Constraint form: starts with a term-ish token (possibly a unary
        // minus) and a relop follows (e.g. `X = ource`, `-5 - Y = Z`).
        let minus_term_start = self.check(&Token::Minus)
            && matches!(
                self.peek_at(1),
                Token::Int(_) | Token::Float(_) | Token::Variable(_) | Token::LParen
            );
        // A parenthesised arithmetic lhs also starts a constraint;
        // `constraint_ahead` tells it apart from a set expression.
        let paren_start = self.check(&Token::LParen);
        if (self.term_can_start() || minus_term_start || paren_start) && self.constraint_ahead() {
            let lhs = self.term()?;
            let op = self.relop().ok_or_else(|| self.err("expected comparison operator"))?;
            let rhs = self.term()?;
            return Ok(Expr::Constraint(lhs, op, rhs));
        }
        self.expr()
    }

    fn term_can_start(&self) -> bool {
        matches!(
            self.peek(),
            Token::Variable(_)
                | Token::Ident(_)
                | Token::Int(_)
                | Token::Float(_)
                | Token::Str(_)
                | Token::DateLit(_)
                | Token::Null
                | Token::True
                | Token::False
        )
    }

    /// Lookahead: does a relop appear after a (possibly arithmetic) term
    /// prefix at the current position? Conservative scan over term tokens.
    fn constraint_ahead(&self) -> bool {
        let mut i = 0usize;
        let mut depth = 0i32;
        loop {
            match self.peek_at(i) {
                Token::LParen => depth += 1,
                Token::RParen if depth > 0 => depth -= 1,
                Token::Variable(_)
                | Token::Ident(_)
                | Token::Int(_)
                | Token::Float(_)
                | Token::Str(_)
                | Token::DateLit(_)
                | Token::Null
                | Token::True
                | Token::False
                | Token::Plus
                | Token::Minus
                | Token::Star
                | Token::Slash => {}
                Token::Lt | Token::Le | Token::Eq | Token::Ne | Token::Gt | Token::Ge
                    if depth == 0 =>
                {
                    return true;
                }
                _ => return false,
            }
            i += 1;
            if i > 64 {
                return false; // give up on pathological lookahead
            }
        }
    }

    // ---- expressions -------------------------------------------------

    fn expr(&mut self) -> ParseResult<Expr> {
        match self.peek().clone() {
            Token::Not => {
                self.bump();
                let inner = self.expr()?;
                Ok(Expr::Not(Box::new(inner)))
            }
            Token::Plus => {
                self.bump();
                self.signed_tail(Sign::Plus)
            }
            Token::Minus => {
                self.bump();
                self.signed_tail(Sign::Minus)
            }
            Token::Dot => {
                let f = self.field_after_optional_sign(None)?;
                Ok(Expr::Tuple(vec![f]))
            }
            Token::LParen => {
                self.bump();
                let inner = self.conjunct()?;
                self.expect(Token::RParen)?;
                Ok(Expr::Set(Box::new(inner)))
            }
            Token::Lt | Token::Le | Token::Eq | Token::Ne | Token::Gt | Token::Ge => {
                let op = self.relop().unwrap();
                let t = self.term()?;
                Ok(Expr::Atomic(op, t))
            }
            t if self.expr_follow(&t) => Ok(Expr::Epsilon),
            t => Err(self.err(format!("expected expression, found `{t}`"))),
        }
    }

    /// After a `+`/`-` sign: `(exp)`, `=term`, or `.field`.
    fn signed_tail(&mut self, sign: Sign) -> ParseResult<Expr> {
        match self.peek() {
            Token::LParen => {
                self.bump();
                let inner = self.conjunct()?;
                self.expect(Token::RParen)?;
                Ok(Expr::SetUpdate(sign, Box::new(inner)))
            }
            Token::Eq => {
                self.bump();
                let t = self.term()?;
                Ok(Expr::AtomicUpdate(sign, t))
            }
            Token::Dot => {
                let f = self.field_after_optional_sign(Some(sign))?;
                Ok(Expr::Tuple(vec![f]))
            }
            t => Err(self.err(format!("expected `(`, `=` or `.` after `{sign}`, found `{t}`"))),
        }
    }

    /// `.attr suffix`, with an optional already-consumed tuple-level sign.
    fn field_after_optional_sign(&mut self, sign: Option<Sign>) -> ParseResult<Field> {
        self.expect(Token::Dot)?;
        let attr = self.attr_term()?;
        let expr = self.suffix()?;
        Ok(Field { sign, attr, expr })
    }

    fn attr_term(&mut self) -> ParseResult<AttrTerm> {
        match self.bump() {
            Token::Ident(n) => Ok(AttrTerm::Const(n)),
            Token::Variable(n) => {
                if n.as_str() == "_" {
                    Ok(AttrTerm::Var(self.fresh_var()))
                } else {
                    Ok(AttrTerm::Var(Var(n)))
                }
            }
            t => Err(self.err(format!("expected attribute name or variable, found `{t}`"))),
        }
    }

    /// What may follow an attribute: chaining, set expr, relops, updates, ε.
    fn suffix(&mut self) -> ParseResult<Expr> {
        match self.peek().clone() {
            Token::Dot => {
                let f = self.field_after_optional_sign(None)?;
                Ok(Expr::Tuple(vec![f]))
            }
            Token::LParen => {
                self.bump();
                let inner = self.conjunct()?;
                self.expect(Token::RParen)?;
                Ok(Expr::Set(Box::new(inner)))
            }
            Token::Not => {
                self.bump();
                let inner = self.suffix()?;
                Ok(Expr::Not(Box::new(inner)))
            }
            Token::Plus => {
                self.bump();
                self.signed_tail(Sign::Plus)
            }
            Token::Minus => {
                self.bump();
                self.signed_tail(Sign::Minus)
            }
            Token::Lt | Token::Le | Token::Eq | Token::Ne | Token::Gt | Token::Ge => {
                let op = self.relop().unwrap();
                let t = self.term()?;
                Ok(Expr::Atomic(op, t))
            }
            t if self.expr_follow(&t) => Ok(Expr::Epsilon),
            t => Err(self.err(format!("unexpected `{t}` after attribute"))),
        }
    }

    fn expr_follow(&self, t: &Token) -> bool {
        matches!(
            t,
            Token::Comma
                | Token::RParen
                | Token::Semi
                | Token::RuleArrow
                | Token::ProgArrow
                | Token::Eof
        )
    }

    /// Inside parentheses: a comma-list that is either one non-field
    /// expression (set of atoms / nested sets) or a list of fields (a tuple
    /// expression).
    fn conjunct(&mut self) -> ParseResult<Expr> {
        let mut elems: Vec<ConjElem> = Vec::new();
        if !self.check(&Token::RParen) {
            elems.push(self.conj_elem()?);
            while self.eat(&Token::Comma) {
                elems.push(self.conj_elem()?);
            }
        }
        if elems.is_empty() {
            return Ok(Expr::Epsilon);
        }
        let all_fields = elems.iter().all(|e| matches!(e, ConjElem::Field(_)));
        if all_fields {
            let fields = elems
                .into_iter()
                .map(|e| match e {
                    ConjElem::Field(f) => f,
                    ConjElem::Expr(_) => unreachable!(),
                })
                .collect();
            return Ok(Expr::Tuple(fields));
        }
        if elems.len() == 1 {
            match elems.pop().unwrap() {
                ConjElem::Expr(e) => Ok(e),
                ConjElem::Field(f) => Ok(Expr::Tuple(vec![f])),
            }
        } else {
            Err(self.err("cannot mix attribute fields and other expressions in one conjunct"))
        }
    }

    fn conj_elem(&mut self) -> ParseResult<ConjElem> {
        match self.peek() {
            Token::Dot => Ok(ConjElem::Field(self.field_after_optional_sign(None)?)),
            Token::Plus if matches!(self.peek_at(1), Token::Dot) => {
                self.bump();
                Ok(ConjElem::Field(self.field_after_optional_sign(Some(Sign::Plus))?))
            }
            Token::Minus if matches!(self.peek_at(1), Token::Dot) => {
                self.bump();
                Ok(ConjElem::Field(self.field_after_optional_sign(Some(Sign::Minus))?))
            }
            _ => Ok(ConjElem::Expr(self.item()?)),
        }
    }

    fn relop(&mut self) -> Option<RelOp> {
        let op = match self.peek() {
            Token::Lt => RelOp::Lt,
            Token::Le => RelOp::Le,
            Token::Eq => RelOp::Eq,
            Token::Ne => RelOp::Ne,
            Token::Gt => RelOp::Gt,
            Token::Ge => RelOp::Ge,
            _ => return None,
        };
        self.bump();
        Some(op)
    }

    // ---- terms (with arithmetic) --------------------------------------

    fn term(&mut self) -> ParseResult<Term> {
        self.add_sub()
    }

    fn add_sub(&mut self) -> ParseResult<Term> {
        let mut lhs = self.mul_div()?;
        loop {
            let op = match self.peek() {
                // `+`/`-` followed by `.` starts a signed field, not
                // arithmetic: stop the term here.
                Token::Plus if !matches!(self.peek_at(1), Token::Dot) => ArithOp::Add,
                Token::Minus if !matches!(self.peek_at(1), Token::Dot) => ArithOp::Sub,
                _ => break,
            };
            self.bump();
            let rhs = self.mul_div()?;
            lhs = Term::Arith(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn mul_div(&mut self) -> ParseResult<Term> {
        let mut lhs = self.unary()?;
        loop {
            let op = match self.peek() {
                Token::Star => ArithOp::Mul,
                Token::Slash => ArithOp::Div,
                _ => break,
            };
            self.bump();
            let rhs = self.unary()?;
            lhs = Term::Arith(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn unary(&mut self) -> ParseResult<Term> {
        if self.check(&Token::Minus) {
            self.bump();
            let t = self.unary()?;
            // Constant-fold negative literals.
            if let Term::Const(Value::Atom(a)) = &t {
                if let Some(i) = a.as_int() {
                    return Ok(Term::c(Value::int(-i)));
                }
                if let Some(f) = a.as_float() {
                    return Ok(Term::c(Value::float(-f)));
                }
            }
            return Ok(Term::Arith(ArithOp::Sub, Box::new(Term::c(0i64)), Box::new(t)));
        }
        self.primary()
    }

    fn primary(&mut self) -> ParseResult<Term> {
        match self.bump() {
            Token::Int(i) => Ok(Term::c(Value::int(i))),
            Token::Float(f) => Ok(Term::c(Value::float(f))),
            Token::Str(s) => Ok(Term::c(Value::str(s))),
            Token::DateLit(d) => Ok(Term::c(Value::date(d))),
            Token::Null => Ok(Term::c(Value::null())),
            Token::True => Ok(Term::c(Value::bool(true))),
            Token::False => Ok(Term::c(Value::bool(false))),
            Token::Ident(n) => Ok(Term::c(Value::from(n))),
            Token::Variable(n) => {
                if n.as_str() == "_" {
                    Ok(Term::Var(self.fresh_var()))
                } else {
                    Ok(Term::Var(Var(n)))
                }
            }
            Token::LParen => {
                let t = self.term()?;
                self.expect(Token::RParen)?;
                Ok(t)
            }
            t => Err(self.err(format!("expected a term, found `{t}`"))),
        }
    }
}

enum ConjElem {
    Field(Field),
    Expr(Expr),
}

/// Rule heads may be written with an explicit make-true sign,
/// `.dbI.p+(…)`; strip it (rule semantics already *is* make-true, §6).
fn normalise_rule_head(e: Expr) -> Expr {
    match e {
        Expr::SetUpdate(Sign::Plus, inner) => Expr::Set(inner),
        Expr::Tuple(fields) => Expr::Tuple(
            fields
                .into_iter()
                .map(|f| Field { sign: f.sign, attr: f.attr, expr: normalise_rule_head(f.expr) })
                .collect(),
        ),
        other => other,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pe(src: &str) -> Expr {
        parse_expr(src).unwrap_or_else(|e| panic!("parse {src:?}: {e}"))
    }

    fn ps(src: &str) -> Statement {
        parse_statement(src).unwrap_or_else(|e| panic!("parse {src:?}: {e}"))
    }

    #[test]
    fn paper_q1_first_order() {
        // ?.euter.r(.stkCode=hp, .clsPrice>60)
        let Statement::Request(r) = ps("?.euter.r(.stkCode=hp, .clsPrice>60)") else { panic!() };
        assert_eq!(r.items.len(), 1);
        let expected = Expr::path(
            ["euter", "r"],
            Expr::scan(vec![
                Field::q("stkCode", Expr::eq("hp")),
                Field::q("clsPrice", Expr::cmp(RelOp::Gt, 60i64)),
            ]),
        );
        assert_eq!(r.items[0], expected);
    }

    #[test]
    fn paper_join_is_two_items() {
        let Statement::Request(r) = ps("?.euter.r(.stkCode=hp,.clsPrice>60,.date=D), \
              .euter.r(.stkCode=ibm,.clsPrice>150,.date=D)")
        else {
            panic!()
        };
        assert_eq!(r.items.len(), 2);
        assert!(r.is_pure_query());
    }

    #[test]
    fn paper_negation_alltime_high() {
        // ?.euter.r(.stkCode=hp,.clsPrice=P,.date=D), .euter.r¬(.stkCode=hp, .clsPrice>P)
        let Statement::Request(r) =
            ps("?.euter.r(.stkCode=hp,.clsPrice=P,.date=D), .euter.r¬(.stkCode=hp,.clsPrice>P)")
        else {
            panic!()
        };
        let Expr::Tuple(fs) = &r.items[1] else { panic!() };
        let Expr::Tuple(inner) = &fs[0].expr else { panic!() };
        assert!(matches!(&inner[0].expr, Expr::Not(_)));
    }

    #[test]
    fn higher_order_queries() {
        // ?.ource.Y ; ?.X.Y ; ?.X.hp ; ?.X.Y(.stkCode)
        let e = pe(".ource.Y");
        let Expr::Tuple(fs) = &e else { panic!() };
        let Expr::Tuple(inner) = &fs[0].expr else { panic!() };
        assert_eq!(inner[0].attr, AttrTerm::v("Y"));
        assert_eq!(inner[0].expr, Expr::Epsilon);

        let e = pe(".X.Y(.stkCode)");
        assert!(e.has_higher_order_var());
        let Expr::Tuple(fs) = &e else { panic!() };
        assert_eq!(fs[0].attr, AttrTerm::v("X"));
    }

    #[test]
    fn constraint_item() {
        // ?.X.Y, X = ource
        let Statement::Request(r) = ps("?.X.Y, X = ource") else { panic!() };
        assert_eq!(r.items.len(), 2);
        assert!(
            matches!(&r.items[1], Expr::Constraint(Term::Var(v), RelOp::Eq, Term::Const(_)) if v.0 == "X")
        );
    }

    #[test]
    fn update_insert_delete() {
        // ?.euter.r+(.date=3/3/85,.stkCode=hp,.clsPrice=50)
        let Statement::Request(r) = ps("?.euter.r+(.date=3/3/85,.stkCode=hp,.clsPrice=50)") else {
            panic!()
        };
        let Expr::Tuple(fs) = &r.items[0] else { panic!() };
        let Expr::Tuple(inner) = &fs[0].expr else { panic!() };
        assert!(matches!(&inner[0].expr, Expr::SetUpdate(Sign::Plus, _)));
        assert!(!r.is_pure_query());

        let Statement::Request(r) = ps("?.euter.r-(.date=3/3/85,.stkCode=hp)") else { panic!() };
        assert!(!r.is_pure_query());
    }

    #[test]
    fn embedded_update_fields() {
        // .chwab.r(.date=3/3/85, -.hp=C)  — attribute deletion
        let e = pe(".chwab.r(.date=3/3/85, -.hp=C)");
        let Expr::Tuple(fs) = &e else { panic!() };
        let Expr::Tuple(inner) = &fs[0].expr else { panic!() };
        let Expr::Set(setexp) = &inner[0].expr else { panic!() };
        let Expr::Tuple(tfields) = setexp.as_ref() else { panic!() };
        assert_eq!(tfields.len(), 2);
        assert_eq!(tfields[1].sign, Some(Sign::Minus));

        // .S-=X — atomic minus on attribute S
        let e = pe(".chwab.r(.S-=X, .date=D)");
        let Expr::Tuple(fs) = &e else { panic!() };
        let Expr::Tuple(inner) = &fs[0].expr else { panic!() };
        let Expr::Set(setexp) = &inner[0].expr else { panic!() };
        let Expr::Tuple(tfields) = setexp.as_ref() else { panic!() };
        assert!(matches!(&tfields[0].expr, Expr::AtomicUpdate(Sign::Minus, Term::Var(_))));
    }

    #[test]
    fn tuple_minus_at_database_level() {
        // .ource-.S — delete relation S from database ource
        let e = pe(".ource-.S");
        let Expr::Tuple(fs) = &e else { panic!() };
        let Expr::Tuple(inner) = &fs[0].expr else { panic!() };
        assert_eq!(inner[0].sign, Some(Sign::Minus));
        assert_eq!(inner[0].attr, AttrTerm::v("S"));
        assert_eq!(inner[0].expr, Expr::Epsilon);
    }

    #[test]
    fn rules_parse_and_validate() {
        let src =
            ".dbI.p(.date=D, .stk=S, .clsPrice=P) <- .euter.r(.date=D,.stkCode=S,.clsPrice=P)";
        let Statement::Rule(rule) = ps(src) else { panic!() };
        assert!(!rule.is_higher_order());
        assert_eq!(rule.body.len(), 1);

        // higher-order head (dbO view)
        let src = ".dbO.S(.date=D, .clsPrice=P) <- .dbI.p(.date=D,.stk=S,.clsPrice=P)";
        let Statement::Rule(rule) = ps(src) else { panic!() };
        assert!(rule.is_higher_order());
    }

    #[test]
    fn rule_head_plus_normalised() {
        let src = ".dbI.p+(.stk=S) <- .euter.r(.stkCode=S)";
        let Statement::Rule(rule) = ps(src) else { panic!() };
        assert!(rule.head.is_query(), "explicit + in rule head is normalised away");
    }

    #[test]
    fn unsafe_rule_rejected() {
        let src = ".dbI.p(.stk=S) <- .euter.r(.stkCode=T)";
        assert!(parse_statement(src).is_err());
    }

    #[test]
    fn update_programs_parse() {
        let src = ".dbU.delStk(.stk=S, .date=D) -> .euter.r-(.stkCode=S,.date=D)";
        let Statement::Program(p) = ps(src) else { panic!() };
        assert_eq!(p.body.len(), 1);
        assert!(p.body[0].has_update());

        // rmStk's chwab clause: .chwab.r(-.S)
        let src = ".dbU.rmStk(.stk=S) -> .chwab.r(-.S)";
        let Statement::Program(p) = ps(src) else { panic!() };
        assert!(p.body[0].has_update());

        // ource clause: .ource-.S
        let src = ".dbU.rmStk(.stk=S) -> .ource-.S";
        assert!(matches!(ps(src), Statement::Program(_)));
    }

    #[test]
    fn view_update_program_head_with_sign() {
        // §7.2: dbX.p+(exp) -> …   (empty body allowed)
        let src = ".dbX.p+(.a=X) ->";
        let Statement::Program(p) = ps(src) else { panic!() };
        assert!(p.body.is_empty());
        assert!(p.head.has_update());
    }

    #[test]
    fn arithmetic_in_terms() {
        // price bump: .chwab.r+(.date=3/3/85,.hp=C+10)
        let e = pe(".chwab.r+(.date=3/3/85,.hp=C+10)");
        let Expr::Tuple(fs) = &e else { panic!() };
        let Expr::Tuple(inner) = &fs[0].expr else { panic!() };
        let Expr::SetUpdate(Sign::Plus, content) = &inner[0].expr else { panic!() };
        let Expr::Tuple(tf) = content.as_ref() else { panic!() };
        assert!(matches!(&tf[1].expr, Expr::Atomic(RelOp::Eq, Term::Arith(ArithOp::Add, _, _))));

        // precedence: C+2*3
        let Expr::Constraint(_, _, rhs) = parse_expr("X = C+2*3").unwrap() else { panic!() };
        assert!(matches!(rhs, Term::Arith(ArithOp::Add, _, _)));
    }

    #[test]
    fn multi_statement_program() {
        let src = "?.euter.r(.stkCode=hp) ;\n% comment\n.dbI.p(.s=S) <- .euter.r(.stkCode=S) ;";
        let stmts = parse_program(src).unwrap();
        assert_eq!(stmts.len(), 2);
    }

    #[test]
    fn anonymous_variables_are_fresh() {
        let e = pe(".euter.r(.stkCode=_, .clsPrice=_)");
        let vars = e.vars();
        assert_eq!(vars.len(), 2, "each _ is a distinct fresh variable");
        assert!(vars.iter().all(|v| v.is_gensym()), "both are gensyms");
    }

    #[test]
    fn gensyms_cannot_be_captured_by_user_variables() {
        // `_G1` is an ordinary variable — the gensym namespace contains an
        // unlexable character, so no surface name collides with it.
        let e = pe(".euter.r(.stkCode=_G1, .clsPrice=_)");
        let vars = e.vars();
        assert_eq!(vars.len(), 2);
        assert!(vars.iter().any(|v| v.name().as_str() == "_G1" && !v.is_gensym()));
        assert_eq!(vars.iter().filter(|v| v.is_gensym()).count(), 1);
        // gensyms print back as `_`, and re-parsing re-derives the same
        // fresh variables — the round trip is exact
        let printed = e.to_string();
        assert_eq!(printed, ".euter.r(.stkCode = _G1, .clsPrice = _)");
        assert_eq!(pe(&printed), e);
    }

    #[test]
    fn gensym_names_do_not_lex() {
        let gensym = Var::gensym(1);
        assert!(parse_statement(&format!("?.euter.r(.a={})", gensym.name())).is_err());
    }

    #[test]
    fn error_messages_have_position() {
        let err = parse_statement("?.euter.r(.a=)").unwrap_err();
        assert!(err.to_string().contains("expected a term"));
        let err = parse_statement("?").unwrap_err();
        assert!(err.to_string().contains("empty request"));
    }

    #[test]
    fn nested_set_of_atoms() {
        // relation of unnamed atoms: .db.r(=5)
        let e = pe(".db.r(=5)");
        let Expr::Tuple(fs) = &e else { panic!() };
        let Expr::Tuple(inner) = &fs[0].expr else { panic!() };
        let Expr::Set(c) = &inner[0].expr else { panic!() };
        assert!(matches!(c.as_ref(), Expr::Atomic(RelOp::Eq, _)));
    }

    #[test]
    fn negated_whole_item() {
        let e = pe("¬.euter.r(.stkCode=hp)");
        assert!(matches!(e, Expr::Not(_)));
    }

    #[test]
    fn dates_parse_in_terms() {
        let e = pe(".euter.r(.date=3/3/85)");
        let Expr::Tuple(fs) = &e else { panic!() };
        let Expr::Tuple(inner) = &fs[0].expr else { panic!() };
        let Expr::Set(c) = &inner[0].expr else { panic!() };
        let Expr::Tuple(tf) = c.as_ref() else { panic!() };
        let Expr::Atomic(RelOp::Eq, Term::Const(v)) = &tf[0].expr else { panic!() };
        assert_eq!(v.to_string(), "3/3/85");
    }
}
