//! Pretty-printing back to surface syntax.
//!
//! The printer and parser round-trip: `parse(print(ast)) == ast` for every
//! AST the parser can produce (checked by property tests in the crate's
//! `tests/` directory).

use crate::ast::*;
use std::fmt;

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt_term(self, f, 0)
    }
}

/// `prec`: 0 = top, 1 = inside add/sub, 2 = inside mul/div.
fn fmt_term(t: &Term, f: &mut fmt::Formatter<'_>, prec: u8) -> fmt::Result {
    match t {
        Term::Const(v) => write!(f, "{v}"),
        Term::Var(v) => write!(f, "{v}"),
        Term::Arith(op, a, b) => {
            let my_prec = match op {
                ArithOp::Add | ArithOp::Sub => 1,
                ArithOp::Mul | ArithOp::Div => 2,
            };
            let need_parens = prec > my_prec;
            if need_parens {
                write!(f, "(")?;
            }
            fmt_term(a, f, my_prec)?;
            // `/` needs spaces so it does not lex as part of a date literal.
            write!(f, " {op} ")?;
            fmt_term(b, f, my_prec + 1)?; // left-assoc: rhs binds tighter
            if need_parens {
                write!(f, ")")?;
            }
            Ok(())
        }
    }
}

impl fmt::Display for Field {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if let Some(sign) = self.sign {
            write!(f, "{sign}")?;
        }
        write!(f, ".{}", self.attr)?;
        if self.expr != Expr::Epsilon {
            match &self.expr {
                // path chaining and parenthesised forms attach directly
                Expr::Tuple(fs) if fs.len() == 1 && fs[0].sign.is_none() => {
                    write!(f, "{}", self.expr)?
                }
                Expr::Set(_) | Expr::SetUpdate(..) | Expr::Not(_) | Expr::Tuple(_) => {
                    write!(f, "{}", self.expr)?
                }
                // atomic forms get a space for readability: `.clsPrice > 60`
                _ => write!(f, " {}", self.expr)?,
            }
        }
        Ok(())
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Epsilon => Ok(()),
            Expr::Not(e) => write!(f, "¬{e}"),
            Expr::Atomic(op, t) => write!(f, "{op} {t}"),
            Expr::AtomicUpdate(sign, t) => write!(f, "{sign}= {t}"),
            Expr::Tuple(fields) => {
                for (i, field) in fields.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{field}")?;
                }
                Ok(())
            }
            Expr::Set(e) => write!(f, "({e})"),
            Expr::SetUpdate(sign, e) => write!(f, "{sign}({e})"),
            Expr::Constraint(a, op, b) => write!(f, "{a} {op} {b}"),
        }
    }
}

impl fmt::Display for Request {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "?")?;
        for (i, item) in self.items.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{item}")?;
        }
        Ok(())
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} <-", self.head)?;
        for (i, item) in self.body.iter().enumerate() {
            write!(f, "{}{item}", if i > 0 { ", " } else { " " })?;
        }
        Ok(())
    }
}

impl fmt::Display for ProgramClause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ->", self.head)?;
        for (i, item) in self.body.iter().enumerate() {
            write!(f, "{}{item}", if i > 0 { ", " } else { " " })?;
        }
        Ok(())
    }
}

impl fmt::Display for Statement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Statement::Request(r) => write!(f, "{r}"),
            Statement::Rule(r) => write!(f, "{r}"),
            Statement::Program(p) => write!(f, "{p}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::parser::{parse_expr, parse_statement};

    /// Print → parse must be the identity on these paper examples.
    #[test]
    fn round_trip_paper_examples() {
        let sources = [
            "?.euter.r(.stkCode=hp, .clsPrice>60)",
            "?.euter.r(.stkCode=hp,.clsPrice>60,.date=D), .euter.r(.stkCode=ibm,.clsPrice>150,.date=D)",
            "?.euter.r(.stkCode=hp,.clsPrice=P,.date=D), .euter.r¬(.stkCode=hp, .clsPrice>P)",
            "?.euter.r(.stkCode=S, .clsPrice>200)",
            "?.ource.Y",
            "?.X.Y, X = ource",
            "?.X.hp",
            "?.X.Y(.stkCode)",
            "?.chwab.r(.date=D,.S=P), .ource.S(.date=D,.clsPrice=P)",
            "?.euter.Y, .chwab.Y, .ource.Y",
            "?.chwab.r(.S>200)",
            "?.ource.S(.clsPrice > 200)",
            "?.euter.r+(.date=3/3/85,.stkCode=hp,.clsPrice=50)",
            "?.euter.r-(.date=3/3/85,.stkCode=hp)",
            "?.chwab.r(.date=3/3/85, .hp-=C)",
            "?.chwab.r(.date=3/3/85, -.hp=C)",
            "?.chwab.r-(.date=3/3/85,.hp=C), .chwab.r+(.date=3/3/85,.hp=C+10)",
            ".dbI.p(.date=D, .stk=S, .clsPrice=P) <- .euter.r(.date=D,.stkCode=S,.clsPrice=P)",
            ".dbO.S(.date=D, .clsPrice=P) <- .dbI.p(.date=D,.stk=S,.clsPrice=P)",
            ".dbU.delStk(.stk=S, .date=D) -> .euter.r-(.stkCode=S,.date=D)",
            ".dbU.rmStk(.stk=S) -> .chwab.r(-.S)",
            ".dbU.rmStk(.stk=S) -> .ource-.S",
            ".dbX.p+(.a=X) ->",
        ];
        for src in sources {
            let ast1 = parse_statement(src).unwrap_or_else(|e| panic!("{src}: {e}"));
            let printed = ast1.to_string();
            let ast2 = parse_statement(&printed).unwrap_or_else(|e| {
                panic!("reparse failed\n  src: {src}\n  printed: {printed}\n  err: {e}")
            });
            assert_eq!(ast1, ast2, "round-trip mismatch for {src} (printed: {printed})");
        }
    }

    #[test]
    fn arithmetic_precedence_printing() {
        for src in ["X = A+B*C", "X = (A+B)*C", "X = A-B-C", "X = A / B / C"] {
            let a = parse_expr(src).unwrap();
            let b = parse_expr(&a.to_string()).unwrap();
            assert_eq!(a, b, "src={src} printed={a}");
        }
    }

    #[test]
    fn epsilon_prints_empty() {
        let e = parse_expr(".euter.Y").unwrap();
        assert_eq!(e.to_string(), ".euter.Y");
    }
}
