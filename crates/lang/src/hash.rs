//! Canonical expression hashing.
//!
//! Plan caches key compiled plans by the *content* of an expression, so the
//! hash must be stable across processes and runs — `std::collections`'
//! default hasher is randomly seeded and unusable for that. This module
//! provides a fixed-seed FNV-1a 64-bit hasher and convenience functions
//! hashing through the AST's structural [`Hash`] impls.
//!
//! The hash is a fast *key*, not an identity: callers that memoize on it
//! must still compare the expressions themselves on a bucket hit (the
//! usual hash-map discipline, made explicit because the map key travels
//! between layers).

use crate::ast::Expr;
use std::hash::{Hash, Hasher};

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Fixed-seed FNV-1a 64-bit hasher: deterministic across processes, cheap
/// for the short byte streams the AST `Hash` impls emit.
#[derive(Clone, Debug)]
pub struct CanonicalHasher {
    state: u64,
}

impl CanonicalHasher {
    /// A hasher at the FNV offset basis.
    pub fn new() -> Self {
        CanonicalHasher { state: FNV_OFFSET }
    }
}

impl Default for CanonicalHasher {
    fn default() -> Self {
        Self::new()
    }
}

impl Hasher for CanonicalHasher {
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state ^= u64::from(b);
            self.state = self.state.wrapping_mul(FNV_PRIME);
        }
    }

    fn finish(&self) -> u64 {
        self.state
    }
}

/// Canonical (process-stable) hash of one expression.
pub fn canonical_hash(expr: &Expr) -> u64 {
    let mut h = CanonicalHasher::new();
    expr.hash(&mut h);
    h.finish()
}

/// Canonical hash of an expression sequence (a request body or rule body).
/// Length-prefixed by the slice `Hash` impl, so `[a, b]` and `[ab]` cannot
/// collide structurally.
pub fn canonical_hash_items(items: &[Expr]) -> u64 {
    let mut h = CanonicalHasher::new();
    items.hash(&mut h);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_expr;

    #[test]
    fn equal_expressions_hash_equal() {
        let a = parse_expr(".euter.r(.stkCode=hp, .clsPrice>60)").unwrap();
        let b = parse_expr(".euter.r(.stkCode=hp,  .clsPrice > 60)").unwrap();
        assert_eq!(a, b);
        assert_eq!(canonical_hash(&a), canonical_hash(&b));
    }

    #[test]
    fn different_expressions_hash_differently() {
        let a = parse_expr(".euter.r(.stkCode=hp)").unwrap();
        let b = parse_expr(".euter.r(.stkCode=ibm)").unwrap();
        assert_ne!(canonical_hash(&a), canonical_hash(&b));
    }

    #[test]
    fn item_sequences_are_order_sensitive() {
        let a = parse_expr(".db.r(.a=1)").unwrap();
        let b = parse_expr(".db.r(.b=2)").unwrap();
        let ab = canonical_hash_items(&[a.clone(), b.clone()]);
        let ba = canonical_hash_items(&[b, a]);
        assert_ne!(ab, ba);
    }

    #[test]
    fn hash_is_stable_across_hasher_instances() {
        let e = parse_expr(".D.R(.A=V)").unwrap();
        assert_eq!(canonical_hash(&e), canonical_hash(&e));
    }
}
