//! Tokens and source spans.

use idl_object::{Date, Name};
use std::fmt;

/// A half-open byte range in the source text.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct Span {
    /// Byte offset of the first character.
    pub start: usize,
    /// Byte offset one past the last character.
    pub end: usize,
}

impl Span {
    /// Builds a span.
    pub fn new(start: usize, end: usize) -> Self {
        Span { start, end }
    }

    /// The smallest span covering both.
    pub fn to(self, other: Span) -> Span {
        Span { start: self.start.min(other.start), end: self.end.max(other.end) }
    }
}

/// Lexical tokens of IDL.
#[derive(Clone, PartialEq, Debug)]
pub enum Token {
    /// `?` — query / update-request marker.
    Question,
    /// `.` — attribute selector.
    Dot,
    /// `,` — conjunction.
    Comma,
    /// `;` — statement separator.
    Semi,
    /// `(`.
    LParen,
    /// `)`.
    RParen,
    /// `+` — insert sign or arithmetic plus (disambiguated by the parser).
    Plus,
    /// `-` — delete sign or arithmetic minus.
    Minus,
    /// `*` — arithmetic times.
    Star,
    /// `/` — arithmetic divide.
    Slash,
    /// `¬` or `!` — negation.
    Not,
    /// `<-` — rule (view definition) arrow.
    RuleArrow,
    /// `->` — update-program arrow.
    ProgArrow,
    /// `<`.
    Lt,
    /// `<=` or `≤`.
    Le,
    /// `=`.
    Eq,
    /// `!=`, `<>` or `≠`.
    Ne,
    /// `>`.
    Gt,
    /// `>=` or `≥`.
    Ge,
    /// A variable: word starting with an uppercase letter, or `_`.
    Variable(Name),
    /// A constant identifier: word starting lowercase (paper §4.1).
    Ident(Name),
    /// A quoted string constant.
    Str(String),
    /// An integer literal.
    Int(i64),
    /// A float literal.
    Float(f64),
    /// A date literal, e.g. `3/3/85` or `1985-03-03`.
    DateLit(Date),
    /// `null` keyword.
    Null,
    /// `true` keyword.
    True,
    /// `false` keyword.
    False,
    /// End of input.
    Eof,
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Token::Question => write!(f, "?"),
            Token::Dot => write!(f, "."),
            Token::Comma => write!(f, ","),
            Token::Semi => write!(f, ";"),
            Token::LParen => write!(f, "("),
            Token::RParen => write!(f, ")"),
            Token::Plus => write!(f, "+"),
            Token::Minus => write!(f, "-"),
            Token::Star => write!(f, "*"),
            Token::Slash => write!(f, "/"),
            Token::Not => write!(f, "¬"),
            Token::RuleArrow => write!(f, "<-"),
            Token::ProgArrow => write!(f, "->"),
            Token::Lt => write!(f, "<"),
            Token::Le => write!(f, "<="),
            Token::Eq => write!(f, "="),
            Token::Ne => write!(f, "!="),
            Token::Gt => write!(f, ">"),
            Token::Ge => write!(f, ">="),
            Token::Variable(n) => write!(f, "{n}"),
            Token::Ident(n) => write!(f, "{n}"),
            Token::Str(s) => write!(f, "{s:?}"),
            Token::Int(i) => write!(f, "{i}"),
            Token::Float(x) => write!(f, "{x}"),
            Token::DateLit(d) => write!(f, "{d}"),
            Token::Null => write!(f, "null"),
            Token::True => write!(f, "true"),
            Token::False => write!(f, "false"),
            Token::Eof => write!(f, "<eof>"),
        }
    }
}

/// A token together with its source span.
#[derive(Clone, PartialEq, Debug)]
pub struct Spanned {
    /// The token.
    pub token: Token,
    /// Where it came from.
    pub span: Span,
}
