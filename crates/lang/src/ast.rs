//! Abstract syntax of IDL.
//!
//! The AST mirrors the paper's grammar (§4.1) with its own extensions
//! (§4.3 higher-order attribute terms, §5.1 update expressions, §6 rules,
//! §7.1 update programs). One expression type covers query *and* update
//! forms; validity predicates ([`Expr::is_query`], [`Expr::is_simple`],
//! [`Expr::is_ground`]) carve out the sublanguages the paper restricts each
//! construct to.

use idl_object::{Name, Value};
use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::collections::BTreeSet;
use std::fmt;

/// A variable (word beginning with an uppercase letter, §4.1).
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Var(pub Name);

/// Name prefix of parser-generated fresh variables. Contains `·`
/// (U+00B7), which the lexer rejects inside words, so no surface program
/// can spell a variable that collides with a gensym — user variables like
/// `_G1` are ordinary named variables.
pub const GENSYM_PREFIX: &str = "_G\u{b7}";

impl Var {
    /// Creates a variable from its name.
    pub fn new(name: impl Into<Name>) -> Self {
        Var(name.into())
    }

    /// The `n`-th parser-generated fresh variable (one per anonymous `_`).
    pub fn gensym(n: u32) -> Self {
        Var::new(format!("{GENSYM_PREFIX}{n}"))
    }

    /// Whether this is a parser-generated fresh variable. Gensyms are
    /// existential: evaluation binds them but answers project them away.
    pub fn is_gensym(&self) -> bool {
        self.0.as_str().starts_with(GENSYM_PREFIX)
    }

    /// The variable's name.
    pub fn name(&self) -> &Name {
        &self.0
    }
}

impl fmt::Display for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Gensyms print back as the anonymous `_` they came from; the
        // parser re-derives equivalent fresh variables on re-parse.
        if self.is_gensym() {
            return write!(f, "_");
        }
        write!(f, "{}", self.0)
    }
}

impl fmt::Debug for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Var({})", self.0)
    }
}

impl From<&str> for Var {
    fn from(s: &str) -> Self {
        Var::new(s)
    }
}

/// Comparison operators of atomic expressions (§4.1).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum RelOp {
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `=`
    Eq,
    /// `!=`
    Ne,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl RelOp {
    /// Whether an [`Ordering`] between object and operand satisfies the op.
    pub fn matches(self, ord: Ordering) -> bool {
        match self {
            RelOp::Lt => ord == Ordering::Less,
            RelOp::Le => ord != Ordering::Greater,
            RelOp::Eq => ord == Ordering::Equal,
            RelOp::Ne => ord != Ordering::Equal,
            RelOp::Gt => ord == Ordering::Greater,
            RelOp::Ge => ord != Ordering::Less,
        }
    }

    /// The operator with sides swapped (`a op b` ⇔ `b op.flip() a`).
    pub fn flip(self) -> RelOp {
        match self {
            RelOp::Lt => RelOp::Gt,
            RelOp::Le => RelOp::Ge,
            RelOp::Gt => RelOp::Lt,
            RelOp::Ge => RelOp::Le,
            RelOp::Eq => RelOp::Eq,
            RelOp::Ne => RelOp::Ne,
        }
    }
}

impl fmt::Display for RelOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            RelOp::Lt => "<",
            RelOp::Le => "<=",
            RelOp::Eq => "=",
            RelOp::Ne => "!=",
            RelOp::Gt => ">",
            RelOp::Ge => ">=",
        };
        f.write_str(s)
    }
}

/// Arithmetic operators (used by §5.2's `.clsPrice=C+10`; the paper notes
/// arithmetic is assumed though absent from its formal grammar).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum ArithOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
}

impl fmt::Display for ArithOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ArithOp::Add => "+",
            ArithOp::Sub => "-",
            ArithOp::Mul => "*",
            ArithOp::Div => "/",
        };
        f.write_str(s)
    }
}

/// A term: the right-hand side of an atomic expression.
#[derive(Clone, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum Term {
    /// A constant object.
    Const(Value),
    /// A variable (first-order over data, or bound to whole tuples/sets —
    /// "variable representing aggregate objects", §4.1).
    Var(Var),
    /// An arithmetic combination; operands must be bound at evaluation time.
    Arith(ArithOp, Box<Term>, Box<Term>),
}

impl Term {
    /// Constant-term shorthand.
    pub fn c(v: impl Into<Value>) -> Term {
        Term::Const(v.into())
    }

    /// Variable-term shorthand.
    pub fn v(name: impl Into<Name>) -> Term {
        Term::Var(Var::new(name))
    }

    /// Whether the term contains no variables.
    pub fn is_ground(&self) -> bool {
        match self {
            Term::Const(_) => true,
            Term::Var(_) => false,
            Term::Arith(_, a, b) => a.is_ground() && b.is_ground(),
        }
    }

    /// Collects the variables occurring in the term.
    pub fn collect_vars(&self, out: &mut BTreeSet<Var>) {
        match self {
            Term::Const(_) => {}
            Term::Var(v) => {
                out.insert(v.clone());
            }
            Term::Arith(_, a, b) => {
                a.collect_vars(out);
                b.collect_vars(out);
            }
        }
    }
}

/// An attribute position: constant name or higher-order variable (§4.3).
#[derive(Clone, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum AttrTerm {
    /// A literal attribute name.
    Const(Name),
    /// A higher-order variable ranging over attribute names.
    Var(Var),
}

impl AttrTerm {
    /// Constant shorthand.
    pub fn c(name: impl Into<Name>) -> AttrTerm {
        AttrTerm::Const(name.into())
    }

    /// Variable shorthand.
    pub fn v(name: impl Into<Name>) -> AttrTerm {
        AttrTerm::Var(Var::new(name))
    }

    /// Whether this position is a higher-order variable.
    pub fn is_var(&self) -> bool {
        matches!(self, AttrTerm::Var(_))
    }
}

impl fmt::Display for AttrTerm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AttrTerm::Const(n) => write!(f, "{n}"),
            AttrTerm::Var(v) => write!(f, "{v}"),
        }
    }
}

/// Update sign (§5.1): `+` makes an expression true henceforth, `-` false.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub enum Sign {
    /// Insert / make-true.
    Plus,
    /// Delete / make-false.
    Minus,
}

impl fmt::Display for Sign {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Sign::Plus => write!(f, "+"),
            Sign::Minus => write!(f, "-"),
        }
    }
}

/// One conjunct of a tuple expression: `.a exp`, `+.a exp`, or `-.a exp`.
#[derive(Clone, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub struct Field {
    /// Tuple-level update sign: `+.a exp` creates/overwrites the attribute,
    /// `-.a exp` deletes it (§5.2); `None` is an ordinary query field.
    pub sign: Option<Sign>,
    /// The attribute position (possibly a higher-order variable).
    pub attr: AttrTerm,
    /// The expression on the attribute's object.
    pub expr: Expr,
}

impl Field {
    /// Plain query field `.attr expr`.
    pub fn q(attr: impl Into<AttrTerm2>, expr: Expr) -> Field {
        Field { sign: None, attr: attr.into().0, expr }
    }

    /// Tuple-plus field `+.attr expr`.
    pub fn plus(attr: impl Into<AttrTerm2>, expr: Expr) -> Field {
        Field { sign: Some(Sign::Plus), attr: attr.into().0, expr }
    }

    /// Tuple-minus field `-.attr expr`.
    pub fn minus(attr: impl Into<AttrTerm2>, expr: Expr) -> Field {
        Field { sign: Some(Sign::Minus), attr: attr.into().0, expr }
    }
}

/// Conversion helper so [`Field`] constructors take `"name"` (constant) or
/// an explicit [`AttrTerm`].
pub struct AttrTerm2(pub AttrTerm);

impl From<&str> for AttrTerm2 {
    fn from(s: &str) -> Self {
        // Builder convenience mirrors surface syntax: uppercase = variable.
        if s.chars().next().is_some_and(|c| c.is_ascii_uppercase()) {
            AttrTerm2(AttrTerm::v(s))
        } else {
            AttrTerm2(AttrTerm::c(s))
        }
    }
}

impl From<AttrTerm> for AttrTerm2 {
    fn from(a: AttrTerm) -> Self {
        AttrTerm2(a)
    }
}

/// An IDL expression (query or update), per the recursive grammar of §4.1
/// extended with §4.3 and §5.1.
#[derive(Clone, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum Expr {
    /// `ε` — the tautological expression, satisfied by any object.
    Epsilon,
    /// `¬exp` — negation.
    Not(Box<Expr>),
    /// `α t` — atomic expression (`=hp`, `>60`, …).
    Atomic(RelOp, Term),
    /// `+=t` / `-=t` — atomic update expression (§5.1).
    AtomicUpdate(Sign, Term),
    /// `.a₁ exp₁, …, .aₖ expₖ` — tuple expression; fields may carry `+`/`-`.
    Tuple(Vec<Field>),
    /// `(exp)` — set expression: some element satisfies `exp`.
    Set(Box<Expr>),
    /// `+(exp)` / `-(exp)` — set update expression (§5.1).
    SetUpdate(Sign, Box<Expr>),
    /// `t₁ α t₂` — a free-standing constraint between terms, used at request
    /// level (footnote 7's `?.X.Y, X = ource` idiom).
    Constraint(Term, RelOp, Term),
}

impl Expr {
    /// `.seg₁.seg₂…: inner` — builds the nested single-field tuple
    /// expressions of a dotted path (the ubiquitous `.db.rel …` prefix).
    pub fn path<I, A>(segments: I, inner: Expr) -> Expr
    where
        I: IntoIterator<Item = A>,
        A: Into<AttrTerm2>,
        I::IntoIter: DoubleEndedIterator,
    {
        let mut expr = inner;
        for seg in segments.into_iter().rev() {
            expr = Expr::Tuple(vec![Field { sign: None, attr: seg.into().0, expr }]);
        }
        expr
    }

    /// `(fields…)` as a set expression over a tuple expression — the common
    /// shape of a relation scan: `(.stkCode=hp, .clsPrice>60)`.
    pub fn scan(fields: Vec<Field>) -> Expr {
        Expr::Set(Box::new(Expr::Tuple(fields)))
    }

    /// `= value` atomic equality on a constant.
    pub fn eq(v: impl Into<Value>) -> Expr {
        Expr::Atomic(RelOp::Eq, Term::c(v))
    }

    /// `= Var` atomic equality binding a variable.
    pub fn eq_var(name: impl Into<Name>) -> Expr {
        Expr::Atomic(RelOp::Eq, Term::v(name))
    }

    /// `α value` atomic comparison.
    pub fn cmp(op: RelOp, v: impl Into<Value>) -> Expr {
        Expr::Atomic(op, Term::c(v))
    }

    /// Whether the expression is a pure *query* expression (no `+`/`-`
    /// anywhere). Rule bodies and view definitions require this.
    pub fn is_query(&self) -> bool {
        match self {
            Expr::Epsilon | Expr::Atomic(..) | Expr::Constraint(..) => true,
            Expr::AtomicUpdate(..) | Expr::SetUpdate(..) => false,
            Expr::Not(e) => e.is_query(),
            Expr::Set(e) => e.is_query(),
            Expr::Tuple(fields) => fields.iter().all(|f| f.sign.is_none() && f.expr.is_query()),
        }
    }

    /// Whether the expression is *simple* (§4.1): only `=` atomics, no
    /// negation. Update payloads and rule heads must be simple.
    pub fn is_simple(&self) -> bool {
        match self {
            Expr::Epsilon => true,
            Expr::Not(_) => false,
            Expr::Atomic(op, _) => *op == RelOp::Eq,
            Expr::AtomicUpdate(_, _) => true,
            Expr::Tuple(fields) => fields.iter().all(|f| f.expr.is_simple()),
            Expr::Set(e) | Expr::SetUpdate(_, e) => e.is_simple(),
            Expr::Constraint(_, op, _) => *op == RelOp::Eq,
        }
    }

    /// Whether the expression contains no variables (first- or higher-order).
    pub fn is_ground(&self) -> bool {
        let mut vars = BTreeSet::new();
        self.collect_vars(&mut vars);
        vars.is_empty()
    }

    /// Whether any update form appears (the complement of [`Expr::is_query`]
    /// as a positive test, for readability at call sites).
    pub fn has_update(&self) -> bool {
        !self.is_query()
    }

    /// Whether a higher-order variable occurs in attribute position anywhere.
    pub fn has_higher_order_var(&self) -> bool {
        match self {
            Expr::Epsilon | Expr::Atomic(..) | Expr::AtomicUpdate(..) | Expr::Constraint(..) => {
                false
            }
            Expr::Not(e) | Expr::Set(e) | Expr::SetUpdate(_, e) => e.has_higher_order_var(),
            Expr::Tuple(fields) => {
                fields.iter().any(|f| f.attr.is_var() || f.expr.has_higher_order_var())
            }
        }
    }

    /// Collects every variable occurring in the expression (data-level and
    /// higher-order alike; the paper treats them uniformly).
    pub fn collect_vars(&self, out: &mut BTreeSet<Var>) {
        match self {
            Expr::Epsilon => {}
            Expr::Not(e) | Expr::Set(e) | Expr::SetUpdate(_, e) => e.collect_vars(out),
            Expr::Atomic(_, t) | Expr::AtomicUpdate(_, t) => t.collect_vars(out),
            Expr::Constraint(a, _, b) => {
                a.collect_vars(out);
                b.collect_vars(out);
            }
            Expr::Tuple(fields) => {
                for f in fields {
                    if let AttrTerm::Var(v) = &f.attr {
                        out.insert(v.clone());
                    }
                    f.expr.collect_vars(out);
                }
            }
        }
    }

    /// The set of variables in the expression.
    pub fn vars(&self) -> BTreeSet<Var> {
        let mut s = BTreeSet::new();
        self.collect_vars(&mut s);
        s
    }
}

/// A request `?e₁, e₂, …, eₖ` — the paper's *query* (§4.1) when every `eᵢ`
/// is a query expression, and its *update request* (§5.1) when updates
/// appear. Items are evaluated left to right under shared bindings; the
/// paper notes the order of update items is significant (§5.2).
#[derive(Clone, PartialEq, Debug, Serialize, Deserialize)]
pub struct Request {
    /// The conjunct items, each an expression on the universe tuple.
    pub items: Vec<Expr>,
}

impl Request {
    /// Builds a request.
    pub fn new(items: Vec<Expr>) -> Self {
        Request { items }
    }

    /// Whether this is a pure query (no update expression in any item).
    pub fn is_pure_query(&self) -> bool {
        self.items.iter().all(Expr::is_query)
    }

    /// All variables in the request.
    pub fn vars(&self) -> BTreeSet<Var> {
        let mut s = BTreeSet::new();
        for e in &self.items {
            e.collect_vars(&mut s);
        }
        s
    }
}

/// A view-defining rule `head <- body` (§6).
#[derive(Clone, PartialEq, Debug, Serialize, Deserialize)]
pub struct Rule {
    /// Simple tuple expression on the universe; may contain higher-order
    /// variables (then this is a *higher-order view*, §6).
    pub head: Expr,
    /// Body conjuncts (each a query expression on the universe).
    pub body: Vec<Expr>,
}

/// Errors from rule / program validation.
#[derive(Clone, PartialEq, Debug)]
pub enum ClauseError {
    /// Head is not a simple tuple expression.
    HeadNotSimple,
    /// Head contains an update sign or body is required to be query-only.
    UpdateInIllegalPosition,
    /// A head variable does not occur in the body (paper §6: "all variables
    /// in the head occur in the body").
    UnsafeHeadVar(Var),
    /// Body of a rule contains an update expression.
    UpdateInRuleBody,
}

impl fmt::Display for ClauseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClauseError::HeadNotSimple => write!(f, "rule head must be a simple tuple expression"),
            ClauseError::UpdateInIllegalPosition => {
                write!(f, "update expression not allowed here")
            }
            ClauseError::UnsafeHeadVar(v) => {
                write!(f, "head variable {v} does not occur in the body")
            }
            ClauseError::UpdateInRuleBody => write!(f, "rule bodies must be query expressions"),
        }
    }
}

impl std::error::Error for ClauseError {}

impl Rule {
    /// Builds and validates a rule.
    pub fn new(head: Expr, body: Vec<Expr>) -> Result<Self, ClauseError> {
        let r = Rule { head, body };
        r.validate()?;
        Ok(r)
    }

    /// Checks the paper's §6 well-formedness conditions.
    pub fn validate(&self) -> Result<(), ClauseError> {
        if !matches!(self.head, Expr::Tuple(_)) || !self.head.is_simple() {
            return Err(ClauseError::HeadNotSimple);
        }
        // The head may be written with an explicit `+` (make-true) but no
        // other update form; we normalise by forbidding any sign except a
        // leading set-plus, which parse normalisation strips.
        if self.head.has_update() {
            return Err(ClauseError::UpdateInIllegalPosition);
        }
        for b in &self.body {
            if b.has_update() {
                return Err(ClauseError::UpdateInRuleBody);
            }
        }
        let mut body_vars = BTreeSet::new();
        for b in &self.body {
            b.collect_vars(&mut body_vars);
        }
        for v in self.head.vars() {
            if !body_vars.contains(&v) {
                return Err(ClauseError::UnsafeHeadVar(v));
            }
        }
        Ok(())
    }

    /// Whether the head contains a higher-order variable — i.e. this rule
    /// defines a *higher-order view* (§6).
    pub fn is_higher_order(&self) -> bool {
        self.head.has_higher_order_var()
    }
}

/// One clause of an update program `head -> body` (§7.1).
#[derive(Clone, PartialEq, Debug, Serialize, Deserialize)]
pub struct ProgramClause {
    /// Simple tuple expression naming the program and its parameters, e.g.
    /// `.dbU.delStk(.stk=S, .date=D)`.
    pub head: Expr,
    /// Body items: update and/or query expressions, executed left to right
    /// with parameters passed top-down.
    pub body: Vec<Expr>,
}

impl ProgramClause {
    /// Builds and validates a clause. The head must be a simple tuple
    /// expression; it *may* carry an update sign — §7.2 names view-update
    /// programs `dbX.p+(exp)` / `dbX.p-(exp)`. Bodies may freely mix query
    /// and update items.
    pub fn new(head: Expr, body: Vec<Expr>) -> Result<Self, ClauseError> {
        if !matches!(head, Expr::Tuple(_)) || !head.is_simple() {
            return Err(ClauseError::HeadNotSimple);
        }
        Ok(ProgramClause { head, body })
    }
}

/// A top-level statement.
#[derive(Clone, PartialEq, Debug, Serialize, Deserialize)]
pub enum Statement {
    /// `?…` — query or update request.
    Request(Request),
    /// `head <- body` — view rule.
    Rule(Rule),
    /// `head -> body` — update-program clause.
    Program(ProgramClause),
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_query() -> Expr {
        // .euter.r(.stkCode=hp, .clsPrice>60)
        Expr::path(
            ["euter", "r"],
            Expr::scan(vec![
                Field::q("stkCode", Expr::eq("hp")),
                Field::q("clsPrice", Expr::cmp(RelOp::Gt, 60i64)),
            ]),
        )
    }

    #[test]
    fn builders_produce_expected_shape() {
        let e = sample_query();
        let Expr::Tuple(fs) = &e else { panic!() };
        assert_eq!(fs.len(), 1);
        assert_eq!(fs[0].attr, AttrTerm::c("euter"));
        assert!(e.is_query());
        assert!(!e.is_simple(), "contains >");
        assert!(e.is_ground());
        assert!(!e.has_higher_order_var());
    }

    #[test]
    fn higher_order_detection() {
        // .X.Y(.stkCode ε)
        let e = Expr::path(["X", "Y"], Expr::scan(vec![Field::q("stkCode", Expr::Epsilon)]));
        assert!(e.has_higher_order_var());
        assert_eq!(e.vars().len(), 2);
    }

    #[test]
    fn var_collection_includes_terms_and_attrs() {
        let e = Expr::path(
            ["chwab", "r"],
            Expr::scan(vec![Field::q("date", Expr::eq_var("D")), Field::q("S", Expr::eq_var("P"))]),
        );
        let vars = e.vars();
        let names: Vec<_> = vars.iter().map(|v| v.0.as_str()).collect();
        assert_eq!(names, vec!["D", "P", "S"]);
    }

    #[test]
    fn update_detection() {
        let e = Expr::path(
            ["euter", "r"],
            Expr::SetUpdate(
                Sign::Plus,
                Box::new(Expr::Tuple(vec![Field::q("stkCode", Expr::eq("hp"))])),
            ),
        );
        assert!(e.has_update());
        assert!(!e.is_query());
        assert!(e.is_simple());
    }

    #[test]
    fn rule_validation_rejects_unsafe_head() {
        let head = Expr::Tuple(vec![Field::q(
            "dbI",
            Expr::Tuple(vec![Field::q(
                "p",
                Expr::Set(Box::new(Expr::Tuple(vec![Field::q("stk", Expr::eq_var("S"))]))),
            )]),
        )]);
        let body = vec![Expr::path(
            ["euter", "r"],
            Expr::scan(vec![Field::q("stkCode", Expr::eq_var("T"))]),
        )];
        let err = Rule::new(head, body).unwrap_err();
        assert!(matches!(err, ClauseError::UnsafeHeadVar(v) if v.0.as_str() == "S"));
    }

    #[test]
    fn rule_validation_rejects_nonsimple_head() {
        let head = Expr::path(
            ["dbI", "p"],
            Expr::scan(vec![Field::q("clsPrice", Expr::cmp(RelOp::Gt, 10i64))]),
        );
        assert!(matches!(Rule::new(head, vec![]), Err(ClauseError::HeadNotSimple)));
    }

    #[test]
    fn rule_validation_rejects_update_in_body() {
        let head = Expr::path(["dbI", "p"], Expr::scan(vec![Field::q("a", Expr::eq(1i64))]));
        let body =
            vec![Expr::path(["euter", "r"], Expr::SetUpdate(Sign::Minus, Box::new(Expr::Epsilon)))];
        assert!(matches!(Rule::new(head, body), Err(ClauseError::UpdateInRuleBody)));
    }

    #[test]
    fn higher_order_rule_flag() {
        // .dbO.S(+…) style head with variable relation name
        let head = Expr::Tuple(vec![Field::q(
            "dbO",
            Expr::Tuple(vec![Field {
                sign: None,
                attr: AttrTerm::v("S"),
                expr: Expr::Set(Box::new(Expr::Tuple(vec![Field::q("date", Expr::eq_var("D"))]))),
            }]),
        )]);
        let body = vec![Expr::path(
            ["dbI", "p"],
            Expr::scan(vec![
                Field::q("stk", Expr::eq_var("S")),
                Field::q("date", Expr::eq_var("D")),
            ]),
        )];
        let r = Rule::new(head, body).unwrap();
        assert!(r.is_higher_order());
    }

    #[test]
    fn relop_matches_and_flip() {
        use std::cmp::Ordering::*;
        assert!(RelOp::Lt.matches(Less));
        assert!(!RelOp::Lt.matches(Equal));
        assert!(RelOp::Le.matches(Equal));
        assert!(RelOp::Ne.matches(Greater));
        assert!(RelOp::Ge.matches(Greater));
        for op in [RelOp::Lt, RelOp::Le, RelOp::Eq, RelOp::Ne, RelOp::Gt, RelOp::Ge] {
            for ord in [Less, Equal, Greater] {
                assert_eq!(op.matches(ord), op.flip().matches(ord.reverse()));
            }
        }
    }

    #[test]
    fn request_purity() {
        let q = Request::new(vec![sample_query()]);
        assert!(q.is_pure_query());
        let u = Request::new(vec![
            sample_query(),
            Expr::path(["euter", "r"], Expr::SetUpdate(Sign::Minus, Box::new(Expr::Epsilon))),
        ]);
        assert!(!u.is_pure_query());
    }
}
