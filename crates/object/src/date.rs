//! Calendar dates.
//!
//! The paper's running example keys every stock relation by a `date`
//! attribute, written in the text as `3/3/85`. We implement a small proleptic
//! Gregorian date type with exactly the operations the workloads and the
//! surface syntax need: parsing `m/d/y`, ISO `y-m-d`, ordering, and day
//! arithmetic for generating consecutive trading days.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;

/// A proleptic Gregorian calendar date.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Date {
    year: i32,
    month: u8,
    day: u8,
}

/// Error produced when constructing or parsing an invalid date.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DateError(pub String);

impl fmt::Display for DateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid date: {}", self.0)
    }
}

impl std::error::Error for DateError {}

const DAYS_IN_MONTH: [u8; 12] = [31, 28, 31, 30, 31, 30, 31, 31, 30, 31, 30, 31];

fn is_leap(year: i32) -> bool {
    (year % 4 == 0 && year % 100 != 0) || year % 400 == 0
}

fn days_in_month(year: i32, month: u8) -> u8 {
    if month == 2 && is_leap(year) {
        29
    } else {
        DAYS_IN_MONTH[(month - 1) as usize]
    }
}

impl Date {
    /// Constructs a date, validating month and day ranges.
    pub fn new(year: i32, month: u8, day: u8) -> Result<Self, DateError> {
        if !(1..=12).contains(&month) {
            return Err(DateError(format!("month {month} out of range")));
        }
        if day == 0 || day > days_in_month(year, month) {
            return Err(DateError(format!("day {day} out of range for {year}-{month:02}")));
        }
        Ok(Date { year, month, day })
    }

    /// The year component.
    pub fn year(&self) -> i32 {
        self.year
    }

    /// The month component (1–12).
    pub fn month(&self) -> u8 {
        self.month
    }

    /// The day-of-month component (1-based).
    pub fn day(&self) -> u8 {
        self.day
    }

    /// Days since the epoch `1970-01-01` (may be negative).
    pub fn to_epoch_days(&self) -> i64 {
        // Howard Hinnant's `days_from_civil` algorithm.
        let y = if self.month <= 2 { self.year - 1 } else { self.year } as i64;
        let era = if y >= 0 { y } else { y - 399 } / 400;
        let yoe = y - era * 400;
        let m = self.month as i64;
        let d = self.day as i64;
        let doy = (153 * (if m > 2 { m - 3 } else { m + 9 }) + 2) / 5 + d - 1;
        let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
        era * 146_097 + doe - 719_468
    }

    /// Inverse of [`Date::to_epoch_days`].
    pub fn from_epoch_days(z: i64) -> Self {
        let z = z + 719_468;
        let era = if z >= 0 { z } else { z - 146_096 } / 146_097;
        let doe = z - era * 146_097;
        let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365;
        let y = yoe + era * 400;
        let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
        let mp = (5 * doy + 2) / 153;
        let d = (doy - (153 * mp + 2) / 5 + 1) as u8;
        let m = (if mp < 10 { mp + 3 } else { mp - 9 }) as u8;
        let year = (if m <= 2 { y + 1 } else { y }) as i32;
        Date { year, month: m, day: d }
    }

    /// Returns the date `n` days after (`n` may be negative) this one.
    pub fn plus_days(&self, n: i64) -> Self {
        Date::from_epoch_days(self.to_epoch_days() + n)
    }

    /// Number of days from `self` to `other` (positive when `other` later).
    pub fn days_until(&self, other: &Date) -> i64 {
        other.to_epoch_days() - self.to_epoch_days()
    }
}

impl fmt::Display for Date {
    /// Paper surface syntax: `3/3/85` (month/day/2-digit-year) for years in
    /// 1900–1999, otherwise ISO `yyyy-mm-dd`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if (1900..2000).contains(&self.year) {
            write!(f, "{}/{}/{:02}", self.month, self.day, self.year - 1900)
        } else {
            write!(f, "{:04}-{:02}-{:02}", self.year, self.month, self.day)
        }
    }
}

impl fmt::Debug for Date {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Date({:04}-{:02}-{:02})", self.year, self.month, self.day)
    }
}

impl FromStr for Date {
    type Err = DateError;

    /// Accepts `m/d/yy` (two-digit years are 1900-relative, as in the
    /// paper's `3/3/85`), `m/d/yyyy`, and ISO `yyyy-mm-dd`.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let bad = || DateError(format!("cannot parse {s:?}"));
        if s.contains('-') {
            let mut it = s.splitn(3, '-');
            let y: i32 = it.next().ok_or_else(bad)?.parse().map_err(|_| bad())?;
            let m: u8 = it.next().ok_or_else(bad)?.parse().map_err(|_| bad())?;
            let d: u8 = it.next().ok_or_else(bad)?.parse().map_err(|_| bad())?;
            Date::new(y, m, d)
        } else if s.contains('/') {
            let mut it = s.splitn(3, '/');
            let m: u8 = it.next().ok_or_else(bad)?.parse().map_err(|_| bad())?;
            let d: u8 = it.next().ok_or_else(bad)?.parse().map_err(|_| bad())?;
            let ys = it.next().ok_or_else(bad)?;
            let y: i32 = ys.parse().map_err(|_| bad())?;
            let y = if ys.len() <= 2 { y + 1900 } else { y };
            Date::new(y, m, d)
        } else {
            Err(bad())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_literal_parses() {
        let d: Date = "3/3/85".parse().unwrap();
        assert_eq!((d.year(), d.month(), d.day()), (1985, 3, 3));
        assert_eq!(d.to_string(), "3/3/85");
    }

    #[test]
    fn iso_parses_and_displays() {
        let d: Date = "2026-07-07".parse().unwrap();
        assert_eq!(d.to_string(), "2026-07-07");
        let round: Date = d.to_string().parse().unwrap();
        assert_eq!(d, round);
    }

    #[test]
    fn rejects_invalid() {
        assert!("2/30/85".parse::<Date>().is_err());
        assert!("13/1/85".parse::<Date>().is_err());
        assert!("0/1/85".parse::<Date>().is_err());
        assert!("1985".parse::<Date>().is_err());
        assert!(Date::new(2025, 2, 29).is_err());
        assert!(Date::new(2024, 2, 29).is_ok());
    }

    #[test]
    fn epoch_round_trip() {
        for z in [-1000, -1, 0, 1, 20_000, 100_000] {
            let d = Date::from_epoch_days(z);
            assert_eq!(d.to_epoch_days(), z);
        }
        assert_eq!(Date::from_epoch_days(0), Date::new(1970, 1, 1).unwrap());
    }

    #[test]
    fn day_arithmetic() {
        let d = Date::new(1985, 3, 3).unwrap();
        assert_eq!(d.plus_days(1), Date::new(1985, 3, 4).unwrap());
        assert_eq!(d.plus_days(29), Date::new(1985, 4, 1).unwrap());
        assert_eq!(d.plus_days(-3), Date::new(1985, 2, 28).unwrap());
        assert_eq!(d.days_until(&d.plus_days(365)), 365);
    }

    #[test]
    fn ordering_is_chronological() {
        let a = Date::new(1985, 3, 3).unwrap();
        let b = Date::new(1985, 12, 1).unwrap();
        let c = Date::new(1986, 1, 1).unwrap();
        assert!(a < b && b < c);
    }

    #[test]
    fn leap_year_rules() {
        assert!(is_leap(2000));
        assert!(!is_leap(1900));
        assert!(is_leap(1984));
        assert!(!is_leap(1985));
    }
}
