//! The unified object type.

use crate::{Atom, Name, SetObj, TupleObj};
use serde::{Deserialize, Serialize};
use std::fmt;

/// The three object categories of paper §3.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Kind {
    /// Atomic object.
    Atom,
    /// Tuple object.
    Tuple,
    /// Set object.
    Set,
}

impl fmt::Display for Kind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Kind::Atom => write!(f, "atom"),
            Kind::Tuple => write!(f, "tuple"),
            Kind::Set => write!(f, "set"),
        }
    }
}

/// An IDL object: an atom, a tuple of named objects, or a set of objects.
///
/// Everything in the model — a closing price, a relation, a database, and
/// the entire multidatabase *universe* — is a `Value`. Structural
/// `Eq`/`Ord`/`Hash` make the model value-based (no object identity).
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Value {
    /// An atomic object.
    Atom(Atom),
    /// A tuple object: a finite map from attribute names to objects.
    Tuple(TupleObj),
    /// A set object: a set of objects (possibly heterogeneous).
    Set(SetObj),
}

impl Value {
    /// The null atom, used as the "deleted" value (§5.2).
    pub fn null() -> Self {
        Value::Atom(Atom::Null)
    }

    /// An empty tuple.
    pub fn empty_tuple() -> Self {
        Value::Tuple(TupleObj::new())
    }

    /// An empty set.
    pub fn empty_set() -> Self {
        Value::Set(SetObj::new())
    }

    /// A string atom.
    pub fn str(s: impl AsRef<str>) -> Self {
        Value::Atom(Atom::str(s))
    }

    /// An integer atom.
    pub fn int(v: i64) -> Self {
        Value::Atom(Atom::Int(v))
    }

    /// A float atom.
    pub fn float(v: f64) -> Self {
        Value::Atom(Atom::float(v))
    }

    /// A bool atom.
    pub fn bool(v: bool) -> Self {
        Value::Atom(Atom::Bool(v))
    }

    /// A date atom.
    pub fn date(d: crate::Date) -> Self {
        Value::Atom(Atom::Date(d))
    }

    /// Which of the three categories this object belongs to.
    pub fn kind(&self) -> Kind {
        match self {
            Value::Atom(_) => Kind::Atom,
            Value::Tuple(_) => Kind::Tuple,
            Value::Set(_) => Kind::Set,
        }
    }

    /// Whether this is the null atom.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Atom(Atom::Null))
    }

    /// The atom, if atomic.
    pub fn as_atom(&self) -> Option<&Atom> {
        match self {
            Value::Atom(a) => Some(a),
            _ => None,
        }
    }

    /// The tuple, if a tuple object.
    pub fn as_tuple(&self) -> Option<&TupleObj> {
        match self {
            Value::Tuple(t) => Some(t),
            _ => None,
        }
    }

    /// Mutable tuple access.
    pub fn as_tuple_mut(&mut self) -> Option<&mut TupleObj> {
        match self {
            Value::Tuple(t) => Some(t),
            _ => None,
        }
    }

    /// The set, if a set object.
    pub fn as_set(&self) -> Option<&SetObj> {
        match self {
            Value::Set(s) => Some(s),
            _ => None,
        }
    }

    /// Mutable set access.
    pub fn as_set_mut(&mut self) -> Option<&mut SetObj> {
        match self {
            Value::Set(s) => Some(s),
            _ => None,
        }
    }

    /// Navigates one attribute step (tuples only).
    pub fn attr(&self, name: &str) -> Option<&Value> {
        self.as_tuple().and_then(|t| t.get(name))
    }

    /// Total number of nodes (atoms + tuples + sets) in this object tree.
    /// Used by tests and benches to characterise workloads.
    pub fn node_count(&self) -> usize {
        match self {
            Value::Atom(_) => 1,
            Value::Tuple(t) => 1 + t.values().map(Value::node_count).sum::<usize>(),
            Value::Set(s) => 1 + s.iter().map(Value::node_count).sum::<usize>(),
        }
    }

    /// Maximum nesting depth (an atom has depth 1).
    pub fn depth(&self) -> usize {
        match self {
            Value::Atom(_) => 1,
            Value::Tuple(t) => 1 + t.values().map(Value::depth).max().unwrap_or(0),
            Value::Set(s) => 1 + s.iter().map(Value::depth).max().unwrap_or(0),
        }
    }

    /// A structurally equal copy that shares **no** interior allocation
    /// with `self` — every tuple and set in the tree is rebuilt.
    ///
    /// Ordinary [`Clone`] is an O(1) copy-on-write handle bump; this is the
    /// deliberate O(n) escape hatch for sharing-free reference builds
    /// (differential tests, deep-copy bench baselines). Counted by
    /// [`sharing::SharingCounters::deep_clones`](crate::SharingCounters)
    /// (one count per call, not per node).
    pub fn deep_clone(&self) -> Value {
        crate::sharing::record_deep_clone();
        self.deep_clone_rec()
    }

    fn deep_clone_rec(&self) -> Value {
        match self {
            Value::Atom(a) => Value::Atom(a.clone()),
            Value::Tuple(t) => {
                Value::Tuple(t.iter().map(|(k, v)| (k.clone(), v.deep_clone_rec())).collect())
            }
            Value::Set(s) => Value::Set(s.iter().map(Value::deep_clone_rec).collect()),
        }
    }
}

impl Default for Value {
    fn default() -> Self {
        Value::null()
    }
}

impl fmt::Display for Value {
    /// Paper surface syntax: atoms bare, tuples `(a:1, b:2)`, sets `{…}`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Atom(a) => write!(f, "{a}"),
            Value::Tuple(t) => {
                write!(f, "(")?;
                for (i, (k, v)) in t.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{k}:{v}")?;
                }
                write!(f, ")")
            }
            Value::Set(s) => {
                write!(f, "{{")?;
                for (i, v) in s.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, "}}")
            }
        }
    }
}

impl fmt::Debug for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

impl From<Atom> for Value {
    fn from(a: Atom) -> Self {
        Value::Atom(a)
    }
}

impl From<TupleObj> for Value {
    fn from(t: TupleObj) -> Self {
        Value::Tuple(t)
    }
}

impl From<SetObj> for Value {
    fn from(s: SetObj) -> Self {
        Value::Set(s)
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::int(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::float(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::str(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::bool(v)
    }
}

impl From<Name> for Value {
    fn from(v: Name) -> Self {
        Value::Atom(Atom::Str(v))
    }
}

impl From<crate::Date> for Value {
    fn from(v: crate::Date) -> Self {
        Value::date(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{set, tuple};

    #[test]
    fn kinds_and_accessors() {
        let a = Value::int(1);
        let t = Value::empty_tuple();
        let s = Value::empty_set();
        assert_eq!(a.kind(), Kind::Atom);
        assert_eq!(t.kind(), Kind::Tuple);
        assert_eq!(s.kind(), Kind::Set);
        assert!(a.as_atom().is_some() && a.as_tuple().is_none() && a.as_set().is_none());
        assert!(t.as_tuple().is_some());
        assert!(s.as_set().is_some());
    }

    #[test]
    fn display_matches_paper_syntax() {
        let v = tuple! { name: "john", sal: 10_000i64 };
        assert_eq!(v.to_string(), "(name:john, sal:10000)");
        let s = set![tuple! { a: 1i64 }, tuple! { a: 2i64 }];
        assert_eq!(s.to_string(), "{(a:1), (a:2)}");
    }

    #[test]
    fn node_count_and_depth() {
        let v = set![tuple! { a: 1i64, b: set![Value::int(2)] }];
        // set + tuple + atom(a) + set(b) + atom(2)
        assert_eq!(v.node_count(), 5);
        assert_eq!(v.depth(), 4);
        assert_eq!(Value::int(3).depth(), 1);
    }

    #[test]
    fn value_based_equality() {
        let a = tuple! { x: 1i64, y: 2i64 };
        let b = tuple! { y: 2i64, x: 1i64 };
        assert_eq!(a, b, "attribute order is immaterial");
        let s1 = set![a.clone(), a.clone()];
        assert_eq!(s1.as_set().unwrap().len(), 1, "sets deduplicate by value");
        assert_eq!(s1, set![b]);
    }

    #[test]
    fn deep_clone_shares_nothing() {
        let inner = set![Value::int(2)];
        let v = set![tuple! { a: 1i64, b: inner }];
        let shallow = v.clone();
        let deep = v.deep_clone();
        assert_eq!(deep, v, "structurally equal");
        assert!(v.as_set().unwrap().shares_with(shallow.as_set().unwrap()));
        assert!(!v.as_set().unwrap().shares_with(deep.as_set().unwrap()));
        let vt = v.as_set().unwrap().iter().next().unwrap().as_tuple().unwrap();
        let dt = deep.as_set().unwrap().iter().next().unwrap().as_tuple().unwrap();
        assert!(!vt.shares_with(dt), "nested tuples rebuilt too");
        assert!(!vt
            .get("b")
            .unwrap()
            .as_set()
            .unwrap()
            .shares_with(dt.get("b").unwrap().as_set().unwrap()));
    }

    #[test]
    fn serde_round_trip() {
        let v = set![tuple! { date: Value::str("3/3/85"), hp: 50i64 }];
        let json = serde_json::to_string(&v).unwrap();
        let back: Value = serde_json::from_str(&json).unwrap();
        assert_eq!(v, back);
    }
}
