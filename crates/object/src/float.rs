//! Totally ordered floating point wrapper.
//!
//! The object model is value-based (§3): atoms must support structural
//! equality, hashing and a total order so that sets of atoms (e.g. sets of
//! closing prices) are well-defined. IEEE `f64` provides none of that, so
//! [`F64`] canonicalises NaN and negative zero and orders by
//! [`f64::total_cmp`].

use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};

/// An `f64` with total ordering, structural equality, and hashing.
///
/// * all NaNs collapse to one canonical NaN (quiet, positive);
/// * `-0.0` collapses to `+0.0`;
/// * ordering is `total_cmp`, so `NaN` sorts above `+inf`.
#[derive(Clone, Copy, Serialize, Deserialize)]
#[serde(transparent)]
pub struct F64(f64);

impl F64 {
    /// Wraps a float, canonicalising NaN and negative zero.
    pub fn new(v: f64) -> Self {
        if v.is_nan() {
            F64(f64::NAN)
        } else if v == 0.0 {
            F64(0.0)
        } else {
            F64(v)
        }
    }

    /// The underlying float.
    pub fn get(self) -> f64 {
        self.0
    }

    /// Whether the value is NaN.
    pub fn is_nan(self) -> bool {
        self.0.is_nan()
    }
}

impl From<f64> for F64 {
    fn from(v: f64) -> Self {
        F64::new(v)
    }
}

impl From<F64> for f64 {
    fn from(v: F64) -> Self {
        v.0
    }
}

impl PartialEq for F64 {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl Eq for F64 {}

impl PartialOrd for F64 {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for F64 {
    fn cmp(&self, other: &Self) -> Ordering {
        self.0.total_cmp(&other.0)
    }
}

impl Hash for F64 {
    fn hash<H: Hasher>(&self, state: &mut H) {
        // Canonicalisation in `new` guarantees bit-identical representations
        // for values that compare equal.
        self.0.to_bits().hash(state);
    }
}

impl fmt::Debug for F64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?}", self.0)
    }
}

impl fmt::Display for F64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0.fract() == 0.0 && self.0.abs() < 1e15 {
            // Keep a trailing `.0` so the literal re-parses as a float.
            write!(f, "{:.1}", self.0)
        } else {
            write!(f, "{}", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn nan_is_canonical_and_equal_to_itself() {
        let a = F64::new(f64::NAN);
        let b = F64::new(-f64::NAN);
        assert_eq!(a, b);
        assert!(a.is_nan());
    }

    #[test]
    fn negative_zero_collapses() {
        assert_eq!(F64::new(-0.0), F64::new(0.0));
        assert_eq!(F64::new(-0.0).get().to_bits(), 0.0f64.to_bits());
    }

    #[test]
    fn total_order() {
        let mut s = BTreeSet::new();
        for v in [1.5, -3.0, f64::INFINITY, f64::NEG_INFINITY, 0.0, f64::NAN] {
            s.insert(F64::new(v));
        }
        let v: Vec<f64> = s.iter().map(|x| x.get()).collect();
        assert_eq!(v[0], f64::NEG_INFINITY);
        assert_eq!(v[1], -3.0);
        assert_eq!(v[2], 0.0);
        assert_eq!(v[3], 1.5);
        assert_eq!(v[4], f64::INFINITY);
        assert!(v[5].is_nan());
    }

    #[test]
    fn display_round_trips_integral_floats() {
        assert_eq!(F64::new(50.0).to_string(), "50.0");
        assert_eq!(F64::new(50.25).to_string(), "50.25");
    }
}
