//! Attribute paths into nested objects.
//!
//! A path like `.euter.r` names the object reached from the universe tuple by
//! following attribute `euter` then attribute `r`. Paths are how the storage
//! layer and the rule engine address databases and relations inside the
//! universe tuple.

use crate::{Name, Value};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A sequence of attribute names, navigated from an (implicit) root tuple.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct Path(Vec<Name>);

impl Path {
    /// The empty path (names the root itself).
    pub fn root() -> Self {
        Path(Vec::new())
    }

    /// Builds a path from name-like segments.
    pub fn new<N: Into<Name>, I: IntoIterator<Item = N>>(segments: I) -> Self {
        Path(segments.into_iter().map(Into::into).collect())
    }

    /// Number of segments.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether this is the root path.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// The segments.
    pub fn segments(&self) -> &[Name] {
        &self.0
    }

    /// Appends a segment, returning the extended path.
    pub fn child(&self, seg: impl Into<Name>) -> Path {
        let mut p = self.clone();
        p.0.push(seg.into());
        p
    }

    /// Appends a segment in place.
    pub fn push(&mut self, seg: impl Into<Name>) {
        self.0.push(seg.into());
    }

    /// Drops the last segment, returning it.
    pub fn pop(&mut self) -> Option<Name> {
        self.0.pop()
    }

    /// Resolves the path inside `root`, read-only.
    ///
    /// Returns `None` if any intermediate step is missing or not a tuple.
    pub fn get<'v>(&self, root: &'v Value) -> Option<&'v Value> {
        let mut cur = root;
        for seg in &self.0 {
            cur = cur.as_tuple()?.get(seg.as_str())?;
        }
        Some(cur)
    }

    /// Resolves the path inside `root`, mutably.
    pub fn get_mut<'v>(&self, root: &'v mut Value) -> Option<&'v mut Value> {
        let mut cur = root;
        for seg in &self.0 {
            cur = cur.as_tuple_mut()?.get_mut(seg.as_str())?;
        }
        Some(cur)
    }

    /// Resolves the path, creating missing intermediate tuples along the way
    /// (the "empty object" materialisation of §5.2: an absent attribute is
    /// created with an empty object when an update needs it).
    ///
    /// Returns `None` only if an *existing* intermediate object is not a
    /// tuple (the update would be "in error", §5.2).
    pub fn ensure<'v>(&self, root: &'v mut Value) -> Option<&'v mut Value> {
        let mut cur = root;
        for seg in &self.0 {
            let t = cur.as_tuple_mut()?;
            cur = t.get_or_insert_with(seg.clone(), Value::empty_tuple);
        }
        Some(cur)
    }
}

impl fmt::Display for Path {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0.is_empty() {
            return write!(f, "<root>");
        }
        for seg in &self.0 {
            write!(f, ".{seg}")?;
        }
        Ok(())
    }
}

impl fmt::Debug for Path {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Path({self})")
    }
}

impl<N: Into<Name>> FromIterator<N> for Path {
    fn from_iter<I: IntoIterator<Item = N>>(iter: I) -> Self {
        Path::new(iter)
    }
}

impl From<&str> for Path {
    /// Parses a dotted path: `".euter.r"` or `"euter.r"`.
    fn from(s: &str) -> Self {
        Path::new(s.split('.').filter(|seg| !seg.is_empty()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{set, tuple};

    fn sample() -> Value {
        tuple! {
            euter: tuple! { r: set![tuple! { stkCode: "hp", clsPrice: 50i64 }] }
        }
    }

    #[test]
    fn display_and_parse() {
        let p = Path::from(".euter.r");
        assert_eq!(p.to_string(), ".euter.r");
        assert_eq!(p.len(), 2);
        assert_eq!(Path::root().to_string(), "<root>");
        assert_eq!(Path::from("euter.r"), Path::from(".euter.r"));
    }

    #[test]
    fn get_navigates() {
        let u = sample();
        let r = Path::from(".euter.r").get(&u).unwrap();
        assert_eq!(r.as_set().unwrap().len(), 1);
        assert!(Path::from(".euter.s").get(&u).is_none());
        assert!(Path::from(".euter.r.x").get(&u).is_none(), "set is not a tuple");
        assert_eq!(Path::root().get(&u), Some(&u));
    }

    #[test]
    fn get_mut_mutates() {
        let mut u = sample();
        let r = Path::from(".euter.r").get_mut(&mut u).unwrap();
        r.as_set_mut().unwrap().insert(tuple! { stkCode: "ibm" });
        assert_eq!(Path::from(".euter.r").get(&u).unwrap().as_set().unwrap().len(), 2);
    }

    #[test]
    fn ensure_creates_intermediate_tuples() {
        let mut u = Value::empty_tuple();
        {
            let v = Path::from(".chwab.r").ensure(&mut u).unwrap();
            *v = Value::empty_set();
        }
        assert!(Path::from(".chwab.r").get(&u).unwrap().as_set().is_some());
        // existing non-tuple intermediate refuses
        assert!(Path::from(".chwab.r.x").ensure(&mut u).is_none());
    }

    #[test]
    fn child_and_pop() {
        let mut p = Path::from(".euter");
        let q = p.child("r");
        assert_eq!(q.to_string(), ".euter.r");
        p.push("r");
        assert_eq!(p, q);
        assert_eq!(p.pop().unwrap().as_str(), "r");
    }
}
