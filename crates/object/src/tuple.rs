//! Tuple objects: finite maps from attribute names to objects.

use crate::{Name, Value};
use serde::{Deserialize, Serialize};
use std::collections::btree_map::{self, BTreeMap};

/// A tuple object `(attr1:obj1, …, attrk:objk)` (paper §3).
///
/// Attributes are unordered semantically — `(x:1, y:2)` equals `(y:2, x:1)`
/// — which the `BTreeMap` representation gives for free, along with
/// deterministic iteration. Arity is per-tuple: two tuples in the same set
/// may have different attribute sets (heterogeneous sets, §3).
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
#[serde(transparent)]
pub struct TupleObj {
    fields: BTreeMap<Name, Value>,
}

impl TupleObj {
    /// An empty tuple.
    pub fn new() -> Self {
        TupleObj { fields: BTreeMap::new() }
    }

    /// Builds a tuple from attribute/value pairs. Later duplicates win.
    pub fn from_pairs<N, V, I>(pairs: I) -> Self
    where
        N: Into<Name>,
        V: Into<Value>,
        I: IntoIterator<Item = (N, V)>,
    {
        let mut t = TupleObj::new();
        for (n, v) in pairs {
            t.insert(n.into(), v.into());
        }
        t
    }

    /// Number of attributes.
    pub fn arity(&self) -> usize {
        self.fields.len()
    }

    /// Whether the tuple has no attributes.
    pub fn is_empty(&self) -> bool {
        self.fields.is_empty()
    }

    /// The object associated with `attr`, if present.
    pub fn get(&self, attr: &str) -> Option<&Value> {
        self.fields.get(attr)
    }

    /// Mutable access to the object associated with `attr`.
    pub fn get_mut(&mut self, attr: &str) -> Option<&mut Value> {
        self.fields.get_mut(attr)
    }

    /// Whether the attribute exists.
    pub fn contains(&self, attr: &str) -> bool {
        self.fields.contains_key(attr)
    }

    /// Sets `attr` to `value`, returning the previous object if any.
    pub fn insert(&mut self, attr: impl Into<Name>, value: impl Into<Value>) -> Option<Value> {
        self.fields.insert(attr.into(), value.into())
    }

    /// Removes `attr`, returning its object if it was present.
    pub fn remove(&mut self, attr: &str) -> Option<Value> {
        self.fields.remove(attr)
    }

    /// Entry-style access: the object at `attr`, inserting `default` first
    /// when absent.
    pub fn get_or_insert_with(
        &mut self,
        attr: impl Into<Name>,
        default: impl FnOnce() -> Value,
    ) -> &mut Value {
        self.fields.entry(attr.into()).or_insert_with(default)
    }

    /// Iterates attributes in name order.
    pub fn iter(&self) -> btree_map::Iter<'_, Name, Value> {
        self.fields.iter()
    }

    /// Iterates attributes mutably in name order.
    pub fn iter_mut(&mut self) -> btree_map::IterMut<'_, Name, Value> {
        self.fields.iter_mut()
    }

    /// Iterates attribute names in order.
    pub fn keys(&self) -> impl Iterator<Item = &Name> {
        self.fields.keys()
    }

    /// Iterates attribute objects in name order.
    pub fn values(&self) -> impl Iterator<Item = &Value> {
        self.fields.values()
    }

    /// Retains only the attributes for which the predicate holds.
    pub fn retain(&mut self, mut f: impl FnMut(&Name, &mut Value) -> bool) {
        self.fields.retain(|k, v| f(k, v));
    }

    /// Merges `other` into `self`; on conflict, `other` wins.
    pub fn merge(&mut self, other: TupleObj) {
        for (k, v) in other.fields {
            self.fields.insert(k, v);
        }
    }
}

impl std::fmt::Debug for TupleObj {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_map().entries(self.fields.iter()).finish()
    }
}

impl IntoIterator for TupleObj {
    type Item = (Name, Value);
    type IntoIter = btree_map::IntoIter<Name, Value>;

    fn into_iter(self) -> Self::IntoIter {
        self.fields.into_iter()
    }
}

impl<'a> IntoIterator for &'a TupleObj {
    type Item = (&'a Name, &'a Value);
    type IntoIter = btree_map::Iter<'a, Name, Value>;

    fn into_iter(self) -> Self::IntoIter {
        self.fields.iter()
    }
}

impl<N: Into<Name>, V: Into<Value>> FromIterator<(N, V)> for TupleObj {
    fn from_iter<I: IntoIterator<Item = (N, V)>>(iter: I) -> Self {
        TupleObj::from_pairs(iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_remove() {
        let mut t = TupleObj::new();
        assert!(t.is_empty());
        assert_eq!(t.insert("sal", 10i64), None);
        assert_eq!(t.insert("sal", 20i64), Some(Value::int(10)));
        assert_eq!(t.get("sal"), Some(&Value::int(20)));
        assert!(t.contains("sal"));
        assert_eq!(t.arity(), 1);
        assert_eq!(t.remove("sal"), Some(Value::int(20)));
        assert!(!t.contains("sal"));
    }

    #[test]
    fn iteration_is_name_ordered() {
        let t = TupleObj::from_pairs([("z", 1i64), ("a", 2i64), ("m", 3i64)]);
        let keys: Vec<_> = t.keys().map(Name::as_str).collect();
        assert_eq!(keys, vec!["a", "m", "z"]);
    }

    #[test]
    fn get_or_insert_with() {
        let mut t = TupleObj::new();
        {
            let v = t.get_or_insert_with("r", Value::empty_set);
            v.as_set_mut().unwrap().insert(Value::int(1));
        }
        let v = t.get_or_insert_with("r", Value::empty_set);
        assert_eq!(v.as_set().unwrap().len(), 1, "existing object is kept");
    }

    #[test]
    fn merge_prefers_other() {
        let mut a = TupleObj::from_pairs([("x", 1i64), ("y", 2i64)]);
        let b = TupleObj::from_pairs([("y", 9i64), ("z", 3i64)]);
        a.merge(b);
        assert_eq!(a.get("x"), Some(&Value::int(1)));
        assert_eq!(a.get("y"), Some(&Value::int(9)));
        assert_eq!(a.get("z"), Some(&Value::int(3)));
    }

    #[test]
    fn retain_filters() {
        let mut t = TupleObj::from_pairs([("a", 1i64), ("b", 2i64), ("c", 3i64)]);
        t.retain(|_, v| v.as_atom().and_then(|a| a.as_int()).unwrap() % 2 == 1);
        assert_eq!(t.arity(), 2);
        assert!(t.contains("a") && t.contains("c"));
    }
}
