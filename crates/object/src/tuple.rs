//! Tuple objects: finite maps from attribute names to objects.

use crate::{sharing, Name, Value};
use serde::{Deserialize, Serialize};
use std::collections::btree_map::{self, BTreeMap};
use std::sync::Arc;

/// A tuple object `(attr1:obj1, …, attrk:objk)` (paper §3).
///
/// Attributes are unordered semantically — `(x:1, y:2)` equals `(y:2, x:1)`
/// — which the `BTreeMap` representation gives for free, along with
/// deterministic iteration. Arity is per-tuple: two tuples in the same set
/// may have different attribute sets (heterogeneous sets, §3).
///
/// The interior map is behind an [`Arc`]: `clone` is an O(1) handle copy
/// and every `&mut` accessor routes through copy-on-write
/// (`Arc::make_mut`), so sharing is invisible to the value semantics —
/// `Eq`/`Ord`/`Hash` stay structural (with a pointer-equality fast path)
/// and the serde byte format is the bare map, unchanged
/// (`#[serde(transparent)]` + serde's `Arc` delegation).
#[derive(Default, Serialize, Deserialize)]
#[serde(transparent)]
pub struct TupleObj {
    fields: Arc<BTreeMap<Name, Value>>,
}

impl TupleObj {
    /// An empty tuple.
    pub fn new() -> Self {
        TupleObj { fields: Arc::new(BTreeMap::new()) }
    }

    /// Builds a tuple from attribute/value pairs. Later duplicates win.
    pub fn from_pairs<N, V, I>(pairs: I) -> Self
    where
        N: Into<Name>,
        V: Into<Value>,
        I: IntoIterator<Item = (N, V)>,
    {
        TupleObj {
            fields: Arc::new(pairs.into_iter().map(|(n, v)| (n.into(), v.into())).collect()),
        }
    }

    /// Copy-on-write access to the interior map: deep-copies it first iff
    /// it is shared with another handle (and counts the break).
    fn fields_mut(&mut self) -> &mut BTreeMap<Name, Value> {
        if Arc::strong_count(&self.fields) > 1 {
            sharing::record_cow_break();
        }
        Arc::make_mut(&mut self.fields)
    }

    /// Number of attributes.
    pub fn arity(&self) -> usize {
        self.fields.len()
    }

    /// Whether the tuple has no attributes.
    pub fn is_empty(&self) -> bool {
        self.fields.is_empty()
    }

    /// The object associated with `attr`, if present.
    pub fn get(&self, attr: &str) -> Option<&Value> {
        self.fields.get(attr)
    }

    /// Mutable access to the object associated with `attr`.
    pub fn get_mut(&mut self, attr: &str) -> Option<&mut Value> {
        // Read-check first: a miss must not break sharing.
        if !self.fields.contains_key(attr) {
            return None;
        }
        self.fields_mut().get_mut(attr)
    }

    /// Whether the attribute exists.
    pub fn contains(&self, attr: &str) -> bool {
        self.fields.contains_key(attr)
    }

    /// Sets `attr` to `value`, returning the previous object if any.
    pub fn insert(&mut self, attr: impl Into<Name>, value: impl Into<Value>) -> Option<Value> {
        self.fields_mut().insert(attr.into(), value.into())
    }

    /// Removes `attr`, returning its object if it was present.
    pub fn remove(&mut self, attr: &str) -> Option<Value> {
        // Read-check first: a miss must not break sharing.
        if !self.fields.contains_key(attr) {
            return None;
        }
        self.fields_mut().remove(attr)
    }

    /// Entry-style access: the object at `attr`, inserting `default` first
    /// when absent.
    pub fn get_or_insert_with(
        &mut self,
        attr: impl Into<Name>,
        default: impl FnOnce() -> Value,
    ) -> &mut Value {
        self.fields_mut().entry(attr.into()).or_insert_with(default)
    }

    /// Iterates attributes in name order.
    pub fn iter(&self) -> btree_map::Iter<'_, Name, Value> {
        self.fields.iter()
    }

    /// Iterates attributes mutably in name order.
    pub fn iter_mut(&mut self) -> btree_map::IterMut<'_, Name, Value> {
        self.fields_mut().iter_mut()
    }

    /// Iterates attribute names in order.
    pub fn keys(&self) -> impl Iterator<Item = &Name> {
        self.fields.keys()
    }

    /// Iterates attribute objects in name order.
    pub fn values(&self) -> impl Iterator<Item = &Value> {
        self.fields.values()
    }

    /// Retains only the attributes for which the predicate holds.
    pub fn retain(&mut self, mut f: impl FnMut(&Name, &mut Value) -> bool) {
        self.fields_mut().retain(|k, v| f(k, v));
    }

    /// Merges `other` into `self`; on conflict, `other` wins.
    pub fn merge(&mut self, other: TupleObj) {
        if self.is_empty() {
            // Adopt the other handle wholesale — keeps its sharing intact.
            self.fields = other.fields;
            return;
        }
        let fields = self.fields_mut();
        for (k, v) in other {
            fields.insert(k, v);
        }
    }

    /// Whether `self` and `other` share one interior allocation (their
    /// equality is then decided without a structural walk). Test/telemetry
    /// introspection only — never affects semantics.
    pub fn shares_with(&self, other: &TupleObj) -> bool {
        Arc::ptr_eq(&self.fields, &other.fields)
    }
}

impl Clone for TupleObj {
    /// O(1): bumps the interior reference count (counted by
    /// [`sharing::SharingCounters::tuple_clones`]).
    fn clone(&self) -> Self {
        sharing::record_tuple_clone();
        TupleObj { fields: Arc::clone(&self.fields) }
    }
}

impl PartialEq for TupleObj {
    fn eq(&self, other: &Self) -> bool {
        if Arc::ptr_eq(&self.fields, &other.fields) {
            sharing::record_ptr_eq_hit();
            return true;
        }
        self.fields == other.fields
    }
}

impl Eq for TupleObj {}

impl PartialOrd for TupleObj {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for TupleObj {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        if Arc::ptr_eq(&self.fields, &other.fields) {
            sharing::record_ptr_eq_hit();
            return std::cmp::Ordering::Equal;
        }
        self.fields.cmp(&other.fields)
    }
}

impl std::hash::Hash for TupleObj {
    /// Structural: hashes the interior map, so a shared and an unshared
    /// handle with equal contents hash identically.
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        (*self.fields).hash(state);
    }
}

impl std::fmt::Debug for TupleObj {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_map().entries(self.fields.iter()).finish()
    }
}

impl IntoIterator for TupleObj {
    type Item = (Name, Value);
    type IntoIter = btree_map::IntoIter<Name, Value>;

    fn into_iter(self) -> Self::IntoIter {
        match Arc::try_unwrap(self.fields) {
            Ok(map) => map.into_iter(),
            Err(shared) => {
                sharing::record_cow_break();
                (*shared).clone().into_iter()
            }
        }
    }
}

impl<'a> IntoIterator for &'a TupleObj {
    type Item = (&'a Name, &'a Value);
    type IntoIter = btree_map::Iter<'a, Name, Value>;

    fn into_iter(self) -> Self::IntoIter {
        self.fields.iter()
    }
}

impl<N: Into<Name>, V: Into<Value>> FromIterator<(N, V)> for TupleObj {
    fn from_iter<I: IntoIterator<Item = (N, V)>>(iter: I) -> Self {
        TupleObj::from_pairs(iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_remove() {
        let mut t = TupleObj::new();
        assert!(t.is_empty());
        assert_eq!(t.insert("sal", 10i64), None);
        assert_eq!(t.insert("sal", 20i64), Some(Value::int(10)));
        assert_eq!(t.get("sal"), Some(&Value::int(20)));
        assert!(t.contains("sal"));
        assert_eq!(t.arity(), 1);
        assert_eq!(t.remove("sal"), Some(Value::int(20)));
        assert!(!t.contains("sal"));
    }

    #[test]
    fn iteration_is_name_ordered() {
        let t = TupleObj::from_pairs([("z", 1i64), ("a", 2i64), ("m", 3i64)]);
        let keys: Vec<_> = t.keys().map(Name::as_str).collect();
        assert_eq!(keys, vec!["a", "m", "z"]);
    }

    #[test]
    fn get_or_insert_with() {
        let mut t = TupleObj::new();
        {
            let v = t.get_or_insert_with("r", Value::empty_set);
            v.as_set_mut().unwrap().insert(Value::int(1));
        }
        let v = t.get_or_insert_with("r", Value::empty_set);
        assert_eq!(v.as_set().unwrap().len(), 1, "existing object is kept");
    }

    #[test]
    fn merge_prefers_other() {
        let mut a = TupleObj::from_pairs([("x", 1i64), ("y", 2i64)]);
        let b = TupleObj::from_pairs([("y", 9i64), ("z", 3i64)]);
        a.merge(b);
        assert_eq!(a.get("x"), Some(&Value::int(1)));
        assert_eq!(a.get("y"), Some(&Value::int(9)));
        assert_eq!(a.get("z"), Some(&Value::int(3)));
    }

    #[test]
    fn retain_filters() {
        let mut t = TupleObj::from_pairs([("a", 1i64), ("b", 2i64), ("c", 3i64)]);
        t.retain(|_, v| v.as_atom().and_then(|a| a.as_int()).unwrap() % 2 == 1);
        assert_eq!(t.arity(), 2);
        assert!(t.contains("a") && t.contains("c"));
    }

    #[test]
    fn clone_shares_until_written() {
        let a = TupleObj::from_pairs([("x", 1i64)]);
        let mut b = a.clone();
        assert!(a.shares_with(&b), "clone is a shared handle");
        b.insert("y", 2i64);
        assert!(!a.shares_with(&b), "write broke the sharing");
        assert!(!a.contains("y"), "original untouched");
        assert_eq!(b.arity(), 2);
    }

    #[test]
    fn read_misses_keep_sharing() {
        let a = TupleObj::from_pairs([("x", 1i64)]);
        let mut b = a.clone();
        assert_eq!(b.remove("absent"), None);
        assert!(b.get_mut("absent").is_none());
        assert!(a.shares_with(&b), "failed remove/get_mut must not deep-copy");
    }

    #[test]
    fn into_iter_on_shared_handle() {
        let a = TupleObj::from_pairs([("x", 1i64), ("y", 2i64)]);
        let b = a.clone();
        let pairs: Vec<_> = b.into_iter().collect();
        assert_eq!(pairs.len(), 2);
        assert_eq!(a.arity(), 2, "surviving handle unaffected");
    }
}
