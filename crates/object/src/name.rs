//! Interned attribute / relation / database names.
//!
//! Names identify tuple attributes. In IDL they do double duty: the same
//! string can be *data* in one database (`stkCode = "hp"` in `euter`) and an
//! *attribute or relation name* in another (`.hp` in `chwab`, relation `hp`
//! in `ource`) — the heart of a schematic discrepancy. Making [`Name`] a
//! cheaply clonable shared string keeps that data↔metadata crossing free.

use serde::{Deserialize, Serialize};
use std::borrow::Borrow;
use std::fmt;
use std::sync::Arc;

/// An attribute, relation, or database name.
///
/// Internally a reference-counted string: cloning is a pointer copy, and
/// equality/ordering are by string value (the model is value-based).
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct Name(Arc<str>);

impl Name {
    /// Creates a name from anything string-like.
    pub fn new(s: impl AsRef<str>) -> Self {
        Name(Arc::from(s.as_ref()))
    }

    /// The name as a string slice.
    pub fn as_str(&self) -> &str {
        &self.0
    }

    /// Length of the name in bytes.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the name is the empty string.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Whether this name is syntactically a *variable* in IDL surface
    /// syntax (starts with an uppercase ASCII letter). Constant names never
    /// look like variables; generators use this to validate output.
    pub fn looks_like_variable(&self) -> bool {
        self.0.chars().next().is_some_and(|c| c.is_ascii_uppercase())
    }
}

impl fmt::Debug for Name {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Name({:?})", &self.0)
    }
}

impl fmt::Display for Name {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<&str> for Name {
    fn from(s: &str) -> Self {
        Name::new(s)
    }
}

impl From<String> for Name {
    fn from(s: String) -> Self {
        Name(Arc::from(s))
    }
}

impl From<&String> for Name {
    fn from(s: &String) -> Self {
        Name::new(s)
    }
}

impl From<&Name> for Name {
    fn from(n: &Name) -> Self {
        n.clone()
    }
}

impl Borrow<str> for Name {
    fn borrow(&self) -> &str {
        &self.0
    }
}

impl AsRef<str> for Name {
    fn as_ref(&self) -> &str {
        &self.0
    }
}

impl PartialEq<str> for Name {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == other
    }
}

impl PartialEq<&str> for Name {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == *other
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn construction_and_equality() {
        let a = Name::new("stkCode");
        let b = Name::from("stkCode");
        let c: Name = String::from("clsPrice").into();
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a, "stkCode");
        assert_eq!(a.as_str(), "stkCode");
    }

    #[test]
    fn ordering_is_lexicographic() {
        let mut set = BTreeSet::new();
        set.insert(Name::new("date"));
        set.insert(Name::new("clsPrice"));
        set.insert(Name::new("stkCode"));
        let ordered: Vec<_> = set.iter().map(Name::as_str).collect();
        assert_eq!(ordered, vec!["clsPrice", "date", "stkCode"]);
    }

    #[test]
    fn clone_is_cheap_pointer_copy() {
        let a = Name::new("euter");
        let b = a.clone();
        assert!(Arc::ptr_eq(&a.0, &b.0));
    }

    #[test]
    fn variable_detection() {
        assert!(Name::new("X").looks_like_variable());
        assert!(Name::new("StkCode").looks_like_variable());
        assert!(!Name::new("stkCode").looks_like_variable());
        assert!(!Name::new("").looks_like_variable());
        assert!(!Name::new("_x").looks_like_variable());
    }

    #[test]
    fn borrow_str_lookup() {
        let mut set = BTreeSet::new();
        set.insert(Name::new("r"));
        assert!(set.contains("r"));
        assert!(!set.contains("s"));
    }
}
