//! The universe of databases (paper §3).
//!
//! ```text
//! u = (db1:(r11:{…}, r12:{…}, …), db2:(r21:{…}, …), …)
//! ```
//!
//! A universe is a tuple whose attributes are database names; each database
//! is a tuple whose attributes are relation names; each relation is a set of
//! tuples. [`UniverseBuilder`] offers a fluent way to assemble one, and the
//! free functions here provide the paper's three-schema stock example in
//! miniature (the scalable generator lives in `idl-workload`).

use crate::{Date, Name, Path, SetObj, TupleObj, Value};

/// Parses a date-looking string into a date atom, falling back to a string
/// atom. Keeps the miniature builders aligned with the lexer, which reads
/// `3/3/85` as a date literal.
fn date_or_str(s: &str) -> Value {
    match s.parse::<Date>() {
        Ok(d) => Value::date(d),
        Err(_) => Value::str(s),
    }
}

/// Fluent builder for universe tuples.
///
/// ```
/// use idl_object::universe::UniverseBuilder;
/// use idl_object::tuple;
///
/// let u = UniverseBuilder::new()
///     .relation("euter", "r", [tuple! { stkCode: "hp", clsPrice: 50i64 }])
///     .build();
/// assert!(u.attr("euter").is_some());
/// ```
#[derive(Default)]
pub struct UniverseBuilder {
    u: TupleObj,
}

impl UniverseBuilder {
    /// Starts an empty universe.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds an (empty) database if absent.
    pub fn database(mut self, db: impl Into<Name>) -> Self {
        self.u.get_or_insert_with(db.into(), Value::empty_tuple);
        self
    }

    /// Adds a relation with the given tuples (creating the database if
    /// needed). Tuples are added set-wise; duplicates collapse.
    pub fn relation<I>(mut self, db: impl Into<Name>, rel: impl Into<Name>, tuples: I) -> Self
    where
        I: IntoIterator<Item = Value>,
    {
        let dbv = self.u.get_or_insert_with(db.into(), Value::empty_tuple);
        let dbt = dbv.as_tuple_mut().expect("database object is a tuple");
        let relv = dbt.get_or_insert_with(rel.into(), Value::empty_set);
        let rels = relv.as_set_mut().expect("relation object is a set");
        rels.extend(tuples);
        self
    }

    /// Finishes, yielding the universe tuple.
    pub fn build(self) -> Value {
        Value::Tuple(self.u)
    }
}

/// Lists the database names of a universe (its top-level attributes).
pub fn database_names(universe: &Value) -> Vec<Name> {
    universe.as_tuple().map(|t| t.keys().cloned().collect()).unwrap_or_default()
}

/// Lists the relation names of one database inside a universe.
pub fn relation_names(universe: &Value, db: &str) -> Vec<Name> {
    universe
        .attr(db)
        .and_then(Value::as_tuple)
        .map(|t| t.keys().cloned().collect())
        .unwrap_or_default()
}

/// Fetches a relation (set object) by database and relation name.
pub fn relation<'u>(universe: &'u Value, db: &str, rel: &str) -> Option<&'u SetObj> {
    Path::new([db, rel]).get(universe).and_then(Value::as_set)
}

/// The miniature stock universe used throughout the paper's examples:
/// three databases with the same information under three schemata.
///
/// * `euter.r : {(date, stkCode, clsPrice)}`
/// * `chwab.r : {(date, hp, ibm, …)}`
/// * `ource.hp : {(date, clsPrice)}, ource.ibm : …`
///
/// `quotes` is `(date, stock, price)` triples; every triple is represented
/// in all three schemata.
pub fn stock_universe<'a, I>(quotes: I) -> Value
where
    I: IntoIterator<Item = (&'a str, &'a str, f64)> + Clone,
{
    let mut b = UniverseBuilder::new().database("euter").database("chwab").database("ource");

    // euter: one tuple per quote (one-shot construction — the interior
    // map is built once, not grown attribute-by-attribute)
    b = b.relation(
        "euter",
        "r",
        quotes.clone().into_iter().map(|(d, s, p)| {
            Value::Tuple(TupleObj::from_pairs([
                ("date", date_or_str(d)),
                ("stkCode", Value::str(s)),
                ("clsPrice", Value::float(p)),
            ]))
        }),
    );

    // chwab: one tuple per date, one attribute per stock
    let mut by_date: std::collections::BTreeMap<&str, TupleObj> = Default::default();
    for (d, s, p) in quotes.clone() {
        let t = by_date.entry(d).or_insert_with(|| {
            let mut t = TupleObj::new();
            t.insert("date", date_or_str(d));
            t
        });
        t.insert(s, Value::float(p));
    }
    b = b.relation("chwab", "r", by_date.into_values().map(Value::Tuple));

    // ource: one relation per stock
    for (d, s, p) in quotes {
        let t = TupleObj::from_pairs([("date", date_or_str(d)), ("clsPrice", Value::float(p))]);
        b = b.relation("ource", s, [Value::Tuple(t)]);
    }

    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quotes() -> Vec<(&'static str, &'static str, f64)> {
        vec![
            ("3/3/85", "hp", 50.0),
            ("3/3/85", "ibm", 160.0),
            ("3/4/85", "hp", 62.0),
            ("3/4/85", "ibm", 155.0),
        ]
    }

    #[test]
    fn three_schemata_constructed() {
        let u = stock_universe(quotes());
        assert_eq!(
            database_names(&u).iter().map(Name::as_str).collect::<Vec<_>>(),
            vec!["chwab", "euter", "ource"]
        );
        assert_eq!(relation(&u, "euter", "r").unwrap().len(), 4);
        assert_eq!(relation(&u, "chwab", "r").unwrap().len(), 2, "one tuple per date");
        assert_eq!(
            relation_names(&u, "ource").iter().map(Name::as_str).collect::<Vec<_>>(),
            vec!["hp", "ibm"],
            "one relation per stock"
        );
        assert_eq!(relation(&u, "ource", "hp").unwrap().len(), 2);
    }

    #[test]
    fn chwab_tuples_have_stock_attributes() {
        let u = stock_universe(quotes());
        let r = relation(&u, "chwab", "r").unwrap();
        for t in r.iter() {
            let t = t.as_tuple().unwrap();
            assert!(t.contains("date") && t.contains("hp") && t.contains("ibm"));
        }
    }

    #[test]
    fn builder_is_idempotent_for_duplicates() {
        let u = stock_universe(vec![("3/3/85", "hp", 50.0), ("3/3/85", "hp", 50.0)]);
        assert_eq!(relation(&u, "euter", "r").unwrap().len(), 1);
    }

    #[test]
    fn empty_database() {
        let u = UniverseBuilder::new().database("empty").build();
        assert!(relation_names(&u, "empty").is_empty());
        assert!(relation(&u, "empty", "r").is_none());
    }
}
