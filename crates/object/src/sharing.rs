//! Process-wide structural-sharing telemetry.
//!
//! [`TupleObj`](crate::TupleObj) and [`SetObj`](crate::SetObj) are backed by
//! `Arc`'d interiors: cloning is an O(1) reference-count bump and mutation
//! goes through copy-on-write (`Arc::make_mut`). These counters make the
//! sharing observable — every cheap handle clone, every CoW break (a
//! mutation that had to deep-copy a shared interior), every comparison
//! short-circuited by pointer equality, and every explicit
//! [`Value::deep_clone`](crate::Value::deep_clone) bumps a global relaxed
//! atomic. `FixpointStats` snapshots them before/after a refresh to report
//! per-refresh deltas; benches use them to prove where copies still happen.
//!
//! The counters are process-global (mutation can happen on any worker
//! thread) and monotone; readers take [`SharingCounters::snapshot`] and
//! subtract with [`SharingCounters::delta_since`].

use std::sync::atomic::{AtomicU64, Ordering};

static TUPLE_CLONES: AtomicU64 = AtomicU64::new(0);
static SET_CLONES: AtomicU64 = AtomicU64::new(0);
static COW_BREAKS: AtomicU64 = AtomicU64::new(0);
static PTR_EQ_HITS: AtomicU64 = AtomicU64::new(0);
static DEEP_CLONES: AtomicU64 = AtomicU64::new(0);

#[inline]
pub(crate) fn record_tuple_clone() {
    TUPLE_CLONES.fetch_add(1, Ordering::Relaxed);
}

#[inline]
pub(crate) fn record_set_clone() {
    SET_CLONES.fetch_add(1, Ordering::Relaxed);
}

#[inline]
pub(crate) fn record_cow_break() {
    COW_BREAKS.fetch_add(1, Ordering::Relaxed);
}

#[inline]
pub(crate) fn record_ptr_eq_hit() {
    PTR_EQ_HITS.fetch_add(1, Ordering::Relaxed);
}

#[inline]
pub(crate) fn record_deep_clone() {
    DEEP_CLONES.fetch_add(1, Ordering::Relaxed);
}

/// A point-in-time snapshot of the process-wide sharing counters.
///
/// Counters are cumulative since process start; compute a per-phase view
/// with [`SharingCounters::delta_since`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SharingCounters {
    /// O(1) handle clones of tuple objects (`TupleObj::clone`).
    pub tuple_clones: u64,
    /// O(1) handle clones of set objects (`SetObj::clone`).
    pub set_clones: u64,
    /// Mutations that found their interior shared and had to deep-copy it
    /// (`Arc::make_mut` with strong count > 1, or a by-value iteration of a
    /// shared handle).
    pub cow_breaks: u64,
    /// Structural comparisons answered by pointer equality of shared
    /// interiors without walking the trees.
    pub ptr_eq_hits: u64,
    /// Explicit [`Value::deep_clone`](crate::Value::deep_clone) calls
    /// (deliberate sharing-free rebuilds; one count per call, not per node).
    pub deep_clones: u64,
}

impl SharingCounters {
    /// Reads the current values of all counters.
    pub fn snapshot() -> Self {
        SharingCounters {
            tuple_clones: TUPLE_CLONES.load(Ordering::Relaxed),
            set_clones: SET_CLONES.load(Ordering::Relaxed),
            cow_breaks: COW_BREAKS.load(Ordering::Relaxed),
            ptr_eq_hits: PTR_EQ_HITS.load(Ordering::Relaxed),
            deep_clones: DEEP_CLONES.load(Ordering::Relaxed),
        }
    }

    /// The counter increments between `earlier` and `self` (saturating, so
    /// snapshots taken out of order never underflow).
    pub fn delta_since(&self, earlier: &SharingCounters) -> SharingCounters {
        SharingCounters {
            tuple_clones: self.tuple_clones.saturating_sub(earlier.tuple_clones),
            set_clones: self.set_clones.saturating_sub(earlier.set_clones),
            cow_breaks: self.cow_breaks.saturating_sub(earlier.cow_breaks),
            ptr_eq_hits: self.ptr_eq_hits.saturating_sub(earlier.ptr_eq_hits),
            deep_clones: self.deep_clones.saturating_sub(earlier.deep_clones),
        }
    }

    /// Total O(1) handle clones (tuples + sets).
    pub fn cheap_clones(&self) -> u64 {
        self.tuple_clones + self.set_clones
    }

    /// Fraction of handle clones whose sharing survived — i.e. was *not*
    /// subsequently broken by a CoW deep copy. `1.0` when nothing cloned.
    pub fn sharing_hit_rate(&self) -> f64 {
        let clones = self.cheap_clones();
        if clones == 0 {
            1.0
        } else {
            1.0 - (self.cow_breaks.min(clones) as f64) / (clones as f64)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{SetObj, TupleObj, Value};

    #[test]
    fn clone_is_counted_and_cheap() {
        let before = SharingCounters::snapshot();
        let t = TupleObj::from_pairs([("a", 1i64)]);
        let t2 = t.clone();
        let s = SetObj::from_iter([Value::int(1)]);
        let _s2 = s.clone();
        let after = SharingCounters::snapshot();
        let d = after.delta_since(&before);
        assert!(d.tuple_clones >= 1, "tuple clone counted: {d:?}");
        assert!(d.set_clones >= 1, "set clone counted: {d:?}");
        assert_eq!(t, t2);
    }

    #[test]
    fn mutating_a_shared_handle_breaks_sharing_once() {
        let t = TupleObj::from_pairs([("a", 1i64)]);
        let mut t2 = t.clone();
        let before = SharingCounters::snapshot();
        t2.insert("b", 2i64);
        let after = SharingCounters::snapshot();
        assert!(after.delta_since(&before).cow_breaks >= 1);
        assert!(t.get("b").is_none(), "original unaffected by CoW write");
        assert_eq!(t2.get("b"), Some(&Value::int(2)));
    }

    #[test]
    fn delta_saturates() {
        let a = SharingCounters { tuple_clones: 5, ..Default::default() };
        let b = SharingCounters { tuple_clones: 9, ..Default::default() };
        assert_eq!(a.delta_since(&b).tuple_clones, 0);
        assert_eq!(b.delta_since(&a).tuple_clones, 4);
    }

    #[test]
    fn hit_rate_bounds() {
        let none = SharingCounters::default();
        assert_eq!(none.sharing_hit_rate(), 1.0);
        let all_broken = SharingCounters { tuple_clones: 2, cow_breaks: 5, ..Default::default() };
        assert_eq!(all_broken.sharing_hit_rate(), 0.0);
    }
}
