//! Convenience constructors for literal objects in tests and examples.

/// Builds a tuple [`Value`](crate::Value): `tuple! { name: "john", sal: 10i64 }`.
///
/// Keys are identifiers (attribute names); values are anything convertible
/// `Into<Value>`.
#[macro_export]
macro_rules! tuple {
    ( $( $key:ident : $val:expr ),* $(,)? ) => {{
        #[allow(unused_mut)]
        let mut t = $crate::TupleObj::new();
        $( t.insert(stringify!($key), $crate::Value::from($val)); )*
        $crate::Value::Tuple(t)
    }};
}

/// Builds a set [`Value`](crate::Value): `set![v1, v2, …]`.
#[macro_export]
macro_rules! set {
    ( $( $val:expr ),* $(,)? ) => {{
        #[allow(unused_mut)]
        let mut s = $crate::SetObj::new();
        $( s.insert($crate::Value::from($val)); )*
        $crate::Value::Set(s)
    }};
}

#[cfg(test)]
mod tests {
    use crate::Value;

    #[test]
    fn macros_build_expected_shapes() {
        let t = tuple! { a: 1i64, b: "x" };
        assert_eq!(t.as_tuple().unwrap().arity(), 2);
        let s = set![1i64, 2i64, 1i64];
        assert_eq!(s.as_set().unwrap().len(), 2);
        let empty = tuple! {};
        assert_eq!(empty, Value::empty_tuple());
        let es = set![];
        assert_eq!(es, Value::empty_set());
    }
}
