//! Atomic objects.

use crate::{Date, Name, F64};
use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::fmt;

/// An atomic object (paper §3): the leaves of the nested object model.
///
/// `Null` is the distinguished *null atomic object* of §5.2, produced by
/// atomic deletion (`-=c`); the paper stipulates that it *"evaluates to
/// false for all atomic expressions"*, which the evaluator honours via
/// [`Atom::is_null`].
///
/// The derived `Ord` gives a total order across heterogeneous atoms
/// (variant-tagged), which makes sets of atoms well-defined. *Numeric*
/// comparison for query relops (`<`, `>`, …), which coerces between `Int`
/// and `Float`, lives in [`Atom::compare`].
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Atom {
    /// The null atom (§5.2). Satisfies no atomic expression.
    Null,
    /// A boolean.
    Bool(bool),
    /// A 64-bit signed integer.
    Int(i64),
    /// A totally ordered 64-bit float.
    Float(F64),
    /// A string / symbol. Also the representation of names-as-data, which is
    /// what lets data in one database act as metadata in another.
    Str(Name),
    /// A calendar date.
    Date(Date),
}

impl Atom {
    /// Builds a string atom.
    pub fn str(s: impl AsRef<str>) -> Self {
        Atom::Str(Name::new(s))
    }

    /// Builds a float atom.
    pub fn float(v: f64) -> Self {
        Atom::Float(F64::new(v))
    }

    /// Whether this is the null atom.
    pub fn is_null(&self) -> bool {
        matches!(self, Atom::Null)
    }

    /// The string payload, if this is a string atom.
    pub fn as_str(&self) -> Option<&Name> {
        match self {
            Atom::Str(n) => Some(n),
            _ => None,
        }
    }

    /// The integer payload, if any.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Atom::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// The float payload, if any (does not coerce ints).
    pub fn as_float(&self) -> Option<f64> {
        match self {
            Atom::Float(f) => Some(f.get()),
            _ => None,
        }
    }

    /// Numeric value if the atom is `Int` or `Float`.
    pub fn as_numeric(&self) -> Option<f64> {
        match self {
            Atom::Int(i) => Some(*i as f64),
            Atom::Float(f) => Some(f.get()),
            _ => None,
        }
    }

    /// *Query-level* comparison (§4.1 relops).
    ///
    /// Returns `None` when the atoms are incomparable under query semantics:
    /// either operand is null (the null atom satisfies no atomic
    /// expression), or the operands are of unrelated types (a date and a
    /// string, say). `Int` and `Float` compare numerically so that
    /// `.clsPrice>60` works whether prices were loaded as ints or floats.
    pub fn compare(&self, other: &Atom) -> Option<Ordering> {
        use Atom::*;
        match (self, other) {
            (Null, _) | (_, Null) => None,
            (Bool(a), Bool(b)) => Some(a.cmp(b)),
            (Int(a), Int(b)) => Some(a.cmp(b)),
            (Float(a), Float(b)) => Some(a.cmp(b)),
            (Int(a), Float(b)) => (*a as f64).partial_cmp(&b.get()),
            (Float(a), Int(b)) => a.get().partial_cmp(&(*b as f64)),
            (Str(a), Str(b)) => Some(a.cmp(b)),
            (Date(a), Date(b)) => Some(a.cmp(b)),
            _ => None,
        }
    }

    /// Query-level equality: `compare == Some(Equal)`.
    pub fn query_eq(&self, other: &Atom) -> bool {
        self.compare(other) == Some(Ordering::Equal)
    }

    /// A short label for the variant, used in error messages.
    pub fn type_name(&self) -> &'static str {
        match self {
            Atom::Null => "null",
            Atom::Bool(_) => "bool",
            Atom::Int(_) => "int",
            Atom::Float(_) => "float",
            Atom::Str(_) => "string",
            Atom::Date(_) => "date",
        }
    }
}

impl fmt::Display for Atom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Atom::Null => write!(f, "null"),
            Atom::Bool(b) => write!(f, "{b}"),
            Atom::Int(i) => write!(f, "{i}"),
            Atom::Float(x) => write!(f, "{x}"),
            Atom::Str(s) => {
                // Bare identifiers print bare (paper style: `hp`, `ibm`);
                // anything else is quoted.
                let bare = !s.is_empty()
                    && s.as_str().chars().next().unwrap().is_ascii_lowercase()
                    && s.as_str().chars().all(|c| c.is_ascii_alphanumeric() || c == '_')
                    && !matches!(s.as_str(), "null" | "true" | "false");
                if bare {
                    write!(f, "{s}")
                } else {
                    write!(f, "{:?}", s.as_str())
                }
            }
            Atom::Date(d) => write!(f, "{d}"),
        }
    }
}

impl fmt::Debug for Atom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

impl From<i64> for Atom {
    fn from(v: i64) -> Self {
        Atom::Int(v)
    }
}

impl From<i32> for Atom {
    fn from(v: i32) -> Self {
        Atom::Int(v as i64)
    }
}

impl From<f64> for Atom {
    fn from(v: f64) -> Self {
        Atom::float(v)
    }
}

impl From<bool> for Atom {
    fn from(v: bool) -> Self {
        Atom::Bool(v)
    }
}

impl From<&str> for Atom {
    fn from(v: &str) -> Self {
        Atom::str(v)
    }
}

impl From<String> for Atom {
    fn from(v: String) -> Self {
        Atom::Str(Name::from(v))
    }
}

impl From<Name> for Atom {
    fn from(v: Name) -> Self {
        Atom::Str(v)
    }
}

impl From<Date> for Atom {
    fn from(v: Date) -> Self {
        Atom::Date(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_compares_with_nothing() {
        assert_eq!(Atom::Null.compare(&Atom::Null), None);
        assert_eq!(Atom::Null.compare(&Atom::Int(3)), None);
        assert_eq!(Atom::Int(3).compare(&Atom::Null), None);
        assert!(!Atom::Null.query_eq(&Atom::Null));
    }

    #[test]
    fn numeric_coercion_in_query_compare() {
        assert!(Atom::Int(50).query_eq(&Atom::float(50.0)));
        assert_eq!(Atom::Int(60).compare(&Atom::float(60.5)), Some(Ordering::Less));
        // but structural equality keeps them distinct (set semantics)
        assert_ne!(Atom::Int(50), Atom::float(50.0));
    }

    #[test]
    fn cross_type_incomparable() {
        assert_eq!(Atom::str("hp").compare(&Atom::Int(1)), None);
        let d: Date = "3/3/85".parse().unwrap();
        assert_eq!(Atom::Date(d).compare(&Atom::str("3/3/85")), None);
    }

    #[test]
    fn display_forms() {
        assert_eq!(Atom::str("hp").to_string(), "hp");
        assert_eq!(Atom::str("Hello World").to_string(), "\"Hello World\"");
        assert_eq!(Atom::Int(200).to_string(), "200");
        assert_eq!(Atom::float(60.5).to_string(), "60.5");
        assert_eq!(Atom::Null.to_string(), "null");
    }

    #[test]
    fn total_order_among_variants_is_stable() {
        use std::collections::BTreeSet;
        let mut s = BTreeSet::new();
        s.insert(Atom::str("a"));
        s.insert(Atom::Int(1));
        s.insert(Atom::Null);
        s.insert(Atom::Bool(true));
        assert_eq!(s.len(), 4);
        assert_eq!(s.iter().next(), Some(&Atom::Null));
    }
}
