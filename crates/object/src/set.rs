//! Set objects: value-based sets of heterogeneous objects.

use crate::Value;
use serde::{Deserialize, Serialize};
use std::collections::btree_set::{self, BTreeSet};

/// A set object `{o1, o2, …}` (paper §3).
///
/// * **Value-based**: membership and equality are structural; inserting an
///   element twice is a no-op.
/// * **Heterogeneous**: members may be any mix of atoms, tuples of varying
///   arity, and sets — the property the paper relies on for attribute
///   deletion from a *single* tuple (§5.2).
/// * **Deterministic**: iteration is in the total `Ord` order on [`Value`],
///   so answers, displays and fixpoints are reproducible.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
#[serde(transparent)]
pub struct SetObj {
    elems: BTreeSet<Value>,
}

impl SetObj {
    /// An empty set.
    pub fn new() -> Self {
        SetObj { elems: BTreeSet::new() }
    }

    /// Number of (distinct) elements.
    pub fn len(&self) -> usize {
        self.elems.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.elems.is_empty()
    }

    /// Inserts `value`; returns `true` if it was not already present.
    pub fn insert(&mut self, value: impl Into<Value>) -> bool {
        self.elems.insert(value.into())
    }

    /// Structural membership test.
    pub fn contains(&self, value: &Value) -> bool {
        self.elems.contains(value)
    }

    /// Removes `value`; returns `true` if it was present.
    pub fn remove(&mut self, value: &Value) -> bool {
        self.elems.remove(value)
    }

    /// Removes every element satisfying the predicate, returning how many
    /// were removed. This is the engine of the set-minus update `-(exp)`.
    pub fn remove_if(&mut self, mut pred: impl FnMut(&Value) -> bool) -> usize {
        let before = self.elems.len();
        self.elems.retain(|v| !pred(v));
        before - self.elems.len()
    }

    /// Drains all elements satisfying the predicate, returning them. Used by
    /// updates that must *modify* matching elements (remove + re-insert,
    /// since elements of a `BTreeSet` are immutable in place).
    pub fn take_if(&mut self, mut pred: impl FnMut(&Value) -> bool) -> Vec<Value> {
        let taken: Vec<Value> = self.elems.iter().filter(|v| pred(v)).cloned().collect();
        for v in &taken {
            self.elems.remove(v);
        }
        taken
    }

    /// Iterates elements in `Ord` order.
    pub fn iter(&self) -> btree_set::Iter<'_, Value> {
        self.elems.iter()
    }

    /// Set union (value-based).
    pub fn union_with(&mut self, other: &SetObj) {
        for v in other.iter() {
            self.elems.insert(v.clone());
        }
    }
}

impl std::fmt::Debug for SetObj {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_set().entries(self.elems.iter()).finish()
    }
}

impl IntoIterator for SetObj {
    type Item = Value;
    type IntoIter = btree_set::IntoIter<Value>;

    fn into_iter(self) -> Self::IntoIter {
        self.elems.into_iter()
    }
}

impl<'a> IntoIterator for &'a SetObj {
    type Item = &'a Value;
    type IntoIter = btree_set::Iter<'a, Value>;

    fn into_iter(self) -> Self::IntoIter {
        self.elems.iter()
    }
}

impl<V: Into<Value>> FromIterator<V> for SetObj {
    fn from_iter<I: IntoIterator<Item = V>>(iter: I) -> Self {
        let mut s = SetObj::new();
        for v in iter {
            s.insert(v);
        }
        s
    }
}

impl<V: Into<Value>> Extend<V> for SetObj {
    fn extend<I: IntoIterator<Item = V>>(&mut self, iter: I) {
        for v in iter {
            self.insert(v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple;

    #[test]
    fn insert_dedups() {
        let mut s = SetObj::new();
        assert!(s.insert(Value::int(1)));
        assert!(!s.insert(Value::int(1)));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn heterogeneous_members() {
        let mut s = SetObj::new();
        s.insert(Value::int(1));
        s.insert(tuple! { a: 1i64 });
        s.insert(tuple! { a: 1i64, b: 2i64 }); // different arity, same set
        s.insert(Value::empty_set());
        assert_eq!(s.len(), 4);
    }

    #[test]
    fn remove_if_counts() {
        let mut s: SetObj = (0..10i64).map(Value::int).collect();
        let removed = s.remove_if(|v| v.as_atom().unwrap().as_int().unwrap() % 2 == 0);
        assert_eq!(removed, 5);
        assert_eq!(s.len(), 5);
        assert!(!s.contains(&Value::int(0)));
        assert!(s.contains(&Value::int(1)));
    }

    #[test]
    fn take_if_drains() {
        let mut s: SetObj = (0..4i64).map(Value::int).collect();
        let taken = s.take_if(|v| v.as_atom().unwrap().as_int().unwrap() >= 2);
        assert_eq!(taken.len(), 2);
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn union() {
        let mut a: SetObj = [1i64, 2].into_iter().map(Value::int).collect();
        let b: SetObj = [2i64, 3].into_iter().map(Value::int).collect();
        a.union_with(&b);
        assert_eq!(a.len(), 3);
    }
}
