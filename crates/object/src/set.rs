//! Set objects: value-based sets of heterogeneous objects.

use crate::{sharing, Value};
use serde::{Deserialize, Serialize};
use std::collections::btree_set::{self, BTreeSet};
use std::sync::Arc;

/// A set object `{o1, o2, …}` (paper §3).
///
/// * **Value-based**: membership and equality are structural; inserting an
///   element twice is a no-op.
/// * **Heterogeneous**: members may be any mix of atoms, tuples of varying
///   arity, and sets — the property the paper relies on for attribute
///   deletion from a *single* tuple (§5.2).
/// * **Deterministic**: iteration is in the total `Ord` order on [`Value`],
///   so answers, displays and fixpoints are reproducible.
///
/// The interior set is behind an [`Arc`]: `clone` is an O(1) handle copy
/// and every `&mut` accessor routes through copy-on-write
/// (`Arc::make_mut`). Sharing is invisible to the value semantics —
/// `Eq`/`Ord`/`Hash` stay structural (with a pointer-equality fast path)
/// and the serde byte format is the bare set, unchanged.
#[derive(Default, Serialize, Deserialize)]
#[serde(transparent)]
pub struct SetObj {
    elems: Arc<BTreeSet<Value>>,
}

impl SetObj {
    /// An empty set.
    pub fn new() -> Self {
        SetObj { elems: Arc::new(BTreeSet::new()) }
    }

    /// Copy-on-write access to the interior set: deep-copies it first iff
    /// it is shared with another handle (and counts the break).
    fn elems_mut(&mut self) -> &mut BTreeSet<Value> {
        if Arc::strong_count(&self.elems) > 1 {
            sharing::record_cow_break();
        }
        Arc::make_mut(&mut self.elems)
    }

    /// Number of (distinct) elements.
    pub fn len(&self) -> usize {
        self.elems.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.elems.is_empty()
    }

    /// Inserts `value`; returns `true` if it was not already present.
    pub fn insert(&mut self, value: impl Into<Value>) -> bool {
        let value = value.into();
        // Read-check first: a duplicate insert must not break sharing.
        if self.elems.contains(&value) {
            return false;
        }
        self.elems_mut().insert(value)
    }

    /// Structural membership test.
    pub fn contains(&self, value: &Value) -> bool {
        self.elems.contains(value)
    }

    /// Removes `value`; returns `true` if it was present.
    pub fn remove(&mut self, value: &Value) -> bool {
        // Read-check first: a miss must not break sharing.
        if !self.elems.contains(value) {
            return false;
        }
        self.elems_mut().remove(value)
    }

    /// Removes every element satisfying the predicate, returning how many
    /// were removed. This is the engine of the set-minus update `-(exp)`.
    pub fn remove_if(&mut self, mut pred: impl FnMut(&Value) -> bool) -> usize {
        if Arc::strong_count(&self.elems) > 1 {
            // Scan read-only first so a no-match sweep keeps sharing intact.
            if !self.elems.iter().any(&mut pred) {
                return 0;
            }
            sharing::record_cow_break();
        }
        let elems = Arc::make_mut(&mut self.elems);
        let before = elems.len();
        elems.retain(|v| !pred(v));
        before - elems.len()
    }

    /// Drains all elements satisfying the predicate, returning them. Used by
    /// updates that must *modify* matching elements (remove + re-insert,
    /// since elements of a `BTreeSet` are immutable in place).
    pub fn take_if(&mut self, mut pred: impl FnMut(&Value) -> bool) -> Vec<Value> {
        let taken: Vec<Value> = self.elems.iter().filter(|v| pred(v)).cloned().collect();
        if taken.is_empty() {
            return taken;
        }
        let elems = self.elems_mut();
        for v in &taken {
            elems.remove(v);
        }
        taken
    }

    /// Iterates elements in `Ord` order.
    pub fn iter(&self) -> btree_set::Iter<'_, Value> {
        self.elems.iter()
    }

    /// Set union (value-based).
    pub fn union_with(&mut self, other: &SetObj) {
        if self.is_empty() {
            // Adopt the other handle wholesale — keeps its sharing intact.
            *self = other.clone();
            return;
        }
        // Read-check first: a no-op union must not break sharing.
        if other.iter().all(|v| self.elems.contains(v)) {
            return;
        }
        let elems = self.elems_mut();
        for v in other.iter() {
            elems.insert(v.clone());
        }
    }

    /// Whether `self` and `other` share one interior allocation (their
    /// equality is then decided without a structural walk). Test/telemetry
    /// introspection only — never affects semantics.
    pub fn shares_with(&self, other: &SetObj) -> bool {
        Arc::ptr_eq(&self.elems, &other.elems)
    }
}

impl Clone for SetObj {
    /// O(1): bumps the interior reference count (counted by
    /// [`sharing::SharingCounters::set_clones`]).
    fn clone(&self) -> Self {
        sharing::record_set_clone();
        SetObj { elems: Arc::clone(&self.elems) }
    }
}

impl PartialEq for SetObj {
    fn eq(&self, other: &Self) -> bool {
        if Arc::ptr_eq(&self.elems, &other.elems) {
            sharing::record_ptr_eq_hit();
            return true;
        }
        self.elems == other.elems
    }
}

impl Eq for SetObj {}

impl PartialOrd for SetObj {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for SetObj {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        if Arc::ptr_eq(&self.elems, &other.elems) {
            sharing::record_ptr_eq_hit();
            return std::cmp::Ordering::Equal;
        }
        self.elems.cmp(&other.elems)
    }
}

impl std::hash::Hash for SetObj {
    /// Structural: hashes the interior set, so a shared and an unshared
    /// handle with equal contents hash identically.
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        (*self.elems).hash(state);
    }
}

impl std::fmt::Debug for SetObj {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_set().entries(self.elems.iter()).finish()
    }
}

impl IntoIterator for SetObj {
    type Item = Value;
    type IntoIter = btree_set::IntoIter<Value>;

    fn into_iter(self) -> Self::IntoIter {
        match Arc::try_unwrap(self.elems) {
            Ok(set) => set.into_iter(),
            Err(shared) => {
                sharing::record_cow_break();
                (*shared).clone().into_iter()
            }
        }
    }
}

impl<'a> IntoIterator for &'a SetObj {
    type Item = &'a Value;
    type IntoIter = btree_set::Iter<'a, Value>;

    fn into_iter(self) -> Self::IntoIter {
        self.elems.iter()
    }
}

impl<V: Into<Value>> FromIterator<V> for SetObj {
    fn from_iter<I: IntoIterator<Item = V>>(iter: I) -> Self {
        SetObj { elems: Arc::new(iter.into_iter().map(Into::into).collect()) }
    }
}

impl<V: Into<Value>> Extend<V> for SetObj {
    fn extend<I: IntoIterator<Item = V>>(&mut self, iter: I) {
        for v in iter {
            self.insert(v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple;

    #[test]
    fn insert_dedups() {
        let mut s = SetObj::new();
        assert!(s.insert(Value::int(1)));
        assert!(!s.insert(Value::int(1)));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn heterogeneous_members() {
        let mut s = SetObj::new();
        s.insert(Value::int(1));
        s.insert(tuple! { a: 1i64 });
        s.insert(tuple! { a: 1i64, b: 2i64 }); // different arity, same set
        s.insert(Value::empty_set());
        assert_eq!(s.len(), 4);
    }

    #[test]
    fn remove_if_counts() {
        let mut s: SetObj = (0..10i64).map(Value::int).collect();
        let removed = s.remove_if(|v| v.as_atom().unwrap().as_int().unwrap() % 2 == 0);
        assert_eq!(removed, 5);
        assert_eq!(s.len(), 5);
        assert!(!s.contains(&Value::int(0)));
        assert!(s.contains(&Value::int(1)));
    }

    #[test]
    fn take_if_drains() {
        let mut s: SetObj = (0..4i64).map(Value::int).collect();
        let taken = s.take_if(|v| v.as_atom().unwrap().as_int().unwrap() >= 2);
        assert_eq!(taken.len(), 2);
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn union() {
        let mut a: SetObj = [1i64, 2].into_iter().map(Value::int).collect();
        let b: SetObj = [2i64, 3].into_iter().map(Value::int).collect();
        a.union_with(&b);
        assert_eq!(a.len(), 3);
    }

    #[test]
    fn clone_shares_until_written() {
        let a: SetObj = (0..4i64).map(Value::int).collect();
        let mut b = a.clone();
        assert!(a.shares_with(&b));
        b.insert(Value::int(99));
        assert!(!a.shares_with(&b), "write broke the sharing");
        assert_eq!(a.len(), 4, "original untouched");
        assert_eq!(b.len(), 5);
    }

    #[test]
    fn noop_writes_keep_sharing() {
        let a: SetObj = (0..4i64).map(Value::int).collect();
        let mut b = a.clone();
        assert!(!b.insert(Value::int(0)), "duplicate insert");
        assert!(!b.remove(&Value::int(77)), "absent remove");
        assert_eq!(b.remove_if(|v| v == &Value::int(77)), 0, "no-match sweep");
        assert!(b.take_if(|v| v == &Value::int(77)).is_empty(), "no-match drain");
        let mut c = a.clone();
        c.union_with(&b);
        assert!(a.shares_with(&b), "no-op writes must not deep-copy");
        assert!(a.shares_with(&c), "subset union must not deep-copy");
    }

    #[test]
    fn into_iter_on_shared_handle() {
        let a: SetObj = (0..3i64).map(Value::int).collect();
        let b = a.clone();
        assert_eq!(b.into_iter().count(), 3);
        assert_eq!(a.len(), 3, "surviving handle unaffected");
    }
}
