//! # `idl-object` — the IDL object model
//!
//! Implements §3 of *Krishnamurthy, Litwin & Kent, "Language Features for
//! Interoperability of Databases with Schematic Discrepancies"* (SIGMOD '91):
//! a value-based nested data model with exactly three categories of objects,
//!
//! * **atomic objects** — integers, floats, strings, booleans, dates, and the
//!   distinguished *null* atom (§5.2);
//! * **tuple objects** — finite maps from attribute names to objects,
//!   written `(name:john, sal:10000)`;
//! * **set objects** — collections of objects, written `{o1, o2, …}`.
//!
//! Two properties the paper calls out explicitly are honoured here:
//!
//! 1. *"Objects are value based and … \[do\] not have a notion of object
//!    identity"* — all objects implement structural `Eq`/`Ord`/`Hash`, so a
//!    set is a mathematical set of values.
//! 2. *"Set\[s\] can contain heterogeneous objects. Therefore, tuples … can
//!    have varying arity in a given relation"* — nothing constrains the
//!    members of a [`SetObj`], and [`TupleObj`] arity is per-tuple.
//!
//! The *universe* of databases (paper §3) is itself just a tuple object whose
//! attributes are database names; see [`universe`] for constructors.

#![warn(missing_docs)]

pub mod atom;
pub mod date;
pub mod float;
mod macros;
pub mod name;
pub mod path;
pub mod set;
pub mod sharing;
pub mod tuple;
pub mod universe;
pub mod value;

pub use atom::Atom;
pub use date::Date;
pub use float::F64;
pub use name::Name;
pub use path::Path;
pub use set::SetObj;
pub use sharing::SharingCounters;
pub use tuple::TupleObj;
pub use value::{Kind, Value};
