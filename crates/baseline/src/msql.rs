//! MSQL-style multidatabase broadcast.
//!
//! Litwin's MSQL (cited by the paper, whose interoperability features IDL
//! "subsumes") lets one statement address *several databases at once* —
//! provided they share a schema: `SELECT … FROM db1.r, db2.r …`. This
//! module models that capability over the first-order engine: a
//! [`Broadcast`] holds named member databases and runs one template query
//! against each member, tagging results with the member name.
//!
//! What it cannot do — and what experiment E8/B6 demonstrate — is run one
//! template across *schematically discrepant* members: the template's
//! relation and column references are fixed first-order symbols.

use crate::datalog::{FoDatabase, FoQuery};
use idl_object::Value;
use std::collections::BTreeMap;

/// A named collection of first-order databases.
#[derive(Default)]
pub struct Broadcast {
    members: BTreeMap<String, FoDatabase>,
}

/// Result rows per member database.
pub type BroadcastResult = BTreeMap<String, Vec<Vec<Value>>>;

impl Broadcast {
    /// Empty collection.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a member database.
    pub fn add_member(&mut self, name: impl Into<String>, db: FoDatabase) {
        self.members.insert(name.into(), db);
    }

    /// Member count.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Whether there are no members.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Access a member.
    pub fn member(&self, name: &str) -> Option<&FoDatabase> {
        self.members.get(name)
    }

    /// Runs one template query against every member. Members whose schema
    /// does not fit the template (missing relation, wrong arity) yield an
    /// error entry rather than silently succeeding — MSQL required
    /// matching schemas.
    pub fn broadcast(
        &self,
        template: &FoQuery,
    ) -> BTreeMap<String, Result<Vec<Vec<Value>>, String>> {
        self.members
            .iter()
            .map(|(name, db)| {
                let r = db.query(template).map(|set| set.into_iter().collect());
                (name.clone(), r)
            })
            .collect()
    }

    /// Union of successful member results (MSQL's multiple-identical-
    /// schema use case).
    pub fn broadcast_union(&self, template: &FoQuery) -> Vec<Vec<Value>> {
        let mut out: Vec<Vec<Value>> = Vec::new();
        for r in self.broadcast(template).into_values().flatten() {
            out.extend(r);
        }
        out.sort();
        out.dedup();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datalog::{FoCmp, FoLiteral, FoTerm};
    use crate::encode::{encode, Schema};
    use idl_object::Date;

    fn two_euter_members() -> Broadcast {
        let d: Date = "3/3/85".parse().unwrap();
        let mut b = Broadcast::new();
        b.add_member("nyse", encode(Schema::Euter, &[(d, "hp".into(), 50.0)]));
        b.add_member("lse", encode(Schema::Euter, &[(d, "bp".into(), 250.0)]));
        b
    }

    fn above(threshold: f64) -> FoQuery {
        FoQuery {
            body: vec![
                FoLiteral::Atom {
                    pred: "r".into(),
                    args: vec![FoTerm::v("D"), FoTerm::v("S"), FoTerm::v("P")],
                },
                FoLiteral::Cmp(FoTerm::v("P"), FoCmp::Gt, FoTerm::c(threshold)),
            ],
            outputs: vec!["S".into()],
        }
    }

    #[test]
    fn broadcast_over_identical_schemas_works() {
        let b = two_euter_members();
        let rows = b.broadcast_union(&above(100.0));
        assert_eq!(rows, vec![vec![Value::str("bp")]]);
        let per_member = b.broadcast(&above(0.0));
        assert_eq!(per_member["nyse"].as_ref().unwrap().len(), 1);
        assert_eq!(per_member["lse"].as_ref().unwrap().len(), 1);
    }

    #[test]
    fn broadcast_over_discrepant_schemas_fails() {
        let d: Date = "3/3/85".parse().unwrap();
        let quotes = vec![(d, "hp".to_string(), 210.0)];
        let mut b = Broadcast::new();
        b.add_member("euter", encode(Schema::Euter, &quotes));
        b.add_member("ource", encode(Schema::Ource, &quotes));
        let results = b.broadcast(&above(200.0));
        assert!(results["euter"].is_ok());
        assert!(
            results["ource"].is_err(),
            "the euter-shaped template cannot address the ource schema"
        );
    }
}
