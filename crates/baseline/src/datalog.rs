//! A first-order Datalog engine.
//!
//! Deliberately classical: relations have fixed arity, atoms are positional
//! (`r(X, hp, P)`), negation is stratified, and evaluation is semi-naive
//! bottom-up. There are no variables over predicate or attribute names —
//! that is the whole point of the comparison with IDL.

use idl_object::Value;
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::fmt;

/// A positional term.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub enum FoTerm {
    /// A constant.
    Const(Value),
    /// A variable, named for readability.
    Var(String),
}

impl FoTerm {
    /// Variable shorthand.
    pub fn v(name: &str) -> FoTerm {
        FoTerm::Var(name.to_string())
    }

    /// Constant shorthand.
    pub fn c(v: impl Into<Value>) -> FoTerm {
        FoTerm::Const(v.into())
    }
}

impl fmt::Display for FoTerm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FoTerm::Const(v) => write!(f, "{v}"),
            FoTerm::Var(n) => write!(f, "{n}"),
        }
    }
}

/// Comparison operators for built-in literals.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FoCmp {
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `=`
    Eq,
    /// `!=`
    Ne,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl FoCmp {
    fn holds(self, a: &Value, b: &Value) -> bool {
        use idl_eval_free::compare;
        compare(self, a, b)
    }
}

// Local comparison identical to IDL's query comparison for atoms, so the
// differential tests compare like with like.
mod idl_eval_free {
    use super::FoCmp;
    use idl_object::Value;
    use std::cmp::Ordering;

    pub fn compare(op: FoCmp, a: &Value, b: &Value) -> bool {
        match (a, b) {
            (Value::Atom(x), Value::Atom(y)) => match x.compare(y) {
                Some(ord) => matches(op, ord),
                None => false,
            },
            _ => match op {
                FoCmp::Eq => a == b,
                FoCmp::Ne => a != b,
                _ => false,
            },
        }
    }

    fn matches(op: FoCmp, ord: Ordering) -> bool {
        match op {
            FoCmp::Lt => ord == Ordering::Less,
            FoCmp::Le => ord != Ordering::Greater,
            FoCmp::Eq => ord == Ordering::Equal,
            FoCmp::Ne => ord != Ordering::Equal,
            FoCmp::Gt => ord == Ordering::Greater,
            FoCmp::Ge => ord != Ordering::Less,
        }
    }
}

/// A body literal.
#[derive(Clone, PartialEq, Debug)]
pub enum FoLiteral {
    /// `pred(t₁, …, tₙ)` — positive atom.
    Atom {
        /// Predicate (relation) name.
        pred: String,
        /// Positional arguments.
        args: Vec<FoTerm>,
    },
    /// `¬pred(t₁, …, tₙ)` — negated atom (stratified).
    NegAtom {
        /// Predicate name.
        pred: String,
        /// Positional arguments.
        args: Vec<FoTerm>,
    },
    /// Built-in comparison between two terms.
    Cmp(FoTerm, FoCmp, FoTerm),
}

/// A rule `head(args) :- body`.
#[derive(Clone, PartialEq, Debug)]
pub struct FoRule {
    /// Head predicate name.
    pub head: String,
    /// Head argument terms (constants allowed).
    pub head_args: Vec<FoTerm>,
    /// Body literals.
    pub body: Vec<FoLiteral>,
}

/// A program: a set of rules.
#[derive(Clone, Default, Debug)]
pub struct FoProgram {
    /// The rules.
    pub rules: Vec<FoRule>,
}

/// A conjunctive query: body literals plus distinguished output variables.
#[derive(Clone, Debug)]
pub struct FoQuery {
    /// Conjuncts.
    pub body: Vec<FoLiteral>,
    /// Output variable names (projection).
    pub outputs: Vec<String>,
}

/// A first-order database: named fixed-arity fact relations.
#[derive(Clone, Default, Debug)]
pub struct FoDatabase {
    relations: BTreeMap<String, BTreeSet<Vec<Value>>>,
    arities: BTreeMap<String, usize>,
}

impl FoDatabase {
    /// Empty database.
    pub fn new() -> Self {
        Self::default()
    }

    /// Declares a relation with fixed arity.
    pub fn create_relation(&mut self, name: &str, arity: usize) {
        self.relations.entry(name.to_string()).or_default();
        self.arities.insert(name.to_string(), arity);
    }

    /// Inserts a fact; panics on arity mismatch (programming error in the
    /// encoder — first-order schemas are rigid, that is the point).
    pub fn insert(&mut self, name: &str, fact: Vec<Value>) -> bool {
        let arity =
            *self.arities.get(name).unwrap_or_else(|| panic!("relation {name} not declared"));
        assert_eq!(fact.len(), arity, "arity mismatch inserting into {name}");
        self.relations.get_mut(name).expect("declared above").insert(fact)
    }

    /// The facts of a relation.
    pub fn facts(&self, name: &str) -> Option<&BTreeSet<Vec<Value>>> {
        self.relations.get(name)
    }

    /// Relation names.
    pub fn relation_names(&self) -> impl Iterator<Item = &String> {
        self.relations.keys()
    }

    /// Declared arity.
    pub fn arity(&self, name: &str) -> Option<usize> {
        self.arities.get(name).copied()
    }

    /// Total fact count.
    pub fn fact_count(&self) -> usize {
        self.relations.values().map(BTreeSet::len).sum()
    }

    /// Evaluates a conjunctive query, returning output tuples.
    pub fn query(&self, q: &FoQuery) -> Result<BTreeSet<Vec<Value>>, String> {
        let substs = self.eval_body(&q.body, vec![HashMap::new()])?;
        let mut out = BTreeSet::new();
        for s in substs {
            let mut row = Vec::with_capacity(q.outputs.len());
            for o in &q.outputs {
                row.push(s.get(o).cloned().ok_or_else(|| format!("output variable {o} unbound"))?);
            }
            out.insert(row);
        }
        Ok(out)
    }

    fn eval_body(
        &self,
        body: &[FoLiteral],
        seed: Vec<HashMap<String, Value>>,
    ) -> Result<Vec<HashMap<String, Value>>, String> {
        let mut current = seed;
        for lit in body {
            let mut next = Vec::new();
            match lit {
                FoLiteral::Atom { pred, args } => {
                    let facts =
                        self.relations.get(pred).ok_or_else(|| format!("no relation {pred}"))?;
                    for s in &current {
                        for fact in facts {
                            if fact.len() != args.len() {
                                continue;
                            }
                            if let Some(s2) = unify(args, fact, s) {
                                next.push(s2);
                            }
                        }
                    }
                }
                FoLiteral::NegAtom { pred, args } => {
                    let facts =
                        self.relations.get(pred).ok_or_else(|| format!("no relation {pred}"))?;
                    for s in &current {
                        let witnessed = facts
                            .iter()
                            .any(|fact| fact.len() == args.len() && unify(args, fact, s).is_some());
                        if !witnessed {
                            next.push(s.clone());
                        }
                    }
                }
                FoLiteral::Cmp(a, op, b) => {
                    for s in &current {
                        let av = resolve(a, s).ok_or("comparison operand unbound")?;
                        let bv = resolve(b, s).ok_or("comparison operand unbound")?;
                        if op.holds(&av, &bv) {
                            next.push(s.clone());
                        }
                    }
                }
            }
            current = next;
            if current.is_empty() {
                break;
            }
        }
        Ok(current)
    }

    /// Runs a program to fixpoint (stratified, semi-naive at rule
    /// granularity), adding derived facts to this database.
    pub fn run(&mut self, program: &FoProgram) -> Result<usize, String> {
        let strata = stratify(program)?;
        let mut total_new = 0usize;
        for stratum in strata {
            loop {
                let mut new_facts: Vec<(String, Vec<Value>)> = Vec::new();
                for &ri in &stratum {
                    let rule = &program.rules[ri];
                    // ensure head relation exists
                    if !self.relations.contains_key(&rule.head) {
                        self.create_relation(&rule.head, rule.head_args.len());
                    }
                    let substs = self.eval_body(&rule.body, vec![HashMap::new()])?;
                    for s in substs {
                        let mut fact = Vec::with_capacity(rule.head_args.len());
                        for t in &rule.head_args {
                            fact.push(resolve(t, &s).ok_or("unsafe head variable")?);
                        }
                        if !self.relations[&rule.head].contains(&fact) {
                            new_facts.push((rule.head.clone(), fact));
                        }
                    }
                }
                if new_facts.is_empty() {
                    break;
                }
                for (rel, fact) in new_facts {
                    if self.relations.get_mut(&rel).expect("created above").insert(fact) {
                        total_new += 1;
                    }
                }
            }
        }
        Ok(total_new)
    }
}

fn unify(
    args: &[FoTerm],
    fact: &[Value],
    s: &HashMap<String, Value>,
) -> Option<HashMap<String, Value>> {
    let mut s2 = s.clone();
    for (t, v) in args.iter().zip(fact) {
        match t {
            FoTerm::Const(c) => {
                if c != v {
                    return None;
                }
            }
            FoTerm::Var(name) => match s2.get(name) {
                Some(bound) if bound != v => return None,
                Some(_) => {}
                None => {
                    s2.insert(name.clone(), v.clone());
                }
            },
        }
    }
    Some(s2)
}

fn resolve(t: &FoTerm, s: &HashMap<String, Value>) -> Option<Value> {
    match t {
        FoTerm::Const(c) => Some(c.clone()),
        FoTerm::Var(n) => s.get(n).cloned(),
    }
}

/// Stratifies by predicate; error on negation through recursion.
fn stratify(program: &FoProgram) -> Result<Vec<Vec<usize>>, String> {
    let n = program.rules.len();
    let mut stratum = vec![0usize; n];
    for _ in 0..=(n * n + 1) {
        let mut changed = false;
        for (user, rule) in program.rules.iter().enumerate() {
            for lit in &rule.body {
                let (pred, neg) = match lit {
                    FoLiteral::Atom { pred, .. } => (pred, false),
                    FoLiteral::NegAtom { pred, .. } => (pred, true),
                    FoLiteral::Cmp(..) => continue,
                };
                for (definer, r2) in program.rules.iter().enumerate() {
                    if &r2.head == pred {
                        let need = stratum[definer] + usize::from(neg);
                        if stratum[user] < need {
                            stratum[user] = need;
                            changed = true;
                        }
                    }
                }
            }
        }
        if !changed {
            break;
        }
        if stratum.iter().any(|&s| s > n) {
            return Err("program is not stratified".into());
        }
    }
    let max = stratum.iter().copied().max().unwrap_or(0);
    let mut out = vec![Vec::new(); max + 1];
    for (i, &s) in stratum.iter().enumerate() {
        out[s].push(i);
    }
    out.retain(|v| !v.is_empty());
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn euter_db() -> FoDatabase {
        let mut db = FoDatabase::new();
        db.create_relation("r", 3); // (date, stk, price)
        for (d, s, p) in [("3/3/85", "hp", 50.0), ("3/3/85", "ibm", 160.0), ("3/4/85", "hp", 62.0)]
        {
            db.insert("r", vec![Value::str(d), Value::str(s), Value::float(p)]);
        }
        db
    }

    #[test]
    fn conjunctive_query_with_join() {
        let db = euter_db();
        // dates where hp and ibm both quoted
        let q = FoQuery {
            body: vec![
                FoLiteral::Atom {
                    pred: "r".into(),
                    args: vec![FoTerm::v("D"), FoTerm::c("hp"), FoTerm::v("P1")],
                },
                FoLiteral::Atom {
                    pred: "r".into(),
                    args: vec![FoTerm::v("D"), FoTerm::c("ibm"), FoTerm::v("P2")],
                },
            ],
            outputs: vec!["D".into()],
        };
        let rows = db.query(&q).unwrap();
        assert_eq!(rows.len(), 1);
    }

    #[test]
    fn comparison_builtin() {
        let db = euter_db();
        let q = FoQuery {
            body: vec![
                FoLiteral::Atom {
                    pred: "r".into(),
                    args: vec![FoTerm::v("D"), FoTerm::v("S"), FoTerm::v("P")],
                },
                FoLiteral::Cmp(FoTerm::v("P"), FoCmp::Gt, FoTerm::c(100.0)),
            ],
            outputs: vec!["S".into()],
        };
        let rows = db.query(&q).unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows.iter().next().unwrap()[0], Value::str("ibm"));
    }

    #[test]
    fn recursive_program_transitive_closure() {
        let mut db = FoDatabase::new();
        db.create_relation("edge", 2);
        for (a, b) in [("a", "b"), ("b", "c"), ("c", "d")] {
            db.insert("edge", vec![Value::str(a), Value::str(b)]);
        }
        let prog = FoProgram {
            rules: vec![
                FoRule {
                    head: "path".into(),
                    head_args: vec![FoTerm::v("X"), FoTerm::v("Y")],
                    body: vec![FoLiteral::Atom {
                        pred: "edge".into(),
                        args: vec![FoTerm::v("X"), FoTerm::v("Y")],
                    }],
                },
                FoRule {
                    head: "path".into(),
                    head_args: vec![FoTerm::v("X"), FoTerm::v("Z")],
                    body: vec![
                        FoLiteral::Atom {
                            pred: "edge".into(),
                            args: vec![FoTerm::v("X"), FoTerm::v("Y")],
                        },
                        FoLiteral::Atom {
                            pred: "path".into(),
                            args: vec![FoTerm::v("Y"), FoTerm::v("Z")],
                        },
                    ],
                },
            ],
        };
        let added = db.run(&prog).unwrap();
        assert_eq!(added, 6, "3 edges + 3 longer paths");
        assert_eq!(db.facts("path").unwrap().len(), 6);
    }

    #[test]
    fn stratified_negation_runs() {
        let mut db = FoDatabase::new();
        db.create_relation("node", 1);
        db.create_relation("covered", 1);
        db.insert("node", vec![Value::str("a")]);
        db.insert("node", vec![Value::str("b")]);
        db.insert("covered", vec![Value::str("a")]);
        let prog = FoProgram {
            rules: vec![FoRule {
                head: "uncovered".into(),
                head_args: vec![FoTerm::v("X")],
                body: vec![
                    FoLiteral::Atom { pred: "node".into(), args: vec![FoTerm::v("X")] },
                    FoLiteral::NegAtom { pred: "covered".into(), args: vec![FoTerm::v("X")] },
                ],
            }],
        };
        db.run(&prog).unwrap();
        let facts = db.facts("uncovered").unwrap();
        assert_eq!(facts.len(), 1);
        assert_eq!(facts.iter().next().unwrap()[0], Value::str("b"));
    }

    #[test]
    fn unstratified_rejected() {
        let mut db = FoDatabase::new();
        db.create_relation("p", 1);
        let prog = FoProgram {
            rules: vec![
                FoRule {
                    head: "q".into(),
                    head_args: vec![FoTerm::v("X")],
                    body: vec![
                        FoLiteral::Atom { pred: "p".into(), args: vec![FoTerm::v("X")] },
                        FoLiteral::NegAtom { pred: "s".into(), args: vec![FoTerm::v("X")] },
                    ],
                },
                FoRule {
                    head: "s".into(),
                    head_args: vec![FoTerm::v("X")],
                    body: vec![FoLiteral::Atom { pred: "q".into(), args: vec![FoTerm::v("X")] }],
                },
            ],
        };
        assert!(db.run(&prog).is_err());
    }

    #[test]
    #[should_panic(expected = "arity mismatch")]
    fn rigid_arity() {
        let mut db = FoDatabase::new();
        db.create_relation("r", 2);
        db.insert("r", vec![Value::int(1)]);
    }
}
