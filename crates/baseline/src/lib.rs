//! # `idl-baseline` — the first-order comparator
//!
//! The paper's central argument (§1–§2) is negative: *"Present relational
//! language capabilities are insufficient to provide interoperability of
//! databases even if they are all relational"*, because first-order
//! languages cannot quantify over metadata. This crate is the other side of
//! that argument, built so the repository can *demonstrate* it rather than
//! assert it:
//!
//! * [`datalog`] — a classic first-order Datalog engine (fixed-arity
//!   relations, positional terms, stratified negation, semi-naive
//!   fixpoint). This is the stand-in for "SQL / Datalog / LDL" in the
//!   paper's comparison.
//! * [`encode`] — faithful first-order encodings of the three stock
//!   schemata. For `euter` the encoding is state-independent; for `chwab`
//!   and `ource` the *schema itself* depends on the data, so the encoder
//!   must regenerate relations (and every program referencing them) when a
//!   stock appears — the inexpressibility demonstrator of experiment E8.
//! * [`msql`] — an MSQL-style broadcast layer (after Litwin's MSQL, which
//!   the paper cites as subsumed): one *template* query instantiated
//!   against many databases. It shows what 1980s multidatabase languages
//!   could do — same query against same-schema databases — and what they
//!   could not: bridging schematic discrepancies without per-schema
//!   rewrites.
//!
//! The benchmark B6 uses [`datalog`] as the performance baseline for
//! queries expressible in both languages.

#![warn(missing_docs)]

pub mod datalog;
pub mod encode;
pub mod msql;

pub use datalog::{FoDatabase, FoLiteral, FoProgram, FoQuery, FoRule, FoTerm};
