//! First-order encodings of the three stock schemata.
//!
//! The encodings are deliberately *faithful* to what a first-order system
//! (SQL, Datalog) would hold:
//!
//! * **euter** — one ternary relation `r(date, stk, price)`. The schema
//!   never changes; one fixed query covers all states.
//! * **chwab** — one wide relation whose *columns* are stock codes. A
//!   first-order system has no way to quantify over columns, so the
//!   encoder must emit one relation `r` of arity `1 + #stocks` — and any
//!   program touching it must be regenerated when a stock appears. The
//!   generated query for "any stock above X" is a *union with one disjunct
//!   per stock*, i.e. its size is data-dependent.
//! * **ource** — one binary relation *per stock*. Same story: the program
//!   enumerates relation names, so it is state-dependent.
//!
//! [`fo_above_query`] makes this concrete: it returns the per-schema
//! first-order program for the paper's "did any stock ever close above
//! \$200?" query, along with the set of schema elements it hard-codes.
//! Experiment E8 asserts that adding one stock changes the generated
//! programs for chwab/ource but not for euter — the inexpressibility
//! demonstration.

use crate::datalog::{FoCmp, FoDatabase, FoLiteral, FoQuery, FoTerm};
use idl_object::{Date, Value};
use std::collections::BTreeSet;

/// A quote triple.
pub type Quote = (Date, String, f64);

/// Which of the three schemata to encode.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Schema {
    /// Stock codes as data.
    Euter,
    /// Stock codes as attribute (column) names.
    Chwab,
    /// Stock codes as relation names.
    Ource,
}

/// Encodes quotes into a first-order database under the given schema.
pub fn encode(schema: Schema, quotes: &[Quote]) -> FoDatabase {
    let mut db = FoDatabase::new();
    match schema {
        Schema::Euter => {
            db.create_relation("r", 3);
            for (d, s, p) in quotes {
                db.insert("r", vec![Value::date(*d), Value::str(s), Value::float(*p)]);
            }
        }
        Schema::Chwab => {
            // Column order: date, then stocks sorted by name — the schema
            // is a function of the data.
            let stocks = stock_codes(quotes);
            db.create_relation("r", 1 + stocks.len());
            let dates: BTreeSet<Date> = quotes.iter().map(|(d, _, _)| *d).collect();
            for d in dates {
                let mut row = vec![Value::date(d)];
                for s in &stocks {
                    let price = quotes
                        .iter()
                        .find(|(qd, qs, _)| *qd == d && qs == s)
                        .map(|(_, _, p)| Value::float(*p))
                        .unwrap_or_else(Value::null);
                    row.push(price);
                }
                db.insert("r", row);
            }
        }
        Schema::Ource => {
            for s in stock_codes(quotes) {
                db.create_relation(&s, 2);
            }
            for (d, s, p) in quotes {
                db.insert(s, vec![Value::date(*d), Value::float(*p)]);
            }
        }
    }
    db
}

/// Sorted distinct stock codes in a quote set.
pub fn stock_codes(quotes: &[Quote]) -> Vec<String> {
    let set: BTreeSet<&str> = quotes.iter().map(|(_, s, _)| s.as_str()).collect();
    set.into_iter().map(str::to_string).collect()
}

/// The first-order program(s) answering *"which stocks ever closed above
/// `threshold`?"* under a schema, together with the schema elements the
/// program hard-codes. For `Euter` the program is state-independent
/// (`hardcoded` is empty); for the other two it must enumerate schema
/// elements and is therefore invalidated by data changes.
pub struct FoAboveQuery {
    /// One conjunctive query per disjunct; the answer is the union of
    /// their results. Each query outputs a single column: the stock code.
    pub disjuncts: Vec<FoQuery>,
    /// Stock codes baked into the program text.
    pub hardcoded: Vec<String>,
}

/// Builds the per-schema program for the "> threshold" intention.
pub fn fo_above_query(schema: Schema, quotes: &[Quote], threshold: f64) -> FoAboveQuery {
    match schema {
        Schema::Euter => FoAboveQuery {
            disjuncts: vec![FoQuery {
                body: vec![
                    FoLiteral::Atom {
                        pred: "r".into(),
                        args: vec![FoTerm::v("D"), FoTerm::v("S"), FoTerm::v("P")],
                    },
                    FoLiteral::Cmp(FoTerm::v("P"), FoCmp::Gt, FoTerm::c(threshold)),
                ],
                outputs: vec!["S".into()],
            }],
            hardcoded: vec![],
        },
        Schema::Chwab => {
            let stocks = stock_codes(quotes);
            // one disjunct per column: select rows where column_i > t,
            // outputting the (hard-coded!) stock name via a constant bound
            // through an equality trick: S = "code".
            let disjuncts = stocks
                .iter()
                .enumerate()
                .map(|(i, code)| {
                    let mut args = vec![FoTerm::v("D")];
                    for j in 0..stocks.len() {
                        args.push(if i == j {
                            FoTerm::v("P")
                        } else {
                            FoTerm::Var(format!("_{j}"))
                        });
                    }
                    FoQuery {
                        body: vec![
                            FoLiteral::Atom { pred: "r".into(), args },
                            FoLiteral::Cmp(FoTerm::v("P"), FoCmp::Gt, FoTerm::c(threshold)),
                            FoLiteral::Cmp(FoTerm::v("S"), FoCmp::Eq, FoTerm::c(Value::str(code))),
                        ],
                        outputs: vec!["S".into()],
                    }
                })
                .collect();
            FoAboveQuery { disjuncts, hardcoded: stocks }
        }
        Schema::Ource => {
            let stocks = stock_codes(quotes);
            let disjuncts = stocks
                .iter()
                .map(|code| FoQuery {
                    body: vec![
                        FoLiteral::Atom {
                            pred: code.clone(),
                            args: vec![FoTerm::v("D"), FoTerm::v("P")],
                        },
                        FoLiteral::Cmp(FoTerm::v("P"), FoCmp::Gt, FoTerm::c(threshold)),
                        FoLiteral::Cmp(FoTerm::v("S"), FoCmp::Eq, FoTerm::c(Value::str(code))),
                    ],
                    outputs: vec!["S".into()],
                })
                .collect();
            FoAboveQuery { disjuncts, hardcoded: stocks }
        }
    }
}

/// Runs an [`FoAboveQuery`], unioning the disjuncts.
pub fn run_above(db: &FoDatabase, q: &FoAboveQuery) -> BTreeSet<Value> {
    let mut out = BTreeSet::new();
    for d in &q.disjuncts {
        if let Ok(rows) = db.query(d) {
            for row in rows {
                out.insert(row[0].clone());
            }
        }
    }
    out
}

// The Cmp Eq "binding" trick requires an unbound variable on the left to
// be *assigned*; classical built-ins cannot bind. Keep the comparison
// honest: rewrite `S = const` disjuncts at run time instead.
// (See `run_above_binding` below, which the tests use.)

/// Like [`run_above`] but handles the `S = const` output-binding disjuncts
/// by substituting the constant directly (built-ins cannot bind variables
/// in classical Datalog; this mirrors SQL's `SELECT 'code' AS s`).
pub fn run_above_binding(db: &FoDatabase, q: &FoAboveQuery) -> BTreeSet<Value> {
    let mut out = BTreeSet::new();
    for d in &q.disjuncts {
        // Split off a trailing `S = const` pseudo-literal, if present.
        let mut body = d.body.clone();
        let mut constant_output: Option<Value> = None;
        body.retain(|lit| match lit {
            FoLiteral::Cmp(FoTerm::Var(v), FoCmp::Eq, FoTerm::Const(c)) if v == "S" => {
                constant_output = Some(c.clone());
                false
            }
            _ => true,
        });
        match constant_output {
            Some(c) => {
                let probe = FoQuery { body, outputs: vec!["P".into()] };
                if let Ok(rows) = db.query(&probe) {
                    if !rows.is_empty() {
                        out.insert(c);
                    }
                }
            }
            None => {
                if let Ok(rows) = db.query(d) {
                    for row in rows {
                        out.insert(row[0].clone());
                    }
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quotes() -> Vec<Quote> {
        let d1: Date = "3/3/85".parse().unwrap();
        let d2: Date = "3/4/85".parse().unwrap();
        vec![
            (d1, "hp".into(), 50.0),
            (d1, "ibm".into(), 210.0),
            (d2, "hp".into(), 62.0),
            (d2, "ibm".into(), 155.0),
        ]
    }

    #[test]
    fn encodings_have_expected_shapes() {
        let q = quotes();
        let e = encode(Schema::Euter, &q);
        assert_eq!(e.facts("r").unwrap().len(), 4);
        assert_eq!(e.arity("r"), Some(3));

        let c = encode(Schema::Chwab, &q);
        assert_eq!(c.facts("r").unwrap().len(), 2, "one row per date");
        assert_eq!(c.arity("r"), Some(3), "date + 2 stock columns");

        let o = encode(Schema::Ource, &q);
        assert_eq!(o.relation_names().count(), 2);
        assert_eq!(o.facts("hp").unwrap().len(), 2);
    }

    #[test]
    fn same_intention_all_schemata() {
        let q = quotes();
        for schema in [Schema::Euter, Schema::Chwab, Schema::Ource] {
            let db = encode(schema, &q);
            let prog = fo_above_query(schema, &q, 200.0);
            let hits = run_above_binding(&db, &prog);
            assert_eq!(hits.into_iter().collect::<Vec<_>>(), vec![Value::str("ibm")], "{schema:?}");
        }
    }

    #[test]
    fn chwab_and_ource_programs_are_state_dependent() {
        let q1 = quotes();
        let mut q2 = quotes();
        q2.push(("3/5/85".parse().unwrap(), "sun".into(), 300.0));

        // euter: same program before and after
        let e1 = fo_above_query(Schema::Euter, &q1, 200.0);
        let e2 = fo_above_query(Schema::Euter, &q2, 200.0);
        assert_eq!(e1.disjuncts.len(), e2.disjuncts.len());
        assert!(e1.hardcoded.is_empty());

        // chwab/ource: program size grows with the data
        for schema in [Schema::Chwab, Schema::Ource] {
            let p1 = fo_above_query(schema, &q1, 200.0);
            let p2 = fo_above_query(schema, &q2, 200.0);
            assert_eq!(p1.disjuncts.len(), 2);
            assert_eq!(p2.disjuncts.len(), 3, "{schema:?}: new stock ⇒ new program");
            assert!(p2.hardcoded.contains(&"sun".to_string()));
        }

        // and the stale program silently misses the new stock
        let db2 = encode(Schema::Ource, &q2);
        let stale = fo_above_query(Schema::Ource, &q1, 200.0);
        let hits = run_above_binding(&db2, &stale);
        assert!(
            !hits.contains(&Value::str("sun")),
            "stale first-order program misses data the IDL query finds"
        );
    }
}
