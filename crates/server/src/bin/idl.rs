//! `idl` — command-line runner, server and client for IDL.
//!
//! ```text
//! idl [--snapshot universe.json] [--save universe.json] [--sql] \
//!     [--analyze] [script.idl ...]
//! idl -e '?.euter.r(.stkCode=S, .clsPrice>200)'
//! idl --durable ./stocks --mapping -e '?.dbU.insStk(.stk=hp, .date=3/3/85, .price=50)'
//! idl serve --stock --addr 127.0.0.1:7401
//! idl connect 127.0.0.1:7401 -e '?.euter.r(.stkCode=S)' --stats
//! ```
//!
//! # Engine flags (script mode and `serve`)
//!
//! * `--snapshot F` — load the universe from a JSON snapshot first.
//! * `--save F` — write the universe back after all scripts ran.
//! * `--stock` — preload the paper's miniature stock universe.
//! * `--mapping` — install the paper's two-level mapping (views + programs).
//! * `--durable DIR` — run against a crash-safe [`DurableEngine`] rooted
//!   at `DIR` (snapshot + checksummed operation log); mutating requests
//!   are logged and fsynced before their outcome prints. With
//!   `--mapping`, the mapping installs before the log replays.
//! * `--fsync always|off` — log/snapshot fsync policy under `--durable`
//!   (default `always`; `off` is the unsafe ablation mode).
//! * `--codec json|binary` — snapshot encoding under `--durable`
//!   (default `binary`, or the `IDL_CODEC` environment knob; a JSON
//!   directory migrates to binary on open when binary is in effect).
//! * `--storage mem|paged[:N]` — checkpoint storage backend under
//!   `--durable` (default `mem`, or the `IDL_STORAGE` environment
//!   knob): `mem` keeps the universe in memory and checkpoints to
//!   snapshot + delta-chain files; `paged` commits into a single
//!   shadow-paged file of slotted pages and B-trees, fronted by a
//!   buffer pool of `N` pages (default 1024).
//! * `--pool-pages N` — buffer-pool capacity for `--storage paged`
//!   (shorthand for `--storage paged:N`).
//! * `--checkpoint [auto|full]` — after all scripts ran, write a
//!   checkpoint and rotate the log (requires `--durable`; may be the
//!   only action). Bare or `auto` lets the engine write an incremental
//!   delta when it can; `full` forces a full snapshot, compacting any
//!   delta chain.
//! * `--sql` — treat `-e` input / script lines as the SQL-sugar dialect.
//! * `--analyze` — run static binding analysis instead of executing.
//! * `--explain` — pretty-print the compiled physical plan for each
//!   request instead of executing.
//! * `--no-compile` — execute with the tree-walk reference interpreter
//!   instead of compiled plans (what `IDL_NO_COMPILE=1` does in CI).
//! * `--threads N` — fixpoint worker threads for view materialisation
//!   (default: available parallelism; `1` forces the sequential path).
//! * `--stats` — after all scripts ran, print the statistics of the last
//!   view materialisation: iterations, rule evaluations, facts added,
//!   plan-cache traffic, per-stratum telemetry, and the structural-sharing
//!   counters (O(1) clones, copy-on-write breaks, pointer-equality hits,
//!   sharing hit rate). Under `--durable` the durability counters
//!   follow: log appends/syncs, checkpoints, recovery work, and — on
//!   the paged backend — the buffer-pool hit/miss/eviction telemetry.
//! * `-e STMT` — execute one statement from the command line.
//!
//! # `idl serve`
//!
//! Serves the configured engine over TCP to concurrent sessions (see
//! the `idl-server` crate): prints the bound address, then runs until a
//! client sends `Shutdown`. Extra flags: `--addr HOST:PORT` (default
//! `127.0.0.1:0` = ephemeral), `--max-sessions N`, `--max-frame BYTES`,
//! `--request-timeout SECS` (`0` disables deadlines),
//! `--no-remote-shutdown`.
//!
//! # `idl connect ADDR`
//!
//! Runs scripts / `-e` statements against a remote server, then any of:
//! `--ping`, `--refresh`, `--dump-universe`, `--stats` (server, session
//! and engine counters), `--shutdown`.
//!
//! The environment variable `IDL_SIM_FAULTS` (a fault plan such as
//! `seed=7,crash_at=12`; see [`idl::FaultPlan`]) reroutes `--durable`
//! onto the deterministic in-memory simulated VFS — nothing touches the
//! real disk, and the scheduled fault fires mid-run. This is the manual
//! counterpart of the crash battery in `tests/crash_recovery.rs`.
//!
//! Scripts are ordinary multi-statement IDL sources (`;`-separated).

use idl::{
    Backend, CheckpointPolicy, DurabilityStats, DurableEngine, Engine, EngineOptions, FaultPlan,
    Outcome, RealVfs, SimVfs, SnapshotCodec, StorageSpec, SyncPolicy, Vfs,
};
use idl_server::{serve, Client, ServeMode, ServerConfig};
use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

struct Cli {
    snapshot: Option<PathBuf>,
    save: Option<PathBuf>,
    durable: Option<PathBuf>,
    fsync: SyncPolicy,
    codec: Option<SnapshotCodec>,
    storage: Option<StorageSpec>,
    pool_pages: Option<usize>,
    checkpoint: bool,
    checkpoint_policy: Option<CheckpointPolicy>,
    stock: bool,
    mapping: bool,
    sql: bool,
    analyze: bool,
    explain: bool,
    no_compile: bool,
    stats: bool,
    threads: Option<usize>,
    inline: Vec<String>,
    scripts: Vec<PathBuf>,
    // `serve` extras
    addr: String,
    serve_mode: ServeMode,
    max_sessions: usize,
    max_frame: u32,
    request_timeout: Duration,
    no_remote_shutdown: bool,
    workers: usize,
    session_queue: usize,
    pending_queue: usize,
    group_commit: usize,
    // `connect` extras
    ping: bool,
    refresh: bool,
    dump_universe: bool,
    shutdown: bool,
}

impl Default for Cli {
    fn default() -> Self {
        let server = ServerConfig::default();
        Cli {
            snapshot: None,
            save: None,
            durable: None,
            fsync: SyncPolicy::Always,
            codec: None,
            storage: None,
            pool_pages: None,
            checkpoint: false,
            checkpoint_policy: None,
            stock: false,
            mapping: false,
            sql: false,
            analyze: false,
            explain: false,
            no_compile: false,
            stats: false,
            threads: None,
            inline: Vec::new(),
            scripts: Vec::new(),
            addr: server.addr,
            serve_mode: server.mode,
            max_sessions: server.max_sessions,
            max_frame: server.max_frame,
            request_timeout: server.request_timeout,
            no_remote_shutdown: false,
            workers: server.workers,
            session_queue: server.session_queue,
            pending_queue: server.pending_queue,
            group_commit: server.group_commit,
            ping: false,
            refresh: false,
            dump_universe: false,
            shutdown: false,
        }
    }
}

/// Which front half of the CLI is running.
enum Mode {
    Script,
    Serve,
    Connect(String),
}

fn parse_args(args: impl Iterator<Item = String>) -> Result<(Mode, Cli), String> {
    let mut cli = Cli::default();
    let mut args = args.peekable();
    let mode = match args.peek().map(String::as_str) {
        Some("serve") => {
            args.next();
            Mode::Serve
        }
        Some("connect") => {
            args.next();
            let addr = args.next().ok_or("connect needs a server address")?;
            Mode::Connect(addr)
        }
        _ => Mode::Script,
    };
    while let Some(a) = args.next() {
        match a.as_str() {
            "--snapshot" => {
                cli.snapshot = Some(args.next().ok_or("--snapshot needs a path")?.into())
            }
            "--save" => cli.save = Some(args.next().ok_or("--save needs a path")?.into()),
            "--durable" => {
                cli.durable = Some(args.next().ok_or("--durable needs a directory")?.into())
            }
            "--fsync" => {
                let mode = args.next().ok_or("--fsync needs always|off")?;
                cli.fsync = mode.parse()?;
            }
            "--codec" => {
                let c = args.next().ok_or("--codec needs json|binary")?;
                cli.codec = Some(c.parse()?);
            }
            "--storage" => {
                let s = args.next().ok_or("--storage needs mem|paged[:N]")?;
                cli.storage = Some(s.parse().map_err(|e| format!("--storage: {e}"))?);
            }
            "--pool-pages" => {
                let n = args.next().ok_or("--pool-pages needs a page count")?;
                let n: usize = n
                    .parse()
                    .map_err(|_| format!("--pool-pages needs a positive integer, got {n:?}"))?;
                if n == 0 {
                    return Err("--pool-pages must be at least 1".into());
                }
                cli.pool_pages = Some(n);
            }
            "--checkpoint" => {
                cli.checkpoint = true;
                // Optional bare value: `--checkpoint full` compacts any
                // delta chain, `--checkpoint auto` (= bare `--checkpoint`)
                // lets the engine pick delta vs full.
                if let Some(policy) = args.peek().and_then(|next| next.parse().ok()) {
                    cli.checkpoint_policy = Some(policy);
                    args.next();
                }
            }
            "--stock" => cli.stock = true,
            "--mapping" => cli.mapping = true,
            "--sql" => cli.sql = true,
            "--analyze" => cli.analyze = true,
            "--explain" => cli.explain = true,
            "--no-compile" => cli.no_compile = true,
            "--stats" => cli.stats = true,
            "--threads" => {
                let n = args.next().ok_or("--threads needs a count")?;
                let n: usize = n
                    .parse()
                    .map_err(|_| format!("--threads needs a positive integer, got {n:?}"))?;
                if n == 0 {
                    return Err("--threads must be at least 1".into());
                }
                cli.threads = Some(n);
            }
            "--addr" => cli.addr = args.next().ok_or("--addr needs host:port")?,
            "--serve-mode" => {
                let m = args.next().ok_or("--serve-mode needs threaded|event")?;
                cli.serve_mode = m.parse()?;
            }
            "--workers" => {
                let n = args.next().ok_or("--workers needs a count (0 = one per core)")?;
                cli.workers =
                    n.parse().map_err(|_| format!("--workers needs an integer, got {n:?}"))?;
            }
            "--session-queue" => {
                let n = args.next().ok_or("--session-queue needs a request count")?;
                cli.session_queue = n
                    .parse()
                    .map_err(|_| format!("--session-queue needs an integer, got {n:?}"))?;
                if cli.session_queue == 0 {
                    return Err("--session-queue must be at least 1".into());
                }
            }
            "--pending-queue" => {
                let n = args.next().ok_or("--pending-queue needs a request count")?;
                cli.pending_queue = n
                    .parse()
                    .map_err(|_| format!("--pending-queue needs an integer, got {n:?}"))?;
                if cli.pending_queue == 0 {
                    return Err("--pending-queue must be at least 1".into());
                }
            }
            "--group-commit" => {
                let n = args.next().ok_or("--group-commit needs a batch size")?;
                cli.group_commit =
                    n.parse().map_err(|_| format!("--group-commit needs an integer, got {n:?}"))?;
                if cli.group_commit == 0 {
                    return Err("--group-commit must be at least 1".into());
                }
            }
            "--max-sessions" => {
                let n = args.next().ok_or("--max-sessions needs a count")?;
                cli.max_sessions =
                    n.parse().map_err(|_| format!("--max-sessions needs an integer, got {n:?}"))?;
            }
            "--max-frame" => {
                let n = args.next().ok_or("--max-frame needs a byte count")?;
                cli.max_frame =
                    n.parse().map_err(|_| format!("--max-frame needs an integer, got {n:?}"))?;
            }
            "--request-timeout" => {
                let n = args.next().ok_or("--request-timeout needs seconds")?;
                let secs: u64 = n
                    .parse()
                    .map_err(|_| format!("--request-timeout needs whole seconds, got {n:?}"))?;
                cli.request_timeout = Duration::from_secs(secs);
            }
            "--no-remote-shutdown" => cli.no_remote_shutdown = true,
            "--ping" => cli.ping = true,
            "--refresh" => cli.refresh = true,
            "--dump-universe" => cli.dump_universe = true,
            "--shutdown" => cli.shutdown = true,
            "-e" => cli.inline.push(args.next().ok_or("-e needs a statement")?),
            "--help" | "-h" => {
                println!(
                    "usage: idl [--snapshot F] [--save F] [--durable DIR] [--fsync always|off] \
                     [--codec json|binary] [--storage mem|paged[:N]] [--pool-pages N] \
                     [--checkpoint [auto|full]] [--stock] [--mapping] \
                     [--sql] [--analyze] [--explain] [--no-compile] [--stats] [--threads N] \
                     [-e STMT] [script.idl ...]\n\
                     \x20      idl serve [engine flags] [--addr HOST:PORT] \
                     [--serve-mode threaded|event] [--max-sessions N] [--max-frame BYTES] \
                     [--request-timeout SECS] [--no-remote-shutdown] [--workers N] \
                     [--session-queue N] [--pending-queue N] [--group-commit N]\n\
                     \x20      idl connect ADDR [-e STMT] [script.idl ...] [--ping] [--refresh] \
                     [--dump-universe] [--stats] [--shutdown]"
                );
                std::process::exit(0);
            }
            other if other.starts_with('-') => return Err(format!("unknown flag {other}")),
            path => cli.scripts.push(path.into()),
        }
    }
    if cli.durable.is_some() {
        if cli.snapshot.is_some() || cli.save.is_some() || cli.stock {
            return Err(
                "--durable manages its own snapshot (drop --snapshot/--save/--stock)".into()
            );
        }
        if cli.sql {
            return Err(
                "--sql mutations would bypass the operation log; not allowed with --durable".into(),
            );
        }
    } else {
        if cli.checkpoint {
            return Err("--checkpoint requires --durable".into());
        }
        if cli.fsync != SyncPolicy::Always {
            return Err("--fsync requires --durable".into());
        }
        if cli.codec.is_some() {
            return Err("--codec requires --durable".into());
        }
        if cli.storage.is_some() {
            return Err("--storage requires --durable".into());
        }
        if cli.pool_pages.is_some() {
            return Err("--pool-pages requires --durable".into());
        }
    }
    if cli.pool_pages.is_some() && matches!(cli.storage, Some(StorageSpec::Mem)) {
        return Err("--pool-pages needs the paged backend (--storage paged)".into());
    }
    Ok((mode, cli))
}

/// Applies `--threads` / `--no-compile` to an engine's options.
fn apply_engine_flags(e: &mut Engine, threads: Option<usize>, no_compile: bool) {
    let mut b = e.options().rebuild();
    if let Some(n) = threads {
        b = b.threads(n);
    }
    if no_compile {
        b = b.compile(false);
    }
    e.set_options(b.build());
}

fn open_durable(cli: &Cli, dir: &Path) -> Result<DurableEngine, String> {
    let vfs: Arc<dyn Vfs> = match std::env::var("IDL_SIM_FAULTS") {
        Ok(spec) => {
            let plan: FaultPlan = spec.parse().map_err(|e| format!("bad IDL_SIM_FAULTS: {e}"))?;
            eprintln!("idl: IDL_SIM_FAULTS set — running on the simulated VFS (plan: {plan}); the real disk is untouched");
            Arc::new(SimVfs::new(plan))
        }
        Err(_) => Arc::new(RealVfs::new()),
    };
    let mut builder = EngineOptions::builder().sync(cli.fsync);
    if let Some(codec) = cli.codec {
        builder = builder.codec(codec);
    }
    if let Some(policy) = cli.checkpoint_policy {
        builder = builder.checkpoint_policy(policy);
    }
    if let Some(spec) = cli.storage {
        builder = builder.storage(spec);
    }
    if let Some(pages) = cli.pool_pages {
        // `--pool-pages N` alone selects the paged backend outright;
        // combined with `--storage paged[:M]` the explicit count wins.
        builder = builder.pool_pages(pages);
    }
    let opts = builder.durability();
    let mapping = cli.mapping;
    let threads = cli.threads;
    let no_compile = cli.no_compile;
    DurableEngine::open_with_vfs(dir.to_path_buf(), vfs, opts, move |e| {
        apply_engine_flags(e, threads, no_compile);
        if mapping {
            idl::transparency::install_two_level_mapping(e)?;
        }
        Ok(())
    })
    .map_err(|e| format!("cannot open durable engine at {}: {e}", dir.display()))
}

/// Builds the configured backend — one facade over both engines.
fn build_backend(cli: &Cli) -> Result<Box<dyn Backend + Send>, String> {
    if let Some(dir) = &cli.durable {
        return Ok(Box::new(open_durable(cli, dir)?));
    }
    let mut engine = match &cli.snapshot {
        Some(path) => {
            Engine::load_snapshot(path).map_err(|e| format!("cannot load snapshot: {e}"))?
        }
        None if cli.stock => Engine::with_stock_universe(vec![
            ("3/3/85", "hp", 50.0),
            ("3/3/85", "ibm", 160.0),
            ("3/4/85", "hp", 62.0),
            ("3/4/85", "ibm", 155.0),
            ("3/5/85", "hp", 61.0),
            ("3/5/85", "ibm", 210.0),
        ]),
        None => Engine::new(),
    };
    apply_engine_flags(&mut engine, cli.threads, cli.no_compile);
    if cli.mapping {
        idl::transparency::install_two_level_mapping(&mut engine)
            .map_err(|e| format!("cannot install mapping: {e}"))?;
    }
    Ok(Box::new(engine))
}

/// `(label, text)` pairs from scripts and `-e` statements, in order.
fn gather_sources(cli: &Cli) -> Result<Vec<(String, String)>, String> {
    let mut sources = Vec::new();
    for script in &cli.scripts {
        let text = std::fs::read_to_string(script)
            .map_err(|e| format!("cannot read {}: {e}", script.display()))?;
        sources.push((script.display().to_string(), text));
    }
    for (i, stmt) in cli.inline.iter().enumerate() {
        sources.push((format!("-e #{}", i + 1), stmt.clone()));
    }
    Ok(sources)
}

fn print_outcomes(outcomes: Vec<Outcome>) {
    for o in outcomes {
        match o {
            Outcome::Answers { .. } => println!("{o}"),
            other => println!("-- {other}"),
        }
    }
}

fn main() -> ExitCode {
    let (mode, cli) = match parse_args(std::env::args().skip(1)) {
        Ok(parsed) => parsed,
        Err(e) => {
            eprintln!("idl: {e}");
            return ExitCode::FAILURE;
        }
    };
    let result = match mode {
        Mode::Script => run_scripts(&cli),
        Mode::Serve => run_server(cli),
        Mode::Connect(addr) => run_client(&addr, &cli),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("idl: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run_scripts(cli: &Cli) -> Result<(), String> {
    let mut backend = build_backend(cli)?;
    let sources = gather_sources(cli)?;
    if sources.is_empty() && !cli.checkpoint {
        return Err("nothing to run (pass a script or -e; --help for usage)".into());
    }
    for (label, text) in &sources {
        if cli.explain {
            let plan = backend.explain(text).map_err(|e| format!("{label}: {e}"))?;
            print!("{plan}");
            continue;
        }
        if cli.analyze {
            let issues = backend.analyze(text).map_err(|e| format!("{label}: {e}"))?;
            if issues.is_empty() {
                println!("{label}: no binding issues");
            }
            for i in issues {
                println!("{label}: warning: {i}");
            }
            continue;
        }
        let outcomes = if cli.sql {
            backend.execute_sql(text).map(|o| vec![o])
        } else {
            backend.execute(text)
        };
        print_outcomes(outcomes.map_err(|e| format!("{label}: {e}"))?);
    }
    if cli.checkpoint {
        let o = backend.checkpoint().map_err(|e| format!("checkpoint failed: {e}"))?;
        println!("-- {o}");
    }
    if cli.stats {
        print_stats(backend.stats());
        if let Some(d) = backend.durability_stats() {
            print_durability_stats(&d);
        }
    }
    if let Some(path) = &cli.save {
        backend.save_snapshot(path).map_err(|e| format!("cannot save snapshot: {e}"))?;
    }
    Ok(())
}

fn run_server(cli: Cli) -> Result<(), String> {
    if cli.sql || cli.analyze || cli.explain || cli.save.is_some() || cli.checkpoint {
        return Err(
            "serve takes engine flags only (no --sql/--analyze/--explain/--save/--checkpoint)"
                .into(),
        );
    }
    let backend = build_backend(&cli)?;
    let config = ServerConfig {
        addr: cli.addr.clone(),
        mode: cli.serve_mode,
        max_sessions: cli.max_sessions,
        max_frame: cli.max_frame,
        request_timeout: cli.request_timeout,
        allow_remote_shutdown: !cli.no_remote_shutdown,
        workers: cli.workers,
        session_queue: cli.session_queue,
        pending_queue: cli.pending_queue,
        group_commit: cli.group_commit,
        ..ServerConfig::default()
    };
    let handle = serve(backend, config).map_err(|e| format!("cannot start server: {e}"))?;
    println!("idl-server listening on {} ({} mode)", handle.local_addr(), cli.serve_mode);
    let stats = handle.wait();
    println!(
        "-- served {} requests over {} sessions ({} reads, {} writes, {} errors, p50 {}us, p99 {}us)",
        stats.requests,
        stats.sessions_opened,
        stats.reads,
        stats.writes,
        stats.errors,
        stats.p50_us,
        stats.p99_us,
    );
    Ok(())
}

fn run_client(addr: &str, cli: &Cli) -> Result<(), String> {
    let mut client = Client::connect(addr).map_err(|e| format!("cannot connect to {addr}: {e}"))?;
    if cli.ping {
        client.ping().map_err(|e| e.to_string())?;
        println!("-- pong");
    }
    for (label, text) in &gather_sources(cli)? {
        let outcomes = client.execute(text).map_err(|e| format!("{label}: {e}"))?;
        print_outcomes(outcomes);
    }
    if cli.refresh {
        let stats = client.refresh_views().map_err(|e| e.to_string())?;
        println!(
            "-- refreshed: {} iterations, {} rule evals, {} facts added",
            stats.iterations, stats.rule_evals, stats.facts_added
        );
    }
    if cli.dump_universe {
        println!("{}", client.dump_universe().map_err(|e| e.to_string())?);
    }
    if cli.stats {
        let reply = client.stats().map_err(|e| e.to_string())?;
        let s = &reply.server;
        println!(
            "-- server: {} requests over {} sessions ({} active), {} reads / {} writes, \
             {} errors, {} timeouts, p50 {}us, p99 {}us",
            s.requests,
            s.sessions_opened,
            s.sessions_active,
            s.reads,
            s.writes,
            s.errors,
            s.timeouts,
            s.p50_us,
            s.p99_us
        );
        println!(
            "-- server queues: {} load-shed, peak {} queued, {} reaped idle sessions, \
             {} group commits covering {} updates",
            s.load_shed,
            s.queue_depth_peak,
            s.sessions_reaped,
            s.group_commits,
            s.group_commit_records
        );
        println!(
            "-- session #{}: {} requests, {} errors, {}B in, {}B out",
            reply.session.session_id,
            reply.session.requests,
            reply.session.errors,
            reply.session.bytes_in,
            reply.session.bytes_out
        );
        let e = &reply.engine;
        println!(
            "-- engine: {} iterations, {} rule evals, {} facts added, plan cache {}h/{}m, \
             sharing hit-rate {:.1}%",
            e.iterations,
            e.rule_evals,
            e.facts_added,
            e.plan_cache_hits,
            e.plan_cache_misses,
            e.sharing_hit_rate * 100.0
        );
        println!(
            "-- engine semi-naive: {} delta evals, {} full evals, {} rules skipped, \
             {} schematic deltas, {} plan invalidations",
            e.delta_evals, e.full_evals, e.rules_skipped, e.schematic_deltas, e.plan_invalidations
        );
        if let Some(m) = &e.maintenance {
            println!(
                "-- engine maintenance: {} views maintained, {} delta rules run, \
                 {} schematic creates, {} schematic GCs, {} support entries",
                m.views_maintained,
                m.delta_rules_run,
                m.schematic_creates,
                m.schematic_gcs,
                m.support_entries
            );
        }
        if let Some(st) = &reply.storage {
            println!(
                "-- storage: {} backend, {} pages, {} full / {} delta checkpoints, chain {}",
                st.backend, st.pages, st.full_checkpoints, st.delta_checkpoints, st.chain_len
            );
            if let Some(p) = &st.pool {
                println!(
                    "-- buffer pool: {}/{} resident, {} hits / {} misses, {} evictions, \
                     {} dirty write-backs",
                    p.resident, p.capacity, p.hits, p.misses, p.evictions, p.dirty_writebacks
                );
            }
        }
    }
    if cli.shutdown {
        client.shutdown_server().map_err(|e| e.to_string())?;
        println!("-- server draining");
    }
    Ok(())
}

/// Prints the durability counters (the `--stats` output under
/// `--durable`, documented in LANGUAGE.md).
fn print_durability_stats(d: &DurabilityStats) {
    println!("-- durability stats");
    println!(
        "   log:            {} records appended ({}B, {} fsyncs), {} group commits covering {} records",
        d.records_appended, d.bytes_appended, d.log_syncs, d.group_commits, d.group_commit_records
    );
    println!(
        "   recovery:       {} records replayed, {} skipped, {}B torn tail truncated",
        d.records_recovered, d.records_skipped, d.torn_bytes_truncated
    );
    println!(
        "   checkpoints:    {} full, {} delta ({}B written, chain length {}, codec {:?})",
        d.full_checkpoints, d.delta_checkpoints, d.snapshot_bytes_written, d.chain_len, d.codec
    );
    match &d.pool {
        Some(p) => {
            println!("   storage:        paged, {} pages in the page file", d.storage_pages);
            let total = p.hits + p.misses;
            let rate = if total == 0 { 0.0 } else { p.hits as f64 / total as f64 * 100.0 };
            println!(
                "   buffer pool:    {}/{} pages resident, {} hits / {} misses ({rate:.1}% hit rate)",
                p.resident, p.capacity, p.hits, p.misses
            );
            println!(
                "   buffer pool:    {} evictions, {} dirty write-backs",
                p.evictions, p.dirty_writebacks
            );
        }
        None => println!("   storage:        mem (snapshot + delta chain; no buffer pool)"),
    }
}

/// Prints the last view-materialisation statistics (the `--stats` output
/// documented in LANGUAGE.md).
fn print_stats(stats: &idl::FixpointStats) {
    println!("-- fixpoint stats (last view materialisation)");
    println!("   iterations:     {}", stats.iterations);
    println!("   rule evals:     {}", stats.rule_evals);
    println!("   facts added:    {}", stats.facts_added);
    println!(
        "   semi-naive:     {} delta evals, {} full evals, {} rules skipped",
        stats.delta_evals, stats.full_evals, stats.rules_skipped
    );
    println!(
        "   schematic:      {} new relations, {} plan invalidations",
        stats.schematic_deltas, stats.plan_invalidations
    );
    println!(
        "   plans compiled: {} (plan cache: {} hits, {} misses)",
        stats.plans_compiled, stats.plan_cache_hits, stats.plan_cache_misses
    );
    let m = &stats.maintenance;
    println!(
        "   maintenance:    {} views maintained, {} delta rules run, \
         {} schematic creates, {} schematic GCs, {} support entries",
        m.views_maintained,
        m.delta_rules_run,
        m.schematic_creates,
        m.schematic_gcs,
        m.support_entries
    );
    for (i, s) in stats.strata.iter().enumerate() {
        println!(
            "   stratum #{i}: rules={} iterations={} workers={} evals/worker={:?} \
             skipped={} delta={} wall={:?}",
            s.rules,
            s.iterations,
            s.workers,
            s.rule_evals_per_worker,
            s.rules_skipped,
            s.delta_evals,
            s.wall
        );
    }
    let sh = &stats.sharing;
    println!(
        "   sharing: clones={} (tuple {}, set {}) cow-breaks={} ptr-eq-hits={} deep-clones={} hit-rate={:.1}%",
        sh.cheap_clones(),
        sh.tuple_clones,
        sh.set_clones,
        sh.cow_breaks,
        sh.ptr_eq_hits,
        sh.deep_clones,
        stats.sharing_hit_rate() * 100.0
    );
}
