//! The `idl-server` wire protocol: length-prefixed, CRC-32C-checksummed
//! frames carrying JSON-serialized request/response pairs.
//!
//! The framing reuses the discipline proven by the durable operation log
//! (`idl_storage::oplog`): every frame is
//!
//! ```text
//! [len: u32 LE] [crc32c(payload): u32 LE] [payload: len bytes]
//! ```
//!
//! where the payload is the UTF-8 JSON encoding of one [`WireRequest`]
//! or [`WireResponse`] (externally tagged). A connection opens with an
//! 8-byte magic exchange so either side can reject a non-protocol peer
//! before parsing anything: the client writes [`MAGIC`] (v1, JSON-only)
//! or [`MAGIC_V2`] (codec-aware), the server echoes the negotiated magic
//! and greets with one frame — [`WireResponse::Pong`] for v1 peers
//! (byte-identical to pre-codec releases), [`WireResponse::Hello`]
//! advertising the supported codecs for v2 peers, or an [`E_BUSY`] error
//! at the session cap — so admission is decided at connect time.
//!
//! On a v2 session the reply to [`WireRequest::DumpUniverse`] is a
//! *binary* frame: one [`BINARY_UNIVERSE_MARKER`] byte followed by an
//! `idl_storage::codec` value blob. JSON text never begins with NUL, so
//! the marker disambiguates without out-of-band state; every other
//! response stays JSON.
//!
//! Errors travel as [`WireResponse::Error`] carrying the engine's stable
//! machine-readable code (`E-PARSE`, `E-POISONED`, …; see
//! [`idl::EngineError::code`]) or one of the server-level codes below
//! (`E-FRAME`, `E-TOO-LARGE`, `E-TIMEOUT`, `E-BUSY`, `E-PROTO`).

use idl::{AnswerSet, DurabilityStats, FixpointStats, Outcome};
use idl_storage::crc::crc32c;
use serde::{Deserialize, Serialize};
use std::io::{self, Read, Write};

/// Handshake magic written by both peers on connect ("IDL net v1").
pub const MAGIC: &[u8; 8] = b"IDLNET01";

/// Handshake magic of codec-aware clients ("IDL net v2"). A server
/// answering it echoes `MAGIC_V2` and greets with
/// [`WireResponse::Hello`]; the session's `DumpUniverse` replies then
/// carry binary payloads.
pub const MAGIC_V2: &[u8; 8] = b"IDLNET02";

/// First payload byte of a binary `DumpUniverse` reply frame. JSON
/// responses are UTF-8 text and can never begin with NUL.
pub const BINARY_UNIVERSE_MARKER: u8 = 0x00;

/// Default cap on a single frame's payload (4 MiB).
pub const DEFAULT_MAX_FRAME: u32 = 4 * 1024 * 1024;

/// Bytes of framing overhead per frame (length + checksum).
pub const FRAME_HEADER: usize = 8;

/// Server-level error code: frame failed its CRC check.
pub const E_FRAME: &str = "E-FRAME";
/// Server-level error code: frame exceeds the negotiated size cap.
pub const E_TOO_LARGE: &str = "E-TOO-LARGE";
/// Server-level error code: request or writer-lock deadline exceeded.
pub const E_TIMEOUT: &str = "E-TIMEOUT";
/// Server-level error code: session limit reached.
pub const E_BUSY: &str = "E-BUSY";
/// Server-level error code: payload was not a valid protocol message.
pub const E_PROTO: &str = "E-PROTO";
/// Server-level error code: server is draining and refuses new work.
pub const E_SHUTDOWN: &str = "E-SHUTDOWN";
/// Server-level error code: the request was load-shed at the global
/// pending-queue cap (event mode admission control); retry later.
pub const E_OVERLOAD: &str = "E-OVERLOAD";

/// One client request frame.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum WireRequest {
    /// Liveness probe; answered with [`WireResponse::Pong`].
    Ping,
    /// Execute a multi-statement source text through the single writer.
    Execute {
        /// IDL source text (statements separated by `;`).
        src: String,
    },
    /// Evaluate one pure-query request against the published snapshot
    /// (never takes the writer lock; proceeds during view refreshes).
    Query {
        /// IDL source text of exactly one request.
        src: String,
    },
    /// Execute exactly one (usually mutating) request through the writer.
    Update {
        /// IDL source text of exactly one request.
        src: String,
    },
    /// Re-derive all views and republish the read snapshot.
    RefreshViews,
    /// Server, session and engine counters.
    Stats,
    /// The universe as canonical JSON, read from the published snapshot.
    DumpUniverse,
    /// Ask the server to drain and stop accepting connections.
    Shutdown,
}

/// One server response frame.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum WireResponse {
    /// Reply to [`WireRequest::Ping`].
    Pong,
    /// Greeting of a v2 ([`MAGIC_V2`]) session: the codecs this server
    /// can serve `DumpUniverse` replies in.
    Hello {
        /// Supported universe codecs, e.g. `["json", "binary"]`.
        codecs: Vec<String>,
    },
    /// Outcomes of an `Execute` or `Update` (one element for `Update`).
    Outcomes(Vec<Outcome>),
    /// Answers of a snapshot `Query`.
    Answers(AnswerSet),
    /// Fixpoint summary of an explicit `RefreshViews`.
    Refreshed(EngineStatsWire),
    /// Reply to [`WireRequest::Stats`]. Boxed to keep the response enum
    /// small; `Box<T>` serializes identically to `T`.
    Stats(Box<StatsReply>),
    /// Reply to [`WireRequest::DumpUniverse`].
    Universe {
        /// Canonical JSON of the snapshotted universe.
        json: String,
    },
    /// Acknowledgement of [`WireRequest::Shutdown`]; the connection
    /// closes after this frame.
    ShuttingDown,
    /// Any failure: the engine's stable error code plus a human message.
    Error {
        /// Machine-readable code (`E-PARSE`, `E-TIMEOUT`, …).
        code: String,
        /// Human-readable description.
        message: String,
    },
}

impl WireResponse {
    /// Builds an error response from an engine error.
    pub fn from_error(e: &idl::EngineError) -> WireResponse {
        WireResponse::Error { code: e.code().to_string(), message: e.to_string() }
    }

    /// Builds an error response from a server-level code.
    pub fn server_error(code: &str, message: impl Into<String>) -> WireResponse {
        WireResponse::Error { code: code.to_string(), message: message.into() }
    }
}

/// Wire-portable summary of the engine's last fixpoint run
/// ([`FixpointStats`] minus the process-local details).
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct EngineStatsWire {
    /// Fixpoint iterations across all strata.
    pub iterations: u64,
    /// Rule-body evaluations performed.
    pub rule_evals: u64,
    /// New facts derived.
    pub facts_added: u64,
    /// Rule evaluations skipped because no body predicate changed
    /// (semi-naive scheduling).
    #[serde(default)]
    pub rules_skipped: u64,
    /// Task evaluations that probed a delta shard instead of full inputs.
    #[serde(default)]
    pub delta_evals: u64,
    /// Task evaluations over full inputs.
    #[serde(default)]
    pub full_evals: u64,
    /// Data-dependent relations that materialised for the first time
    /// (schematic deltas).
    #[serde(default)]
    pub schematic_deltas: u64,
    /// Cached plans invalidated by those schematic deltas.
    #[serde(default)]
    pub plan_invalidations: u64,
    /// Rule bodies compiled to the plan IR.
    pub plans_compiled: u64,
    /// Rule plans served from the memoized cache.
    pub plan_cache_hits: u64,
    /// Rule plans the memoized cache had to compile.
    pub plan_cache_misses: u64,
    /// Fraction of O(1) handle clones whose sharing survived the run.
    pub sharing_hit_rate: f64,
    /// Write-path view-maintenance counters. Optional for wire
    /// compatibility: replies from servers predating maintenance decode
    /// as `None`, and older clients ignore the field entirely.
    #[serde(default)]
    pub maintenance: Option<MaintenanceStatsWire>,
}

/// Wire-portable counters of the engine's write-path view maintenance
/// (see `idl_eval::MaintenanceStats`).
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct MaintenanceStatsWire {
    /// Distinct views touched by the last maintenance run.
    pub views_maintained: u64,
    /// Delta-rule evaluations the run performed.
    pub delta_rules_run: u64,
    /// Relations incrementally materialised for the first time
    /// (schematic creates).
    pub schematic_creates: u64,
    /// Emptied data-dependent relations garbage-collected.
    pub schematic_gcs: u64,
    /// Support entries in the engine's maintained-view bookkeeping.
    pub support_entries: u64,
}

impl From<&FixpointStats> for EngineStatsWire {
    fn from(s: &FixpointStats) -> Self {
        let m = &s.maintenance;
        EngineStatsWire {
            iterations: s.iterations as u64,
            rule_evals: s.rule_evals as u64,
            facts_added: s.facts_added as u64,
            rules_skipped: s.rules_skipped as u64,
            delta_evals: s.delta_evals as u64,
            full_evals: s.full_evals as u64,
            schematic_deltas: s.schematic_deltas as u64,
            plan_invalidations: s.plan_invalidations as u64,
            plans_compiled: s.plans_compiled as u64,
            plan_cache_hits: s.plan_cache_hits as u64,
            plan_cache_misses: s.plan_cache_misses as u64,
            sharing_hit_rate: s.sharing_hit_rate(),
            maintenance: Some(MaintenanceStatsWire {
                views_maintained: m.views_maintained as u64,
                delta_rules_run: m.delta_rules_run as u64,
                schematic_creates: m.schematic_creates as u64,
                schematic_gcs: m.schematic_gcs as u64,
                support_entries: m.support_entries as u64,
            }),
        }
    }
}

/// Per-session counters, as reported to that session's own `Stats`.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct SessionStatsWire {
    /// Server-assigned session number (1-based, in accept order).
    pub session_id: u64,
    /// Requests this session has completed (including errors).
    pub requests: u64,
    /// Requests that returned an error frame.
    pub errors: u64,
    /// Payload + framing bytes received from this session.
    pub bytes_in: u64,
    /// Payload + framing bytes sent to this session.
    pub bytes_out: u64,
}

/// Reply to [`WireRequest::Stats`]: global, per-session and engine views.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct StatsReply {
    /// Server-global counters and latency percentiles.
    pub server: crate::stats::ServerStatsSnapshot,
    /// The requesting session's own counters.
    pub session: SessionStatsWire,
    /// Summary of the engine's most recent materialisation.
    pub engine: EngineStatsWire,
    /// Storage-backend telemetry of a durable backend. Optional for
    /// wire compatibility: replies from servers predating the paged
    /// storage engine (or without `--durable`) decode as `None`, and
    /// older clients ignore the field entirely.
    #[serde(default)]
    pub storage: Option<StorageStatsWire>,
}

/// Wire-portable storage-backend telemetry of a durable backend (see
/// `idl_storage::DurabilityStats` / `idl_storage::BufferPoolStats`).
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct StorageStatsWire {
    /// The configured backend, as its spec string (`mem` / `paged:N`).
    pub backend: String,
    /// Page-file size in pages (0 on the mem backend).
    pub pages: u64,
    /// Delta checkpoints written since open.
    pub delta_checkpoints: u64,
    /// Full checkpoints written since open.
    pub full_checkpoints: u64,
    /// Current delta-chain length (mem backend; 0 on paged).
    pub chain_len: u64,
    /// Buffer-pool counters (`None` on the mem backend — no page file
    /// to cache).
    #[serde(default)]
    pub pool: Option<BufferPoolStatsWire>,
}

/// Wire-portable buffer-pool counters (see `idl_storage::BufferPoolStats`).
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct BufferPoolStatsWire {
    /// Page requests served from a resident frame.
    pub hits: u64,
    /// Page requests that had to read the page file.
    pub misses: u64,
    /// Frames evicted to make room.
    pub evictions: u64,
    /// Dirty frames written back to the page file at eviction time.
    pub dirty_writebacks: u64,
    /// Configured capacity, in pages.
    pub capacity: u64,
    /// Frames currently resident.
    pub resident: u64,
}

impl StorageStatsWire {
    /// Summarises a durable backend's counters for the wire (the
    /// `backend` spec string comes from the caller, which knows the
    /// configured [`idl::StorageSpec`]).
    pub fn from_stats(backend: String, d: &DurabilityStats) -> Self {
        StorageStatsWire {
            backend,
            pages: d.storage_pages,
            delta_checkpoints: d.delta_checkpoints,
            full_checkpoints: d.full_checkpoints,
            chain_len: d.chain_len,
            pool: d.pool.map(|p| BufferPoolStatsWire {
                hits: p.hits,
                misses: p.misses,
                evictions: p.evictions,
                dirty_writebacks: p.dirty_writebacks,
                capacity: p.capacity,
                resident: p.resident,
            }),
        }
    }
}

/// Why a frame could not be read or written.
#[derive(Debug)]
pub enum FrameError {
    /// Underlying socket error (includes EOF mid-frame).
    Io(io::Error),
    /// Clean EOF at a frame boundary: the peer hung up.
    Closed,
    /// Declared payload length exceeds the size cap.
    TooLarge {
        /// Length the header declared.
        declared: u32,
        /// The enforced cap.
        max: u32,
    },
    /// Payload failed its CRC-32C check.
    BadCrc {
        /// Checksum the header declared.
        want: u32,
        /// Checksum of the bytes actually read.
        got: u32,
    },
    /// The `on_wait` callback aborted the read (idle deadline, drain).
    Aborted(&'static str),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Io(e) => write!(f, "socket error: {e}"),
            FrameError::Closed => write!(f, "connection closed"),
            FrameError::TooLarge { declared, max } => {
                write!(f, "frame of {declared} bytes exceeds the {max}-byte cap")
            }
            FrameError::BadCrc { want, got } => {
                write!(f, "frame checksum mismatch (header {want:#010x}, payload {got:#010x})")
            }
            FrameError::Aborted(why) => write!(f, "read aborted: {why}"),
        }
    }
}

impl std::error::Error for FrameError {}

impl From<io::Error> for FrameError {
    fn from(e: io::Error) -> Self {
        FrameError::Io(e)
    }
}

/// Writes one frame (header + payload) and flushes.
///
/// Enforces `max_frame` locally so an oversized payload fails fast
/// instead of being rejected by the peer.
pub fn write_frame(w: &mut impl Write, payload: &[u8], max_frame: u32) -> Result<(), FrameError> {
    if payload.len() as u64 > max_frame as u64 {
        return Err(FrameError::TooLarge { declared: payload.len() as u32, max: max_frame });
    }
    let mut head = [0u8; FRAME_HEADER];
    head[..4].copy_from_slice(&(payload.len() as u32).to_le_bytes());
    head[4..].copy_from_slice(&crc32c(payload).to_le_bytes());
    w.write_all(&head)?;
    w.write_all(payload)?;
    w.flush()?;
    Ok(())
}

/// Reads one frame, verifying length cap and checksum.
///
/// `on_wait(mid_frame)` runs whenever the socket read times out
/// (sockets are given short read timeouts so sessions stay responsive
/// to drain); returning `Some(reason)` aborts with
/// [`FrameError::Aborted`]. Pass `|_| None` for a plain blocking read.
pub fn read_frame(
    r: &mut impl Read,
    max_frame: u32,
    on_wait: &mut dyn FnMut(bool) -> Option<&'static str>,
) -> Result<Vec<u8>, FrameError> {
    let mut head = [0u8; FRAME_HEADER];
    read_exact_retry(r, &mut head, false, on_wait)?;
    let declared = u32::from_le_bytes(head[..4].try_into().unwrap());
    let want = u32::from_le_bytes(head[4..].try_into().unwrap());
    if declared > max_frame {
        return Err(FrameError::TooLarge { declared, max: max_frame });
    }
    let mut payload = vec![0u8; declared as usize];
    read_exact_retry(r, &mut payload, true, on_wait)?;
    let got = crc32c(&payload);
    if got != want {
        return Err(FrameError::BadCrc { want, got });
    }
    Ok(payload)
}

/// `read_exact` that survives read-timeout ticks: on `WouldBlock` /
/// `TimedOut` it consults `on_wait` and resumes where it left off, so a
/// frame trickling in across several ticks is reassembled correctly.
pub(crate) fn read_exact_retry(
    r: &mut impl Read,
    buf: &mut [u8],
    mid_frame: bool,
    on_wait: &mut dyn FnMut(bool) -> Option<&'static str>,
) -> Result<(), FrameError> {
    let mut filled = 0;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) => {
                return if !mid_frame && filled == 0 {
                    Err(FrameError::Closed)
                } else {
                    Err(FrameError::Io(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        "peer closed mid-frame",
                    )))
                };
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                if let Some(why) = on_wait(mid_frame || filled > 0) {
                    return Err(FrameError::Aborted(why));
                }
            }
            Err(e) => return Err(FrameError::Io(e)),
        }
    }
    Ok(())
}

/// Serializes a message and writes it as one frame.
pub fn send<T: Serialize>(
    w: &mut impl Write,
    msg: &T,
    max_frame: u32,
) -> Result<usize, FrameError> {
    let json = serde_json::to_string(msg)
        .map_err(|e| FrameError::Io(io::Error::new(io::ErrorKind::InvalidData, e.to_string())))?;
    write_frame(w, json.as_bytes(), max_frame)?;
    Ok(FRAME_HEADER + json.len())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn no_wait(_: bool) -> Option<&'static str> {
        None
    }

    #[test]
    fn frame_roundtrip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello frames", 64).unwrap();
        assert_eq!(buf.len(), FRAME_HEADER + 12);
        let got = read_frame(&mut &buf[..], 64, &mut no_wait).unwrap();
        assert_eq!(got, b"hello frames");
        // a second read at the boundary reports a clean close
        let empty: &[u8] = &[];
        assert!(matches!(read_frame(&mut &empty[..], 64, &mut no_wait), Err(FrameError::Closed)));
    }

    #[test]
    fn corrupt_and_oversized_frames_are_rejected() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"payload", 64).unwrap();
        let flip = buf.len() - 1;
        buf[flip] ^= 0x40;
        assert!(matches!(
            read_frame(&mut &buf[..], 64, &mut no_wait),
            Err(FrameError::BadCrc { .. })
        ));
        // oversized writes fail locally, oversized headers fail on read
        assert!(matches!(
            write_frame(&mut Vec::new(), &[0u8; 100], 64),
            Err(FrameError::TooLarge { .. })
        ));
        let mut big = Vec::new();
        write_frame(&mut big, &[7u8; 100], 1024).unwrap();
        assert!(matches!(
            read_frame(&mut &big[..], 64, &mut no_wait),
            Err(FrameError::TooLarge { declared: 100, max: 64 })
        ));
    }

    #[test]
    fn request_and_response_roundtrip_as_json() {
        let reqs = vec![
            WireRequest::Ping,
            WireRequest::Query { src: "?.db.r(.a=X)".into() },
            WireRequest::Update { src: "?.db.r+(.a=1)".into() },
            WireRequest::RefreshViews,
            WireRequest::Stats,
            WireRequest::DumpUniverse,
            WireRequest::Shutdown,
        ];
        for req in reqs {
            let json = serde_json::to_string(&req).unwrap();
            let back: WireRequest = serde_json::from_str(&json).unwrap();
            assert_eq!(back, req, "{json}");
        }
        let resp = WireResponse::server_error(E_TIMEOUT, "request deadline exceeded");
        let back: WireResponse =
            serde_json::from_str(&serde_json::to_string(&resp).unwrap()).unwrap();
        assert_eq!(back, resp);
    }

    #[test]
    fn engine_stats_without_maintenance_field_still_parse() {
        // Pin wire compatibility: a stats payload from a build predating
        // write-path maintenance (no `maintenance` key at all) must
        // decode, with the new field reading as None.
        let old = r#"{"iterations":3,"rule_evals":7,"facts_added":11,
            "rules_skipped":0,"delta_evals":2,"full_evals":5,
            "schematic_deltas":1,"plan_invalidations":0,
            "plans_compiled":4,"plan_cache_hits":9,"plan_cache_misses":4,
            "sharing_hit_rate":0.5}"#;
        let got: EngineStatsWire = serde_json::from_str(old).unwrap();
        assert_eq!(got.iterations, 3);
        assert_eq!(got.maintenance, None);

        // and the new shape round-trips
        let mut full = got.clone();
        full.maintenance = Some(MaintenanceStatsWire {
            views_maintained: 2,
            delta_rules_run: 6,
            schematic_creates: 1,
            schematic_gcs: 1,
            support_entries: 40,
        });
        let back: EngineStatsWire =
            serde_json::from_str(&serde_json::to_string(&full).unwrap()).unwrap();
        assert_eq!(back, full);
    }

    #[test]
    fn stats_reply_without_storage_field_still_parses() {
        // Pin wire compatibility: a stats payload from a server build
        // predating the paged storage engine carries no `storage` key at
        // all — it must decode, with the new field reading as None.
        let reply = StatsReply {
            server: Default::default(),
            session: SessionStatsWire { session_id: 3, requests: 5, ..Default::default() },
            engine: EngineStatsWire { iterations: 2, ..Default::default() },
            storage: None,
        };
        let json = serde_json::to_string(&reply).unwrap();
        let old = json.replace(",\"storage\":null", "");
        assert_ne!(old, json, "forged an old-format payload (no `storage` key)");
        let got: StatsReply = serde_json::from_str(&old).unwrap();
        assert_eq!(got, reply);

        // and the new shape — paged backend with pool counters — round-trips
        let full = StatsReply {
            storage: Some(StorageStatsWire {
                backend: "paged:64".into(),
                pages: 130,
                delta_checkpoints: 4,
                full_checkpoints: 1,
                chain_len: 0,
                pool: Some(BufferPoolStatsWire {
                    hits: 900,
                    misses: 77,
                    evictions: 13,
                    dirty_writebacks: 6,
                    capacity: 64,
                    resident: 64,
                }),
            }),
            ..reply
        };
        let back: StatsReply =
            serde_json::from_str(&serde_json::to_string(&full).unwrap()).unwrap();
        assert_eq!(back, full);
    }
}
