//! A blocking client for the `idl-server` wire protocol.
//!
//! One [`Client`] owns one TCP session; requests are strictly
//! request/response, so a client is cheap and `Send` but not shareable —
//! open one per thread (the server multiplexes sessions, not frames).

use crate::protocol::{
    self, EngineStatsWire, FrameError, StatsReply, WireRequest, WireResponse, MAGIC, MAGIC_V2,
};
use idl::{AnswerSet, EngineError, Outcome};
use idl_storage::codec;
use std::io::{Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// Why a client call failed.
#[derive(Debug)]
pub enum ClientError {
    /// Socket-level failure; the session is dead.
    Io(std::io::Error),
    /// Framing failure (checksum, size cap); the session is dead.
    Frame(FrameError),
    /// The server answered with an error frame. The session survives
    /// (unless the code is connection-fatal, e.g. `E-TOO-LARGE`).
    Server {
        /// Stable machine-readable code (`E-PARSE`, `E-TIMEOUT`, …).
        code: String,
        /// Human-readable description.
        message: String,
    },
    /// The server answered with an unexpected (but valid) response kind.
    Protocol(String),
}

impl ClientError {
    /// The stable error code, when the server reported one.
    pub fn code(&self) -> Option<&str> {
        match self {
            ClientError::Server { code, .. } => Some(code),
            _ => None,
        }
    }

    /// Converts a server-reported error into the engine's error type
    /// ([`EngineError::Remote`]), for callers programmed against the
    /// engine surface.
    pub fn into_engine_error(self) -> EngineError {
        match self {
            ClientError::Server { code, message } => EngineError::Remote { code, message },
            other => EngineError::Remote { code: "E-IO".into(), message: other.to_string() },
        }
    }
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "connection error: {e}"),
            ClientError::Frame(e) => write!(f, "framing error: {e}"),
            ClientError::Server { code, message } => write!(f, "{code}: {message}"),
            ClientError::Protocol(why) => write!(f, "protocol violation: {why}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl From<FrameError> for ClientError {
    fn from(e: FrameError) -> Self {
        match e {
            FrameError::Io(e) => ClientError::Io(e),
            other => ClientError::Frame(other),
        }
    }
}

/// A connected session speaking the `idl-server` protocol.
#[derive(Debug)]
pub struct Client {
    stream: TcpStream,
    max_frame: u32,
    /// Whether the server granted the v2 handshake: `DumpUniverse`
    /// replies arrive as compact binary frames, decoded locally.
    binary: bool,
}

impl Client {
    /// Connects with the v2 handshake, and reads the server's greeting
    /// frame (so a server at its session cap fails here, with `E-BUSY`,
    /// rather than on the first real call).
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Client, ClientError> {
        Self::connect_with(addr, protocol::DEFAULT_MAX_FRAME, None)
    }

    /// [`Client::connect`] with an explicit frame cap and optional
    /// per-call read deadline (`None` blocks indefinitely).
    pub fn connect_with(
        addr: impl ToSocketAddrs,
        max_frame: u32,
        read_timeout: Option<Duration>,
    ) -> Result<Client, ClientError> {
        Self::handshake(addr, max_frame, read_timeout, MAGIC_V2)
    }

    /// Connects with the legacy v1 handshake: everything — including
    /// `DumpUniverse` replies — travels as JSON, exactly as clients
    /// predating the binary codec behave.
    pub fn connect_json(addr: impl ToSocketAddrs) -> Result<Client, ClientError> {
        Self::connect_json_with(addr, protocol::DEFAULT_MAX_FRAME, None)
    }

    /// [`Client::connect_json`] with an explicit frame cap and optional
    /// per-call read deadline.
    pub fn connect_json_with(
        addr: impl ToSocketAddrs,
        max_frame: u32,
        read_timeout: Option<Duration>,
    ) -> Result<Client, ClientError> {
        Self::handshake(addr, max_frame, read_timeout, MAGIC)
    }

    fn handshake(
        addr: impl ToSocketAddrs,
        max_frame: u32,
        read_timeout: Option<Duration>,
        ours: &[u8; 8],
    ) -> Result<Client, ClientError> {
        let mut stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        stream.set_read_timeout(read_timeout)?;
        stream.write_all(ours)?;
        let mut magic = [0u8; MAGIC.len()];
        stream.read_exact(&mut magic)?;
        // A server past its session cap greets every peer with the v1
        // magic and an E-BUSY frame, so either magic is acceptable; the
        // session is binary only when the server echoed MAGIC_V2.
        if &magic != MAGIC && &magic != MAGIC_V2 {
            return Err(ClientError::Protocol(format!(
                "peer is not an idl-server (bad magic {magic:02x?})"
            )));
        }
        let mut client = Client { stream, max_frame, binary: &magic == MAGIC_V2 };
        match client.read_response()? {
            WireResponse::Pong | WireResponse::Hello { .. } => Ok(client),
            WireResponse::Error { code, message } => Err(ClientError::Server { code, message }),
            other => Err(unexpected("a greeting", &other)),
        }
    }

    /// Whether the server granted the v2 (binary-universe) handshake.
    pub fn is_binary(&self) -> bool {
        self.binary
    }

    fn read_response(&mut self) -> Result<WireResponse, ClientError> {
        let payload = protocol::read_frame(&mut self.stream, self.max_frame, &mut |_| None)?;
        if let [protocol::BINARY_UNIVERSE_MARKER, blob @ ..] = payload.as_slice() {
            // A binary universe frame: decode the codec blob, then
            // re-serialize to the same canonical JSON the server's JSON
            // path produces, so `dump_universe` returns identical bytes
            // on both handshakes.
            let value = codec::decode_value(blob)
                .map_err(|e| ClientError::Protocol(format!("corrupt binary universe: {e}")))?;
            let json = serde_json::to_string(&value)
                .map_err(|e| ClientError::Protocol(format!("unserializable universe: {e}")))?;
            return Ok(WireResponse::Universe { json });
        }
        let text = std::str::from_utf8(&payload)
            .map_err(|e| ClientError::Protocol(format!("non-UTF-8 response: {e}")))?;
        serde_json::from_str(text)
            .map_err(|e| ClientError::Protocol(format!("unreadable response: {e}")))
    }

    /// One request/response round trip.
    pub fn call(&mut self, req: &WireRequest) -> Result<WireResponse, ClientError> {
        protocol::send(&mut self.stream, req, self.max_frame)?;
        match self.read_response()? {
            WireResponse::Error { code, message } => Err(ClientError::Server { code, message }),
            other => Ok(other),
        }
    }

    /// Liveness probe.
    pub fn ping(&mut self) -> Result<(), ClientError> {
        match self.call(&WireRequest::Ping)? {
            WireResponse::Pong => Ok(()),
            other => Err(unexpected("Pong", &other)),
        }
    }

    /// Evaluates one pure-query request against the server's published
    /// snapshot (never blocks behind the writer).
    pub fn query(&mut self, src: &str) -> Result<AnswerSet, ClientError> {
        match self.call(&WireRequest::Query { src: src.into() })? {
            WireResponse::Answers(a) => Ok(a),
            other => Err(unexpected("Answers", &other)),
        }
    }

    /// Executes a multi-statement source through the single writer.
    pub fn execute(&mut self, src: &str) -> Result<Vec<Outcome>, ClientError> {
        match self.call(&WireRequest::Execute { src: src.into() })? {
            WireResponse::Outcomes(o) => Ok(o),
            other => Err(unexpected("Outcomes", &other)),
        }
    }

    /// Executes exactly one (usually mutating) request.
    pub fn update(&mut self, src: &str) -> Result<Outcome, ClientError> {
        match self.call(&WireRequest::Update { src: src.into() })? {
            WireResponse::Outcomes(mut o) if o.len() == 1 => Ok(o.pop().unwrap()),
            other => Err(unexpected("one Outcome", &other)),
        }
    }

    /// Forces a view refresh and snapshot republication.
    pub fn refresh_views(&mut self) -> Result<EngineStatsWire, ClientError> {
        match self.call(&WireRequest::RefreshViews)? {
            WireResponse::Refreshed(s) => Ok(s),
            other => Err(unexpected("Refreshed", &other)),
        }
    }

    /// Server, session and engine counters.
    pub fn stats(&mut self) -> Result<StatsReply, ClientError> {
        match self.call(&WireRequest::Stats)? {
            WireResponse::Stats(s) => Ok(*s),
            other => Err(unexpected("Stats", &other)),
        }
    }

    /// The universe as canonical JSON, from the published snapshot.
    ///
    /// On a v2 session the reply travels as a compact binary frame and
    /// is decoded locally; the returned JSON is byte-identical to what
    /// a v1 (JSON-only) session receives.
    pub fn dump_universe(&mut self) -> Result<String, ClientError> {
        match self.call(&WireRequest::DumpUniverse)? {
            WireResponse::Universe { json } => Ok(json),
            other => Err(unexpected("Universe", &other)),
        }
    }

    /// Asks the server to drain and stop.
    pub fn shutdown_server(&mut self) -> Result<(), ClientError> {
        match self.call(&WireRequest::Shutdown)? {
            WireResponse::ShuttingDown => Ok(()),
            other => Err(unexpected("ShuttingDown", &other)),
        }
    }

    /// Sends one request frame without waiting for its reply, pipelining
    /// it behind any earlier unanswered requests. The server answers in
    /// request order; collect replies with [`Client::read_reply`].
    pub fn send_request(&mut self, req: &WireRequest) -> Result<(), ClientError> {
        protocol::send(&mut self.stream, req, self.max_frame)?;
        Ok(())
    }

    /// Reads the next in-order reply frame. Unlike [`Client::call`],
    /// error frames are returned as [`WireResponse::Error`] values, so a
    /// pipelined caller can pair every reply with its request.
    pub fn read_reply(&mut self) -> Result<WireResponse, ClientError> {
        self.read_response()
    }

    /// The underlying stream (escape hatch for tests and tooling).
    pub fn stream(&mut self) -> &mut TcpStream {
        &mut self.stream
    }
}

fn unexpected(wanted: &str, got: &WireResponse) -> ClientError {
    ClientError::Protocol(format!("expected {wanted}, got {got:?}"))
}
