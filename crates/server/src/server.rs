//! The threaded TCP server: accept loop, session threads, and the
//! published-snapshot concurrency discipline.
//!
//! # Concurrency model
//!
//! One engine, many sessions:
//!
//! * **Reads are snapshot-isolated and lock-free against the writer.**
//!   The server keeps a *published* [`EngineSnapshot`] behind an
//!   [`RwLock`]`<`[`Arc`]`<…>>`. A `Query` briefly clones the `Arc` and
//!   evaluates against its own handle — outside every lock — so read
//!   throughput scales with sessions and a slow view refresh never
//!   stalls a read. Snapshots are O(1) copy-on-write handle clones of
//!   the universe, so publishing is cheap no matter the data size.
//! * **Writes serialize through a single writer.** `Execute`, `Update`
//!   and `RefreshViews` take the writer mutex (with a deadline — a
//!   stuck writer yields `E-TIMEOUT` frames, not hung sessions), apply
//!   the mutation (through the durability layer when the backend is a
//!   `DurableEngine`), refresh views, and publish a fresh snapshot.
//!
//! A session that sends a corrupt or oversized frame is closed with an
//! error frame; other sessions — and the engine — are unaffected. A
//! poisoned durable backend keeps answering: reads serve the last
//! published (fully acknowledged) snapshot and writes return clean
//! `E-POISONED` error frames.

use crate::protocol::{
    self, EngineStatsWire, FrameError, SessionStatsWire, StatsReply, StorageStatsWire, WireRequest,
    WireResponse, E_BUSY, E_FRAME, E_PROTO, E_TIMEOUT, E_TOO_LARGE, MAGIC, MAGIC_V2,
};
use crate::stats::{ServerStats, ServerStatsSnapshot};
use idl::{Backend, EngineError, EngineSnapshot, PlanCache, Value};
use idl_storage::codec;
use std::io::Write;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Mutex, MutexGuard, RwLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// How often a blocked socket read wakes to check drain/idle deadlines.
const POLL: Duration = Duration::from_millis(25);

/// Socket write deadline (a peer that stops draining its receive buffer
/// cannot pin a session thread forever).
pub(crate) const WRITE_TIMEOUT: Duration = Duration::from_secs(30);

/// Abort reasons surfaced through [`FrameError::Aborted`].
const ABORT_DRAIN: &str = "server draining";
const ABORT_IDLE: &str = "idle timeout";

/// Which serving architecture [`serve`] runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ServeMode {
    /// One blocking thread per session (the PR 5 reference mode): simple,
    /// byte-identical semantics, a thread + stack per idle client.
    Threaded,
    /// A readiness-driven event loop (reactor + worker pool): thousands
    /// of idle sessions cost one poller, requests pipeline per session,
    /// and concurrent updates coalesce into group commits.
    Event,
}

impl Default for ServeMode {
    /// Event unless `IDL_SERVE_THREADED=1` selects the reference mode.
    fn default() -> Self {
        match std::env::var("IDL_SERVE_THREADED") {
            Ok(v) if v == "1" => ServeMode::Threaded,
            _ => ServeMode::Event,
        }
    }
}

impl std::str::FromStr for ServeMode {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "threaded" => Ok(ServeMode::Threaded),
            "event" => Ok(ServeMode::Event),
            other => Err(format!("unknown serve mode '{other}' (expected threaded|event)")),
        }
    }
}

impl std::fmt::Display for ServeMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            ServeMode::Threaded => "threaded",
            ServeMode::Event => "event",
        })
    }
}

/// Tuning knobs for [`serve`].
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Listen address; use port 0 for an ephemeral port.
    pub addr: String,
    /// Serving architecture (defaults to [`ServeMode::Event`];
    /// `IDL_SERVE_THREADED=1` flips the default to the reference mode).
    pub mode: ServeMode,
    /// Concurrent-session cap; further connects get `E-BUSY`.
    pub max_sessions: usize,
    /// Per-frame payload cap in bytes, both directions.
    pub max_frame: u32,
    /// Close a session after this long without a request.
    pub idle_timeout: Duration,
    /// Deadline for one request (snapshot evaluation, or waiting for the
    /// writer lock). Zero disables the deadline.
    pub request_timeout: Duration,
    /// How long [`ServerHandle::shutdown`] waits for sessions to finish.
    pub drain_timeout: Duration,
    /// Whether a client `Shutdown` frame may stop the server.
    pub allow_remote_shutdown: bool,
    /// Event mode: read-worker threads executing snapshot queries
    /// (0 = one per available core, at least 2).
    pub workers: usize,
    /// Event mode: pipelined requests one session may have outstanding
    /// before the server stops reading its socket (TCP backpressure).
    pub session_queue: usize,
    /// Event mode: queued-request cap across all sessions; past it new
    /// requests are answered with in-order `E-OVERLOAD` load-shed frames.
    pub pending_queue: usize,
    /// Event mode: most updates coalesced into one group commit (one
    /// log append + one fsync acknowledging the whole batch).
    pub group_commit: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            mode: ServeMode::default(),
            max_sessions: 64,
            max_frame: protocol::DEFAULT_MAX_FRAME,
            idle_timeout: Duration::from_secs(300),
            request_timeout: Duration::from_secs(30),
            drain_timeout: Duration::from_secs(5),
            allow_remote_shutdown: true,
            workers: 0,
            session_queue: 32,
            pending_queue: 1024,
            group_commit: 64,
        }
    }
}

/// Why the server could not start (or a handle operation failed).
#[derive(Debug)]
pub enum ServerError {
    /// Socket-level failure (bind, accept).
    Io(std::io::Error),
    /// The backend could not produce its initial snapshot.
    Engine(EngineError),
}

impl std::fmt::Display for ServerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServerError::Io(e) => write!(f, "server I/O error: {e}"),
            ServerError::Engine(e) => write!(f, "engine error: {e}"),
        }
    }
}

impl std::error::Error for ServerError {}

impl From<std::io::Error> for ServerError {
    fn from(e: std::io::Error) -> Self {
        ServerError::Io(e)
    }
}

impl From<EngineError> for ServerError {
    fn from(e: EngineError) -> Self {
        ServerError::Engine(e)
    }
}

/// State shared between the accept loop, session threads and the handle.
pub(crate) struct Shared {
    pub(crate) cfg: ServerConfig,
    pub(crate) local_addr: SocketAddr,
    /// The single writer. Every mutation goes through here.
    pub(crate) writer: Mutex<Box<dyn Backend + Send>>,
    /// The read snapshot sessions evaluate against; swapped (never
    /// mutated in place) by the writer after each acknowledged change.
    pub(crate) published: RwLock<Arc<EngineSnapshot>>,
    /// Summary of the engine's last materialisation, captured at publish
    /// time so `Stats` never needs the writer lock.
    pub(crate) engine_stats: Mutex<EngineStatsWire>,
    /// Storage-backend telemetry of a durable backend (`None` without
    /// durability), captured at publish time like `engine_stats`.
    pub(crate) storage_stats: Mutex<Option<StorageStatsWire>>,
    /// Compiled plans shared by all snapshot reads (locked only around
    /// plan lookup, never during evaluation).
    pub(crate) plan_cache: Mutex<PlanCache>,
    pub(crate) stats: ServerStats,
    pub(crate) shutdown: AtomicBool,
}

impl Shared {
    fn plan_cache_counters(&self) -> (u64, u64) {
        let cache = self.plan_cache.lock().unwrap_or_else(|p| p.into_inner());
        (cache.hits(), cache.misses())
    }

    pub(crate) fn server_stats(&self) -> ServerStatsSnapshot {
        self.stats.snapshot(self.plan_cache_counters())
    }

    /// Swaps in a fresh snapshot + engine-stats summary from the writer.
    pub(crate) fn republish(&self, backend: &mut dyn Backend) -> Result<(), EngineError> {
        let snap = backend.snapshot()?;
        *self.engine_stats.lock().unwrap_or_else(|p| p.into_inner()) =
            EngineStatsWire::from(backend.stats());
        *self.storage_stats.lock().unwrap_or_else(|p| p.into_inner()) = storage_stats_wire(backend);
        *self.published.write().unwrap_or_else(|p| p.into_inner()) = Arc::new(snap);
        Ok(())
    }

    pub(crate) fn storage_stats(&self) -> Option<StorageStatsWire> {
        self.storage_stats.lock().unwrap_or_else(|p| p.into_inner()).clone()
    }

    pub(crate) fn published(&self) -> Arc<EngineSnapshot> {
        Arc::clone(&self.published.read().unwrap_or_else(|p| p.into_inner()))
    }

    /// Acquires the writer lock within the request deadline.
    pub(crate) fn lock_writer(&self) -> Option<MutexGuard<'_, Box<dyn Backend + Send>>> {
        if self.cfg.request_timeout.is_zero() {
            return Some(self.writer.lock().unwrap_or_else(|p| p.into_inner()));
        }
        let deadline = Instant::now() + self.cfg.request_timeout;
        loop {
            match self.writer.try_lock() {
                Ok(g) => return Some(g),
                Err(std::sync::TryLockError::Poisoned(p)) => return Some(p.into_inner()),
                Err(std::sync::TryLockError::WouldBlock) => {
                    if Instant::now() >= deadline {
                        return None;
                    }
                    std::thread::sleep(Duration::from_micros(500));
                }
            }
        }
    }

    pub(crate) fn begin_drain(&self) {
        if !self.shutdown.swap(true, Ordering::SeqCst) {
            // Wake the accept loop out of its blocking accept() (the
            // event reactor notices via its poll tick).
            let _ = TcpStream::connect(self.local_addr);
        }
    }
}

/// Snapshots a durable backend's storage telemetry for the `Stats`
/// frame (`None` without durability).
pub(crate) fn storage_stats_wire(backend: &dyn Backend) -> Option<StorageStatsWire> {
    let stats = backend.durability_stats()?;
    let spec = backend.storage_spec().unwrap_or_default();
    Some(StorageStatsWire::from_stats(spec.to_string(), &stats))
}

/// A running server. Dropping the handle initiates a drain; call
/// [`ServerHandle::shutdown`] for a synchronous drain with final stats.
pub struct ServerHandle {
    shared: Arc<Shared>,
    threads: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (with the ephemeral port resolved).
    pub fn local_addr(&self) -> SocketAddr {
        self.shared.local_addr
    }

    /// Point-in-time global counters.
    pub fn stats(&self) -> ServerStatsSnapshot {
        self.shared.server_stats()
    }

    /// Whether a drain has begun (locally or via a remote `Shutdown`).
    pub fn is_draining(&self) -> bool {
        self.shared.shutdown.load(Ordering::SeqCst)
    }

    /// Stops accepting connections, lets in-flight sessions finish
    /// (bounded by `drain_timeout`), and returns the final counters.
    pub fn shutdown(mut self) -> ServerStatsSnapshot {
        self.drain_and_join();
        self.shared.server_stats()
    }

    /// Blocks until a drain is initiated elsewhere (a remote `Shutdown`
    /// frame), then finishes it. Used by `idl serve`.
    pub fn wait(mut self) -> ServerStatsSnapshot {
        while !self.is_draining() {
            std::thread::sleep(Duration::from_millis(50));
        }
        self.drain_and_join();
        self.shared.server_stats()
    }

    fn drain_and_join(&mut self) {
        self.shared.begin_drain();
        for h in self.threads.drain(..) {
            let _ = h.join();
        }
        let deadline = Instant::now() + self.shared.cfg.drain_timeout;
        while self.shared.stats.sessions_active.load(Ordering::SeqCst) > 0
            && Instant::now() < deadline
        {
            std::thread::sleep(Duration::from_millis(2));
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.drain_and_join();
    }
}

/// Starts serving `backend` on `cfg.addr`, in the architecture
/// [`ServerConfig::mode`] selects.
///
/// Takes the initial snapshot (materialising views) before accepting
/// connections, so the first read never waits on the writer.
pub fn serve(
    mut backend: Box<dyn Backend + Send>,
    cfg: ServerConfig,
) -> Result<ServerHandle, ServerError> {
    let initial = backend.snapshot()?;
    let engine_stats = EngineStatsWire::from(backend.stats());
    let storage_stats = storage_stats_wire(backend.as_mut());
    let listener = TcpListener::bind(&cfg.addr)?;
    let local_addr = listener.local_addr()?;
    let mode = cfg.mode;
    let shared = Arc::new(Shared {
        cfg,
        local_addr,
        writer: Mutex::new(backend),
        published: RwLock::new(Arc::new(initial)),
        engine_stats: Mutex::new(engine_stats),
        storage_stats: Mutex::new(storage_stats),
        plan_cache: Mutex::new(PlanCache::new()),
        stats: ServerStats::default(),
        shutdown: AtomicBool::new(false),
    });
    let threads = match mode {
        #[cfg(unix)]
        ServeMode::Event => crate::event::spawn(listener, Arc::clone(&shared))?,
        #[cfg(not(unix))]
        ServeMode::Event => spawn_threaded(listener, Arc::clone(&shared))?,
        ServeMode::Threaded => spawn_threaded(listener, Arc::clone(&shared))?,
    };
    Ok(ServerHandle { shared, threads })
}

fn spawn_threaded(
    listener: TcpListener,
    shared: Arc<Shared>,
) -> Result<Vec<JoinHandle<()>>, ServerError> {
    let accept = std::thread::Builder::new()
        .name("idl-accept".into())
        .spawn(move || accept_loop(listener, shared))?;
    Ok(vec![accept])
}

fn accept_loop(listener: TcpListener, shared: Arc<Shared>) {
    let mut session_seq = 0u64;
    for stream in listener.incoming() {
        if shared.shutdown.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        let active = shared.stats.sessions_active.load(Ordering::SeqCst);
        if active as usize >= shared.cfg.max_sessions {
            ServerStats::bump(&shared.stats.sessions_rejected, 1);
            reject_busy(stream, &shared);
            continue;
        }
        session_seq += 1;
        ServerStats::bump(&shared.stats.sessions_opened, 1);
        shared.stats.sessions_active.fetch_add(1, Ordering::SeqCst);
        let session_shared = Arc::clone(&shared);
        let id = session_seq;
        let spawned =
            std::thread::Builder::new().name(format!("idl-session-{id}")).spawn(move || {
                run_session(&session_shared, stream, id);
                session_shared.stats.sessions_active.fetch_sub(1, Ordering::SeqCst);
            });
        if spawned.is_err() {
            shared.stats.sessions_active.fetch_sub(1, Ordering::SeqCst);
        }
    }
}

/// Over-capacity connection: complete the handshake, explain, hang up.
pub(crate) fn reject_busy(mut stream: TcpStream, shared: &Shared) {
    stream.set_write_timeout(Some(WRITE_TIMEOUT)).ok();
    if stream.write_all(MAGIC).is_err() {
        return;
    }
    let resp = WireResponse::server_error(
        E_BUSY,
        format!("session limit ({}) reached", shared.cfg.max_sessions),
    );
    let _ = protocol::send(&mut stream, &resp, shared.cfg.max_frame);
}

/// Per-session mutable state (counters reported via `Stats`).
struct Session {
    id: u64,
    /// Whether the peer negotiated the v2 handshake (binary universes).
    binary: bool,
    requests: u64,
    errors: u64,
    bytes_in: u64,
    bytes_out: u64,
}

fn run_session(shared: &Arc<Shared>, mut stream: TcpStream, id: u64) {
    stream.set_nodelay(true).ok();
    stream.set_read_timeout(Some(POLL)).ok();
    stream.set_write_timeout(Some(WRITE_TIMEOUT)).ok();
    let last_activity = Instant::now();
    // Handshake: the peer must present its magic before anything else,
    // so the greeting can match the negotiated protocol version.
    let mut magic = [0u8; MAGIC.len()];
    {
        let mut on_wait = wait_fn(shared, &last_activity);
        if protocol::read_exact_retry(&mut stream, &mut magic, false, &mut on_wait).is_err() {
            return;
        }
    }
    let binary = match &magic {
        m if m == MAGIC => false,
        m if m == MAGIC_V2 => true,
        _ => return,
    };
    // Greeting: the echoed magic plus one frame, so connecting clients
    // learn synchronously whether they were admitted (the over-capacity
    // path greets with an E-BUSY error instead). v1 peers get the exact
    // pre-codec bytes; v2 peers get a Hello advertising the codecs.
    let (echo, greeting) = if binary { (MAGIC_V2, hello()) } else { (MAGIC, WireResponse::Pong) };
    if stream.write_all(echo).is_err()
        || protocol::send(&mut stream, &greeting, shared.cfg.max_frame).is_err()
    {
        return;
    }
    let mut last_activity = Instant::now();
    let mut sess = Session { id, binary, requests: 0, errors: 0, bytes_in: 0, bytes_out: 0 };
    loop {
        let frame = {
            let mut on_wait = wait_fn(shared, &last_activity);
            protocol::read_frame(&mut stream, shared.cfg.max_frame, &mut on_wait)
        };
        last_activity = Instant::now();
        let payload = match frame {
            Ok(p) => p,
            Err(FrameError::Closed) => break,
            Err(FrameError::Aborted(ABORT_DRAIN)) => {
                respond(&mut stream, &WireResponse::ShuttingDown, shared, &mut sess);
                break;
            }
            Err(FrameError::Aborted(_)) => {
                // idle deadline: close quietly, counted for the reaper
                ServerStats::bump(&shared.stats.sessions_reaped, 1);
                break;
            }
            Err(FrameError::TooLarge { declared, max }) => {
                ServerStats::bump(&shared.stats.frames_rejected, 1);
                let resp = WireResponse::server_error(
                    E_TOO_LARGE,
                    format!("frame of {declared} bytes exceeds the {max}-byte cap"),
                );
                respond(&mut stream, &resp, shared, &mut sess);
                break; // the oversized payload was never read; resync is impossible
            }
            Err(e @ FrameError::BadCrc { .. }) => {
                ServerStats::bump(&shared.stats.frames_rejected, 1);
                respond(
                    &mut stream,
                    &WireResponse::server_error(E_FRAME, e.to_string()),
                    shared,
                    &mut sess,
                );
                break;
            }
            Err(FrameError::Io(_)) => break,
        };
        sess.bytes_in += (protocol::FRAME_HEADER + payload.len()) as u64;
        ServerStats::bump(&shared.stats.bytes_in, (protocol::FRAME_HEADER + payload.len()) as u64);
        let req = match std::str::from_utf8(&payload)
            .map_err(|e| e.to_string())
            .and_then(|s| serde_json::from_str::<WireRequest>(s).map_err(|e| e.to_string()))
        {
            Ok(req) => req,
            Err(why) => {
                ServerStats::bump(&shared.stats.frames_rejected, 1);
                let resp =
                    WireResponse::server_error(E_PROTO, format!("unreadable request: {why}"));
                respond(&mut stream, &resp, shared, &mut sess);
                continue; // the frame boundary is intact; the session survives
            }
        };
        let is_shutdown = matches!(req, WireRequest::Shutdown);
        let started = Instant::now();
        let reply = dispatch(shared, req, &sess);
        shared.stats.latency.record(started.elapsed().as_micros() as u64);
        sess.requests += 1;
        ServerStats::bump(&shared.stats.requests, 1);
        respond_reply(&mut stream, &reply, shared, &mut sess);
        if is_shutdown && matches!(reply, Reply::Wire(WireResponse::ShuttingDown)) {
            shared.begin_drain();
            break;
        }
    }
}

/// Builds the read-wait callback checking drain and idle deadlines.
fn wait_fn<'a>(
    shared: &'a Arc<Shared>,
    last_activity: &'a Instant,
) -> impl FnMut(bool) -> Option<&'static str> + 'a {
    move |_mid_frame| {
        if shared.shutdown.load(Ordering::SeqCst) {
            Some(ABORT_DRAIN)
        } else if last_activity.elapsed() > shared.cfg.idle_timeout {
            Some(ABORT_IDLE)
        } else {
            None
        }
    }
}

/// The v2 greeting frame: which universe codecs this server speaks.
pub(crate) fn hello() -> WireResponse {
    WireResponse::Hello { codecs: vec!["json".into(), "binary".into()] }
}

/// An answered request on its way to the session's write site.
///
/// `DumpUniverse` does not serialize at dispatch time: the reply carries
/// the snapshot's universe as an O(1) copy-on-write handle, and the
/// write site encodes it in the codec *that session* negotiated.
// One short-lived Reply per answered request; boxing the response to
// even out the variant sizes would buy nothing but an allocation.
#[allow(clippy::large_enum_variant)]
pub(crate) enum Reply {
    /// Any ordinary response, serialized as one JSON frame.
    Wire(WireResponse),
    /// A `DumpUniverse` answer awaiting per-session encoding.
    Universe(Value),
}

/// Encodes a universe reply for one session's negotiated codec,
/// returning the ready frame payload or the error frame to degrade to.
///
/// Binary (v2) sessions get a [`protocol::BINARY_UNIVERSE_MARKER`] byte
/// followed by the `idl_storage::codec` value blob; JSON sessions get
/// the classic [`WireResponse::Universe`] frame. An encoding that
/// exceeds the frame cap degrades to `E-TOO-LARGE` — binary sessions
/// retry the compact codec before degrading, and the JSON-side error
/// notes when the binary codec would have fit.
// The Err arm is the error frame itself, written to the socket right
// where it is returned — not a propagated error worth boxing.
#[allow(clippy::result_large_err)]
pub(crate) fn encode_universe(
    value: &Value,
    binary: bool,
    max_frame: u32,
) -> Result<Vec<u8>, WireResponse> {
    if binary {
        let blob = codec::encode_value(value);
        let mut payload = Vec::with_capacity(1 + blob.len());
        payload.push(protocol::BINARY_UNIVERSE_MARKER);
        payload.extend_from_slice(&blob);
        if payload.len() as u64 > max_frame as u64 {
            return Err(WireResponse::server_error(
                E_TOO_LARGE,
                format!(
                    "universe of {} bytes exceeds the {max_frame}-byte cap \
                     even with the binary codec",
                    payload.len()
                ),
            ));
        }
        return Ok(payload);
    }
    let json = match serde_json::to_string(value) {
        Ok(j) => j,
        Err(e) => {
            return Err(WireResponse::server_error(
                E_PROTO,
                format!("unserializable universe: {e}"),
            ))
        }
    };
    let resp = WireResponse::Universe { json };
    let text = match serde_json::to_string(&resp) {
        Ok(t) => t,
        Err(e) => {
            return Err(WireResponse::server_error(
                E_PROTO,
                format!("unserializable universe: {e}"),
            ))
        }
    };
    if text.len() as u64 > max_frame as u64 {
        let binary_len = 1 + codec::encode_value(value).len();
        let hint = if binary_len as u64 <= max_frame as u64 {
            format!("; the binary codec needs only {binary_len} bytes — reconnect with a v2 client")
        } else {
            String::new()
        };
        return Err(WireResponse::server_error(
            E_TOO_LARGE,
            format!("response of {} bytes exceeds the {max_frame}-byte cap{hint}", text.len()),
        ));
    }
    Ok(text.into_bytes())
}

/// Writes one answered request, encoding `Universe` replies in the
/// session's negotiated codec.
fn respond_reply(stream: &mut TcpStream, reply: &Reply, shared: &Shared, sess: &mut Session) {
    match reply {
        Reply::Wire(resp) => respond(stream, resp, shared, sess),
        Reply::Universe(value) => match encode_universe(value, sess.binary, shared.cfg.max_frame) {
            Ok(payload) => {
                if protocol::write_frame(stream, &payload, shared.cfg.max_frame).is_ok() {
                    let sent = (protocol::FRAME_HEADER + payload.len()) as u64;
                    sess.bytes_out += sent;
                    ServerStats::bump(&shared.stats.bytes_out, sent);
                }
            }
            Err(resp) => respond(stream, &resp, shared, sess),
        },
    }
}

/// Serializes and writes one response frame, tracking counters. A
/// response too large for the frame cap degrades to an error frame.
fn respond(stream: &mut TcpStream, resp: &WireResponse, shared: &Shared, sess: &mut Session) {
    if matches!(resp, WireResponse::Error { .. }) {
        sess.errors += 1;
        ServerStats::bump(&shared.stats.errors, 1);
        if matches!(resp, WireResponse::Error { code, .. } if code == E_TIMEOUT) {
            ServerStats::bump(&shared.stats.timeouts, 1);
        }
    }
    let sent = match protocol::send(stream, resp, shared.cfg.max_frame) {
        Ok(n) => n,
        Err(FrameError::TooLarge { declared, max }) => {
            let fallback = WireResponse::server_error(
                E_TOO_LARGE,
                format!("response of {declared} bytes exceeds the {max}-byte cap"),
            );
            sess.errors += 1;
            ServerStats::bump(&shared.stats.errors, 1);
            protocol::send(stream, &fallback, shared.cfg.max_frame).unwrap_or(0)
        }
        Err(_) => 0,
    };
    sess.bytes_out += sent as u64;
    ServerStats::bump(&shared.stats.bytes_out, sent as u64);
}

fn dispatch(shared: &Arc<Shared>, req: WireRequest, sess: &Session) -> Reply {
    Reply::Wire(match req {
        WireRequest::Ping => {
            ServerStats::bump(&shared.stats.reads, 1);
            WireResponse::Pong
        }
        WireRequest::Query { src } => {
            ServerStats::bump(&shared.stats.reads, 1);
            snapshot_query(shared, src)
        }
        WireRequest::DumpUniverse => {
            ServerStats::bump(&shared.stats.reads, 1);
            // O(1) copy-on-write handle clone; encoding happens at the
            // write site, in the session's negotiated codec.
            return Reply::Universe(shared.published().store().universe().clone());
        }
        WireRequest::Stats => {
            ServerStats::bump(&shared.stats.reads, 1);
            WireResponse::Stats(Box::new(StatsReply {
                server: shared.server_stats(),
                session: SessionStatsWire {
                    session_id: sess.id,
                    requests: sess.requests,
                    errors: sess.errors,
                    bytes_in: sess.bytes_in,
                    bytes_out: sess.bytes_out,
                },
                engine: shared.engine_stats.lock().unwrap_or_else(|p| p.into_inner()).clone(),
                storage: shared.storage_stats(),
            }))
        }
        WireRequest::Execute { src } => {
            ServerStats::bump(&shared.stats.writes, 1);
            with_writer(shared, |b| b.execute(&src).map(WireResponse::Outcomes))
        }
        WireRequest::Update { src } => {
            ServerStats::bump(&shared.stats.writes, 1);
            with_writer(shared, |b| b.update(&src).map(|o| WireResponse::Outcomes(vec![o])))
        }
        WireRequest::RefreshViews => {
            ServerStats::bump(&shared.stats.writes, 1);
            with_writer(shared, |b| {
                b.refresh_views().map(|s| WireResponse::Refreshed(EngineStatsWire::from(&s)))
            })
        }
        WireRequest::Shutdown => {
            if shared.cfg.allow_remote_shutdown {
                WireResponse::ShuttingDown
            } else {
                WireResponse::from_error(&EngineError::Usage(
                    "remote shutdown is disabled on this server".into(),
                ))
            }
        }
    })
}

/// Runs a mutating operation under the writer lock, then republishes
/// the read snapshot.
///
/// Republication happens even when the operation errors: a
/// multi-statement `Execute` stops at the first failure but earlier
/// statements have already been applied (and logged), and readers must
/// see them. If republication itself fails — a poisoned durable backend
/// refusing to snapshot — the previous snapshot stays published, so
/// reads keep serving the last fully-acknowledged state.
fn with_writer(
    shared: &Arc<Shared>,
    op: impl FnOnce(&mut dyn Backend) -> Result<WireResponse, EngineError>,
) -> WireResponse {
    let Some(mut guard) = shared.lock_writer() else {
        return WireResponse::server_error(
            E_TIMEOUT,
            format!("writer busy for over {:?}", shared.cfg.request_timeout),
        );
    };
    let backend: &mut dyn Backend = &mut **guard;
    let result = op(backend);
    let _ = shared.republish(backend);
    match result {
        Ok(resp) => resp,
        Err(e) => WireResponse::from_error(&e),
    }
}

/// Evaluates one query against the published snapshot, off-thread when
/// a request deadline is configured.
///
/// On timeout the worker is abandoned, not killed: it holds its own
/// `Arc` of the snapshot and a transient plan-cache lock, finishes
/// harmlessly, and its result is dropped with the channel.
fn snapshot_query(shared: &Arc<Shared>, src: String) -> WireResponse {
    let snap = shared.published();
    if shared.cfg.request_timeout.is_zero() {
        return answer(query_snapshot(&snap, &src, shared));
    }
    let (tx, rx) = mpsc::channel();
    let worker_shared = Arc::clone(shared);
    let worker_snap = Arc::clone(&snap);
    let worker_src = src.clone();
    let spawned = std::thread::Builder::new().name("idl-query".into()).spawn(move || {
        let _ = tx.send(query_snapshot(&worker_snap, &worker_src, &worker_shared));
    });
    if spawned.is_err() {
        // Could not spawn a watchdog thread: fall back to inline evaluation.
        return answer(query_snapshot(&snap, &src, shared));
    }
    match rx.recv_timeout(shared.cfg.request_timeout) {
        Ok(result) => answer(result),
        Err(_) => WireResponse::server_error(
            E_TIMEOUT,
            format!("query exceeded the {:?} deadline", shared.cfg.request_timeout),
        ),
    }
}

pub(crate) fn query_snapshot(
    snap: &EngineSnapshot,
    src: &str,
    shared: &Shared,
) -> Result<idl::AnswerSet, EngineError> {
    snap.query_cached(src, Some(&shared.plan_cache))
}

pub(crate) fn answer(result: Result<idl::AnswerSet, EngineError>) -> WireResponse {
    match result {
        Ok(a) => WireResponse::Answers(a),
        Err(e) => WireResponse::from_error(&e),
    }
}
