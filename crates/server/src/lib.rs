//! # `idl-server` — a concurrent multi-session network front-end
//!
//! Serves one IDL engine (durable or in-memory, behind the
//! [`idl::Backend`] facade) to many concurrent TCP sessions:
//!
//! ```no_run
//! use idl::Engine;
//! use idl_server::{serve, Client, ServerConfig};
//!
//! let backend = Box::new(Engine::with_stock_universe(vec![("3/3/85", "hp", 50.0)]));
//! let handle = serve(backend, ServerConfig::default())?;
//!
//! let mut c = Client::connect(handle.local_addr())?;
//! c.update("?.euter.r+(.date=3/4/85, .stkCode=sun, .clsPrice=30)")?;
//! assert!(c.query("?.euter.r(.stkCode=sun)")?.is_true());
//! handle.shutdown();
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! Built on `std::net` only — no async runtime. Two serving
//! architectures share one semantics ([`ServeMode`]): a readiness-driven
//! event loop (the default — nonblocking sockets behind a vendored
//! poller, per-session pipelining, group-committed writes) and the
//! thread-per-session reference mode (`IDL_SERVE_THREADED=1`). Reads
//! evaluate against published O(1) copy-on-write snapshots without
//! taking the writer lock; writes serialize through the single engine
//! (and its durability layer). See [`server`] for the concurrency
//! discipline, `event` for the event loop, and [`protocol`] for the
//! wire format.

#![warn(missing_docs)]

pub mod client;
#[cfg(unix)]
mod event;
pub mod protocol;
pub mod server;
pub mod stats;

pub use client::{Client, ClientError};
pub use protocol::{
    EngineStatsWire, FrameError, SessionStatsWire, StatsReply, WireRequest, WireResponse,
};
pub use server::{serve, ServeMode, ServerConfig, ServerError, ServerHandle};
pub use stats::{LatencyRing, ServerStats, ServerStatsSnapshot};

#[cfg(test)]
mod tests {
    use super::*;
    use idl::Engine;

    fn stock_server(cfg: ServerConfig) -> ServerHandle {
        let backend = Box::new(Engine::with_stock_universe(vec![
            ("3/3/85", "hp", 50.0),
            ("3/3/85", "ibm", 210.0),
        ]));
        serve(backend, cfg).expect("server starts")
    }

    #[test]
    fn roundtrip_query_update_stats() {
        let handle = stock_server(ServerConfig::default());
        let mut c = Client::connect(handle.local_addr()).unwrap();
        assert!(c.query("?.euter.r(.stkCode=hp)").unwrap().is_true());
        let out = c.update("?.euter.r+(.date=3/4/85, .stkCode=sun, .clsPrice=30)").unwrap();
        assert_eq!(out.stats().unwrap().inserted, 1);
        assert!(c.query("?.euter.r(.stkCode=sun)").unwrap().is_true());
        let stats = c.stats().unwrap();
        assert!(stats.server.requests >= 3);
        assert_eq!(stats.server.sessions_active, 1);
        assert_eq!(stats.session.session_id, 1);
        assert!(stats.session.bytes_in > 0 && stats.session.bytes_out > 0);
        let final_stats = handle.shutdown();
        assert_eq!(final_stats.sessions_opened, 1);
    }

    #[test]
    fn engine_errors_travel_with_stable_codes() {
        let handle = stock_server(ServerConfig::default());
        let mut c = Client::connect(handle.local_addr()).unwrap();
        let err = c.query("?.euter.r(.stkCode=").unwrap_err();
        assert_eq!(err.code(), Some("E-PARSE"));
        // the session survives an engine error
        assert!(c.query("?.euter.r(.stkCode=hp)").unwrap().is_true());
        handle.shutdown();
    }

    #[test]
    fn session_cap_rejects_with_busy() {
        let cfg = ServerConfig { max_sessions: 1, ..ServerConfig::default() };
        let handle = stock_server(cfg);
        let _first = Client::connect(handle.local_addr()).unwrap();
        let err = Client::connect(handle.local_addr()).unwrap_err();
        assert_eq!(err.code(), Some(protocol::E_BUSY));
        handle.shutdown();
    }

    #[test]
    fn remote_shutdown_drains_server() {
        let handle = stock_server(ServerConfig::default());
        let addr = handle.local_addr();
        let mut c = Client::connect(addr).unwrap();
        c.shutdown_server().unwrap();
        let stats = handle.wait();
        assert_eq!(stats.sessions_active, 0);
        assert!(Client::connect(addr).is_err(), "drained server accepts no new sessions");
    }
}
