//! Server observability: global atomic counters plus a fixed-capacity
//! latency ring for p50/p99 percentiles.

use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Samples kept for percentile estimation (newest overwrite oldest).
const RING_CAPACITY: usize = 4096;

/// A bounded ring of the most recent request latencies, in microseconds.
///
/// Percentiles are computed over the retained window by sorting a copy —
/// recording stays O(1) on the request path, the cost lands on the rare
/// `Stats` reader.
#[derive(Debug)]
pub struct LatencyRing {
    samples: Mutex<RingInner>,
}

#[derive(Debug)]
struct RingInner {
    buf: Vec<u64>,
    next: usize,
}

impl Default for LatencyRing {
    fn default() -> Self {
        LatencyRing {
            samples: Mutex::new(RingInner { buf: Vec::with_capacity(RING_CAPACITY), next: 0 }),
        }
    }
}

impl LatencyRing {
    /// Records one request latency.
    pub fn record(&self, micros: u64) {
        let mut inner = self.samples.lock().unwrap_or_else(|p| p.into_inner());
        if inner.buf.len() < RING_CAPACITY {
            inner.buf.push(micros);
        } else {
            let at = inner.next;
            inner.buf[at] = micros;
        }
        inner.next = (inner.next + 1) % RING_CAPACITY;
    }

    /// `(p50, p99)` over the retained window, `(0, 0)` when empty.
    pub fn percentiles(&self) -> (u64, u64) {
        let mut sorted = {
            let inner = self.samples.lock().unwrap_or_else(|p| p.into_inner());
            inner.buf.clone()
        };
        if sorted.is_empty() {
            return (0, 0);
        }
        sorted.sort_unstable();
        let at = |p: f64| sorted[((sorted.len() - 1) as f64 * p).floor() as usize];
        (at(0.50), at(0.99))
    }
}

/// Global server counters. All fields are monotonically increasing
/// except `sessions_active`.
#[derive(Debug, Default)]
pub struct ServerStats {
    /// Sessions ever accepted.
    pub sessions_opened: AtomicU64,
    /// Sessions currently being served.
    pub sessions_active: AtomicU64,
    /// Connections refused at the session cap.
    pub sessions_rejected: AtomicU64,
    /// Requests completed (including those answered with an error).
    pub requests: AtomicU64,
    /// Snapshot reads (`Query`, `DumpUniverse`, `Stats`, `Ping`).
    pub reads: AtomicU64,
    /// Writer-serialized requests (`Execute`, `Update`, `RefreshViews`).
    pub writes: AtomicU64,
    /// Requests answered with an error frame.
    pub errors: AtomicU64,
    /// Requests that hit the per-request or writer-lock deadline.
    pub timeouts: AtomicU64,
    /// Frames rejected before dispatch (CRC, size cap, bad JSON).
    pub frames_rejected: AtomicU64,
    /// Framing + payload bytes received.
    pub bytes_in: AtomicU64,
    /// Framing + payload bytes sent.
    pub bytes_out: AtomicU64,
    /// Requests answered with an in-order `E-OVERLOAD` load-shed frame
    /// at the global pending-queue cap (event mode).
    pub load_shed: AtomicU64,
    /// Sessions closed by the idle reaper.
    pub sessions_reaped: AtomicU64,
    /// Coalesced write batches committed through the group-commit path
    /// (event mode; one log append + one fsync per batch).
    pub group_commits: AtomicU64,
    /// Updates acknowledged through those batches. Fsyncs saved by
    /// coalescing is `group_commit_records - group_commits`.
    pub group_commit_records: AtomicU64,
    /// High-water mark of requests queued across all sessions awaiting
    /// dispatch (event mode).
    pub queue_depth_peak: AtomicU64,
    /// Request latency window.
    pub latency: LatencyRing,
}

impl ServerStats {
    /// Bumps a counter (relaxed; these are statistics, not locks).
    pub fn bump(counter: &AtomicU64, by: u64) {
        counter.fetch_add(by, Ordering::Relaxed);
    }

    /// A serializable point-in-time copy. `plan_cache` supplies the
    /// shared snapshot-read plan cache's `(hits, misses)`.
    pub fn snapshot(&self, plan_cache: (u64, u64)) -> ServerStatsSnapshot {
        let (p50_us, p99_us) = self.latency.percentiles();
        let get = |c: &AtomicU64| c.load(Ordering::Relaxed);
        ServerStatsSnapshot {
            sessions_opened: get(&self.sessions_opened),
            sessions_active: get(&self.sessions_active),
            sessions_rejected: get(&self.sessions_rejected),
            requests: get(&self.requests),
            reads: get(&self.reads),
            writes: get(&self.writes),
            errors: get(&self.errors),
            timeouts: get(&self.timeouts),
            frames_rejected: get(&self.frames_rejected),
            bytes_in: get(&self.bytes_in),
            bytes_out: get(&self.bytes_out),
            load_shed: get(&self.load_shed),
            sessions_reaped: get(&self.sessions_reaped),
            group_commits: get(&self.group_commits),
            group_commit_records: get(&self.group_commit_records),
            queue_depth_peak: get(&self.queue_depth_peak),
            p50_us,
            p99_us,
            plan_cache_hits: plan_cache.0,
            plan_cache_misses: plan_cache.1,
        }
    }

    /// Raises a high-water-mark counter to at least `depth`.
    pub fn raise_peak(counter: &AtomicU64, depth: u64) {
        let mut seen = counter.load(Ordering::Relaxed);
        while seen < depth {
            match counter.compare_exchange_weak(seen, depth, Ordering::Relaxed, Ordering::Relaxed) {
                Ok(_) => break,
                Err(now) => seen = now,
            }
        }
    }
}

/// Wire-portable copy of [`ServerStats`] (plus latency percentiles and
/// the shared read-path plan-cache hit counters).
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct ServerStatsSnapshot {
    /// Sessions ever accepted.
    pub sessions_opened: u64,
    /// Sessions currently being served.
    pub sessions_active: u64,
    /// Connections refused at the session cap.
    pub sessions_rejected: u64,
    /// Requests completed (including errors).
    pub requests: u64,
    /// Snapshot reads.
    pub reads: u64,
    /// Writer-serialized requests.
    pub writes: u64,
    /// Requests answered with an error frame.
    pub errors: u64,
    /// Deadline-exceeded requests.
    pub timeouts: u64,
    /// Frames rejected before dispatch.
    pub frames_rejected: u64,
    /// Bytes received.
    pub bytes_in: u64,
    /// Bytes sent.
    pub bytes_out: u64,
    /// In-order `E-OVERLOAD` load-shed answers (event mode). Optional on
    /// the wire: replies from servers predating the event loop decode
    /// as zero, and older clients ignore the field.
    #[serde(default)]
    pub load_shed: u64,
    /// Sessions closed by the idle reaper.
    #[serde(default)]
    pub sessions_reaped: u64,
    /// Coalesced write batches committed (event mode).
    #[serde(default)]
    pub group_commits: u64,
    /// Updates acknowledged through coalesced batches.
    #[serde(default)]
    pub group_commit_records: u64,
    /// High-water mark of queued requests across all sessions.
    #[serde(default)]
    pub queue_depth_peak: u64,
    /// Median request latency, microseconds.
    pub p50_us: u64,
    /// 99th-percentile request latency, microseconds.
    pub p99_us: u64,
    /// Snapshot-read plans served from the shared cache.
    pub plan_cache_hits: u64,
    /// Snapshot-read plans compiled on miss.
    pub plan_cache_misses: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_percentiles() {
        let ring = LatencyRing::default();
        assert_eq!(ring.percentiles(), (0, 0));
        for us in 1..=100 {
            ring.record(us);
        }
        let (p50, p99) = ring.percentiles();
        assert_eq!(p50, 50);
        assert_eq!(p99, 99);
    }

    #[test]
    fn ring_overwrites_oldest() {
        let ring = LatencyRing::default();
        for _ in 0..RING_CAPACITY {
            ring.record(1);
        }
        for _ in 0..RING_CAPACITY {
            ring.record(1000);
        }
        assert_eq!(ring.percentiles(), (1000, 1000));
    }
}
