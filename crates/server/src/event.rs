//! The readiness-driven event-loop server ([`ServeMode::Event`]).
//!
//! # Architecture
//!
//! One **reactor** thread owns every socket behind a level-triggered
//! poller (the vendored `mio` shim: `epoll` on Linux, `poll(2)`
//! elsewhere). Sockets are nonblocking; per-session state machines
//! assemble frames incrementally, so a peer trickling one byte at a time
//! occupies a buffer, not a thread. Parsed requests dispatch to:
//!
//! * a **read pool** of `cfg.workers` threads evaluating `Query` /
//!   `DumpUniverse` against the published snapshot (lock-free vs. the
//!   writer), and
//! * one **write thread** owning the group-commit path: it drains its
//!   queue, coalesces up to `cfg.group_commit` concurrent `Update`s into
//!   a single [`idl::Backend::update_group`] call — one log append, one
//!   fsync, then every member is acknowledged — and republishes the read
//!   snapshot *before* posting completions, so a session's next
//!   pipelined query observes its own write.
//!
//! Completions return to the reactor through a mailbox + [`mio::Waker`]
//! and are written strictly in each session's request order.
//!
//! # Pipelining and ordering
//!
//! Each session keeps a FIFO of outstanding requests. At most one is
//! *running* at a time (per-session serial execution — this is what
//! makes response order and read-your-writes trivial); parallelism comes
//! from many sessions. Locally answered entries (`Ping`, `Stats`,
//! protocol errors, load-shed and timeout frames) still travel through
//! the FIFO, so replies never overtake each other.
//!
//! # Admission control
//!
//! Three layers past the `E-BUSY` connect cap:
//!
//! * **per-session queue cap** (`cfg.session_queue`): a session with too
//!   many outstanding requests stops being *read* — backpressure
//!   propagates to the peer through TCP flow control, no frame is
//!   dropped;
//! * **global pending cap** (`cfg.pending_queue`): past it, new requests
//!   are answered with in-order `E-OVERLOAD` load-shed frames instead of
//!   queueing unboundedly;
//! * **queued-request deadline**: a request still waiting for dispatch
//!   after `cfg.request_timeout` is answered `E-TIMEOUT` in place (it
//!   never started executing, so the answer is safe).
//!
//! A fault on one session — mid-frame disconnect, checksum failure,
//! oversized frame, abrupt reset — closes that session only; the reactor
//! and every other session keep running (`tests/netfault_battery.rs`).

use crate::protocol::{
    self, SessionStatsWire, StatsReply, WireRequest, WireResponse, E_FRAME, E_OVERLOAD, E_PROTO,
    E_TIMEOUT, E_TOO_LARGE, MAGIC, MAGIC_V2,
};
use crate::server::{self, Reply, ServerError, Shared};
use crate::stats::ServerStats;
use idl::{Backend, EngineError};
use idl_storage::crc::crc32c;
use mio::unix::SourceFd;
use mio::{Events, Interest, Poll, Token, Waker};
use std::collections::VecDeque;
use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::sync::atomic::Ordering;
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Reactor poll tick: bounds idle-reap / request-timeout / drain latency.
const TICK: Duration = Duration::from_millis(25);

/// Socket read chunk size.
const READ_CHUNK: usize = 64 * 1024;

/// Poller token of the listener.
const LISTENER: Token = Token(0);
/// Poller token of the completion-mailbox waker.
const WAKER: Token = Token(1);
/// First session token; token = slab index + BASE.
const BASE: usize = 2;

/// One request dispatched to a worker.
struct Job {
    token: usize,
    generation: u64,
    req: WireRequest,
}

/// One finished request travelling back to the reactor.
struct Completion {
    token: usize,
    generation: u64,
    resp: Reply,
}

/// Worker → reactor channel: a locked vector plus a poller waker.
struct Mailbox {
    completions: Mutex<Vec<Completion>>,
    waker: Waker,
}

impl Mailbox {
    fn post(&self, batch: Vec<Completion>) {
        if batch.is_empty() {
            return;
        }
        self.completions.lock().unwrap_or_else(|p| p.into_inner()).extend(batch);
        let _ = self.waker.wake();
    }

    fn drain(&self) -> Vec<Completion> {
        std::mem::take(&mut *self.completions.lock().unwrap_or_else(|p| p.into_inner()))
    }
}

/// One entry of a session's pipelined-request FIFO.
enum Entry {
    /// Parsed, waiting for its turn (at most the head dispatches).
    Pending {
        req: WireRequest,
        /// Arrival time, for the queued-request deadline.
        at: Instant,
    },
    /// Dispatched to a worker; the completion will replace this.
    Running { started: Instant },
    /// Answered; waiting for earlier entries to flush first. The
    /// response is boxed so a queue of mostly-`Pending` entries does not
    /// pay the largest variant's footprint per slot.
    Ready {
        resp: Box<Reply>,
        /// Whether this answers a parsed request (counts toward the
        /// request counters) or a framing-level error (counts only as a
        /// rejected frame, mirroring the threaded path).
        is_request: bool,
    },
}

/// Per-session state machine.
struct Session {
    stream: TcpStream,
    id: u64,
    /// Slab-reuse guard: completions carry the generation they were
    /// dispatched under and are dropped when the slot was recycled.
    generation: u64,
    /// Whether the peer has presented the 8-byte protocol magic.
    handshaken: bool,
    /// Whether the peer negotiated the v2 handshake (binary universes).
    binary: bool,
    /// Unparsed inbound bytes (partial frames accumulate here).
    in_buf: Vec<u8>,
    /// Serialized outbound frames not yet accepted by the socket.
    out_buf: Vec<u8>,
    /// Bytes of `out_buf` already written.
    out_at: usize,
    /// Pipelined requests, in arrival order.
    queue: VecDeque<Entry>,
    /// Interest currently registered with the poller (`None` = not
    /// registered); diffed against the desired interest after every step
    /// so a level-triggered poller never spins on idle readiness.
    registered: Option<Interest>,
    /// No further reads: peer EOF, unrecoverable frame error, `Shutdown`
    /// acknowledged, or server drain. The session closes once the queue
    /// empties and `out_buf` flushes.
    read_closed: bool,
    last_activity: Instant,
    requests: u64,
    errors: u64,
    bytes_in: u64,
    bytes_out: u64,
}

impl Session {
    fn flushed(&self) -> bool {
        self.out_at >= self.out_buf.len()
    }
}

/// Spawns the reactor, read pool and write thread; returns their join
/// handles (reactor first, so joining in order tears down cleanly).
pub(crate) fn spawn(
    listener: TcpListener,
    shared: Arc<Shared>,
) -> Result<Vec<JoinHandle<()>>, ServerError> {
    listener.set_nonblocking(true)?;
    let poll = Poll::new()?;
    let lfd = listener.as_raw_fd();
    poll.registry().register(&mut SourceFd(&lfd), LISTENER, Interest::READABLE)?;
    let mail = Arc::new(Mailbox {
        completions: Mutex::new(Vec::new()),
        waker: Waker::new(poll.registry(), WAKER)?,
    });

    let workers = match shared.cfg.workers {
        0 => std::thread::available_parallelism().map(|n| n.get()).unwrap_or(2).max(2),
        n => n,
    };
    let (read_tx, read_rx) = mpsc::channel::<Job>();
    let read_rx = Arc::new(Mutex::new(read_rx));
    let (write_tx, write_rx) = mpsc::channel::<Job>();

    let mut threads = Vec::with_capacity(workers + 2);
    let reactor = Reactor {
        shared: Arc::clone(&shared),
        poll,
        listener,
        slots: Vec::new(),
        free: Vec::new(),
        generation: 0,
        session_seq: 0,
        pending_total: 0,
        read_tx,
        write_tx,
        mail: Arc::clone(&mail),
    };
    threads
        .push(std::thread::Builder::new().name("idl-reactor".into()).spawn(move || reactor.run())?);
    for k in 0..workers {
        let shared = Arc::clone(&shared);
        let rx = Arc::clone(&read_rx);
        let mail = Arc::clone(&mail);
        threads.push(
            std::thread::Builder::new()
                .name(format!("idl-worker-{k}"))
                .spawn(move || read_worker(shared, rx, mail))?,
        );
    }
    threads.push(
        std::thread::Builder::new()
            .name("idl-writer".into())
            .spawn(move || write_worker(shared, write_rx, mail))?,
    );
    Ok(threads)
}

/// Read-pool worker: snapshot queries and universe dumps, evaluated
/// against the published snapshot without the writer lock.
fn read_worker(shared: Arc<Shared>, rx: Arc<Mutex<mpsc::Receiver<Job>>>, mail: Arc<Mailbox>) {
    loop {
        // Holding the lock while blocked in recv() is the standard
        // shared-receiver pool: hand-off is serial, execution parallel.
        let job = {
            let rx = rx.lock().unwrap_or_else(|p| p.into_inner());
            rx.recv()
        };
        let Ok(job) = job else { break };
        let resp = match &job.req {
            WireRequest::Query { src } => {
                let snap = shared.published();
                Reply::Wire(server::answer(server::query_snapshot(&snap, src, &shared)))
            }
            WireRequest::DumpUniverse => {
                // O(1) copy-on-write handle clone; the reactor encodes
                // it in the codec the session negotiated.
                let snap = shared.published();
                Reply::Universe(snap.store().universe().clone())
            }
            _ => Reply::Wire(WireResponse::server_error(E_PROTO, "not a read request")),
        };
        mail.post(vec![Completion { token: job.token, generation: job.generation, resp }]);
    }
}

/// The single write thread: drains its queue, group-commits coalesced
/// updates, republishes, then posts the whole batch's completions.
fn write_worker(shared: Arc<Shared>, rx: mpsc::Receiver<Job>, mail: Arc<Mailbox>) {
    while let Ok(first) = rx.recv() {
        let mut batch = vec![first];
        while batch.len() < shared.cfg.group_commit.max(1) {
            match rx.try_recv() {
                Ok(job) => batch.push(job),
                Err(_) => break,
            }
        }
        let mut out: Vec<Completion> = Vec::with_capacity(batch.len());
        match shared.lock_writer() {
            None => {
                for job in &batch {
                    out.push(Completion {
                        token: job.token,
                        generation: job.generation,
                        resp: Reply::Wire(WireResponse::server_error(
                            E_TIMEOUT,
                            format!("writer busy for over {:?}", shared.cfg.request_timeout),
                        )),
                    });
                }
            }
            Some(mut guard) => {
                let backend: &mut dyn Backend = &mut **guard;
                // Coalesce every Update in the batch into one group
                // commit. Batch members are from distinct sessions (each
                // session runs at most one request), so reordering
                // relative to the non-update members is unobservable.
                let update_idx: Vec<usize> = batch
                    .iter()
                    .enumerate()
                    .filter(|(_, j)| matches!(j.req, WireRequest::Update { .. }))
                    .map(|(i, _)| i)
                    .collect();
                if !update_idx.is_empty() {
                    let srcs: Vec<String> = update_idx
                        .iter()
                        .map(|&i| match &batch[i].req {
                            WireRequest::Update { src } => src.clone(),
                            _ => unreachable!("filtered to updates"),
                        })
                        .collect();
                    let results = backend.update_group(&srcs);
                    ServerStats::bump(&shared.stats.group_commits, 1);
                    ServerStats::bump(&shared.stats.group_commit_records, srcs.len() as u64);
                    for (&i, result) in update_idx.iter().zip(results) {
                        let resp = Reply::Wire(match result {
                            Ok(o) => WireResponse::Outcomes(vec![o]),
                            Err(e) => WireResponse::from_error(&e),
                        });
                        out.push(Completion {
                            token: batch[i].token,
                            generation: batch[i].generation,
                            resp,
                        });
                    }
                }
                for job in &batch {
                    let resp = Reply::Wire(match &job.req {
                        WireRequest::Update { .. } => continue, // group-committed above
                        WireRequest::Execute { src } => match backend.execute(src) {
                            Ok(o) => WireResponse::Outcomes(o),
                            Err(e) => WireResponse::from_error(&e),
                        },
                        WireRequest::RefreshViews => match backend.refresh_views() {
                            Ok(s) => WireResponse::Refreshed(protocol::EngineStatsWire::from(&s)),
                            Err(e) => WireResponse::from_error(&e),
                        },
                        _ => WireResponse::server_error(E_PROTO, "not a write request"),
                    });
                    out.push(Completion { token: job.token, generation: job.generation, resp });
                }
                // Republish before any ack leaves: a session's next
                // pipelined query dispatches only after its completion,
                // so it evaluates against a snapshot containing its
                // write (read-your-writes).
                let _ = shared.republish(backend);
            }
        }
        mail.post(out);
    }
}

/// The reactor: owns the poller, the listener and every session.
struct Reactor {
    shared: Arc<Shared>,
    poll: Poll,
    listener: TcpListener,
    slots: Vec<Option<Session>>,
    free: Vec<usize>,
    generation: u64,
    session_seq: u64,
    /// `Pending` entries across all sessions (the global admission gauge).
    pending_total: usize,
    read_tx: mpsc::Sender<Job>,
    write_tx: mpsc::Sender<Job>,
    mail: Arc<Mailbox>,
}

impl Reactor {
    fn run(mut self) {
        let mut events = Events::with_capacity(1024);
        let mut drain_deadline: Option<Instant> = None;
        loop {
            if self.shared.shutdown.load(Ordering::SeqCst) && drain_deadline.is_none() {
                drain_deadline = Some(Instant::now() + self.shared.cfg.drain_timeout);
                self.begin_session_drain();
            }
            if let Some(deadline) = drain_deadline {
                let open = self.slots.iter().filter(|s| s.is_some()).count();
                if open == 0 || Instant::now() >= deadline {
                    break;
                }
            }
            if self.poll.poll(&mut events, Some(TICK)).is_err() {
                // EBADF and friends would spin; bail out via drain.
                self.shared.begin_drain();
            }
            let fired: Vec<(usize, bool, bool)> =
                events.iter().map(|e| (e.token().0, e.is_readable(), e.is_writable())).collect();
            for (token, readable, writable) in fired {
                match token {
                    t if t == LISTENER.0 => self.accept_ready(),
                    t if t == WAKER.0 => {} // mailbox drained below
                    t => {
                        let idx = t - BASE;
                        if readable {
                            self.readable(idx);
                        }
                        if writable {
                            self.writable(idx);
                        }
                    }
                }
            }
            self.deliver_completions();
            self.tick();
        }
        // Force-close whatever the drain deadline left behind.
        for idx in 0..self.slots.len() {
            self.close(idx);
        }
    }

    // ---------------------------------------------------------- accept

    fn accept_ready(&mut self) {
        loop {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    if self.shared.shutdown.load(Ordering::SeqCst) {
                        drop(stream); // draining: refuse quietly
                        continue;
                    }
                    self.admit(stream);
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => break,
            }
        }
    }

    fn admit(&mut self, stream: TcpStream) {
        let active = self.shared.stats.sessions_active.load(Ordering::SeqCst);
        if active as usize >= self.shared.cfg.max_sessions {
            ServerStats::bump(&self.shared.stats.sessions_rejected, 1);
            server::reject_busy(stream, &self.shared);
            return;
        }
        if stream.set_nonblocking(true).is_err() {
            return;
        }
        stream.set_nodelay(true).ok();
        self.session_seq += 1;
        self.generation += 1;
        ServerStats::bump(&self.shared.stats.sessions_opened, 1);
        self.shared.stats.sessions_active.fetch_add(1, Ordering::SeqCst);
        // The greeting waits for the client's magic (parsed in
        // `parse_frames`), so it can match the negotiated version —
        // the same read-first contract as the threaded mode.
        let session = Session {
            stream,
            id: self.session_seq,
            generation: self.generation,
            handshaken: false,
            binary: false,
            in_buf: Vec::new(),
            out_buf: Vec::new(),
            out_at: 0,
            queue: VecDeque::new(),
            registered: None,
            read_closed: false,
            last_activity: Instant::now(),
            requests: 0,
            errors: 0,
            bytes_in: 0,
            bytes_out: 0,
        };
        let idx = match self.free.pop() {
            Some(idx) => {
                self.slots[idx] = Some(session);
                idx
            }
            None => {
                self.slots.push(Some(session));
                self.slots.len() - 1
            }
        };
        self.progress(idx);
    }

    // ----------------------------------------------------------- I/O

    fn readable(&mut self, idx: usize) {
        let Some(session) = self.slots.get_mut(idx).and_then(Option::as_mut) else { return };
        if session.read_closed {
            return;
        }
        let mut chunk = [0u8; READ_CHUNK];
        let mut saw_eof = false;
        loop {
            // Respect backpressure inside the read loop too: once the
            // session is at its queue cap, leave bytes in the kernel
            // buffer so TCP flow control reaches the peer.
            if session.queue.len() >= self.shared.cfg.session_queue
                && session.in_buf.len() >= protocol::FRAME_HEADER
            {
                break;
            }
            match session.stream.read(&mut chunk) {
                Ok(0) => {
                    saw_eof = true;
                    break;
                }
                Ok(n) => session.in_buf.extend_from_slice(&chunk[..n]),
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    // Abrupt reset (ECONNRESET): the fault stays local
                    // to this session.
                    self.close(idx);
                    return;
                }
            }
        }
        let Some(session) = self.slots.get_mut(idx).and_then(Option::as_mut) else { return };
        session.last_activity = Instant::now();
        if saw_eof {
            session.read_closed = true;
        }
        self.progress(idx);
    }

    fn writable(&mut self, idx: usize) {
        self.progress(idx);
    }

    /// Drives one session's state machine to quiescence: parse frames
    /// while there is queue room, dispatch/answer from the queue head,
    /// flush the out buffer, then re-diff poller interest (or close).
    fn progress(&mut self, idx: usize) {
        loop {
            let parsed = self.parse_frames(idx);
            let pumped = self.pump(idx);
            if !parsed && !pumped {
                break;
            }
        }
        self.flush(idx);
        self.finish(idx);
    }

    /// Parses as many complete frames from `in_buf` as admission allows.
    /// Returns whether anything was consumed.
    fn parse_frames(&mut self, idx: usize) -> bool {
        let max_frame = self.shared.cfg.max_frame;
        let session_cap = self.shared.cfg.session_queue;
        let pending_cap = self.shared.cfg.pending_queue;
        let Some(session) = self.slots.get_mut(idx).and_then(Option::as_mut) else {
            return false;
        };
        let mut at = 0usize;
        let mut progressed = false;
        let mut new_pending = 0usize;
        loop {
            let buf = &session.in_buf[at..];
            if !session.handshaken {
                if buf.len() < MAGIC.len() {
                    break;
                }
                let head = &buf[..MAGIC.len()];
                if head != MAGIC && head != MAGIC_V2 {
                    // Not a protocol peer: hang up (threaded mode closes
                    // silently on a bad handshake too).
                    session.read_closed = true;
                    session.queue.clear();
                    session.out_buf.clear();
                    session.out_at = 0;
                    at = session.in_buf.len();
                    progressed = true;
                    break;
                }
                session.binary = head == MAGIC_V2;
                // Greeting: echo the negotiated magic plus one frame —
                // Pong for v1 peers (byte-identical to pre-codec
                // releases), Hello advertising codecs for v2 peers
                // (the same admission contract as the threaded mode;
                // greeting bytes are uncounted there too).
                let (echo, greeting): (&[u8], WireResponse) = if session.binary {
                    (MAGIC_V2, server::hello())
                } else {
                    (MAGIC, WireResponse::Pong)
                };
                session.out_buf.extend_from_slice(echo);
                if let Ok(json) = serde_json::to_string(&greeting) {
                    push_frame(&mut session.out_buf, json.as_bytes());
                }
                at += MAGIC.len();
                session.handshaken = true;
                progressed = true;
                continue;
            }
            if session.queue.len() >= session_cap {
                break; // backpressure: stop consuming, reads pause
            }
            if buf.len() < protocol::FRAME_HEADER {
                break;
            }
            let declared = u32::from_le_bytes(buf[..4].try_into().unwrap());
            let want = u32::from_le_bytes(buf[4..8].try_into().unwrap());
            if declared > max_frame {
                ServerStats::bump(&self.shared.stats.frames_rejected, 1);
                session.queue.push_back(Entry::Ready {
                    resp: Box::new(Reply::Wire(WireResponse::server_error(
                        E_TOO_LARGE,
                        format!("frame of {declared} bytes exceeds the {max_frame}-byte cap"),
                    ))),
                    is_request: false,
                });
                // The oversized payload was never read; resync is
                // impossible — answer, then close.
                session.read_closed = true;
                at = session.in_buf.len();
                progressed = true;
                break;
            }
            let total = protocol::FRAME_HEADER + declared as usize;
            if buf.len() < total {
                break; // partial frame: wait for more bytes
            }
            let payload = &buf[protocol::FRAME_HEADER..total];
            session.bytes_in += total as u64;
            ServerStats::bump(&self.shared.stats.bytes_in, total as u64);
            let got = crc32c(payload);
            if got != want {
                ServerStats::bump(&self.shared.stats.frames_rejected, 1);
                session.queue.push_back(Entry::Ready {
                    resp: Box::new(Reply::Wire(WireResponse::server_error(
                        E_FRAME,
                        format!(
                            "frame checksum mismatch (header {want:#010x}, payload {got:#010x})"
                        ),
                    ))),
                    is_request: false,
                });
                session.read_closed = true;
                at = session.in_buf.len();
                progressed = true;
                break;
            }
            let req = std::str::from_utf8(payload)
                .map_err(|e| e.to_string())
                .and_then(|s| serde_json::from_str::<WireRequest>(s).map_err(|e| e.to_string()));
            at += total;
            progressed = true;
            match req {
                Err(why) => {
                    // The frame boundary is intact; the session survives.
                    ServerStats::bump(&self.shared.stats.frames_rejected, 1);
                    session.queue.push_back(Entry::Ready {
                        resp: Box::new(Reply::Wire(WireResponse::server_error(
                            E_PROTO,
                            format!("unreadable request: {why}"),
                        ))),
                        is_request: false,
                    });
                }
                Ok(req) => {
                    if self.pending_total + new_pending >= pending_cap {
                        ServerStats::bump(&self.shared.stats.load_shed, 1);
                        session.queue.push_back(Entry::Ready {
                            resp: Box::new(Reply::Wire(WireResponse::server_error(
                                E_OVERLOAD,
                                format!(
                                    "server overloaded ({pending_cap} requests pending); retry"
                                ),
                            ))),
                            is_request: true,
                        });
                    } else {
                        new_pending += 1;
                        session.queue.push_back(Entry::Pending { req, at: Instant::now() });
                    }
                }
            }
        }
        if at > 0 {
            session.in_buf.drain(..at);
        }
        if new_pending > 0 {
            self.pending_total += new_pending;
            ServerStats::raise_peak(&self.shared.stats.queue_depth_peak, self.pending_total as u64);
        }
        progressed
    }

    /// Pops ready answers and dispatches the head request. Returns
    /// whether anything moved.
    fn pump(&mut self, idx: usize) -> bool {
        let mut progressed = false;
        loop {
            let Some(session) = self.slots.get_mut(idx).and_then(Option::as_mut) else {
                return progressed;
            };
            match session.queue.front() {
                Some(Entry::Ready { .. }) => {
                    let Some(Entry::Ready { resp, is_request }) = session.queue.pop_front() else {
                        unreachable!("front() said Ready");
                    };
                    if is_request {
                        session.requests += 1;
                        ServerStats::bump(&self.shared.stats.requests, 1);
                    }
                    self.write_reply(idx, &resp);
                    progressed = true;
                }
                Some(Entry::Pending { req, .. }) => {
                    let token = idx + BASE;
                    let generation = session.generation;
                    match classify(req) {
                        Kind::Inline => {
                            let Some(Entry::Pending { req, at }) = session.queue.pop_front() else {
                                unreachable!("front() said Pending");
                            };
                            self.pending_total -= 1;
                            ServerStats::bump(&self.shared.stats.reads, 1);
                            let resp = self.answer_inline(idx, req);
                            let Some(session) = self.slots.get_mut(idx).and_then(Option::as_mut)
                            else {
                                return progressed;
                            };
                            session.requests += 1;
                            ServerStats::bump(&self.shared.stats.requests, 1);
                            self.shared.stats.latency.record(at.elapsed().as_micros() as u64);
                            self.write_response(idx, &resp);
                            progressed = true;
                        }
                        kind @ (Kind::Read | Kind::Write) => {
                            let Some(Entry::Pending { req, .. }) = session.queue.pop_front() else {
                                unreachable!("front() said Pending");
                            };
                            self.pending_total -= 1;
                            session.queue.push_front(Entry::Running { started: Instant::now() });
                            let (tx, counter) = match kind {
                                Kind::Read => (&self.read_tx, &self.shared.stats.reads),
                                _ => (&self.write_tx, &self.shared.stats.writes),
                            };
                            ServerStats::bump(counter, 1);
                            if tx.send(Job { token, generation, req }).is_err() {
                                // Workers are gone (tear-down): close.
                                self.close(idx);
                            }
                            return true;
                        }
                    }
                }
                Some(Entry::Running { .. }) | None => return progressed,
            }
        }
    }

    /// Answers a request the reactor can serve without a worker.
    fn answer_inline(&mut self, idx: usize, req: WireRequest) -> WireResponse {
        match req {
            WireRequest::Ping => WireResponse::Pong,
            WireRequest::Stats => {
                let Some(session) = self.slots.get_mut(idx).and_then(Option::as_mut) else {
                    return WireResponse::Pong;
                };
                WireResponse::Stats(Box::new(StatsReply {
                    server: self.shared.server_stats(),
                    session: SessionStatsWire {
                        session_id: session.id,
                        requests: session.requests,
                        errors: session.errors,
                        bytes_in: session.bytes_in,
                        bytes_out: session.bytes_out,
                    },
                    engine: self
                        .shared
                        .engine_stats
                        .lock()
                        .unwrap_or_else(|p| p.into_inner())
                        .clone(),
                    storage: self.shared.storage_stats(),
                }))
            }
            WireRequest::Shutdown => {
                if self.shared.cfg.allow_remote_shutdown {
                    if let Some(session) = self.slots.get_mut(idx).and_then(Option::as_mut) {
                        // Anything pipelined after Shutdown is dropped
                        // (the threaded loop breaks there too).
                        self.pending_total -= session
                            .queue
                            .iter()
                            .filter(|e| matches!(e, Entry::Pending { .. }))
                            .count();
                        session.queue.clear();
                        session.read_closed = true;
                    }
                    self.shared.begin_drain();
                    WireResponse::ShuttingDown
                } else {
                    WireResponse::from_error(&EngineError::Usage(
                        "remote shutdown is disabled on this server".into(),
                    ))
                }
            }
            other => {
                debug_assert!(false, "not inline: {other:?}");
                WireResponse::server_error(E_PROTO, "not an inline request")
            }
        }
    }

    /// Writes one answered request, encoding `Universe` replies in the
    /// session's negotiated codec (binary sessions retry the compact
    /// codec before any `E-TOO-LARGE` degradation).
    fn write_reply(&mut self, idx: usize, reply: &Reply) {
        match reply {
            Reply::Wire(resp) => self.write_response(idx, resp),
            Reply::Universe(value) => {
                let max_frame = self.shared.cfg.max_frame;
                let binary = self.slots.get(idx).and_then(Option::as_ref).is_some_and(|s| s.binary);
                match server::encode_universe(value, binary, max_frame) {
                    Ok(payload) => {
                        let Some(session) = self.slots.get_mut(idx).and_then(Option::as_mut) else {
                            return;
                        };
                        let sent = protocol::FRAME_HEADER + payload.len();
                        push_frame(&mut session.out_buf, &payload);
                        session.bytes_out += sent as u64;
                        ServerStats::bump(&self.shared.stats.bytes_out, sent as u64);
                    }
                    Err(resp) => self.write_response(idx, &resp),
                }
            }
        }
    }

    /// Serializes one response into the session's out buffer, degrading
    /// an oversized response to an `E-TOO-LARGE` error frame.
    fn write_response(&mut self, idx: usize, resp: &WireResponse) {
        let max_frame = self.shared.cfg.max_frame;
        let mut count_error = matches!(resp, WireResponse::Error { .. });
        if matches!(resp, WireResponse::Error { code, .. } if code == E_TIMEOUT) {
            ServerStats::bump(&self.shared.stats.timeouts, 1);
        }
        let json = serde_json::to_string(resp).unwrap_or_else(|e| {
            format!("{{\"Error\":{{\"code\":\"E-PROTO\",\"message\":\"unserializable: {e}\"}}}}")
        });
        let json = if json.len() as u64 > max_frame as u64 {
            count_error = true;
            let fallback = WireResponse::server_error(
                E_TOO_LARGE,
                format!("response of {} bytes exceeds the {max_frame}-byte cap", json.len()),
            );
            serde_json::to_string(&fallback).unwrap_or_default()
        } else {
            json
        };
        let Some(session) = self.slots.get_mut(idx).and_then(Option::as_mut) else { return };
        if count_error {
            session.errors += 1;
            ServerStats::bump(&self.shared.stats.errors, 1);
        }
        let sent = protocol::FRAME_HEADER + json.len();
        push_frame(&mut session.out_buf, json.as_bytes());
        session.bytes_out += sent as u64;
        ServerStats::bump(&self.shared.stats.bytes_out, sent as u64);
    }

    /// Writes as much buffered output as the socket accepts.
    fn flush(&mut self, idx: usize) {
        let Some(session) = self.slots.get_mut(idx).and_then(Option::as_mut) else { return };
        while session.out_at < session.out_buf.len() {
            match session.stream.write(&session.out_buf[session.out_at..]) {
                Ok(0) => break,
                Ok(n) => session.out_at += n,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.close(idx);
                    return;
                }
            }
        }
        if session.flushed() {
            session.out_buf.clear();
            session.out_at = 0;
        } else if session.out_at > READ_CHUNK {
            session.out_buf.drain(..session.out_at);
            session.out_at = 0;
        }
    }

    /// Closes a finished session or re-diffs its poller interest.
    fn finish(&mut self, idx: usize) {
        let session_cap = self.shared.cfg.session_queue;
        let Some(session) = self.slots.get_mut(idx).and_then(Option::as_mut) else { return };
        if session.read_closed && session.queue.is_empty() && session.flushed() {
            self.close(idx);
            return;
        }
        let wants_read = !session.read_closed && session.queue.len() < session_cap;
        let wants_write = !session.flushed();
        let desired = match (wants_read, wants_write) {
            (true, true) => Some(Interest::READABLE | Interest::WRITABLE),
            (true, false) => Some(Interest::READABLE),
            (false, true) => Some(Interest::WRITABLE),
            (false, false) => None,
        };
        if desired != session.registered {
            let fd = session.stream.as_raw_fd();
            let token = Token(idx + BASE);
            let registry = self.poll.registry();
            let ok = match (session.registered, desired) {
                (None, Some(i)) => registry.register(&mut SourceFd(&fd), token, i).is_ok(),
                (Some(_), Some(i)) => registry.reregister(&mut SourceFd(&fd), token, i).is_ok(),
                (Some(_), None) => registry.deregister(&mut SourceFd(&fd)).is_ok(),
                (None, None) => true,
            };
            if ok {
                session.registered = desired;
            } else {
                self.close(idx);
            }
        }
    }

    fn close(&mut self, idx: usize) {
        let Some(slot) = self.slots.get_mut(idx) else { return };
        let Some(session) = slot.take() else { return };
        if session.registered.is_some() {
            let fd = session.stream.as_raw_fd();
            let _ = self.poll.registry().deregister(&mut SourceFd(&fd));
        }
        self.pending_total -=
            session.queue.iter().filter(|e| matches!(e, Entry::Pending { .. })).count();
        self.shared.stats.sessions_active.fetch_sub(1, Ordering::SeqCst);
        self.free.push(idx);
        // session drops here: the socket closes (with unread inbound
        // data this raises an RST at the peer — the abrupt-reset path)
    }

    // ----------------------------------------------------- completions

    fn deliver_completions(&mut self) {
        for done in self.mail.drain() {
            let idx = done.token - BASE;
            let Some(session) = self.slots.get_mut(idx).and_then(Option::as_mut) else {
                continue; // session closed while the request ran
            };
            if session.generation != done.generation {
                continue; // slot recycled: a stale completion
            }
            let Some(Entry::Running { started }) = session.queue.front() else {
                debug_assert!(false, "completion without a running head");
                continue;
            };
            self.shared.stats.latency.record(started.elapsed().as_micros() as u64);
            session.requests += 1;
            ServerStats::bump(&self.shared.stats.requests, 1);
            session.queue.pop_front();
            session.queue.push_front(Entry::Ready { resp: Box::new(done.resp), is_request: false });
            // (the boxed reply may be a still-unencoded Universe handle;
            // write_reply encodes it when it reaches the queue head)
            session.last_activity = Instant::now();
            self.progress(idx);
        }
    }

    // ----------------------------------------------------------- ticks

    /// Idle reaping and queued-request deadlines, on the poll tick.
    fn tick(&mut self) {
        let idle_timeout = self.shared.cfg.idle_timeout;
        let request_timeout = self.shared.cfg.request_timeout;
        for idx in 0..self.slots.len() {
            let Some(session) = self.slots.get_mut(idx).and_then(Option::as_mut) else {
                continue;
            };
            if session.queue.is_empty()
                && session.flushed()
                && !session.read_closed
                && session.last_activity.elapsed() > idle_timeout
            {
                // Idle: close quietly, like the threaded loop.
                ServerStats::bump(&self.shared.stats.sessions_reaped, 1);
                self.close(idx);
                continue;
            }
            if !request_timeout.is_zero() {
                let mut timed_out = 0usize;
                for entry in session.queue.iter_mut() {
                    if let Entry::Pending { at, .. } = entry {
                        if at.elapsed() > request_timeout {
                            // Never dispatched, so an error answer is
                            // safe — nothing executed.
                            *entry = Entry::Ready {
                                resp: Box::new(Reply::Wire(WireResponse::server_error(
                                    E_TIMEOUT,
                                    format!("request queued for over {request_timeout:?}"),
                                ))),
                                is_request: true,
                            };
                            timed_out += 1;
                        }
                    }
                }
                if timed_out > 0 {
                    self.pending_total -= timed_out;
                    self.progress(idx);
                }
            }
        }
    }

    /// Drain: stop reading everywhere; finished sessions get a
    /// `ShuttingDown` frame once their pipeline empties.
    fn begin_session_drain(&mut self) {
        for idx in 0..self.slots.len() {
            let Some(session) = self.slots.get_mut(idx).and_then(Option::as_mut) else {
                continue;
            };
            if session.read_closed {
                continue;
            }
            session.read_closed = true;
            session.queue.push_back(Entry::Ready {
                resp: Box::new(Reply::Wire(WireResponse::ShuttingDown)),
                is_request: false,
            });
            self.progress(idx);
        }
    }
}

/// Where a request executes.
enum Kind {
    /// Answered by the reactor itself (cheap, never blocks).
    Inline,
    /// Read pool: published-snapshot evaluation.
    Read,
    /// Write thread: serialized through the single writer.
    Write,
}

fn classify(req: &WireRequest) -> Kind {
    match req {
        WireRequest::Ping | WireRequest::Stats | WireRequest::Shutdown => Kind::Inline,
        WireRequest::Query { .. } | WireRequest::DumpUniverse => Kind::Read,
        WireRequest::Execute { .. } | WireRequest::Update { .. } | WireRequest::RefreshViews => {
            Kind::Write
        }
    }
}

/// Appends one `[len][crc][payload]` frame to a byte buffer.
fn push_frame(out: &mut Vec<u8>, payload: &[u8]) {
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32c(payload).to_le_bytes());
    out.extend_from_slice(payload);
}
