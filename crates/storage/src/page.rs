//! On-disk page formats for the paged storage engine.
//!
//! The page file (`pages.idb`) is an array of fixed 4 KiB pages accessed
//! through [`crate::Vfs::read_at`] / [`crate::Vfs::write_at`]. Four page
//! kinds exist:
//!
//! * **meta** — pages 0 and 1 are alternating meta slots. A commit writes
//!   the new roots into slot `(epoch + 1) % 2`; recovery picks the valid
//!   slot with the higher epoch. This is the shadow-paging commit point:
//!   until the meta write is durable, every page the transaction wrote is
//!   unreachable garbage and a crash recovers the previous state exactly.
//! * **B-tree leaf / inner** — slotted pages holding sorted byte-string
//!   cells (see [`crate::btree`]).
//! * **heap** — slotted pages holding blob segments (see [`crate::heap`]).
//!
//! Every non-meta page carries a CRC-32C over its content and the LSN of
//! the commit that wrote it. Parents reference children as
//! [`PageRef`]`{pid, lsn}` pairs; a fetch validates the stored LSN against
//! the reference, so a lost page write (a lying disk acknowledging a write
//! it dropped) surfaces as a fail-closed error instead of silently serving
//! a stale page — the page-level analogue of the op-log's recovery-gap
//! check.
//!
//! ## Slotted layout
//!
//! ```text
//! byte 0        kind (META=1, LEAF=2, INNER=3, HEAP=4)
//! byte 1        unused
//! bytes 2..4    slot count, u16 LE
//! bytes 4..8    CRC-32C (over bytes 0..4 ++ 8..4096 with this field zero)
//! bytes 8..16   LSN of the writing commit, u64 LE
//! bytes 16..18  cell-area start (grows down), u16 LE
//! bytes 18..20  unused
//! bytes 20..    slot directory: per slot, offset u16 + len u16
//! ...cells grow down from byte 4096
//! ```
//!
//! Cells are kept in slot order (the B-tree keeps them key-sorted);
//! removal leaves a hole that in-page compaction reclaims on demand.

use crate::crc::crc32c;
use crate::error::{StorageError, StorageResult};

/// Page size in bytes. Everything in the page file is aligned to this.
pub const PAGE_SIZE: usize = 4096;

/// Logical page number (byte offset = `pid * PAGE_SIZE`).
pub type PageId = u64;

/// Meta slot A lives in page 0, slot B in page 1.
pub const META_SLOTS: u64 = 2;

/// Page kind tags (byte 0).
pub const KIND_META: u8 = 1;
/// B-tree leaf page.
pub const KIND_LEAF: u8 = 2;
/// B-tree inner page.
pub const KIND_INNER: u8 = 3;
/// Heap (blob segment) page.
pub const KIND_HEAP: u8 = 4;

const HEADER: usize = 20;
const SLOT: usize = 4;

/// Bytes available for cells and slot entries on a fresh page.
pub const CAPACITY: usize = PAGE_SIZE - HEADER;

/// Per-cell bookkeeping cost: every cell also consumes one slot entry.
pub const CELL_OVERHEAD: usize = SLOT;

/// A checked reference to a page: the id plus the LSN its content must
/// carry. Catching a mismatch is how lost page writes fail closed.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub struct PageRef {
    /// Page number; `0` means "no page" (pages 0/1 are meta, so a real
    /// data page never has pid < 2).
    pub pid: PageId,
    /// LSN the page header must match.
    pub lsn: u64,
}

impl PageRef {
    /// The null reference (empty tree / absent page).
    pub const NULL: PageRef = PageRef { pid: 0, lsn: 0 };

    /// Whether this reference points at an actual page.
    pub fn is_some(&self) -> bool {
        self.pid != 0
    }
}

/// A reference to a heap blob: head segment plus total byte length.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub struct BlobRef {
    /// Page holding the head segment.
    pub pid: PageId,
    /// Slot of the head segment within that page.
    pub slot: u16,
    /// LSN the head page must carry.
    pub lsn: u64,
    /// Total blob length in bytes (across all segments).
    pub len: u64,
}

fn corrupt(what: impl std::fmt::Display) -> StorageError {
    StorageError::Persist(format!("page file corruption: {what}"))
}

/// A freshly initialised empty page of `kind` stamped with `lsn`.
pub fn init(kind: u8, lsn: u64) -> Vec<u8> {
    let mut p = vec![0u8; PAGE_SIZE];
    p[0] = kind;
    p[8..16].copy_from_slice(&lsn.to_le_bytes());
    p[16..18].copy_from_slice(&(PAGE_SIZE as u16).to_le_bytes());
    p
}

/// The page's kind byte.
pub fn kind(p: &[u8]) -> u8 {
    p[0]
}

/// The LSN of the commit that wrote this page.
pub fn lsn(p: &[u8]) -> u64 {
    u64::from_le_bytes(p[8..16].try_into().expect("8 bytes"))
}

/// Number of cells on the page.
pub fn count(p: &[u8]) -> usize {
    u16::from_le_bytes(p[2..4].try_into().expect("2 bytes")) as usize
}

fn cell_start(p: &[u8]) -> usize {
    u16::from_le_bytes(p[16..18].try_into().expect("2 bytes")) as usize
}

fn slot_at(p: &[u8], i: usize) -> (usize, usize) {
    let base = HEADER + i * SLOT;
    let off = u16::from_le_bytes(p[base..base + 2].try_into().expect("2 bytes")) as usize;
    let len = u16::from_le_bytes(p[base + 2..base + 4].try_into().expect("2 bytes")) as usize;
    (off, len)
}

/// The `i`-th cell's bytes.
pub fn cell(p: &[u8], i: usize) -> &[u8] {
    let (off, len) = slot_at(p, i);
    &p[off..off + len]
}

/// Bytes still free for new cells (after an implicit compaction).
pub fn free_space(p: &[u8]) -> usize {
    let n = count(p);
    let used: usize = (0..n).map(|i| slot_at(p, i).1).sum();
    PAGE_SIZE - HEADER - n * SLOT - used
}

/// Rewrites the page with its cells laid out contiguously (reclaims the
/// holes `remove`/`replace` leave behind).
fn compact(p: &mut [u8]) {
    let n = count(p);
    let cells: Vec<Vec<u8>> = (0..n).map(|i| cell(p, i).to_vec()).collect();
    let mut top = PAGE_SIZE;
    for (i, c) in cells.iter().enumerate() {
        top -= c.len();
        p[top..top + c.len()].copy_from_slice(c);
        let base = HEADER + i * SLOT;
        p[base..base + 2].copy_from_slice(&(top as u16).to_le_bytes());
        p[base + 2..base + 4].copy_from_slice(&(c.len() as u16).to_le_bytes());
    }
    p[16..18].copy_from_slice(&(top as u16).to_le_bytes());
}

/// Inserts `data` as the cell at index `i` (shifting later slots up).
/// Returns `false` — leaving the page untouched — when it cannot fit
/// even after compaction (the caller splits).
pub fn insert(p: &mut [u8], i: usize, data: &[u8]) -> bool {
    let n = count(p);
    debug_assert!(i <= n);
    let slots_end = HEADER + (n + 1) * SLOT;
    if free_space(p) < SLOT + data.len() {
        return false;
    }
    if cell_start(p).saturating_sub(slots_end) < data.len() {
        compact(p);
    }
    let top = cell_start(p) - data.len();
    p[top..top + data.len()].copy_from_slice(data);
    p[16..18].copy_from_slice(&(top as u16).to_le_bytes());
    // shift slots [i..n) up one place
    p.copy_within(HEADER + i * SLOT..HEADER + n * SLOT, HEADER + (i + 1) * SLOT);
    let base = HEADER + i * SLOT;
    p[base..base + 2].copy_from_slice(&(top as u16).to_le_bytes());
    p[base + 2..base + 4].copy_from_slice(&(data.len() as u16).to_le_bytes());
    p[2..4].copy_from_slice(&((n + 1) as u16).to_le_bytes());
    true
}

/// Removes the cell at index `i` (the hole is reclaimed lazily).
pub fn remove(p: &mut [u8], i: usize) {
    let n = count(p);
    debug_assert!(i < n);
    p.copy_within(HEADER + (i + 1) * SLOT..HEADER + n * SLOT, HEADER + i * SLOT);
    p[2..4].copy_from_slice(&((n - 1) as u16).to_le_bytes());
}

/// Replaces the cell at index `i` with `data`; `false` (page untouched)
/// when it cannot fit even counting the space the old cell gives back.
pub fn replace(p: &mut [u8], i: usize, data: &[u8]) -> bool {
    let (_, old_len) = slot_at(p, i);
    if free_space(p) + old_len < data.len() {
        return false;
    }
    remove(p, i);
    let ok = insert(p, i, data);
    debug_assert!(ok, "sized check above guarantees the insert fits");
    ok
}

/// Re-stamps the page LSN (shadow copies adopt the writing commit's LSN).
pub fn set_lsn(p: &mut [u8], lsn: u64) {
    p[8..16].copy_from_slice(&lsn.to_le_bytes());
}

fn checksum(p: &[u8]) -> u32 {
    let mut c = crc32c(&p[0..4]);
    c = crate::crc::crc32c_append(c, &p[8..]);
    c
}

/// Computes and stores the page CRC (call just before write-back).
pub fn seal(p: &mut [u8]) {
    let c = checksum(p);
    p[4..8].copy_from_slice(&c.to_le_bytes());
}

/// Verifies length, CRC and kind of a page fetched from disk.
pub fn verify(p: &[u8], pid: PageId) -> StorageResult<()> {
    if p.len() != PAGE_SIZE {
        return Err(corrupt(format!("page {pid} is {} bytes, want {PAGE_SIZE}", p.len())));
    }
    let want = u32::from_le_bytes(p[4..8].try_into().expect("4 bytes"));
    let got = checksum(p);
    if got != want {
        return Err(corrupt(format!("page {pid} checksum mismatch")));
    }
    if !matches!(p[0], KIND_META | KIND_LEAF | KIND_INNER | KIND_HEAP) {
        return Err(corrupt(format!("page {pid} has unknown kind {}", p[0])));
    }
    Ok(())
}

// ------------------------------------------------------------------- meta

/// Magic opening both meta slots.
pub const META_MAGIC: &[u8; 8] = b"IDLPAGE1";

/// The decoded content of a meta slot: everything recovery needs to find
/// the live tree.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub struct Meta {
    /// Commit counter; the valid slot with the higher epoch is live.
    pub epoch: u64,
    /// Op-log LSN this storage state covers.
    pub lsn: u64,
    /// Logical length of the page file, in pages.
    pub page_count: u64,
    /// Root of the catalog B-tree ([`PageRef::NULL`] = empty universe).
    pub catalog: PageRef,
    /// Maintenance-state blob (`pid == 0` = none).
    pub maintenance: BlobRef,
}

impl Meta {
    /// Encodes this meta into a sealed meta page.
    pub fn encode(&self) -> Vec<u8> {
        let mut p = vec![0u8; PAGE_SIZE];
        p[0..8].copy_from_slice(META_MAGIC);
        p[8..16].copy_from_slice(&self.epoch.to_le_bytes());
        p[16..24].copy_from_slice(&self.lsn.to_le_bytes());
        p[24..32].copy_from_slice(&self.page_count.to_le_bytes());
        p[32..40].copy_from_slice(&self.catalog.pid.to_le_bytes());
        p[40..48].copy_from_slice(&self.catalog.lsn.to_le_bytes());
        p[48..56].copy_from_slice(&self.maintenance.pid.to_le_bytes());
        p[56..58].copy_from_slice(&self.maintenance.slot.to_le_bytes());
        p[58..66].copy_from_slice(&self.maintenance.lsn.to_le_bytes());
        p[66..74].copy_from_slice(&self.maintenance.len.to_le_bytes());
        let crc = crc32c(&p[0..74]);
        p[74..78].copy_from_slice(&crc.to_le_bytes());
        p
    }

    /// Decodes a meta slot; `None` when the slot is invalid (never
    /// written, or torn by a crash mid-commit).
    pub fn decode(p: &[u8]) -> Option<Meta> {
        if p.len() < 78 || &p[0..8] != META_MAGIC {
            return None;
        }
        let want = u32::from_le_bytes(p[74..78].try_into().expect("4 bytes"));
        if crc32c(&p[0..74]) != want {
            return None;
        }
        let u = |r: std::ops::Range<usize>| u64::from_le_bytes(p[r].try_into().expect("8 bytes"));
        Some(Meta {
            epoch: u(8..16),
            lsn: u(16..24),
            page_count: u(24..32),
            catalog: PageRef { pid: u(32..40), lsn: u(40..48) },
            maintenance: BlobRef {
                pid: u(48..56),
                slot: u16::from_le_bytes(p[56..58].try_into().expect("2 bytes")),
                lsn: u(58..66),
                len: u(66..74),
            },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slotted_page_insert_remove_replace() {
        let mut p = init(KIND_LEAF, 7);
        assert_eq!(kind(&p), KIND_LEAF);
        assert_eq!(lsn(&p), 7);
        assert!(insert(&mut p, 0, b"bb"));
        assert!(insert(&mut p, 0, b"aa"));
        assert!(insert(&mut p, 2, b"cc"));
        assert_eq!(count(&p), 3);
        assert_eq!((cell(&p, 0), cell(&p, 1), cell(&p, 2)), (&b"aa"[..], &b"bb"[..], &b"cc"[..]));
        assert!(replace(&mut p, 1, b"BBBB"));
        assert_eq!(cell(&p, 1), b"BBBB");
        remove(&mut p, 0);
        assert_eq!(count(&p), 2);
        assert_eq!(cell(&p, 0), b"BBBB");
    }

    #[test]
    fn page_fills_then_rejects_then_compacts() {
        let mut p = init(KIND_LEAF, 1);
        let cell_bytes = vec![0xAB; 100];
        let mut n = 0;
        while insert(&mut p, n, &cell_bytes) {
            n += 1;
        }
        assert!(n >= 38, "a 4K page fits many 100B cells, got {n}");
        // freeing one makes room again (via compaction)
        remove(&mut p, 0);
        assert!(insert(&mut p, 0, &cell_bytes));
        assert!(!insert(&mut p, 0, &cell_bytes));
    }

    #[test]
    fn seal_verify_roundtrip_and_corruption() {
        let mut p = init(KIND_HEAP, 42);
        assert!(insert(&mut p, 0, b"payload"));
        seal(&mut p);
        verify(&p, 5).unwrap();
        assert_eq!(lsn(&p), 42);
        let mut broken = p.clone();
        broken[100] ^= 1;
        assert!(verify(&broken, 5).is_err());
        assert!(verify(&p[..100], 5).is_err(), "short page fails closed");
    }

    #[test]
    fn meta_roundtrip_and_torn_slot_rejected() {
        let m = Meta {
            epoch: 9,
            lsn: 1234,
            page_count: 77,
            catalog: PageRef { pid: 5, lsn: 1200 },
            maintenance: BlobRef { pid: 6, slot: 2, lsn: 1234, len: 999 },
        };
        let bytes = m.encode();
        assert_eq!(bytes.len(), PAGE_SIZE);
        assert_eq!(Meta::decode(&bytes), Some(m));
        for cut in [0, 40, 77] {
            let mut torn = bytes.clone();
            torn.truncate(cut);
            assert_eq!(Meta::decode(&torn), None);
        }
        let mut flipped = bytes.clone();
        flipped[20] ^= 1;
        assert_eq!(Meta::decode(&flipped), None);
    }
}
