//! Fixed-capacity buffer pool with SIEVE eviction, plus the [`Pager`] —
//! the shadow-paging transaction layer the paged storage engine runs on.
//!
//! ## The pool
//!
//! The pool caches up to `capacity` page frames keyed by [`PageId`].
//! Frames hold `Arc<Vec<u8>>`, so a read hands out a cheap clone that
//! stays valid after eviction, and an in-place update goes through
//! `Arc::make_mut` (copy-on-write only if a reader still holds the old
//! frame). Eviction is **SIEVE**: a clock hand sweeps frames, clearing
//! the `visited` bit of recently touched frames and evicting the first
//! unvisited one — scan-resistant like CLOCK but with the hand parked at
//! the eviction point rather than re-sweeping from the head.
//!
//! Evicting a **dirty** frame writes it back to the page file
//! immediately (sealed with its CRC) — this is safe *before* commit
//! because the engine shadow-pages: a dirty frame is always a freshly
//! allocated page that no durable meta references, so a crash after the
//! write-back just leaves unreachable bytes. Ordering against the op-log
//! is enforced at commit time, not write-back time: the meta flip that
//! makes those pages reachable happens only after the page file is
//! synced, and the op-log rotation happens only after the meta flip.
//!
//! ## The pager
//!
//! [`Pager`] owns the pool plus the shadow-paging bookkeeping: which
//! pids were freshly allocated by the open transaction (and may be
//! updated in place), the free list, and the pages freed by the open
//! transaction (reusable only after *commit*, because until the meta
//! flip the previous tree still needs them for crash fallback).

use std::collections::{BTreeSet, HashMap, VecDeque};
use std::path::PathBuf;
use std::sync::Arc;

use crate::error::{StorageError, StorageResult};
use crate::page::{self, PageId, PageRef, PAGE_SIZE};
use crate::vfs::Vfs;

/// Counters describing buffer-pool behaviour since open.
///
/// Cheap to copy; surfaced through `DurabilityStats` → `idl --stats` →
/// the server `Stats` frame.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BufferPoolStats {
    /// Page requests served from a resident frame.
    pub hits: u64,
    /// Page requests that had to read the page file.
    pub misses: u64,
    /// Frames evicted to make room.
    pub evictions: u64,
    /// Dirty frames written back to the page file at eviction time.
    pub dirty_writebacks: u64,
    /// Configured capacity, in pages.
    pub capacity: u64,
    /// Frames currently resident.
    pub resident: u64,
}

struct Frame {
    data: Arc<Vec<u8>>,
    dirty: bool,
    visited: bool,
}

/// Fixed-capacity page cache with SIEVE eviction over a [`Vfs`] page file.
pub struct BufferPool {
    vfs: Arc<dyn Vfs>,
    path: PathBuf,
    capacity: usize,
    frames: HashMap<PageId, Frame>,
    /// FIFO of resident pids; the SIEVE hand walks it from the front.
    order: VecDeque<PageId>,
    stats: BufferPoolStats,
}

fn io_err(what: &str, e: std::io::Error) -> StorageError {
    StorageError::Persist(format!("{what}: {e}"))
}

impl BufferPool {
    /// A pool of `capacity` frames over the page file at `path`.
    pub fn new(vfs: Arc<dyn Vfs>, path: PathBuf, capacity: usize) -> BufferPool {
        let capacity = capacity.max(1);
        BufferPool {
            vfs,
            path,
            capacity,
            frames: HashMap::new(),
            order: VecDeque::new(),
            stats: BufferPoolStats { capacity: capacity as u64, ..BufferPoolStats::default() },
        }
    }

    /// Current counters.
    pub fn stats(&self) -> BufferPoolStats {
        let mut s = self.stats;
        s.resident = self.frames.len() as u64;
        s
    }

    /// Fetches `pid`, reading (and CRC-verifying) from the page file on a
    /// miss. The returned `Arc` stays valid across later evictions.
    pub fn get(&mut self, pid: PageId) -> StorageResult<Arc<Vec<u8>>> {
        if let Some(f) = self.frames.get_mut(&pid) {
            f.visited = true;
            self.stats.hits += 1;
            return Ok(Arc::clone(&f.data));
        }
        self.stats.misses += 1;
        let bytes = self
            .vfs
            .read_at(&self.path, pid * PAGE_SIZE as u64, PAGE_SIZE)
            .map_err(|e| io_err("page read", e))?;
        page::verify(&bytes, pid)?;
        let data = Arc::new(bytes);
        self.admit(pid, Frame { data: Arc::clone(&data), dirty: false, visited: false })?;
        Ok(data)
    }

    /// Installs a brand-new dirty page (freshly allocated; not read from
    /// disk).
    pub fn put_new(&mut self, pid: PageId, data: Vec<u8>) -> StorageResult<()> {
        debug_assert_eq!(data.len(), PAGE_SIZE);
        self.admit(pid, Frame { data: Arc::new(data), dirty: true, visited: true })
    }

    /// Mutates a resident-or-fetched page in place and marks it dirty.
    /// Only valid for shadow pages (fresh this transaction).
    pub fn update(&mut self, pid: PageId, f: impl FnOnce(&mut Vec<u8>)) -> StorageResult<()> {
        if !self.frames.contains_key(&pid) {
            // evicted mid-transaction: reload the written-back copy
            self.get(pid)?;
        }
        let frame = self.frames.get_mut(&pid).expect("just admitted");
        f(Arc::make_mut(&mut frame.data));
        frame.dirty = true;
        frame.visited = true;
        Ok(())
    }

    /// Drops `pid` from the pool without write-back (freed pages).
    pub fn forget(&mut self, pid: PageId) {
        if self.frames.remove(&pid).is_some() {
            self.order.retain(|p| *p != pid);
        }
    }

    /// Seals and writes back every dirty frame (no sync; the caller
    /// orders the sync against the meta flip). Returns the number of
    /// pages written.
    pub fn flush(&mut self) -> StorageResult<u64> {
        let mut dirty: Vec<PageId> =
            self.frames.iter().filter(|(_, f)| f.dirty).map(|(pid, _)| *pid).collect();
        dirty.sort_unstable();
        let written = dirty.len() as u64;
        for pid in dirty {
            let frame = self.frames.get_mut(&pid).expect("listed above");
            let bytes = Arc::make_mut(&mut frame.data);
            page::seal(bytes);
            self.vfs
                .write_at(&self.path, pid * PAGE_SIZE as u64, bytes)
                .map_err(|e| io_err("page write", e))?;
            frame.dirty = false;
        }
        Ok(written)
    }

    /// Empties the pool (recovery discards all cached state).
    pub fn clear(&mut self) {
        self.frames.clear();
        self.order.clear();
    }

    fn admit(&mut self, pid: PageId, frame: Frame) -> StorageResult<()> {
        while self.frames.len() >= self.capacity {
            self.evict_one()?;
        }
        if self.frames.insert(pid, frame).is_none() {
            self.order.push_back(pid);
        }
        Ok(())
    }

    /// SIEVE: sweep from the hand (front of `order`), second-chancing
    /// visited frames, evicting the first unvisited one.
    fn evict_one(&mut self) -> StorageResult<()> {
        loop {
            let pid = self.order.pop_front().expect("pool non-empty when over capacity");
            let frame = self.frames.get_mut(&pid).expect("order tracks frames");
            if frame.visited {
                frame.visited = false;
                self.order.push_back(pid);
                continue;
            }
            if frame.dirty {
                let bytes = Arc::make_mut(&mut frame.data);
                page::seal(bytes);
                self.vfs
                    .write_at(&self.path, pid * PAGE_SIZE as u64, bytes)
                    .map_err(|e| io_err("page write-back", e))?;
                self.stats.dirty_writebacks += 1;
            }
            self.frames.remove(&pid);
            self.stats.evictions += 1;
            return Ok(());
        }
    }
}

/// The shadow-paging transaction layer: page allocation, fresh-page
/// tracking, lost-write checking, and the free list.
pub struct Pager {
    /// The pool (public so the engine can surface its stats).
    pool: BufferPool,
    /// Pages free for reuse.
    free: Vec<PageId>,
    /// Pages freed by the open transaction; move to `free` at commit,
    /// back to limbo-reachable on abort.
    pending_free: Vec<PageId>,
    /// Logical page-file length in pages (includes meta pages 0..2).
    page_count: u64,
    /// Pages allocated by the open transaction — these are shadow copies
    /// no durable meta references, so in-place update is safe.
    fresh: BTreeSet<PageId>,
    /// LSN stamped onto pages written by the open transaction.
    txn_lsn: u64,
}

impl Pager {
    /// A pager over `pool`, with the file currently `page_count` pages
    /// long and `free` reusable pages.
    pub fn new(pool: BufferPool, page_count: u64, free: Vec<PageId>) -> Pager {
        Pager {
            pool,
            free,
            pending_free: Vec::new(),
            page_count: page_count.max(page::META_SLOTS),
            fresh: BTreeSet::new(),
            txn_lsn: 0,
        }
    }

    /// Pool counters.
    pub fn pool_stats(&self) -> BufferPoolStats {
        self.pool.stats()
    }

    /// Logical page-file length, in pages.
    pub fn page_count(&self) -> u64 {
        self.page_count
    }

    /// Number of reusable pages on the free list.
    pub fn free_len(&self) -> usize {
        self.free.len()
    }

    /// Begins a transaction stamping new pages with `lsn`.
    pub fn begin(&mut self, lsn: u64) {
        self.txn_lsn = lsn;
        debug_assert!(self.fresh.is_empty() && self.pending_free.is_empty());
    }

    /// The LSN of the open transaction.
    pub fn txn_lsn(&self) -> u64 {
        self.txn_lsn
    }

    /// Whether `pid` was allocated by the open transaction (and may be
    /// updated in place).
    pub fn is_fresh(&self, pid: PageId) -> bool {
        self.fresh.contains(&pid)
    }

    /// Fetches a page without an LSN check (only for pages whose LSN the
    /// caller validates itself, e.g. fresh pages).
    pub fn get(&mut self, pid: PageId) -> StorageResult<Arc<Vec<u8>>> {
        self.pool.get(pid)
    }

    /// Fetches the page `r` references and fails closed if the on-disk
    /// LSN does not match — a lost page write would otherwise silently
    /// serve a stale tree.
    pub fn get_checked(&mut self, r: PageRef) -> StorageResult<Arc<Vec<u8>>> {
        let data = self.pool.get(r.pid)?;
        let got = page::lsn(&data);
        if got != r.lsn {
            return Err(StorageError::Persist(format!(
                "lost page write detected: page {} carries lsn {got}, reference expects {}",
                r.pid, r.lsn
            )));
        }
        Ok(data)
    }

    /// Allocates a page for the open transaction, preferring the free
    /// list, and installs `data` (stamped with the txn LSN) in the pool.
    pub fn alloc(&mut self, mut data: Vec<u8>) -> StorageResult<PageId> {
        let pid = match self.free.pop() {
            Some(pid) => pid,
            None => {
                let pid = self.page_count;
                self.page_count += 1;
                pid
            }
        };
        page::set_lsn(&mut data, self.txn_lsn);
        self.pool.put_new(pid, data)?;
        self.fresh.insert(pid);
        Ok(pid)
    }

    /// Marks `pid` as freed by the open transaction. Fresh pages return
    /// to the free list at once (they were never durable); pre-existing
    /// pages wait for commit, since the crash-fallback meta still
    /// references them.
    pub fn free_page(&mut self, pid: PageId) {
        if self.fresh.remove(&pid) {
            self.pool.forget(pid);
            self.free.push(pid);
        } else {
            self.pending_free.push(pid);
        }
    }

    /// Updates a fresh page in place (shadow pages only).
    pub fn update(&mut self, pid: PageId, f: impl FnOnce(&mut Vec<u8>)) -> StorageResult<()> {
        debug_assert!(self.fresh.contains(&pid), "in-place update of a non-shadow page");
        self.pool.update(pid, f)
    }

    /// Shadow-copies the page `r` references: frees the old page and
    /// returns a fresh pid holding a copy the caller may mutate.
    pub fn shadow(&mut self, r: PageRef) -> StorageResult<PageId> {
        if self.fresh.contains(&r.pid) {
            return Ok(r.pid);
        }
        let data = self.get_checked(r)?;
        let pid = self.alloc(data.as_ref().clone())?;
        self.pending_free.push(r.pid);
        Ok(pid)
    }

    /// Flushes all dirty frames without syncing (the `SyncPolicy::Never`
    /// write path). Returns the number of pages written.
    pub fn flush(&mut self) -> StorageResult<u64> {
        self.pool.flush()
    }

    /// Flushes all dirty frames and syncs the page file. After this the
    /// transaction's pages are durable (but unreachable until the caller
    /// commits the meta flip). Returns the number of pages written.
    pub fn flush_sync(&mut self, vfs: &dyn Vfs, path: &std::path::Path) -> StorageResult<u64> {
        let written = self.pool.flush()?;
        // An empty-universe commit writes no data pages (the catalog
        // root is `PageRef::NULL`), so on a fresh directory the page
        // file may not exist yet — it first materialises at the meta
        // write that follows, and there is nothing to make durable.
        if written == 0 && !vfs.exists(path) {
            return Ok(0);
        }
        vfs.sync_file(path).map_err(|e| io_err("page file sync", e))?;
        Ok(written)
    }

    /// Commit point (call after the meta flip is durable): pages the
    /// transaction freed become reusable, the fresh set resets.
    pub fn commit(&mut self) {
        for pid in self.pending_free.drain(..) {
            self.pool.forget(pid);
            self.free.push(pid);
        }
        self.fresh.clear();
    }

    /// Abort: fresh pages go back to the free list, pending frees are
    /// forgotten (the old tree keeps them), cached shadow frames drop.
    pub fn abort(&mut self) {
        for pid in std::mem::take(&mut self.fresh) {
            self.pool.forget(pid);
            self.free.push(pid);
        }
        self.pending_free.clear();
    }

    /// Resets the pager to recovered state: pool emptied, free list and
    /// page count replaced.
    pub fn reset(&mut self, page_count: u64, free: Vec<PageId>) {
        self.pool.clear();
        self.free = free;
        self.pending_free.clear();
        self.fresh.clear();
        self.page_count = page_count.max(page::META_SLOTS);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::page::{KIND_LEAF, KIND_META};
    use crate::vfs::{FaultPlan, SimVfs};
    use std::path::Path;

    fn pool(cap: usize) -> (Arc<SimVfs>, BufferPool) {
        let vfs = Arc::new(SimVfs::new(FaultPlan::none(7)));
        let p = BufferPool::new(vfs.clone() as Arc<dyn Vfs>, PathBuf::from("/db/pages.idb"), cap);
        (vfs, p)
    }

    fn sealed(kind: u8, lsn: u64, tag: u8) -> Vec<u8> {
        let mut p = page::init(kind, lsn);
        assert!(page::insert(&mut p, 0, &[tag; 8]));
        p
    }

    #[test]
    fn hits_misses_and_arc_survives_eviction() {
        let (vfs, mut pool) = pool(2);
        for pid in 2..6u64 {
            let mut bytes = sealed(KIND_LEAF, pid, pid as u8);
            page::seal(&mut bytes);
            vfs.write_at(Path::new("/db/pages.idb"), pid * PAGE_SIZE as u64, &bytes).unwrap();
        }
        let held = pool.get(2).unwrap();
        assert_eq!(pool.get(2).unwrap()[0], KIND_LEAF); // hit
        pool.get(3).unwrap();
        pool.get(4).unwrap(); // forces eviction
        pool.get(5).unwrap(); // forces eviction
        let s = pool.stats();
        assert_eq!(s.hits, 1);
        assert_eq!(s.misses, 4);
        assert!(s.evictions >= 2);
        assert!(s.resident <= 2);
        // the Arc handed out before eviction still reads fine
        assert_eq!(page::cell(&held, 0), &[2u8; 8]);
    }

    #[test]
    fn sieve_second_chances_visited_frames() {
        let (vfs, mut pool) = pool(2);
        for pid in 2..5u64 {
            let mut bytes = sealed(KIND_LEAF, pid, pid as u8);
            page::seal(&mut bytes);
            vfs.write_at(Path::new("/db/pages.idb"), pid * PAGE_SIZE as u64, &bytes).unwrap();
        }
        pool.get(2).unwrap();
        pool.get(3).unwrap();
        pool.get(2).unwrap(); // marks 2 visited
        pool.get(4).unwrap(); // evicts 3 (2 gets a second chance)
        assert!(pool.frames.contains_key(&2));
        assert!(!pool.frames.contains_key(&3));
    }

    #[test]
    fn dirty_eviction_writes_back_and_reload_verifies() {
        let (_vfs, mut pool) = pool(1);
        pool.put_new(2, sealed(KIND_LEAF, 1, 0xAA)).unwrap();
        pool.put_new(3, sealed(KIND_LEAF, 1, 0xBB)).unwrap(); // evicts 2 dirty
        let s = pool.stats();
        assert_eq!(s.dirty_writebacks, 1);
        // reading 2 back goes to disk and passes CRC verification
        let back = pool.get(2).unwrap();
        assert_eq!(page::cell(&back, 0), &[0xAA; 8]);
    }

    #[test]
    fn pager_shadow_alloc_free_cycle() {
        let (vfs, pool) = pool(8);
        let mut pager = Pager::new(pool, page::META_SLOTS, vec![]);
        pager.begin(10);
        let pid = pager.alloc(page::init(KIND_LEAF, 0)).unwrap();
        assert_eq!(pid, 2);
        assert!(pager.is_fresh(pid));
        pager.update(pid, |p| assert!(page::insert(p, 0, b"row"))).unwrap();
        pager.flush_sync(vfs.as_ref(), Path::new("/db/pages.idb")).unwrap();
        pager.commit();
        assert!(!pager.is_fresh(pid));

        // shadowing a committed page allocates a new pid and defers the free
        pager.begin(11);
        let r = PageRef { pid, lsn: 10 };
        let new_pid = pager.shadow(r).unwrap();
        assert_ne!(new_pid, pid);
        assert!(pager.is_fresh(new_pid));
        assert_eq!(pager.free_len(), 0, "old page not reusable before commit");
        pager.flush_sync(vfs.as_ref(), Path::new("/db/pages.idb")).unwrap();
        pager.commit();
        assert_eq!(pager.free_len(), 1, "old page reusable after commit");

        // lost-write detection: stale lsn in the reference fails closed
        let err = pager.get_checked(PageRef { pid: new_pid, lsn: 99 }).unwrap_err();
        assert!(format!("{err}").contains("lost page write"), "{err}");
    }

    #[test]
    fn pager_abort_returns_fresh_pages() {
        let (_vfs, pool) = pool(8);
        let mut pager = Pager::new(pool, page::META_SLOTS, vec![]);
        pager.begin(5);
        let a = pager.alloc(page::init(KIND_LEAF, 0)).unwrap();
        let b = pager.alloc(page::init(KIND_META, 0)).unwrap();
        assert_eq!(pager.page_count(), 4);
        pager.abort();
        assert_eq!(pager.free_len(), 2);
        pager.begin(6);
        let c = pager.alloc(page::init(KIND_LEAF, 0)).unwrap();
        assert!(c == a || c == b, "aborted pages are reused");
        assert_eq!(pager.page_count(), 4, "no growth when the free list serves");
    }
}
