//! # `idl-storage` — the multidatabase storage substrate
//!
//! The paper assumes a collection of autonomous relational databases and
//! models them as one *universe tuple* (§3). This crate is the substrate
//! that plays the role of those DBMSs for the reproduction: an embedded,
//! in-memory multidatabase engine holding the universe as an
//! [`idl_object::Value`], wrapped with the services a real engine provides:
//!
//! * a **catalog** (databases, relations, cardinalities) — [`store::Store`];
//! * **secondary indexes** on relation attributes, maintained lazily across
//!   arbitrary universe mutations — [`index`];
//! * per-attribute **statistics** for the evaluator's planner — [`stats`];
//! * **transactions** with snapshot-based rollback — [`txn`];
//! * a coarse **change journal** driving incremental view refresh —
//!   [`journal`];
//! * **persistence** as JSON snapshots — [`persist`] — written with the
//!   crash-safe write→fsync→rename→fsync(dir) discipline;
//! * a **virtual file system** — [`vfs`] — routing all durability I/O so
//!   it can run against the real disk or a deterministic fault-injecting
//!   simulation ([`vfs::SimVfs`]);
//! * checksummed **operation-log framing** — [`oplog`] — whose recovery
//!   scan truncates torn tails instead of failing or replaying garbage.
//!
//! Because IDL updates may restructure *any* part of the universe (delete
//! an attribute of one tuple, drop a whole relation by deleting a database
//! attribute — §5.2, §7.1), indexes and statistics are invalidated at
//! relation granularity on every mutation that touches a relation's
//! subtree, and rebuilt on demand.

#![warn(missing_docs)]

pub mod btree;
pub mod buffer_pool;
pub mod codec;
pub mod crc;
pub mod engine;
pub mod error;
pub mod heap;
pub mod index;
pub mod journal;
pub mod oplog;
pub mod page;
pub mod persist;
pub mod schema;
pub mod session;
pub mod stats;
pub mod store;
pub mod txn;
pub mod vfs;

pub use buffer_pool::BufferPoolStats;
pub use engine::{CommitSeal, MemStorage, PagedStorage, StorageEngine, StorageSpec};
pub use error::StorageError;
pub use index::IndexKind;
pub use journal::{ChangeRecord, ChangeScope};
pub use oplog::{DurabilityStats, LogFormat};
pub use schema::{RelationSchema, SchemaSet, TypeTag};
pub use session::Session;
pub use store::{Store, Version};
pub use vfs::{FaultPlan, RealVfs, SimVfs, Vfs, VfsStats};
