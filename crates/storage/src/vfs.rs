//! Virtual file system for durability I/O.
//!
//! Everything the durability layer does to disk — snapshot temp files,
//! renames, operation-log appends, fsyncs — goes through the [`Vfs`]
//! trait, so the same code path runs against the real file system
//! ([`RealVfs`]) and against a deterministic in-memory simulation
//! ([`SimVfs`]) with seeded fault injection:
//!
//! * **torn writes** — at a crash point, an in-flight write survives only
//!   a seeded byte prefix;
//! * **dropped fsyncs** — a lying disk: `sync_file` reports success
//!   without making the data durable;
//! * **rename-before-sync reordering** — a rename can become durable
//!   while unsynced file content is lost, and an unsynced rename can be
//!   undone by a crash;
//! * **short reads** — a read returns a strict prefix of the file;
//! * **ENOSPC** — a write fails midway with a seeded partial application.
//!
//! The simulation models files as inodes with a *live* view (what the
//! running process sees) and a *durable* view (what survives a power
//! cycle): data promotes from live to durable on `sync_file`, directory
//! entries promote on `sync_dir`. [`SimVfs::power_cycle`] computes the
//! post-crash state — unsynced directory operations each survive by a
//! seeded coin flip (modelling metadata reordering) and unsynced file
//! bytes survive as a seeded prefix (modelling torn sector writes).
//! Truncations ([`Vfs::set_len`]) are treated as immediately durable, a
//! deliberate simplification (they are only used for tail repair).
//!
//! Fault schedules are described by a [`FaultPlan`], which serialises to
//! and from a one-line `key=value` string so a failing test can print an
//! exact repro (see `tests/crash_recovery.rs`).

use parking_lot::Mutex;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::io;
use std::path::{Path, PathBuf};
use std::str::FromStr;
use std::sync::atomic::{AtomicU64, Ordering};

/// Operation counters a VFS keeps (diagnostics; the bench and the crash
/// harness read them).
#[derive(Clone, Copy, Default, Debug, PartialEq, Eq)]
pub struct VfsStats {
    /// Whole-file reads.
    pub reads: u64,
    /// Whole-file (create/truncate) writes.
    pub writes: u64,
    /// Appends.
    pub appends: u64,
    /// Random-access reads (`read_at`; the page file's read path).
    pub preads: u64,
    /// Random-access writes (`write_at`; the page file's write path).
    pub pwrites: u64,
    /// File syncs that were honoured.
    pub file_syncs: u64,
    /// File syncs silently dropped by fault injection.
    pub dropped_syncs: u64,
    /// Directory syncs.
    pub dir_syncs: u64,
    /// Renames.
    pub renames: u64,
    /// File removals.
    pub removes: u64,
    /// Truncations.
    pub truncates: u64,
    /// Payload bytes handed to `write`/`append`.
    pub bytes_written: u64,
}

/// The file-system operations durability code is allowed to use.
///
/// Deliberately path-based (no open handles): every operation names the
/// file it touches, which keeps the simulated crash semantics exact and
/// the recovery code free of hidden state.
pub trait Vfs: Send + Sync {
    /// Reads the entire file.
    fn read(&self, path: &Path) -> io::Result<Vec<u8>>;
    /// Creates or truncates `path` and writes `data`.
    fn write(&self, path: &Path, data: &[u8]) -> io::Result<()>;
    /// Appends `data` to `path`, creating it if absent.
    fn append(&self, path: &Path, data: &[u8]) -> io::Result<()>;
    /// Reads up to `len` bytes at byte offset `off`. Returns fewer bytes
    /// only where the file ends early — callers that require the full
    /// range (the page cache) treat a short result as corruption. The
    /// default is a whole-file read plus a slice; backends with real
    /// random access override it.
    fn read_at(&self, path: &Path, off: u64, len: usize) -> io::Result<Vec<u8>> {
        let data = self.read(path)?;
        let start = (off as usize).min(data.len());
        let end = start.saturating_add(len).min(data.len());
        Ok(data[start..end].to_vec())
    }
    /// Writes `data` at byte offset `off`, creating the file if absent
    /// and extending it with zeros when `off` lies past the end. Like
    /// every other write, not durable until `sync_file` — and under a
    /// crash the range may apply fully, as a torn prefix, or not at all
    /// (see [`SimVfs`]). The default is read-modify-rewrite; backends
    /// with real random access override it.
    fn write_at(&self, path: &Path, off: u64, data: &[u8]) -> io::Result<()> {
        let mut cur = if self.exists(path) { self.read(path)? } else { Vec::new() };
        let off = off as usize;
        let end = off + data.len();
        if cur.len() < end {
            cur.resize(end, 0);
        }
        cur[off..end].copy_from_slice(data);
        self.write(path, &cur)
    }
    /// Forces file content to stable storage (`fsync`).
    fn sync_file(&self, path: &Path) -> io::Result<()>;
    /// Forces directory entries to stable storage (`fsync` on the dir).
    fn sync_dir(&self, path: &Path) -> io::Result<()>;
    /// Atomically renames `from` to `to` (replacing `to`).
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()>;
    /// Removes a file.
    fn remove_file(&self, path: &Path) -> io::Result<()>;
    /// Truncates (or extends with zeros) to `len` bytes.
    fn set_len(&self, path: &Path, len: u64) -> io::Result<()>;
    /// Current length of the file.
    fn file_len(&self, path: &Path) -> io::Result<u64>;
    /// Whether a file or directory exists.
    fn exists(&self, path: &Path) -> bool;
    /// Creates a directory and its ancestors.
    fn create_dir_all(&self, path: &Path) -> io::Result<()>;
    /// Files (not directories) directly inside `path`.
    fn list_dir(&self, path: &Path) -> io::Result<Vec<PathBuf>>;
    /// Operation counters so far.
    fn stats(&self) -> VfsStats {
        VfsStats::default()
    }
}

// ---------------------------------------------------------------- RealVfs

/// The real file system, with the full fsync discipline.
#[derive(Default)]
pub struct RealVfs {
    reads: AtomicU64,
    writes: AtomicU64,
    appends: AtomicU64,
    preads: AtomicU64,
    pwrites: AtomicU64,
    file_syncs: AtomicU64,
    dir_syncs: AtomicU64,
    renames: AtomicU64,
    removes: AtomicU64,
    truncates: AtomicU64,
    bytes_written: AtomicU64,
}

impl RealVfs {
    /// A fresh real-FS handle (counters at zero).
    pub fn new() -> Self {
        Self::default()
    }
}

impl Vfs for RealVfs {
    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        self.reads.fetch_add(1, Ordering::Relaxed);
        std::fs::read(path)
    }

    fn write(&self, path: &Path, data: &[u8]) -> io::Result<()> {
        self.writes.fetch_add(1, Ordering::Relaxed);
        self.bytes_written.fetch_add(data.len() as u64, Ordering::Relaxed);
        std::fs::write(path, data)
    }

    fn append(&self, path: &Path, data: &[u8]) -> io::Result<()> {
        use std::io::Write;
        self.appends.fetch_add(1, Ordering::Relaxed);
        self.bytes_written.fetch_add(data.len() as u64, Ordering::Relaxed);
        let mut f = std::fs::OpenOptions::new().create(true).append(true).open(path)?;
        f.write_all(data)
    }

    fn read_at(&self, path: &Path, off: u64, len: usize) -> io::Result<Vec<u8>> {
        use std::io::{Read, Seek, SeekFrom};
        self.preads.fetch_add(1, Ordering::Relaxed);
        let mut f = std::fs::File::open(path)?;
        f.seek(SeekFrom::Start(off))?;
        let mut buf = vec![0u8; len];
        let mut filled = 0;
        while filled < len {
            let n = f.read(&mut buf[filled..])?;
            if n == 0 {
                break;
            }
            filled += n;
        }
        buf.truncate(filled);
        Ok(buf)
    }

    fn write_at(&self, path: &Path, off: u64, data: &[u8]) -> io::Result<()> {
        use std::io::{Seek, SeekFrom, Write};
        self.pwrites.fetch_add(1, Ordering::Relaxed);
        self.bytes_written.fetch_add(data.len() as u64, Ordering::Relaxed);
        // positional write: the rest of the file must survive
        let mut f =
            std::fs::OpenOptions::new().write(true).create(true).truncate(false).open(path)?;
        f.seek(SeekFrom::Start(off))?;
        f.write_all(data)
    }

    fn sync_file(&self, path: &Path) -> io::Result<()> {
        self.file_syncs.fetch_add(1, Ordering::Relaxed);
        std::fs::OpenOptions::new().read(true).open(path)?.sync_all()
    }

    fn sync_dir(&self, path: &Path) -> io::Result<()> {
        self.dir_syncs.fetch_add(1, Ordering::Relaxed);
        // Opening a directory read-only and fsyncing it is the POSIX way to
        // make renames durable; on platforms where that fails (e.g.
        // Windows), degrade to a no-op.
        match std::fs::File::open(path) {
            Ok(d) => match d.sync_all() {
                Ok(()) => Ok(()),
                Err(_) => Ok(()),
            },
            Err(_) => Ok(()),
        }
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        self.renames.fetch_add(1, Ordering::Relaxed);
        std::fs::rename(from, to)
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        self.removes.fetch_add(1, Ordering::Relaxed);
        std::fs::remove_file(path)
    }

    fn set_len(&self, path: &Path, len: u64) -> io::Result<()> {
        self.truncates.fetch_add(1, Ordering::Relaxed);
        let f = std::fs::OpenOptions::new().write(true).open(path)?;
        f.set_len(len)?;
        f.sync_all()
    }

    fn file_len(&self, path: &Path) -> io::Result<u64> {
        Ok(std::fs::metadata(path)?.len())
    }

    fn exists(&self, path: &Path) -> bool {
        path.exists()
    }

    fn create_dir_all(&self, path: &Path) -> io::Result<()> {
        std::fs::create_dir_all(path)
    }

    fn list_dir(&self, path: &Path) -> io::Result<Vec<PathBuf>> {
        let mut out = Vec::new();
        for entry in std::fs::read_dir(path)? {
            let entry = entry?;
            if entry.file_type()?.is_file() {
                out.push(entry.path());
            }
        }
        out.sort();
        Ok(out)
    }

    fn stats(&self) -> VfsStats {
        VfsStats {
            reads: self.reads.load(Ordering::Relaxed),
            writes: self.writes.load(Ordering::Relaxed),
            appends: self.appends.load(Ordering::Relaxed),
            preads: self.preads.load(Ordering::Relaxed),
            pwrites: self.pwrites.load(Ordering::Relaxed),
            file_syncs: self.file_syncs.load(Ordering::Relaxed),
            dropped_syncs: 0,
            dir_syncs: self.dir_syncs.load(Ordering::Relaxed),
            renames: self.renames.load(Ordering::Relaxed),
            removes: self.removes.load(Ordering::Relaxed),
            truncates: self.truncates.load(Ordering::Relaxed),
            bytes_written: self.bytes_written.load(Ordering::Relaxed),
        }
    }
}

// --------------------------------------------------------------- FaultPlan

/// A deterministic fault schedule for [`SimVfs`].
///
/// Operation indices are 1-based and count every I/O operation the VFS
/// performs (reads, writes, appends, syncs, renames, removes, truncates),
/// in order. All randomness (torn-write lengths, surviving-rename coins,
/// dropped-fsync choices) derives from `seed` alone, so a plan replays
/// identically. `Display` and `FromStr` round-trip through a one-line
/// `key=value,key=value` form used in failure messages.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct FaultPlan {
    /// Seed for every random draw the simulation makes.
    pub seed: u64,
    /// Power failure at this operation (the op partially applies, then
    /// every subsequent op fails until [`SimVfs::power_cycle`]).
    pub crash_at: Option<u64>,
    /// This write/append fails with `ENOSPC` after a seeded partial
    /// application (non-write ops at this index are unaffected).
    pub enospc_at: Option<u64>,
    /// This read returns a strict prefix of the file.
    pub short_read_at: Option<u64>,
    /// Each `sync_file` is silently dropped with probability `1/n`
    /// (a lying disk).
    pub drop_fsync_one_in: Option<u64>,
}

impl FaultPlan {
    /// A plan with no faults: fully reliable, but still deterministic.
    pub fn none(seed: u64) -> Self {
        FaultPlan {
            seed,
            crash_at: None,
            enospc_at: None,
            short_read_at: None,
            drop_fsync_one_in: None,
        }
    }

    /// This plan with a power failure at op `op` (1-based).
    pub fn with_crash_at(mut self, op: u64) -> Self {
        self.crash_at = Some(op);
        self
    }

    /// This plan with `ENOSPC` injected at op `op` (1-based).
    pub fn with_enospc_at(mut self, op: u64) -> Self {
        self.enospc_at = Some(op);
        self
    }

    /// This plan with a short read at op `op` (1-based).
    pub fn with_short_read_at(mut self, op: u64) -> Self {
        self.short_read_at = Some(op);
        self
    }

    /// This plan dropping each fsync with probability `1/n`.
    pub fn with_drop_fsync_one_in(mut self, n: u64) -> Self {
        self.drop_fsync_one_in = Some(n.max(1));
        self
    }
}

impl fmt::Display for FaultPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "seed={}", self.seed)?;
        if let Some(v) = self.crash_at {
            write!(f, ",crash_at={v}")?;
        }
        if let Some(v) = self.enospc_at {
            write!(f, ",enospc_at={v}")?;
        }
        if let Some(v) = self.short_read_at {
            write!(f, ",short_read_at={v}")?;
        }
        if let Some(v) = self.drop_fsync_one_in {
            write!(f, ",drop_fsync_one_in={v}")?;
        }
        Ok(())
    }
}

impl FromStr for FaultPlan {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, String> {
        let mut plan = FaultPlan::none(0);
        let mut saw_seed = false;
        for part in s.split(',') {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            let (key, value) =
                part.split_once('=').ok_or_else(|| format!("expected key=value, got {part:?}"))?;
            let value: u64 = value.trim().parse().map_err(|_| format!("bad value in {part:?}"))?;
            match key.trim() {
                "seed" => {
                    plan.seed = value;
                    saw_seed = true;
                }
                "crash_at" => plan.crash_at = Some(value),
                "enospc_at" => plan.enospc_at = Some(value),
                "short_read_at" => plan.short_read_at = Some(value),
                "drop_fsync_one_in" => plan.drop_fsync_one_in = Some(value.max(1)),
                other => return Err(format!("unknown fault key {other:?}")),
            }
        }
        if !saw_seed {
            return Err("fault plan needs at least seed=N".into());
        }
        Ok(plan)
    }
}

// ----------------------------------------------------------------- SimVfs

/// SplitMix64: a tiny, platform-independent deterministic generator, so
/// the storage crate needs no RNG dependency and schedules replay
/// bit-identically everywhere.
#[derive(Clone, Debug)]
struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw in `0..n` (`0` when `n == 0`).
    fn below(&mut self, n: u64) -> u64 {
        if n == 0 {
            0
        } else {
            self.next() % n
        }
    }
}

#[derive(Clone, Debug)]
struct Inode {
    /// What the running process reads.
    data: Vec<u8>,
    /// What survives a power cycle (content as of the last honoured sync).
    durable: Vec<u8>,
    /// `(offset, len)` of every `write_at` range since the last honoured
    /// sync, in issue order. Non-empty switches the inode's power-cycle
    /// model from whole-file append/overwrite heuristics to per-range
    /// application: each range independently survives fully, as a torn
    /// prefix, or not at all (sector-granularity page writes can land in
    /// any order). Whole-file `write`/`append` resets this — an inode is
    /// either in the streaming model or the paged model, never both.
    unsynced: Vec<(u64, u64)>,
}

/// A pending (unsynced) directory-namespace operation.
#[derive(Clone, Debug)]
enum DirOp {
    Link { path: PathBuf, ino: u64 },
    Unlink { path: PathBuf },
    Rename { from: PathBuf, to: PathBuf, ino: u64 },
}

impl DirOp {
    fn dir(&self) -> Option<&Path> {
        match self {
            DirOp::Link { path, .. } | DirOp::Unlink { path } => path.parent(),
            DirOp::Rename { to, .. } => to.parent(),
        }
    }
}

struct SimState {
    plan: FaultPlan,
    rng: SplitMix64,
    ops: u64,
    crashed: bool,
    next_ino: u64,
    inodes: BTreeMap<u64, Inode>,
    live: BTreeMap<PathBuf, u64>,
    durable_ns: BTreeMap<PathBuf, u64>,
    pending: Vec<DirOp>,
    dirs: BTreeSet<PathBuf>,
    stats: VfsStats,
}

/// Deterministic in-memory file system with seeded fault injection (see
/// the module docs for the fault model).
pub struct SimVfs {
    state: Mutex<SimState>,
}

/// What the fault schedule says about the current operation.
enum Tick {
    Ok,
    Crash,
    Enospc,
    ShortRead,
    DropSync,
}

impl SimVfs {
    /// A fresh simulated file system following `plan`.
    pub fn new(plan: FaultPlan) -> Self {
        SimVfs {
            state: Mutex::new(SimState {
                plan,
                rng: SplitMix64(plan.seed),
                ops: 0,
                crashed: false,
                next_ino: 1,
                inodes: BTreeMap::new(),
                live: BTreeMap::new(),
                durable_ns: BTreeMap::new(),
                pending: Vec::new(),
                dirs: BTreeSet::new(),
                stats: VfsStats::default(),
            }),
        }
    }

    /// The plan this instance follows.
    pub fn plan(&self) -> FaultPlan {
        self.state.lock().plan
    }

    /// Total counted operations so far (the domain of `crash_at`).
    pub fn op_count(&self) -> u64 {
        self.state.lock().ops
    }

    /// Whether a simulated power failure has occurred (all I/O fails until
    /// [`SimVfs::power_cycle`]).
    pub fn crashed(&self) -> bool {
        self.state.lock().crashed
    }

    /// Simulates the machine coming back up after a power failure: every
    /// unsynced directory operation survives by a seeded coin flip, every
    /// inode's unsynced bytes survive as a seeded prefix, and the live
    /// state is reset to exactly what is durable. Clears the crashed flag;
    /// the fault schedule does **not** restart (each fault fires once).
    pub fn power_cycle(&self) {
        let mut s = self.state.lock();
        let pending = std::mem::take(&mut s.pending);
        for op in pending {
            if s.rng.below(2) == 0 {
                continue; // this metadata op never reached the disk
            }
            match op {
                DirOp::Link { path, ino } => {
                    s.durable_ns.insert(path, ino);
                }
                DirOp::Unlink { path } => {
                    s.durable_ns.remove(&path);
                }
                DirOp::Rename { from, to, ino } => {
                    s.durable_ns.remove(&from);
                    s.durable_ns.insert(to, ino);
                }
            }
        }
        let inos: Vec<u64> = s.inodes.keys().copied().collect();
        for ino in inos {
            let (data, durable, unsynced) = {
                let inode = &s.inodes[&ino];
                (inode.data.clone(), inode.durable.clone(), inode.unsynced.clone())
            };
            let surviving = if !unsynced.is_empty() {
                // Paged model: start from the durable image and apply each
                // unsynced range by an independent seeded draw — lost
                // entirely, a torn prefix, or fully applied. The applied
                // bytes come from the live view, which holds every range
                // already written (overlaps resolve to the newest write,
                // as reordered sector flushes legitimately may).
                let mut v = durable.clone();
                for &(off, len) in &unsynced {
                    let keep = match s.rng.below(3) {
                        0 => 0,
                        1 => s.rng.below(len + 1),
                        _ => len,
                    } as usize;
                    if keep == 0 {
                        continue;
                    }
                    let off = off as usize;
                    let end = (off + keep).min(data.len());
                    if end <= off {
                        continue;
                    }
                    if v.len() < end {
                        v.resize(end, 0);
                    }
                    v[off..end].copy_from_slice(&data[off..end]);
                }
                v
            } else if data.len() >= durable.len() && data[..durable.len()] == durable[..] {
                // pure append since the last sync: a prefix of the
                // unsynced suffix survives (torn write)
                let unsynced = (data.len() - durable.len()) as u64;
                let keep = s.rng.below(unsynced + 1) as usize;
                let mut v = durable.clone();
                v.extend_from_slice(&data[durable.len()..durable.len() + keep]);
                v
            } else if s.rng.below(2) == 0 {
                // in-place overwrite: old durable content survives...
                durable.clone()
            } else {
                // ...or a torn prefix of the new content does
                let keep = s.rng.below(data.len() as u64 + 1) as usize;
                data[..keep].to_vec()
            };
            let inode = s.inodes.get_mut(&ino).expect("inode exists");
            inode.data = surviving.clone();
            inode.durable = surviving;
            inode.unsynced.clear();
        }
        s.live = s.durable_ns.clone();
        s.crashed = false;
    }

    /// The live content of every file (test introspection).
    pub fn dump(&self) -> BTreeMap<PathBuf, Vec<u8>> {
        let s = self.state.lock();
        s.live.iter().map(|(p, ino)| (p.clone(), s.inodes[ino].data.clone())).collect()
    }

    fn crash_error(s: &SimState) -> io::Error {
        io::Error::other(format!("simulated power failure at op {} (plan: {})", s.ops, s.plan))
    }

    /// Advances the op counter and consults the fault schedule.
    fn tick(s: &mut SimState, is_write: bool, is_read: bool, is_sync: bool) -> io::Result<Tick> {
        if s.crashed {
            return Err(io::Error::other(format!(
                "simulated crash: I/O after power failure (plan: {})",
                s.plan
            )));
        }
        s.ops += 1;
        if s.plan.crash_at == Some(s.ops) {
            return Ok(Tick::Crash);
        }
        if is_write && s.plan.enospc_at == Some(s.ops) {
            return Ok(Tick::Enospc);
        }
        if is_read && s.plan.short_read_at == Some(s.ops) {
            return Ok(Tick::ShortRead);
        }
        if is_sync {
            if let Some(n) = s.plan.drop_fsync_one_in {
                if s.rng.below(n) == 0 {
                    return Ok(Tick::DropSync);
                }
            }
        }
        Ok(Tick::Ok)
    }

    /// Applies a seeded prefix of `data` to the inode bound at `path`
    /// (creating the binding when needed), used for torn/ENOSPC writes.
    fn partial_apply(s: &mut SimState, path: &Path, data: &[u8], append: bool) {
        let keep = s.rng.below(data.len() as u64 + 1) as usize;
        let partial = &data[..keep];
        Self::apply_write(s, path, partial, append);
    }

    fn apply_write(s: &mut SimState, path: &Path, data: &[u8], append: bool) {
        if let Some(&ino) = s.live.get(path) {
            let inode = s.inodes.get_mut(&ino).expect("bound inode exists");
            if append {
                inode.data.extend_from_slice(data);
            } else {
                inode.data = data.to_vec();
            }
            inode.unsynced.clear();
        } else {
            let ino = s.next_ino;
            s.next_ino += 1;
            s.inodes.insert(
                ino,
                Inode { data: data.to_vec(), durable: Vec::new(), unsynced: Vec::new() },
            );
            s.live.insert(path.to_path_buf(), ino);
            s.pending.push(DirOp::Link { path: path.to_path_buf(), ino });
        }
    }

    /// Applies a `write_at` range to the inode bound at `path` (creating
    /// the binding when needed) and records it as unsynced.
    fn apply_write_at(s: &mut SimState, path: &Path, off: u64, data: &[u8]) {
        if data.is_empty() {
            return;
        }
        let ino = match s.live.get(path) {
            Some(&ino) => ino,
            None => {
                let ino = s.next_ino;
                s.next_ino += 1;
                s.inodes.insert(
                    ino,
                    Inode { data: Vec::new(), durable: Vec::new(), unsynced: Vec::new() },
                );
                s.live.insert(path.to_path_buf(), ino);
                s.pending.push(DirOp::Link { path: path.to_path_buf(), ino });
                ino
            }
        };
        let inode = s.inodes.get_mut(&ino).expect("bound inode exists");
        let off = off as usize;
        let end = off + data.len();
        if inode.data.len() < end {
            inode.data.resize(end, 0);
        }
        inode.data[off..end].copy_from_slice(data);
        inode.unsynced.push((off as u64, data.len() as u64));
    }

    /// Applies a seeded prefix of a `write_at` range (torn page write).
    fn partial_apply_at(s: &mut SimState, path: &Path, off: u64, data: &[u8]) {
        let keep = s.rng.below(data.len() as u64 + 1) as usize;
        Self::apply_write_at(s, path, off, &data[..keep]);
    }

    fn not_found(path: &Path) -> io::Error {
        io::Error::new(io::ErrorKind::NotFound, format!("no such file: {}", path.display()))
    }
}

impl Vfs for SimVfs {
    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        let mut s = self.state.lock();
        let tick = Self::tick(&mut s, false, true, false)?;
        if matches!(tick, Tick::Crash) {
            s.crashed = true;
            return Err(Self::crash_error(&s));
        }
        s.stats.reads += 1;
        let ino = *s.live.get(path).ok_or_else(|| Self::not_found(path))?;
        let data = s.inodes[&ino].data.clone();
        if matches!(tick, Tick::ShortRead) {
            let keep = s.rng.below(data.len() as u64) as usize;
            return Ok(data[..keep].to_vec());
        }
        Ok(data)
    }

    fn write(&self, path: &Path, data: &[u8]) -> io::Result<()> {
        let mut s = self.state.lock();
        let tick = Self::tick(&mut s, true, false, false)?;
        match tick {
            Tick::Crash => {
                Self::partial_apply(&mut s, path, data, false);
                s.crashed = true;
                Err(Self::crash_error(&s))
            }
            Tick::Enospc => {
                Self::partial_apply(&mut s, path, data, false);
                Err(io::Error::new(io::ErrorKind::StorageFull, "simulated ENOSPC"))
            }
            _ => {
                s.stats.writes += 1;
                s.stats.bytes_written += data.len() as u64;
                Self::apply_write(&mut s, path, data, false);
                Ok(())
            }
        }
    }

    fn append(&self, path: &Path, data: &[u8]) -> io::Result<()> {
        let mut s = self.state.lock();
        let tick = Self::tick(&mut s, true, false, false)?;
        match tick {
            Tick::Crash => {
                Self::partial_apply(&mut s, path, data, true);
                s.crashed = true;
                Err(Self::crash_error(&s))
            }
            Tick::Enospc => {
                Self::partial_apply(&mut s, path, data, true);
                Err(io::Error::new(io::ErrorKind::StorageFull, "simulated ENOSPC"))
            }
            _ => {
                s.stats.appends += 1;
                s.stats.bytes_written += data.len() as u64;
                Self::apply_write(&mut s, path, data, true);
                Ok(())
            }
        }
    }

    fn read_at(&self, path: &Path, off: u64, len: usize) -> io::Result<Vec<u8>> {
        let mut s = self.state.lock();
        let tick = Self::tick(&mut s, false, true, false)?;
        if matches!(tick, Tick::Crash) {
            s.crashed = true;
            return Err(Self::crash_error(&s));
        }
        s.stats.preads += 1;
        let ino = *s.live.get(path).ok_or_else(|| Self::not_found(path))?;
        let data = &s.inodes[&ino].data;
        let start = (off as usize).min(data.len());
        let end = start.saturating_add(len).min(data.len());
        let mut out = data[start..end].to_vec();
        if matches!(tick, Tick::ShortRead) {
            let keep = s.rng.below(out.len() as u64) as usize;
            out.truncate(keep);
        }
        Ok(out)
    }

    fn write_at(&self, path: &Path, off: u64, data: &[u8]) -> io::Result<()> {
        let mut s = self.state.lock();
        let tick = Self::tick(&mut s, true, false, false)?;
        match tick {
            Tick::Crash => {
                Self::partial_apply_at(&mut s, path, off, data);
                s.crashed = true;
                Err(Self::crash_error(&s))
            }
            Tick::Enospc => {
                Self::partial_apply_at(&mut s, path, off, data);
                Err(io::Error::new(io::ErrorKind::StorageFull, "simulated ENOSPC"))
            }
            _ => {
                s.stats.pwrites += 1;
                s.stats.bytes_written += data.len() as u64;
                Self::apply_write_at(&mut s, path, off, data);
                Ok(())
            }
        }
    }

    fn sync_file(&self, path: &Path) -> io::Result<()> {
        let mut s = self.state.lock();
        let tick = Self::tick(&mut s, false, false, true)?;
        match tick {
            Tick::Crash => {
                s.crashed = true;
                Err(Self::crash_error(&s))
            }
            Tick::DropSync => {
                // lying disk: report success, promote nothing
                s.stats.dropped_syncs += 1;
                Ok(())
            }
            _ => {
                s.stats.file_syncs += 1;
                let ino = *s.live.get(path).ok_or_else(|| Self::not_found(path))?;
                let inode = s.inodes.get_mut(&ino).expect("bound inode exists");
                inode.durable = inode.data.clone();
                inode.unsynced.clear();
                Ok(())
            }
        }
    }

    fn sync_dir(&self, path: &Path) -> io::Result<()> {
        let mut s = self.state.lock();
        let tick = Self::tick(&mut s, false, false, false)?;
        if matches!(tick, Tick::Crash) {
            s.crashed = true;
            return Err(Self::crash_error(&s));
        }
        s.stats.dir_syncs += 1;
        let (applies, keeps): (Vec<DirOp>, Vec<DirOp>) =
            std::mem::take(&mut s.pending).into_iter().partition(|op| op.dir() == Some(path));
        s.pending = keeps;
        for op in applies {
            match op {
                DirOp::Link { path, ino } => {
                    s.durable_ns.insert(path, ino);
                }
                DirOp::Unlink { path } => {
                    s.durable_ns.remove(&path);
                }
                DirOp::Rename { from, to, ino } => {
                    s.durable_ns.remove(&from);
                    s.durable_ns.insert(to, ino);
                }
            }
        }
        Ok(())
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        let mut s = self.state.lock();
        let tick = Self::tick(&mut s, false, false, false)?;
        if matches!(tick, Tick::Crash) {
            s.crashed = true;
            return Err(Self::crash_error(&s));
        }
        s.stats.renames += 1;
        let ino = s.live.remove(from).ok_or_else(|| Self::not_found(from))?;
        s.live.insert(to.to_path_buf(), ino);
        s.pending.push(DirOp::Rename { from: from.to_path_buf(), to: to.to_path_buf(), ino });
        Ok(())
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        let mut s = self.state.lock();
        let tick = Self::tick(&mut s, false, false, false)?;
        if matches!(tick, Tick::Crash) {
            s.crashed = true;
            return Err(Self::crash_error(&s));
        }
        s.stats.removes += 1;
        s.live.remove(path).ok_or_else(|| Self::not_found(path))?;
        s.pending.push(DirOp::Unlink { path: path.to_path_buf() });
        Ok(())
    }

    fn set_len(&self, path: &Path, len: u64) -> io::Result<()> {
        let mut s = self.state.lock();
        let tick = Self::tick(&mut s, false, false, false)?;
        if matches!(tick, Tick::Crash) {
            s.crashed = true;
            return Err(Self::crash_error(&s));
        }
        s.stats.truncates += 1;
        let ino = *s.live.get(path).ok_or_else(|| Self::not_found(path))?;
        let inode = s.inodes.get_mut(&ino).expect("bound inode exists");
        let len = len as usize;
        inode.data.resize(len, 0);
        // Truncation is modelled as immediately durable (see module docs):
        // it is only used for torn-tail repair, where the conservative
        // alternative (resurrecting truncated bytes) would re-repair to
        // the same state anyway.
        inode.durable.resize(len.min(inode.durable.len()), 0);
        // Unsynced ranges past the new end can no longer survive.
        let cap = len as u64;
        inode.unsynced.retain_mut(|(off, rlen)| {
            if *off >= cap {
                return false;
            }
            *rlen = (*rlen).min(cap - *off);
            true
        });
        Ok(())
    }

    fn file_len(&self, path: &Path) -> io::Result<u64> {
        let s = self.state.lock();
        if s.crashed {
            return Err(io::Error::other("simulated crash: I/O after power failure"));
        }
        let ino = *s.live.get(path).ok_or_else(|| Self::not_found(path))?;
        Ok(s.inodes[&ino].data.len() as u64)
    }

    fn exists(&self, path: &Path) -> bool {
        let s = self.state.lock();
        s.live.contains_key(path) || s.dirs.contains(path)
    }

    fn create_dir_all(&self, path: &Path) -> io::Result<()> {
        let mut s = self.state.lock();
        if s.crashed {
            return Err(io::Error::other("simulated crash: I/O after power failure"));
        }
        let mut p = path;
        loop {
            s.dirs.insert(p.to_path_buf());
            match p.parent() {
                Some(parent) if parent != Path::new("") => p = parent,
                _ => break,
            }
        }
        Ok(())
    }

    fn list_dir(&self, path: &Path) -> io::Result<Vec<PathBuf>> {
        let s = self.state.lock();
        if s.crashed {
            return Err(io::Error::other("simulated crash: I/O after power failure"));
        }
        Ok(s.live.keys().filter(|p| p.parent() == Some(path)).cloned().collect())
    }

    fn stats(&self) -> VfsStats {
        self.state.lock().stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn p(s: &str) -> PathBuf {
        PathBuf::from(s)
    }

    #[test]
    fn real_vfs_roundtrip_and_counters() {
        let dir = std::env::temp_dir().join(format!("idl-vfs-{}", std::process::id()));
        let vfs = RealVfs::new();
        vfs.create_dir_all(&dir).unwrap();
        let f = dir.join("a.bin");
        vfs.write(&f, b"hello").unwrap();
        vfs.append(&f, b" world").unwrap();
        vfs.sync_file(&f).unwrap();
        vfs.sync_dir(&dir).unwrap();
        assert_eq!(vfs.read(&f).unwrap(), b"hello world");
        assert_eq!(vfs.file_len(&f).unwrap(), 11);
        let g = dir.join("b.bin");
        vfs.rename(&f, &g).unwrap();
        assert!(!vfs.exists(&f));
        assert!(vfs.list_dir(&dir).unwrap().contains(&g));
        vfs.set_len(&g, 5).unwrap();
        assert_eq!(vfs.read(&g).unwrap(), b"hello");
        vfs.remove_file(&g).unwrap();
        let st = vfs.stats();
        assert_eq!((st.writes, st.appends, st.renames, st.removes), (1, 1, 1, 1));
        assert_eq!(st.bytes_written, 11);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn sim_basic_semantics_match_a_real_fs() {
        let vfs = SimVfs::new(FaultPlan::none(1));
        let dir = p("/d");
        vfs.create_dir_all(&dir).unwrap();
        let f = dir.join("a");
        assert!(vfs.read(&f).is_err());
        vfs.write(&f, b"one").unwrap();
        vfs.append(&f, b"two").unwrap();
        assert_eq!(vfs.read(&f).unwrap(), b"onetwo");
        assert_eq!(vfs.file_len(&f).unwrap(), 6);
        let g = dir.join("b");
        vfs.rename(&f, &g).unwrap();
        assert!(!vfs.exists(&f));
        assert_eq!(vfs.read(&g).unwrap(), b"onetwo");
        assert_eq!(vfs.list_dir(&dir).unwrap(), vec![g.clone()]);
        vfs.set_len(&g, 3).unwrap();
        assert_eq!(vfs.read(&g).unwrap(), b"one");
        vfs.remove_file(&g).unwrap();
        assert!(!vfs.exists(&g));
    }

    #[test]
    fn synced_data_survives_a_power_cycle() {
        let vfs = SimVfs::new(FaultPlan::none(7));
        let f = p("/d/log");
        vfs.append(&f, b"rec1").unwrap();
        vfs.sync_file(&f).unwrap();
        vfs.sync_dir(&p("/d")).unwrap();
        vfs.append(&f, b"rec2").unwrap(); // never synced
        vfs.power_cycle();
        let survived = vfs.read(&f).unwrap();
        assert!(survived.starts_with(b"rec1"), "synced prefix intact: {survived:?}");
        assert!(survived.len() <= 8, "unsynced suffix at most torn in: {survived:?}");
    }

    #[test]
    fn unsynced_file_may_vanish_entirely() {
        // Never synced, never dir-synced: some seed drops the file.
        let mut vanished = false;
        for seed in 0..32 {
            let vfs = SimVfs::new(FaultPlan::none(seed));
            let f = p("/d/x");
            vfs.write(&f, b"data").unwrap();
            vfs.power_cycle();
            if !vfs.exists(&f) {
                vanished = true;
                break;
            }
        }
        assert!(vanished, "an unsynced create should sometimes not survive");
    }

    #[test]
    fn crash_at_append_tears_the_write() {
        let plan = FaultPlan::none(3).with_crash_at(2);
        let vfs = SimVfs::new(plan);
        let f = p("/d/log");
        vfs.append(&f, b"first").unwrap();
        vfs.sync_file(&f).unwrap_err(); // op 2: power failure
        assert!(vfs.crashed());
        // all I/O now fails
        assert!(vfs.read(&f).is_err());
        assert!(vfs.append(&f, b"x").is_err());
        vfs.power_cycle();
        assert!(!vfs.crashed());
        // nothing was ever synced; whatever survived is a prefix of "first"
        if vfs.exists(&f) {
            let data = vfs.read(&f).unwrap();
            assert!(b"first".starts_with(&data[..]), "{data:?}");
        }
    }

    #[test]
    fn dropped_fsync_keeps_data_volatile() {
        let plan = FaultPlan::none(11).with_drop_fsync_one_in(1); // drop every sync
        let vfs = SimVfs::new(plan);
        let f = p("/d/log");
        vfs.append(&f, b"payload").unwrap();
        vfs.sync_file(&f).unwrap(); // lies
        assert_eq!(vfs.stats().dropped_syncs, 1);
        assert_eq!(vfs.stats().file_syncs, 0);
        vfs.power_cycle();
        if vfs.exists(&f) {
            let data = vfs.read(&f).unwrap();
            assert!(b"payload".starts_with(&data[..]), "lying sync promoted nothing: {data:?}");
        }
    }

    #[test]
    fn enospc_applies_a_partial_write_then_fails() {
        let plan = FaultPlan::none(5).with_enospc_at(2);
        let vfs = SimVfs::new(plan);
        let f = p("/d/log");
        vfs.append(&f, b"good").unwrap();
        let err = vfs.append(&f, b"overflow").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::StorageFull);
        assert!(!vfs.crashed(), "ENOSPC is not a crash");
        let data = vfs.read(&f).unwrap();
        assert!(data.starts_with(b"good") && data.len() <= 12, "{data:?}");
        // the file system keeps working afterwards
        vfs.set_len(&f, 4).unwrap();
        vfs.append(&f, b"more").unwrap();
        assert_eq!(vfs.read(&f).unwrap(), b"goodmore");
    }

    #[test]
    fn short_read_returns_strict_prefix() {
        let plan = FaultPlan::none(9).with_short_read_at(2);
        let vfs = SimVfs::new(plan);
        let f = p("/d/snap");
        vfs.write(&f, b"0123456789").unwrap();
        let short = vfs.read(&f).unwrap();
        assert!(short.len() < 10, "strictly short: {short:?}");
        assert!(b"0123456789".starts_with(&short[..]));
        // next read is whole again
        assert_eq!(vfs.read(&f).unwrap(), b"0123456789");
    }

    #[test]
    fn rename_can_survive_while_unsynced_content_tears() {
        // write tmp (no file sync!) → rename → crash: if the rename
        // survived, the target may hold torn content — the exact hazard
        // the snapshot protocol's write→fsync→rename ordering prevents.
        let mut saw_torn_target = false;
        for seed in 0..64 {
            let vfs = SimVfs::new(FaultPlan::none(seed));
            let tmp = p("/d/snap.tmp");
            let dst = p("/d/snap");
            vfs.write(&tmp, b"full snapshot contents").unwrap();
            vfs.rename(&tmp, &dst).unwrap();
            vfs.power_cycle();
            if vfs.exists(&dst) {
                let data = vfs.read(&dst).unwrap();
                if data.len() < 22 {
                    saw_torn_target = true;
                    break;
                }
            }
        }
        assert!(saw_torn_target, "unsynced rename should sometimes expose torn content");
    }

    #[test]
    fn fsync_before_rename_guarantees_content() {
        // The full discipline: write → fsync(file) → rename → fsync(dir).
        // After any crash, the target either has the complete content or
        // does not exist (never torn).
        for seed in 0..64 {
            let vfs = SimVfs::new(FaultPlan::none(seed));
            let tmp = p("/d/snap.tmp");
            let dst = p("/d/snap");
            vfs.write(&tmp, b"full snapshot contents").unwrap();
            vfs.sync_file(&tmp).unwrap();
            vfs.rename(&tmp, &dst).unwrap();
            vfs.power_cycle(); // crash before the dir sync: rename is a coin flip
            if vfs.exists(&dst) {
                assert_eq!(vfs.read(&dst).unwrap(), b"full snapshot contents", "seed {seed}");
            }
        }
        // and with the dir sync, the rename always survives
        let vfs = SimVfs::new(FaultPlan::none(1234));
        vfs.write(&p("/d/snap.tmp"), b"x").unwrap();
        vfs.sync_file(&p("/d/snap.tmp")).unwrap();
        vfs.rename(&p("/d/snap.tmp"), &p("/d/snap")).unwrap();
        vfs.sync_dir(&p("/d")).unwrap();
        vfs.power_cycle();
        assert_eq!(vfs.read(&p("/d/snap")).unwrap(), b"x");
    }

    #[test]
    fn schedules_are_deterministic_per_seed() {
        let run = |seed: u64| {
            let vfs = SimVfs::new(FaultPlan::none(seed).with_crash_at(6));
            let f = p("/d/log");
            let mut acked = 0;
            for i in 0..10 {
                let rec = format!("record-{i:04}");
                if vfs.append(&f, rec.as_bytes()).is_err() {
                    break;
                }
                if vfs.sync_file(&f).is_err() {
                    break;
                }
                acked += 1;
            }
            vfs.power_cycle();
            (acked, vfs.dump())
        };
        let (a1, d1) = run(42);
        let (a2, d2) = run(42);
        assert_eq!(a1, a2);
        assert_eq!(d1, d2, "same seed → byte-identical post-crash state");
        let (_, d3) = run(43);
        // different seeds usually tear differently; equality would be a
        // (legal) coincidence, so only check determinism held above
        let _ = d3;
    }

    #[test]
    fn real_vfs_random_access_roundtrip() {
        let dir = std::env::temp_dir().join(format!("idl-vfs-ra-{}", std::process::id()));
        let vfs = RealVfs::new();
        vfs.create_dir_all(&dir).unwrap();
        let f = dir.join("pages.bin");
        // writing past EOF extends with zeros
        vfs.write_at(&f, 8, b"BBBB").unwrap();
        vfs.write_at(&f, 0, b"AAAA").unwrap();
        assert_eq!(vfs.read_at(&f, 0, 12).unwrap(), b"AAAA\0\0\0\0BBBB");
        assert_eq!(vfs.read_at(&f, 8, 4).unwrap(), b"BBBB");
        // a read past EOF comes back short, never errors
        assert_eq!(vfs.read_at(&f, 10, 8).unwrap(), b"BB");
        let st = vfs.stats();
        assert_eq!((st.preads, st.pwrites), (3, 2));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn sim_random_access_matches_real_semantics() {
        let vfs = SimVfs::new(FaultPlan::none(2));
        let f = p("/d/pages.bin");
        vfs.write_at(&f, 8, b"BBBB").unwrap();
        vfs.write_at(&f, 0, b"AAAA").unwrap();
        assert_eq!(vfs.read_at(&f, 0, 12).unwrap(), b"AAAA\0\0\0\0BBBB");
        assert_eq!(vfs.read_at(&f, 10, 8).unwrap(), b"BB");
        assert_eq!(vfs.file_len(&f).unwrap(), 12);
        let st = vfs.stats();
        assert_eq!((st.preads, st.pwrites), (2, 2));
    }

    #[test]
    fn synced_page_writes_survive_a_power_cycle() {
        let vfs = SimVfs::new(FaultPlan::none(17));
        let f = p("/d/pages.bin");
        vfs.write_at(&f, 0, &[0xAA; 64]).unwrap();
        vfs.write_at(&f, 64, &[0xBB; 64]).unwrap();
        vfs.sync_file(&f).unwrap();
        vfs.sync_dir(&p("/d")).unwrap();
        vfs.power_cycle();
        assert_eq!(vfs.read_at(&f, 0, 64).unwrap(), vec![0xAA; 64]);
        assert_eq!(vfs.read_at(&f, 64, 64).unwrap(), vec![0xBB; 64]);
    }

    #[test]
    fn unsynced_page_writes_tear_per_range() {
        // One synced base page, then two unsynced range writes. After the
        // cycle the synced page is intact, and each unsynced range holds
        // old bytes, new bytes, or a torn boundary between them — across
        // seeds all three outcomes appear for at least one range.
        let (mut lost, mut kept, mut torn) = (false, false, false);
        for seed in 0..64 {
            let vfs = SimVfs::new(FaultPlan::none(seed));
            let f = p("/d/pages.bin");
            vfs.write_at(&f, 0, &[0x11; 96]).unwrap();
            vfs.sync_file(&f).unwrap();
            vfs.sync_dir(&p("/d")).unwrap();
            vfs.write_at(&f, 32, &[0x22; 32]).unwrap();
            vfs.write_at(&f, 64, &[0x33; 32]).unwrap();
            vfs.power_cycle();
            let data = vfs.read(&f).unwrap();
            assert_eq!(&data[..32], &[0x11; 32], "synced page intact (seed {seed})");
            for (range, new) in [(32..64, 0x22u8), (64..96, 0x33u8)] {
                let slice = &data[range];
                if slice.iter().all(|&b| b == 0x11) {
                    lost = true;
                } else if slice.iter().all(|&b| b == new) {
                    kept = true;
                } else {
                    // a prefix of new bytes, then old bytes
                    let flip = slice.iter().position(|&b| b == 0x11).unwrap();
                    assert!(slice[..flip].iter().all(|&b| b == new), "seed {seed}");
                    assert!(slice[flip..].iter().all(|&b| b == 0x11), "seed {seed}");
                    torn = true;
                }
            }
        }
        assert!(lost && kept && torn, "lost={lost} kept={kept} torn={torn}");
    }

    #[test]
    fn page_write_schedules_are_deterministic_per_seed() {
        let run = |seed: u64| {
            let vfs = SimVfs::new(FaultPlan::none(seed).with_crash_at(5));
            let f = p("/d/pages.bin");
            for i in 0..8u64 {
                if vfs.write_at(&f, i * 16, &[i as u8; 16]).is_err() {
                    break;
                }
            }
            vfs.power_cycle();
            vfs.dump()
        };
        assert_eq!(run(99), run(99), "same seed → byte-identical post-crash pages");
    }

    #[test]
    fn fault_plan_serialises_for_one_line_repro() {
        let plan = FaultPlan::none(99)
            .with_crash_at(17)
            .with_enospc_at(3)
            .with_short_read_at(21)
            .with_drop_fsync_one_in(4);
        let line = plan.to_string();
        assert_eq!(line, "seed=99,crash_at=17,enospc_at=3,short_read_at=21,drop_fsync_one_in=4");
        let back: FaultPlan = line.parse().unwrap();
        assert_eq!(back, plan);
        // minimal form
        let minimal: FaultPlan = "seed=5".parse().unwrap();
        assert_eq!(minimal, FaultPlan::none(5));
        // errors are descriptive
        assert!("crash_at=1".parse::<FaultPlan>().is_err(), "seed required");
        assert!("seed=1,bogus=2".parse::<FaultPlan>().is_err());
        // the crash error message embeds the plan for copy-paste repro
        let vfs = SimVfs::new(FaultPlan::none(7).with_crash_at(1));
        let err = vfs.write(&p("/d/x"), b"y").unwrap_err();
        assert!(err.to_string().contains("seed=7,crash_at=1"), "{err}");
    }
}
