//! Per-relation statistics for the evaluator's planner.

use idl_object::{Name, SetObj, Value};
use std::collections::{BTreeMap, BTreeSet};

/// Summary statistics of one relation, computed from its current contents.
#[derive(Clone, Debug, PartialEq)]
pub struct RelStats {
    /// Number of tuples (distinct, since relations are sets).
    pub cardinality: usize,
    /// Per attribute: in how many tuples it occurs, and how many distinct
    /// values it takes. Heterogeneous relations make the occurrence count
    /// meaningful (≤ cardinality).
    pub attrs: BTreeMap<Name, AttrStats>,
}

/// Statistics of one attribute within a relation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AttrStats {
    /// Tuples in which the attribute occurs.
    pub occurrences: usize,
    /// Distinct values over those occurrences.
    pub distinct: usize,
}

impl RelStats {
    /// Computes statistics by a single pass over the relation.
    pub fn compute(rel: &SetObj) -> RelStats {
        let mut attrs: BTreeMap<Name, (usize, BTreeSet<&Value>)> = BTreeMap::new();
        for t in rel.iter() {
            if let Some(t) = t.as_tuple() {
                for (k, v) in t.iter() {
                    let e = attrs.entry(k.clone()).or_default();
                    e.0 += 1;
                    e.1.insert(v);
                }
            }
        }
        RelStats {
            cardinality: rel.len(),
            attrs: attrs
                .into_iter()
                .map(|(k, (occ, dv))| (k, AttrStats { occurrences: occ, distinct: dv.len() }))
                .collect(),
        }
    }

    /// Estimated selectivity of an equality probe on `attr`: expected
    /// fraction of tuples matched. Falls back to 1.0 for unknown attributes
    /// (no pruning assumed).
    pub fn eq_selectivity(&self, attr: &str) -> f64 {
        match self.attrs.get(attr) {
            Some(a) if a.distinct > 0 && self.cardinality > 0 => {
                (a.occurrences as f64 / a.distinct as f64) / self.cardinality as f64
            }
            _ => 1.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use idl_object::tuple;

    #[test]
    fn compute_counts() {
        let mut s = SetObj::new();
        s.insert(tuple! { a: 1i64, b: "x" });
        s.insert(tuple! { a: 2i64, b: "x" });
        s.insert(tuple! { a: 2i64 }); // heterogeneous: no b
        let st = RelStats::compute(&s);
        assert_eq!(st.cardinality, 3);
        assert_eq!(st.attrs["a"], AttrStats { occurrences: 3, distinct: 2 });
        assert_eq!(st.attrs["b"], AttrStats { occurrences: 2, distinct: 1 });
    }

    #[test]
    fn selectivity() {
        let mut s = SetObj::new();
        for i in 0..100i64 {
            s.insert(tuple! { id: i, grp: i % 4 });
        }
        let st = RelStats::compute(&s);
        let sel_id = st.eq_selectivity("id");
        let sel_grp = st.eq_selectivity("grp");
        assert!(sel_id < sel_grp, "unique attr is more selective");
        assert!((sel_id - 0.01).abs() < 1e-9);
        assert_eq!(st.eq_selectivity("missing"), 1.0);
    }

    #[test]
    fn non_tuple_elements_ignored() {
        let mut s = SetObj::new();
        s.insert(Value::int(5));
        s.insert(tuple! { a: 1i64 });
        let st = RelStats::compute(&s);
        assert_eq!(st.cardinality, 2);
        assert_eq!(st.attrs.len(), 1);
    }
}
