//! Copy-on-write B+tree over the [`Pager`].
//!
//! Keys and values are byte strings. Leaf cells are
//! `varint(klen) key varint(vlen) value`; inner cells are
//! `varint(klen) sepkey  pid:u64  lsn:u64`, where `sepkey` is a **lower
//! bound** on every key in the child. Lower-bound separators never need
//! updating when a child's minimum changes (a deletion can only raise the
//! minimum, which keeps the bound valid), which keeps the shadow-copy
//! write path small. Descent picks the last cell whose separator is
//! `<= key`, defaulting to the first.
//!
//! Every structural change **shadow-copies** the path from the touched
//! leaf to the root: modified pages move to freshly allocated pids, the
//! old pages are freed (deferred to commit), and the caller gets a new
//! root [`PageRef`]. Until the meta page is flipped to the new root, the
//! previous tree is untouched on disk — crash recovery is "read the old
//! meta".
//!
//! There is no merge/rebalance on deletion: emptied pages are freed and
//! unlinked, sparse pages persist until a full checkpoint rebuilds the
//! tree ([`bulk_build`]). That trades disk tightness for a simpler
//! crash-surface, matching the op-log's compact-on-checkpoint policy.

use crate::buffer_pool::Pager;
use crate::error::{StorageError, StorageResult};
use crate::page::{self, PageId, PageRef, KIND_INNER, KIND_LEAF};

/// Largest cell the tree accepts. Any two max-size cells must share a
/// page, so splits always succeed.
pub const MAX_CELL: usize = 2000;

fn corrupt(what: impl std::fmt::Display) -> StorageError {
    StorageError::Persist(format!("b-tree corruption: {what}"))
}

// ----------------------------------------------------------------- cells

fn put_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

fn get_varint(b: &[u8], pos: &mut usize) -> StorageResult<u64> {
    let mut v = 0u64;
    let mut shift = 0;
    loop {
        let byte = *b.get(*pos).ok_or_else(|| corrupt("truncated varint in cell"))?;
        *pos += 1;
        v |= ((byte & 0x7f) as u64) << shift;
        if byte & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
        if shift > 63 {
            return Err(corrupt("oversized varint in cell"));
        }
    }
}

fn leaf_cell(key: &[u8], val: &[u8]) -> Vec<u8> {
    let mut c = Vec::with_capacity(key.len() + val.len() + 4);
    put_varint(&mut c, key.len() as u64);
    c.extend_from_slice(key);
    put_varint(&mut c, val.len() as u64);
    c.extend_from_slice(val);
    c
}

fn decode_leaf(cell: &[u8]) -> StorageResult<(&[u8], &[u8])> {
    let mut pos = 0;
    let klen = get_varint(cell, &mut pos)? as usize;
    let key = cell.get(pos..pos + klen).ok_or_else(|| corrupt("leaf key overruns cell"))?;
    pos += klen;
    let vlen = get_varint(cell, &mut pos)? as usize;
    let val = cell.get(pos..pos + vlen).ok_or_else(|| corrupt("leaf value overruns cell"))?;
    Ok((key, val))
}

fn inner_cell(sep: &[u8], child: PageRef) -> Vec<u8> {
    let mut c = Vec::with_capacity(sep.len() + 20);
    put_varint(&mut c, sep.len() as u64);
    c.extend_from_slice(sep);
    c.extend_from_slice(&child.pid.to_le_bytes());
    c.extend_from_slice(&child.lsn.to_le_bytes());
    c
}

fn decode_inner(cell: &[u8]) -> StorageResult<(&[u8], PageRef)> {
    let mut pos = 0;
    let klen = get_varint(cell, &mut pos)? as usize;
    let sep = cell.get(pos..pos + klen).ok_or_else(|| corrupt("separator overruns cell"))?;
    pos += klen;
    let rest = cell.get(pos..pos + 16).ok_or_else(|| corrupt("child pointer overruns cell"))?;
    let pid = u64::from_le_bytes(rest[0..8].try_into().expect("8 bytes"));
    let lsn = u64::from_le_bytes(rest[8..16].try_into().expect("8 bytes"));
    Ok((sep, PageRef { pid, lsn }))
}

/// Binary search among leaf cells: `(index, exact_match)`.
fn leaf_search(p: &[u8], key: &[u8]) -> StorageResult<(usize, bool)> {
    let mut lo = 0;
    let mut hi = page::count(p);
    while lo < hi {
        let mid = (lo + hi) / 2;
        let (k, _) = decode_leaf(page::cell(p, mid))?;
        match k.cmp(key) {
            std::cmp::Ordering::Less => lo = mid + 1,
            std::cmp::Ordering::Equal => return Ok((mid, true)),
            std::cmp::Ordering::Greater => hi = mid,
        }
    }
    Ok((lo, false))
}

/// Index of the child to descend into: last separator `<= key`, min 0.
fn inner_search(p: &[u8], key: &[u8]) -> StorageResult<usize> {
    let mut lo = 0;
    let mut hi = page::count(p);
    while lo < hi {
        let mid = (lo + hi) / 2;
        let (sep, _) = decode_inner(page::cell(p, mid))?;
        if sep <= key {
            lo = mid + 1;
        } else {
            hi = mid;
        }
    }
    Ok(lo.saturating_sub(1))
}

// ---------------------------------------------------------------- lookup

/// Point lookup; `None` when the key is absent.
pub fn lookup(pager: &mut Pager, root: PageRef, key: &[u8]) -> StorageResult<Option<Vec<u8>>> {
    if !root.is_some() {
        return Ok(None);
    }
    let mut r = root;
    let mut depth = 0;
    loop {
        depth += 1;
        if depth > 64 {
            return Err(corrupt("descent deeper than 64 levels"));
        }
        let data = pager.get_checked(r)?;
        match page::kind(&data) {
            KIND_INNER => {
                let idx = inner_search(&data, key)?;
                let (_, child) = decode_inner(page::cell(&data, idx))?;
                r = child;
            }
            KIND_LEAF => {
                let (idx, found) = leaf_search(&data, key)?;
                if !found {
                    return Ok(None);
                }
                let (_, v) = decode_leaf(page::cell(&data, idx))?;
                return Ok(Some(v.to_vec()));
            }
            k => return Err(corrupt(format!("page {} has kind {k} inside a tree", r.pid))),
        }
    }
}

// ---------------------------------------------------------------- insert

enum Ins {
    Done(PageRef),
    /// `(left, right_min_key, right)` — the caller links both halves.
    Split(PageRef, Vec<u8>, PageRef),
}

/// All `(key, value)` pairs of a leaf page.
fn leaf_entries(p: &[u8]) -> StorageResult<Vec<(Vec<u8>, Vec<u8>)>> {
    (0..page::count(p))
        .map(|i| decode_leaf(page::cell(p, i)).map(|(k, v)| (k.to_vec(), v.to_vec())))
        .collect()
}

/// All `(sep, child)` pairs of an inner page.
fn inner_entries(p: &[u8]) -> StorageResult<Vec<(Vec<u8>, PageRef)>> {
    (0..page::count(p))
        .map(|i| decode_inner(page::cell(p, i)).map(|(s, c)| (s.to_vec(), c)))
        .collect()
}

/// Builds a page of `kind` from pre-encoded cells (must fit).
fn build_page(pager: &mut Pager, kind: u8, cells: &[Vec<u8>]) -> StorageResult<PageId> {
    let mut p = page::init(kind, 0);
    for (i, c) in cells.iter().enumerate() {
        if !page::insert(&mut p, i, c) {
            return Err(corrupt("split half does not fit a fresh page"));
        }
    }
    pager.alloc(p)
}

/// Splits `cells` at the most byte-balanced point where **both** halves
/// fit a fresh page (both non-empty). Such a point always exists: the
/// overflowing page held at most a page's worth of cells plus one more,
/// and every cell is capped well under half a page ([`MAX_CELL`]), so
/// the largest prefix that fits leaves a remainder that fits too.
fn split_point(cells: &[Vec<u8>]) -> usize {
    let cost = |c: &[u8]| page::CELL_OVERHEAD + c.len();
    let total: usize = cells.iter().map(|c| cost(c)).sum();
    let mut best = cells.len() / 2;
    let mut best_diff = usize::MAX;
    let mut left = 0;
    for at in 1..cells.len() {
        left += cost(&cells[at - 1]);
        let right = total - left;
        if left <= page::CAPACITY && right <= page::CAPACITY {
            let diff = left.abs_diff(right);
            if diff < best_diff {
                best = at;
                best_diff = diff;
            }
        }
    }
    best.clamp(1, cells.len() - 1)
}

fn insert_rec(pager: &mut Pager, r: PageRef, key: &[u8], val: &[u8]) -> StorageResult<Ins> {
    let data = pager.get_checked(r)?;
    let lsn = pager.txn_lsn();
    match page::kind(&data) {
        KIND_LEAF => {
            let (idx, found) = leaf_search(&data, key)?;
            let cell = leaf_cell(key, val);
            let pid = pager.shadow(r)?;
            let mut fit = false;
            pager.update(pid, |p| {
                fit =
                    if found { page::replace(p, idx, &cell) } else { page::insert(p, idx, &cell) };
            })?;
            if fit {
                return Ok(Ins::Done(PageRef { pid, lsn }));
            }
            // overflow: gather everything (with the new entry applied) and
            // rebuild as two halves
            let full = pager.get(pid)?;
            let mut entries = leaf_entries(&full)?;
            if found {
                entries[idx] = (key.to_vec(), val.to_vec());
            } else {
                entries.insert(idx, (key.to_vec(), val.to_vec()));
            }
            let cells: Vec<Vec<u8>> = entries.iter().map(|(k, v)| leaf_cell(k, v)).collect();
            let at = split_point(&cells);
            pager.free_page(pid);
            let left = build_page(pager, KIND_LEAF, &cells[..at])?;
            let right = build_page(pager, KIND_LEAF, &cells[at..])?;
            Ok(Ins::Split(
                PageRef { pid: left, lsn },
                entries[at].0.clone(),
                PageRef { pid: right, lsn },
            ))
        }
        KIND_INNER => {
            let idx = inner_search(&data, key)?;
            let (sep, child) = decode_inner(page::cell(&data, idx))?;
            let sep = sep.to_vec();
            drop(data);
            let res = insert_rec(pager, child, key, val)?;
            let pid = pager.shadow(r)?;
            match res {
                Ins::Done(c) => {
                    let cell = inner_cell(&sep, c);
                    let mut fit = false;
                    pager.update(pid, |p| fit = page::replace(p, idx, &cell))?;
                    debug_assert!(fit, "same-size child-pointer replace always fits");
                    Ok(Ins::Done(PageRef { pid, lsn }))
                }
                Ins::Split(l, rk, rr) => {
                    let lcell = inner_cell(&sep, l);
                    let rcell = inner_cell(&rk, rr);
                    let mut fit = false;
                    pager.update(pid, |p| {
                        let ok = page::replace(p, idx, &lcell);
                        debug_assert!(ok);
                        fit = page::insert(p, idx + 1, &rcell);
                    })?;
                    if fit {
                        return Ok(Ins::Done(PageRef { pid, lsn }));
                    }
                    let full = pager.get(pid)?;
                    let mut entries = inner_entries(&full)?;
                    entries.insert(idx + 1, (rk, rr));
                    let cells: Vec<Vec<u8>> =
                        entries.iter().map(|(s, c)| inner_cell(s, *c)).collect();
                    let at = split_point(&cells);
                    pager.free_page(pid);
                    let left = build_page(pager, KIND_INNER, &cells[..at])?;
                    let right = build_page(pager, KIND_INNER, &cells[at..])?;
                    Ok(Ins::Split(
                        PageRef { pid: left, lsn },
                        entries[at].0.clone(),
                        PageRef { pid: right, lsn },
                    ))
                }
            }
        }
        k => Err(corrupt(format!("page {} has kind {k} inside a tree", r.pid))),
    }
}

/// Inserts (or overwrites) `key` → `val`; returns the new root.
pub fn insert(pager: &mut Pager, root: PageRef, key: &[u8], val: &[u8]) -> StorageResult<PageRef> {
    if leaf_cell(key, val).len() > MAX_CELL {
        return Err(StorageError::Persist(format!(
            "b-tree entry of {} bytes exceeds the {MAX_CELL}-byte cell cap",
            key.len() + val.len()
        )));
    }
    let lsn = pager.txn_lsn();
    if !root.is_some() {
        let mut p = page::init(KIND_LEAF, 0);
        let ok = page::insert(&mut p, 0, &leaf_cell(key, val));
        debug_assert!(ok, "a single capped cell fits an empty page");
        let pid = pager.alloc(p)?;
        return Ok(PageRef { pid, lsn });
    }
    match insert_rec(pager, root, key, val)? {
        Ins::Done(r) => Ok(r),
        Ins::Split(l, rk, rr) => {
            // grow a new root; the left separator is the -inf lower bound
            let cells = vec![inner_cell(&[], l), inner_cell(&rk, rr)];
            let pid = build_page(pager, KIND_INNER, &cells)?;
            Ok(PageRef { pid, lsn })
        }
    }
}

// ---------------------------------------------------------------- remove

enum Rm {
    NotFound,
    Done(PageRef),
    /// The whole subtree emptied and was freed.
    Empty,
}

fn remove_rec(pager: &mut Pager, r: PageRef, key: &[u8]) -> StorageResult<Rm> {
    let data = pager.get_checked(r)?;
    let lsn = pager.txn_lsn();
    match page::kind(&data) {
        KIND_LEAF => {
            let (idx, found) = leaf_search(&data, key)?;
            if !found {
                return Ok(Rm::NotFound);
            }
            if page::count(&data) == 1 {
                pager.free_page(r.pid);
                return Ok(Rm::Empty);
            }
            let pid = pager.shadow(r)?;
            pager.update(pid, |p| page::remove(p, idx))?;
            Ok(Rm::Done(PageRef { pid, lsn }))
        }
        KIND_INNER => {
            let idx = inner_search(&data, key)?;
            let (sep, child) = decode_inner(page::cell(&data, idx))?;
            let sep = sep.to_vec();
            let n = page::count(&data);
            drop(data);
            match remove_rec(pager, child, key)? {
                Rm::NotFound => Ok(Rm::NotFound),
                Rm::Done(c) => {
                    let pid = pager.shadow(r)?;
                    let cell = inner_cell(&sep, c);
                    pager.update(pid, |p| {
                        let ok = page::replace(p, idx, &cell);
                        debug_assert!(ok);
                    })?;
                    Ok(Rm::Done(PageRef { pid, lsn }))
                }
                Rm::Empty => {
                    if n == 1 {
                        pager.free_page(r.pid);
                        return Ok(Rm::Empty);
                    }
                    let pid = pager.shadow(r)?;
                    pager.update(pid, |p| page::remove(p, idx))?;
                    Ok(Rm::Done(PageRef { pid, lsn }))
                }
            }
        }
        k => Err(corrupt(format!("page {} has kind {k} inside a tree", r.pid))),
    }
}

/// Removes `key`; returns `(new_root, removed)`. A root inner page left
/// with a single child collapses into that child.
pub fn remove(pager: &mut Pager, root: PageRef, key: &[u8]) -> StorageResult<(PageRef, bool)> {
    if !root.is_some() {
        return Ok((root, false));
    }
    match remove_rec(pager, root, key)? {
        Rm::NotFound => Ok((root, false)),
        Rm::Empty => Ok((PageRef::NULL, true)),
        Rm::Done(mut r) => {
            loop {
                let data = pager.get_checked(r)?;
                if page::kind(&data) == KIND_INNER && page::count(&data) == 1 {
                    let (_, child) = decode_inner(page::cell(&data, 0))?;
                    drop(data);
                    pager.free_page(r.pid);
                    r = child;
                } else {
                    break;
                }
            }
            Ok((r, true))
        }
    }
}

// ------------------------------------------------------------- traversal

/// In-order visit of every `(key, value)` pair.
pub fn for_each(
    pager: &mut Pager,
    root: PageRef,
    f: &mut impl FnMut(&[u8], &[u8]) -> StorageResult<()>,
) -> StorageResult<()> {
    if !root.is_some() {
        return Ok(());
    }
    let data = pager.get_checked(root)?;
    match page::kind(&data) {
        KIND_LEAF => {
            for i in 0..page::count(&data) {
                let (k, v) = decode_leaf(page::cell(&data, i))?;
                f(k, v)?;
            }
            Ok(())
        }
        KIND_INNER => {
            let children: Vec<PageRef> =
                inner_entries(&data)?.into_iter().map(|(_, c)| c).collect();
            drop(data);
            for c in children {
                for_each(pager, c, f)?;
            }
            Ok(())
        }
        k => Err(corrupt(format!("page {} has kind {k} inside a tree", root.pid))),
    }
}

/// All `(key, value)` pairs in key order.
pub fn iter_all(pager: &mut Pager, root: PageRef) -> StorageResult<Vec<(Vec<u8>, Vec<u8>)>> {
    let mut out = Vec::new();
    for_each(pager, root, &mut |k, v| {
        out.push((k.to_vec(), v.to_vec()));
        Ok(())
    })?;
    Ok(out)
}

/// Appends every page of the tree to `out` (reachability sweeps).
pub fn pages(pager: &mut Pager, root: PageRef, out: &mut Vec<PageId>) -> StorageResult<()> {
    if !root.is_some() {
        return Ok(());
    }
    out.push(root.pid);
    let data = pager.get_checked(root)?;
    if page::kind(&data) == KIND_INNER {
        let children: Vec<PageRef> = inner_entries(&data)?.into_iter().map(|(_, c)| c).collect();
        drop(data);
        for c in children {
            pages(pager, c, out)?;
        }
    }
    Ok(())
}

/// Frees every page of the tree (deferred to commit by the pager).
pub fn free_tree(pager: &mut Pager, root: PageRef) -> StorageResult<()> {
    let mut ps = Vec::new();
    pages(pager, root, &mut ps)?;
    for pid in ps {
        pager.free_page(pid);
    }
    Ok(())
}

// ------------------------------------------------------------ bulk build

/// Builds a tree from `items`, which must be sorted by key and free of
/// duplicates. Leaves pack full; checkpoints rebuilt this way are as
/// tight as the cell sizes allow.
pub fn bulk_build(pager: &mut Pager, items: &[(Vec<u8>, Vec<u8>)]) -> StorageResult<PageRef> {
    let lsn = pager.txn_lsn();
    if items.is_empty() {
        return Ok(PageRef::NULL);
    }
    debug_assert!(items.windows(2).all(|w| w[0].0 < w[1].0), "bulk_build input must be sorted");
    // leaves
    let mut level: Vec<(Vec<u8>, PageRef)> = Vec::new();
    let mut p = page::init(KIND_LEAF, 0);
    let mut first: Option<Vec<u8>> = None;
    for (k, v) in items {
        let cell = leaf_cell(k, v);
        if cell.len() > MAX_CELL {
            return Err(StorageError::Persist(format!(
                "b-tree entry of {} bytes exceeds the {MAX_CELL}-byte cell cap",
                k.len() + v.len()
            )));
        }
        let n = page::count(&p);
        if !page::insert(&mut p, n, &cell) {
            let pid = pager.alloc(std::mem::replace(&mut p, page::init(KIND_LEAF, 0)))?;
            level.push((first.take().expect("page non-empty"), PageRef { pid, lsn }));
            let ok = page::insert(&mut p, 0, &cell);
            debug_assert!(ok);
        }
        if first.is_none() {
            first = Some(k.clone());
        }
    }
    let pid = pager.alloc(p)?;
    level.push((first.expect("items non-empty"), PageRef { pid, lsn }));
    // inner levels
    while level.len() > 1 {
        let mut next: Vec<(Vec<u8>, PageRef)> = Vec::new();
        let mut p = page::init(KIND_INNER, 0);
        let mut first: Option<Vec<u8>> = None;
        for (sep, child) in &level {
            let cell = inner_cell(sep, *child);
            let n = page::count(&p);
            if !page::insert(&mut p, n, &cell) {
                let pid = pager.alloc(std::mem::replace(&mut p, page::init(KIND_INNER, 0)))?;
                next.push((first.take().expect("page non-empty"), PageRef { pid, lsn }));
                let ok = page::insert(&mut p, 0, &cell);
                debug_assert!(ok);
            }
            if first.is_none() {
                first = Some(sep.clone());
            }
        }
        let pid = pager.alloc(p)?;
        next.push((first.expect("level non-empty"), PageRef { pid, lsn }));
        level = next;
    }
    Ok(level.remove(0).1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::buffer_pool::BufferPool;
    use crate::vfs::{FaultPlan, SimVfs, Vfs};
    use std::path::{Path, PathBuf};
    use std::sync::Arc;

    fn pager(cap: usize) -> (Arc<SimVfs>, Pager) {
        let vfs = Arc::new(SimVfs::new(FaultPlan::none(7)));
        let pool =
            BufferPool::new(vfs.clone() as Arc<dyn Vfs>, PathBuf::from("/db/pages.idb"), cap);
        (vfs, Pager::new(pool, page::META_SLOTS, vec![]))
    }

    fn key(i: u64) -> Vec<u8> {
        format!("key-{i:08}").into_bytes()
    }

    #[test]
    fn insert_lookup_overwrite_many() {
        let (_vfs, mut pager) = pager(256);
        pager.begin(1);
        let mut root = PageRef::NULL;
        for i in 0..500u64 {
            root = insert(&mut pager, root, &key(i * 7 % 500), &i.to_le_bytes()).unwrap();
        }
        for i in 0..500u64 {
            let got = lookup(&mut pager, root, &key(i * 7 % 500)).unwrap();
            assert_eq!(got.as_deref(), Some(&i.to_le_bytes()[..]), "key {i}");
        }
        assert_eq!(lookup(&mut pager, root, b"absent").unwrap(), None);
        // overwrite
        root = insert(&mut pager, root, &key(3), b"NEW").unwrap();
        assert_eq!(lookup(&mut pager, root, &key(3)).unwrap().as_deref(), Some(&b"NEW"[..]));
        // iteration is key-sorted and complete
        let all = iter_all(&mut pager, root).unwrap();
        assert_eq!(all.len(), 500);
        assert!(all.windows(2).all(|w| w[0].0 < w[1].0));
    }

    #[test]
    fn remove_down_to_empty() {
        let (_vfs, mut pager) = pager(256);
        pager.begin(1);
        let mut root = PageRef::NULL;
        for i in 0..300u64 {
            root = insert(&mut pager, root, &key(i), &[1]).unwrap();
        }
        let (r, hit) = remove(&mut pager, root, b"absent").unwrap();
        assert!(!hit);
        assert_eq!(r, root);
        for i in (0..300u64).rev() {
            let (nr, hit) = remove(&mut pager, root, &key(i)).unwrap();
            assert!(hit, "key {i}");
            root = nr;
        }
        assert!(!root.is_some(), "tree collapses to NULL");
        // every page the tree used went back to the free list (all fresh)
        assert_eq!(pager.page_count() as usize - 2, pager.free_len());
    }

    #[test]
    fn bulk_build_matches_incremental() {
        let (_vfs, mut pager) = pager(512);
        pager.begin(1);
        let items: Vec<(Vec<u8>, Vec<u8>)> =
            (0..1000u64).map(|i| (key(i), format!("val-{i}").into_bytes())).collect();
        let bulk = bulk_build(&mut pager, &items).unwrap();
        let mut inc = PageRef::NULL;
        for (k, v) in items.iter().rev() {
            inc = insert(&mut pager, inc, k, v).unwrap();
        }
        assert_eq!(iter_all(&mut pager, bulk).unwrap(), iter_all(&mut pager, inc).unwrap());
        // bulk trees pack tighter than insert-built ones
        let (mut bp, mut ip) = (Vec::new(), Vec::new());
        pages(&mut pager, bulk, &mut bp).unwrap();
        pages(&mut pager, inc, &mut ip).unwrap();
        assert!(bp.len() <= ip.len(), "bulk {} vs incremental {}", bp.len(), ip.len());
    }

    #[test]
    fn shadow_copy_preserves_the_old_root() {
        let (vfs, mut pager) = pager(512);
        pager.begin(1);
        let items: Vec<(Vec<u8>, Vec<u8>)> = (0..400u64).map(|i| (key(i), vec![7])).collect();
        let old = bulk_build(&mut pager, &items).unwrap();
        pager.flush_sync(vfs.as_ref(), Path::new("/db/pages.idb")).unwrap();
        pager.commit();

        pager.begin(2);
        let new = insert(&mut pager, old, &key(777), b"fresh").unwrap();
        let new = remove(&mut pager, new, &key(5)).unwrap().0;
        // the old tree still reads exactly as before the mutation
        let before = iter_all(&mut pager, old).unwrap();
        assert_eq!(before.len(), 400);
        assert!(before.iter().any(|(k, _)| k == &key(5)));
        let after = iter_all(&mut pager, new).unwrap();
        assert_eq!(after.len(), 400);
        assert!(after.iter().any(|(k, _)| k == &key(777)));
        assert!(!after.iter().any(|(k, _)| k == &key(5)));
    }

    #[test]
    fn survives_tiny_pool_eviction() {
        let (_vfs, mut pager) = pager(3);
        pager.begin(1);
        let mut root = PageRef::NULL;
        for i in 0..300u64 {
            root = insert(&mut pager, root, &key(i), &i.to_le_bytes()).unwrap();
        }
        assert!(pager.pool_stats().evictions > 0);
        for i in 0..300u64 {
            assert_eq!(
                lookup(&mut pager, root, &key(i)).unwrap().as_deref(),
                Some(&i.to_le_bytes()[..])
            );
        }
    }

    #[test]
    fn mixed_size_split_fits_both_halves() {
        // A leaf packed with small cells plus one near-cap cell landing
        // at any position must split so both halves fit a fresh page
        // (the byte-balanced midpoint alone can overload the left half).
        for jumbo_at in [0u64, 10, 26, 30, 38] {
            let (_vfs, mut pager) = pager(64);
            pager.begin(1);
            let mut root = PageRef::NULL;
            for i in 0..38u64 {
                // ~100-byte cells
                root = insert(&mut pager, root, &key(i * 10), &[0xAA; 86]).unwrap();
            }
            let jumbo = vec![0xBB; MAX_CELL - key(0).len() - 4];
            root = insert(&mut pager, root, &key(jumbo_at * 10 + 1), &jumbo)
                .unwrap_or_else(|e| panic!("jumbo at {jumbo_at}: {e}"));
            for i in 0..38u64 {
                assert!(lookup(&mut pager, root, &key(i * 10)).unwrap().is_some(), "key {i}");
            }
            assert_eq!(
                lookup(&mut pager, root, &key(jumbo_at * 10 + 1)).unwrap().as_deref(),
                Some(&jumbo[..])
            );
        }
    }

    #[test]
    fn oversized_cells_are_rejected() {
        let (_vfs, mut pager) = pager(8);
        pager.begin(1);
        let err = insert(&mut pager, PageRef::NULL, &vec![0u8; MAX_CELL + 1], b"").unwrap_err();
        assert!(format!("{err}").contains("cell cap"), "{err}");
    }
}
