//! Transaction guard utilities.
//!
//! [`crate::Store`] exposes `begin`/`commit`/`rollback` directly;
//! this module adds an RAII guard that rolls back on drop unless committed,
//! which the engine uses to make multi-expression update requests (§5.1)
//! atomic: *"?exp₁, …, expₖ"* either applies all its update expressions or
//! none (e.g. when a later item fails a binding-signature check).

use crate::store::Store;

/// RAII transaction guard: rolls back on drop unless [`TxnGuard::commit`]
/// was called.
pub struct TxnGuard<'s> {
    store: Option<&'s mut Store>,
}

impl<'s> TxnGuard<'s> {
    /// Opens a transaction on the store.
    pub fn begin(store: &'s mut Store) -> Self {
        store.begin();
        TxnGuard { store: Some(store) }
    }

    /// Access to the underlying store while the guard is open.
    pub fn store(&mut self) -> &mut Store {
        self.store.as_deref_mut().expect("guard is open")
    }

    /// Commits and disarms the guard.
    pub fn commit(mut self) {
        if let Some(s) = self.store.take() {
            s.commit().expect("guard opened the transaction");
        }
    }
}

impl Drop for TxnGuard<'_> {
    fn drop(&mut self) {
        if let Some(s) = self.store.take() {
            s.rollback().expect("guard opened the transaction");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use idl_object::tuple;

    #[test]
    fn drop_rolls_back() {
        let mut s = Store::new();
        s.insert("db", "r", tuple! { a: 1i64 }).unwrap();
        {
            let mut g = TxnGuard::begin(&mut s);
            g.store().insert("db", "r", tuple! { a: 2i64 }).unwrap();
            // dropped without commit
        }
        assert_eq!(s.relation("db", "r").unwrap().len(), 1);
    }

    #[test]
    fn commit_keeps_changes() {
        let mut s = Store::new();
        {
            let mut g = TxnGuard::begin(&mut s);
            g.store().insert("db", "r", tuple! { a: 2i64 }).unwrap();
            g.commit();
        }
        assert_eq!(s.relation("db", "r").unwrap().len(), 1);
        assert!(!s.in_txn());
    }
}
