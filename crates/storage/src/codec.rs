//! The binary value codec (snapshot format 3).
//!
//! JSON snapshots were the serialization tax on every checkpoint, durable
//! restart, and oversized `DumpUniverse` frame (B9 measured the 40×150
//! universe's JSON roundtrip at ~71 ms). This module replaces them with a
//! length-prefixed, varint-based, tagged binary encoding of the object
//! model, carried inside CRC-32C-checksummed containers:
//!
//! ```text
//! container: magic[8] | crc32c(body):u32le | body
//! body:      version:varint | <container-specific payload>
//! ```
//!
//! Three container kinds share the layout and differ only in magic and
//! payload:
//!
//! * [`SNAPSHOT_MAGIC`] — a full universe snapshot
//!   (`gen | lsn | maintenance | name table | universe value`);
//! * [`DELTA_MAGIC`] — an incremental delta checkpoint
//!   (`gen | seq | prev_lsn | lsn | maintenance | name table | entries`),
//!   recording only the databases/relations dirtied since the previous
//!   checkpoint in the chain (see `idl::durable`);
//! * [`VALUE_MAGIC`] — a bare value (the server's negotiated binary
//!   `DumpUniverse` payload).
//!
//! # Value encoding
//!
//! Every value starts with a tag byte:
//!
//! | tag | value | payload |
//! |-----|-------|---------|
//! | 0   | null  | — |
//! | 1   | false | — |
//! | 2   | true  | — |
//! | 3   | int   | zigzag varint |
//! | 4   | float | 8 bytes LE of the canonical [`F64`] bit pattern |
//! | 5   | string| varint name-table index |
//! | 6   | date  | zigzag varint epoch days |
//! | 7   | tuple | varint arity, then per attribute: varint name index + value |
//! | 8   | set   | varint cardinality, then members in their total order |
//!
//! Strings — attribute names, relation names, *and* string atoms, which in
//! this data model are all interchangeable [`Name`]s (data in one database
//! is metadata in another, §2 of the paper) — are interned into a per-blob
//! name table written ahead of the tree, so a name repeated across 6 000
//! rows costs one or two varint bytes per occurrence instead of its UTF-8
//! length plus quotes.
//!
//! # Integrity and fail-closed decoding
//!
//! The body CRC makes corruption detection unconditional: any byte flip in
//! the body (or the CRC field itself) fails the checksum, a flip in the
//! magic demotes the blob to the JSON fallback path, and the structural
//! decoder additionally bounds-checks every read, caps recursion depth,
//! and rejects duplicate tuple attributes or set members — a corrupt blob
//! yields an error, never a panic or a half-built value
//! (`tests/prop_codec_roundtrip.rs`).
//!
//! Encoding walks the tree by reference: the Arc-backed copy-on-write
//! interiors (`idl_object::sharing`) are never cloned or mutated, so a
//! snapshot encode does not disturb structural sharing.

use crate::crc::crc32c;
use crate::error::{StorageError, StorageResult};
use idl_object::{Atom, Date, Name, TupleObj, Value, F64};
use std::collections::HashMap;

/// Magic opening a binary snapshot container (snapshot format 3).
pub const SNAPSHOT_MAGIC: &[u8; 8] = b"IDLSNAP3";

/// Magic opening a delta-checkpoint container.
pub const DELTA_MAGIC: &[u8; 8] = b"IDLDELT3";

/// Magic opening a bare-value container (server wire payloads).
pub const VALUE_MAGIC: &[u8; 8] = b"IDLBVAL3";

/// Current binary container version. Readers reject anything newer.
pub const CODEC_VERSION: u64 = 3;

/// Decode recursion cap: deeper nesting than this is rejected rather than
/// risking the stack. (serde_json's own recursion limit is 128, so any
/// value that ever lived as JSON is far inside this bound.)
const MAX_DEPTH: usize = 512;

/// Which encoding snapshots are written in.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum SnapshotCodec {
    /// The binary containers of this module. The default.
    #[default]
    Binary,
    /// The legacy JSON wrapper (`{"format":2,…}`); kept fully writable for
    /// the `IDL_CODEC=json` ablation/compatibility leg.
    Json,
}

impl std::fmt::Display for SnapshotCodec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotCodec::Binary => write!(f, "binary"),
            SnapshotCodec::Json => write!(f, "json"),
        }
    }
}

impl std::str::FromStr for SnapshotCodec {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "binary" | "bin" => Ok(SnapshotCodec::Binary),
            "json" => Ok(SnapshotCodec::Json),
            other => Err(format!("unknown codec '{other}' (expected json|binary)")),
        }
    }
}

/// One entry of a delta checkpoint: the post-image (or tombstone) of a
/// database or relation dirtied since the previous checkpoint.
#[derive(Clone, PartialEq, Debug)]
pub enum DeltaEntry {
    /// The database was dropped.
    DropDatabase {
        /// Database name.
        db: Name,
    },
    /// The database's entire subtree, post-change (created, or a
    /// relation-set change at database granularity).
    PutDatabase {
        /// Database name.
        db: Name,
        /// The database tuple (relations by name).
        value: Value,
    },
    /// The relation was dropped (and its database survives).
    DropRelation {
        /// Database name.
        db: Name,
        /// Relation name.
        rel: Name,
    },
    /// The relation's full post-change contents.
    PutRelation {
        /// Database name.
        db: Name,
        /// Relation name.
        rel: Name,
        /// The relation set.
        value: Value,
    },
}

/// A decoded snapshot container.
#[derive(Clone, PartialEq, Debug)]
pub struct SnapshotBlob {
    /// Checkpoint generation (bumped by every full checkpoint; deltas
    /// chain-link to it).
    pub gen: u64,
    /// Operation-log LSN the snapshot covers.
    pub lsn: u64,
    /// Opaque engine-state blob (view-maintenance support counts).
    pub maintenance: Option<String>,
    /// The universe tuple.
    pub universe: Value,
}

/// A decoded delta-checkpoint container.
#[derive(Clone, PartialEq, Debug)]
pub struct DeltaBlob {
    /// Generation of the base snapshot this delta extends.
    pub gen: u64,
    /// Position in the chain (1-based; file `universe.delta.<seq>`).
    pub seq: u64,
    /// LSN covered by the chain's previous member (the base for seq 1).
    pub prev_lsn: u64,
    /// LSN this delta covers.
    pub lsn: u64,
    /// Opaque engine-state blob as of this checkpoint (the chain's newest
    /// member wins; `None` means the views were stale when it was taken).
    pub maintenance: Option<String>,
    /// The dirtied slots, post-image or tombstone.
    pub entries: Vec<DeltaEntry>,
}

// ------------------------------------------------------------------ varint

fn put_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

fn put_zigzag(out: &mut Vec<u8>, v: i64) {
    put_varint(out, ((v << 1) ^ (v >> 63)) as u64);
}

// ------------------------------------------------------------------ writer

/// Interning encoder state: the name table in first-encounter order plus
/// the tree bytes being accumulated.
struct Encoder {
    names: Vec<Name>,
    index: HashMap<Name, u64>,
    tree: Vec<u8>,
}

const TAG_NULL: u8 = 0;
const TAG_FALSE: u8 = 1;
const TAG_TRUE: u8 = 2;
const TAG_INT: u8 = 3;
const TAG_FLOAT: u8 = 4;
const TAG_STR: u8 = 5;
const TAG_DATE: u8 = 6;
const TAG_TUPLE: u8 = 7;
const TAG_SET: u8 = 8;

impl Encoder {
    fn new() -> Self {
        Encoder { names: Vec::new(), index: HashMap::new(), tree: Vec::new() }
    }

    fn intern(&mut self, name: &Name) -> u64 {
        if let Some(&i) = self.index.get(name) {
            return i;
        }
        let i = self.names.len() as u64;
        self.names.push(name.clone());
        self.index.insert(name.clone(), i);
        i
    }

    fn put_name(&mut self, name: &Name) {
        let i = self.intern(name);
        put_varint(&mut self.tree, i);
    }

    fn put_value(&mut self, v: &Value) {
        match v {
            Value::Atom(Atom::Null) => self.tree.push(TAG_NULL),
            Value::Atom(Atom::Bool(false)) => self.tree.push(TAG_FALSE),
            Value::Atom(Atom::Bool(true)) => self.tree.push(TAG_TRUE),
            Value::Atom(Atom::Int(i)) => {
                self.tree.push(TAG_INT);
                put_zigzag(&mut self.tree, *i);
            }
            Value::Atom(Atom::Float(f)) => {
                self.tree.push(TAG_FLOAT);
                self.tree.extend_from_slice(&f.get().to_bits().to_le_bytes());
            }
            Value::Atom(Atom::Str(s)) => {
                self.tree.push(TAG_STR);
                self.put_name(s);
            }
            Value::Atom(Atom::Date(d)) => {
                self.tree.push(TAG_DATE);
                put_zigzag(&mut self.tree, d.to_epoch_days());
            }
            Value::Tuple(t) => {
                self.tree.push(TAG_TUPLE);
                put_varint(&mut self.tree, t.arity() as u64);
                // Collect first: attribute names must be interned before
                // their values may intern string atoms, and the borrow of
                // `t` cannot overlap `self`.
                let pairs: Vec<(Name, &Value)> = t.iter().map(|(k, v)| (k.clone(), v)).collect();
                for (k, v) in pairs {
                    self.put_name(&k);
                    self.put_value(v);
                }
            }
            Value::Set(s) => {
                self.tree.push(TAG_SET);
                put_varint(&mut self.tree, s.len() as u64);
                let members: Vec<&Value> = s.iter().collect();
                for m in members {
                    self.put_value(m);
                }
            }
        }
    }

    /// Emits `name table | tree` into `out`.
    fn finish_into(self, out: &mut Vec<u8>) {
        put_varint(out, self.names.len() as u64);
        for name in &self.names {
            let bytes = name.as_str().as_bytes();
            put_varint(out, bytes.len() as u64);
            out.extend_from_slice(bytes);
        }
        out.extend_from_slice(&self.tree);
    }
}

fn put_opt_str(out: &mut Vec<u8>, s: Option<&str>) {
    match s {
        None => out.push(0),
        Some(s) => {
            out.push(1);
            put_varint(out, s.len() as u64);
            out.extend_from_slice(s.as_bytes());
        }
    }
}

/// Wraps a finished body in `magic | crc | body`.
fn seal(magic: &[u8; 8], body: Vec<u8>) -> Vec<u8> {
    let mut out = Vec::with_capacity(12 + body.len());
    out.extend_from_slice(magic);
    out.extend_from_slice(&crc32c(&body).to_le_bytes());
    out.extend_from_slice(&body);
    out
}

/// Encodes a full snapshot container.
pub fn encode_snapshot(universe: &Value, gen: u64, lsn: u64, maintenance: Option<&str>) -> Vec<u8> {
    let mut body = Vec::new();
    put_varint(&mut body, CODEC_VERSION);
    put_varint(&mut body, gen);
    put_varint(&mut body, lsn);
    put_opt_str(&mut body, maintenance);
    let mut enc = Encoder::new();
    enc.put_value(universe);
    enc.finish_into(&mut body);
    seal(SNAPSHOT_MAGIC, body)
}

/// Encodes a delta-checkpoint container.
pub fn encode_delta(delta: &DeltaBlob) -> Vec<u8> {
    let mut body = Vec::new();
    put_varint(&mut body, CODEC_VERSION);
    put_varint(&mut body, delta.gen);
    put_varint(&mut body, delta.seq);
    put_varint(&mut body, delta.prev_lsn);
    put_varint(&mut body, delta.lsn);
    put_opt_str(&mut body, delta.maintenance.as_deref());
    let mut enc = Encoder::new();
    put_varint(&mut enc.tree, delta.entries.len() as u64);
    for entry in &delta.entries {
        match entry {
            DeltaEntry::DropDatabase { db } => {
                enc.tree.push(0);
                enc.put_name(db);
            }
            DeltaEntry::PutDatabase { db, value } => {
                enc.tree.push(1);
                enc.put_name(db);
                enc.put_value(value);
            }
            DeltaEntry::DropRelation { db, rel } => {
                enc.tree.push(2);
                enc.put_name(db);
                enc.put_name(rel);
            }
            DeltaEntry::PutRelation { db, rel, value } => {
                enc.tree.push(3);
                enc.put_name(db);
                enc.put_name(rel);
                enc.put_value(value);
            }
        }
    }
    enc.finish_into(&mut body);
    seal(DELTA_MAGIC, body)
}

/// Encodes a bare value container (server wire payloads).
pub fn encode_value(v: &Value) -> Vec<u8> {
    let mut body = Vec::new();
    put_varint(&mut body, CODEC_VERSION);
    let mut enc = Encoder::new();
    enc.put_value(v);
    enc.finish_into(&mut body);
    seal(VALUE_MAGIC, body)
}

/// Whether `bytes` open with any of this module's container magics.
pub fn is_binary(bytes: &[u8]) -> bool {
    bytes.len() >= 8
        && (&bytes[..8] == SNAPSHOT_MAGIC
            || &bytes[..8] == DELTA_MAGIC
            || &bytes[..8] == VALUE_MAGIC)
}

// ------------------------------------------------------------------ reader

fn corrupt(what: impl std::fmt::Display) -> StorageError {
    StorageError::Persist(format!("corrupt binary blob: {what}"))
}

/// Bounds-checked cursor over a container body.
struct Reader<'a> {
    buf: &'a [u8],
    at: usize,
    names: Vec<Name>,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Reader { buf, at: 0, names: Vec::new() }
    }

    fn u8(&mut self) -> StorageResult<u8> {
        let b = *self.buf.get(self.at).ok_or_else(|| corrupt("unexpected end of input"))?;
        self.at += 1;
        Ok(b)
    }

    fn bytes(&mut self, len: usize) -> StorageResult<&'a [u8]> {
        if len > self.buf.len().saturating_sub(self.at) {
            return Err(corrupt(format!("length {len} overruns the buffer")));
        }
        let s = &self.buf[self.at..self.at + len];
        self.at += len;
        Ok(s)
    }

    fn varint(&mut self) -> StorageResult<u64> {
        let mut v: u64 = 0;
        for shift in (0..64).step_by(7) {
            let byte = self.u8()?;
            let low = (byte & 0x7f) as u64;
            if shift == 63 && low > 1 {
                return Err(corrupt("varint overflows 64 bits"));
            }
            v |= low << shift;
            if byte & 0x80 == 0 {
                return Ok(v);
            }
        }
        Err(corrupt("varint longer than 10 bytes"))
    }

    fn zigzag(&mut self) -> StorageResult<i64> {
        let raw = self.varint()?;
        Ok(((raw >> 1) as i64) ^ -((raw & 1) as i64))
    }

    fn str_of(&mut self, len: usize) -> StorageResult<&'a str> {
        std::str::from_utf8(self.bytes(len)?).map_err(|e| corrupt(format!("invalid UTF-8: {e}")))
    }

    fn opt_string(&mut self) -> StorageResult<Option<String>> {
        match self.u8()? {
            0 => Ok(None),
            1 => {
                let len = self.varint()? as usize;
                Ok(Some(self.str_of(len)?.to_string()))
            }
            t => Err(corrupt(format!("bad option tag {t}"))),
        }
    }

    fn name_table(&mut self) -> StorageResult<()> {
        let count = self.varint()? as usize;
        // Each name costs at least one length byte, so `count` beyond the
        // remaining bytes is structurally impossible.
        if count > self.buf.len().saturating_sub(self.at) {
            return Err(corrupt(format!("name table of {count} entries overruns the buffer")));
        }
        self.names = Vec::with_capacity(count);
        for _ in 0..count {
            let len = self.varint()? as usize;
            let s = self.str_of(len)?;
            self.names.push(Name::new(s));
        }
        Ok(())
    }

    fn name(&mut self) -> StorageResult<Name> {
        let i = self.varint()? as usize;
        self.names.get(i).cloned().ok_or_else(|| corrupt(format!("name index {i} out of table")))
    }

    fn value(&mut self, depth: usize) -> StorageResult<Value> {
        if depth > MAX_DEPTH {
            return Err(corrupt(format!("nesting deeper than {MAX_DEPTH}")));
        }
        match self.u8()? {
            TAG_NULL => Ok(Value::null()),
            TAG_FALSE => Ok(Value::from(false)),
            TAG_TRUE => Ok(Value::from(true)),
            TAG_INT => Ok(Value::int(self.zigzag()?)),
            TAG_FLOAT => {
                let bits = u64::from_le_bytes(self.bytes(8)?.try_into().expect("8 bytes"));
                Ok(Value::from(Atom::Float(F64::new(f64::from_bits(bits)))))
            }
            TAG_STR => Ok(Value::from(Atom::Str(self.name()?))),
            TAG_DATE => Ok(Value::from(Date::from_epoch_days(self.zigzag()?))),
            TAG_TUPLE => {
                let arity = self.varint()? as usize;
                if arity > self.buf.len().saturating_sub(self.at) {
                    return Err(corrupt(format!("tuple arity {arity} overruns the buffer")));
                }
                // The encoder emits attributes in name order, so decode
                // demands strictly ascending names: one comparison per
                // pair subsumes the duplicate check, and the sorted run
                // bulk-builds the B-tree instead of paying a structural
                // search per insert.
                let mut pairs: Vec<(Name, Value)> = Vec::with_capacity(arity);
                for _ in 0..arity {
                    let k = self.name()?;
                    if pairs.last().is_some_and(|(prev, _)| *prev >= k) {
                        return Err(corrupt(format!("tuple attribute {k} out of canonical order")));
                    }
                    let v = self.value(depth + 1)?;
                    pairs.push((k, v));
                }
                Ok(Value::Tuple(TupleObj::from_pairs(pairs)))
            }
            TAG_SET => {
                let card = self.varint()? as usize;
                if card > self.buf.len().saturating_sub(self.at) {
                    return Err(corrupt(format!("set cardinality {card} overruns the buffer")));
                }
                // Same canonical-order discipline as tuples: members
                // must arrive strictly ascending (no duplicates), and
                // the sorted run builds the set in one bulk pass.
                let mut members: Vec<Value> = Vec::with_capacity(card);
                for _ in 0..card {
                    let v = self.value(depth + 1)?;
                    if members.last().is_some_and(|prev| *prev >= v) {
                        return Err(corrupt("set member out of canonical order"));
                    }
                    members.push(v);
                }
                Ok(Value::Set(members.into_iter().collect()))
            }
            t => Err(corrupt(format!("unknown value tag {t}"))),
        }
    }

    fn at_end(&self) -> bool {
        self.at == self.buf.len()
    }
}

/// Verifies `magic | crc | body` and returns the body.
fn unseal<'a>(magic: &[u8; 8], bytes: &'a [u8], what: &str) -> StorageResult<&'a [u8]> {
    if bytes.len() < 12 || &bytes[..8] != magic {
        return Err(corrupt(format!("not a {what} container")));
    }
    let want = u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes"));
    let body = &bytes[12..];
    let got = crc32c(body);
    if got != want {
        return Err(corrupt(format!(
            "{what} checksum mismatch (header {want:#010x}, body {got:#010x})"
        )));
    }
    Ok(body)
}

fn check_version(r: &mut Reader<'_>) -> StorageResult<()> {
    let version = r.varint()?;
    if version > CODEC_VERSION {
        return Err(StorageError::Persist(format!(
            "binary container v{version} is newer than this build understands (v{CODEC_VERSION})"
        )));
    }
    Ok(())
}

fn check_consumed(r: &Reader<'_>, what: &str) -> StorageResult<()> {
    if !r.at_end() {
        return Err(corrupt(format!(
            "{what} has {} trailing bytes past the value",
            r.buf.len() - r.at
        )));
    }
    Ok(())
}

/// Decodes a snapshot container.
pub fn decode_snapshot(bytes: &[u8]) -> StorageResult<SnapshotBlob> {
    let body = unseal(SNAPSHOT_MAGIC, bytes, "snapshot")?;
    let mut r = Reader::new(body);
    check_version(&mut r)?;
    let gen = r.varint()?;
    let lsn = r.varint()?;
    let maintenance = r.opt_string()?;
    r.name_table()?;
    let universe = r.value(0)?;
    check_consumed(&r, "snapshot")?;
    Ok(SnapshotBlob { gen, lsn, maintenance, universe })
}

/// Decodes a delta-checkpoint container.
pub fn decode_delta(bytes: &[u8]) -> StorageResult<DeltaBlob> {
    let body = unseal(DELTA_MAGIC, bytes, "delta checkpoint")?;
    let mut r = Reader::new(body);
    check_version(&mut r)?;
    let gen = r.varint()?;
    let seq = r.varint()?;
    let prev_lsn = r.varint()?;
    let lsn = r.varint()?;
    let maintenance = r.opt_string()?;
    r.name_table()?;
    let count = r.varint()? as usize;
    if count > r.buf.len().saturating_sub(r.at) {
        return Err(corrupt(format!("delta entry count {count} overruns the buffer")));
    }
    let mut entries = Vec::with_capacity(count);
    for _ in 0..count {
        let entry = match r.u8()? {
            0 => DeltaEntry::DropDatabase { db: r.name()? },
            1 => {
                let db = r.name()?;
                DeltaEntry::PutDatabase { db, value: r.value(0)? }
            }
            2 => {
                let db = r.name()?;
                DeltaEntry::DropRelation { db, rel: r.name()? }
            }
            3 => {
                let db = r.name()?;
                let rel = r.name()?;
                DeltaEntry::PutRelation { db, rel, value: r.value(0)? }
            }
            t => return Err(corrupt(format!("unknown delta entry kind {t}"))),
        };
        entries.push(entry);
    }
    check_consumed(&r, "delta checkpoint")?;
    Ok(DeltaBlob { gen, seq, prev_lsn, lsn, maintenance, entries })
}

/// Decodes a bare value container.
pub fn decode_value(bytes: &[u8]) -> StorageResult<Value> {
    let body = unseal(VALUE_MAGIC, bytes, "value")?;
    let mut r = Reader::new(body);
    check_version(&mut r)?;
    r.name_table()?;
    let v = r.value(0)?;
    check_consumed(&r, "value")?;
    Ok(v)
}

/// Applies a decoded delta to a universe tuple (the recovery-side merge:
/// `base ∘ delta₁ ∘ … ∘ deltaₙ`). Entries are post-images, so application
/// is idempotent.
pub fn apply_delta(universe: &mut Value, delta: &DeltaBlob) -> StorageResult<()> {
    let top = universe
        .as_tuple_mut()
        .ok_or_else(|| StorageError::ShapeViolation("universe must be a tuple".into()))?;
    for entry in &delta.entries {
        match entry {
            DeltaEntry::DropDatabase { db } => {
                top.remove(db.as_str());
            }
            DeltaEntry::PutDatabase { db, value } => {
                top.insert(db.clone(), value.clone());
            }
            DeltaEntry::DropRelation { db, rel } => {
                if let Some(dbt) = top.get_mut(db.as_str()).and_then(|v| v.as_tuple_mut()) {
                    dbt.remove(rel.as_str());
                }
            }
            DeltaEntry::PutRelation { db, rel, value } => {
                let dbv = top.get_or_insert_with(db.clone(), Value::empty_tuple);
                let dbt = dbv.as_tuple_mut().ok_or_else(|| {
                    StorageError::ShapeViolation(format!("database {db} is not a tuple"))
                })?;
                dbt.insert(rel.clone(), value.clone());
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use idl_object::tuple;

    fn sample_universe() -> Value {
        let mut u = Value::empty_tuple();
        let t = u.as_tuple_mut().unwrap();
        let mut r = Value::empty_set();
        let set = r.as_set_mut().unwrap();
        set.insert(tuple! { stkCode: "hp", clsPrice: 50.5f64 });
        set.insert(tuple! { stkCode: "ibm", clsPrice: 160i64 });
        let mut db = Value::empty_tuple();
        db.as_tuple_mut().unwrap().insert("r", r);
        t.insert("euter", db);
        u
    }

    #[test]
    fn value_roundtrip_all_atoms() {
        let v = tuple! {
            n: Value::null(),
            b: true,
            i: -42i64,
            f: 2.5f64,
            s: "hello",
            d: Value::from(Date::new(1985, 3, 3).unwrap())
        };
        let bytes = encode_value(&v);
        assert_eq!(decode_value(&bytes).unwrap(), v);
        // deterministic: re-encoding the decoded value is byte-identical
        assert_eq!(encode_value(&decode_value(&bytes).unwrap()), bytes);
    }

    #[test]
    fn snapshot_roundtrip_with_state() {
        let u = sample_universe();
        let bytes = encode_snapshot(&u, 7, 41, Some("{\"views\":[]}"));
        let snap = decode_snapshot(&bytes).unwrap();
        assert_eq!(snap.gen, 7);
        assert_eq!(snap.lsn, 41);
        assert_eq!(snap.maintenance.as_deref(), Some("{\"views\":[]}"));
        assert_eq!(snap.universe, u);
    }

    #[test]
    fn interning_compresses_repeated_names() {
        let mut u = Value::empty_set();
        let s = u.as_set_mut().unwrap();
        for i in 0..100i64 {
            s.insert(tuple! { aLongAttributeName: i, anotherLongName: "ibm" });
        }
        let binary = encode_value(&u);
        let json = serde_json::to_string(&u).unwrap();
        assert!(binary.len() * 3 < json.len(), "binary {} vs json {}", binary.len(), json.len());
        assert_eq!(decode_value(&binary).unwrap(), u);
    }

    #[test]
    fn every_single_byte_corruption_fails_closed() {
        let u = sample_universe();
        let bytes = encode_snapshot(&u, 1, 9, Some("state"));
        for i in 0..bytes.len() {
            let mut corrupt = bytes.clone();
            corrupt[i] ^= 0x01;
            assert!(decode_snapshot(&corrupt).is_err(), "flip at byte {i} must not decode");
        }
        // truncations fail closed too
        for cut in 0..bytes.len() {
            assert!(decode_snapshot(&bytes[..cut]).is_err(), "truncation at {cut}");
        }
    }

    #[test]
    fn future_version_is_rejected() {
        // rebuild a container with a bumped version varint
        let mut body = Vec::new();
        put_varint(&mut body, CODEC_VERSION + 1);
        let bytes = seal(VALUE_MAGIC, body);
        let err = decode_value(&bytes).unwrap_err();
        assert!(err.to_string().contains("newer"), "{err}");
    }

    #[test]
    fn delta_roundtrip_and_apply() {
        let mut u = sample_universe();
        let rel: Value = {
            let mut s = Value::empty_set();
            s.as_set_mut().unwrap().insert(tuple! { a: 1i64 });
            s
        };
        let delta = DeltaBlob {
            gen: 3,
            seq: 2,
            prev_lsn: 10,
            lsn: 15,
            maintenance: None,
            entries: vec![
                DeltaEntry::PutRelation {
                    db: Name::new("euter"),
                    rel: Name::new("s"),
                    value: rel.clone(),
                },
                DeltaEntry::DropRelation { db: Name::new("euter"), rel: Name::new("r") },
                DeltaEntry::PutDatabase { db: Name::new("fresh"), value: Value::empty_tuple() },
                DeltaEntry::DropDatabase { db: Name::new("nosuch") },
            ],
        };
        let bytes = encode_delta(&delta);
        let back = decode_delta(&bytes).unwrap();
        assert_eq!(back, delta);

        apply_delta(&mut u, &back).unwrap();
        assert_eq!(u.attr("euter").unwrap().attr("s"), Some(&rel));
        assert!(u.attr("euter").unwrap().attr("r").is_none());
        assert!(u.attr("fresh").is_some());
    }

    #[test]
    fn varint_boundaries_roundtrip() {
        for v in [0u64, 1, 127, 128, 16383, 16384, u32::MAX as u64, u64::MAX] {
            let mut out = Vec::new();
            put_varint(&mut out, v);
            let mut r = Reader::new(&out);
            assert_eq!(r.varint().unwrap(), v);
            assert!(r.at_end());
        }
        for v in [0i64, -1, 1, i64::MIN, i64::MAX, -123456789] {
            let mut out = Vec::new();
            put_zigzag(&mut out, v);
            let mut r = Reader::new(&out);
            assert_eq!(r.zigzag().unwrap(), v);
        }
    }

    #[test]
    fn hostile_lengths_do_not_allocate_or_panic() {
        // a set claiming u64::MAX members inside a sealed container
        let mut body = Vec::new();
        put_varint(&mut body, CODEC_VERSION);
        put_varint(&mut body, 0); // empty name table
        body.push(TAG_SET);
        put_varint(&mut body, u64::MAX);
        let bytes = seal(VALUE_MAGIC, body);
        assert!(decode_value(&bytes).is_err());

        // nesting past the depth cap
        let mut body = Vec::new();
        put_varint(&mut body, CODEC_VERSION);
        put_varint(&mut body, 0);
        for _ in 0..(MAX_DEPTH + 2) {
            body.push(TAG_SET);
            put_varint(&mut body, 1);
        }
        body.push(TAG_NULL);
        let bytes = seal(VALUE_MAGIC, body);
        let err = decode_value(&bytes).unwrap_err();
        assert!(err.to_string().contains("nesting"), "{err}");
    }

    #[test]
    fn encode_does_not_break_cow_sharing() {
        let u = sample_universe();
        let handle = u.clone(); // O(1) CoW clone sharing interiors
        let _ = encode_value(&u);
        match (&u, &handle) {
            (Value::Tuple(a), Value::Tuple(b)) => {
                assert!(a.shares_with(b), "encoding must not unshare the tree")
            }
            _ => unreachable!(),
        }
    }
}
