//! Snapshot persistence.
//!
//! The universe object serialises losslessly to JSON via `serde`; a
//! snapshot file plus the operation log is the crash-recovery story of
//! this embedded substrate. Snapshots are written with the full
//! crash-safe discipline, routed through a [`Vfs`]:
//!
//! 1. serialise to a **uniquely named** temp file (`<name>.<pid>.<n>.tmp`,
//!    so two engines sharing a directory cannot clobber each other's
//!    in-flight snapshot),
//! 2. `fsync` the temp file (content durable before it becomes visible),
//! 3. `rename` over the target (atomic replacement),
//! 4. `fsync` the directory (the rename itself durable).
//!
//! Stale `*.tmp` files from crashed writers are swept by
//! [`clean_stale_temps`] when a durable engine opens.
//!
//! Three on-disk encodings load: the legacy **bare universe** JSON, the
//! versioned JSON wrapper `{"format":2,"lsn":N,"universe":…}`, and the
//! binary container of [`crate::codec`] (snapshot **format 3**, the write
//! default). In every case `lsn` records the last operation-log record
//! the snapshot already contains, so replay can skip exactly those (see
//! [`crate::oplog`]). Binary snapshots additionally carry a checkpoint
//! `gen`eration that anchors incremental delta-checkpoint chains.

use crate::codec::{self, DeltaBlob, SnapshotCodec};
use crate::error::{StorageError, StorageResult};
use crate::store::Store;
use crate::vfs::{RealVfs, Vfs};
use idl_object::Value;
use serde::{Deserialize, Serialize};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// JSON snapshot wrapper format version (the binary container is format 3,
/// versioned inside [`crate::codec`]).
pub const SNAPSHOT_FORMAT: u32 = 2;

/// Everything a snapshot file says about itself besides the universe.
#[derive(Clone, PartialEq, Debug)]
pub struct SnapshotMeta {
    /// Op-log LSN the snapshot covers (0 for legacy bare universes).
    pub lsn: u64,
    /// Checkpoint generation (0 for every JSON snapshot — JSON dirs never
    /// carry delta chains).
    pub gen: u64,
    /// Opaque engine-state blob, if present.
    pub maintenance: Option<String>,
    /// Which encoding the file on disk used.
    pub codec: SnapshotCodec,
}

/// Serialises the universe to a JSON string.
pub fn to_json(store: &Store) -> StorageResult<String> {
    serde_json::to_string(store.universe()).map_err(|e| StorageError::Persist(e.to_string()))
}

/// Deserialises a universe from a JSON string into a fresh store.
pub fn from_json(json: &str) -> StorageResult<Store> {
    let universe: Value =
        serde_json::from_str(json).map_err(|e| StorageError::Persist(e.to_string()))?;
    Store::from_universe(universe)
}

/// The versioned snapshot wrapper (format 2). The optional `maintenance`
/// blob is opaque JSON text to the storage layer: the engine above
/// persists its incremental view-maintenance state here so a durable
/// restart resumes maintaining instead of silently falling back to a
/// full rebuild. Snapshots without the field (older builds) load as
/// `None`, and older builds ignore the field when reading newer files.
#[derive(Serialize, Deserialize)]
struct SnapshotFile {
    format: u32,
    lsn: u64,
    universe: Value,
    maintenance: Option<String>,
}

/// Counter distinguishing concurrent temp files within one process.
static TEMP_COUNTER: AtomicU64 = AtomicU64::new(0);

/// The unique temp path a snapshot write will stage through.
fn temp_path(path: &Path) -> PathBuf {
    let n = TEMP_COUNTER.fetch_add(1, Ordering::Relaxed);
    let name = path.file_name().map(|s| s.to_string_lossy()).unwrap_or_default();
    path.with_file_name(format!("{name}.{}.{n}.tmp", std::process::id()))
}

fn io_err(ctx: &str, e: std::io::Error) -> StorageError {
    StorageError::Persist(format!("{ctx}: {e}"))
}

/// Writes a snapshot atomically through `vfs` with the full
/// write→fsync(file)→rename→fsync(dir) discipline. With `lsn` present the
/// versioned wrapper format is written; `None` writes the legacy bare
/// universe. `sync` off skips both fsyncs (for ablations; crash safety is
/// then up to the OS).
#[deprecated(
    note = "superseded by the StorageEngine trait (`crate::engine`) — open a\nMemStorage/PagedStorage and commit through apply_full/apply_delta instead"
)]
#[allow(deprecated)]
pub fn save_snapshot_vfs(
    vfs: &dyn Vfs,
    store: &Store,
    path: &Path,
    lsn: Option<u64>,
    sync: bool,
) -> StorageResult<()> {
    save_snapshot_vfs_with_state(vfs, store, path, lsn, sync, None)
}

/// [`save_snapshot_vfs`] carrying an opaque engine-state blob (view
/// maintenance support counts, as JSON text) in the versioned wrapper.
/// `state` is ignored for legacy bare-universe writes (`lsn: None`).
#[deprecated(
    note = "superseded by the StorageEngine trait (`crate::engine`) — open a\nMemStorage/PagedStorage and commit through apply_full/apply_delta instead"
)]
pub fn save_snapshot_vfs_with_state(
    vfs: &dyn Vfs,
    store: &Store,
    path: &Path,
    lsn: Option<u64>,
    sync: bool,
    state: Option<String>,
) -> StorageResult<()> {
    let json = match lsn {
        None => to_json(store)?,
        // The universe clone is an O(1) copy-on-write handle (Arc-backed
        // interiors, see `idl_object::sharing`) — the wrapper serialises
        // straight from the live store's shared snapshot, no deep copy.
        Some(lsn) => serde_json::to_string(&SnapshotFile {
            format: SNAPSHOT_FORMAT,
            lsn,
            universe: store.universe().clone(),
            maintenance: state,
        })
        .map_err(|e| StorageError::Persist(e.to_string()))?,
    };
    write_atomic(vfs, path, json.as_bytes(), sync)
}

/// Writes arbitrary bytes through the temp→fsync→rename→fsync(dir)
/// protocol (shared by snapshot, delta, and the op-log header rewrite in
/// the durable engine).
pub fn write_atomic(vfs: &dyn Vfs, path: &Path, bytes: &[u8], sync: bool) -> StorageResult<()> {
    let tmp = temp_path(path);
    vfs.write(&tmp, bytes).map_err(|e| io_err("write snapshot temp", e))?;
    if sync {
        vfs.sync_file(&tmp).map_err(|e| io_err("sync snapshot temp", e))?;
    }
    vfs.rename(&tmp, path).map_err(|e| io_err("rename snapshot", e))?;
    if sync {
        if let Some(dir) = path.parent() {
            vfs.sync_dir(dir).map_err(|e| io_err("sync snapshot dir", e))?;
        }
    }
    Ok(())
}

/// Writes a snapshot in the chosen codec, returning bytes written.
/// `Binary` writes the format-3 container (carrying `gen`); `Json` writes
/// the legacy versioned wrapper (`gen` is dropped — JSON directories never
/// carry delta chains).
#[allow(clippy::too_many_arguments)]
#[deprecated(
    note = "superseded by the StorageEngine trait (`crate::engine`) — open a\nMemStorage/PagedStorage and commit through apply_full/apply_delta instead"
)]
pub fn save_snapshot_vfs_codec(
    vfs: &dyn Vfs,
    store: &Store,
    path: &Path,
    snapshot_codec: SnapshotCodec,
    gen: u64,
    lsn: u64,
    sync: bool,
    state: Option<String>,
) -> StorageResult<u64> {
    let bytes = match snapshot_codec {
        SnapshotCodec::Json => serde_json::to_string(&SnapshotFile {
            format: SNAPSHOT_FORMAT,
            lsn,
            universe: store.universe().clone(),
            maintenance: state,
        })
        .map_err(|e| StorageError::Persist(e.to_string()))?
        .into_bytes(),
        SnapshotCodec::Binary => {
            codec::encode_snapshot(store.universe(), gen, lsn, state.as_deref())
        }
    };
    write_atomic(vfs, path, &bytes, sync)?;
    Ok(bytes.len() as u64)
}

/// Writes a delta-checkpoint container atomically, returning bytes written.
#[deprecated(
    note = "superseded by the StorageEngine trait (`crate::engine`) — open a\nMemStorage/PagedStorage and commit through apply_full/apply_delta instead"
)]
pub fn save_delta_vfs(
    vfs: &dyn Vfs,
    path: &Path,
    delta: &DeltaBlob,
    sync: bool,
) -> StorageResult<u64> {
    let bytes = codec::encode_delta(delta);
    write_atomic(vfs, path, &bytes, sync)?;
    Ok(bytes.len() as u64)
}

/// Reads and decodes a delta-checkpoint container.
#[deprecated(
    note = "superseded by the StorageEngine trait (`crate::engine`) — open a\nMemStorage/PagedStorage and commit through apply_full/apply_delta instead"
)]
pub fn load_delta_vfs(vfs: &dyn Vfs, path: &Path) -> StorageResult<DeltaBlob> {
    let bytes = vfs.read(path).map_err(|e| io_err("read delta checkpoint", e))?;
    codec::decode_delta(&bytes)
}

/// Loads a snapshot through `vfs`, returning the store and the op-log LSN
/// the snapshot covers (0 for legacy bare-universe snapshots).
#[deprecated(
    note = "superseded by the StorageEngine trait (`crate::engine`) — open a\nMemStorage/PagedStorage and commit through apply_full/apply_delta instead"
)]
#[allow(deprecated)]
pub fn load_snapshot_vfs(vfs: &dyn Vfs, path: &Path) -> StorageResult<(Store, u64)> {
    load_snapshot_vfs_with_state(vfs, path).map(|(store, lsn, _)| (store, lsn))
}

/// [`load_snapshot_vfs`] also returning the opaque engine-state blob, if
/// the snapshot carries one (`None` for legacy snapshots and wrappers
/// written without state).
#[deprecated(
    note = "superseded by the StorageEngine trait (`crate::engine`) — open a\nMemStorage/PagedStorage and commit through apply_full/apply_delta instead"
)]
#[allow(deprecated)]
pub fn load_snapshot_vfs_with_state(
    vfs: &dyn Vfs,
    path: &Path,
) -> StorageResult<(Store, u64, Option<String>)> {
    load_snapshot_vfs_meta(vfs, path).map(|(store, meta)| (store, meta.lsn, meta.maintenance))
}

/// The full loader: any of the three encodings, plus everything the file
/// says about itself ([`SnapshotMeta`]).
#[deprecated(
    note = "superseded by the StorageEngine trait (`crate::engine`) — open a\nMemStorage/PagedStorage and commit through apply_full/apply_delta instead"
)]
pub fn load_snapshot_vfs_meta(vfs: &dyn Vfs, path: &Path) -> StorageResult<(Store, SnapshotMeta)> {
    let bytes = vfs.read(path).map_err(|e| io_err("read snapshot", e))?;
    // Binary detection runs before the UTF-8 check — a binary container is
    // almost never valid UTF-8.
    if codec::is_binary(&bytes) {
        let snap = codec::decode_snapshot(&bytes)?;
        let meta = SnapshotMeta {
            lsn: snap.lsn,
            gen: snap.gen,
            maintenance: snap.maintenance,
            codec: SnapshotCodec::Binary,
        };
        return Ok((Store::from_universe(snap.universe)?, meta));
    }
    let json = std::str::from_utf8(&bytes)
        .map_err(|e| StorageError::Persist(format!("snapshot is not UTF-8: {e}")))?;
    // Try the versioned wrapper first; a bare universe fails its field
    // check and falls through to the legacy path.
    if let Ok(snap) = serde_json::from_str::<SnapshotFile>(json) {
        if snap.format > SNAPSHOT_FORMAT {
            return Err(StorageError::Persist(format!(
                "snapshot format v{} is newer than this build understands (v{SNAPSHOT_FORMAT})",
                snap.format
            )));
        }
        let meta = SnapshotMeta {
            lsn: snap.lsn,
            gen: 0,
            maintenance: snap.maintenance,
            codec: SnapshotCodec::Json,
        };
        return Ok((Store::from_universe(snap.universe)?, meta));
    }
    let meta = SnapshotMeta { lsn: 0, gen: 0, maintenance: None, codec: SnapshotCodec::Json };
    Ok((from_json(json)?, meta))
}

/// Removes stale snapshot temp files (`*.tmp`) left in `dir` by crashed
/// or concurrent writers that never reached their rename. Returns how
/// many were removed.
#[deprecated(
    note = "superseded by the StorageEngine trait (`crate::engine`) — open a\nMemStorage/PagedStorage and commit through apply_full/apply_delta instead"
)]
pub fn clean_stale_temps(vfs: &dyn Vfs, dir: &Path) -> StorageResult<u64> {
    let mut removed = 0;
    let entries = match vfs.list_dir(dir) {
        Ok(entries) => entries,
        Err(_) => return Ok(0), // directory may not exist yet
    };
    for path in entries {
        let is_tmp = path.extension().is_some_and(|e| e == "tmp");
        if is_tmp && vfs.remove_file(&path).is_ok() {
            removed += 1;
        }
    }
    Ok(removed)
}

/// Writes a snapshot atomically (temp file + fsync + rename + dir fsync)
/// on the real file system, in the legacy bare-universe encoding.
#[allow(deprecated)]
pub fn save_snapshot(store: &Store, path: &Path) -> StorageResult<()> {
    save_snapshot_vfs(&RealVfs::new(), store, path, None, true)
}

/// Loads a snapshot written by [`save_snapshot`] (either encoding).
#[allow(deprecated)]
pub fn load_snapshot(path: &Path) -> StorageResult<Store> {
    load_snapshot_vfs(&RealVfs::new(), path).map(|(store, _)| store)
}

#[cfg(test)]
#[allow(deprecated)]
mod tests {
    use super::*;
    use crate::vfs::{FaultPlan, SimVfs};
    use idl_object::tuple;

    #[test]
    fn json_round_trip() {
        let mut s = Store::new();
        s.insert("euter", "r", tuple! { stkCode: "hp", clsPrice: 50.5f64 }).unwrap();
        s.insert("chwab", "r", tuple! { date: "3/3/85", hp: 50.5f64 }).unwrap();
        let json = to_json(&s).unwrap();
        let s2 = from_json(&json).unwrap();
        assert_eq!(s.universe(), s2.universe());
    }

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir().join("idl-storage-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("snap.json");
        let mut s = Store::new();
        s.insert("db", "r", tuple! { a: 1i64 }).unwrap();
        save_snapshot(&s, &path).unwrap();
        let s2 = load_snapshot(&path).unwrap();
        assert_eq!(s.universe(), s2.universe());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn bad_json_is_error() {
        assert!(matches!(from_json("not json"), Err(StorageError::Persist(_))));
        // valid JSON that decodes to a non-tuple universe is rejected
        let atom_json = serde_json::to_string(&idl_object::Value::int(42)).unwrap();
        assert!(matches!(from_json(&atom_json), Err(StorageError::ShapeViolation(_))));
    }

    #[test]
    fn wrapper_format_carries_the_lsn_and_legacy_still_loads() {
        let vfs = SimVfs::new(FaultPlan::none(1));
        let dir = Path::new("/snapdir");
        vfs.create_dir_all(dir).unwrap();
        let mut s = Store::new();
        s.insert("db", "r", tuple! { a: 1i64 }).unwrap();

        let wrapped = dir.join("u2.json");
        save_snapshot_vfs(&vfs, &s, &wrapped, Some(17), true).unwrap();
        let (s2, lsn) = load_snapshot_vfs(&vfs, &wrapped).unwrap();
        assert_eq!(lsn, 17);
        assert_eq!(s.universe(), s2.universe());

        let bare = dir.join("u1.json");
        save_snapshot_vfs(&vfs, &s, &bare, None, true).unwrap();
        let (s3, lsn) = load_snapshot_vfs(&vfs, &bare).unwrap();
        assert_eq!(lsn, 0, "legacy bare universe reads as lsn 0");
        assert_eq!(s.universe(), s3.universe());
    }

    #[test]
    fn wrapper_state_blob_round_trips_and_stateless_wrappers_read_as_none() {
        let vfs = SimVfs::new(FaultPlan::none(11));
        let dir = Path::new("/snapdir");
        vfs.create_dir_all(dir).unwrap();
        let mut s = Store::new();
        s.insert("db", "r", tuple! { a: 1i64 }).unwrap();

        let path = dir.join("u.json");
        let blob = r#"{"rules":["r1"],"views":[{"db":"v","rel":"x","rows":3}]}"#.to_string();
        save_snapshot_vfs_with_state(&vfs, &s, &path, Some(5), true, Some(blob.clone())).unwrap();
        let (s2, lsn, state) = load_snapshot_vfs_with_state(&vfs, &path).unwrap();
        assert_eq!(lsn, 5);
        assert_eq!(s.universe(), s2.universe());
        assert_eq!(state, Some(blob));
        // the plain loader still works on a state-carrying snapshot
        let (_, lsn) = load_snapshot_vfs(&vfs, &path).unwrap();
        assert_eq!(lsn, 5);

        // a wrapper written without state (older build) reads back None
        save_snapshot_vfs(&vfs, &s, &path, Some(6), true).unwrap();
        let (_, _, state) = load_snapshot_vfs_with_state(&vfs, &path).unwrap();
        assert_eq!(state, None);
    }

    #[test]
    fn binary_snapshot_round_trips_with_meta() {
        let vfs = SimVfs::new(FaultPlan::none(21));
        let dir = Path::new("/snapdir");
        vfs.create_dir_all(dir).unwrap();
        let mut s = Store::new();
        s.insert("euter", "r", tuple! { stkCode: "hp", clsPrice: 50.5f64 }).unwrap();
        let path = dir.join("u.bin");

        let bytes = save_snapshot_vfs_codec(
            &vfs,
            &s,
            &path,
            SnapshotCodec::Binary,
            4,
            23,
            true,
            Some("state".into()),
        )
        .unwrap();
        assert_eq!(bytes, vfs.read(&path).unwrap().len() as u64);

        let (s2, meta) = load_snapshot_vfs_meta(&vfs, &path).unwrap();
        assert_eq!(s.universe(), s2.universe());
        assert_eq!(
            meta,
            SnapshotMeta {
                lsn: 23,
                gen: 4,
                maintenance: Some("state".into()),
                codec: SnapshotCodec::Binary
            }
        );
        // the legacy-named loaders read it transparently too
        let (_, lsn, state) = load_snapshot_vfs_with_state(&vfs, &path).unwrap();
        assert_eq!((lsn, state), (23, Some("state".into())));
    }

    #[test]
    fn binary_snapshots_are_smaller_than_json() {
        let vfs = SimVfs::new(FaultPlan::none(22));
        let dir = Path::new("/snapdir");
        vfs.create_dir_all(dir).unwrap();
        let mut s = Store::new();
        for i in 0..200i64 {
            s.insert("euter", "r", tuple! { stkCode: "ibm", clsPrice: i, volumeTraded: i * 7 })
                .unwrap();
        }
        let jb = save_snapshot_vfs_codec(
            &vfs,
            &s,
            &dir.join("u.json"),
            SnapshotCodec::Json,
            0,
            1,
            true,
            None,
        )
        .unwrap();
        let bb = save_snapshot_vfs_codec(
            &vfs,
            &s,
            &dir.join("u.bin"),
            SnapshotCodec::Binary,
            1,
            1,
            true,
            None,
        )
        .unwrap();
        assert!(bb * 3 < jb, "binary {bb} bytes vs json {jb} bytes");
    }

    #[test]
    fn delta_file_round_trips() {
        use crate::codec::{DeltaBlob, DeltaEntry};
        let vfs = SimVfs::new(FaultPlan::none(23));
        let dir = Path::new("/snapdir");
        vfs.create_dir_all(dir).unwrap();
        let path = dir.join("universe.delta.1");
        let delta = DeltaBlob {
            gen: 2,
            seq: 1,
            prev_lsn: 5,
            lsn: 9,
            maintenance: None,
            entries: vec![DeltaEntry::PutRelation {
                db: idl_object::Name::new("euter"),
                rel: idl_object::Name::new("r"),
                value: idl_object::Value::empty_set(),
            }],
        };
        let bytes = save_delta_vfs(&vfs, &path, &delta, true).unwrap();
        assert_eq!(bytes, vfs.read(&path).unwrap().len() as u64);
        assert_eq!(load_delta_vfs(&vfs, &path).unwrap(), delta);
    }

    #[test]
    fn snapshot_save_leaves_no_temp_behind() {
        let vfs = SimVfs::new(FaultPlan::none(2));
        let dir = Path::new("/snapdir");
        vfs.create_dir_all(dir).unwrap();
        let s = Store::new();
        save_snapshot_vfs(&vfs, &s, &dir.join("u.json"), Some(0), true).unwrap();
        let listing = vfs.list_dir(dir).unwrap();
        assert_eq!(listing, vec![dir.join("u.json")], "{listing:?}");
    }

    #[test]
    fn stale_temps_are_swept() {
        let vfs = SimVfs::new(FaultPlan::none(3));
        let dir = Path::new("/snapdir");
        vfs.create_dir_all(dir).unwrap();
        vfs.write(&dir.join("u.json.999.0.tmp"), b"{ torn").unwrap();
        vfs.write(&dir.join("u.json.999.1.tmp"), b"{ torn too").unwrap();
        vfs.write(&dir.join("u.json"), b"{}").unwrap();
        assert_eq!(clean_stale_temps(&vfs, dir).unwrap(), 2);
        assert_eq!(vfs.list_dir(dir).unwrap(), vec![dir.join("u.json")]);
        // missing directory is fine
        assert_eq!(clean_stale_temps(&vfs, Path::new("/nope")).unwrap(), 0);
    }

    #[test]
    fn crashed_snapshot_write_never_exposes_a_torn_target() {
        // Crash at every op of the save protocol; after power-up the
        // target either holds the old complete snapshot or the new one.
        let mut s_old = Store::new();
        s_old.insert("db", "r", tuple! { a: 1i64 }).unwrap();
        let mut s_new = Store::new();
        s_new.insert("db", "r", tuple! { a: 2i64 }).unwrap();
        let old_json = serde_json::to_string(&SnapshotFile {
            format: SNAPSHOT_FORMAT,
            lsn: 1,
            universe: s_old.universe().clone(),
            maintenance: None,
        })
        .unwrap();

        for op in 1..=8 {
            for seed in [1u64, 99, 4242] {
                // lay down the old snapshot durably (3 ops), then arm the
                // crash `op` operations into the new save
                let vfs2 = SimVfs::new(FaultPlan::none(seed).with_crash_at(3 + op));
                let dir = Path::new("/d");
                vfs2.create_dir_all(dir).unwrap();
                let path = dir.join("u.json");
                vfs2.write(&path, old_json.as_bytes()).unwrap();
                vfs2.sync_file(&path).unwrap();
                vfs2.sync_dir(dir).unwrap();
                let res = save_snapshot_vfs(&vfs2, &s_new, &path, Some(2), true);
                if res.is_ok() {
                    continue; // crash point landed past this protocol
                }
                vfs2.power_cycle();
                let (got, lsn) = load_snapshot_vfs(&vfs2, &path)
                    .unwrap_or_else(|e| panic!("torn snapshot at op {op} seed {seed}: {e}"));
                let ok_old = got.universe() == s_old.universe() && lsn == 1;
                let ok_new = got.universe() == s_new.universe() && lsn == 2;
                assert!(ok_old || ok_new, "op {op} seed {seed}: neither old nor new snapshot");
            }
        }
    }
}
