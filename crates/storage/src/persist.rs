//! Snapshot persistence.
//!
//! The universe object serialises losslessly to JSON via `serde`; a
//! snapshot file plus the (in-memory) journal is the crash-recovery story
//! of this embedded substrate. Atomicity is provided by writing to a
//! temporary file and renaming over the target.

use crate::error::{StorageError, StorageResult};
use crate::store::Store;
use idl_object::Value;
use std::fs;
use std::path::Path;

/// Serialises the universe to a JSON string.
pub fn to_json(store: &Store) -> StorageResult<String> {
    serde_json::to_string(store.universe()).map_err(|e| StorageError::Persist(e.to_string()))
}

/// Deserialises a universe from a JSON string into a fresh store.
pub fn from_json(json: &str) -> StorageResult<Store> {
    let universe: Value =
        serde_json::from_str(json).map_err(|e| StorageError::Persist(e.to_string()))?;
    Store::from_universe(universe)
}

/// Writes a snapshot atomically (temp file + rename).
pub fn save_snapshot(store: &Store, path: &Path) -> StorageResult<()> {
    let json = to_json(store)?;
    let tmp = path.with_extension("tmp");
    fs::write(&tmp, json).map_err(|e| StorageError::Persist(e.to_string()))?;
    fs::rename(&tmp, path).map_err(|e| StorageError::Persist(e.to_string()))
}

/// Loads a snapshot written by [`save_snapshot`].
pub fn load_snapshot(path: &Path) -> StorageResult<Store> {
    let json = fs::read_to_string(path).map_err(|e| StorageError::Persist(e.to_string()))?;
    from_json(&json)
}

#[cfg(test)]
mod tests {
    use super::*;
    use idl_object::tuple;

    #[test]
    fn json_round_trip() {
        let mut s = Store::new();
        s.insert("euter", "r", tuple! { stkCode: "hp", clsPrice: 50.5f64 }).unwrap();
        s.insert("chwab", "r", tuple! { date: "3/3/85", hp: 50.5f64 }).unwrap();
        let json = to_json(&s).unwrap();
        let s2 = from_json(&json).unwrap();
        assert_eq!(s.universe(), s2.universe());
    }

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir().join("idl-storage-test");
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("snap.json");
        let mut s = Store::new();
        s.insert("db", "r", tuple! { a: 1i64 }).unwrap();
        save_snapshot(&s, &path).unwrap();
        let s2 = load_snapshot(&path).unwrap();
        assert_eq!(s.universe(), s2.universe());
        fs::remove_file(&path).ok();
    }

    #[test]
    fn bad_json_is_error() {
        assert!(matches!(from_json("not json"), Err(StorageError::Persist(_))));
        // valid JSON that decodes to a non-tuple universe is rejected
        let atom_json = serde_json::to_string(&idl_object::Value::int(42)).unwrap();
        assert!(matches!(from_json(&atom_json), Err(StorageError::ShapeViolation(_))));
    }
}
