//! The pluggable storage API: [`StorageEngine`] and its two backends.
//!
//! The durable engine (in the `idl` crate) separates *what* must persist
//! — the universe at each checkpoint, plus the op-log tail — from *how*
//! it is represented on disk. This module owns the "how" behind one
//! trait:
//!
//! * [`MemStorage`] — the original representation: the whole universe in
//!   RAM, checkpoints written as atomic snapshot files
//!   (`universe.json`) extended by an incremental delta chain
//!   (`universe.delta.N`), exactly the artifacts the pre-trait free
//!   functions in [`crate::persist`] produced.
//! * [`PagedStorage`] — a paged representation: a single page file
//!   (`pages.idb`) holding a catalog B-tree, per-relation row B-trees,
//!   and a blob heap, fronted by a fixed-capacity buffer pool
//!   ([`crate::buffer_pool`]) with SIEVE eviction. Commits are
//!   shadow-paged: modified pages go to fresh page ids, and a
//!   double-buffered meta page (slots 0/1, alternating by commit epoch)
//!   flips the root atomically *after* the data pages sync — the
//!   write-back order that makes torn commits fall back to the previous
//!   epoch.
//!
//! Both backends speak the same checkpoint vocabulary as the delta
//! chain: [`apply_full`](StorageEngine::apply_full) persists the whole
//! universe, [`apply_delta`](StorageEngine::apply_delta) persists only
//! the databases/relations dirtied since the previous checkpoint (for
//! the paged backend that means B-tree edits against the live file, not
//! a rewrite). [`recover`](StorageEngine::recover) returns the universe
//! the artifacts cover plus the op-log LSN to replay from.
//!
//! Backend choice is a [`StorageSpec`]: `DurabilityOptions` builders,
//! the `idl --storage` flag, and the `IDL_STORAGE` environment variable
//! all parse into one.

use crate::btree;
use crate::buffer_pool::{BufferPool, BufferPoolStats, Pager};
use crate::codec::{self, DeltaBlob, DeltaEntry, SnapshotCodec};
use crate::error::{StorageError, StorageResult};
use crate::heap;
use crate::page::{self, BlobRef, Meta, PageId, PageRef, PAGE_SIZE};
use crate::persist;
use crate::store::Store;
use crate::vfs::Vfs;
use idl_object::{Name, Value};
use std::collections::BTreeSet;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Default buffer-pool capacity for the paged backend, in pages (4 MiB).
pub const DEFAULT_POOL_PAGES: usize = 1024;

/// Which storage backend a durable directory uses.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum StorageSpec {
    /// In-memory universe, snapshot + delta-chain checkpoint files.
    #[default]
    Mem,
    /// Slotted-page file with B-trees and a buffer pool.
    Paged {
        /// Buffer-pool capacity in pages.
        pool_pages: usize,
    },
}

impl StorageSpec {
    /// The paged spec with the default pool size.
    pub fn paged() -> StorageSpec {
        StorageSpec::Paged { pool_pages: DEFAULT_POOL_PAGES }
    }
}

impl std::fmt::Display for StorageSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StorageSpec::Mem => write!(f, "mem"),
            StorageSpec::Paged { pool_pages } => write!(f, "paged:{pool_pages}"),
        }
    }
}

impl std::str::FromStr for StorageSpec {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "mem" | "memory" => Ok(StorageSpec::Mem),
            "paged" => Ok(StorageSpec::paged()),
            other => match other.strip_prefix("paged:") {
                Some(n) => match n.parse::<usize>() {
                    Ok(pages) if pages > 0 => Ok(StorageSpec::Paged { pool_pages: pages }),
                    _ => Err(format!("bad pool size '{n}' (expected a positive page count)")),
                },
                None => Err(format!("unknown storage '{other}' (expected mem|paged|paged:N)")),
            },
        }
    }
}

/// Everything a commit needs beyond its entries: the op-log LSN the new
/// checkpoint covers, the maintenance-state blob riding it, and whether
/// to fsync.
#[derive(Clone, Debug)]
pub struct CommitSeal {
    /// Op-log LSN the committed state covers.
    pub lsn: u64,
    /// Opaque view-maintenance state (`None` = views were stale).
    pub maintenance: Option<String>,
    /// Whether the commit fsyncs before acknowledging.
    pub sync: bool,
}

/// How a commit was persisted.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CommitKind {
    /// Incrementally (delta file, or in-place B-tree edits).
    Delta,
    /// As a full rewrite of the universe.
    Full,
}

/// What a commit did, for the caller's durability counters.
#[derive(Clone, Copy, Debug)]
pub struct CommitInfo {
    /// Delta or full.
    pub kind: CommitKind,
    /// Bytes written to checkpoint artifacts by this commit.
    pub bytes_written: u64,
    /// Delta-chain length after the commit (always 0 for paged storage,
    /// which has no chain to compact).
    pub chain_len: u64,
}

/// What [`StorageEngine::recover`] found.
#[derive(Clone, Debug, Default)]
pub struct RecoveredState {
    /// The universe the checkpoint artifacts cover (`None` = no base
    /// state on disk; start empty and replay the whole log).
    pub universe: Option<Value>,
    /// Op-log LSN the recovered state covers.
    pub lsn: u64,
    /// Maintenance-state blob of the newest artifact.
    pub maintenance: Option<String>,
    /// Delta-chain length adopted (0 for paged storage).
    pub chain_len: u64,
    /// Stale temp files swept from the directory.
    pub stale_temps_removed: u64,
    /// Whether a legacy JSON snapshot was migrated to binary.
    pub migrated_snapshot: bool,
    /// Bytes written by that migration.
    pub migration_bytes: u64,
}

/// A checkpoint representation: where committed universes live between
/// runs of the durable engine. See the module docs for the two backends.
pub trait StorageEngine: Send {
    /// The spec this backend was opened with.
    fn spec(&self) -> StorageSpec;

    /// Loads (or initialises) the on-disk state. Called once, before any
    /// commit or read.
    fn recover(&mut self) -> StorageResult<RecoveredState>;

    /// Whether the next checkpoint may be incremental. `max_chain` is
    /// the policy bound on delta-chain length (0 forces full
    /// checkpoints; the paged backend has no chain and only needs it to
    /// be nonzero).
    fn can_delta(&self, max_chain: usize) -> bool;

    /// Commits the databases/relations dirtied since the previous
    /// checkpoint. Only valid when [`can_delta`](Self::can_delta) said
    /// so. On error nothing is committed.
    fn apply_delta(
        &mut self,
        entries: &[DeltaEntry],
        seal: &CommitSeal,
    ) -> StorageResult<CommitInfo>;

    /// Commits the whole universe. On error nothing is committed.
    fn apply_full(&mut self, store: &Store, seal: &CommitSeal) -> StorageResult<CommitInfo>;

    /// Reads one relation's committed value back from storage (`None` =
    /// the database or relation does not exist in the committed state).
    /// For the paged backend this is a page-file read through the buffer
    /// pool; for the mem backend it reads the retained in-RAM image.
    fn read_relation(&mut self, db: &str, rel: &str) -> StorageResult<Option<Value>>;

    /// Buffer-pool counters (`None` for backends without a pool).
    fn pool_stats(&self) -> Option<BufferPoolStats>;

    /// Logical size of the page file in pages (0 for backends without
    /// one) — with [`BufferPoolStats::capacity`] this is how "the data
    /// outgrew the pool" becomes observable.
    fn file_pages(&self) -> u64 {
        0
    }
}

/// Opens the backend named by `spec` rooted at `dir` (nothing is read
/// until [`StorageEngine::recover`]). `codec` and `sync` govern how the
/// mem backend writes snapshots; the paged backend always writes its
/// binary page formats.
pub fn open_storage(
    spec: StorageSpec,
    vfs: Arc<dyn Vfs>,
    dir: &Path,
    codec: SnapshotCodec,
    sync: bool,
) -> Box<dyn StorageEngine> {
    match spec {
        StorageSpec::Mem => Box::new(MemStorage::new(vfs, dir, codec, sync)),
        StorageSpec::Paged { pool_pages } => Box::new(PagedStorage::new(vfs, dir, pool_pages)),
    }
}

// =================================================================== mem

/// The snapshot + delta-chain backend (see module docs).
pub struct MemStorage {
    vfs: Arc<dyn Vfs>,
    dir: PathBuf,
    /// Codec full snapshots are written in.
    codec: SnapshotCodec,
    sync: bool,
    /// Codec of the base snapshot currently on disk.
    disk_codec: SnapshotCodec,
    has_base: bool,
    gen: u64,
    chain_len: u64,
    /// LSN covered by the newest artifact (a delta's `prev_lsn`).
    ckpt_lsn: u64,
    /// Copy-on-write image of the committed universe, kept for
    /// [`StorageEngine::read_relation`] (shares interiors with the live
    /// store until either side mutates — O(1) to retain).
    universe: Value,
}

impl MemStorage {
    /// A mem backend rooted at `dir`; call `recover` before use.
    pub fn new(
        vfs: Arc<dyn Vfs>,
        dir: impl Into<PathBuf>,
        codec: SnapshotCodec,
        sync: bool,
    ) -> MemStorage {
        MemStorage {
            vfs,
            dir: dir.into(),
            codec,
            sync,
            disk_codec: codec,
            has_base: false,
            gen: 0,
            chain_len: 0,
            ckpt_lsn: 0,
            universe: Value::empty_tuple(),
        }
    }

    fn snapshot_path(&self) -> PathBuf {
        self.dir.join("universe.json")
    }

    fn delta_path(&self, seq: u64) -> PathBuf {
        self.dir.join(format!("universe.delta.{seq}"))
    }

    /// Best-effort removal of delta files from `from_seq` upward (stale
    /// chain members from an older generation or a cleared chain).
    fn sweep_deltas(&self, from_seq: u64) {
        let mut k = from_seq;
        while self.vfs.exists(&self.delta_path(k)) {
            if self.vfs.remove_file(&self.delta_path(k)).is_err() {
                break;
            }
            k += 1;
        }
    }

    fn apply_entries(universe: &mut Value, entries: &[DeltaEntry]) {
        for e in entries {
            let Some(t) = universe.as_tuple_mut() else { return };
            match e {
                DeltaEntry::DropDatabase { db } => {
                    t.remove(db.as_str());
                }
                DeltaEntry::PutDatabase { db, value } => {
                    t.insert(db.clone(), value.clone());
                }
                DeltaEntry::DropRelation { db, rel } => {
                    if let Some(dbt) = t.get_mut(db.as_str()).and_then(|v| v.as_tuple_mut()) {
                        dbt.remove(rel.as_str());
                    }
                }
                DeltaEntry::PutRelation { db, rel, value } => {
                    if let Some(dbt) = t.get_mut(db.as_str()).and_then(|v| v.as_tuple_mut()) {
                        dbt.insert(rel.clone(), value.clone());
                    }
                }
            }
        }
    }
}

#[allow(deprecated)] // the backends are what the deprecated free functions became
impl StorageEngine for MemStorage {
    fn spec(&self) -> StorageSpec {
        StorageSpec::Mem
    }

    fn recover(&mut self) -> StorageResult<RecoveredState> {
        let mut out = RecoveredState {
            stale_temps_removed: persist::clean_stale_temps(self.vfs.as_ref(), &self.dir)?,
            ..RecoveredState::default()
        };
        let snap = self.snapshot_path();
        if !self.vfs.exists(&snap) {
            self.has_base = false;
            return Ok(out);
        }
        self.has_base = true;
        let (store, meta) = persist::load_snapshot_vfs_meta(self.vfs.as_ref(), &snap)?;
        self.gen = meta.gen;
        self.disk_codec = meta.codec;
        let mut covered = meta.lsn;
        let mut maint = meta.maintenance;
        // Replay the delta chain: universe.delta.1, .2, … as long as each
        // member links to what came before (same generation, consecutive
        // seq, prev_lsn = the LSN covered so far). A member failing any
        // of those is a stale leftover — a crash window between a full
        // checkpoint and its chain sweep — and ends the chain.
        let mut universe = store.universe().clone();
        self.chain_len = 0;
        if meta.codec == SnapshotCodec::Binary {
            loop {
                let path = self.delta_path(self.chain_len + 1);
                if !self.vfs.exists(&path) {
                    break;
                }
                let Ok(delta) = persist::load_delta_vfs(self.vfs.as_ref(), &path) else { break };
                if delta.gen != self.gen
                    || delta.seq != self.chain_len + 1
                    || delta.prev_lsn != covered
                {
                    break;
                }
                codec::apply_delta(&mut universe, &delta)?;
                covered = delta.lsn;
                maint = delta.maintenance;
                self.chain_len += 1;
            }
        }
        self.sweep_deltas(self.chain_len + 1);
        if self.codec == SnapshotCodec::Binary && meta.codec == SnapshotCodec::Json {
            // One-shot migration: re-save the recovered checkpoint state
            // (base + any impossible chain — JSON bases have none) as a
            // binary base covering the same LSN, before the log tail
            // replays. A crash mid-write leaves the old JSON base intact
            // (atomic rename), so migration simply re-runs at the next
            // open.
            self.gen = 1;
            let bytes = codec::encode_snapshot(&universe, self.gen, covered, maint.as_deref());
            persist::write_atomic(self.vfs.as_ref(), &snap, &bytes, self.sync)?;
            self.disk_codec = SnapshotCodec::Binary;
            out.migrated_snapshot = true;
            out.migration_bytes = bytes.len() as u64;
        }
        self.ckpt_lsn = covered;
        self.universe = universe.clone();
        out.universe = Some(universe);
        out.lsn = covered;
        out.maintenance = maint;
        out.chain_len = self.chain_len;
        Ok(out)
    }

    fn can_delta(&self, max_chain: usize) -> bool {
        self.has_base
            && self.codec == SnapshotCodec::Binary
            && self.disk_codec == SnapshotCodec::Binary
            && (self.chain_len as usize) < max_chain
    }

    fn apply_delta(
        &mut self,
        entries: &[DeltaEntry],
        seal: &CommitSeal,
    ) -> StorageResult<CommitInfo> {
        let seq = self.chain_len + 1;
        let blob = DeltaBlob {
            gen: self.gen,
            seq,
            prev_lsn: self.ckpt_lsn,
            lsn: seal.lsn,
            maintenance: seal.maintenance.clone(),
            entries: entries.to_vec(),
        };
        let bytes =
            persist::save_delta_vfs(self.vfs.as_ref(), &self.delta_path(seq), &blob, seal.sync)?;
        self.chain_len = seq;
        self.ckpt_lsn = seal.lsn;
        Self::apply_entries(&mut self.universe, entries);
        Ok(CommitInfo { kind: CommitKind::Delta, bytes_written: bytes, chain_len: self.chain_len })
    }

    fn apply_full(&mut self, store: &Store, seal: &CommitSeal) -> StorageResult<CommitInfo> {
        // The new base gets a fresh generation, so any chain member
        // surviving a crash before the sweep below is rejected (and
        // removed) at the next open.
        let bytes = persist::save_snapshot_vfs_codec(
            self.vfs.as_ref(),
            store,
            &self.snapshot_path(),
            self.codec,
            self.gen + 1,
            seal.lsn,
            seal.sync,
            seal.maintenance.clone(),
        )?;
        self.gen += 1;
        self.has_base = true;
        self.disk_codec = self.codec;
        self.sweep_deltas(1);
        self.chain_len = 0;
        self.ckpt_lsn = seal.lsn;
        self.universe = store.universe().clone();
        Ok(CommitInfo { kind: CommitKind::Full, bytes_written: bytes, chain_len: 0 })
    }

    fn read_relation(&mut self, db: &str, rel: &str) -> StorageResult<Option<Value>> {
        Ok(self.universe.attr(db).and_then(|d| d.attr(rel)).cloned())
    }

    fn pool_stats(&self) -> Option<BufferPoolStats> {
        None
    }
}

// ================================================================= paged
//
// Catalog key encoding (byte-ordered so a database's entry sorts
// immediately before its relations'):
//
//   universe blob:  0x00
//   database:       0x01 varint(len) db
//   relation:       0x01 varint(len) db varint(len) rel
//
// Catalog values, tagged by first byte:
//
//   database  0x01                      — a tuple of relations (marker;
//                                         the relations follow as their
//                                         own entries)
//   database  0x02 BlobRef              — a non-tuple database value
//   relation  0x01 varint(count) PageRef — row B-tree (pid 0 = empty set)
//   relation  0x02 BlobRef              — non-set value, or a relation
//                                         with at least one jumbo row
//
// Rows are B-tree *keys* (sealed `codec::encode_value` containers, empty
// tree values). Key byte order is not value order; recovery re-sorts by
// decoding into the set. `BlobRef`/`PageRef` serialise as fixed-width LE.

/// Rows whose encoded form exceeds this fall the whole relation back to
/// a blob (a row must fit a B-tree cell; see [`btree::MAX_CELL`]).
const MAX_ROW: usize = 1600;

const KEY_UNIVERSE: &[u8] = &[0x00];
const VAL_TREE: u8 = 0x01;
const VAL_BLOB: u8 = 0x02;

fn corrupt(what: impl std::fmt::Display) -> StorageError {
    StorageError::Persist(format!("catalog corruption: {what}"))
}

fn put_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

fn get_varint(buf: &[u8], pos: &mut usize) -> StorageResult<u64> {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        let b = *buf.get(*pos).ok_or_else(|| corrupt("truncated varint"))?;
        *pos += 1;
        v |= u64::from(b & 0x7f) << shift;
        if b & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
        if shift > 63 {
            return Err(corrupt("oversized varint"));
        }
    }
}

fn db_key(db: &str) -> Vec<u8> {
    let mut k = vec![0x01];
    put_varint(&mut k, db.len() as u64);
    k.extend_from_slice(db.as_bytes());
    k
}

fn rel_key(db: &str, rel: &str) -> Vec<u8> {
    let mut k = db_key(db);
    put_varint(&mut k, rel.len() as u64);
    k.extend_from_slice(rel.as_bytes());
    k
}

enum CatKey {
    Universe,
    Db(String),
    Rel(String, String),
}

fn parse_key(k: &[u8]) -> StorageResult<CatKey> {
    if k == KEY_UNIVERSE {
        return Ok(CatKey::Universe);
    }
    if k.first() != Some(&0x01) {
        return Err(corrupt("unknown catalog key tag"));
    }
    let mut pos = 1;
    let take = |pos: &mut usize| -> StorageResult<String> {
        let len = get_varint(k, pos)? as usize;
        let end = pos.checked_add(len).filter(|e| *e <= k.len());
        let end = end.ok_or_else(|| corrupt("catalog key name overruns the key"))?;
        let s = std::str::from_utf8(&k[*pos..end])
            .map_err(|_| corrupt("catalog key name is not UTF-8"))?
            .to_string();
        *pos = end;
        Ok(s)
    };
    let db = take(&mut pos)?;
    if pos == k.len() {
        return Ok(CatKey::Db(db));
    }
    let rel = take(&mut pos)?;
    if pos != k.len() {
        return Err(corrupt("catalog key has trailing bytes"));
    }
    Ok(CatKey::Rel(db, rel))
}

fn encode_blob_val(b: BlobRef) -> Vec<u8> {
    let mut v = vec![VAL_BLOB];
    v.extend_from_slice(&b.pid.to_le_bytes());
    v.extend_from_slice(&b.slot.to_le_bytes());
    v.extend_from_slice(&b.lsn.to_le_bytes());
    v.extend_from_slice(&b.len.to_le_bytes());
    v
}

fn decode_blob_val(v: &[u8]) -> StorageResult<BlobRef> {
    if v.len() != 27 {
        return Err(corrupt("blob reference has the wrong length"));
    }
    let u = |r: std::ops::Range<usize>| u64::from_le_bytes(v[r].try_into().expect("8 bytes"));
    Ok(BlobRef {
        pid: u(1..9),
        slot: u16::from_le_bytes(v[9..11].try_into().expect("2 bytes")),
        lsn: u(11..19),
        len: u(19..27),
    })
}

fn encode_tree_val(count: u64, root: PageRef) -> Vec<u8> {
    let mut v = vec![VAL_TREE];
    put_varint(&mut v, count);
    v.extend_from_slice(&root.pid.to_le_bytes());
    v.extend_from_slice(&root.lsn.to_le_bytes());
    v
}

fn decode_tree_val(v: &[u8]) -> StorageResult<(u64, PageRef)> {
    let mut pos = 1;
    let count = get_varint(v, &mut pos)?;
    if v.len() != pos + 16 {
        return Err(corrupt("row-tree reference has the wrong length"));
    }
    let pid = u64::from_le_bytes(v[pos..pos + 8].try_into().expect("8 bytes"));
    let lsn = u64::from_le_bytes(v[pos + 8..pos + 16].try_into().expect("8 bytes"));
    Ok((count, PageRef { pid, lsn }))
}

/// A decoded relation catalog value.
enum RelVal {
    Tree(u64, PageRef),
    Blob(BlobRef),
}

fn decode_rel_val(v: &[u8]) -> StorageResult<RelVal> {
    match v.first() {
        Some(&VAL_TREE) => decode_tree_val(v).map(|(c, r)| RelVal::Tree(c, r)),
        Some(&VAL_BLOB) => decode_blob_val(v).map(RelVal::Blob),
        _ => Err(corrupt("unknown relation value tag")),
    }
}

/// A decoded database catalog value.
enum DbVal {
    Tuple,
    Blob(BlobRef),
}

fn decode_db_val(v: &[u8]) -> StorageResult<DbVal> {
    match (v.first(), v.len()) {
        (Some(&VAL_TREE), 1) => Ok(DbVal::Tuple),
        (Some(&VAL_BLOB), _) => decode_blob_val(v).map(DbVal::Blob),
        _ => Err(corrupt("unknown database value tag")),
    }
}

/// The paged backend (see module docs): catalog + row B-trees + blob
/// heap in `pages.idb`, shadow-paged commits behind a buffer pool.
pub struct PagedStorage {
    vfs: Arc<dyn Vfs>,
    dir: PathBuf,
    path: PathBuf,
    pool_pages: usize,
    pager: Pager,
    meta: Meta,
    has_base: bool,
    /// Committed state is a whole-universe blob (non-tuple universe) —
    /// deltas cannot apply to it.
    universe_blob: bool,
    /// Whether the page file's directory entry has been fsynced.
    dir_synced: bool,
}

impl PagedStorage {
    /// A paged backend rooted at `dir`; call `recover` before use.
    pub fn new(vfs: Arc<dyn Vfs>, dir: impl Into<PathBuf>, pool_pages: usize) -> PagedStorage {
        let dir = dir.into();
        let path = dir.join("pages.idb");
        let pool = BufferPool::new(Arc::clone(&vfs), path.clone(), pool_pages);
        PagedStorage {
            vfs,
            dir,
            path,
            pool_pages,
            pager: Pager::new(pool, page::META_SLOTS, Vec::new()),
            meta: Meta { page_count: page::META_SLOTS, ..Meta::default() },
            has_base: false,
            universe_blob: false,
            dir_synced: false,
        }
    }

    /// The page file path (`<dir>/pages.idb`).
    pub fn path(&self) -> &Path {
        &self.path
    }

    fn read_meta_slot(&self, slot: u64) -> Option<Meta> {
        let len = self.vfs.file_len(&self.path).ok()?;
        if len < (slot + 1) * PAGE_SIZE as u64 {
            return None;
        }
        let bytes = self.vfs.read_at(&self.path, slot * PAGE_SIZE as u64, PAGE_SIZE).ok()?;
        Meta::decode(&bytes)
    }

    /// Loads the committed state `meta` describes: free-list sweep,
    /// universe materialization, maintenance blob. On error the pager
    /// holds partial state — the caller resets before trying another
    /// slot. `out` is only written on success.
    fn load_meta(&mut self, meta: Meta, out: &mut RecoveredState) -> StorageResult<()> {
        self.meta = meta;
        self.pager.reset(meta.page_count, Vec::new());
        // Mark-and-sweep the free list: everything under the live meta
        // is reachable; every other page id below page_count belongs to
        // overwritten epochs (or commits that never landed) and is free.
        let reachable = self.reachable(&meta)?;
        let free: Vec<PageId> =
            (page::META_SLOTS..meta.page_count).filter(|pid| !reachable.contains(pid)).collect();
        self.pager.reset(meta.page_count, free);
        let (universe, blob) = self.materialize()?;
        let maintenance = if meta.maintenance.pid != 0 {
            let bytes = heap::read_blob(&mut self.pager, meta.maintenance)?;
            Some(String::from_utf8(bytes).map_err(|_| corrupt("maintenance blob is not UTF-8"))?)
        } else {
            None
        };
        self.universe_blob = blob;
        self.has_base = true;
        out.universe = Some(universe);
        out.lsn = meta.lsn;
        out.maintenance = maintenance;
        Ok(())
    }

    /// Every page reachable from `meta` (catalog tree, row trees, blob
    /// chains, maintenance blob).
    fn reachable(&mut self, meta: &Meta) -> StorageResult<BTreeSet<PageId>> {
        let mut pages: Vec<PageId> = Vec::new();
        if meta.catalog.is_some() {
            btree::pages(&mut self.pager, meta.catalog, &mut pages)?;
            for (_, v) in btree::iter_all(&mut self.pager, meta.catalog)? {
                match v.first() {
                    Some(&VAL_TREE) if v.len() > 1 => {
                        let (_, root) = decode_tree_val(&v)?;
                        if root.is_some() {
                            btree::pages(&mut self.pager, root, &mut pages)?;
                        }
                    }
                    Some(&VAL_BLOB) => {
                        heap::blob_pages(&mut self.pager, decode_blob_val(&v)?, &mut pages)?;
                    }
                    _ => {}
                }
            }
        }
        if meta.maintenance.pid != 0 {
            heap::blob_pages(&mut self.pager, meta.maintenance, &mut pages)?;
        }
        Ok(pages.into_iter().collect())
    }

    /// Reads a relation catalog value back into an object-model value.
    fn load_rel_value(&mut self, raw: &[u8]) -> StorageResult<Value> {
        match decode_rel_val(raw)? {
            RelVal::Tree(count, root) => {
                let mut set = idl_object::SetObj::new();
                if root.is_some() {
                    let mut err = None;
                    btree::for_each(&mut self.pager, root, &mut |k, _| {
                        match codec::decode_value(k) {
                            Ok(v) => {
                                set.insert(v);
                            }
                            Err(e) => err = Some(e),
                        }
                        Ok(())
                    })?;
                    if let Some(e) = err {
                        return Err(e);
                    }
                }
                if set.len() as u64 != count {
                    return Err(corrupt(format!(
                        "row tree holds {} rows, catalog says {count}",
                        set.len()
                    )));
                }
                Ok(Value::Set(set))
            }
            RelVal::Blob(b) => {
                let bytes = heap::read_blob(&mut self.pager, b)?;
                codec::decode_value(&bytes)
            }
        }
    }

    /// Reads the committed universe off the page file.
    fn materialize(&mut self) -> StorageResult<(Value, bool)> {
        if !self.meta.catalog.is_some() {
            return Ok((Value::empty_tuple(), false));
        }
        let entries = btree::iter_all(&mut self.pager, self.meta.catalog)?;
        if let [(k, v)] = entries.as_slice() {
            if k.as_slice() == KEY_UNIVERSE {
                let b = decode_blob_val(v)?;
                let bytes = heap::read_blob(&mut self.pager, b)?;
                return Ok((codec::decode_value(&bytes)?, true));
            }
        }
        let mut dbs: Vec<(Name, Value)> = Vec::new();
        let mut cur: Option<(String, Value)> = None;
        for (k, v) in entries {
            match parse_key(&k)? {
                CatKey::Universe => {
                    return Err(corrupt("universe blob entry mixed with database entries"));
                }
                CatKey::Db(db) => {
                    if let Some((name, val)) = cur.take() {
                        dbs.push((Name::new(name), val));
                    }
                    let val = match decode_db_val(&v)? {
                        DbVal::Tuple => Value::empty_tuple(),
                        DbVal::Blob(b) => {
                            let bytes = heap::read_blob(&mut self.pager, b)?;
                            codec::decode_value(&bytes)?
                        }
                    };
                    cur = Some((db, val));
                }
                CatKey::Rel(db, rel) => {
                    let rv = self.load_rel_value(&v)?;
                    let Some((name, val)) = &mut cur else {
                        return Err(corrupt(format!(
                            "relation entry for {db}.{rel} before its database"
                        )));
                    };
                    if *name != db {
                        return Err(corrupt(format!(
                            "relation entry {db}.{rel} inside database {name}"
                        )));
                    }
                    val.as_tuple_mut()
                        .ok_or_else(|| {
                            corrupt(format!("relations inside non-tuple database {db}"))
                        })?
                        .insert(Name::new(rel), rv);
                }
            }
        }
        if let Some((name, val)) = cur.take() {
            dbs.push((Name::new(name), val));
        }
        let mut t = idl_object::TupleObj::new();
        for (name, val) in dbs {
            t.insert(name, val);
        }
        Ok((Value::Tuple(t), false))
    }

    /// Encodes a relation value into pages, returning its catalog value:
    /// a row B-tree when it is a set of cell-sized rows, a blob
    /// otherwise.
    fn store_rel_value(&mut self, value: &Value) -> StorageResult<Vec<u8>> {
        if let Value::Set(s) = value {
            if let Some(rows) = Self::encode_rows(s) {
                let root = btree::bulk_build(&mut self.pager, &rows)?;
                return Ok(encode_tree_val(s.len() as u64, root));
            }
        }
        let b = heap::write_blob(&mut self.pager, &codec::encode_value(value))?;
        Ok(encode_blob_val(b))
    }

    /// Encodes and byte-sorts a set's rows for a row tree; `None` when a
    /// row exceeds [`MAX_ROW`] (caller falls back to a blob).
    fn encode_rows(s: &idl_object::SetObj) -> Option<Vec<(Vec<u8>, Vec<u8>)>> {
        let mut rows: Vec<(Vec<u8>, Vec<u8>)> = Vec::with_capacity(s.len());
        for m in s.iter() {
            let k = codec::encode_value(m);
            if k.len() > MAX_ROW {
                return None;
            }
            rows.push((k, Vec::new()));
        }
        rows.sort();
        Some(rows)
    }

    /// Frees the pages behind one relation catalog value.
    fn free_rel_value(&mut self, raw: &[u8]) -> StorageResult<()> {
        match decode_rel_val(raw)? {
            RelVal::Tree(_, root) => {
                if root.is_some() {
                    btree::free_tree(&mut self.pager, root)?;
                }
            }
            RelVal::Blob(b) => heap::free_blob(&mut self.pager, b)?,
        }
        Ok(())
    }

    /// Removes a database — its entry, its relations' entries, and all
    /// their pages — from the catalog.
    fn drop_db(&mut self, catalog: &mut PageRef, db: &str) -> StorageResult<()> {
        if !catalog.is_some() {
            return Ok(());
        }
        let prefix = db_key(db);
        let mut doomed: Vec<(Vec<u8>, Vec<u8>)> = Vec::new();
        for (k, v) in btree::iter_all(&mut self.pager, *catalog)? {
            if k == prefix || (k.starts_with(&prefix) && k.len() > prefix.len()) {
                doomed.push((k, v));
            }
        }
        for (k, v) in doomed {
            if k == prefix {
                if let DbVal::Blob(b) = decode_db_val(&v)? {
                    heap::free_blob(&mut self.pager, b)?;
                }
            } else {
                self.free_rel_value(&v)?;
            }
            let (root, _) = btree::remove(&mut self.pager, *catalog, &k)?;
            *catalog = root;
        }
        Ok(())
    }

    /// Inserts a database (marker + relation entries, or a blob for a
    /// non-tuple value). The database must not already be present.
    fn put_db(&mut self, catalog: &mut PageRef, db: &str, value: &Value) -> StorageResult<()> {
        if let Value::Tuple(t) = value {
            *catalog = btree::insert(&mut self.pager, *catalog, &db_key(db), &[VAL_TREE])?;
            let rels: Vec<(Name, Value)> = t.iter().map(|(k, v)| (k.clone(), v.clone())).collect();
            for (rel, rv) in rels {
                let val = self.store_rel_value(&rv)?;
                *catalog =
                    btree::insert(&mut self.pager, *catalog, &rel_key(db, rel.as_str()), &val)?;
            }
        } else {
            let b = heap::write_blob(&mut self.pager, &codec::encode_value(value))?;
            *catalog = btree::insert(&mut self.pager, *catalog, &db_key(db), &encode_blob_val(b))?;
        }
        Ok(())
    }

    /// Replaces (or inserts) one relation. When both the old and new
    /// values are row trees, this is an incremental merge: unchanged
    /// rows keep their leaf pages, only touched paths shadow.
    fn put_rel(
        &mut self,
        catalog: &mut PageRef,
        db: &str,
        rel: &str,
        value: &Value,
    ) -> StorageResult<()> {
        if !self.db_entry_is_tuple(catalog, db)? {
            // The committed database is an opaque blob but the delta
            // speaks relation-granularity — rewrite the database whole.
            return self.rewrite_blob_db(
                catalog,
                db,
                |t, rel, value| {
                    t.insert(Name::new(rel), value.clone());
                },
                rel,
                value,
            );
        }
        let key = rel_key(db, rel);
        let old = btree::lookup(&mut self.pager, *catalog, &key)?;
        let new_rows = if let Value::Set(s) = value { Self::encode_rows(s) } else { None };
        let val = match (old, new_rows) {
            (Some(oldv), Some(rows)) if oldv.first() == Some(&VAL_TREE) => {
                let (_, old_root) = decode_tree_val(&oldv)?;
                let root = self.merge_rows(old_root, &rows)?;
                encode_tree_val(rows.len() as u64, root)
            }
            (old, _) => {
                if let Some(oldv) = old {
                    self.free_rel_value(&oldv)?;
                }
                self.store_rel_value(value)?
            }
        };
        *catalog = btree::insert(&mut self.pager, *catalog, &key, &val)?;
        Ok(())
    }

    /// Merge-walks the committed row tree against the new sorted rows,
    /// removing vanished rows and inserting fresh ones.
    fn merge_rows(
        &mut self,
        old_root: PageRef,
        new_rows: &[(Vec<u8>, Vec<u8>)],
    ) -> StorageResult<PageRef> {
        let mut old_keys: Vec<Vec<u8>> = Vec::new();
        if old_root.is_some() {
            btree::for_each(&mut self.pager, old_root, &mut |k, _| {
                old_keys.push(k.to_vec());
                Ok(())
            })?;
        }
        let mut root = old_root;
        let (mut i, mut j) = (0usize, 0usize);
        while i < old_keys.len() || j < new_rows.len() {
            let ord = match (old_keys.get(i), new_rows.get(j)) {
                (Some(o), Some((n, _))) => o.as_slice().cmp(n.as_slice()),
                (Some(_), None) => std::cmp::Ordering::Less,
                (None, _) => std::cmp::Ordering::Greater,
            };
            match ord {
                std::cmp::Ordering::Equal => {
                    i += 1;
                    j += 1;
                }
                std::cmp::Ordering::Less => {
                    let (r, _) = btree::remove(&mut self.pager, root, &old_keys[i])?;
                    root = r;
                    i += 1;
                }
                std::cmp::Ordering::Greater => {
                    root = btree::insert(&mut self.pager, root, &new_rows[j].0, &[])?;
                    j += 1;
                }
            }
        }
        Ok(root)
    }

    /// Removes one relation (the database entry survives).
    fn drop_rel(&mut self, catalog: &mut PageRef, db: &str, rel: &str) -> StorageResult<()> {
        if !self.db_entry_is_tuple(catalog, db)? {
            return self.rewrite_blob_db(
                catalog,
                db,
                |t, rel, _| {
                    t.remove(rel);
                },
                rel,
                &Value::null(),
            );
        }
        let key = rel_key(db, rel);
        if let Some(oldv) = btree::lookup(&mut self.pager, *catalog, &key)? {
            self.free_rel_value(&oldv)?;
            let (root, _) = btree::remove(&mut self.pager, *catalog, &key)?;
            *catalog = root;
        }
        Ok(())
    }

    /// Whether `db`'s catalog entry is the tuple marker (true also when
    /// the entry is absent — the caller will create it as a tuple).
    fn db_entry_is_tuple(&mut self, catalog: &mut PageRef, db: &str) -> StorageResult<bool> {
        match btree::lookup(&mut self.pager, *catalog, &db_key(db))? {
            Some(v) => Ok(matches!(decode_db_val(&v)?, DbVal::Tuple)),
            None => {
                // Delta granularity implies the database existed at the
                // previous checkpoint; create the marker defensively.
                *catalog = btree::insert(&mut self.pager, *catalog, &db_key(db), &[VAL_TREE])?;
                Ok(true)
            }
        }
    }

    /// Decodes a blob-stored database, applies a tuple edit, and stores
    /// it back (the degenerate path for relation-granularity deltas
    /// against a non-tuple committed database).
    fn rewrite_blob_db(
        &mut self,
        catalog: &mut PageRef,
        db: &str,
        edit: impl Fn(&mut idl_object::TupleObj, &str, &Value),
        rel: &str,
        value: &Value,
    ) -> StorageResult<()> {
        let old = btree::lookup(&mut self.pager, *catalog, &db_key(db))?
            .ok_or_else(|| corrupt(format!("database {db} vanished mid-delta")))?;
        let DbVal::Blob(b) = decode_db_val(&old)? else {
            return Err(corrupt(format!("database {db} is not blob-stored")));
        };
        let bytes = heap::read_blob(&mut self.pager, b)?;
        let mut dbv = codec::decode_value(&bytes)?;
        match dbv.as_tuple_mut() {
            Some(t) => edit(t, rel, value),
            None => {
                return Err(corrupt(format!(
                    "relation-granularity delta against non-tuple database {db}"
                )));
            }
        }
        // drop_db frees the entry's blob chain; freeing `b` here too
        // would put the same pages on the free list twice.
        self.drop_db(catalog, db)?;
        self.put_db(catalog, db, &dbv)
    }

    /// The body of [`StorageEngine::apply_delta`] (wrapped for abort).
    fn delta_txn(&mut self, entries: &[DeltaEntry], seal: &CommitSeal) -> StorageResult<u64> {
        let mut catalog = self.meta.catalog;
        for e in entries {
            match e {
                DeltaEntry::DropDatabase { db } => self.drop_db(&mut catalog, db.as_str())?,
                DeltaEntry::PutDatabase { db, value } => {
                    self.drop_db(&mut catalog, db.as_str())?;
                    self.put_db(&mut catalog, db.as_str(), value)?;
                }
                DeltaEntry::DropRelation { db, rel } => {
                    self.drop_rel(&mut catalog, db.as_str(), rel.as_str())?;
                }
                DeltaEntry::PutRelation { db, rel, value } => {
                    self.put_rel(&mut catalog, db.as_str(), rel.as_str(), value)?;
                }
            }
        }
        self.finish_commit(catalog, seal)
    }

    /// The body of [`StorageEngine::apply_full`] (wrapped for abort):
    /// frees every committed page and rebuilds the file's trees from the
    /// live universe with bulk-packed leaves.
    fn full_txn(&mut self, universe: &Value, seal: &CommitSeal) -> StorageResult<(u64, bool)> {
        if self.meta.catalog.is_some() {
            for (k, v) in btree::iter_all(&mut self.pager, self.meta.catalog)? {
                match parse_key(&k)? {
                    CatKey::Db(_) => {
                        if let DbVal::Blob(b) = decode_db_val(&v)? {
                            heap::free_blob(&mut self.pager, b)?;
                        }
                    }
                    CatKey::Rel(..) => self.free_rel_value(&v)?,
                    CatKey::Universe => heap::free_blob(&mut self.pager, decode_blob_val(&v)?)?,
                }
            }
            btree::free_tree(&mut self.pager, self.meta.catalog)?;
        }
        let mut items: Vec<(Vec<u8>, Vec<u8>)> = Vec::new();
        let blob_universe = !matches!(universe, Value::Tuple(_));
        if blob_universe {
            let b = heap::write_blob(&mut self.pager, &codec::encode_value(universe))?;
            items.push((KEY_UNIVERSE.to_vec(), encode_blob_val(b)));
        } else if let Value::Tuple(t) = universe {
            let dbs: Vec<(Name, Value)> = t.iter().map(|(k, v)| (k.clone(), v.clone())).collect();
            for (db, dbv) in dbs {
                if let Value::Tuple(rels) = &dbv {
                    items.push((db_key(db.as_str()), vec![VAL_TREE]));
                    let rels: Vec<(Name, Value)> =
                        rels.iter().map(|(k, v)| (k.clone(), v.clone())).collect();
                    for (rel, rv) in rels {
                        let val = self.store_rel_value(&rv)?;
                        items.push((rel_key(db.as_str(), rel.as_str()), val));
                    }
                } else {
                    let b = heap::write_blob(&mut self.pager, &codec::encode_value(&dbv))?;
                    items.push((db_key(db.as_str()), encode_blob_val(b)));
                }
            }
        }
        items.sort();
        let catalog = btree::bulk_build(&mut self.pager, &items)?;
        let bytes = self.finish_commit(catalog, seal)?;
        Ok((bytes, blob_universe))
    }

    /// The commit protocol: maintenance blob, data-page flush (+sync),
    /// meta flip into the alternate slot (+sync), then the in-memory
    /// state adopts the new epoch. A crash before the meta write lands
    /// is invisible (shadow pages are unreachable); a torn meta write
    /// fails its CRC and recovery falls back to the other slot.
    fn finish_commit(&mut self, catalog: PageRef, seal: &CommitSeal) -> StorageResult<u64> {
        let mut maint = BlobRef::default();
        if self.meta.maintenance.pid != 0 {
            heap::free_blob(&mut self.pager, self.meta.maintenance)?;
        }
        if let Some(s) = &seal.maintenance {
            maint = heap::write_blob(&mut self.pager, s.as_bytes())?;
        }
        let pages = if seal.sync {
            self.pager.flush_sync(self.vfs.as_ref(), &self.path)?
        } else {
            self.pager.flush()?
        };
        let new_meta = Meta {
            epoch: self.meta.epoch + 1,
            lsn: seal.lsn,
            page_count: self.pager.page_count(),
            catalog,
            maintenance: maint,
        };
        let slot = new_meta.epoch % page::META_SLOTS;
        self.vfs
            .write_at(&self.path, slot * PAGE_SIZE as u64, &new_meta.encode())
            .map_err(|e| StorageError::Persist(format!("meta write: {e}")))?;
        if seal.sync {
            self.vfs
                .sync_file(&self.path)
                .map_err(|e| StorageError::Persist(format!("meta sync: {e}")))?;
            if !self.dir_synced {
                self.vfs
                    .sync_dir(&self.dir)
                    .map_err(|e| StorageError::Persist(format!("page dir sync: {e}")))?;
                self.dir_synced = true;
            }
        }
        self.meta = new_meta;
        self.pager.commit();
        self.has_base = true;
        Ok((pages + 1) * PAGE_SIZE as u64)
    }
}

#[allow(deprecated)] // the backends are what the deprecated free functions became
impl StorageEngine for PagedStorage {
    fn spec(&self) -> StorageSpec {
        StorageSpec::Paged { pool_pages: self.pool_pages }
    }

    fn recover(&mut self) -> StorageResult<RecoveredState> {
        let mut out = RecoveredState {
            stale_temps_removed: persist::clean_stale_temps(self.vfs.as_ref(), &self.dir)?,
            ..RecoveredState::default()
        };
        self.has_base = false;
        self.universe_blob = false;
        self.meta = Meta { page_count: page::META_SLOTS, ..Meta::default() };
        self.pager.reset(page::META_SLOTS, Vec::new());
        if !self.vfs.exists(&self.path) {
            return Ok(out);
        }
        self.dir_synced = true;
        // Valid meta slots, newest epoch first. Both invalid means no
        // commit ever completed (a crash during the very first one):
        // start empty, the log replays everything.
        let mut candidates: Vec<Meta> =
            [self.read_meta_slot(0), self.read_meta_slot(1)].into_iter().flatten().collect();
        candidates.sort_by_key(|m| std::cmp::Reverse(m.epoch));
        for meta in candidates {
            // A CRC-valid meta can still point at pages that never hit
            // the disk (an unsynced commit torn by a crash, e.g. under
            // SyncPolicy::Never): when its tree does not read back,
            // fall back to the previous epoch's slot — losing recent
            // commits beats refusing to open. Both slots unreadable
            // degrades to "no base"; the op log replays what it holds.
            if self.load_meta(meta, &mut out).is_ok() {
                return Ok(out);
            }
        }
        self.has_base = false;
        self.universe_blob = false;
        self.meta = Meta { page_count: page::META_SLOTS, ..Meta::default() };
        self.pager.reset(page::META_SLOTS, Vec::new());
        Ok(out)
    }

    fn can_delta(&self, max_chain: usize) -> bool {
        self.has_base && !self.universe_blob && max_chain > 0
    }

    fn apply_delta(
        &mut self,
        entries: &[DeltaEntry],
        seal: &CommitSeal,
    ) -> StorageResult<CommitInfo> {
        if !self.has_base || self.universe_blob {
            return Err(StorageError::Persist(
                "paged storage cannot apply a delta without a tuple-shaped base".into(),
            ));
        }
        self.pager.begin(seal.lsn);
        match self.delta_txn(entries, seal) {
            Ok(bytes) => {
                Ok(CommitInfo { kind: CommitKind::Delta, bytes_written: bytes, chain_len: 0 })
            }
            Err(e) => {
                self.pager.abort();
                Err(e)
            }
        }
    }

    fn apply_full(&mut self, store: &Store, seal: &CommitSeal) -> StorageResult<CommitInfo> {
        self.pager.begin(seal.lsn);
        match self.full_txn(store.universe(), seal) {
            Ok((bytes, blob)) => {
                self.universe_blob = blob;
                Ok(CommitInfo { kind: CommitKind::Full, bytes_written: bytes, chain_len: 0 })
            }
            Err(e) => {
                self.pager.abort();
                Err(e)
            }
        }
    }

    fn read_relation(&mut self, db: &str, rel: &str) -> StorageResult<Option<Value>> {
        if !self.has_base {
            return Ok(None);
        }
        if self.universe_blob {
            let Some(raw) = btree::lookup(&mut self.pager, self.meta.catalog, KEY_UNIVERSE)? else {
                return Ok(None);
            };
            let b = decode_blob_val(&raw)?;
            let bytes = heap::read_blob(&mut self.pager, b)?;
            let u = codec::decode_value(&bytes)?;
            return Ok(u.attr(db).and_then(|d| d.attr(rel)).cloned());
        }
        let Some(dv) = btree::lookup(&mut self.pager, self.meta.catalog, &db_key(db))? else {
            return Ok(None);
        };
        match decode_db_val(&dv)? {
            DbVal::Blob(b) => {
                let bytes = heap::read_blob(&mut self.pager, b)?;
                Ok(codec::decode_value(&bytes)?.attr(rel).cloned())
            }
            DbVal::Tuple => {
                match btree::lookup(&mut self.pager, self.meta.catalog, &rel_key(db, rel))? {
                    Some(raw) => self.load_rel_value(&raw).map(Some),
                    None => Ok(None),
                }
            }
        }
    }

    fn pool_stats(&self) -> Option<BufferPoolStats> {
        Some(self.pager.pool_stats())
    }

    fn file_pages(&self) -> u64 {
        self.pager.page_count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vfs::{FaultPlan, SimVfs};
    use idl_object::tuple;

    fn store_ab() -> Store {
        let mut s = Store::new();
        s.insert("alpha", "r", tuple! { a: 1i64, b: "x" }).unwrap();
        s.insert("alpha", "r", tuple! { a: 2i64, b: "y" }).unwrap();
        s.insert("beta", "q", tuple! { c: 3.5f64 }).unwrap();
        s
    }

    fn seal(lsn: u64) -> CommitSeal {
        CommitSeal { lsn, maintenance: None, sync: true }
    }

    fn paged(vfs: &Arc<SimVfs>, pool: usize) -> PagedStorage {
        vfs.create_dir_all(Path::new("/db")).unwrap();
        PagedStorage::new(Arc::clone(vfs) as Arc<dyn Vfs>, "/db", pool)
    }

    #[test]
    fn spec_parses_and_displays() {
        assert_eq!("mem".parse::<StorageSpec>().unwrap(), StorageSpec::Mem);
        assert_eq!("paged".parse::<StorageSpec>().unwrap(), StorageSpec::paged());
        assert_eq!(
            "paged:32".parse::<StorageSpec>().unwrap(),
            StorageSpec::Paged { pool_pages: 32 }
        );
        assert!("paged:0".parse::<StorageSpec>().is_err());
        assert!("disk".parse::<StorageSpec>().is_err());
        assert_eq!(StorageSpec::Paged { pool_pages: 8 }.to_string(), "paged:8");
    }

    #[test]
    fn paged_full_commit_recovers_byte_identically() {
        let vfs = Arc::new(SimVfs::new(FaultPlan::none(11)));
        let store = store_ab();
        {
            let mut p = paged(&vfs, 64);
            p.recover().unwrap();
            let info = p.apply_full(&store, &seal(5)).unwrap();
            assert_eq!(info.kind, CommitKind::Full);
        }
        let mut p2 = paged(&vfs, 64);
        let rec = p2.recover().unwrap();
        assert_eq!(rec.lsn, 5);
        assert_eq!(rec.universe.as_ref(), Some(store.universe()));
        let r = p2.read_relation("alpha", "r").unwrap().unwrap();
        assert_eq!(Some(&r), store.universe().attr("alpha").unwrap().attr("r"));
        assert_eq!(p2.read_relation("alpha", "nope").unwrap(), None);
        assert_eq!(p2.read_relation("nope", "r").unwrap(), None);
    }

    #[test]
    fn paged_empty_first_commit_syncs_nothing_and_recovers_empty() {
        // An empty universe bulk-builds a NULL catalog: zero data pages,
        // so the first commit must not try to fsync a page file that was
        // never created (it materialises at the meta write).
        let vfs = Arc::new(SimVfs::new(FaultPlan::none(13)));
        {
            let mut p = paged(&vfs, 4);
            p.recover().unwrap();
            let info = p.apply_full(&Store::new(), &seal(1)).unwrap();
            assert_eq!(info.kind, CommitKind::Full);
        }
        let mut p2 = paged(&vfs, 4);
        let rec = p2.recover().unwrap();
        assert_eq!(rec.lsn, 1);
        assert_eq!(rec.universe.as_ref(), Some(Store::new().universe()));
        // and a non-empty commit on the same engine still round-trips
        let store = store_ab();
        p2.apply_full(&store, &seal(2)).unwrap();
        let mut p3 = paged(&vfs, 4);
        let rec = p3.recover().unwrap();
        assert_eq!(rec.lsn, 2);
        assert_eq!(rec.universe.as_ref(), Some(store.universe()));
    }

    #[test]
    fn paged_delta_edits_in_place_and_recovers() {
        let vfs = Arc::new(SimVfs::new(FaultPlan::none(12)));
        let mut store = store_ab();
        let mut p = paged(&vfs, 64);
        p.recover().unwrap();
        p.apply_full(&store, &seal(1)).unwrap();

        store.insert("alpha", "r", tuple! { a: 9i64, b: "z" }).unwrap();
        let rv = store.universe().attr("alpha").unwrap().attr("r").unwrap().clone();
        let entries = vec![
            DeltaEntry::PutRelation { db: Name::new("alpha"), rel: Name::new("r"), value: rv },
            DeltaEntry::DropDatabase { db: Name::new("beta") },
        ];
        assert!(p.can_delta(8));
        let info = p.apply_delta(&entries, &seal(2)).unwrap();
        assert_eq!(info.kind, CommitKind::Delta);

        let mut p2 = paged(&vfs, 64);
        let rec = p2.recover().unwrap();
        let expect = {
            let mut t = store.universe().clone();
            t.as_tuple_mut().unwrap().remove("beta");
            t
        };
        assert_eq!(rec.universe.unwrap(), expect);
        assert_eq!(rec.lsn, 2);
    }

    #[test]
    fn paged_survives_a_tiny_pool_with_evictions() {
        let vfs = Arc::new(SimVfs::new(FaultPlan::none(13)));
        let mut store = Store::new();
        for i in 0..600i64 {
            store
                .insert(
                    "db",
                    "r",
                    tuple! { id: i, pad: format!("row-{i}-{}", "x".repeat(40)).as_str() },
                )
                .unwrap();
        }
        let mut p = paged(&vfs, 4); // pool far smaller than the relation
        p.recover().unwrap();
        p.apply_full(&store, &seal(1)).unwrap();
        let stats = p.pool_stats().unwrap();
        assert!(stats.evictions > 0, "a 4-page pool must evict: {stats:?}");
        assert!(p.file_pages() > 4, "the page file outgrew the pool");

        let mut p2 = paged(&vfs, 4);
        let rec = p2.recover().unwrap();
        assert_eq!(rec.universe.as_ref(), Some(store.universe()));
        // warm read after recovery
        let r = p2.read_relation("db", "r").unwrap().unwrap();
        assert_eq!(Some(&r), store.universe().attr("db").unwrap().attr("r"));
    }

    #[test]
    fn recovery_falls_back_to_the_older_meta_slot() {
        let vfs = Arc::new(SimVfs::new(FaultPlan::none(15)));
        let store1 = store_ab();
        let mut store2 = store_ab();
        store2.insert("gamma", "s", tuple! { d: 1i64 }).unwrap();
        let mut p = paged(&vfs, 64);
        p.recover().unwrap();
        p.apply_full(&store1, &seal(1)).unwrap();
        let first_pages = p.file_pages();
        p.apply_full(&store2, &seal(2)).unwrap();
        let all_pages = p.file_pages();
        drop(p);
        // Zero every page the second commit wrote: its meta slot is
        // intact but its tree is gone (the shape an unsynced commit
        // torn by a power cut leaves behind).
        let path = Path::new("/db/pages.idb");
        for pid in first_pages..all_pages {
            vfs.write_at(path, pid * PAGE_SIZE as u64, &vec![0u8; PAGE_SIZE]).unwrap();
        }
        let mut p2 = paged(&vfs, 64);
        let rec = p2.recover().unwrap();
        assert_eq!(rec.lsn, 1, "recovery fell back to the previous epoch");
        assert_eq!(rec.universe.as_ref(), Some(store1.universe()));
        // both slots unreadable degrades to "no base", not a hard error
        for pid in page::META_SLOTS..all_pages {
            vfs.write_at(path, pid * PAGE_SIZE as u64, &vec![0u8; PAGE_SIZE]).unwrap();
        }
        let mut p3 = paged(&vfs, 64);
        let rec = p3.recover().unwrap();
        assert_eq!(rec.universe, None);
        assert_eq!(rec.lsn, 0);
    }

    #[test]
    fn paged_commit_failure_aborts_cleanly() {
        let vfs = Arc::new(SimVfs::new(FaultPlan::none(14)));
        let store = store_ab();
        let mut p = paged(&vfs, 64);
        p.recover().unwrap();
        p.apply_full(&store, &seal(1)).unwrap();
        let before_pages = p.file_pages();

        // an aborted transaction must leave no trace
        p.pager.begin(2);
        let mut catalog = p.meta.catalog;
        p.put_rel(&mut catalog, "alpha", "r", &Value::Set(idl_object::SetObj::new())).unwrap();
        p.pager.abort();
        // storage still serves the committed state; the aborted pages
        // went back to the free list (page_count is a high-water mark)
        let r = p.read_relation("alpha", "r").unwrap().unwrap();
        assert_eq!(Some(&r), store.universe().attr("alpha").unwrap().attr("r"));
        assert!(p.pager.free_len() >= (p.file_pages() - before_pages) as usize);

        // and the committed state survives a power-cycle after the abort
        vfs.power_cycle();
        let mut p2 = paged(&vfs, 64);
        let rec = p2.recover().unwrap();
        assert_eq!(rec.universe.as_ref(), Some(store.universe()));
    }

    #[test]
    fn paged_non_tuple_universe_falls_back_to_blob() {
        let vfs = Arc::new(SimVfs::new(FaultPlan::none(15)));
        let mut p = paged(&vfs, 16);
        p.recover().unwrap();
        // a store can only hold tuple universes; build the blob case via
        // a raw full_txn of an atom universe
        p.pager.begin(1);
        let (_, blob) = p.full_txn(&Value::int(42), &seal(1)).unwrap();
        p.universe_blob = blob;
        assert!(blob);
        assert!(!p.can_delta(8));
        let mut p2 = paged(&vfs, 16);
        let rec = p2.recover().unwrap();
        assert_eq!(rec.universe, Some(Value::int(42)));
        assert!(p2.universe_blob);
    }

    #[test]
    fn paged_jumbo_rows_fall_back_to_relation_blob() {
        let vfs = Arc::new(SimVfs::new(FaultPlan::none(16)));
        let mut store = Store::new();
        store.insert("db", "r", tuple! { big: "y".repeat(3 * MAX_ROW).as_str() }).unwrap();
        store.insert("db", "r", tuple! { small: 1i64 }).unwrap();
        let mut p = paged(&vfs, 16);
        p.recover().unwrap();
        p.apply_full(&store, &seal(1)).unwrap();
        let mut p2 = paged(&vfs, 16);
        let rec = p2.recover().unwrap();
        assert_eq!(rec.universe.as_ref(), Some(store.universe()));
    }

    #[test]
    fn paged_crash_between_commits_falls_back_to_previous_epoch() {
        let vfs = Arc::new(SimVfs::new(FaultPlan::none(17)));
        let store = store_ab();
        let mut p = paged(&vfs, 64);
        p.recover().unwrap();
        p.apply_full(&store, &seal(1)).unwrap();
        let mut store2 = store_ab();
        store2.insert("gamma", "s", tuple! { d: 4i64 }).unwrap();
        p.apply_full(&store2, &seal(2)).unwrap();

        // power-cycle: synced state must expose exactly the second commit
        vfs.power_cycle();
        let mut p2 = paged(&vfs, 64);
        let rec = p2.recover().unwrap();
        assert_eq!(rec.universe.as_ref(), Some(store2.universe()));
        assert_eq!(rec.lsn, 2);
    }

    #[test]
    fn mem_storage_round_trips_with_deltas() {
        let vfs = Arc::new(SimVfs::new(FaultPlan::none(18)));
        vfs.create_dir_all(Path::new("/m")).unwrap();
        let store = store_ab();
        let mut m =
            MemStorage::new(Arc::clone(&vfs) as Arc<dyn Vfs>, "/m", SnapshotCodec::Binary, true);
        let rec = m.recover().unwrap();
        assert!(rec.universe.is_none());
        assert!(!m.can_delta(8), "no base yet");
        m.apply_full(&store, &seal(3)).unwrap();
        assert!(m.can_delta(8));
        let entries = vec![DeltaEntry::DropDatabase { db: Name::new("beta") }];
        let info = m.apply_delta(&entries, &seal(4)).unwrap();
        assert_eq!(info.chain_len, 1);
        assert_eq!(m.read_relation("beta", "q").unwrap(), None);
        assert!(m.read_relation("alpha", "r").unwrap().is_some());

        let mut m2 =
            MemStorage::new(Arc::clone(&vfs) as Arc<dyn Vfs>, "/m", SnapshotCodec::Binary, true);
        let rec = m2.recover().unwrap();
        assert_eq!(rec.lsn, 4);
        assert_eq!(rec.chain_len, 1);
        let u = rec.universe.unwrap();
        assert!(u.attr("beta").is_none());
        assert!(u.attr("alpha").is_some());
    }
}
