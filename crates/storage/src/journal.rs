//! Coarse-grained change journal.
//!
//! Every mutating operation on the [`Store`](crate::store::Store) appends a
//! [`ChangeRecord`] describing *where* the universe changed, at the finest
//! granularity the store can prove: a single relation, a database, or the
//! whole universe. The rule engine uses `changes_since` to decide which
//! materialised views must be refreshed, and the index/statistics caches use
//! it for invalidation.

use idl_object::Name;
use serde::{Deserialize, Serialize};

/// How much of the universe a change may have touched.
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum ChangeScope {
    /// One relation's subtree.
    Relation {
        /// The database name.
        db: Name,
        /// The relation name.
        rel: Name,
    },
    /// One database's subtree (e.g. a relation was created or dropped).
    Database {
        /// The database name.
        db: Name,
    },
    /// Anything (unscoped universe mutation).
    Universe,
}

impl ChangeScope {
    /// Whether a change with this scope can affect the given relation.
    pub fn touches(&self, db: &str, rel: &str) -> bool {
        match self {
            ChangeScope::Relation { db: d, rel: r } => d == db && r == rel,
            ChangeScope::Database { db: d } => d == db,
            ChangeScope::Universe => true,
        }
    }

    /// Whether a change with this scope can affect the given database.
    pub fn touches_db(&self, db: &str) -> bool {
        match self {
            ChangeScope::Relation { db: d, .. } | ChangeScope::Database { db: d } => d == db,
            ChangeScope::Universe => true,
        }
    }
}

/// One journal entry.
#[derive(Clone, PartialEq, Debug, Serialize, Deserialize)]
pub struct ChangeRecord {
    /// Store version *after* the change was applied.
    pub version: u64,
    /// Scope of the change.
    pub scope: ChangeScope,
}

/// Append-only journal with truncation support.
#[derive(Default, Debug, Clone, Serialize, Deserialize)]
pub struct Journal {
    records: Vec<ChangeRecord>,
}

impl Journal {
    /// Empty journal.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a record.
    pub fn push(&mut self, record: ChangeRecord) {
        self.records.push(record);
    }

    /// Records with `version > since`, oldest first.
    pub fn since(&self, since: u64) -> &[ChangeRecord] {
        let idx = self.records.partition_point(|r| r.version <= since);
        &self.records[idx..]
    }

    /// Total records retained.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the journal is empty.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Drops records with `version <= upto` (checkpointing).
    pub fn truncate_before(&mut self, upto: u64) {
        let idx = self.records.partition_point(|r| r.version <= upto);
        self.records.drain(..idx);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(version: u64, db: &str) -> ChangeRecord {
        ChangeRecord { version, scope: ChangeScope::Database { db: Name::new(db) } }
    }

    #[test]
    fn since_partitions_correctly() {
        let mut j = Journal::new();
        for v in 1..=5 {
            j.push(rec(v, "euter"));
        }
        assert_eq!(j.since(0).len(), 5);
        assert_eq!(j.since(3).len(), 2);
        assert_eq!(j.since(5).len(), 0);
    }

    #[test]
    fn truncate_drops_old() {
        let mut j = Journal::new();
        for v in 1..=5 {
            j.push(rec(v, "euter"));
        }
        j.truncate_before(3);
        assert_eq!(j.len(), 2);
        assert_eq!(j.since(0).len(), 2);
    }

    #[test]
    fn scope_touches() {
        let r = ChangeScope::Relation { db: Name::new("euter"), rel: Name::new("r") };
        assert!(r.touches("euter", "r"));
        assert!(!r.touches("euter", "s"));
        assert!(!r.touches("chwab", "r"));
        assert!(r.touches_db("euter"));

        let d = ChangeScope::Database { db: Name::new("euter") };
        assert!(d.touches("euter", "anything"));
        assert!(!d.touches("chwab", "r"));

        assert!(ChangeScope::Universe.touches("x", "y"));
    }
}
