//! Storage errors.

use idl_object::Name;
use std::fmt;

/// Errors raised by the storage layer.
#[derive(Clone, PartialEq, Debug)]
pub enum StorageError {
    /// Named database does not exist.
    NoSuchDatabase(Name),
    /// Named relation does not exist in the database.
    NoSuchRelation(Name, Name),
    /// The object at a catalog position has the wrong category (e.g. a
    /// database attribute holds an atom instead of a tuple).
    ShapeViolation(String),
    /// Database / relation already exists.
    AlreadyExists(String),
    /// Attempted commit/rollback without an open transaction.
    NoOpenTransaction,
    /// I/O or serialisation failure during persistence.
    Persist(String),
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::NoSuchDatabase(db) => write!(f, "no such database: {db}"),
            StorageError::NoSuchRelation(db, r) => write!(f, "no such relation: {db}.{r}"),
            StorageError::ShapeViolation(m) => write!(f, "catalog shape violation: {m}"),
            StorageError::AlreadyExists(m) => write!(f, "already exists: {m}"),
            StorageError::NoOpenTransaction => write!(f, "no open transaction"),
            StorageError::Persist(m) => write!(f, "persistence error: {m}"),
        }
    }
}

impl std::error::Error for StorageError {}

/// Result alias.
pub type StorageResult<T> = Result<T, StorageError>;
