//! Declared schema metadata: keys, attribute types, referential integrity.
//!
//! §2 of the paper: *"we concentrate on the relation names and attribute
//! names only. It is easy to extend this to other metadata such as keys,
//! types, authorization, etc."* — this module is that extension. Schemas
//! are *declared* per relation and *checked* against the current contents;
//! relations without declarations stay schemaless (the paper's default).
//!
//! Checking is decoupled from mutation because IDL updates can restructure
//! anything (§5.2): the engine validates after each update request inside
//! its transaction and rolls back on violation, which gives declarative
//! enforcement without constraining the update language.

use crate::error::{StorageError, StorageResult};
use crate::store::Store;
use idl_object::{Atom, Name, Value};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// Attribute type tags.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum TypeTag {
    /// Any atom (excluding null).
    Atom,
    /// Integer.
    Int,
    /// Float (ints accepted — query arithmetic coerces).
    Number,
    /// String.
    Str,
    /// Boolean.
    Bool,
    /// Calendar date.
    Date,
    /// Nested tuple.
    Tuple,
    /// Nested set.
    Set,
}

impl TypeTag {
    /// Whether a value conforms to the tag. Null conforms to nothing —
    /// use [`AttrDecl::nullable`] to allow it.
    pub fn admits(self, v: &Value) -> bool {
        match (self, v) {
            (_, Value::Atom(Atom::Null)) => false,
            (TypeTag::Atom, Value::Atom(_)) => true,
            (TypeTag::Int, Value::Atom(Atom::Int(_))) => true,
            (TypeTag::Number, Value::Atom(Atom::Int(_) | Atom::Float(_))) => true,
            (TypeTag::Str, Value::Atom(Atom::Str(_))) => true,
            (TypeTag::Bool, Value::Atom(Atom::Bool(_))) => true,
            (TypeTag::Date, Value::Atom(Atom::Date(_))) => true,
            (TypeTag::Tuple, Value::Tuple(_)) => true,
            (TypeTag::Set, Value::Set(_)) => true,
            _ => false,
        }
    }

    /// Display name (also used by the `sys` catalog relations).
    pub fn name(self) -> &'static str {
        match self {
            TypeTag::Atom => "atom",
            TypeTag::Int => "int",
            TypeTag::Number => "number",
            TypeTag::Str => "str",
            TypeTag::Bool => "bool",
            TypeTag::Date => "date",
            TypeTag::Tuple => "tuple",
            TypeTag::Set => "set",
        }
    }
}

/// Declaration for one attribute.
#[derive(Clone, PartialEq, Debug, Serialize, Deserialize)]
pub struct AttrDecl {
    /// Expected type.
    pub ty: TypeTag,
    /// Whether the attribute may be absent or null. IDL's atomic minus
    /// nulls values (§5.2), so key attributes are implicitly non-nullable
    /// while others often must tolerate null.
    pub nullable: bool,
}

/// Declared schema of one relation.
#[derive(Clone, PartialEq, Debug, Default, Serialize, Deserialize)]
pub struct RelationSchema {
    /// Key attributes: no two tuples may agree on all of them. Empty = no
    /// key constraint.
    pub key: Vec<Name>,
    /// Per-attribute declarations. Attributes not listed are
    /// unconstrained (heterogeneous tuples remain legal).
    pub attrs: BTreeMap<Name, AttrDecl>,
    /// Foreign keys: local attributes → (db, rel, attributes).
    pub foreign_keys: Vec<ForeignKey>,
}

/// A referential-integrity constraint.
#[derive(Clone, PartialEq, Debug, Serialize, Deserialize)]
pub struct ForeignKey {
    /// Referencing attributes in this relation.
    pub local: Vec<Name>,
    /// Referenced database.
    pub ref_db: Name,
    /// Referenced relation.
    pub ref_rel: Name,
    /// Referenced attributes (same arity as `local`).
    pub ref_attrs: Vec<Name>,
}

/// One constraint violation.
#[derive(Clone, PartialEq, Debug)]
pub struct Violation {
    /// Database.
    pub db: Name,
    /// Relation.
    pub rel: Name,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.{}: {}", self.db, self.rel, self.message)
    }
}

/// A set of schema declarations over the universe.
#[derive(Clone, Default, Debug, Serialize, Deserialize)]
pub struct SchemaSet {
    schemas: BTreeMap<(Name, Name), RelationSchema>,
}

impl SchemaSet {
    /// No declarations.
    pub fn new() -> Self {
        Self::default()
    }

    /// Declares (or replaces) a relation's schema.
    pub fn declare(&mut self, db: impl Into<Name>, rel: impl Into<Name>, schema: RelationSchema) {
        self.schemas.insert((db.into(), rel.into()), schema);
    }

    /// Removes a declaration.
    pub fn undeclare(&mut self, db: &str, rel: &str) -> bool {
        self.schemas.remove(&(Name::new(db), Name::new(rel))).is_some()
    }

    /// The declaration for a relation, if any.
    pub fn get(&self, db: &str, rel: &str) -> Option<&RelationSchema> {
        self.schemas.get(&(Name::new(db), Name::new(rel)))
    }

    /// Number of declared relations.
    pub fn len(&self) -> usize {
        self.schemas.len()
    }

    /// Whether no schema is declared.
    pub fn is_empty(&self) -> bool {
        self.schemas.is_empty()
    }

    /// Iterates declarations.
    pub fn iter(&self) -> impl Iterator<Item = (&(Name, Name), &RelationSchema)> {
        self.schemas.iter()
    }

    /// Checks every declared relation against the store's current
    /// contents, returning all violations (empty = consistent).
    pub fn check(&self, store: &Store) -> Vec<Violation> {
        let mut out = Vec::new();
        for ((db, rel), schema) in &self.schemas {
            self.check_relation(store, db, rel, schema, &mut out);
        }
        out
    }

    fn check_relation(
        &self,
        store: &Store,
        db: &Name,
        rel: &Name,
        schema: &RelationSchema,
        out: &mut Vec<Violation>,
    ) {
        let violation = |message: String| Violation { db: db.clone(), rel: rel.clone(), message };
        let set = match store.relation(db.as_str(), rel.as_str()) {
            Ok(s) => s,
            Err(_) => return, // declared but absent: vacuously consistent
        };
        // keys
        if !schema.key.is_empty() {
            let mut seen: BTreeSet<Vec<&Value>> = BTreeSet::new();
            for t in set.iter() {
                let Some(tuple) = t.as_tuple() else { continue };
                let mut kv = Vec::with_capacity(schema.key.len());
                let mut complete = true;
                for k in &schema.key {
                    match tuple.get(k.as_str()) {
                        Some(v) if !v.is_null() => kv.push(v),
                        _ => {
                            out.push(violation(format!("tuple {t} misses key attribute .{k}")));
                            complete = false;
                            break;
                        }
                    }
                }
                if complete && !seen.insert(kv) {
                    out.push(violation(format!("duplicate key in tuple {t}")));
                }
            }
        }
        // attribute types
        for t in set.iter() {
            let Some(tuple) = t.as_tuple() else {
                out.push(violation(format!("non-tuple element {t}")));
                continue;
            };
            for (attr, decl) in &schema.attrs {
                match tuple.get(attr.as_str()) {
                    Some(v) if decl.ty.admits(v) => {}
                    Some(v) if v.is_null() && decl.nullable => {}
                    Some(v) => out.push(violation(format!(
                        "attribute .{attr} of {t} is {v}, expected {}",
                        decl.ty.name()
                    ))),
                    None if decl.nullable => {}
                    None => {
                        out.push(violation(format!("tuple {t} misses required attribute .{attr}")))
                    }
                }
            }
        }
        // foreign keys
        for fk in &schema.foreign_keys {
            let Ok(target) = store.relation(fk.ref_db.as_str(), fk.ref_rel.as_str()) else {
                out.push(violation(format!(
                    "foreign key references missing relation {}.{}",
                    fk.ref_db, fk.ref_rel
                )));
                continue;
            };
            let referenced: BTreeSet<Vec<&Value>> = target
                .iter()
                .filter_map(|t| {
                    let tuple = t.as_tuple()?;
                    fk.ref_attrs.iter().map(|a| tuple.get(a.as_str())).collect::<Option<Vec<_>>>()
                })
                .collect();
            for t in set.iter() {
                let Some(tuple) = t.as_tuple() else { continue };
                let Some(local): Option<Vec<&Value>> = fk
                    .local
                    .iter()
                    .map(|a| tuple.get(a.as_str()).filter(|v| !v.is_null()))
                    .collect()
                else {
                    continue; // absent/null FK attributes: not referencing
                };
                if !referenced.contains(&local) {
                    out.push(violation(format!(
                        "tuple {t} references missing {}.{} row",
                        fk.ref_db, fk.ref_rel
                    )));
                }
            }
        }
    }
}

/// Builds the queryable system-catalog universe fragment for a store: a
/// database `sys` with relations describing databases, relations,
/// attributes-in-use, declared keys and declared types — so metadata is
/// reachable by ordinary (higher-order) IDL queries, closing the loop the
/// paper opens: data and metadata in one query language.
pub fn sys_catalog(store: &Store, schemas: &SchemaSet) -> StorageResult<Value> {
    use idl_object::{SetObj, TupleObj};
    let mut databases = SetObj::new();
    let mut relations = SetObj::new();
    let mut attributes = SetObj::new();
    for db in store.database_names() {
        if db.as_str() == "sys" {
            continue; // the catalog does not describe itself
        }
        let mut t = TupleObj::new();
        t.insert("name", Value::from(db.clone()));
        databases.insert(Value::Tuple(t));
        for rel in store.relation_names(db.as_str())? {
            let set = store.relation(db.as_str(), rel.as_str())?;
            let mut t = TupleObj::new();
            t.insert("db", Value::from(db.clone()));
            t.insert("rel", Value::from(rel.clone()));
            t.insert("card", Value::int(set.len() as i64));
            relations.insert(Value::Tuple(t));
            let stats = store.stats(db.as_str(), rel.as_str())?;
            for (attr, a) in &stats.attrs {
                let mut t = TupleObj::new();
                t.insert("db", Value::from(db.clone()));
                t.insert("rel", Value::from(rel.clone()));
                t.insert("attr", Value::from(attr.clone()));
                t.insert("occurrences", Value::int(a.occurrences as i64));
                t.insert("distinct", Value::int(a.distinct as i64));
                attributes.insert(Value::Tuple(t));
            }
        }
    }
    let mut keys = SetObj::new();
    let mut types = SetObj::new();
    for ((db, rel), schema) in schemas.iter() {
        for (pos, k) in schema.key.iter().enumerate() {
            let mut t = TupleObj::new();
            t.insert("db", Value::from(db.clone()));
            t.insert("rel", Value::from(rel.clone()));
            t.insert("attr", Value::from(k.clone()));
            t.insert("pos", Value::int(pos as i64));
            keys.insert(Value::Tuple(t));
        }
        for (attr, decl) in &schema.attrs {
            let mut t = TupleObj::new();
            t.insert("db", Value::from(db.clone()));
            t.insert("rel", Value::from(rel.clone()));
            t.insert("attr", Value::from(attr.clone()));
            t.insert("type", Value::str(decl.ty.name()));
            t.insert("nullable", Value::bool(decl.nullable));
            types.insert(Value::Tuple(t));
        }
    }
    let mut sys = TupleObj::new();
    sys.insert("databases", Value::Set(databases));
    sys.insert("relations", Value::Set(relations));
    sys.insert("attributes", Value::Set(attributes));
    sys.insert("keys", Value::Set(keys));
    sys.insert("types", Value::Set(types));
    Ok(Value::Tuple(sys))
}

/// Installs / refreshes the `sys` database inside the store.
pub fn install_sys_catalog(store: &mut Store, schemas: &SchemaSet) -> StorageResult<()> {
    let sys = sys_catalog(store, schemas)?;
    store.mutate(crate::journal::ChangeScope::Database { db: Name::new("sys") }, |u| {
        u.as_tuple_mut()
            .ok_or_else(|| StorageError::ShapeViolation("universe must be a tuple".into()))
            .map(|t| {
                t.insert("sys", sys);
            })
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use idl_object::tuple;

    fn stock_schema() -> RelationSchema {
        RelationSchema {
            key: vec![Name::new("date"), Name::new("stkCode")],
            attrs: [
                (Name::new("date"), AttrDecl { ty: TypeTag::Date, nullable: false }),
                (Name::new("stkCode"), AttrDecl { ty: TypeTag::Str, nullable: false }),
                (Name::new("clsPrice"), AttrDecl { ty: TypeTag::Number, nullable: true }),
            ]
            .into_iter()
            .collect(),
            foreign_keys: vec![],
        }
    }

    fn store() -> Store {
        Store::from_universe(idl_object::universe::stock_universe(vec![
            ("3/3/85", "hp", 50.0),
            ("3/4/85", "hp", 62.0),
        ]))
        .unwrap()
    }

    #[test]
    fn consistent_store_has_no_violations() {
        let mut schemas = SchemaSet::new();
        schemas.declare("euter", "r", stock_schema());
        assert!(schemas.check(&store()).is_empty());
    }

    #[test]
    fn key_violations_detected() {
        let mut s = store();
        // same (date, stkCode), different price → duplicate key
        s.insert(
            "euter",
            "r",
            tuple! { date: Value::date("3/3/85".parse().unwrap()), stkCode: "hp", clsPrice: 51.0 },
        )
        .unwrap();
        let mut schemas = SchemaSet::new();
        schemas.declare("euter", "r", stock_schema());
        let v = schemas.check(&s);
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].message.contains("duplicate key"));
    }

    #[test]
    fn missing_key_attribute_detected() {
        let mut s = store();
        s.insert("euter", "r", tuple! { clsPrice: 1.0 }).unwrap();
        let mut schemas = SchemaSet::new();
        schemas.declare("euter", "r", stock_schema());
        let v = schemas.check(&s);
        assert!(v.iter().any(|v| v.message.contains("misses key attribute")));
    }

    #[test]
    fn type_violations_detected() {
        let mut s = store();
        s.insert(
            "euter",
            "r",
            tuple! { date: Value::date("3/5/85".parse().unwrap()), stkCode: "x", clsPrice: "not a price" },
        )
        .unwrap();
        let mut schemas = SchemaSet::new();
        schemas.declare("euter", "r", stock_schema());
        let v = schemas.check(&s);
        assert!(v.iter().any(|v| v.message.contains("expected number")), "{v:?}");
    }

    #[test]
    fn nullable_allows_null_and_absent() {
        let mut s = store();
        s.insert(
            "euter",
            "r",
            tuple! { date: Value::date("3/6/85".parse().unwrap()), stkCode: "y", clsPrice: Value::null() },
        )
        .unwrap();
        s.insert(
            "euter",
            "r",
            tuple! { date: Value::date("3/7/85".parse().unwrap()), stkCode: "z" },
        )
        .unwrap();
        let mut schemas = SchemaSet::new();
        schemas.declare("euter", "r", stock_schema());
        assert!(schemas.check(&s).is_empty());
    }

    #[test]
    fn foreign_keys_checked() {
        let mut s = Store::new();
        s.insert("hr", "dept", tuple! { dno: 1i64 }).unwrap();
        s.insert("hr", "emp", tuple! { name: "a", dno: 1i64 }).unwrap();
        s.insert("hr", "emp", tuple! { name: "b", dno: 9i64 }).unwrap();
        let mut schemas = SchemaSet::new();
        schemas.declare(
            "hr",
            "emp",
            RelationSchema {
                key: vec![Name::new("name")],
                attrs: BTreeMap::new(),
                foreign_keys: vec![ForeignKey {
                    local: vec![Name::new("dno")],
                    ref_db: Name::new("hr"),
                    ref_rel: Name::new("dept"),
                    ref_attrs: vec![Name::new("dno")],
                }],
            },
        );
        let v = schemas.check(&s);
        assert_eq!(v.len(), 1);
        assert!(v[0].message.contains("references missing"));
    }

    #[test]
    fn sys_catalog_describes_the_universe() {
        let s = store();
        let mut schemas = SchemaSet::new();
        schemas.declare("euter", "r", stock_schema());
        let sys = sys_catalog(&s, &schemas).unwrap();
        let rels = sys.attr("relations").unwrap().as_set().unwrap();
        assert_eq!(rels.len(), 3, "r in euter and chwab, hp in ource: {rels:?}");
        let keys = sys.attr("keys").unwrap().as_set().unwrap();
        assert_eq!(keys.len(), 2, "two key attributes declared");
        let attrs = sys.attr("attributes").unwrap().as_set().unwrap();
        assert!(attrs.len() >= 5);
    }

    #[test]
    fn install_and_query_sys() {
        let mut s = store();
        let schemas = SchemaSet::new();
        install_sys_catalog(&mut s, &schemas).unwrap();
        assert!(s.has_database("sys"));
        assert!(s.relation("sys", "relations").unwrap().len() >= 3);
        // refresh reflects changes
        s.insert("newdb", "newrel", tuple! { a: 1i64 }).unwrap();
        install_sys_catalog(&mut s, &schemas).unwrap();
        let rels = s.relation("sys", "relations").unwrap();
        assert!(rels.iter().any(|t| t.attr("db") == Some(&Value::str("newdb"))));
    }
}
