//! Secondary indexes over relation attributes.
//!
//! An index maps the value of one attribute to the (whole) tuples carrying
//! it. Two kinds exist: hash indexes serve equality probes, B-tree indexes
//! additionally serve range probes (`<`, `<=`, `>`, `>=`). Because IDL
//! updates can restructure a relation arbitrarily, indexes are rebuilt from
//! the relation's current contents whenever the store's journal shows the
//! relation changed since the index was built (lazy maintenance).
//!
//! Index entries are copy-on-write *handles* onto the relation's own
//! tuples (`Value` clones are O(1) Arc bumps), so building an index never
//! deep-copies tuple contents, and lookups hand back borrowed slices over
//! those shared handles — no cloning on the probe path either.

use idl_object::{Name, SetObj, Value};
use std::collections::{BTreeMap, HashMap};
use std::ops::Bound;

/// Which index structure to build.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum IndexKind {
    /// Equality probes only.
    Hash,
    /// Equality and range probes.
    BTree,
}

/// A built index over one attribute of one relation.
#[derive(Debug)]
pub enum Index {
    /// Hash-backed.
    Hash(HashMap<Value, Vec<Value>>),
    /// Ordered.
    BTree(BTreeMap<Value, Vec<Value>>),
}

impl Index {
    /// Builds an index of `kind` on `attr` over the tuples of `rel`.
    ///
    /// Tuples without the attribute are not indexed (they can never satisfy
    /// a `.attr α c` probe through the index; scans still see them).
    pub fn build(kind: IndexKind, rel: &SetObj, attr: &Name) -> Index {
        match kind {
            IndexKind::Hash => {
                let mut m: HashMap<Value, Vec<Value>> = HashMap::new();
                for t in rel.iter() {
                    if let Some(v) = t.as_tuple().and_then(|t| t.get(attr.as_str())) {
                        m.entry(v.clone()).or_default().push(t.clone());
                    }
                }
                Index::Hash(m)
            }
            IndexKind::BTree => {
                let mut m: BTreeMap<Value, Vec<Value>> = BTreeMap::new();
                for t in rel.iter() {
                    if let Some(v) = t.as_tuple().and_then(|t| t.get(attr.as_str())) {
                        m.entry(v.clone()).or_default().push(t.clone());
                    }
                }
                Index::BTree(m)
            }
        }
    }

    /// Tuples whose indexed attribute equals `key`.
    pub fn lookup_eq(&self, key: &Value) -> &[Value] {
        match self {
            Index::Hash(m) => m.get(key).map_or(&[], Vec::as_slice),
            Index::BTree(m) => m.get(key).map_or(&[], Vec::as_slice),
        }
    }

    /// Tuples whose indexed attribute lies in the given bounds (B-tree
    /// indexes only; hash indexes return `None`).
    ///
    /// NB: bounds follow the *structural* order on [`Value`]. The evaluator
    /// only pushes range probes down when the key type matches the stored
    /// type, where structural and query order agree.
    pub fn lookup_range(&self, lower: Bound<&Value>, upper: Bound<&Value>) -> Option<Vec<&Value>> {
        match self {
            Index::Hash(_) => None,
            Index::BTree(m) => {
                let mut out = Vec::new();
                for (_k, tuples) in m.range::<Value, _>((lower, upper)) {
                    out.extend(tuples.iter());
                }
                Some(out)
            }
        }
    }

    /// Number of distinct keys.
    pub fn distinct_keys(&self) -> usize {
        match self {
            Index::Hash(m) => m.len(),
            Index::BTree(m) => m.len(),
        }
    }

    /// Total indexed tuples.
    pub fn entry_count(&self) -> usize {
        match self {
            Index::Hash(m) => m.values().map(Vec::len).sum(),
            Index::BTree(m) => m.values().map(Vec::len).sum(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use idl_object::tuple;

    fn rel() -> SetObj {
        let mut s = SetObj::new();
        for (code, price) in [("hp", 50i64), ("ibm", 160), ("hp2", 50)] {
            s.insert(tuple! { stkCode: code, clsPrice: price });
        }
        // heterogeneous straggler without the attribute
        s.insert(tuple! { other: 1i64 });
        s
    }

    #[test]
    fn hash_eq_lookup() {
        let idx = Index::build(IndexKind::Hash, &rel(), &Name::new("clsPrice"));
        assert_eq!(idx.lookup_eq(&Value::int(50)).len(), 2);
        assert_eq!(idx.lookup_eq(&Value::int(160)).len(), 1);
        assert_eq!(idx.lookup_eq(&Value::int(999)).len(), 0);
        assert_eq!(idx.distinct_keys(), 2);
        assert_eq!(idx.entry_count(), 3, "tuple without attr is skipped");
        assert!(idx.lookup_range(Bound::Unbounded, Bound::Unbounded).is_none());
    }

    #[test]
    fn btree_range_lookup() {
        let idx = Index::build(IndexKind::BTree, &rel(), &Name::new("clsPrice"));
        let hits = idx.lookup_range(Bound::Excluded(&Value::int(50)), Bound::Unbounded).unwrap();
        assert_eq!(hits.len(), 1);
        let hits = idx
            .lookup_range(Bound::Included(&Value::int(50)), Bound::Included(&Value::int(160)))
            .unwrap();
        assert_eq!(hits.len(), 3);
    }

    #[test]
    fn string_keys() {
        let idx = Index::build(IndexKind::Hash, &rel(), &Name::new("stkCode"));
        assert_eq!(idx.lookup_eq(&Value::str("hp")).len(), 1);
    }

    #[test]
    fn entries_share_interiors_with_the_relation() {
        let r = rel();
        let idx = Index::build(IndexKind::Hash, &r, &Name::new("stkCode"));
        let hit = &idx.lookup_eq(&Value::str("hp"))[0];
        let orig = r
            .iter()
            .find(|t| t.as_tuple().is_some_and(|t| t.get("stkCode") == Some(&Value::str("hp"))))
            .unwrap();
        assert!(
            hit.as_tuple().unwrap().shares_with(orig.as_tuple().unwrap()),
            "index stores CoW handles, not deep copies"
        );
    }
}
