//! Operation-log record framing.
//!
//! The durable engine's `ops.idl` moved from bare statement lines (format
//! 1, still readable via the migration path) to checksummed binary
//! framing (format 2), grew a per-record flags byte (format 3), and a
//! snapshot-codec hint in the header (format 4):
//!
//! ```text
//! header:  "IDLOPLG2"  version:u32le  codec:u32le         (16 bytes; v≤3: 12)
//! record:  len:u32le  crc:u32le  lsn:u64le  flags:u8  payload[len-9]
//! ```
//!
//! The `codec` header field (v4+) records which snapshot encoding the
//! directory's checkpoints pair with ([`CODEC_HINT_JSON`] /
//! [`CODEC_HINT_BINARY`]); it is diagnostic — recovery sniffs the
//! snapshot file itself — but makes a durable directory self-describing.
//!
//! * `len` counts the LSN, flags and payload, so a record occupies
//!   `8 + len` bytes on disk (format-2 records have no flags byte and
//!   `len` counts LSN + payload; they decode with `flags = 0`);
//! * `flags` tags the record — [`FLAG_MAINTENANCE`] marks an update whose
//!   derived views were maintained incrementally in the same transaction,
//!   so recovery can detect (and report) a silent fall-back to full
//!   rebuild on replay;
//! * `crc` is CRC-32C over the body (everything after itself);
//! * `lsn` is a log sequence number, strictly increasing across the log's
//!   lifetime (checkpoints included) — snapshots record the LSN they
//!   cover, so replay after a crash mid-checkpoint skips exactly the
//!   records the snapshot already contains, and duplicated records are
//!   replayed at most once;
//! * the payload is one request statement in canonical IDL surface
//!   syntax, UTF-8.
//!
//! [`decode_log`] is the recovery-side reader: it stops at the first
//! torn or checksum-failing record and reports the byte length of the
//! valid prefix, so the caller can truncate the tail instead of failing
//! recovery or replaying garbage. Legacy line-format logs (anything not
//! starting with the magic) decode through the same entry point, with a
//! trailing newline-less fragment treated as the torn tail.

use crate::crc::crc32c;
use crate::error::{StorageError, StorageResult};

/// Magic bytes opening a framed log (format 2).
pub const MAGIC: &[u8; 8] = b"IDLOPLG2";

/// Current framing format version.
pub const FORMAT_VERSION: u32 = 4;

/// The last framing version whose records carried no flags byte.
const UNFLAGGED_VERSION: u32 = 2;

/// The last framing version with the 12-byte header (no codec hint).
const SHORT_HEADER_VERSION: u32 = 3;

/// Record flag: the update's derived views were maintained incrementally
/// inside the same write transaction (not left for a later full refresh).
pub const FLAG_MAINTENANCE: u8 = 1;

/// Bytes occupied by the file header in formats ≤ 3.
pub const HEADER_LEN: u64 = 12;

/// Bytes occupied by the file header in format 4 (adds the codec hint).
pub const HEADER_LEN_V4: u64 = 16;

/// Header codec hint: checkpoints in this directory are JSON.
pub const CODEC_HINT_JSON: u32 = 0;

/// Header codec hint: checkpoints in this directory are binary format 3.
pub const CODEC_HINT_BINARY: u32 = 1;

/// Header length for a given framing version.
pub fn header_len(version: u32) -> u64 {
    if version <= SHORT_HEADER_VERSION {
        HEADER_LEN
    } else {
        HEADER_LEN_V4
    }
}

/// Per-record header bytes (`len` + `crc`).
const RECORD_HEADER: usize = 8;

/// How the bytes of a log file were framed.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum LogFormat {
    /// Length-prefixed, CRC-32C-checksummed, LSN-stamped records.
    Framed,
    /// The pre-framing format: one statement per line, `%` comments.
    LegacyLines,
}

/// One decoded log record.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Record {
    /// Log sequence number (legacy lines are numbered 1..=n on read).
    pub lsn: u64,
    /// Record flags (see [`FLAG_MAINTENANCE`]; 0 for pre-format-3 logs).
    pub flags: u8,
    /// Canonical statement text.
    pub stmt: String,
    /// 1-based line number in the source file (legacy format only; framed
    /// records report their ordinal). For error messages.
    pub line: usize,
}

/// The result of scanning a log file.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct RecoveredLog {
    /// Valid records, in log order.
    pub records: Vec<Record>,
    /// Format the file was found in.
    pub format: LogFormat,
    /// Framing version found in the header (legacy line logs report 1).
    /// The durable engine rewrites pre-current framed logs on open, so
    /// appends always use the current record layout.
    pub version: u32,
    /// Snapshot-codec hint from a v4 header ([`CODEC_HINT_JSON`] for
    /// every older format, which only had JSON snapshots).
    pub codec_hint: u32,
    /// Byte length of the valid prefix (framed logs; for tail truncation).
    pub valid_len: u64,
    /// Bytes past the valid prefix that must be truncated (torn tail).
    pub torn_bytes: u64,
}

/// Durability counters kept by the durable engine (diagnostics and the
/// B13 ablation bench).
#[derive(Clone, Copy, Default, Debug, PartialEq, Eq)]
pub struct DurabilityStats {
    /// Records appended since open.
    pub records_appended: u64,
    /// Log bytes appended since open.
    pub bytes_appended: u64,
    /// Log fsyncs issued since open.
    pub log_syncs: u64,
    /// Records replayed at the last open.
    pub records_recovered: u64,
    /// Records skipped at the last open because the snapshot (or an
    /// earlier duplicate) already covered their LSN.
    pub records_skipped: u64,
    /// Torn-tail bytes truncated at the last open.
    pub torn_bytes_truncated: u64,
    /// Whether the last open migrated a legacy line-format log.
    pub migrated_legacy: bool,
    /// Stale snapshot temp files removed at the last open.
    pub stale_temps_removed: u64,
    /// Records appended with [`FLAG_MAINTENANCE`] since open (updates
    /// whose views were maintained incrementally before the ack).
    pub maintenance_records_appended: u64,
    /// Replayed records that carried [`FLAG_MAINTENANCE`] at the last
    /// open.
    pub maintenance_records_replayed: u64,
    /// Replayed maintenance-tagged records the engine could *not*
    /// maintain incrementally this time (it fell back to marking views
    /// stale). Non-zero means recovery lost the maintained state — e.g.
    /// rules changed, or the snapshot predates this build's format.
    pub maintenance_fallbacks: u64,
    /// Whether the last open adopted persisted maintenance state from
    /// the snapshot (replay then maintains instead of rebuilding).
    pub maintenance_state_adopted: bool,
    /// Coalesced write groups committed since open (each group is one
    /// log append plus one fsync covering every record in it).
    pub group_commits: u64,
    /// Records committed through coalesced groups since open. The
    /// fsyncs saved by batching is `group_commit_records - group_commits`.
    pub group_commit_records: u64,
    /// Snapshot codec this engine writes checkpoints in.
    pub codec: crate::codec::SnapshotCodec,
    /// Incremental delta checkpoints written since open.
    pub delta_checkpoints: u64,
    /// Full snapshot checkpoints written since open.
    pub full_checkpoints: u64,
    /// Current delta-chain length (deltas the next recovery replays on
    /// top of the base snapshot before the op-log tail).
    pub chain_len: u64,
    /// Checkpoint bytes written since open (snapshots plus deltas).
    pub snapshot_bytes_written: u64,
    /// Whether the last open migrated a legacy JSON snapshot to the
    /// binary format.
    pub migrated_snapshot: bool,
    /// Buffer-pool counters (`None` for backends without a pool — the
    /// mem backend has no page file to cache).
    pub pool: Option<crate::buffer_pool::BufferPoolStats>,
    /// Page-file size in pages (0 for backends without a page file).
    pub storage_pages: u64,
}

/// The v4 file header for a fresh framed log, defaulting the codec hint
/// to binary (the write default).
pub fn header_bytes() -> Vec<u8> {
    header_bytes_hint(CODEC_HINT_BINARY)
}

/// The 16-byte v4 file header with an explicit snapshot-codec hint.
pub fn header_bytes_hint(codec_hint: u32) -> Vec<u8> {
    let mut out = Vec::with_capacity(HEADER_LEN_V4 as usize);
    out.extend_from_slice(MAGIC);
    out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
    out.extend_from_slice(&codec_hint.to_le_bytes());
    out
}

/// Encodes one record with no flags set (`len | crc | lsn | flags=0 | payload`).
pub fn encode_record(lsn: u64, stmt: &str) -> Vec<u8> {
    encode_record_flagged(lsn, 0, stmt)
}

/// Encodes one record (`len | crc | lsn | flags | payload`).
pub fn encode_record_flagged(lsn: u64, flags: u8, stmt: &str) -> Vec<u8> {
    let payload = stmt.as_bytes();
    let mut body = Vec::with_capacity(9 + payload.len());
    body.extend_from_slice(&lsn.to_le_bytes());
    body.push(flags);
    body.extend_from_slice(payload);
    let mut out = Vec::with_capacity(RECORD_HEADER + body.len());
    out.extend_from_slice(&(body.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32c(&body).to_le_bytes());
    out.extend_from_slice(&body);
    out
}

/// Encodes a whole log file (header plus records) — used by checkpoint
/// rotation and legacy migration.
pub fn encode_log<'a>(records: impl IntoIterator<Item = (u64, &'a str)>) -> Vec<u8> {
    encode_log_flagged(records.into_iter().map(|(lsn, stmt)| (lsn, 0, stmt)))
}

/// [`encode_log`] with per-record flags — used when migrating an existing
/// log to the current framing without losing its tags.
pub fn encode_log_flagged<'a>(records: impl IntoIterator<Item = (u64, u8, &'a str)>) -> Vec<u8> {
    encode_log_flagged_hint(CODEC_HINT_BINARY, records)
}

/// [`encode_log_flagged`] with an explicit snapshot-codec header hint.
pub fn encode_log_flagged_hint<'a>(
    codec_hint: u32,
    records: impl IntoIterator<Item = (u64, u8, &'a str)>,
) -> Vec<u8> {
    let mut out = header_bytes_hint(codec_hint);
    for (lsn, flags, stmt) in records {
        out.extend_from_slice(&encode_record_flagged(lsn, flags, stmt));
    }
    out
}

fn read_u32(bytes: &[u8], at: usize) -> u32 {
    u32::from_le_bytes(bytes[at..at + 4].try_into().expect("4 bytes"))
}

/// Scans a log file's bytes, auto-detecting the format.
///
/// Torn tails (truncated record, checksum mismatch, or a final line with
/// no newline) terminate the scan *successfully*: the valid prefix is
/// returned together with how many tail bytes to truncate. Only
/// structurally impossible files (an unknown future version) are errors.
pub fn decode_log(bytes: &[u8]) -> StorageResult<RecoveredLog> {
    if bytes.len() >= MAGIC.len() && &bytes[..MAGIC.len()] == MAGIC {
        decode_framed(bytes)
    } else if bytes.len() < MAGIC.len() && !bytes.is_empty() && MAGIC.starts_with(bytes) {
        // a torn header write: treat as an empty framed log needing repair
        Ok(RecoveredLog {
            records: Vec::new(),
            format: LogFormat::Framed,
            version: FORMAT_VERSION,
            codec_hint: CODEC_HINT_JSON,
            valid_len: 0,
            torn_bytes: bytes.len() as u64,
        })
    } else {
        Ok(decode_legacy(bytes))
    }
}

fn decode_framed(bytes: &[u8]) -> StorageResult<RecoveredLog> {
    let torn_header = |version| {
        Ok(RecoveredLog {
            records: Vec::new(),
            format: LogFormat::Framed,
            version,
            codec_hint: CODEC_HINT_JSON,
            valid_len: 0,
            torn_bytes: bytes.len() as u64,
        })
    };
    if bytes.len() < HEADER_LEN as usize {
        // magic present but the version bytes are torn
        return torn_header(FORMAT_VERSION);
    }
    let version = read_u32(bytes, MAGIC.len());
    if version > FORMAT_VERSION {
        return Err(StorageError::Persist(format!(
            "operation log format v{version} is newer than this build understands (v{FORMAT_VERSION})"
        )));
    }
    let header = header_len(version) as usize;
    if bytes.len() < header {
        // a v4 header torn between the version and the codec hint
        return torn_header(version);
    }
    let codec_hint = if version > SHORT_HEADER_VERSION {
        read_u32(bytes, HEADER_LEN as usize)
    } else {
        CODEC_HINT_JSON
    };
    // Format-2 records have no flags byte between the LSN and payload.
    let flagged = version > UNFLAGGED_VERSION;
    let min_len = if flagged { 9 } else { 8 };
    let mut records = Vec::new();
    let mut at = header;
    loop {
        if at + RECORD_HEADER > bytes.len() {
            break; // torn record header (or clean EOF)
        }
        let len = read_u32(bytes, at) as usize;
        let crc = read_u32(bytes, at + 4);
        if len < min_len || at + RECORD_HEADER + len > bytes.len() {
            break; // impossible length or torn body
        }
        let body = &bytes[at + RECORD_HEADER..at + RECORD_HEADER + len];
        if crc32c(body) != crc {
            break; // bit rot or torn rewrite
        }
        let lsn = u64::from_le_bytes(body[..8].try_into().expect("8 bytes"));
        let (flags, payload) = if flagged { (body[8], &body[9..]) } else { (0, &body[8..]) };
        let Ok(stmt) = std::str::from_utf8(payload) else {
            break; // checksummed garbage cannot happen, but stay safe
        };
        records.push(Record { lsn, flags, stmt: to_owned_trimmed(stmt), line: records.len() + 1 });
        at += RECORD_HEADER + len;
    }
    Ok(RecoveredLog {
        records,
        format: LogFormat::Framed,
        version,
        codec_hint,
        valid_len: at as u64,
        torn_bytes: (bytes.len() - at) as u64,
    })
}

fn to_owned_trimmed(s: &str) -> String {
    s.trim().to_string()
}

fn decode_legacy(bytes: &[u8]) -> RecoveredLog {
    // Lossy decoding keeps a corrupt byte visible to the parser (which
    // reports "corrupt log at line N") instead of failing the whole scan.
    let text = String::from_utf8_lossy(bytes);
    let mut records = Vec::new();
    let mut valid = 0usize;
    let mut lsn = 0u64;
    let mut line_no = 0usize;
    let mut rest = text.as_ref();
    while let Some(nl) = rest.find('\n') {
        let line = &rest[..nl];
        line_no += 1;
        let trimmed = line.trim();
        if !trimmed.is_empty() && !trimmed.starts_with('%') {
            lsn += 1;
            records.push(Record { lsn, flags: 0, stmt: trimmed.to_string(), line: line_no });
        }
        valid += nl + 1;
        rest = &rest[nl + 1..];
    }
    // anything after the last newline is a torn tail
    RecoveredLog {
        records,
        format: LogFormat::LegacyLines,
        version: 1,
        codec_hint: CODEC_HINT_JSON,
        valid_len: valid as u64,
        torn_bytes: (bytes.len() - valid) as u64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn framed_round_trip() {
        let stmts = ["?.db.r+(.a=1)", "?.db.r-(.a=1)", "?.dbU.ins(.k=x)"];
        let bytes = encode_log(stmts.iter().enumerate().map(|(i, s)| (i as u64 + 1, *s)));
        let log = decode_log(&bytes).unwrap();
        assert_eq!(log.format, LogFormat::Framed);
        assert_eq!(log.torn_bytes, 0);
        assert_eq!(log.valid_len, bytes.len() as u64);
        assert_eq!(log.records.len(), 3);
        for (i, rec) in log.records.iter().enumerate() {
            assert_eq!(rec.lsn, i as u64 + 1);
            assert_eq!(rec.stmt, stmts[i]);
        }
    }

    #[test]
    fn flags_round_trip() {
        let mut bytes = header_bytes();
        bytes.extend_from_slice(&encode_record_flagged(1, 0, "?.db.r+(.a=1)"));
        bytes.extend_from_slice(&encode_record_flagged(2, FLAG_MAINTENANCE, "?.db.r+(.a=2)"));
        let log = decode_log(&bytes).unwrap();
        assert_eq!(log.version, FORMAT_VERSION);
        assert_eq!(log.records[0].flags, 0);
        assert_eq!(log.records[1].flags, FLAG_MAINTENANCE);
        assert_eq!(log.records[1].stmt, "?.db.r+(.a=2)");
    }

    #[test]
    fn unflagged_v2_logs_still_decode() {
        // hand-build a format-2 log: version 2 header, bodies without the
        // flags byte (exactly what older builds wrote)
        let mut bytes = Vec::new();
        bytes.extend_from_slice(MAGIC);
        bytes.extend_from_slice(&2u32.to_le_bytes());
        for (lsn, stmt) in [(1u64, "?.db.r+(.a=1)"), (2, "?.db.r+(.a=2)")] {
            let mut body = Vec::new();
            body.extend_from_slice(&lsn.to_le_bytes());
            body.extend_from_slice(stmt.as_bytes());
            bytes.extend_from_slice(&(body.len() as u32).to_le_bytes());
            bytes.extend_from_slice(&crc32c(&body).to_le_bytes());
            bytes.extend_from_slice(&body);
        }
        let log = decode_log(&bytes).unwrap();
        assert_eq!(log.version, 2);
        assert_eq!(log.torn_bytes, 0);
        assert_eq!(log.records.len(), 2);
        assert_eq!(log.records[0].stmt, "?.db.r+(.a=1)");
        assert_eq!(log.records[1].lsn, 2);
        assert!(log.records.iter().all(|r| r.flags == 0));
    }

    #[test]
    fn torn_tail_truncates_not_fails() {
        let bytes = encode_log([(1, "?.db.r+(.a=1)"), (2, "?.db.r+(.a=2)")]);
        let first_end = header_bytes().len() + RECORD_HEADER + 9 + "?.db.r+(.a=1)".len();
        // cut mid-way through the second record
        for cut in first_end + 1..bytes.len() {
            let log = decode_log(&bytes[..cut]).unwrap();
            assert_eq!(log.records.len(), 1, "cut at {cut}");
            assert_eq!(log.valid_len, first_end as u64);
            assert_eq!(log.torn_bytes, (cut - first_end) as u64);
        }
    }

    #[test]
    fn bit_flip_stops_the_scan_at_the_flipped_record() {
        let bytes = encode_log([(1, "?.db.r+(.a=1)"), (2, "?.db.r+(.a=2)")]);
        let first_end = header_bytes().len() + RECORD_HEADER + 9 + "?.db.r+(.a=1)".len();
        let mut corrupt = bytes.clone();
        *corrupt.last_mut().unwrap() ^= 0x40; // flip a payload bit in record 2
        let log = decode_log(&corrupt).unwrap();
        assert_eq!(log.records.len(), 1);
        assert_eq!(log.valid_len, first_end as u64);
        assert!(log.torn_bytes > 0);
    }

    #[test]
    fn torn_header_is_an_empty_repairable_log() {
        for cut in 1..header_bytes().len() {
            let bytes = &header_bytes()[..cut];
            let log = decode_log(bytes).unwrap();
            assert_eq!(log.format, LogFormat::Framed, "cut at {cut}");
            assert!(log.records.is_empty());
            assert_eq!(log.valid_len, 0);
            assert_eq!(log.torn_bytes, cut as u64);
        }
        let log = decode_log(&[]).unwrap();
        assert!(log.records.is_empty());
        assert_eq!(log.format, LogFormat::LegacyLines, "empty file reads as empty legacy log");
    }

    #[test]
    fn future_version_is_rejected() {
        let mut bytes = header_bytes();
        bytes[8..12].copy_from_slice(&99u32.to_le_bytes());
        assert!(matches!(decode_log(&bytes), Err(StorageError::Persist(_))));
    }

    #[test]
    fn v3_logs_without_the_codec_hint_still_decode() {
        // hand-build a format-3 log: 12-byte header, flagged records
        let mut bytes = Vec::new();
        bytes.extend_from_slice(MAGIC);
        bytes.extend_from_slice(&3u32.to_le_bytes());
        bytes.extend_from_slice(&encode_record_flagged(1, FLAG_MAINTENANCE, "?.db.r+(.a=1)"));
        bytes.extend_from_slice(&encode_record(2, "?.db.r+(.a=2)"));
        let log = decode_log(&bytes).unwrap();
        assert_eq!(log.version, 3);
        assert_eq!(log.codec_hint, CODEC_HINT_JSON);
        assert_eq!(log.torn_bytes, 0);
        assert_eq!(log.records.len(), 2);
        assert_eq!(log.records[0].flags, FLAG_MAINTENANCE);
        assert_eq!(log.records[1].stmt, "?.db.r+(.a=2)");
    }

    #[test]
    fn v4_header_carries_the_codec_hint() {
        for hint in [CODEC_HINT_JSON, CODEC_HINT_BINARY] {
            let mut bytes = header_bytes_hint(hint);
            bytes.extend_from_slice(&encode_record(1, "?.db.r+(.a=1)"));
            let log = decode_log(&bytes).unwrap();
            assert_eq!(log.version, FORMAT_VERSION);
            assert_eq!(log.codec_hint, hint);
            assert_eq!(log.records.len(), 1);
        }
    }

    #[test]
    fn legacy_lines_decode_with_torn_tail() {
        let text = "?.db.r+(.a=1)\n% comment\n\n?.db.r+(.a=2)\n?.db.r+(.a=";
        let log = decode_log(text.as_bytes()).unwrap();
        assert_eq!(log.format, LogFormat::LegacyLines);
        assert_eq!(log.records.len(), 2);
        assert_eq!(
            log.records[0],
            Record { lsn: 1, flags: 0, stmt: "?.db.r+(.a=1)".into(), line: 1 }
        );
        assert_eq!(
            log.records[1],
            Record { lsn: 2, flags: 0, stmt: "?.db.r+(.a=2)".into(), line: 4 }
        );
        assert_eq!(log.torn_bytes, "?.db.r+(.a=".len() as u64);
        assert_eq!(log.valid_len, (text.len() - "?.db.r+(.a=".len()) as u64);
    }

    #[test]
    fn every_prefix_of_a_framed_log_decodes_to_a_record_prefix() {
        // the defining property of the framing: any crash prefix recovers
        // an exact prefix of the appended records
        let stmts: Vec<String> = (0..5).map(|i| format!("?.db.r+(.a={i})")).collect();
        let bytes = encode_log(stmts.iter().enumerate().map(|(i, s)| (i as u64 + 1, s.as_str())));
        for cut in 0..=bytes.len() {
            let log = decode_log(&bytes[..cut]).unwrap();
            for (i, rec) in log.records.iter().enumerate() {
                assert_eq!(rec.stmt, stmts[i], "cut={cut}");
            }
            assert!(log.records.len() <= stmts.len());
            assert_eq!(log.valid_len + log.torn_bytes, cut as u64);
        }
    }
}
