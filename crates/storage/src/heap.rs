//! Blob heap: variable-length byte strings as chains of heap pages.
//!
//! Blobs hold values too large (or too oddly shaped) for B-tree cells:
//! whole-relation fallbacks for jumbo rows, non-tuple database values,
//! and the maintenance-state blob. A blob is **immutable** — written
//! whole inside one transaction, so every segment of the chain carries
//! the same LSN and the chain walk can lost-write-check each page
//! against the head's [`BlobRef::lsn`].
//!
//! Layout: one segment per page, in slot 0. The segment cell is
//! `next_pid: u64 LE` followed by up to [`MAX_SEG`] payload bytes;
//! `next_pid == 0` ends the chain. Segments are written in reverse so
//! each already knows its successor's pid.

use crate::buffer_pool::Pager;
use crate::error::{StorageError, StorageResult};
use crate::page::{self, BlobRef, PageId, PageRef, KIND_HEAP, PAGE_SIZE};

/// Maximum payload bytes per segment (page minus header, one slot, and
/// the 8-byte next pointer).
pub const MAX_SEG: usize = PAGE_SIZE - 20 - 4 - 8;

fn corrupt(what: impl std::fmt::Display) -> StorageError {
    StorageError::Persist(format!("blob heap corruption: {what}"))
}

/// Writes `data` as a fresh blob chain inside the open transaction.
pub fn write_blob(pager: &mut Pager, data: &[u8]) -> StorageResult<BlobRef> {
    let lsn = pager.txn_lsn();
    let mut next: PageId = 0;
    let chunks: Vec<&[u8]> =
        if data.is_empty() { vec![&[][..]] } else { data.chunks(MAX_SEG).collect() };
    for chunk in chunks.iter().rev() {
        let mut p = page::init(KIND_HEAP, lsn);
        let mut cell = Vec::with_capacity(8 + chunk.len());
        cell.extend_from_slice(&next.to_le_bytes());
        cell.extend_from_slice(chunk);
        let ok = page::insert(&mut p, 0, &cell);
        debug_assert!(ok, "MAX_SEG guarantees the segment fits");
        next = pager.alloc(p)?;
    }
    Ok(BlobRef { pid: next, slot: 0, lsn, len: data.len() as u64 })
}

/// Reads a whole blob back, verifying each page against the head LSN.
pub fn read_blob(pager: &mut Pager, r: BlobRef) -> StorageResult<Vec<u8>> {
    let mut out = Vec::with_capacity(r.len as usize);
    let mut pid = r.pid;
    let mut hops = 0u64;
    while pid != 0 {
        hops += 1;
        if hops > r.len / MAX_SEG as u64 + 2 {
            return Err(corrupt("segment chain longer than the blob length allows"));
        }
        let p = pager.get_checked(PageRef { pid, lsn: r.lsn })?;
        if page::kind(&p) != KIND_HEAP || page::count(&p) == 0 {
            return Err(corrupt(format!("page {pid} is not a blob segment")));
        }
        let cell = page::cell(&p, 0);
        if cell.len() < 8 {
            return Err(corrupt(format!("segment on page {pid} is truncated")));
        }
        pid = u64::from_le_bytes(cell[0..8].try_into().expect("8 bytes"));
        out.extend_from_slice(&cell[8..]);
    }
    if out.len() != r.len as usize {
        return Err(corrupt(format!(
            "blob is {} bytes on disk, reference says {}",
            out.len(),
            r.len
        )));
    }
    Ok(out)
}

/// Appends every page of the blob chain to `out` (reachability sweeps).
/// Guards mirror [`read_blob`]: this runs during recovery, where a
/// CRC-valid but wrong page must fail closed, not panic or loop.
pub fn blob_pages(pager: &mut Pager, r: BlobRef, out: &mut Vec<PageId>) -> StorageResult<()> {
    let mut pid = r.pid;
    let mut hops = 0u64;
    while pid != 0 {
        hops += 1;
        if hops > r.len / MAX_SEG as u64 + 2 {
            return Err(corrupt("segment chain longer than the blob length allows"));
        }
        out.push(pid);
        let p = pager.get_checked(PageRef { pid, lsn: r.lsn })?;
        if page::kind(&p) != KIND_HEAP || page::count(&p) == 0 {
            return Err(corrupt(format!("page {pid} is not a blob segment")));
        }
        let cell = page::cell(&p, 0);
        if cell.len() < 8 {
            return Err(corrupt(format!("segment on page {pid} is truncated")));
        }
        pid = u64::from_le_bytes(cell[0..8].try_into().expect("8 bytes"));
    }
    Ok(())
}

/// Frees every page of the blob chain (deferred to commit by the pager).
pub fn free_blob(pager: &mut Pager, r: BlobRef) -> StorageResult<()> {
    let mut pages = Vec::new();
    blob_pages(pager, r, &mut pages)?;
    for pid in pages {
        pager.free_page(pid);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::buffer_pool::BufferPool;
    use crate::vfs::{FaultPlan, SimVfs, Vfs};
    use std::path::{Path, PathBuf};
    use std::sync::Arc;

    fn pager(cap: usize) -> (Arc<SimVfs>, Pager) {
        let vfs = Arc::new(SimVfs::new(FaultPlan::none(7)));
        let pool =
            BufferPool::new(vfs.clone() as Arc<dyn Vfs>, PathBuf::from("/db/pages.idb"), cap);
        (vfs, Pager::new(pool, page::META_SLOTS, vec![]))
    }

    #[test]
    fn empty_small_and_multi_segment_roundtrip() {
        let (_vfs, mut pager) = pager(64);
        pager.begin(3);
        for len in [0usize, 1, 100, MAX_SEG, MAX_SEG + 1, 3 * MAX_SEG + 17] {
            let data: Vec<u8> = (0..len).map(|i| (i * 7) as u8).collect();
            let r = write_blob(&mut pager, &data).unwrap();
            assert_eq!(r.len, len as u64);
            assert_eq!(read_blob(&mut pager, r).unwrap(), data);
            let mut pages = Vec::new();
            blob_pages(&mut pager, r, &mut pages).unwrap();
            assert_eq!(pages.len(), len.div_ceil(MAX_SEG).max(1));
        }
    }

    #[test]
    fn blob_survives_eviction_through_the_page_file() {
        let (vfs, mut pager) = pager(2); // pool far smaller than the chain
        pager.begin(9);
        let data: Vec<u8> = (0..10 * MAX_SEG).map(|i| (i % 251) as u8).collect();
        let r = write_blob(&mut pager, &data).unwrap();
        pager.flush_sync(vfs.as_ref(), Path::new("/db/pages.idb")).unwrap();
        assert!(pager.pool_stats().dirty_writebacks > 0, "eviction had to write back");
        assert_eq!(read_blob(&mut pager, r).unwrap(), data);
    }

    #[test]
    fn free_blob_recycles_all_pages() {
        let (_vfs, mut pager) = pager(64);
        pager.begin(1);
        let r = write_blob(&mut pager, &vec![0x5A; 2 * MAX_SEG]).unwrap();
        free_blob(&mut pager, r).unwrap();
        // freed-while-fresh pages are immediately reusable
        assert_eq!(pager.free_len(), 2);
    }

    #[test]
    fn blob_pages_rejects_cycles_and_truncated_segments() {
        let (_vfs, mut pager) = pager(8);
        pager.begin(1);
        // two segments pointing at each other: the hop bound must fire
        let a = pager.alloc(page::init(KIND_HEAP, 1)).unwrap();
        let b = pager.alloc(page::init(KIND_HEAP, 1)).unwrap();
        let seg = |next: PageId| {
            let mut c = next.to_le_bytes().to_vec();
            c.extend_from_slice(&[9; 10]);
            c
        };
        pager
            .update(a, |p| {
                page::insert(p, 0, &seg(b));
            })
            .unwrap();
        pager
            .update(b, |p| {
                page::insert(p, 0, &seg(a));
            })
            .unwrap();
        let mut out = Vec::new();
        let r = BlobRef { pid: a, slot: 0, lsn: 1, len: 20 };
        assert!(blob_pages(&mut pager, r, &mut out).is_err(), "cycle must not hang");
        // a segment cell shorter than the next pointer must not panic
        let c = pager.alloc(page::init(KIND_HEAP, 1)).unwrap();
        pager
            .update(c, |p| {
                page::insert(p, 0, &[1, 2, 3]);
            })
            .unwrap();
        let r = BlobRef { pid: c, slot: 0, lsn: 1, len: 3 };
        assert!(blob_pages(&mut pager, r, &mut Vec::new()).is_err());
    }

    #[test]
    fn wrong_lsn_fails_closed() {
        let (_vfs, mut pager) = pager(8);
        pager.begin(4);
        let mut r = write_blob(&mut pager, b"hello").unwrap();
        r.lsn = 999;
        assert!(read_blob(&mut pager, r).is_err());
    }
}
