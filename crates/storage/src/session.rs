//! [`Session`] — the operation-log file handle.
//!
//! Historically the durable engine manipulated `ops.idl` through loose
//! [`crate::oplog`] framing functions plus its own file bookkeeping
//! (recovery scan, legacy migration, torn-tail truncation, header
//! rewrites, rotation). `Session` collapses that surface into one handle
//! owning the log file's lifecycle:
//!
//! * **open** — scan the existing log (any historical format), migrate
//!   legacy line logs and pre-current framed layouts atomically, truncate
//!   torn tails, or lay down a fresh header;
//! * **append / append_group** — frame, append, and (under sync) fsync
//!   records before the caller acknowledges them;
//! * **rotate** — reset to an empty log after a checkpoint;
//! * **repair_truncate** — drop a partial append back to the last
//!   acknowledged prefix (the caller then poisons itself).
//!
//! The session tracks the acknowledged byte length and the last appended
//! LSN; replay policy (which records to skip, gap detection) stays with
//! the engine, which sees the scanned records via [`SessionOpen`].

use crate::error::{StorageError, StorageResult};
use crate::oplog::{self, LogFormat, Record};
use crate::persist::write_atomic;
use crate::vfs::Vfs;
use std::path::{Path, PathBuf};
use std::sync::Arc;

fn io_err(ctx: &str, e: std::io::Error) -> StorageError {
    StorageError::Persist(format!("{ctx}: {e}"))
}

/// What [`Session::open`] found on disk.
#[derive(Clone, Debug, Default)]
pub struct SessionOpen {
    /// Valid records, in log order, LSN-numbered (legacy lines are
    /// numbered after the base LSN the caller passed).
    pub records: Vec<Record>,
    /// Whether a legacy line-format log was migrated to framing.
    pub migrated_legacy: bool,
    /// Torn-tail bytes truncated (or dropped by a migration rewrite).
    pub torn_bytes_truncated: u64,
}

/// An open handle on one operation-log file (see module docs).
pub struct Session {
    vfs: Arc<dyn Vfs>,
    path: PathBuf,
    /// Format appends use (an existing framed log is never downgraded).
    format: LogFormat,
    hint: u32,
    sync: bool,
    lsn: u64,
    /// Acknowledged byte length — the truncation point after a failed
    /// append.
    bytes: u64,
}

impl Session {
    /// Opens (or creates) the log at `path`. `prefer` is the format for a
    /// *fresh* log; an existing framed log is never downgraded, and an
    /// existing legacy log is migrated when `prefer` is framed. `hint` is
    /// the snapshot-codec header hint, `base_lsn` numbers legacy-line
    /// records (which carry none).
    pub fn open(
        vfs: Arc<dyn Vfs>,
        path: PathBuf,
        prefer: LogFormat,
        hint: u32,
        sync: bool,
        base_lsn: u64,
    ) -> StorageResult<(Session, SessionOpen)> {
        let mut info = SessionOpen::default();
        let format;
        let bytes_len;
        if vfs.exists(&path) {
            let bytes = vfs.read(&path).map_err(|e| io_err("read log", e))?;
            let mut recovered = oplog::decode_log(&bytes)?;
            if recovered.format == LogFormat::LegacyLines {
                for (i, rec) in recovered.records.iter_mut().enumerate() {
                    rec.lsn = base_lsn + 1 + i as u64;
                }
            }
            match (recovered.format, prefer) {
                (LogFormat::LegacyLines, LogFormat::Framed) => {
                    // migrate: rewrite the surviving records framed,
                    // atomically, dropping any torn trailing fragment
                    let fresh = oplog::encode_log_flagged_hint(
                        hint,
                        recovered.records.iter().map(|r| (r.lsn, 0, r.stmt.as_str())),
                    );
                    write_atomic(vfs.as_ref(), &path, &fresh, sync)?;
                    info.migrated_legacy = !recovered.records.is_empty();
                    info.torn_bytes_truncated = recovered.torn_bytes;
                    format = LogFormat::Framed;
                    bytes_len = fresh.len() as u64;
                }
                (found, _) => {
                    if found == LogFormat::Framed && recovered.valid_len < oplog::HEADER_LEN {
                        // the header itself was torn — lay it down again
                        write_atomic(vfs.as_ref(), &path, &oplog::header_bytes_hint(hint), sync)?;
                        info.torn_bytes_truncated = recovered.torn_bytes;
                        bytes_len = oplog::HEADER_LEN_V4;
                    } else if found == LogFormat::Framed
                        && recovered.version < oplog::FORMAT_VERSION
                    {
                        // upgrade the framing in place (atomically) —
                        // mixing record layouts in one file cannot work
                        let fresh = oplog::encode_log_flagged_hint(
                            hint,
                            recovered.records.iter().map(|r| (r.lsn, r.flags, r.stmt.as_str())),
                        );
                        write_atomic(vfs.as_ref(), &path, &fresh, sync)?;
                        info.torn_bytes_truncated = recovered.torn_bytes;
                        bytes_len = fresh.len() as u64;
                    } else {
                        if recovered.torn_bytes > 0 {
                            vfs.set_len(&path, recovered.valid_len)
                                .map_err(|e| io_err("truncate torn log tail", e))?;
                            info.torn_bytes_truncated = recovered.torn_bytes;
                        }
                        bytes_len = recovered.valid_len;
                    }
                    format = found;
                }
            }
            info.records = recovered.records;
        } else {
            format = prefer;
            let fresh = match format {
                LogFormat::Framed => oplog::header_bytes_hint(hint),
                LogFormat::LegacyLines => Vec::new(),
            };
            vfs.write(&path, &fresh).map_err(|e| io_err("create log", e))?;
            if sync {
                vfs.sync_file(&path).map_err(|e| io_err("sync fresh log", e))?;
                if let Some(dir) = path.parent() {
                    vfs.sync_dir(dir).map_err(|e| io_err("sync log dir", e))?;
                }
            }
            bytes_len = fresh.len() as u64;
        }
        let lsn = info.records.last().map(|r| r.lsn).max(Some(base_lsn)).unwrap_or(base_lsn);
        Ok((Session { vfs, path, format, hint, sync, lsn, bytes: bytes_len }, info))
    }

    /// The log file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Format appends are written in.
    pub fn format(&self) -> LogFormat {
        self.format
    }

    /// LSN of the last appended (or scanned) record.
    pub fn lsn(&self) -> u64 {
        self.lsn
    }

    /// Overrides the session LSN (after the engine skipped or replayed
    /// records and knows the true acknowledged position).
    pub fn set_lsn(&mut self, lsn: u64) {
        self.lsn = lsn;
    }

    /// Acknowledged log length in bytes.
    pub fn acked_bytes(&self) -> u64 {
        self.bytes
    }

    /// Whether appends fsync before returning.
    pub fn synced(&self) -> bool {
        self.sync
    }

    fn encode(&self, lsn: u64, flags: u8, stmt: &str) -> Vec<u8> {
        match self.format {
            LogFormat::Framed => oplog::encode_record_flagged(lsn, flags, stmt),
            LogFormat::LegacyLines => format!("{stmt}\n").into_bytes(),
        }
    }

    /// Appends one record and — under sync — fsyncs it before returning.
    /// On success the session LSN advances and the byte count of the
    /// append is returned. On error nothing is acknowledged: call
    /// [`Session::repair_truncate`] and stop using the log.
    pub fn append(&mut self, flags: u8, stmt: &str) -> StorageResult<u64> {
        let next = self.lsn + 1;
        let bytes = self.encode(next, flags, stmt);
        self.vfs.append(&self.path, &bytes).map_err(|e| io_err("append log", e))?;
        if self.sync {
            self.vfs.sync_file(&self.path).map_err(|e| io_err("sync log", e))?;
        }
        self.lsn = next;
        self.bytes += bytes.len() as u64;
        Ok(bytes.len() as u64)
    }

    /// Appends a batch of records as **one** write plus (under sync) one
    /// fsync — the group-commit primitive. No record is acknowledged
    /// before the whole group is durable; on error none are.
    pub fn append_group(&mut self, records: &[(u8, String)]) -> StorageResult<u64> {
        let mut buf = Vec::new();
        for (i, (flags, stmt)) in records.iter().enumerate() {
            buf.extend_from_slice(&self.encode(self.lsn + 1 + i as u64, *flags, stmt));
        }
        self.vfs.append(&self.path, &buf).map_err(|e| io_err("append log", e))?;
        if self.sync {
            self.vfs.sync_file(&self.path).map_err(|e| io_err("sync log", e))?;
        }
        self.lsn += records.len() as u64;
        self.bytes += buf.len() as u64;
        Ok(buf.len() as u64)
    }

    /// Rotates the log empty (after a checkpoint made its records
    /// redundant), updating the snapshot-codec header hint.
    pub fn rotate(&mut self, hint: u32) -> StorageResult<()> {
        self.hint = hint;
        let fresh = match self.format {
            LogFormat::Framed => oplog::header_bytes_hint(hint),
            LogFormat::LegacyLines => Vec::new(),
        };
        write_atomic(self.vfs.as_ref(), &self.path, &fresh, self.sync)?;
        self.bytes = fresh.len() as u64;
        Ok(())
    }

    /// Best-effort truncation back to the acknowledged prefix after a
    /// failed append, so future readers never see the partial record.
    pub fn repair_truncate(&self) {
        let _ = self.vfs.set_len(&self.path, self.bytes);
    }

    /// Number of records currently in the log (diagnostics).
    pub fn len(&self) -> StorageResult<usize> {
        if !self.vfs.exists(&self.path) {
            return Ok(0);
        }
        let bytes = self.vfs.read(&self.path).map_err(|e| io_err("read log", e))?;
        Ok(oplog::decode_log(&bytes)?.records.len())
    }

    /// Whether the log currently holds no records.
    pub fn is_empty(&self) -> StorageResult<bool> {
        Ok(self.len()? == 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vfs::{FaultPlan, SimVfs};

    fn open(vfs: &Arc<SimVfs>, base_lsn: u64) -> (Session, SessionOpen) {
        vfs.create_dir_all(Path::new("/d")).unwrap();
        Session::open(
            Arc::clone(vfs) as Arc<dyn Vfs>,
            PathBuf::from("/d/ops.idl"),
            LogFormat::Framed,
            oplog::CODEC_HINT_BINARY,
            true,
            base_lsn,
        )
        .unwrap()
    }

    #[test]
    fn fresh_append_reopen_rotate() {
        let vfs = Arc::new(SimVfs::new(FaultPlan::none(1)));
        let (mut s, info) = open(&vfs, 0);
        assert!(info.records.is_empty());
        s.append(0, "?.db.r+(.a=1)").unwrap();
        s.append(oplog::FLAG_MAINTENANCE, "?.db.r+(.a=2)").unwrap();
        assert_eq!(s.lsn(), 2);
        assert_eq!(s.len().unwrap(), 2);

        let (mut s, info) = open(&vfs, 0);
        assert_eq!(info.records.len(), 2);
        assert_eq!(info.records[1].flags, oplog::FLAG_MAINTENANCE);
        assert_eq!(s.lsn(), 2);
        s.rotate(oplog::CODEC_HINT_BINARY).unwrap();
        assert_eq!(s.len().unwrap(), 0);
        assert_eq!(s.lsn(), 2, "rotation never rewinds the LSN");
        s.append(0, "?.db.r+(.a=3)").unwrap();
        let (_, info) = open(&vfs, 0);
        assert_eq!(info.records.len(), 1);
        assert_eq!(info.records[0].lsn, 3);
    }

    #[test]
    fn group_append_is_one_write_one_sync() {
        let vfs = Arc::new(SimVfs::new(FaultPlan::none(2)));
        let (mut s, _) = open(&vfs, 0);
        let before = vfs.stats();
        let recs: Vec<(u8, String)> = (0..4).map(|i| (0u8, format!("?.db.r+(.a={i})"))).collect();
        s.append_group(&recs).unwrap();
        let after = vfs.stats();
        assert_eq!(after.appends - before.appends, 1);
        assert_eq!(after.file_syncs - before.file_syncs, 1);
        assert_eq!(s.lsn(), 4);
        let (_, info) = open(&vfs, 0);
        assert_eq!(info.records.len(), 4);
        assert_eq!(info.records[3].lsn, 4);
    }

    #[test]
    fn legacy_lines_migrate_with_base_numbering() {
        let vfs = Arc::new(SimVfs::new(FaultPlan::none(3)));
        vfs.create_dir_all(Path::new("/d")).unwrap();
        vfs.write(Path::new("/d/ops.idl"), b"?.db.r+(.a=1)\n?.db.r+(.a=2)\n?.torn").unwrap();
        let (s, info) = open(&vfs, 10);
        assert!(info.migrated_legacy);
        assert_eq!(info.torn_bytes_truncated, "?.torn".len() as u64);
        assert_eq!(info.records.len(), 2);
        assert_eq!((info.records[0].lsn, info.records[1].lsn), (11, 12));
        assert_eq!(s.lsn(), 12);
        let bytes = vfs.read(Path::new("/d/ops.idl")).unwrap();
        assert!(bytes.starts_with(oplog::MAGIC));
    }

    #[test]
    fn torn_tail_is_truncated_on_open() {
        let vfs = Arc::new(SimVfs::new(FaultPlan::none(4)));
        let (mut s, _) = open(&vfs, 0);
        s.append(0, "?.db.r+(.a=1)").unwrap();
        let full = vfs.read(Path::new("/d/ops.idl")).unwrap();
        let mut torn = full.clone();
        torn.extend_from_slice(&[0x55; 7]); // half a record header
        vfs.write(Path::new("/d/ops.idl"), &torn).unwrap();
        let (s, info) = open(&vfs, 0);
        assert_eq!(info.torn_bytes_truncated, 7);
        assert_eq!(info.records.len(), 1);
        assert_eq!(s.acked_bytes(), full.len() as u64);
        assert_eq!(vfs.read(Path::new("/d/ops.idl")).unwrap(), full);
    }

    #[test]
    fn failed_append_leaves_state_unacknowledged() {
        let vfs = Arc::new(SimVfs::new(FaultPlan::none(5)));
        let (mut s, _) = open(&vfs, 0);
        s.append(0, "?.db.r+(.a=1)").unwrap();
        let acked = s.acked_bytes();
        // simulate a partial append scribbled past the acked prefix,
        // then repair back to it
        vfs.append(Path::new("/d/ops.idl"), &[0xAB; 5]).unwrap();
        s.repair_truncate();
        assert_eq!(vfs.file_len(Path::new("/d/ops.idl")).unwrap(), acked);
        assert_eq!(s.lsn(), 1);
        let (_, info) = open(&vfs, 0);
        assert_eq!(info.records.len(), 1);
    }
}
