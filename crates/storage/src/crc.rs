//! CRC-32C (Castagnoli) checksums for operation-log record framing.
//!
//! A small table-driven software implementation (the build environment is
//! offline, so no hardware-accelerated crate); the polynomial is the one
//! used by iSCSI, ext4 and LevelDB/RocksDB log framing. The table is built
//! at compile time.

/// The reflected CRC-32C polynomial.
const POLY: u32 = 0x82F6_3B78;

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 { (crc >> 1) ^ POLY } else { crc >> 1 };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static TABLE: [u32; 256] = build_table();

/// CRC-32C of `data` (full-message convenience over [`crc32c_append`]).
pub fn crc32c(data: &[u8]) -> u32 {
    crc32c_append(0, data)
}

/// Extends a running CRC-32C with more bytes (for multi-part records).
pub fn crc32c_append(crc: u32, data: &[u8]) -> u32 {
    let mut crc = !crc;
    for &b in data {
        crc = TABLE[((crc ^ b as u32) & 0xFF) as usize] ^ (crc >> 8);
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // RFC 3720 / common test vectors for CRC-32C
        assert_eq!(crc32c(b""), 0x0000_0000);
        assert_eq!(crc32c(b"123456789"), 0xE306_9283);
        assert_eq!(crc32c(&[0u8; 32]), 0x8A91_36AA);
        assert_eq!(crc32c(&[0xFFu8; 32]), 0x62A8_AB43);
    }

    #[test]
    fn append_composes() {
        let whole = crc32c(b"hello world");
        let split = crc32c_append(crc32c(b"hello "), b"world");
        assert_eq!(whole, split);
    }

    #[test]
    fn detects_single_bit_flips() {
        let data = b"?.euter.r+(.date=3/3/85,.stkCode=hp,.clsPrice=50)";
        let base = crc32c(data);
        let mut copy = data.to_vec();
        for i in 0..copy.len() {
            copy[i] ^= 1;
            assert_ne!(crc32c(&copy), base, "flip at byte {i} undetected");
            copy[i] ^= 1;
        }
    }
}
