//! The multidatabase store: universe + catalog + caches + transactions.

use crate::error::{StorageError, StorageResult};
use crate::index::{Index, IndexKind};
use crate::journal::{ChangeRecord, ChangeScope, Journal};
use crate::stats::RelStats;
use idl_object::{Name, Path, SetObj, Value};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;

/// Monotonic store version; bumped by every mutation.
pub type Version = u64;

/// Cache slot: the store version the entry was built at, plus the entry.
type Cached<T> = (Version, Arc<T>);

#[derive(Default)]
struct Caches {
    /// (db, rel, attr, kind) → cached index
    indexes: HashMap<(Name, Name, Name, IndexKind), Cached<Index>>,
    /// (db, rel) → cached statistics
    stats: HashMap<(Name, Name), Cached<RelStats>>,
}

struct TxnFrame {
    saved_universe: Value,
    saved_version: Version,
}

/// The multidatabase store.
///
/// Owns the universe tuple and provides catalog operations, lazily
/// maintained secondary indexes, statistics, snapshot transactions and a
/// change journal. All mutation goes through methods that record a
/// [`ChangeScope`] so caches stay sound under arbitrary IDL updates.
pub struct Store {
    universe: Value,
    version: Version,
    journal: Journal,
    caches: Mutex<Caches>,
    txns: Vec<TxnFrame>,
}

impl Default for Store {
    fn default() -> Self {
        Self::new()
    }
}

impl Store {
    /// An empty universe.
    pub fn new() -> Self {
        Store {
            universe: Value::empty_tuple(),
            version: 0,
            journal: Journal::new(),
            caches: Mutex::new(Caches::default()),
            txns: Vec::new(),
        }
    }

    /// Wraps an existing universe object (must be a tuple).
    pub fn from_universe(universe: Value) -> StorageResult<Self> {
        if universe.as_tuple().is_none() {
            return Err(StorageError::ShapeViolation("universe must be a tuple".into()));
        }
        let mut s = Store::new();
        s.universe = universe;
        Ok(s)
    }

    /// The universe tuple.
    pub fn universe(&self) -> &Value {
        &self.universe
    }

    /// Current version.
    pub fn version(&self) -> Version {
        self.version
    }

    /// Journal records newer than `since`.
    pub fn changes_since(&self, since: Version) -> &[ChangeRecord] {
        self.journal.since(since)
    }

    // ---- catalog ------------------------------------------------------

    /// Database names (sorted).
    pub fn database_names(&self) -> Vec<Name> {
        idl_object::universe::database_names(&self.universe)
    }

    /// Relation names of `db` (sorted).
    pub fn relation_names(&self, db: &str) -> StorageResult<Vec<Name>> {
        let dbv =
            self.universe.attr(db).ok_or_else(|| StorageError::NoSuchDatabase(Name::new(db)))?;
        let t = dbv
            .as_tuple()
            .ok_or_else(|| StorageError::ShapeViolation(format!("database {db} is not a tuple")))?;
        Ok(t.keys().cloned().collect())
    }

    /// Whether the database exists.
    pub fn has_database(&self, db: &str) -> bool {
        self.universe.attr(db).is_some()
    }

    /// The relation `db.rel` as a set object.
    pub fn relation(&self, db: &str, rel: &str) -> StorageResult<&SetObj> {
        let dbv =
            self.universe.attr(db).ok_or_else(|| StorageError::NoSuchDatabase(Name::new(db)))?;
        let relv = dbv
            .attr(rel)
            .ok_or_else(|| StorageError::NoSuchRelation(Name::new(db), Name::new(rel)))?;
        relv.as_set()
            .ok_or_else(|| StorageError::ShapeViolation(format!("{db}.{rel} is not a set")))
    }

    /// Creates an empty database.
    pub fn create_database(&mut self, db: impl Into<Name>) -> StorageResult<()> {
        let db = db.into();
        let t = self.universe.as_tuple_mut().expect("universe is a tuple");
        if t.contains(db.as_str()) {
            return Err(StorageError::AlreadyExists(format!("database {db}")));
        }
        t.insert(db.clone(), Value::empty_tuple());
        self.record(ChangeScope::Database { db });
        Ok(())
    }

    /// Drops a database and everything in it.
    pub fn drop_database(&mut self, db: &str) -> StorageResult<()> {
        let t = self.universe.as_tuple_mut().expect("universe is a tuple");
        if t.remove(db).is_none() {
            return Err(StorageError::NoSuchDatabase(Name::new(db)));
        }
        self.record(ChangeScope::Database { db: Name::new(db) });
        Ok(())
    }

    /// Creates an empty relation, creating the database on demand.
    pub fn create_relation(
        &mut self,
        db: impl Into<Name>,
        rel: impl Into<Name>,
    ) -> StorageResult<()> {
        let db = db.into();
        let rel = rel.into();
        let t = self.universe.as_tuple_mut().expect("universe is a tuple");
        let dbv = t.get_or_insert_with(db.clone(), Value::empty_tuple);
        let dbt = dbv
            .as_tuple_mut()
            .ok_or_else(|| StorageError::ShapeViolation(format!("database {db} is not a tuple")))?;
        if dbt.contains(rel.as_str()) {
            return Err(StorageError::AlreadyExists(format!("relation {db}.{rel}")));
        }
        dbt.insert(rel.clone(), Value::empty_set());
        self.record(ChangeScope::Database { db });
        Ok(())
    }

    /// Drops a relation.
    pub fn drop_relation(&mut self, db: &str, rel: &str) -> StorageResult<()> {
        let dbv = Path::new([db])
            .get_mut(&mut self.universe)
            .ok_or_else(|| StorageError::NoSuchDatabase(Name::new(db)))?;
        let dbt = dbv
            .as_tuple_mut()
            .ok_or_else(|| StorageError::ShapeViolation(format!("database {db} is not a tuple")))?;
        if dbt.remove(rel).is_none() {
            return Err(StorageError::NoSuchRelation(Name::new(db), Name::new(rel)));
        }
        self.record(ChangeScope::Database { db: Name::new(db) });
        Ok(())
    }

    // ---- data plane ----------------------------------------------------

    /// Inserts a tuple into `db.rel`, creating database and relation on
    /// demand. Returns whether the set grew (false = duplicate).
    pub fn insert(
        &mut self,
        db: impl Into<Name>,
        rel: impl Into<Name>,
        tuple: Value,
    ) -> StorageResult<bool> {
        let db = db.into();
        let rel = rel.into();
        let t = self.universe.as_tuple_mut().expect("universe is a tuple");
        let dbv = t.get_or_insert_with(db.clone(), Value::empty_tuple);
        let dbt = dbv
            .as_tuple_mut()
            .ok_or_else(|| StorageError::ShapeViolation(format!("database {db} is not a tuple")))?;
        let relv = dbt.get_or_insert_with(rel.clone(), Value::empty_set);
        let rels = relv
            .as_set_mut()
            .ok_or_else(|| StorageError::ShapeViolation(format!("{db}.{rel} is not a set")))?;
        let grew = rels.insert(tuple);
        self.record(ChangeScope::Relation { db, rel });
        Ok(grew)
    }

    /// Deletes every tuple of `db.rel` satisfying `pred`; returns the count.
    pub fn delete_where(
        &mut self,
        db: &str,
        rel: &str,
        pred: impl FnMut(&Value) -> bool,
    ) -> StorageResult<usize> {
        let removed = {
            let relv = Path::new([db, rel])
                .get_mut(&mut self.universe)
                .ok_or_else(|| StorageError::NoSuchRelation(Name::new(db), Name::new(rel)))?;
            let rels = relv
                .as_set_mut()
                .ok_or_else(|| StorageError::ShapeViolation(format!("{db}.{rel} is not a set")))?;
            rels.remove_if(pred)
        };
        self.record(ChangeScope::Relation { db: Name::new(db), rel: Name::new(rel) });
        Ok(removed)
    }

    /// General mutation hook used by the evaluator's update semantics: `f`
    /// gets the whole universe; `scope` declares what it may touch (used
    /// for cache invalidation, so over-approximate when unsure).
    pub fn mutate<R>(&mut self, scope: ChangeScope, f: impl FnOnce(&mut Value) -> R) -> R {
        let r = f(&mut self.universe);
        self.record(scope);
        r
    }

    // ---- caches ----------------------------------------------------------

    /// An index on `db.rel.attr`, built or reused as needed.
    pub fn index(
        &self,
        db: &str,
        rel: &str,
        attr: &str,
        kind: IndexKind,
    ) -> StorageResult<Arc<Index>> {
        let key = (Name::new(db), Name::new(rel), Name::new(attr), kind);
        // Build while holding the caches lock: concurrent fixpoint workers
        // that race for the same missing index then build it once and share
        // the Arc, instead of each paying the O(n) build redundantly.
        let mut caches = self.caches.lock();
        if let Some((built_at, idx)) = caches.indexes.get(&key) {
            let stale = self.journal.since(*built_at).iter().any(|c| c.scope.touches(db, rel));
            if !stale {
                return Ok(Arc::clone(idx));
            }
        }
        let relset = self.relation(db, rel)?;
        let idx = Arc::new(Index::build(kind, relset, &Name::new(attr)));
        caches.indexes.insert(key, (self.version, Arc::clone(&idx)));
        Ok(idx)
    }

    /// Statistics for `db.rel`, computed or reused as needed.
    pub fn stats(&self, db: &str, rel: &str) -> StorageResult<Arc<RelStats>> {
        let key = (Name::new(db), Name::new(rel));
        {
            let caches = self.caches.lock();
            if let Some((built_at, st)) = caches.stats.get(&key) {
                let stale = self.journal.since(*built_at).iter().any(|c| c.scope.touches(db, rel));
                if !stale {
                    return Ok(Arc::clone(st));
                }
            }
        }
        let relset = self.relation(db, rel)?;
        let st = Arc::new(RelStats::compute(relset));
        self.caches.lock().stats.insert(key, (self.version, Arc::clone(&st)));
        Ok(st)
    }

    // ---- transactions ---------------------------------------------------

    /// Opens a (nestable) transaction: snapshots the universe. The
    /// snapshot is an O(1) copy-on-write handle (Arc-backed interiors);
    /// later mutations deep-copy only the spine they touch.
    pub fn begin(&mut self) {
        self.txns
            .push(TxnFrame { saved_universe: self.universe.clone(), saved_version: self.version });
    }

    /// Commits the innermost transaction (keeps changes).
    pub fn commit(&mut self) -> StorageResult<()> {
        self.txns.pop().map(|_| ()).ok_or(StorageError::NoOpenTransaction)
    }

    /// Rolls the innermost transaction back, restoring the snapshot.
    pub fn rollback(&mut self) -> StorageResult<()> {
        let frame = self.txns.pop().ok_or(StorageError::NoOpenTransaction)?;
        self.universe = frame.saved_universe;
        let _ = frame.saved_version; // version stays monotonic
        self.record(ChangeScope::Universe);
        Ok(())
    }

    /// Whether a transaction is open.
    pub fn in_txn(&self) -> bool {
        !self.txns.is_empty()
    }

    /// Runs `f` inside a transaction; rolls back if it returns `Err`.
    pub fn transact<R, E>(&mut self, f: impl FnOnce(&mut Store) -> Result<R, E>) -> Result<R, E> {
        self.begin();
        match f(self) {
            Ok(r) => {
                self.commit().expect("frame pushed above");
                Ok(r)
            }
            Err(e) => {
                self.rollback().expect("frame pushed above");
                Err(e)
            }
        }
    }

    fn record(&mut self, scope: ChangeScope) {
        self.version += 1;
        self.journal.push(ChangeRecord { version: self.version, scope });
    }

    /// Truncates the change journal up to (and including) `upto`,
    /// bounding its memory for long-running stores. Cached indexes and
    /// statistics whose build version could no longer be validated are
    /// dropped (they rebuild lazily); readers that were tracking changes
    /// (view refresh) must have consumed the journal past `upto` first.
    pub fn checkpoint(&mut self, upto: Version) {
        self.journal.truncate_before(upto);
        let mut caches = self.caches.lock();
        caches.indexes.retain(|_, (built_at, _)| *built_at >= upto);
        caches.stats.retain(|_, (built_at, _)| *built_at >= upto);
    }

    /// Number of retained journal records (diagnostics).
    pub fn journal_len(&self) -> usize {
        self.journal.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use idl_object::tuple;

    fn seeded() -> Store {
        let mut s = Store::new();
        s.insert("euter", "r", tuple! { stkCode: "hp", clsPrice: 50i64 }).unwrap();
        s.insert("euter", "r", tuple! { stkCode: "ibm", clsPrice: 160i64 }).unwrap();
        s
    }

    #[test]
    fn catalog_basics() {
        let mut s = seeded();
        assert_eq!(s.database_names().len(), 1);
        assert_eq!(s.relation_names("euter").unwrap().len(), 1);
        assert_eq!(s.relation("euter", "r").unwrap().len(), 2);
        assert!(matches!(s.relation("nope", "r"), Err(StorageError::NoSuchDatabase(_))));
        assert!(matches!(s.relation("euter", "s"), Err(StorageError::NoSuchRelation(..))));
        s.create_database("chwab").unwrap();
        assert!(s.create_database("chwab").is_err());
        s.create_relation("chwab", "r").unwrap();
        assert!(s.create_relation("chwab", "r").is_err());
        s.drop_relation("chwab", "r").unwrap();
        s.drop_database("chwab").unwrap();
        assert!(!s.has_database("chwab"));
    }

    #[test]
    fn insert_dedups_and_delete_where() {
        let mut s = seeded();
        assert!(!s.insert("euter", "r", tuple! { stkCode: "hp", clsPrice: 50i64 }).unwrap());
        let n =
            s.delete_where("euter", "r", |t| t.attr("stkCode") == Some(&Value::str("hp"))).unwrap();
        assert_eq!(n, 1);
        assert_eq!(s.relation("euter", "r").unwrap().len(), 1);
    }

    #[test]
    fn index_reuse_and_invalidation() {
        let mut s = seeded();
        let i1 = s.index("euter", "r", "stkCode", IndexKind::Hash).unwrap();
        let i2 = s.index("euter", "r", "stkCode", IndexKind::Hash).unwrap();
        assert!(Arc::ptr_eq(&i1, &i2), "index is cached");
        assert_eq!(i1.lookup_eq(&Value::str("hp")).len(), 1);

        s.insert("euter", "r", tuple! { stkCode: "hp", clsPrice: 55i64 }).unwrap();
        let i3 = s.index("euter", "r", "stkCode", IndexKind::Hash).unwrap();
        assert!(!Arc::ptr_eq(&i1, &i3), "mutation invalidates");
        assert_eq!(i3.lookup_eq(&Value::str("hp")).len(), 2);

        // unrelated relation change does not invalidate
        s.insert("chwab", "r", tuple! { date: "3/3/85" }).unwrap();
        let i4 = s.index("euter", "r", "stkCode", IndexKind::Hash).unwrap();
        assert!(Arc::ptr_eq(&i3, &i4));
    }

    #[test]
    fn stats_cache() {
        let mut s = seeded();
        let st = s.stats("euter", "r").unwrap();
        assert_eq!(st.cardinality, 2);
        s.insert("euter", "r", tuple! { stkCode: "sun", clsPrice: 30i64 }).unwrap();
        let st2 = s.stats("euter", "r").unwrap();
        assert_eq!(st2.cardinality, 3);
    }

    #[test]
    fn transactions_roll_back() {
        let mut s = seeded();
        s.begin();
        s.insert("euter", "r", tuple! { stkCode: "sun", clsPrice: 30i64 }).unwrap();
        assert_eq!(s.relation("euter", "r").unwrap().len(), 3);
        s.rollback().unwrap();
        assert_eq!(s.relation("euter", "r").unwrap().len(), 2);
        assert!(s.rollback().is_err());

        // nested
        s.begin();
        s.insert("euter", "r", tuple! { stkCode: "a", clsPrice: 1i64 }).unwrap();
        s.begin();
        s.insert("euter", "r", tuple! { stkCode: "b", clsPrice: 2i64 }).unwrap();
        s.rollback().unwrap();
        assert_eq!(s.relation("euter", "r").unwrap().len(), 3);
        s.commit().unwrap();
        assert_eq!(s.relation("euter", "r").unwrap().len(), 3);
    }

    #[test]
    fn transact_helper() {
        let mut s = seeded();
        let r: Result<(), &str> = s.transact(|s| {
            s.insert("euter", "r", tuple! { stkCode: "x", clsPrice: 1i64 }).unwrap();
            Err("boom")
        });
        assert!(r.is_err());
        assert_eq!(s.relation("euter", "r").unwrap().len(), 2);

        let r: Result<u32, ()> = s.transact(|s| {
            s.insert("euter", "r", tuple! { stkCode: "y", clsPrice: 2i64 }).unwrap();
            Ok(7)
        });
        assert_eq!(r.unwrap(), 7);
        assert_eq!(s.relation("euter", "r").unwrap().len(), 3);
    }

    #[test]
    fn rollback_invalidates_indexes() {
        let mut s = seeded();
        s.begin();
        s.insert("euter", "r", tuple! { stkCode: "sun", clsPrice: 30i64 }).unwrap();
        let i1 = s.index("euter", "r", "stkCode", IndexKind::Hash).unwrap();
        assert_eq!(i1.lookup_eq(&Value::str("sun")).len(), 1);
        s.rollback().unwrap();
        let i2 = s.index("euter", "r", "stkCode", IndexKind::Hash).unwrap();
        assert_eq!(i2.lookup_eq(&Value::str("sun")).len(), 0);
    }

    #[test]
    fn mutate_hook_records_scope() {
        let mut s = seeded();
        let v0 = s.version();
        s.mutate(ChangeScope::Universe, |u| {
            u.as_tuple_mut().unwrap().insert("newdb", Value::empty_tuple());
        });
        assert!(s.version() > v0);
        assert!(s.has_database("newdb"));
        assert_eq!(s.changes_since(v0).len(), 1);
    }

    #[test]
    fn checkpoint_bounds_journal_and_keeps_indexes_sound() {
        let mut s = seeded();
        for i in 0..20i64 {
            s.insert("euter", "r", tuple! { stkCode: "x", clsPrice: i }).unwrap();
        }
        let idx_before = s.index("euter", "r", "stkCode", IndexKind::Hash).unwrap();
        assert_eq!(idx_before.lookup_eq(&Value::str("x")).len(), 20);
        let v = s.version();
        s.checkpoint(v);
        assert_eq!(s.journal_len(), 0);
        // the cached index was built at version == v, so it survives …
        let idx_after = s.index("euter", "r", "stkCode", IndexKind::Hash).unwrap();
        assert_eq!(idx_after.lookup_eq(&Value::str("x")).len(), 20);
        // … and later mutations still invalidate it correctly
        s.insert("euter", "r", tuple! { stkCode: "x", clsPrice: 99i64 }).unwrap();
        let idx_fresh = s.index("euter", "r", "stkCode", IndexKind::Hash).unwrap();
        assert_eq!(idx_fresh.lookup_eq(&Value::str("x")).len(), 21);
    }

    #[test]
    fn checkpoint_drops_unverifiable_caches() {
        let mut s = seeded();
        let idx = s.index("euter", "r", "stkCode", IndexKind::Hash).unwrap();
        // mutate, then checkpoint past the mutation: the old index's
        // staleness can no longer be proven from the journal, so it must
        // have been dropped rather than wrongly reused
        s.insert("euter", "r", tuple! { stkCode: "hp", clsPrice: 1i64 }).unwrap();
        let v = s.version();
        s.checkpoint(v);
        let idx2 = s.index("euter", "r", "stkCode", IndexKind::Hash).unwrap();
        assert!(!Arc::ptr_eq(&idx, &idx2));
        assert_eq!(idx2.lookup_eq(&Value::str("hp")).len(), 2);
    }

    #[test]
    fn from_universe_validates() {
        assert!(Store::from_universe(Value::int(1)).is_err());
        let u = idl_object::universe::stock_universe(vec![("3/3/85", "hp", 50.0)]);
        let s = Store::from_universe(u).unwrap();
        assert_eq!(s.database_names().len(), 3);
    }
}
