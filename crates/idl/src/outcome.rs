//! Statement outcomes.

use idl_eval::update::UpdateStats;
use idl_eval::AnswerSet;
use serde::{Deserialize, Serialize};
use std::fmt;

/// What executing one statement produced.
///
/// Serde-serializable (externally tagged) so outcomes travel over the
/// `idl-server` wire verbatim — the client sees the same answers and
/// counters a linked-in engine would return.
#[derive(Clone, PartialEq, Debug, Serialize, Deserialize)]
pub enum Outcome {
    /// A request ran: its answers and any mutation counters.
    Answers {
        /// Satisfying substitutions (boolean reading for ground queries).
        answers: AnswerSet,
        /// Mutations performed by update items / program calls.
        stats: UpdateStats,
    },
    /// A view rule was installed.
    RuleAdded,
    /// An update-program clause was registered.
    ProgramRegistered,
    /// A durable checkpoint was written, covering log records up to `lsn`.
    Checkpointed {
        /// The last operation-log LSN the snapshot contains.
        lsn: u64,
    },
}

impl Outcome {
    /// The answers, when the statement was a request.
    pub fn answers(&self) -> Option<&AnswerSet> {
        match self {
            Outcome::Answers { answers, .. } => Some(answers),
            _ => None,
        }
    }

    /// Boolean reading of a request outcome.
    pub fn is_true(&self) -> bool {
        matches!(self, Outcome::Answers { answers, .. } if answers.is_true())
    }

    /// Mutation counters, when the statement was a request.
    pub fn stats(&self) -> Option<UpdateStats> {
        match self {
            Outcome::Answers { stats, .. } => Some(*stats),
            _ => None,
        }
    }
}

impl fmt::Display for Outcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Outcome::Answers { answers, stats } => {
                write!(f, "{answers}")?;
                if stats.total() > 0 {
                    write!(
                        f,
                        "\n({} inserted, {} deleted, {} modified)",
                        stats.inserted, stats.deleted, stats.modified
                    )?;
                }
                Ok(())
            }
            Outcome::RuleAdded => write!(f, "rule added"),
            Outcome::ProgramRegistered => write!(f, "update program registered"),
            Outcome::Checkpointed { lsn } => write!(f, "checkpoint written (covers lsn {lsn})"),
        }
    }
}
