//! The engine: store + view catalog + program registry + execution loop.

use crate::error::EngineError;
use crate::outcome::Outcome;
use idl_eval::analyze::BindingIssue;
use idl_eval::rules::{DerivedCatalog, DerivedScope, FixpointStats};
use idl_eval::update::UpdateStats;
use idl_eval::{diff_update, MaintainedViews, PredPat};
use idl_eval::{
    run_request_cached, AnswerSet, EvalOptions, PlanCache, ProgramRegistry, RuleEngine, Subst,
};
use idl_lang::{parse_program, Request, Rule, Statement};
use idl_object::Value;
use idl_storage::schema::{self, RelationSchema, SchemaSet, Violation};
use idl_storage::{Store, Version};
use std::collections::BTreeSet;

/// Engine configuration.
#[derive(Clone, Copy, Debug)]
pub struct EngineOptions {
    /// Evaluator options (planner / index toggles, result limit).
    pub eval: EvalOptions,
    /// Refresh materialised views automatically before each request that
    /// follows a base-data change (on by default). When off, call
    /// [`Engine::refresh_views`] manually.
    pub auto_refresh: bool,
    /// Use relation-granularity semi-naive fixpoints (on by default).
    pub semi_naive: bool,
    /// Re-derive only the rules affected by the journalled changes instead
    /// of rebuilding every view (on by default; ablation bench B10).
    pub incremental_refresh: bool,
}

impl Default for EngineOptions {
    fn default() -> Self {
        EngineOptions {
            eval: EvalOptions::default(),
            auto_refresh: true,
            semi_naive: true,
            incremental_refresh: true,
        }
    }
}

impl EngineOptions {
    /// A builder starting from the default configuration. This is the one
    /// construction path shared by CLI flag parsing and the server config
    /// (see [`EngineOptionsBuilder`]).
    pub fn builder() -> EngineOptionsBuilder {
        EngineOptionsBuilder::default()
    }

    /// A builder seeded from this configuration — the idiom for adjusting
    /// a live engine: `e.set_options(e.options().rebuild().threads(4).build())`.
    pub fn rebuild(self) -> EngineOptionsBuilder {
        EngineOptionsBuilder { engine: self, ..EngineOptionsBuilder::default() }
    }
}

/// The single builder behind every engine configuration path.
///
/// Collapses what used to be scattered `with_*` methods on
/// [`EngineOptions`] and [`crate::DurabilityOptions`]: the CLI's flag
/// parser, the server's config file/flags, and tests all construct from
/// this one type, then split the result with [`EngineOptionsBuilder::build`]
/// (engine side) and [`EngineOptionsBuilder::durability`] (log side).
#[derive(Clone, Copy, Debug, Default)]
pub struct EngineOptionsBuilder {
    engine: EngineOptions,
    durability: crate::durable::DurabilityOptions,
}

impl EngineOptionsBuilder {
    /// Fixpoint worker threads for view materialisation (the CLI's
    /// `--threads`; `1` forces the sequential path).
    pub fn threads(mut self, threads: usize) -> Self {
        self.engine.eval = self.engine.eval.with_threads(threads);
        self
    }

    /// Plan compilation on/off (the CLI's `--no-compile` selects the
    /// tree-walk reference interpreter).
    pub fn compile(mut self, compile: bool) -> Self {
        self.engine.eval = self.engine.eval.with_compile(compile);
        self
    }

    /// Abort any request whose intermediate result exceeds this many
    /// substitutions (`E-LIMIT`); the server sets this per config.
    pub fn max_results(mut self, limit: Option<usize>) -> Self {
        self.engine.eval.max_results = limit;
        self
    }

    /// Automatic view refresh before requests that follow a base-data
    /// change (on by default).
    pub fn auto_refresh(mut self, on: bool) -> Self {
        self.engine.auto_refresh = on;
        self
    }

    /// Relation-granularity semi-naive fixpoints (on by default). An
    /// explicit choice here overrides the `IDL_NAIVE_FIXPOINT` environment
    /// knob, which only steers the [`EvalOptions`] default.
    pub fn semi_naive(mut self, on: bool) -> Self {
        self.engine.semi_naive = on;
        self.engine.eval = self.engine.eval.with_semi_naive(on);
        self
    }

    /// Re-derive only rules affected by journalled changes (on by
    /// default).
    pub fn incremental_refresh(mut self, on: bool) -> Self {
        self.engine.incremental_refresh = on;
        self
    }

    /// Write-path incremental view maintenance (on by default): update
    /// requests drive their own row deltas into the maintained views
    /// instead of marking the world stale. An explicit choice here
    /// overrides the `IDL_NO_MAINTENANCE=1` environment knob, which only
    /// steers the [`EvalOptions`] default — that knob is the
    /// refresh-the-world differential reference mode.
    pub fn maintain(mut self, on: bool) -> Self {
        self.engine.eval = self.engine.eval.with_maintain(on);
        self
    }

    /// Log/snapshot fsync policy for durable backends (the CLI's
    /// `--fsync`).
    pub fn sync(mut self, sync: crate::durable::SyncPolicy) -> Self {
        self.durability.sync = sync;
        self
    }

    /// Preferred on-disk log format for durable backends.
    pub fn log_format(mut self, format: idl_storage::LogFormat) -> Self {
        self.durability.format = format;
        self
    }

    /// Snapshot encoding for durable backends (the CLI's `--codec`).
    pub fn codec(mut self, codec: idl_storage::codec::SnapshotCodec) -> Self {
        self.durability.codec = codec;
        self
    }

    /// Full-vs-delta checkpoint policy for durable backends (the CLI's
    /// `--checkpoint full`).
    pub fn checkpoint_policy(mut self, policy: crate::durable::CheckpointPolicy) -> Self {
        self.durability.checkpoint = policy;
        self
    }

    /// Storage backend for durable backends (the CLI's `--storage`):
    /// the in-memory engine with snapshot/delta checkpoint files
    /// (default) or the paged engine — slotted pages, B-trees and a
    /// buffer pool over one page file.
    pub fn storage(mut self, spec: idl_storage::StorageSpec) -> Self {
        self.durability.storage = spec;
        self
    }

    /// Buffer-pool capacity in pages (the CLI's `--pool-pages`);
    /// selects the paged storage backend.
    pub fn pool_pages(mut self, pages: usize) -> Self {
        self.durability.storage = idl_storage::StorageSpec::Paged { pool_pages: pages };
        self
    }

    /// The engine-side configuration.
    pub fn build(self) -> EngineOptions {
        self.engine
    }

    /// The durability-side configuration (pass to
    /// [`crate::DurableEngine::open_with_vfs`]).
    pub fn durability(self) -> crate::durable::DurabilityOptions {
        self.durability
    }
}

/// The IDL engine (see the crate docs for an overview).
pub struct Engine {
    store: Store,
    rules: Vec<Rule>,
    compiled: Option<RuleEngine>,
    programs: ProgramRegistry,
    derived: DerivedCatalog,
    options: EngineOptions,
    /// Store version when views were last known fresh; `None` = dirty.
    fresh_at: Option<Version>,
    /// CoW snapshot of the universe captured when the views last became
    /// fresh (an O(1) structural-sharing clone). The stale-refresh path
    /// diffs against it to recover the row delta of whatever bypassed
    /// write-path maintenance, so repair runs the same delta pass —
    /// skipping strata with no overlapping deltas entirely — instead of
    /// the drop-and-rebuild fallback.
    fresh_universe: Option<(Version, Value)>,
    /// Declared keys/types/foreign-keys, checked after each update request.
    schemas: SchemaSet,
    /// Maintain the queryable `sys` catalog database.
    sys_enabled: bool,
    /// Memoized physical plans, keyed by canonical expression hash; shared
    /// by request execution and view refreshes.
    plan_cache: PlanCache,
    /// Statistics of the most recent view materialisation (the `--stats`
    /// CLI output); default until the first refresh actually runs rules.
    last_stats: FixpointStats,
    /// Data-dependent derived relations known from earlier refreshes.
    /// A refresh whose fixpoint materialises a relation *not* in this set
    /// saw a *schematic delta* (§6: a new stock in `euter` data creates a
    /// new `ource`-style relation) — those plans in [`PlanCache`] whose
    /// read set overlaps the newcomer are invalidated.
    seen_derived_rels: BTreeSet<PredPat>,
    /// Per-view support bookkeeping for write-path maintenance, carried
    /// into [`crate::backend::EngineSnapshot`] and persisted by the
    /// durable layer so a restart resumes maintaining instead of
    /// rebuilding.
    maintained: MaintainedViews,
    /// How many updates were absorbed by incremental maintenance (vs
    /// falling back to the refresh path) since startup.
    maintenance_runs: u64,
}

impl Default for Engine {
    fn default() -> Self {
        Self::new()
    }
}

impl Engine {
    /// An engine over an empty universe.
    pub fn new() -> Self {
        Engine::from_store(Store::new())
    }

    /// An engine over an existing universe object.
    pub fn from_universe(universe: Value) -> Result<Self, EngineError> {
        Ok(Engine::from_store(Store::from_universe(universe)?))
    }

    /// An engine over an existing store.
    pub fn from_store(store: Store) -> Self {
        Engine {
            store,
            rules: Vec::new(),
            compiled: None,
            programs: ProgramRegistry::new(),
            derived: DerivedCatalog::empty(),
            options: EngineOptions::default(),
            fresh_at: None,
            fresh_universe: None,
            schemas: SchemaSet::new(),
            sys_enabled: false,
            plan_cache: PlanCache::new(),
            last_stats: FixpointStats::default(),
            seen_derived_rels: BTreeSet::new(),
            maintained: MaintainedViews::default(),
            maintenance_runs: 0,
        }
    }

    /// An engine preloaded with the paper's three-schema stock universe.
    pub fn with_stock_universe<'a, I>(quotes: I) -> Self
    where
        I: IntoIterator<Item = (&'a str, &'a str, f64)> + Clone,
    {
        let u = idl_object::universe::stock_universe(quotes);
        Engine::from_store(Store::from_universe(u).expect("stock universe is a tuple"))
    }

    /// The underlying store (read-only).
    pub fn store(&self) -> &Store {
        &self.store
    }

    /// Mutable store access. Any direct change marks views dirty.
    pub fn store_mut(&mut self) -> &mut Store {
        self.fresh_at = None;
        &mut self.store
    }

    /// Current options.
    pub fn options(&self) -> EngineOptions {
        self.options
    }

    /// Replaces the options (e.g. to run in naive mode for an ablation).
    pub fn set_options(&mut self, options: EngineOptions) {
        self.options = options;
        if let Some(c) = &mut self.compiled {
            c.semi_naive = options.semi_naive;
        }
    }

    /// The relation-granular catalog of view-materialised state.
    pub fn derived_catalog(&self) -> &DerivedCatalog {
        &self.derived
    }

    /// Installed rules.
    pub fn rules(&self) -> &[Rule] {
        &self.rules
    }

    /// The program registry.
    pub fn programs(&self) -> &ProgramRegistry {
        &self.programs
    }

    // ---- statement execution -------------------------------------------

    /// Parses and executes a multi-statement source text, returning one
    /// outcome per statement. Execution stops at the first error.
    pub fn execute(&mut self, src: &str) -> Result<Vec<Outcome>, EngineError> {
        let stmts = parse_program(src)?;
        let mut out = Vec::with_capacity(stmts.len());
        for stmt in stmts {
            out.push(self.execute_statement(stmt)?);
        }
        Ok(out)
    }

    /// Executes one parsed statement.
    pub fn execute_statement(&mut self, stmt: Statement) -> Result<Outcome, EngineError> {
        match stmt {
            Statement::Request(req) => self.run(&req),
            Statement::Rule(rule) => {
                self.add_rule(rule)?;
                Ok(Outcome::RuleAdded)
            }
            Statement::Program(clause) => {
                self.programs.register(&clause)?;
                Ok(Outcome::ProgramRegistered)
            }
        }
    }

    /// Convenience: executes a source text expected to contain exactly one
    /// request, returning its answers.
    pub fn query(&mut self, src: &str) -> Result<AnswerSet, EngineError> {
        match self.execute_one(src)? {
            Outcome::Answers { answers, .. } => Ok(answers),
            _ => Err(EngineError::Usage("expected a request, found a clause".into())),
        }
    }

    /// Convenience: executes a source text expected to contain exactly one
    /// (update) request, returning the mutation counters.
    pub fn update(&mut self, src: &str) -> Result<UpdateStats, EngineError> {
        match self.execute_one(src)? {
            Outcome::Answers { stats, .. } => Ok(stats),
            _ => Err(EngineError::Usage("expected a request, found a clause".into())),
        }
    }

    /// Executes one statement of the SQL-flavoured sugar surface
    /// (§8's "language with enough syntactic sugar"), translating it to an
    /// IDL request. Higher-order table names work:
    /// `SELECT S, clsPrice FROM ource.S WHERE clsPrice > 200`.
    pub fn execute_sql(&mut self, src: &str) -> Result<Outcome, EngineError> {
        let stmt = idl_lang::sugar::parse_sugar(src)?;
        self.execute_statement(stmt)
    }

    fn execute_one(&mut self, src: &str) -> Result<Outcome, EngineError> {
        let mut outcomes = self.execute(src)?;
        match outcomes.len() {
            1 => Ok(outcomes.pop().unwrap()),
            n => Err(EngineError::Usage(format!("expected exactly one statement, found {n}"))),
        }
    }

    fn run(&mut self, req: &Request) -> Result<Outcome, EngineError> {
        if self.options.auto_refresh {
            self.refresh_views_if_stale()?;
        }
        // Write-path maintenance needs the pre-update universe (an O(1)
        // CoW clone) to extract the update's row delta afterwards. Only
        // captured when the views are fresh *now* — maintaining on top of
        // stale views would bake the staleness in.
        let pre = if self.options.eval.maintain
            && self.compiled.is_some()
            && self.options.semi_naive
            && !req.is_pure_query()
            && self.views_fresh_now()
        {
            Some((self.store.universe().clone(), self.store.version()))
        } else {
            None
        };
        // Outer transaction so declared-schema enforcement can undo the
        // whole request (run_request's own transaction nests inside).
        let check_schemas = !self.schemas.is_empty() && !req.is_pure_query();
        if check_schemas {
            self.store.begin();
        }
        let outcome = match run_request_cached(
            &mut self.store,
            &self.programs,
            &self.derived,
            req,
            self.options.eval,
            Some(&mut self.plan_cache),
        ) {
            Ok(o) => o,
            Err(e) => {
                if check_schemas {
                    self.store.rollback().expect("outer transaction open");
                }
                return Err(e.into());
            }
        };
        if check_schemas {
            let violations = self.schemas.check(&self.store);
            if violations.is_empty() {
                self.store.commit().expect("outer transaction open");
            } else {
                self.store.rollback().expect("outer transaction open");
                return Err(EngineError::Schema(violations));
            }
        }
        // Write-path maintenance: drive the update's own row delta into
        // the maintained views. On any shape the pass cannot handle it
        // leaves the views marked stale and the refresh path repairs them
        // — staleness detection from the storage journal is unchanged and
        // remains the fallback.
        if let Some((pre_universe, pre_version)) = pre {
            if outcome.stats.total() > 0 {
                self.maintain_after_update(&pre_universe, pre_version)?;
            }
        }
        Ok(Outcome::Answers { answers: outcome.answers, stats: outcome.stats })
    }

    /// Whether the materialised views match the store right now (fresh
    /// marker set and no base-data change journalled since). Durable
    /// checkpoints use this to decide whether the maintenance state is
    /// worth persisting alongside the universe.
    pub fn views_fresh_now(&self) -> bool {
        let Some(v) = self.fresh_at else { return false };
        self.store.changes_since(v).iter().all(|c| {
            let sys_write = matches!(
                &c.scope,
                idl_storage::ChangeScope::Database { db } if db.as_str() == "sys"
            );
            sys_write || !self.derived.is_base_change(&c.scope)
        })
    }

    /// Marks the views fresh as of the store's current version and
    /// captures the CoW universe snapshot the stale-refresh delta-repair
    /// path diffs against.
    fn mark_fresh(&mut self) {
        let v = self.store.version();
        self.fresh_at = Some(v);
        self.fresh_universe = Some((v, self.store.universe().clone()));
    }

    /// Runs incremental maintenance for the update journalled between
    /// `pre_version` and now. On success the views stay fresh and the
    /// maintained-state bookkeeping advances; on any bail the views are
    /// marked stale for the refresh/repair path.
    fn maintain_after_update(
        &mut self,
        pre_universe: &Value,
        pre_version: Version,
    ) -> Result<(), EngineError> {
        let scopes: Vec<idl_storage::ChangeScope> =
            self.store.changes_since(pre_version).iter().map(|c| c.scope.clone()).collect();
        let Some(delta) = diff_update(pre_universe, self.store.universe(), &scopes) else {
            // Not expressible as row edits (schema-shaping update): the
            // refresh path owns it.
            self.fresh_at = None;
            return Ok(());
        };
        if delta.is_empty() {
            // No-op update (e.g. a retraction that matched nothing): the
            // journal recorded a write scope but the contents are
            // unchanged, so re-mark freshness at the current version —
            // otherwise the stale check re-diffs this forever.
            self.mark_fresh();
            return Ok(());
        }
        let maintained = match &self.compiled {
            Some(c) => c.maintain_cached(
                &mut self.store,
                &delta,
                self.options.eval,
                Some(&mut self.plan_cache),
            )?,
            None => None,
        };
        let Some(outcome) = maintained else {
            self.fresh_at = None;
            return Ok(());
        };
        let mut stats = outcome.stats.clone();
        // Incrementally created relations are schematic deltas exactly
        // like in a refresh: register them with the seen-set and
        // invalidate overlapping plans; GCd ones leave the seen-set so a
        // reappearance counts as schematic again.
        self.apply_schematic_deltas(&mut stats, false);
        stats.maintenance.schematic_creates = stats.schematic_deltas;
        if !outcome.gcd.is_empty() {
            for pat in &outcome.gcd {
                self.seen_derived_rels.remove(pat);
            }
            stats.plan_invalidations += self.plan_cache.invalidate_overlapping(&outcome.gcd);
        }
        if self.sys_enabled {
            schema::install_sys_catalog(&mut self.store, &self.schemas)?;
        }
        self.maintained.apply(&outcome);
        stats.maintenance.support_entries = self.maintained.entry_count();
        self.mark_fresh();
        self.maintenance_runs += 1;
        self.last_stats = stats;
        Ok(())
    }

    /// Per-view support bookkeeping for write-path maintenance.
    pub fn maintained_views(&self) -> &MaintainedViews {
        &self.maintained
    }

    /// Installs maintenance state recovered by a durable backend. Returns
    /// `false` (and leaves the views stale) when the state's rule
    /// fingerprint does not match the installed rules — the refresh path
    /// then rebuilds and recomputes it.
    pub fn adopt_maintained_views(&mut self, state: MaintainedViews) -> bool {
        if !state.matches_rules(&self.rules) {
            return false;
        }
        self.maintained = state;
        self.mark_fresh();
        true
    }

    /// How many updates incremental maintenance absorbed since startup.
    pub fn maintenance_runs(&self) -> u64 {
        self.maintenance_runs
    }

    // ---- declared schemas & system catalog --------------------------------

    /// Declares key/type/foreign-key constraints for a relation (§2's
    /// "other metadata" extension). Future update requests that would
    /// violate them are rolled back with [`EngineError::Schema`]. Fails if
    /// the *current* contents already violate the declaration.
    pub fn declare_schema(
        &mut self,
        db: impl Into<idl_object::Name>,
        rel: impl Into<idl_object::Name>,
        schema: RelationSchema,
    ) -> Result<(), EngineError> {
        let db = db.into();
        let rel = rel.into();
        let mut candidate = self.schemas.clone();
        candidate.declare(db, rel, schema);
        let violations = candidate.check(&self.store);
        if !violations.is_empty() {
            return Err(EngineError::Schema(violations));
        }
        self.schemas = candidate;
        self.fresh_at = None; // sys catalog must reflect the declaration
        Ok(())
    }

    /// Declared schemas.
    pub fn schemas(&self) -> &SchemaSet {
        &self.schemas
    }

    /// Checks all declared constraints right now.
    pub fn check_schemas(&self) -> Vec<Violation> {
        self.schemas.check(&self.store)
    }

    /// Turns on the queryable `sys` catalog database (refreshed together
    /// with the views): `sys.databases`, `sys.relations`, `sys.attributes`,
    /// `sys.keys`, `sys.types`.
    pub fn enable_sys_catalog(&mut self) -> Result<(), EngineError> {
        self.sys_enabled = true;
        self.fresh_at = None;
        Ok(())
    }

    // ---- rules / views ---------------------------------------------------

    /// Installs one rule (revalidating stratification over the whole set).
    pub fn add_rule(&mut self, rule: Rule) -> Result<(), EngineError> {
        let mut candidate = self.rules.clone();
        candidate.push(rule);
        let mut engine = RuleEngine::new(candidate.clone())?;
        engine.semi_naive = self.options.semi_naive;
        self.derived = engine.derived_catalog();
        self.compiled = Some(engine);
        self.rules = candidate;
        self.fresh_at = None;
        Ok(())
    }

    /// Installs every rule in a source text (other statements rejected).
    pub fn add_rules(&mut self, src: &str) -> Result<usize, EngineError> {
        let stmts = parse_program(src)?;
        let mut n = 0;
        for stmt in stmts {
            match stmt {
                Statement::Rule(r) => {
                    self.add_rule(r)?;
                    n += 1;
                }
                _ => {
                    return Err(EngineError::Usage(
                        "add_rules accepts only `head <- body` statements".into(),
                    ))
                }
            }
        }
        Ok(n)
    }

    /// Re-derives all views from scratch: drops every derived database and
    /// runs the stratified fixpoint. Returns the fixpoint statistics.
    pub fn refresh_views(&mut self) -> Result<FixpointStats, EngineError> {
        let Some(compiled) = &self.compiled else {
            if self.sys_enabled {
                schema::install_sys_catalog(&mut self.store, &self.schemas)?;
            }
            self.mark_fresh();
            return Ok(FixpointStats::default());
        };
        // Clear exactly the derived state: whole databases for
        // higher-order views, individual relations otherwise (base
        // relations sharing the database survive).
        let entries: Vec<(String, DerivedScope)> = self
            .derived
            .iter()
            .map(|(db, scope)| (db.as_str().to_string(), scope.clone()))
            .collect();
        for (db, scope) in entries {
            match scope {
                DerivedScope::WholeDb => {
                    if self.store.has_database(&db) {
                        self.store.drop_database(&db)?;
                    }
                }
                DerivedScope::Rels(rels) => {
                    for rel in rels {
                        if self.store.relation(&db, rel.as_str()).is_ok() {
                            self.store.drop_relation(&db, rel.as_str())?;
                        }
                    }
                }
            }
        }
        let mut stats = compiled.materialize_cached(
            &mut self.store,
            self.options.eval,
            None,
            Some(&mut self.plan_cache),
        )?;
        // A full rebuild re-creates every data-dependent relation, so the
        // seen-set is *replaced*, not unioned: relations that vanished
        // (e.g. the last row of a stock deleted) drop out and would count
        // as schematic again if they come back.
        self.apply_schematic_deltas(&mut stats, true);
        if self.sys_enabled {
            schema::install_sys_catalog(&mut self.store, &self.schemas)?;
        }
        self.maintained = MaintainedViews::recompute(&self.store, &self.derived, &self.rules);
        stats.maintenance.support_entries = self.maintained.entry_count();
        self.mark_fresh();
        self.last_stats = stats.clone();
        Ok(stats)
    }

    /// Filters the fixpoint's raw created-relation log against the
    /// seen-set: what survives is a *schematic delta* — a relation (or
    /// whole database) that exists now but did not after the previous
    /// refresh. Fresh ones invalidate exactly the overlapping plan-cache
    /// entries (a plan scanning `.dbO.S` with a variable relation position
    /// must see the newcomer; a plan reading only `.dbO.hp` keeps its
    /// compiled form). The first refresh reports all of its data-dependent
    /// relations as schematic — there was no schema before it.
    fn apply_schematic_deltas(&mut self, stats: &mut FixpointStats, replace_seen: bool) {
        let created: BTreeSet<PredPat> = stats.new_relations.iter().cloned().collect();
        let fresh: Vec<PredPat> =
            created.iter().filter(|p| !self.seen_derived_rels.contains(*p)).cloned().collect();
        stats.schematic_deltas = fresh.len();
        if !fresh.is_empty() {
            stats.plan_invalidations = self.plan_cache.invalidate_overlapping(&fresh);
        }
        if replace_seen {
            self.seen_derived_rels = created;
        } else {
            self.seen_derived_rels.extend(created);
        }
    }

    /// Statistics of the most recent view materialisation that actually
    /// ran rules (full or incremental). Default-valued until then. This is
    /// what `idl --stats` prints, including the structural-sharing
    /// counters ([`FixpointStats::sharing`]).
    pub fn last_fixpoint_stats(&self) -> &FixpointStats {
        &self.last_stats
    }

    /// Refreshes views only if base data changed since the last refresh.
    pub fn refresh_views_if_stale(&mut self) -> Result<FixpointStats, EngineError> {
        if self.compiled.is_none() && !self.sys_enabled {
            return Ok(FixpointStats::default());
        }
        if let Some(v) = self.fresh_at {
            let changed: Vec<idl_storage::ChangeScope> = self
                .store
                .changes_since(v)
                .iter()
                .filter(|c| {
                    let sys_write = matches!(
                        &c.scope,
                        idl_storage::ChangeScope::Database { db } if db.as_str() == "sys"
                    );
                    !sys_write && self.derived.is_base_change(&c.scope)
                })
                .map(|c| c.scope.clone())
                .collect();
            if changed.is_empty() {
                return Ok(FixpointStats::default());
            }
            if self.options.incremental_refresh && self.compiled.is_some() {
                // Delta repair: diff the current universe against the CoW
                // snapshot captured when the views were last fresh, and
                // drive the recovered row delta through the same
                // maintenance pass the write path uses — strata with no
                // overlapping deltas are skipped entirely. Any shape the
                // pass cannot absorb falls through to the masked
                // drop-and-rebuild below (and with maintenance off this
                // path is disabled wholesale: refresh-the-world stays the
                // differential reference mode).
                if self.options.eval.maintain {
                    let pre = match &self.fresh_universe {
                        Some((pv, u)) if *pv == v => Some((*pv, u.clone())),
                        _ => None,
                    };
                    if let Some((pv, pre_universe)) = pre {
                        self.maintain_after_update(&pre_universe, pv)?;
                        if self.fresh_at.is_some() {
                            return Ok(self.last_stats.clone());
                        }
                    }
                }
                return self.refresh_views_incremental(&changed);
            }
        }
        self.refresh_views()
    }

    /// Incremental refresh: re-derives only the rules (transitively)
    /// affected by the given base changes. Unaffected views keep their
    /// materialised state untouched.
    fn refresh_views_incremental(
        &mut self,
        changes: &[idl_storage::ChangeScope],
    ) -> Result<FixpointStats, EngineError> {
        let Some(compiled) = &self.compiled else {
            return self.refresh_views();
        };
        let mask = compiled.dirty_mask(changes);
        if !mask.iter().any(|&d| d) {
            if self.sys_enabled {
                schema::install_sys_catalog(&mut self.store, &self.schemas)?;
            }
            self.mark_fresh();
            return Ok(FixpointStats::default());
        }
        // Drop exactly the dirty heads so deletions propagate.
        let to_drop: Vec<idl_eval::rules::PredPat> = compiled
            .head_patterns()
            .iter()
            .zip(&mask)
            .filter(|(_, &d)| d)
            .map(|(p, _)| p.clone())
            .collect();
        for pat in to_drop {
            match (&pat.db, &pat.rel) {
                (Some(db), Some(rel)) if self.store.relation(db.as_str(), rel.as_str()).is_ok() => {
                    self.store.drop_relation(db.as_str(), rel.as_str())?;
                }
                (Some(db), None) if self.store.has_database(db.as_str()) => {
                    self.store.drop_database(db.as_str())?;
                }
                _ => {}
            }
        }
        let compiled = self.compiled.as_ref().expect("checked above");
        let mut stats = compiled.materialize_cached(
            &mut self.store,
            self.options.eval,
            Some(&mask),
            Some(&mut self.plan_cache),
        )?;
        // Masked refresh: rules outside the mask never ran, so their
        // data-dependent relations are absent from this run's log — the
        // seen-set is unioned, not replaced.
        self.apply_schematic_deltas(&mut stats, false);
        if self.sys_enabled {
            schema::install_sys_catalog(&mut self.store, &self.schemas)?;
        }
        self.maintained = MaintainedViews::recompute(&self.store, &self.derived, &self.rules);
        stats.maintenance.support_entries = self.maintained.entry_count();
        self.mark_fresh();
        self.last_stats = stats.clone();
        Ok(stats)
    }

    // ---- tooling ----------------------------------------------------------

    /// Static binding analysis of a request source (§7.1's "compile time
    /// analysis"). Returns definite problems without executing anything:
    /// variables used unbound where groundness is required, and program
    /// call sites violating their binding signatures.
    pub fn analyze(&self, src: &str) -> Result<Vec<BindingIssue>, EngineError> {
        let stmts = parse_program(src)?;
        let mut issues = Vec::new();
        for stmt in stmts {
            if let Statement::Request(req) = stmt {
                issues.extend(idl_eval::analyze::analyze_request(&req));
            }
        }
        Ok(issues)
    }

    /// Static program-call validation for a request source: every item
    /// that names a registered update program is checked against its
    /// signature without executing (§7.1's call-validity analysis).
    pub fn analyze_calls(&self, src: &str) -> Result<Vec<String>, EngineError> {
        let stmts = parse_program(src)?;
        let mut issues = Vec::new();
        for stmt in stmts {
            if let Statement::Request(req) = stmt {
                for item in &req.items {
                    if let Some((key, args)) = self.programs.match_call(item) {
                        issues.extend(self.programs.static_call_issues(&key, args));
                    }
                }
            }
        }
        Ok(issues)
    }

    /// Shows, for each request item, the planner's conjunct ordering and
    /// the compiled physical plan (the `idl --explain` output; used for
    /// debugging and the ablation write-ups). Update items execute through
    /// the interpreter and are shown unplanned.
    pub fn explain(&self, src: &str) -> Result<String, EngineError> {
        let stmts = parse_program(src)?;
        let mut out = String::new();
        for stmt in stmts {
            if let Statement::Request(req) = stmt {
                for (i, item) in req.items.iter().enumerate() {
                    let planned = idl_eval::plan::plan_query_expr(item);
                    out.push_str(&format!("item {}: {}\n", i + 1, planned));
                    if item.is_query() {
                        let plan = idl_eval::compile_items(
                            std::slice::from_ref(item),
                            self.options.eval.with_compile(true),
                        )?;
                        for line in plan.explain().lines() {
                            out.push_str(&format!("  {line}\n"));
                        }
                    } else {
                        out.push_str("  (update item: interpreted, not compiled)\n");
                    }
                }
            }
        }
        Ok(out)
    }

    /// The memoized plan cache's counters (hits, misses, resident plans) —
    /// what the B3/B4 benches report as the warm-refresh hit rate.
    pub fn plan_cache(&self) -> &PlanCache {
        &self.plan_cache
    }

    /// Evaluates a parsed request without the engine conveniences (no view
    /// refresh). Used by benches that control refresh manually.
    pub fn run_raw(&mut self, req: &Request) -> Result<(AnswerSet, UpdateStats), EngineError> {
        let o = run_request_cached(
            &mut self.store,
            &self.programs,
            &self.derived,
            req,
            self.options.eval,
            Some(&mut self.plan_cache),
        )?;
        if o.stats.total() > 0 {
            self.fresh_at = None;
        }
        Ok((o.answers, o.stats))
    }

    /// Saves the universe as a JSON snapshot.
    pub fn save_snapshot(&self, path: &std::path::Path) -> Result<(), EngineError> {
        idl_storage::persist::save_snapshot(&self.store, path)?;
        Ok(())
    }

    /// Loads a snapshot into a fresh engine (no rules or programs).
    pub fn load_snapshot(path: &std::path::Path) -> Result<Self, EngineError> {
        Ok(Engine::from_store(idl_storage::persist::load_snapshot(path)?))
    }

    /// The universe serialised as canonical JSON — what a snapshot would
    /// contain. The crash battery uses this for byte-identical
    /// round-trip checks between a recovered engine and its reference.
    pub fn universe_json(&self) -> Result<String, EngineError> {
        Ok(idl_storage::persist::to_json(&self.store)?)
    }

    /// A seeded substitution variant of [`Engine::query`] for parameterised
    /// reuse of one parsed request.
    pub fn query_with(&mut self, req: &Request, seed: &Subst) -> Result<AnswerSet, EngineError> {
        if self.options.auto_refresh {
            self.refresh_views_if_stale()?;
        }
        let substs = if self.options.eval.compile {
            let plan = self.plan_cache.get_or_compile(&req.items, self.options.eval)?;
            let ev = idl_eval::Evaluator::new(&self.store, self.options.eval);
            ev.eval_compiled(&plan, vec![seed.clone()])?
        } else {
            let ev = idl_eval::Evaluator::new(&self.store, self.options.eval);
            ev.eval_items(&req.items, vec![seed.clone()])?
        };
        let vars = req.vars();
        let named: BTreeSet<_> = vars.into_iter().filter(|v| !v.is_gensym()).collect();
        Ok(substs.into_iter().map(|s| s.project(&named)).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use idl_object::Value;

    fn engine() -> Engine {
        Engine::with_stock_universe(vec![
            ("3/3/85", "hp", 50.0),
            ("3/3/85", "ibm", 160.0),
            ("3/4/85", "hp", 62.0),
            ("3/4/85", "ibm", 155.0),
        ])
    }

    const UNIFIED: &str = "
        .dbI.p(.date=D,.stk=S,.clsPrice=P) <- .euter.r(.date=D,.stkCode=S,.clsPrice=P) ;
        .dbI.p(.date=D,.stk=S,.clsPrice=P) <- .chwab.r(.date=D,.S=P), S != date ;
        .dbI.p(.date=D,.stk=S,.clsPrice=P) <- .ource.S(.date=D,.clsPrice=P) ;
    ";

    #[test]
    fn execute_mixed_script() {
        let mut e = engine();
        let outcomes = e
            .execute(&format!(
                "{UNIFIED}
                 ?.dbI.p(.stk=S, .clsPrice>100)"
            ))
            .unwrap();
        assert_eq!(outcomes.len(), 4);
        let ans = outcomes[3].answers().unwrap();
        assert_eq!(ans.column("S"), vec![Value::str("ibm")]);
    }

    #[test]
    fn views_auto_refresh_after_base_update() {
        let mut e = engine();
        e.add_rules(UNIFIED).unwrap();
        assert_eq!(e.query("?.dbI.p(.stk=sun)").unwrap().len(), 0);
        e.update("?.euter.r+(.date=3/5/85,.stkCode=sun,.clsPrice=30)").unwrap();
        assert!(e.query("?.dbI.p(.stk=sun, .clsPrice=30)").unwrap().is_true());
    }

    #[test]
    fn no_redundant_refresh() {
        let mut e = engine();
        e.add_rules(UNIFIED).unwrap();
        e.query("?.dbI.p(.stk=hp)").unwrap();
        let v = e.store().version();
        // read-only query: no re-materialisation (store version unchanged)
        e.query("?.dbI.p(.stk=ibm)").unwrap();
        assert_eq!(e.store().version(), v);
    }

    #[test]
    fn direct_update_on_derived_rejected() {
        let mut e = engine();
        e.add_rules(UNIFIED).unwrap();
        let err = e.update("?.dbI.p+(.stk=x,.date=3/9/85,.clsPrice=1)").unwrap_err();
        assert!(matches!(err, EngineError::Eval(idl_eval::EvalError::UpdateOnDerived(_))));
    }

    #[test]
    fn view_update_program_roundtrip() {
        let mut e = engine();
        e.add_rules(UNIFIED).unwrap();
        e.execute(
            ".dbI.p+(.date=D,.stk=S,.clsPrice=P) -> .euter.r+(.date=D,.stkCode=S,.clsPrice=P) ;",
        )
        .unwrap();
        e.update("?.dbI.p+(.date=3/9/85,.stk=sun,.clsPrice=7)").unwrap();
        assert!(e.query("?.euter.r(.stkCode=sun)").unwrap().is_true());
        assert!(e.query("?.dbI.p(.stk=sun,.clsPrice=7)").unwrap().is_true());
    }

    #[test]
    fn analyze_and_explain() {
        let e = engine();
        let issues = e.analyze("?.euter.r(.clsPrice>P)").unwrap();
        assert_eq!(issues.len(), 1);
        let plan = e.explain("?.euter.r(.clsPrice>60, .stkCode=hp)").unwrap();
        let hp_pos = plan.find("stkCode").unwrap();
        let price_pos = plan.find("clsPrice").unwrap();
        assert!(hp_pos < price_pos, "selective equality planned first: {plan}");
    }

    #[test]
    fn query_rejects_clauses() {
        let mut e = engine();
        assert!(matches!(
            e.query(".a.b(.x=X) <- .euter.r(.stkCode=X)"),
            Err(EngineError::Usage(_))
        ));
    }

    #[test]
    fn snapshot_roundtrip() {
        let dir = std::env::temp_dir().join("idl-engine-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("u.json");
        let mut e = engine();
        e.save_snapshot(&path).unwrap();
        let mut e2 = Engine::load_snapshot(&path).unwrap();
        assert_eq!(
            e.query("?.euter.r(.stkCode=S)").unwrap(),
            e2.query("?.euter.r(.stkCode=S)").unwrap()
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn declared_schemas_enforced_with_rollback() {
        use idl_storage::schema::{AttrDecl, RelationSchema};
        use idl_storage::TypeTag;
        let mut e = engine();
        e.declare_schema(
            "euter",
            "r",
            RelationSchema {
                key: vec![idl_object::Name::new("date"), idl_object::Name::new("stkCode")],
                attrs: [(
                    idl_object::Name::new("clsPrice"),
                    AttrDecl { ty: TypeTag::Number, nullable: true },
                )]
                .into_iter()
                .collect(),
                foreign_keys: vec![],
            },
        )
        .unwrap();
        // legal insert passes
        e.update("?.euter.r+(.date=3/9/85,.stkCode=x,.clsPrice=1)").unwrap();
        // key-violating insert is rolled back entirely
        let before = e.store().relation("euter", "r").unwrap().clone();
        let err = e.update("?.euter.r+(.date=3/9/85,.stkCode=x,.clsPrice=2)").unwrap_err();
        assert!(matches!(err, EngineError::Schema(_)), "{err}");
        assert_eq!(&before, e.store().relation("euter", "r").unwrap());
        // type-violating insert too
        let err = e.update("?.euter.r+(.date=3/10/85,.stkCode=y,.clsPrice=cheap)").unwrap_err();
        assert!(matches!(err, EngineError::Schema(_)));
    }

    #[test]
    fn declare_schema_rejects_inconsistent_present_state() {
        use idl_storage::schema::RelationSchema;
        let mut e = engine();
        // two rows per date exist (hp and ibm) -> date alone cannot be key
        let err = e
            .declare_schema(
                "euter",
                "r",
                RelationSchema { key: vec![idl_object::Name::new("date")], ..Default::default() },
            )
            .unwrap_err();
        assert!(matches!(err, EngineError::Schema(_)));
        assert!(e.schemas().is_empty());
    }

    #[test]
    fn sys_catalog_queryable_and_fresh() {
        let mut e = engine();
        e.enable_sys_catalog().unwrap();
        let a = e.query("?.sys.relations(.db=D, .rel=R, .card=C)").unwrap();
        assert_eq!(a.len(), 4, "euter.r, chwab.r, ource.hp, ource.ibm: {a}");
        // metadata joins with metadata: relations carrying clsPrice
        let a = e.query("?.sys.attributes(.db=D, .rel=R, .attr=clsPrice)").unwrap();
        assert_eq!(a.column("D"), vec![Value::str("euter"), Value::str("ource")]);
        // the catalog follows the data
        e.update("?.newdb.t+(.a=1)").unwrap();
        let a = e.query("?.sys.databases(.name=newdb)").unwrap();
        assert!(a.is_true());
    }

    #[test]
    fn sys_catalog_coexists_with_views() {
        let mut e = engine();
        e.add_rules(UNIFIED).unwrap();
        e.enable_sys_catalog().unwrap();
        // the catalog lists the derived relation too
        let a = e.query("?.sys.relations(.db=dbI, .rel=p, .card=C)").unwrap();
        assert!(a.is_true(), "{a}");
        // and base updates keep both fresh
        e.update("?.euter.r+(.date=3/9/85,.stkCode=zz,.clsPrice=3)").unwrap();
        assert!(e.query("?.dbI.p(.stk=zz)").unwrap().is_true());
        let card = e.query("?.sys.relations(.db=euter, .rel=r, .card=C)").unwrap();
        assert_eq!(card.column("C"), vec![Value::int(5)]);
    }

    #[test]
    fn incremental_refresh_rederives_only_affected_views() {
        // two independent view families: one reads euter, one reads chwab
        let rules = "
            .vE.all(.stk=S) <- .euter.r(.stkCode=S) ;
            .vC.days(.d=D) <- .chwab.r(.date=D) ;
        ";
        let mut e = engine();
        // Pin maintenance off: this test exercises the refresh path.
        e.set_options(EngineOptions::builder().maintain(false).build());
        e.add_rules(rules).unwrap();
        e.refresh_views().unwrap(); // full initial build
                                    // touch only euter
        e.update("?.euter.r+(.date=3/9/85,.stkCode=zz,.clsPrice=1)").unwrap();
        let stats = e.refresh_views_if_stale().unwrap();
        assert!(stats.rule_evals >= 1);
        assert!(
            stats.rule_evals <= 2,
            "only the euter-reading rule re-evaluates (+1 quiescence check): {stats:?}"
        );
        // both views correct afterwards
        assert!(e.query("?.vE.all(.stk=zz)").unwrap().is_true());
        assert_eq!(e.query("?.vC.days(.d=D)").unwrap().len(), 2);

        // deletions propagate too
        e.update("?.euter.r-(.stkCode=zz)").unwrap();
        e.refresh_views_if_stale().unwrap();
        assert!(!e.query("?.vE.all(.stk=zz)").unwrap().is_true());
    }

    #[test]
    fn stale_refresh_repairs_through_the_maintenance_pass() {
        // An update applied with maintenance off leaves the views stale;
        // re-enabling maintenance before the refresh lets the stale path
        // recover the row delta from the freshness snapshot and absorb it
        // as a maintenance pass instead of a drop-and-rebuild.
        let mut e = engine();
        e.add_rules(UNIFIED).unwrap();
        e.refresh_views().unwrap();
        e.set_options(EngineOptions::builder().maintain(false).build());
        e.update("?.euter.r+(.date=3/9/85,.stkCode=zz,.clsPrice=7)").unwrap();
        assert!(!e.views_fresh_now());
        e.set_options(EngineOptions::builder().maintain(true).build());
        let runs = e.maintenance_runs();
        let stats = e.refresh_views_if_stale().unwrap();
        assert_eq!(e.maintenance_runs(), runs + 1, "repair ran as maintenance: {stats:?}");
        assert!(e.views_fresh_now());
        assert!(e.query("?.dbI.p(.stk=zz,.clsPrice=7)").unwrap().is_true());
        // A second refresh is a no-op — the repair re-marked freshness.
        let again = e.refresh_views_if_stale().unwrap();
        assert_eq!(again.iterations, 0, "{again:?}");
    }

    #[test]
    fn rule_bodies_compile_once_per_refresh() {
        let mut e = engine();
        // Pin compile on so the counters are meaningful even when the
        // suite runs under IDL_NO_COMPILE=1.
        e.set_options(EngineOptions::builder().compile(true).build());
        e.add_rules(UNIFIED).unwrap();
        e.add_rules(".dbO.S(.date=D,.clsPrice=P) <- .dbI.p(.date=D,.stk=S,.clsPrice=P) ;").unwrap();
        // Cold refresh: each of the four bodies is compiled exactly once,
        // even though the fixpoint runs more evaluations than that.
        let cold = e.refresh_views().unwrap();
        assert_eq!(cold.plans_compiled, 4, "{cold:?}");
        assert_eq!(cold.plan_cache_misses, 4, "{cold:?}");
        assert_eq!(cold.plan_cache_hits, 0, "{cold:?}");
        assert!(cold.rule_evals >= cold.plans_compiled, "{cold:?}");
        // Warm refresh: every body comes from the engine's memoized cache.
        let warm = e.refresh_views().unwrap();
        assert_eq!(warm.plans_compiled, 0, "{warm:?}");
        assert_eq!(warm.plan_cache_hits, 4, "{warm:?}");
        assert!(e.plan_cache().hits() >= 4);
        // The tree-walk reference mode compiles nothing and derives the
        // same views.
        let mut interp = engine();
        interp.set_options(EngineOptions::builder().compile(false).build());
        interp.add_rules(UNIFIED).unwrap();
        let stats = interp.refresh_views().unwrap();
        assert_eq!(stats.plans_compiled, 0, "{stats:?}");
        assert_eq!(
            e.query("?.dbI.p(.date=D,.stk=S,.clsPrice=P)").unwrap(),
            interp.query("?.dbI.p(.date=D,.stk=S,.clsPrice=P)").unwrap()
        );
    }

    #[test]
    fn explain_shows_compiled_plan() {
        let e = engine();
        let plan = e.explain("?.euter.r(.clsPrice>60, .stkCode=hp)").unwrap();
        assert!(plan.contains("scan [probe eq(.stkCode = hp)"), "{plan}");
        assert!(plan.contains("filter > 60"), "{plan}");
    }

    #[test]
    fn incremental_matches_full_refresh() {
        let mk = |incremental: bool| {
            let mut e = engine();
            // Maintenance off on both sides: this differential targets
            // incremental *refresh* vs full refresh (maintenance has its
            // own differential battery).
            e.set_options(EngineOptions {
                incremental_refresh: incremental,
                ..EngineOptions::builder().maintain(false).build()
            });
            e.add_rules(UNIFIED).unwrap();
            e.add_rules(".dbO.S(.date=D,.clsPrice=P) <- .dbI.p(.date=D,.stk=S,.clsPrice=P) ;")
                .unwrap();
            e
        };
        let mut inc = mk(true);
        let mut full = mk(false);
        for upd in [
            "?.euter.r+(.date=3/9/85,.stkCode=zz,.clsPrice=7)",
            "?.ource.hp-(.date=3/3/85)",
            "?.chwab.r(.date=3/4/85, .ibm-=X)",
            "?.euter.r-(.stkCode=hp)",
        ] {
            inc.update(upd).unwrap();
            full.update(upd).unwrap();
            let a = inc.query("?.dbI.p(.date=D,.stk=S,.clsPrice=P)").unwrap();
            let b = full.query("?.dbI.p(.date=D,.stk=S,.clsPrice=P)").unwrap();
            assert_eq!(a, b, "after {upd}");
            let a = inc.query("?.dbO.Y").unwrap();
            let b = full.query("?.dbO.Y").unwrap();
            assert_eq!(a, b, "dbO after {upd}");
        }
    }

    #[test]
    fn sql_sugar_end_to_end() {
        let mut e = engine();
        // SELECT across all three schemata agrees with the IDL originals
        let sugar = e.execute_sql("SELECT S, clsPrice FROM ource.S WHERE clsPrice > 200").unwrap();
        let direct = e.query("?.ource.S(.clsPrice=ClsPrice_), ClsPrice_ > 200").unwrap();
        assert_eq!(sugar.answers().unwrap().column("S"), direct.column("S"));

        // INSERT and DELETE round-trip
        e.execute_sql("INSERT INTO euter.r (date, stkCode, clsPrice) VALUES (3/9/85, dec, 80)")
            .unwrap();
        assert!(e.query("?.euter.r(.stkCode=dec,.clsPrice=80)").unwrap().is_true());
        e.execute_sql("DELETE FROM euter.r WHERE stkCode = dec").unwrap();
        assert!(!e.query("?.euter.r(.stkCode=dec)").unwrap().is_true());

        // join by shared column: euter.r ⋈ ource.hp on (date, clsPrice) —
        // every mentioned column must exist in every scanned table
        // (natural-join-by-mention; see idl_lang::sugar docs)
        let j = e
            .execute_sql("SELECT date, clsPrice FROM euter.r, ource.hp WHERE clsPrice > 0")
            .unwrap();
        let hp_rows = e.query("?.ource.hp(.date=D,.clsPrice=P)").unwrap();
        assert_eq!(j.answers().unwrap().len(), hp_rows.len());
    }

    #[test]
    fn static_call_analysis() {
        let mut e = engine();
        e.execute(crate::transparency::standard_update_programs()).unwrap();
        // valid call: clean
        assert!(e
            .analyze_calls("?.dbU.insStk(.stk=hp, .date=3/9/85, .price=1)")
            .unwrap()
            .is_empty());
        // missing required parameter: flagged statically, before execution
        let issues = e.analyze_calls("?.dbU.insStk(.stk=hp, .date=3/9/85)").unwrap();
        assert!(issues.iter().any(|m| m.contains(".price")), "{issues:?}");
        // unknown parameter: flagged
        let issues = e.analyze_calls("?.dbU.delStk(.bogus=1)").unwrap();
        assert!(issues.iter().any(|m| m.contains(".bogus")), "{issues:?}");
        // unbound variable argument = not supplied
        let issues = e.analyze_calls("?.dbU.insStk(.stk=S, .date=3/9/85, .price=1)").unwrap();
        assert!(issues.iter().any(|m| m.contains(".stk")), "{issues:?}");
    }

    #[test]
    fn schematic_delta_invalidates_only_overlapping_plans() {
        let mut e = engine();
        // Pin compile + semi-naive so the schematic counters are live
        // under the IDL_NO_COMPILE / IDL_NAIVE_FIXPOINT CI legs too, and
        // maintenance off: this test exercises the refresh path's
        // schematic-delta accounting.
        e.set_options(
            EngineOptions::builder().compile(true).semi_naive(true).maintain(false).build(),
        );
        e.add_rules(UNIFIED).unwrap();
        e.add_rules(
            ".dbO.S(.date=D,.clsPrice=P) <- .dbI.p(.date=D,.stk=S,.clsPrice=P), S != date ;",
        )
        .unwrap();
        // First build: there was no schema before it, so every
        // data-dependent relation is schematic.
        let first = e.refresh_views().unwrap();
        assert_eq!(first.schematic_deltas, 2, "dbO.hp and dbO.ibm: {first:?}");
        // Warm two query plans: one with a higher-order (variable)
        // relation position over dbO, one pinned to dbO.hp.
        e.query("?.dbO.Y(.clsPrice=P)").unwrap();
        e.query("?.dbO.hp(.clsPrice=P)").unwrap();
        let resident = e.plan_cache().len();
        // A price update for an existing stock re-materialises the same
        // relations: nothing is schematic, nothing is invalidated.
        e.update("?.euter.r+(.date=3/9/85,.stkCode=hp,.clsPrice=70)").unwrap();
        let s = e.refresh_views_if_stale().unwrap();
        assert_eq!(s.schematic_deltas, 0, "{s:?}");
        assert_eq!(s.plan_invalidations, 0, "{s:?}");
        assert_eq!(e.plan_cache().len(), resident);
        // A brand-new stock materialises dbO.sun for the first time: the
        // variable-relation plan must be recompiled (it now has one more
        // relation to scan), the dbO.hp-only plan keeps its compiled form.
        e.update("?.euter.r+(.date=3/9/85,.stkCode=sun,.clsPrice=30)").unwrap();
        let s = e.refresh_views_if_stale().unwrap();
        assert_eq!(s.schematic_deltas, 1, "only dbO.sun is new: {s:?}");
        assert_eq!(s.plan_invalidations, 1, "only the .dbO.Y plan: {s:?}");
        assert_eq!(e.plan_cache().len(), resident - 1);
        // And the recompiled plan sees the newcomer.
        let rels = e.query("?.dbO.Y(.clsPrice=P)").unwrap();
        assert!(rels.column("Y").contains(&Value::str("sun")), "{rels}");
    }

    #[test]
    fn update_maintains_views_without_refresh() {
        let mut e = engine();
        e.set_options(EngineOptions::builder().maintain(true).build());
        e.add_rules(UNIFIED).unwrap();
        e.query("?.dbI.p(.stk=hp)").unwrap(); // initial build
        assert_eq!(e.maintenance_runs(), 0);
        e.update("?.euter.r+(.date=3/9/85,.stkCode=sun,.clsPrice=7)").unwrap();
        // The update maintained in place: no staleness, no refresh later.
        assert_eq!(e.maintenance_runs(), 1);
        let v = e.store().version();
        assert!(e.query("?.dbI.p(.stk=sun,.clsPrice=7)").unwrap().is_true());
        assert_eq!(e.store().version(), v, "query did not re-materialise");
        let m = &e.last_fixpoint_stats().maintenance;
        assert_eq!(m.views_maintained, 1, "{m:?}");
        assert!(m.delta_rules_run >= 1, "{m:?}");
        assert_eq!(m.support_entries, 1, "{m:?}");
        // Retraction maintains too (exact rederivation deletes the row).
        e.update("?.euter.r-(.stkCode=sun)").unwrap();
        assert_eq!(e.maintenance_runs(), 2);
        let v = e.store().version();
        assert!(!e.query("?.dbI.p(.stk=sun)").unwrap().is_true());
        assert_eq!(e.store().version(), v);
    }

    #[test]
    fn maintenance_matches_reference_mode() {
        // The engine-level differential: maintain on vs the
        // refresh-the-world reference mode, byte-identical universes.
        let mk = |maintain: bool| {
            let mut e = engine();
            e.set_options(EngineOptions::builder().maintain(maintain).build());
            e.add_rules(UNIFIED).unwrap();
            e.add_rules(".dbO.S(.date=D,.clsPrice=P) <- .dbI.p(.date=D,.stk=S,.clsPrice=P) ;")
                .unwrap();
            e.query("?.dbI.p(.stk=hp)").unwrap();
            e
        };
        let mut on = mk(true);
        let mut off = mk(false);
        for upd in [
            "?.euter.r+(.date=3/9/85,.stkCode=zz,.clsPrice=7)",
            "?.ource.hp-(.date=3/3/85)",
            "?.euter.r-(.stkCode=zz)",
            "?.euter.r-(.stkCode=hp)",
        ] {
            on.update(upd).unwrap();
            off.update(upd).unwrap();
            off.refresh_views_if_stale().unwrap();
            assert_eq!(
                on.universe_json().unwrap(),
                off.universe_json().unwrap(),
                "maintained ≠ reference after {upd}"
            );
        }
    }

    #[test]
    fn maintenance_handles_schematic_create_and_gc() {
        let mut e = engine();
        e.set_options(EngineOptions::builder().maintain(true).build());
        e.add_rules(UNIFIED).unwrap();
        e.add_rules(".dbO.S(.date=D,.clsPrice=P) <- .dbI.p(.date=D,.stk=S,.clsPrice=P) ;").unwrap();
        // Warm a higher-order plan so create/GC invalidation is visible.
        e.query("?.dbO.Y(.clsPrice=P)").unwrap();
        // New stock: maintenance materialises dbO.sun incrementally.
        e.update("?.euter.r+(.date=3/9/85,.stkCode=sun,.clsPrice=30)").unwrap();
        let m = e.last_fixpoint_stats().maintenance.clone();
        assert_eq!(m.schematic_creates, 1, "{m:?}");
        let v = e.store().version();
        let rels = e.query("?.dbO.Y").unwrap();
        assert!(rels.column("Y").contains(&Value::str("sun")), "{rels}");
        assert_eq!(e.store().version(), v, "probe against maintained views");
        // Retracting the stock's only quote GCs the relation again.
        e.update("?.euter.r-(.stkCode=sun)").unwrap();
        let m = e.last_fixpoint_stats().maintenance.clone();
        assert_eq!(m.schematic_gcs, 1, "{m:?}");
        let rels = e.query("?.dbO.Y").unwrap();
        assert!(!rels.column("Y").contains(&Value::str("sun")), "{rels}");
    }

    #[test]
    fn maintenance_falls_back_on_schema_shaping_updates() {
        let mut e = engine();
        e.set_options(EngineOptions::builder().maintain(true).build());
        e.add_rules(UNIFIED).unwrap();
        e.query("?.dbI.p(.stk=hp)").unwrap();
        // Dropping a whole relation is not row-expressible: the update
        // must fall back to the refresh path and still be correct.
        e.update("?.chwab-.r").unwrap();
        assert_eq!(e.maintenance_runs(), 0);
        assert!(e.query("?.dbI.p(.stk=hp)").unwrap().is_true(), "hp survives via euter/ource");
    }

    #[test]
    fn higher_order_customized_views() {
        let mut e = engine();
        e.add_rules(UNIFIED).unwrap();
        e.add_rules(".dbO.S(.date=D,.clsPrice=P) <- .dbI.p(.date=D,.stk=S,.clsPrice=P) ;").unwrap();
        let rels = e.query("?.dbO.Y").unwrap();
        assert_eq!(rels.column("Y"), vec![Value::str("hp"), Value::str("ibm")]);
        // adding a stock adds a relation — the data-dependent view count
        e.update("?.euter.r+(.date=3/5/85,.stkCode=sun,.clsPrice=30)").unwrap();
        let rels = e.query("?.dbO.Y").unwrap();
        assert_eq!(rels.column("Y"), vec![Value::str("hp"), Value::str("ibm"), Value::str("sun")]);
    }
}
