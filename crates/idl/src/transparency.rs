//! Integration & database transparency helpers (paper §1, §6, Figure 1).
//!
//! Figure 1's two-level mapping: source databases `D₁…Dₙ` map *up* into a
//! unified view `U` (database transparency), and `U` maps *down* into
//! customized views `D′ᵢ` shaped like each user community's original schema
//! (integration transparency). This module installs the paper's exact rule
//! sets for the stock universe:
//!
//! * [`unified_view_rules`] — `dbI.p(date, stk, clsPrice)` over
//!   euter/chwab/ource (§6's first example);
//! * [`customized_view_rules`] — `dbE` (euter-shaped), `dbC`
//!   (chwab-shaped), `dbO` (ource-shaped, one relation per stock: a
//!   higher-order view);
//! * [`reconciled_view_rules`] — `pnew`, resolving value discrepancies by
//!   preferring a designated source (§6's reconciliation example);
//! * [`name_mapped_rules`] — the `mapCE`/`mapOE` variant for universes
//!   where stock codes differ across databases (§6's last example);
//! * [`standard_update_programs`] — `delStk` / `rmStk` / `insStk` (§7.1)
//!   plus view-update programs for `dbE`/`dbC`/`dbO` (§7.2).

use crate::engine::Engine;
use crate::error::EngineError;

/// §6: the unified view `dbI.p` over the three stock schemata. The
/// `S != date` guard keeps chwab's key attribute from masquerading as a
/// stock (the paper leaves this reconciliation "up to the schema
/// administrator").
pub fn unified_view_rules() -> &'static str {
    "
    .dbI.p(.date=D, .stk=S, .clsPrice=P) <- .euter.r(.date=D, .stkCode=S, .clsPrice=P) ;
    .dbI.p(.date=D, .stk=S, .clsPrice=P) <- .chwab.r(.date=D, .S=P), S != date ;
    .dbI.p(.date=D, .stk=S, .clsPrice=P) <- .ource.S(.date=D, .clsPrice=P) ;
    "
}

/// §6: customized views giving each user community its pre-integration
/// schema over the unified view — including the **higher-order view**
/// `dbO`, which has as many relations as there are stocks anywhere.
pub fn customized_view_rules() -> &'static str {
    "
    .dbE.r(.date=D, .stkCode=S, .clsPrice=P) <- .dbI.p(.date=D, .stk=S, .clsPrice=P) ;
    .dbC.r(.date=D, .S=P)                    <- .dbI.p(.date=D, .stk=S, .clsPrice=P) ;
    .dbO.S(.date=D, .clsPrice=P)             <- .dbI.p(.date=D, .stk=S, .clsPrice=P) ;
    "
}

/// §6: `pnew` — reconciling value discrepancies. When several sources
/// quote different prices for the same (stock, date), prefer euter's
/// quote; otherwise take what exists. ("The choice of any such
/// reconciliation is up to the schema administrator. Here, we only provide
/// the language to specify \[it\].")
pub fn reconciled_view_rules() -> &'static str {
    "
    .dbI.pnew(.date=D, .stk=S, .clsPrice=P) <- .euter.r(.date=D, .stkCode=S, .clsPrice=P) ;
    .dbI.pnew(.date=D, .stk=S, .clsPrice=P) <-
        .dbI.p(.date=D, .stk=S, .clsPrice=P), .euter.r¬(.date=D, .stkCode=S) ;
    "
}

/// §6 (final example): unification through explicit name mappings when
/// stock codes differ across databases. Expects binary relations
/// `dbI.mapCE(c, e)` and `dbI.mapOE(o, e)` translating chwab/ource names
/// to euter names.
pub fn name_mapped_rules() -> &'static str {
    "
    .dbI.q(.date=D, .stk=S, .clsPrice=P) <- .euter.r(.date=D, .stkCode=S, .clsPrice=P) ;
    .dbI.q(.date=D, .stk=E, .clsPrice=P) <-
        .dbI.mapCE(.c=S, .e=E), .chwab.r(.date=D, .S=P) ;
    .dbI.q(.date=D, .stk=E, .clsPrice=P) <-
        .dbI.mapOE(.o=S, .e=E), .ource.S(.date=D, .clsPrice=P) ;
    "
}

/// §7.1's three update programs plus §7.2-style view-update programs for
/// the customized views, all routing through the base databases.
pub fn standard_update_programs() -> &'static str {
    "
    .dbU.delStk(.stk=S, .date=D) -> .euter.r-(.stkCode=S, .date=D) ;
    .dbU.delStk(.stk=S, .date=D) -> .chwab.r(.S-=X, .date=D) ;
    .dbU.delStk(.stk=S, .date=D) -> .ource.S-(.date=D) ;

    .dbU.rmStk(.stk=S) -> .euter.r-(.stkCode=S) ;
    .dbU.rmStk(.stk=S) -> .chwab.r(-.S) ;
    .dbU.rmStk(.stk=S) -> .ource-.S ;

    .dbU.insStk(.stk=S, .date=D, .price=P) -> .euter.r+(.stkCode=S, .date=D, .clsPrice=P) ;
    .dbU.insStk(.stk=S, .date=D, .price=P) -> .chwab.r(.date=D, +.S=P) ;
    .dbU.insStk(.stk=S, .date=D, .price=P) -> .ource.S+(.date=D, .clsPrice=P) ;

    .dbE.r+(.date=D, .stkCode=S, .clsPrice=P) -> .dbU.insStk(.stk=S, .date=D, .price=P) ;
    .dbE.r-(.date=D, .stkCode=S)              -> .dbU.delStk(.stk=S, .date=D) ;
    .dbO.relIns(.rel=S, .date=D, .clsPrice=P) -> .dbU.insStk(.stk=S, .date=D, .price=P) ;
    "
}

/// Installs the full two-level mapping of Figure 1 on an engine holding
/// the three-schema stock universe: unified view, customized views, and
/// the standard update programs.
pub fn install_two_level_mapping(engine: &mut Engine) -> Result<(), EngineError> {
    engine.add_rules(unified_view_rules())?;
    engine.add_rules(customized_view_rules())?;
    engine.execute(standard_update_programs())?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use idl_object::Value;

    fn engine() -> Engine {
        let mut e = Engine::with_stock_universe(vec![
            ("3/3/85", "hp", 50.0),
            ("3/3/85", "ibm", 160.0),
            ("3/4/85", "hp", 62.0),
        ]);
        install_two_level_mapping(&mut e).unwrap();
        e
    }

    #[test]
    fn database_transparency_via_unified_view() {
        let mut e = engine();
        // one query, all sources
        let a = e.query("?.dbI.p(.stk=S, .clsPrice>100)").unwrap();
        assert_eq!(a.column("S"), vec![Value::str("ibm")]);
    }

    #[test]
    fn integration_transparency_round_trip() {
        // D_i → U → D'_i: each customized view equals its source schema
        let mut e = engine();
        // euter user sees dbE shaped like euter.r
        let orig = e.query("?.euter.r(.date=D,.stkCode=S,.clsPrice=P)").unwrap();
        let view = e.query("?.dbE.r(.date=D,.stkCode=S,.clsPrice=P)").unwrap();
        assert_eq!(orig, view, "dbE reproduces euter exactly");
        // and dbE also carries stocks that exist only elsewhere
        e.update("?.ource.newco+(.date=3/5/85, .clsPrice=9)").unwrap();
        assert!(e.query("?.dbE.r(.stkCode=newco)").unwrap().is_true());
    }

    #[test]
    fn ource_user_gets_one_relation_per_stock() {
        let mut e = engine();
        let rels = e.query("?.dbO.Y").unwrap();
        assert_eq!(rels.column("Y"), vec![Value::str("hp"), Value::str("ibm")]);
    }

    #[test]
    fn chwab_user_gets_wide_rows() {
        let mut e = engine();
        let a = e.query("?.dbC.r(.date=3/3/85, .hp=P)").unwrap();
        assert_eq!(a.column("P"), vec![Value::float(50.0)]);
    }

    #[test]
    fn view_update_routes_to_bases() {
        let mut e = engine();
        e.update("?.dbE.r+(.date=3/9/85, .stkCode=sun, .clsPrice=5)").unwrap();
        // fact visible through every path
        assert!(e.query("?.euter.r(.stkCode=sun)").unwrap().is_true());
        assert!(e.query("?.ource.sun(.clsPrice=5)").unwrap().is_true());
        assert!(e.query("?.dbO.sun(.clsPrice=5)").unwrap().is_true());
        assert!(e.query("?.dbE.r(.stkCode=sun)").unwrap().is_true());

        e.update("?.dbE.r-(.date=3/9/85, .stkCode=sun)").unwrap();
        assert!(!e.query("?.dbE.r(.stkCode=sun, .clsPrice=5)").unwrap().is_true());
    }

    #[test]
    fn reconciliation_prefers_euter() {
        let mut e = Engine::with_stock_universe(vec![("3/3/85", "hp", 50.0)]);
        e.add_rules(unified_view_rules()).unwrap();
        e.add_rules(reconciled_view_rules()).unwrap();
        // introduce a discrepancy: ource quotes 51 for the same day
        e.update("?.ource.hp-(.date=3/3/85), .ource.hp+(.date=3/3/85,.clsPrice=51)").unwrap();
        // p carries both quotes (the paper: "both prices are in the view")
        let p = e.query("?.dbI.p(.stk=hp,.date=3/3/85,.clsPrice=P)").unwrap();
        assert_eq!(p.column("P").len(), 2);
        // pnew carries exactly euter's
        let pn = e.query("?.dbI.pnew(.stk=hp,.date=3/3/85,.clsPrice=P)").unwrap();
        assert_eq!(pn.column("P"), vec![Value::float(50.0)]);
    }

    #[test]
    fn name_mappings_translate_codes() {
        // chwab calls it hewp, ource calls it hwp, euter calls it hp
        let mut e = Engine::new();
        e.update("?.euter.r+(.date=3/3/85,.stkCode=hp,.clsPrice=50)").unwrap();
        e.update("?.chwab.r+(.date=3/3/85,.hewp=50)").unwrap();
        e.update("?.ource.hwp+(.date=3/3/85,.clsPrice=50)").unwrap();
        e.update("?.dbMaps.mapCE+(.c=hewp,.e=hp)").unwrap();
        e.update("?.dbMaps.mapOE+(.o=hwp,.e=hp)").unwrap();
        // install the §6 name-mapped rules, retargeted at dbMaps
        e.add_rules(
            "
            .dbI.q(.date=D,.stk=S,.clsPrice=P) <- .euter.r(.date=D,.stkCode=S,.clsPrice=P) ;
            .dbI.q(.date=D,.stk=E,.clsPrice=P) <- .dbMaps.mapCE(.c=S,.e=E), .chwab.r(.date=D,.S=P) ;
            .dbI.q(.date=D,.stk=E,.clsPrice=P) <- .dbMaps.mapOE(.o=S,.e=E), .ource.S(.date=D,.clsPrice=P) ;
            ",
        )
        .unwrap();
        let a = e.query("?.dbI.q(.stk=S,.clsPrice=P)").unwrap();
        assert_eq!(a.column("S"), vec![Value::str("hp")], "all three sources unify under hp");
        assert_eq!(a.len(), 1, "identical fact from three sources deduplicates");
    }
}
