//! Engine-level errors.

use std::fmt;

/// Any failure surfaced by the engine.
#[derive(Clone, PartialEq, Debug)]
pub enum EngineError {
    /// Source text failed to parse.
    Parse(idl_lang::ParseError),
    /// Evaluation failed (queries, updates, programs).
    Eval(idl_eval::EvalError),
    /// Rule installation / stratification failed.
    Rules(String),
    /// Storage failure.
    Storage(String),
    /// Declared-schema constraints violated; the request was rolled back.
    Schema(Vec<idl_storage::schema::Violation>),
    /// API misuse (e.g. `query` on a source with several statements).
    Usage(String),
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Parse(e) => write!(f, "{e}"),
            EngineError::Eval(e) => write!(f, "{e}"),
            EngineError::Rules(m) => write!(f, "rule error: {m}"),
            EngineError::Storage(m) => write!(f, "storage error: {m}"),
            EngineError::Schema(violations) => {
                write!(f, "schema violation(s), request rolled back:")?;
                for v in violations {
                    write!(f, "\n  {v}")?;
                }
                Ok(())
            }
            EngineError::Usage(m) => write!(f, "usage error: {m}"),
        }
    }
}

impl std::error::Error for EngineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EngineError::Parse(e) => Some(e),
            EngineError::Eval(e) => Some(e),
            _ => None,
        }
    }
}

impl From<idl_lang::ParseError> for EngineError {
    fn from(e: idl_lang::ParseError) -> Self {
        EngineError::Parse(e)
    }
}

impl From<idl_eval::EvalError> for EngineError {
    fn from(e: idl_eval::EvalError) -> Self {
        EngineError::Eval(e)
    }
}

impl From<idl_eval::RuleSetError> for EngineError {
    fn from(e: idl_eval::RuleSetError) -> Self {
        EngineError::Rules(e.to_string())
    }
}

impl From<idl_storage::StorageError> for EngineError {
    fn from(e: idl_storage::StorageError) -> Self {
        EngineError::Storage(e.to_string())
    }
}
