//! Engine-level errors, with stable machine-readable codes.
//!
//! Every [`EngineError`] maps to one code from the table in
//! `LANGUAGE.md` (`E-PARSE`, `E-UNSAFE`, `E-POISONED`, …). The codes are
//! the wire contract of `idl-server`: clients branch on
//! [`EngineError::code`], never on `Display` strings, which remain free
//! to improve between releases.

use serde::content::{Content, Error as ContentError};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Any failure surfaced by the engine.
#[derive(Clone, PartialEq, Debug)]
pub enum EngineError {
    /// Source text failed to parse.
    Parse(idl_lang::ParseError),
    /// Evaluation failed (queries, updates, programs).
    Eval(idl_eval::EvalError),
    /// Rule installation / stratification failed.
    Rules(String),
    /// Storage failure.
    Storage(String),
    /// Declared-schema constraints violated; the request was rolled back.
    Schema(Vec<idl_storage::schema::Violation>),
    /// API misuse (e.g. `query` on a source with several statements).
    Usage(String),
    /// A durable engine refused work after an unacknowledged log failure;
    /// reopen to recover (see [`crate::durable`]).
    Poisoned(String),
    /// An error received over the `idl-server` wire: the stable code plus
    /// the server's rendered message. This is what a deserialised
    /// [`EngineError`] becomes on the client side.
    Remote {
        /// Stable machine-readable code (`E-PARSE`, `E-UNSAFE`, …).
        code: String,
        /// Human-readable rendering from the server.
        message: String,
    },
}

impl EngineError {
    /// The stable machine-readable code for this error (see LANGUAGE.md,
    /// "Error codes"). Codes are part of the wire contract: they never
    /// change meaning, while `Display` messages may.
    pub fn code(&self) -> &str {
        match self {
            EngineError::Parse(_) => "E-PARSE",
            EngineError::Eval(e) => eval_code(e),
            EngineError::Rules(_) => "E-RULES",
            EngineError::Storage(_) => "E-STORAGE",
            EngineError::Schema(_) => "E-SCHEMA",
            EngineError::Usage(_) => "E-USAGE",
            EngineError::Poisoned(_) => "E-POISONED",
            EngineError::Remote { code, .. } => code,
        }
    }
}

/// Code for an evaluation error (one level finer than `E-EVAL`, so wire
/// clients can distinguish unsafe bindings from limits from divergence).
fn eval_code(e: &idl_eval::EvalError) -> &'static str {
    use idl_eval::EvalError as E;
    match e {
        E::Uninstantiated(_) | E::BadAttrBinding(_) => "E-UNSAFE",
        E::BadArith(_) => "E-ARITH",
        E::KindMismatch { .. } => "E-KIND",
        E::UpdateOnDerived(_) => "E-DERIVED",
        E::NoSuchProgram(_)
        | E::InsufficientBindings { .. }
        | E::UnknownParameter { .. }
        | E::RecursiveProgram(_) => "E-PROGRAM",
        E::NotStratified(_) => "E-STRATIFY",
        E::FixpointDiverged(_) => "E-DIVERGED",
        E::TooManyResults(_) => "E-LIMIT",
        E::Malformed(_) => "E-MALFORMED",
        E::Storage(_) => "E-STORAGE",
    }
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Parse(e) => write!(f, "{e}"),
            EngineError::Eval(e) => write!(f, "{e}"),
            EngineError::Rules(m) => write!(f, "rule error: {m}"),
            EngineError::Storage(m) => write!(f, "storage error: {m}"),
            EngineError::Schema(violations) => {
                write!(f, "schema violation(s), request rolled back:")?;
                for v in violations {
                    write!(f, "\n  {v}")?;
                }
                Ok(())
            }
            EngineError::Usage(m) => write!(f, "usage error: {m}"),
            EngineError::Poisoned(m) => {
                write!(
                    f,
                    "durable engine poisoned by an earlier log failure ({m}); reopen to recover"
                )
            }
            EngineError::Remote { code, message } => write!(f, "[{code}] {message}"),
        }
    }
}

// Errors cross the wire as `{"code": …, "message": …}`. Deserialisation
// intentionally rebuilds the `Remote` variant rather than the original:
// the structured payload (spans, violation lists) stays server-side, and
// clients get exactly the stable contract — a code and a message.
impl Serialize for EngineError {
    fn to_content(&self) -> Content {
        Content::Map(vec![
            ("code".into(), Content::Str(self.code().to_string())),
            ("message".into(), Content::Str(self.to_string())),
        ])
    }
}

impl Deserialize for EngineError {
    fn from_content(content: &Content) -> Result<Self, ContentError> {
        let code = match content.get("code") {
            Some(Content::Str(s)) => s.clone(),
            _ => return Err(ContentError("engine error needs a string `code`".into())),
        };
        let message = match content.get("message") {
            Some(Content::Str(s)) => s.clone(),
            _ => return Err(ContentError("engine error needs a string `message`".into())),
        };
        Ok(EngineError::Remote { code, message })
    }
}

impl std::error::Error for EngineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EngineError::Parse(e) => Some(e),
            EngineError::Eval(e) => Some(e),
            _ => None,
        }
    }
}

impl From<idl_lang::ParseError> for EngineError {
    fn from(e: idl_lang::ParseError) -> Self {
        EngineError::Parse(e)
    }
}

impl From<idl_eval::EvalError> for EngineError {
    fn from(e: idl_eval::EvalError) -> Self {
        EngineError::Eval(e)
    }
}

impl From<idl_eval::RuleSetError> for EngineError {
    fn from(e: idl_eval::RuleSetError) -> Self {
        EngineError::Rules(e.to_string())
    }
}

impl From<idl_storage::StorageError> for EngineError {
    fn from(e: idl_storage::StorageError) -> Self {
        EngineError::Storage(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_stable_and_round_trip() {
        let e = EngineError::Usage("two statements".into());
        assert_eq!(e.code(), "E-USAGE");
        let json = serde_json::to_string(&e).unwrap();
        let back: EngineError = serde_json::from_str(&json).unwrap();
        match &back {
            EngineError::Remote { code, message } => {
                assert_eq!(code, "E-USAGE");
                assert_eq!(message, &e.to_string());
            }
            other => panic!("expected Remote, got {other:?}"),
        }
        assert_eq!(back.code(), "E-USAGE", "remote errors keep their code");
    }

    #[test]
    fn eval_errors_get_fine_grained_codes() {
        let e = EngineError::Eval(idl_eval::EvalError::Uninstantiated(idl_lang::Var::new("X")));
        assert_eq!(e.code(), "E-UNSAFE");
        let e = EngineError::Eval(idl_eval::EvalError::TooManyResults(10));
        assert_eq!(e.code(), "E-LIMIT");
        let e = EngineError::Poisoned("sync log: ENOSPC".into());
        assert_eq!(e.code(), "E-POISONED");
    }
}
