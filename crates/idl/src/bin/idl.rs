//! `idl` — command-line runner for IDL scripts.
//!
//! ```text
//! idl [--snapshot universe.json] [--save universe.json] [--sql] \
//!     [--analyze] [script.idl ...]
//! idl -e '?.euter.r(.stkCode=S, .clsPrice>200)'
//! idl --durable ./stocks --mapping -e '?.dbU.insStk(.stk=hp, .date=3/3/85, .price=50)'
//! ```
//!
//! * `--snapshot F` — load the universe from a JSON snapshot first.
//! * `--save F` — write the universe back after all scripts ran.
//! * `--stock` — preload the paper's miniature stock universe.
//! * `--mapping` — install the paper's two-level mapping (views + programs).
//! * `--durable DIR` — run against a crash-safe [`DurableEngine`] rooted
//!   at `DIR` (snapshot + checksummed operation log); mutating requests
//!   are logged and fsynced before their outcome prints. With
//!   `--mapping`, the mapping installs before the log replays.
//! * `--fsync always|off` — log/snapshot fsync policy under `--durable`
//!   (default `always`; `off` is the unsafe ablation mode).
//! * `--checkpoint` — after all scripts ran, write a snapshot and rotate
//!   the log (requires `--durable`; may be the only action).
//! * `--sql` — treat `-e` input / script lines as the SQL-sugar dialect.
//! * `--analyze` — run static binding analysis instead of executing.
//! * `--explain` — pretty-print the compiled physical plan for each
//!   request instead of executing.
//! * `--no-compile` — execute with the tree-walk reference interpreter
//!   instead of compiled plans (what `IDL_NO_COMPILE=1` does in CI).
//! * `--threads N` — fixpoint worker threads for view materialisation
//!   (default: available parallelism; `1` forces the sequential path).
//! * `--stats` — after all scripts ran, print the statistics of the last
//!   view materialisation: iterations, rule evaluations, facts added,
//!   plan-cache traffic, per-stratum telemetry, and the structural-sharing
//!   counters (O(1) clones, copy-on-write breaks, pointer-equality hits,
//!   sharing hit rate).
//! * `-e STMT` — execute one statement from the command line.
//!
//! The environment variable `IDL_SIM_FAULTS` (a fault plan such as
//! `seed=7,crash_at=12`; see [`idl::FaultPlan`]) reroutes `--durable`
//! onto the deterministic in-memory simulated VFS — nothing touches the
//! real disk, and the scheduled fault fires mid-run. This is the manual
//! counterpart of the crash battery in `tests/crash_recovery.rs`.
//!
//! Scripts are ordinary multi-statement IDL sources (`;`-separated).

use idl::{
    DurabilityOptions, DurableEngine, Engine, EngineError, FaultPlan, Outcome, RealVfs, SimVfs,
    SyncPolicy, Vfs,
};
use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::sync::Arc;

struct Cli {
    snapshot: Option<PathBuf>,
    save: Option<PathBuf>,
    durable: Option<PathBuf>,
    fsync: SyncPolicy,
    checkpoint: bool,
    stock: bool,
    mapping: bool,
    sql: bool,
    analyze: bool,
    explain: bool,
    no_compile: bool,
    stats: bool,
    threads: Option<usize>,
    inline: Vec<String>,
    scripts: Vec<PathBuf>,
}

fn parse_args() -> Result<Cli, String> {
    let mut cli = Cli {
        snapshot: None,
        save: None,
        durable: None,
        fsync: SyncPolicy::Always,
        checkpoint: false,
        stock: false,
        mapping: false,
        sql: false,
        analyze: false,
        explain: false,
        no_compile: false,
        stats: false,
        threads: None,
        inline: Vec::new(),
        scripts: Vec::new(),
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--snapshot" => {
                cli.snapshot = Some(args.next().ok_or("--snapshot needs a path")?.into())
            }
            "--save" => cli.save = Some(args.next().ok_or("--save needs a path")?.into()),
            "--durable" => {
                cli.durable = Some(args.next().ok_or("--durable needs a directory")?.into())
            }
            "--fsync" => {
                let mode = args.next().ok_or("--fsync needs always|off")?;
                cli.fsync = mode.parse()?;
            }
            "--checkpoint" => cli.checkpoint = true,
            "--stock" => cli.stock = true,
            "--mapping" => cli.mapping = true,
            "--sql" => cli.sql = true,
            "--analyze" => cli.analyze = true,
            "--explain" => cli.explain = true,
            "--no-compile" => cli.no_compile = true,
            "--stats" => cli.stats = true,
            "--threads" => {
                let n = args.next().ok_or("--threads needs a count")?;
                let n: usize = n
                    .parse()
                    .map_err(|_| format!("--threads needs a positive integer, got {n:?}"))?;
                if n == 0 {
                    return Err("--threads must be at least 1".into());
                }
                cli.threads = Some(n);
            }
            "-e" => cli.inline.push(args.next().ok_or("-e needs a statement")?),
            "--help" | "-h" => {
                println!("usage: idl [--snapshot F] [--save F] [--durable DIR] [--fsync always|off] [--checkpoint] [--stock] [--mapping] [--sql] [--analyze] [--explain] [--no-compile] [--stats] [--threads N] [-e STMT] [script.idl ...]");
                std::process::exit(0);
            }
            other if other.starts_with('-') => return Err(format!("unknown flag {other}")),
            path => cli.scripts.push(path.into()),
        }
    }
    if cli.durable.is_some() {
        if cli.snapshot.is_some() || cli.save.is_some() || cli.stock {
            return Err(
                "--durable manages its own snapshot (drop --snapshot/--save/--stock)".into()
            );
        }
        if cli.sql {
            return Err(
                "--sql mutations would bypass the operation log; not allowed with --durable".into(),
            );
        }
    } else {
        if cli.checkpoint {
            return Err("--checkpoint requires --durable".into());
        }
        if cli.fsync != SyncPolicy::Always {
            return Err("--fsync requires --durable".into());
        }
    }
    Ok(cli)
}

/// The engine behind the run loop: plain in-memory, or durable.
enum Runner {
    Plain(Box<Engine>),
    Durable(Box<DurableEngine>),
}

impl Runner {
    fn engine(&mut self) -> &mut Engine {
        match self {
            Runner::Plain(e) => e,
            Runner::Durable(d) => d.engine(),
        }
    }

    fn execute(&mut self, src: &str) -> Result<Vec<Outcome>, EngineError> {
        match self {
            Runner::Plain(e) => e.execute(src),
            Runner::Durable(d) => d.execute(src),
        }
    }
}

fn open_durable(cli: &Cli, dir: &Path) -> Result<DurableEngine, String> {
    let vfs: Arc<dyn Vfs> = match std::env::var("IDL_SIM_FAULTS") {
        Ok(spec) => {
            let plan: FaultPlan = spec.parse().map_err(|e| format!("bad IDL_SIM_FAULTS: {e}"))?;
            eprintln!("idl: IDL_SIM_FAULTS set — running on the simulated VFS (plan: {plan}); the real disk is untouched");
            Arc::new(SimVfs::new(plan))
        }
        Err(_) => Arc::new(RealVfs::new()),
    };
    let opts = DurabilityOptions::default().with_sync(cli.fsync);
    let mapping = cli.mapping;
    DurableEngine::open_with_vfs(dir.to_path_buf(), vfs, opts, |e| {
        if mapping {
            idl::transparency::install_two_level_mapping(e)?;
        }
        Ok(())
    })
    .map_err(|e| format!("cannot open durable engine at {}: {e}", dir.display()))
}

fn main() -> ExitCode {
    let cli = match parse_args() {
        Ok(c) => c,
        Err(e) => {
            eprintln!("idl: {e}");
            return ExitCode::FAILURE;
        }
    };

    let mut runner = if let Some(dir) = &cli.durable {
        match open_durable(&cli, dir) {
            Ok(d) => Runner::Durable(Box::new(d)),
            Err(e) => {
                eprintln!("idl: {e}");
                return ExitCode::FAILURE;
            }
        }
    } else {
        let engine = match &cli.snapshot {
            Some(path) => match Engine::load_snapshot(path) {
                Ok(e) => e,
                Err(e) => {
                    eprintln!("idl: cannot load snapshot: {e}");
                    return ExitCode::FAILURE;
                }
            },
            None if cli.stock => Engine::with_stock_universe(vec![
                ("3/3/85", "hp", 50.0),
                ("3/3/85", "ibm", 160.0),
                ("3/4/85", "hp", 62.0),
                ("3/4/85", "ibm", 155.0),
                ("3/5/85", "hp", 61.0),
                ("3/5/85", "ibm", 210.0),
            ]),
            None => Engine::new(),
        };
        Runner::Plain(Box::new(engine))
    };
    if let Some(n) = cli.threads {
        let opts = runner.engine().options().with_threads(n);
        runner.engine().set_options(opts);
    }
    if cli.no_compile {
        let opts = runner.engine().options().with_compile(false);
        runner.engine().set_options(opts);
    }
    if cli.mapping && cli.durable.is_none() {
        if let Err(e) = idl::transparency::install_two_level_mapping(runner.engine()) {
            eprintln!("idl: cannot install mapping: {e}");
            return ExitCode::FAILURE;
        }
    }

    let mut sources: Vec<(String, String)> = Vec::new(); // (label, text)
    for script in &cli.scripts {
        match std::fs::read_to_string(script) {
            Ok(text) => sources.push((script.display().to_string(), text)),
            Err(e) => {
                eprintln!("idl: cannot read {}: {e}", script.display());
                return ExitCode::FAILURE;
            }
        }
    }
    for (i, stmt) in cli.inline.iter().enumerate() {
        sources.push((format!("-e #{}", i + 1), stmt.clone()));
    }
    if sources.is_empty() && !cli.checkpoint {
        eprintln!("idl: nothing to run (pass a script or -e; --help for usage)");
        return ExitCode::FAILURE;
    }

    for (label, text) in &sources {
        if cli.explain {
            match runner.engine().explain(text) {
                Ok(plan) => print!("{plan}"),
                Err(e) => {
                    eprintln!("{label}: {e}");
                    return ExitCode::FAILURE;
                }
            }
            continue;
        }
        if cli.analyze {
            match runner.engine().analyze(text) {
                Ok(issues) if issues.is_empty() => println!("{label}: no binding issues"),
                Ok(issues) => {
                    for i in issues {
                        println!("{label}: warning: {i}");
                    }
                }
                Err(e) => {
                    eprintln!("{label}: {e}");
                    return ExitCode::FAILURE;
                }
            }
            continue;
        }
        let result = if cli.sql {
            runner.engine().execute_sql(text).map(|o| vec![o])
        } else {
            runner.execute(text)
        };
        match result {
            Ok(outcomes) => {
                for o in outcomes {
                    match o {
                        Outcome::Answers { .. } => println!("{o}"),
                        other => println!("-- {other}"),
                    }
                }
            }
            Err(e) => {
                eprintln!("{label}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }

    if cli.checkpoint {
        if let Runner::Durable(d) = &mut runner {
            match d.checkpoint() {
                Ok(o) => println!("-- {o}"),
                Err(e) => {
                    eprintln!("idl: checkpoint failed: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
    }
    if cli.stats {
        print_stats(runner.engine().last_fixpoint_stats());
    }
    if let Some(path) = &cli.save {
        if let Err(e) = runner.engine().save_snapshot(path) {
            eprintln!("idl: cannot save snapshot: {e}");
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}

/// Prints the last view-materialisation statistics (the `--stats` output
/// documented in LANGUAGE.md).
fn print_stats(stats: &idl::FixpointStats) {
    println!("-- fixpoint stats (last view materialisation)");
    println!("   iterations:     {}", stats.iterations);
    println!("   rule evals:     {}", stats.rule_evals);
    println!("   facts added:    {}", stats.facts_added);
    println!(
        "   plans compiled: {} (plan cache: {} hits, {} misses)",
        stats.plans_compiled, stats.plan_cache_hits, stats.plan_cache_misses
    );
    for (i, s) in stats.strata.iter().enumerate() {
        println!(
            "   stratum #{i}: rules={} iterations={} workers={} evals/worker={:?} wall={:?}",
            s.rules, s.iterations, s.workers, s.rule_evals_per_worker, s.wall
        );
    }
    let sh = &stats.sharing;
    println!(
        "   sharing: clones={} (tuple {}, set {}) cow-breaks={} ptr-eq-hits={} deep-clones={} hit-rate={:.1}%",
        sh.cheap_clones(),
        sh.tuple_clones,
        sh.set_clones,
        sh.cow_breaks,
        sh.ptr_eq_hits,
        sh.deep_clones,
        stats.sharing_hit_rate() * 100.0
    );
}
