//! `idl` — command-line runner for IDL scripts.
//!
//! ```text
//! idl [--snapshot universe.json] [--save universe.json] [--sql] \
//!     [--analyze] [script.idl ...]
//! idl -e '?.euter.r(.stkCode=S, .clsPrice>200)'
//! ```
//!
//! * `--snapshot F` — load the universe from a JSON snapshot first.
//! * `--save F` — write the universe back after all scripts ran.
//! * `--stock` — preload the paper's miniature stock universe.
//! * `--mapping` — install the paper's two-level mapping (views + programs).
//! * `--sql` — treat `-e` input / script lines as the SQL-sugar dialect.
//! * `--analyze` — run static binding analysis instead of executing.
//! * `--explain` — pretty-print the compiled physical plan for each
//!   request instead of executing.
//! * `--no-compile` — execute with the tree-walk reference interpreter
//!   instead of compiled plans (what `IDL_NO_COMPILE=1` does in CI).
//! * `--threads N` — fixpoint worker threads for view materialisation
//!   (default: available parallelism; `1` forces the sequential path).
//! * `-e STMT` — execute one statement from the command line.
//!
//! Scripts are ordinary multi-statement IDL sources (`;`-separated).

use idl::{Engine, Outcome};
use std::path::PathBuf;
use std::process::ExitCode;

struct Cli {
    snapshot: Option<PathBuf>,
    save: Option<PathBuf>,
    stock: bool,
    mapping: bool,
    sql: bool,
    analyze: bool,
    explain: bool,
    no_compile: bool,
    threads: Option<usize>,
    inline: Vec<String>,
    scripts: Vec<PathBuf>,
}

fn parse_args() -> Result<Cli, String> {
    let mut cli = Cli {
        snapshot: None,
        save: None,
        stock: false,
        mapping: false,
        sql: false,
        analyze: false,
        explain: false,
        no_compile: false,
        threads: None,
        inline: Vec::new(),
        scripts: Vec::new(),
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--snapshot" => {
                cli.snapshot = Some(args.next().ok_or("--snapshot needs a path")?.into())
            }
            "--save" => cli.save = Some(args.next().ok_or("--save needs a path")?.into()),
            "--stock" => cli.stock = true,
            "--mapping" => cli.mapping = true,
            "--sql" => cli.sql = true,
            "--analyze" => cli.analyze = true,
            "--explain" => cli.explain = true,
            "--no-compile" => cli.no_compile = true,
            "--threads" => {
                let n = args.next().ok_or("--threads needs a count")?;
                let n: usize = n
                    .parse()
                    .map_err(|_| format!("--threads needs a positive integer, got {n:?}"))?;
                if n == 0 {
                    return Err("--threads must be at least 1".into());
                }
                cli.threads = Some(n);
            }
            "-e" => cli.inline.push(args.next().ok_or("-e needs a statement")?),
            "--help" | "-h" => {
                println!("usage: idl [--snapshot F] [--save F] [--stock] [--mapping] [--sql] [--analyze] [--explain] [--no-compile] [--threads N] [-e STMT] [script.idl ...]");
                std::process::exit(0);
            }
            other if other.starts_with('-') => return Err(format!("unknown flag {other}")),
            path => cli.scripts.push(path.into()),
        }
    }
    Ok(cli)
}

fn main() -> ExitCode {
    let cli = match parse_args() {
        Ok(c) => c,
        Err(e) => {
            eprintln!("idl: {e}");
            return ExitCode::FAILURE;
        }
    };

    let mut engine = match &cli.snapshot {
        Some(path) => match Engine::load_snapshot(path) {
            Ok(e) => e,
            Err(e) => {
                eprintln!("idl: cannot load snapshot: {e}");
                return ExitCode::FAILURE;
            }
        },
        None if cli.stock => Engine::with_stock_universe(vec![
            ("3/3/85", "hp", 50.0),
            ("3/3/85", "ibm", 160.0),
            ("3/4/85", "hp", 62.0),
            ("3/4/85", "ibm", 155.0),
            ("3/5/85", "hp", 61.0),
            ("3/5/85", "ibm", 210.0),
        ]),
        None => Engine::new(),
    };
    if let Some(n) = cli.threads {
        let opts = engine.options().with_threads(n);
        engine.set_options(opts);
    }
    if cli.no_compile {
        let opts = engine.options().with_compile(false);
        engine.set_options(opts);
    }
    if cli.mapping {
        if let Err(e) = idl::transparency::install_two_level_mapping(&mut engine) {
            eprintln!("idl: cannot install mapping: {e}");
            return ExitCode::FAILURE;
        }
    }

    let mut sources: Vec<(String, String)> = Vec::new(); // (label, text)
    for script in &cli.scripts {
        match std::fs::read_to_string(script) {
            Ok(text) => sources.push((script.display().to_string(), text)),
            Err(e) => {
                eprintln!("idl: cannot read {}: {e}", script.display());
                return ExitCode::FAILURE;
            }
        }
    }
    for (i, stmt) in cli.inline.iter().enumerate() {
        sources.push((format!("-e #{}", i + 1), stmt.clone()));
    }
    if sources.is_empty() {
        eprintln!("idl: nothing to run (pass a script or -e; --help for usage)");
        return ExitCode::FAILURE;
    }

    for (label, text) in &sources {
        if cli.explain {
            match engine.explain(text) {
                Ok(plan) => print!("{plan}"),
                Err(e) => {
                    eprintln!("{label}: {e}");
                    return ExitCode::FAILURE;
                }
            }
            continue;
        }
        if cli.analyze {
            match engine.analyze(text) {
                Ok(issues) if issues.is_empty() => println!("{label}: no binding issues"),
                Ok(issues) => {
                    for i in issues {
                        println!("{label}: warning: {i}");
                    }
                }
                Err(e) => {
                    eprintln!("{label}: {e}");
                    return ExitCode::FAILURE;
                }
            }
            continue;
        }
        let result =
            if cli.sql { engine.execute_sql(text).map(|o| vec![o]) } else { engine.execute(text) };
        match result {
            Ok(outcomes) => {
                for o in outcomes {
                    match o {
                        Outcome::Answers { .. } => println!("{o}"),
                        other => println!("-- {other}"),
                    }
                }
            }
            Err(e) => {
                eprintln!("{label}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }

    if let Some(path) = &cli.save {
        if let Err(e) = engine.save_snapshot(path) {
            eprintln!("idl: cannot save snapshot: {e}");
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}
