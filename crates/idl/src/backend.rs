//! The unified engine facade: one object-safe surface over [`Engine`]
//! and [`DurableEngine`](crate::DurableEngine).
//!
//! Before this module existed the CLI, tests and benches all branched on
//! durability (`Engine` vs `DurableEngine`, each with slightly different
//! method sets). [`Backend`] collapses the two behind one trait so a
//! caller — the `idl-server` network front-end most of all — can hold a
//! `Box<dyn Backend + Send>` and never care where durability comes from:
//!
//! ```
//! use idl::{Backend, Engine};
//!
//! let mut b: Box<dyn Backend> = Box::new(Engine::with_stock_universe(vec![
//!     ("3/3/85", "hp", 50.0),
//! ]));
//! b.execute(".v.all(.s=S) <- .euter.r(.stkCode=S) ;")?;
//! assert!(b.query("?.v.all(.s=hp)")?.is_true());
//! # Ok::<(), idl::EngineError>(())
//! ```
//!
//! # Snapshot-isolated reads
//!
//! [`Backend::snapshot`] returns an [`EngineSnapshot`]: a point-in-time,
//! read-only view of the universe with views freshly materialised.
//! Thanks to the copy-on-write object model the snapshot is an **O(1)
//! handle copy**, not a deep copy — taking one costs nanoseconds
//! regardless of universe size, and the snapshot stays valid (and
//! byte-stable) while the engine continues mutating. This is the
//! mechanism behind the server's concurrent reads: many sessions evaluate
//! against published snapshots while a single writer advances the engine.

use crate::engine::{Engine, EngineOptions};
use crate::error::EngineError;
use crate::outcome::Outcome;
use idl_eval::analyze::BindingIssue;
use idl_eval::rules::FixpointStats;
use idl_eval::{AnswerSet, Evaluator, PlanCache, Subst};
use idl_lang::{parse_program, Request, Statement};
use idl_storage::{Store, Version};
use std::collections::BTreeSet;

/// One object-safe surface over the durable and in-memory engines.
///
/// Mutating entry points (`execute`, `update`) go through the durability
/// layer when the backend has one: a [`crate::DurableEngine`] logs and
/// fsyncs before acknowledging, a plain [`Engine`] just executes.
pub trait Backend {
    /// Parses and executes a multi-statement source text, one outcome per
    /// statement, stopping at the first error. Durable backends append
    /// every mutating request to the operation log before acknowledging.
    fn execute(&mut self, src: &str) -> Result<Vec<Outcome>, EngineError>;

    /// Executes a source text expected to contain exactly one pure-query
    /// request, returning its answers. Never logs.
    fn query(&mut self, src: &str) -> Result<AnswerSet, EngineError>;

    /// Executes a source text expected to contain exactly one request
    /// (usually mutating), returning its outcome. Durable backends log
    /// before acknowledging.
    fn update(&mut self, src: &str) -> Result<Outcome, EngineError>;

    /// Executes a batch of independent single-request updates as one
    /// group commit: each source is executed in order and a durable
    /// backend coalesces every successful mutation into a single log
    /// append and a single fsync before any of them is acknowledged
    /// (all-or-prefix on crash — see `DurableEngine`). The default
    /// implementation simply loops over [`Backend::update`]; the group
    /// never aborts early, so callers get one result per source.
    fn update_group(&mut self, srcs: &[String]) -> Vec<Result<Outcome, EngineError>> {
        srcs.iter().map(|src| self.update(src)).collect()
    }

    /// Executes one statement of the SQL-flavoured sugar surface.
    fn execute_sql(&mut self, src: &str) -> Result<Outcome, EngineError>;

    /// Re-derives all views; returns the fixpoint statistics.
    fn refresh_views(&mut self) -> Result<FixpointStats, EngineError>;

    /// Statistics of the most recent view materialisation that actually
    /// ran rules (the `--stats` output).
    fn stats(&self) -> &FixpointStats;

    /// A point-in-time read-only snapshot with views freshly
    /// materialised (an O(1) copy-on-write handle clone; see the module
    /// docs).
    fn snapshot(&mut self) -> Result<EngineSnapshot, EngineError>;

    /// Current engine options.
    fn options(&self) -> EngineOptions;

    /// Replaces the engine options.
    fn set_options(&mut self, options: EngineOptions);

    /// Writes a durable checkpoint (snapshot + log rotation). Errors with
    /// `E-USAGE` on a backend without durability.
    fn checkpoint(&mut self) -> Result<Outcome, EngineError>;

    /// Whether mutations are durably logged.
    fn is_durable(&self) -> bool;

    /// Durability counters (log appends/syncs, checkpoints, recovery
    /// work, storage backend and buffer-pool telemetry) for durable
    /// backends; `None` without durability.
    fn durability_stats(&self) -> Option<idl_storage::DurabilityStats> {
        None
    }

    /// The configured checkpoint-storage backend of a durable backend;
    /// `None` without durability.
    fn storage_spec(&self) -> Option<idl_storage::StorageSpec> {
        None
    }

    /// Whether a durability failure has poisoned this backend (always
    /// `false` without durability).
    fn is_poisoned(&self) -> bool;

    /// Static binding analysis of a request source, without executing.
    fn analyze(&self, src: &str) -> Result<Vec<BindingIssue>, EngineError>;

    /// Planner/compiled-plan display for each request in `src`.
    fn explain(&self, src: &str) -> Result<String, EngineError>;

    /// The universe serialised as canonical JSON.
    fn universe_json(&self) -> Result<String, EngineError>;

    /// Saves the universe as a JSON snapshot file.
    fn save_snapshot(&self, path: &std::path::Path) -> Result<(), EngineError>;
}

impl Backend for Engine {
    fn execute(&mut self, src: &str) -> Result<Vec<Outcome>, EngineError> {
        Engine::execute(self, src)
    }

    fn query(&mut self, src: &str) -> Result<AnswerSet, EngineError> {
        Engine::query(self, src)
    }

    fn update(&mut self, src: &str) -> Result<Outcome, EngineError> {
        let mut outcomes = Engine::execute(self, src)?;
        match outcomes.len() {
            1 => Ok(outcomes.pop().unwrap()),
            n => Err(EngineError::Usage(format!("expected exactly one statement, found {n}"))),
        }
    }

    fn execute_sql(&mut self, src: &str) -> Result<Outcome, EngineError> {
        Engine::execute_sql(self, src)
    }

    fn refresh_views(&mut self) -> Result<FixpointStats, EngineError> {
        Engine::refresh_views(self)
    }

    fn stats(&self) -> &FixpointStats {
        self.last_fixpoint_stats()
    }

    fn snapshot(&mut self) -> Result<EngineSnapshot, EngineError> {
        self.refresh_views_if_stale()?;
        EngineSnapshot::of(self)
    }

    fn options(&self) -> EngineOptions {
        Engine::options(self)
    }

    fn set_options(&mut self, options: EngineOptions) {
        Engine::set_options(self, options)
    }

    fn checkpoint(&mut self) -> Result<Outcome, EngineError> {
        Err(EngineError::Usage(
            "checkpoint requires a durable backend (open one with DurableEngine::open)".into(),
        ))
    }

    fn is_durable(&self) -> bool {
        false
    }

    fn is_poisoned(&self) -> bool {
        false
    }

    fn analyze(&self, src: &str) -> Result<Vec<BindingIssue>, EngineError> {
        Engine::analyze(self, src)
    }

    fn explain(&self, src: &str) -> Result<String, EngineError> {
        Engine::explain(self, src)
    }

    fn universe_json(&self) -> Result<String, EngineError> {
        Engine::universe_json(self)
    }

    fn save_snapshot(&self, path: &std::path::Path) -> Result<(), EngineError> {
        Engine::save_snapshot(self, path)
    }
}

/// A point-in-time, read-only view of the universe.
///
/// Obtained from [`Backend::snapshot`]; holds its own [`Store`] built
/// from an O(1) copy-on-write clone of the universe tuple, so it is
/// unaffected by — and does not block — subsequent engine mutation.
/// Index/statistics caches are rebuilt lazily per snapshot and shared
/// between concurrent readers of the same snapshot (the store's caches
/// are internally synchronised, so `&EngineSnapshot` is `Sync`).
pub struct EngineSnapshot {
    store: Store,
    version: Version,
    opts: idl_eval::EvalOptions,
    maintained: idl_eval::MaintainedViews,
}

impl EngineSnapshot {
    /// Snapshots an engine's current universe (no refresh — callers that
    /// need fresh views go through [`Backend::snapshot`]).
    pub(crate) fn of(engine: &Engine) -> Result<Self, EngineError> {
        Ok(EngineSnapshot {
            store: Store::from_universe(engine.store().universe().clone())?,
            version: engine.store().version(),
            opts: engine.options().eval,
            maintained: engine.maintained_views().clone(),
        })
    }

    /// The store version this snapshot was taken at.
    pub fn version(&self) -> Version {
        self.version
    }

    /// Per-view support bookkeeping carried from the engine's write-path
    /// maintenance state — the views this snapshot serves were maintained
    /// (or rebuilt) up to [`EngineSnapshot::version`].
    pub fn maintained(&self) -> &idl_eval::MaintainedViews {
        &self.maintained
    }

    /// The snapshotted store (read-only by construction).
    pub fn store(&self) -> &Store {
        &self.store
    }

    /// Evaluates one pure-query request source against the snapshot.
    pub fn query(&self, src: &str) -> Result<AnswerSet, EngineError> {
        self.query_cached(src, None)
    }

    /// [`EngineSnapshot::query`] with a memoized plan cache (the server's
    /// hot path: one shared cache across sessions and snapshots). The
    /// cache mutex is held only around plan lookup/compilation, never
    /// during evaluation, so concurrent readers contend on compiling a
    /// plan at most once and then evaluate lock-free.
    pub fn query_cached(
        &self,
        src: &str,
        cache: Option<&std::sync::Mutex<PlanCache>>,
    ) -> Result<AnswerSet, EngineError> {
        let mut stmts = parse_program(src)?;
        let req = match (stmts.pop(), stmts.is_empty()) {
            (Some(Statement::Request(req)), true) => req,
            (Some(_), true) => {
                return Err(EngineError::Usage("snapshots answer requests, not clauses".into()))
            }
            _ => return Err(EngineError::Usage("expected exactly one statement".into())),
        };
        self.query_request(&req, cache)
    }

    /// Evaluates one parsed pure-query request against the snapshot.
    pub fn query_request(
        &self,
        req: &Request,
        cache: Option<&std::sync::Mutex<PlanCache>>,
    ) -> Result<AnswerSet, EngineError> {
        if !req.is_pure_query() {
            return Err(EngineError::Usage(
                "snapshot reads are read-only; send updates to the engine".into(),
            ));
        }
        let ev = Evaluator::new(&self.store, self.opts);
        let substs = if self.opts.compile {
            let plan = match cache {
                Some(cache) => {
                    let mut cache = cache.lock().unwrap_or_else(|p| p.into_inner());
                    cache.get_or_compile(&req.items, self.opts)?
                }
                None => std::sync::Arc::new(idl_eval::compile_items(&req.items, self.opts)?),
            };
            ev.eval_compiled(&plan, vec![Subst::new()])?
        } else {
            ev.eval_items(&req.items, vec![Subst::new()])?
        };
        let named: BTreeSet<_> = req.vars().into_iter().filter(|v| !v.is_gensym()).collect();
        Ok(substs.into_iter().map(|s| s.project(&named)).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DurableEngine;

    fn stock() -> Engine {
        Engine::with_stock_universe(vec![("3/3/85", "hp", 50.0), ("3/3/85", "ibm", 210.0)])
    }

    #[test]
    fn dyn_backend_unifies_engine_and_durable() {
        let dir = std::env::temp_dir().join(format!("idl-backend-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut backends: Vec<Box<dyn Backend>> =
            vec![Box::new(Engine::new()), Box::new(DurableEngine::open(&dir).unwrap())];
        for b in &mut backends {
            b.execute(".v.all(.a=A) <- .db.r(.a=A) ;").unwrap();
            let out = b.update("?.db.r+(.a=1)").unwrap();
            assert_eq!(out.stats().unwrap().inserted, 1);
            assert!(b.query("?.v.all(.a=1)").unwrap().is_true());
            assert!(!b.is_poisoned());
        }
        assert!(!backends[0].is_durable());
        assert!(backends[1].is_durable());
        // checkpoint: durable-only
        assert_eq!(backends[0].checkpoint().unwrap_err().code(), "E-USAGE");
        assert!(matches!(backends[1].checkpoint().unwrap(), Outcome::Checkpointed { lsn: 1 }));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn snapshot_is_isolated_from_later_writes() {
        let mut e = stock();
        e.add_rules(".v.big(.s=S) <- .euter.r(.stkCode=S, .clsPrice>100) ;").unwrap();
        let snap = Backend::snapshot(&mut e).unwrap();
        assert_eq!(snap.query("?.v.big(.s=S)").unwrap().len(), 1);
        // subsequent writes don't bleed into the held snapshot
        e.update("?.euter.r+(.date=3/4/85,.stkCode=sun,.clsPrice=300)").unwrap();
        assert!(e.query("?.v.big(.s=sun)").unwrap().is_true());
        assert_eq!(snap.query("?.v.big(.s=S)").unwrap().len(), 1);
        assert!(!snap.query("?.euter.r(.stkCode=sun)").unwrap().is_true());
    }

    #[test]
    fn snapshot_rejects_updates_and_clauses() {
        let mut e = stock();
        let snap = Backend::snapshot(&mut e).unwrap();
        assert_eq!(snap.query("?.euter.r+(.a=1)").unwrap_err().code(), "E-USAGE");
        assert_eq!(snap.query(".a.b(.x=X) <- .c.d(.x=X)").unwrap_err().code(), "E-USAGE");
    }

    #[test]
    fn snapshot_queries_match_engine_queries() {
        let mut e = stock();
        e.add_rules(".v.all(.s=S,.p=P) <- .euter.r(.stkCode=S,.clsPrice=P) ;").unwrap();
        let cache = std::sync::Mutex::new(PlanCache::new());
        let snap = Backend::snapshot(&mut e).unwrap();
        for q in
            ["?.v.all(.s=S,.p=P)", "?.euter.r(.stkCode=S, .clsPrice>100)", "?.X.Y(.clsPrice=P)"]
        {
            assert_eq!(snap.query_cached(q, Some(&cache)).unwrap(), e.query(q).unwrap(), "{q}");
        }
    }
}
