//! Durability: snapshot + operation log, routed through a [`Vfs`].
//!
//! The storage layer persists point-in-time JSON snapshots
//! ([`idl_storage::persist`]); this module adds the other half of the
//! classic recipe — an **append-only operation log**. Every successful
//! *mutating* request is appended in canonical IDL surface syntax, and
//! recovery is snapshot + replay:
//!
//! ```no_run
//! use idl::durable::DurableEngine;
//! let mut d = DurableEngine::open("./stocks")?;
//! d.execute(idl::transparency::standard_update_programs())?;       // code: in-memory only
//! d.update("?.dbU.insStk(.stk=hp, .date=3/3/85, .price=50)")?;  // logged
//! d.checkpoint()?;                                // snapshot + rotate log
//! # Ok::<(), idl::EngineError>(())
//! ```
//!
//! # Crash safety
//!
//! All file I/O goes through a [`Vfs`] — the real disk in production, a
//! deterministic fault-injecting simulation ([`idl_storage::SimVfs`]) in
//! the crash battery (`tests/crash_recovery.rs`). The guarantees, under
//! [`SyncPolicy::Always`]:
//!
//! * **sync before ack** — a mutating request returns `Ok` only after its
//!   log record is appended *and* fsynced; a crash at any point loses no
//!   acknowledged update;
//! * **atomic records** — the log uses length-prefixed, CRC-32C-checksummed
//!   framing ([`idl_storage::oplog`]); recovery truncates a torn tail
//!   instead of failing or replaying garbage, so an unacknowledged update
//!   is atomically absent;
//! * **atomic snapshots** — checkpoints write through the
//!   write→fsync(file)→rename→fsync(dir) discipline, and the snapshot
//!   records the log LSN it covers, so a crash anywhere inside
//!   [`DurableEngine::checkpoint`] replays each record at most once;
//! * **fail-stop on log errors** — if an append or sync fails (`ENOSPC`,
//!   I/O error), the engine truncates the partial record and **poisons**
//!   itself: the in-memory state has a mutation the log could not
//!   acknowledge, so further durable work is refused until a fresh
//!   [`DurableEngine::open`] rebuilds state from disk.
//!
//! Logs written by older builds in the line-per-statement format are
//! detected and migrated to the framed format on open (atomically, via a
//! temp file and rename).
//!
//! Rules and update programs are *code*: they are not logged, and the
//! application reinstalls them after `open` (the same policy as snapshot
//! loading; see `tests/integration_pipeline.rs`).

use crate::backend::{Backend, EngineSnapshot};
use crate::engine::Engine;
use crate::error::EngineError;
use crate::outcome::Outcome;
use idl_lang::{parse_program, parse_statement, Statement};
use idl_object::Name;
use idl_storage::codec::{DeltaEntry, SnapshotCodec};
use idl_storage::engine::{open_storage, CommitKind, CommitSeal, StorageEngine, StorageSpec};
use idl_storage::journal::ChangeScope;
use idl_storage::oplog::{self, DurabilityStats, LogFormat};
use idl_storage::session::Session;
use idl_storage::store::Store;
use idl_storage::vfs::{RealVfs, Vfs, VfsStats};
use std::collections::{BTreeMap, BTreeSet};
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// When the operation log is fsynced.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SyncPolicy {
    /// Fsync the log before acknowledging every mutating request, and
    /// fsync through the snapshot rename protocol. The crash-safe default.
    Always,
    /// Never fsync (the OS flushes when it pleases). For ablations and
    /// bulk loads; a crash may lose acknowledged updates.
    Never,
}

impl std::str::FromStr for SyncPolicy {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "always" => Ok(SyncPolicy::Always),
            "off" | "never" => Ok(SyncPolicy::Never),
            other => Err(format!("unknown sync policy '{other}' (expected always|off)")),
        }
    }
}

/// How [`DurableEngine::checkpoint`] decides between a full snapshot and
/// an incremental delta.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CheckpointPolicy {
    /// Write a delta checkpoint (only the relations/databases dirtied
    /// since the last checkpoint) while the chain stays under `max_chain`;
    /// compact to a full snapshot when it would grow past that, when the
    /// universe was mutated unscoped, or when the base is not binary.
    Auto {
        /// Chain-length cap before the next checkpoint compacts.
        max_chain: usize,
    },
    /// Every checkpoint writes a full snapshot (and clears any chain).
    Full,
}

impl Default for CheckpointPolicy {
    fn default() -> Self {
        CheckpointPolicy::Auto { max_chain: 8 }
    }
}

impl std::str::FromStr for CheckpointPolicy {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "auto" => Ok(CheckpointPolicy::default()),
            "full" => Ok(CheckpointPolicy::Full),
            other => Err(format!("unknown checkpoint policy '{other}' (expected auto|full)")),
        }
    }
}

/// Durability knobs for [`DurableEngine::open_with_vfs`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct DurabilityOptions {
    /// Fsync policy for the log and snapshots.
    pub sync: SyncPolicy,
    /// Preferred on-disk log format for fresh logs (an existing framed
    /// log is never downgraded; an existing legacy log is migrated when
    /// this is [`LogFormat::Framed`]).
    pub format: LogFormat,
    /// Snapshot encoding checkpoints are written in. Binary by default;
    /// an existing JSON directory is migrated to binary on open. Opening
    /// with `Json` never rewrites a binary base on open — the next
    /// checkpoint simply writes JSON (and clears any delta chain).
    /// Ignored by the paged backend, which always writes page formats.
    pub codec: SnapshotCodec,
    /// Full-vs-delta checkpoint policy (deltas need the binary codec).
    pub checkpoint: CheckpointPolicy,
    /// Storage backend checkpoints commit through: the in-memory
    /// snapshot+delta-chain representation ([`StorageSpec::Mem`], the
    /// default) or the paged file with a buffer pool
    /// ([`StorageSpec::Paged`]).
    pub storage: StorageSpec,
}

impl Default for DurabilityOptions {
    fn default() -> Self {
        // IDL_CODEC=json keeps the whole durable path on the legacy
        // encoding (the CI compatibility leg and the B17 ablation);
        // IDL_STORAGE=paged[:N] routes it through the paged backend.
        let codec =
            std::env::var("IDL_CODEC").ok().and_then(|s| s.parse().ok()).unwrap_or_default();
        let storage =
            std::env::var("IDL_STORAGE").ok().and_then(|s| s.parse().ok()).unwrap_or_default();
        DurabilityOptions {
            sync: SyncPolicy::Always,
            format: LogFormat::Framed,
            codec,
            checkpoint: CheckpointPolicy::default(),
            storage,
        }
    }
}

impl DurabilityOptions {
    /// A builder seeded from [`DurabilityOptions::default`] (which reads
    /// the `IDL_CODEC`/`IDL_STORAGE` environment overrides).
    pub fn builder() -> DurabilityOptionsBuilder {
        DurabilityOptionsBuilder { opts: DurabilityOptions::default() }
    }
}

/// Fluent construction for [`DurabilityOptions`]:
/// `DurabilityOptions::builder().storage(StorageSpec::paged()).build()`.
#[derive(Clone, Copy, Debug)]
pub struct DurabilityOptionsBuilder {
    opts: DurabilityOptions,
}

impl DurabilityOptionsBuilder {
    /// Sets the fsync policy.
    pub fn sync(mut self, sync: SyncPolicy) -> Self {
        self.opts.sync = sync;
        self
    }

    /// Sets the preferred log format for fresh logs.
    pub fn format(mut self, format: LogFormat) -> Self {
        self.opts.format = format;
        self
    }

    /// Sets the snapshot codec (mem backend only).
    pub fn codec(mut self, codec: SnapshotCodec) -> Self {
        self.opts.codec = codec;
        self
    }

    /// Sets the full-vs-delta checkpoint policy.
    pub fn checkpoint(mut self, checkpoint: CheckpointPolicy) -> Self {
        self.opts.checkpoint = checkpoint;
        self
    }

    /// Sets the storage backend.
    pub fn storage(mut self, storage: StorageSpec) -> Self {
        self.opts.storage = storage;
        self
    }

    /// Finishes the build.
    pub fn build(self) -> DurabilityOptions {
        self.opts
    }
}

fn storage_err(ctx: &str, e: impl std::fmt::Display) -> EngineError {
    EngineError::Storage(format!("{ctx}: {e}"))
}

/// An [`Engine`] wrapped with snapshot + operation-log durability rooted
/// at a directory, with all I/O routed through a [`Vfs`]. Checkpoints
/// commit through a pluggable [`StorageEngine`] (snapshot+delta files or
/// a paged file, per [`DurabilityOptions::storage`]); log appends go
/// through a [`Session`].
pub struct DurableEngine {
    engine: Engine,
    dir: PathBuf,
    vfs: Arc<dyn Vfs>,
    opts: DurabilityOptions,
    /// Checkpoint representation (mem or paged; see [`StorageSpec`]).
    storage: Box<dyn StorageEngine>,
    /// The operation log: append/sync/rotate/truncate, LSN numbering.
    log: Session,
    /// LSN covered by the newest checkpoint artifact.
    ckpt_lsn: u64,
    /// Store journal version covered by the newest checkpoint artifact;
    /// `changes_since(ckpt_version)` is exactly what the next delta must
    /// record. 0 at open: the artifacts on disk predate every in-process
    /// mutation (setup and replay included), and the store journal is
    /// never truncated outside its own tests.
    ckpt_version: u64,
    poisoned: Option<String>,
    stats: DurabilityStats,
}

impl DurableEngine {
    #[cfg(test)]
    fn snapshot_path(dir: &Path) -> PathBuf {
        dir.join("universe.json")
    }

    fn log_path_in(dir: &Path) -> PathBuf {
        dir.join("ops.idl")
    }

    fn codec_hint(snapshot_codec: SnapshotCodec) -> u32 {
        match snapshot_codec {
            SnapshotCodec::Json => oplog::CODEC_HINT_JSON,
            SnapshotCodec::Binary => oplog::CODEC_HINT_BINARY,
        }
    }

    /// Opens (or creates) a durable engine at `dir` on the real file
    /// system: loads the snapshot if present and replays the operation
    /// log.
    pub fn open(dir: impl Into<PathBuf>) -> Result<Self, EngineError> {
        Self::open_with(dir, |_| Ok(()))
    }

    /// Like [`DurableEngine::open`], running `setup` (typically rule and
    /// update-program installation) after the snapshot loads but *before*
    /// the log replays — logged program calls then resolve correctly.
    pub fn open_with(
        dir: impl Into<PathBuf>,
        setup: impl FnOnce(&mut Engine) -> Result<(), EngineError>,
    ) -> Result<Self, EngineError> {
        Self::open_with_vfs(dir, Arc::new(RealVfs::new()), DurabilityOptions::default(), setup)
    }

    /// The fully general open: explicit [`Vfs`] (real or simulated) and
    /// [`DurabilityOptions`]. Recovery order: the storage backend
    /// recovers its committed universe (sweeping stale temp files and
    /// replaying/migrating its own artifacts), `setup` runs, then the
    /// log session opens and the tail replays (skipping records the
    /// recovered state already covers, truncating any torn tail,
    /// migrating a legacy line-format log to framed when asked).
    pub fn open_with_vfs(
        dir: impl Into<PathBuf>,
        vfs: Arc<dyn Vfs>,
        opts: DurabilityOptions,
        setup: impl FnOnce(&mut Engine) -> Result<(), EngineError>,
    ) -> Result<Self, EngineError> {
        let dir = dir.into();
        let sync = opts.sync == SyncPolicy::Always;
        let mut stats = DurabilityStats::default();
        vfs.create_dir_all(&dir)
            .map_err(|e| storage_err(&format!("create {}", dir.display()), e))?;

        stats.codec = opts.codec;
        let mut storage = open_storage(opts.storage, Arc::clone(&vfs), &dir, opts.codec, sync);
        let recovered = storage.recover()?;
        stats.stale_temps_removed = recovered.stale_temps_removed;
        stats.chain_len = recovered.chain_len;
        stats.migrated_snapshot = recovered.migrated_snapshot;
        stats.snapshot_bytes_written += recovered.migration_bytes;
        let snap_lsn = recovered.lsn;
        let maint_state = recovered.maintenance;
        let mut engine = match recovered.universe {
            Some(universe) => Engine::from_store(Store::from_universe(universe)?),
            None => Engine::new(),
        };
        setup(&mut engine)?;
        // Adopt persisted maintenance state *after* setup installed the
        // rules (the adopt checks the rule fingerprint) and *before*
        // replay, so replayed updates maintain incrementally instead of
        // silently falling back to a full rebuild. A blob this build
        // cannot decode, or one whose rules changed, is dropped: the
        // views stay stale and the refresh path recomputes everything.
        if let Some(blob) = maint_state {
            if let Ok(state) = serde_json::from_str::<idl_eval::MaintainedViews>(&blob) {
                stats.maintenance_state_adopted = engine.adopt_maintained_views(state);
            }
        }

        let (log, opened) = Session::open(
            Arc::clone(&vfs),
            Self::log_path_in(&dir),
            opts.format,
            Self::codec_hint(opts.codec),
            sync,
            snap_lsn,
        )?;
        stats.migrated_legacy = opened.migrated_legacy;
        stats.torn_bytes_truncated = opened.torn_bytes_truncated;
        let mut lsn = snap_lsn;
        for rec in &opened.records {
            if rec.lsn <= lsn {
                // The checkpoint state (or an earlier duplicate) already
                // contains this record — the crash-mid-checkpoint
                // window, where the artifact committed but the log had
                // not yet rotated.
                stats.records_skipped += 1;
                continue;
            }
            if rec.lsn > lsn + 1 {
                // The records between `lsn` and this one are nowhere:
                // not in a checkpoint artifact, not in the log. That
                // only happens when a disk dropped the fsync of a
                // checkpoint artifact the log rotation then trusted.
                // Refuse to assemble a gapped history — report it.
                return Err(EngineError::Storage(format!(
                    "recovery gap: log record lsn {} follows state covered to lsn {} — \
                     a checkpoint artifact is missing (unsynced or lost)",
                    rec.lsn, lsn
                )));
            }
            let stmt = parse_statement(&rec.stmt).map_err(|e| {
                EngineError::Storage(format!("corrupt log at line {}: {e}", rec.line))
            })?;
            let runs_before = engine.maintenance_runs();
            engine.execute_statement(stmt)?;
            if rec.flags & oplog::FLAG_MAINTENANCE != 0 {
                stats.maintenance_records_replayed += 1;
                if engine.maintenance_runs() == runs_before {
                    // The original run maintained this update but the
                    // replay could not — surface the rebuild instead
                    // of hiding it.
                    stats.maintenance_fallbacks += 1;
                }
            }
            lsn = rec.lsn;
            stats.records_recovered += 1;
        }

        Ok(DurableEngine {
            engine,
            dir,
            vfs,
            opts,
            storage,
            log,
            ckpt_lsn: snap_lsn,
            ckpt_version: 0,
            poisoned: None,
            stats,
        })
    }

    /// The durability directory this engine is rooted at.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The options this engine was opened with.
    pub fn options(&self) -> DurabilityOptions {
        self.opts
    }

    /// The LSN of the last acknowledged record (or of the checkpoint
    /// state, if no record follows it).
    pub fn last_lsn(&self) -> u64 {
        self.log.lsn()
    }

    /// The storage backend this engine commits checkpoints through.
    pub fn storage_spec(&self) -> StorageSpec {
        self.storage.spec()
    }

    /// Durability counters (appends, syncs, recovery work at last open),
    /// with the storage backend's buffer-pool counters merged in.
    pub fn durability_stats(&self) -> DurabilityStats {
        let mut stats = self.stats;
        stats.pool = self.storage.pool_stats();
        stats.storage_pages = self.storage.file_pages();
        stats
    }

    /// Reads one relation's committed value straight off the storage
    /// backend, bypassing the in-memory engine (diagnostics; for the
    /// paged backend this exercises the buffer pool).
    pub fn storage_read_relation(
        &mut self,
        db: &str,
        rel: &str,
    ) -> Result<Option<idl_object::Value>, EngineError> {
        Ok(self.storage.read_relation(db, rel)?)
    }

    /// I/O counters from the underlying [`Vfs`].
    pub fn vfs_stats(&self) -> VfsStats {
        self.vfs.stats()
    }

    /// Whether a log failure has poisoned this engine (see module docs).
    pub fn is_poisoned(&self) -> bool {
        self.poisoned.is_some()
    }

    fn check_poisoned(&self) -> Result<(), EngineError> {
        match &self.poisoned {
            Some(why) => Err(EngineError::Poisoned(why.clone())),
            None => Ok(()),
        }
    }

    /// Truncates a partial append so future readers see the last
    /// acknowledged prefix, then refuses further durable work: the
    /// in-memory engine holds a mutation the log could not acknowledge.
    fn repair_and_poison(&mut self, why: String) {
        self.log.repair_truncate();
        self.poisoned = Some(why);
    }

    /// Appends one record and — under [`SyncPolicy::Always`] — fsyncs it
    /// *before* the caller acknowledges the mutation. `flags` tags the
    /// record (legacy line logs cannot carry them and drop the tag).
    fn log_record(&mut self, canonical: &str, flags: u8) -> Result<(), EngineError> {
        match self.log.append(flags, canonical) {
            Ok(bytes) => {
                if self.opts.sync == SyncPolicy::Always {
                    self.stats.log_syncs += 1;
                }
                self.stats.records_appended += 1;
                self.stats.bytes_appended += bytes;
                Ok(())
            }
            Err(e) => {
                let why = e.to_string();
                self.repair_and_poison(why.clone());
                Err(EngineError::Storage(why))
            }
        }
    }

    /// Executes one parsed statement durably. Requests append (and sync)
    /// their canonical form when they mutate, *before* the outcome is
    /// returned; rules and program clauses install in memory only
    /// (reinstall them via `setup` at the next open).
    pub fn apply(&mut self, stmt: Statement) -> Result<Outcome, EngineError> {
        self.check_poisoned()?;
        match stmt {
            Statement::Request(r) => {
                let canonical = r.to_string();
                let runs_before = self.engine.maintenance_runs();
                let outcome = self.engine.execute_statement(Statement::Request(r))?;
                let mutated =
                    matches!(&outcome, Outcome::Answers { stats, .. } if stats.total() > 0);
                if mutated {
                    // Tag updates whose views were maintained in the same
                    // transaction, so replay can detect a silent
                    // fall-back to full rebuild.
                    let maintained = self.engine.maintenance_runs() > runs_before;
                    let flags = if maintained { oplog::FLAG_MAINTENANCE } else { 0 };
                    self.log_record(&canonical, flags)?;
                    if maintained {
                        self.stats.maintenance_records_appended += 1;
                    }
                }
                Ok(outcome)
            }
            other => self.engine.execute_statement(other),
        }
    }

    /// Executes a whole program (script) durably, statement by statement,
    /// via [`DurableEngine::apply`].
    pub fn execute(&mut self, src: &str) -> Result<Vec<Outcome>, EngineError> {
        self.check_poisoned()?;
        let stmts = parse_program(src)?;
        let mut out = Vec::with_capacity(stmts.len());
        for stmt in stmts {
            out.push(self.apply(stmt)?);
        }
        Ok(out)
    }

    /// Executes one request statement durably: on success *with mutations*
    /// the canonical form is appended and synced to the operation log
    /// before the outcome is reported.
    pub fn update(&mut self, src: &str) -> Result<Outcome, EngineError> {
        self.check_poisoned()?;
        let stmt = parse_statement(src)?;
        match stmt {
            Statement::Request(_) => self.apply(stmt),
            _ => Err(EngineError::Usage(
                "durable update takes a request; install rules/programs via open_with's setup callback"
                    .into(),
            )),
        }
    }

    /// Executes a batch of independent single-request updates with **one**
    /// coalesced log append and **one** fsync covering every mutation in
    /// the group (group commit). Results are positional; a failing entry
    /// never aborts the rest, and no entry is acknowledged before the
    /// whole group is durable. If the append or sync fails, every
    /// mutating entry is un-acknowledged (its `Ok` becomes the durability
    /// error), the partial append is truncated back to the last synced
    /// prefix, and the engine poisons — the single-update fail-stop
    /// discipline applied to the group as a unit. Crash-wise the log can
    /// only hold an in-order *prefix* of the group's records (framed
    /// records land sequentially and recovery truncates the torn tail),
    /// so a crash inside the window loses only unacknowledged updates.
    pub fn update_group(&mut self, srcs: &[String]) -> Vec<Result<Outcome, EngineError>> {
        if let Some(why) = &self.poisoned {
            let why = why.clone();
            return srcs.iter().map(|_| Err(EngineError::Poisoned(why.clone()))).collect();
        }
        let mut results: Vec<Result<Outcome, EngineError>> = Vec::with_capacity(srcs.len());
        // (result index, flags, canonical text, maintained?) per mutating success
        let mut pending: Vec<(usize, u8, String, bool)> = Vec::new();
        for (i, src) in srcs.iter().enumerate() {
            let req = match parse_statement(src) {
                Ok(Statement::Request(r)) => r,
                Ok(_) => {
                    results.push(Err(EngineError::Usage(
                        "durable update takes a request; install rules/programs via open_with's setup callback"
                            .into(),
                    )));
                    continue;
                }
                Err(e) => {
                    results.push(Err(e.into()));
                    continue;
                }
            };
            let canonical = req.to_string();
            let runs_before = self.engine.maintenance_runs();
            match self.engine.execute_statement(Statement::Request(req)) {
                Ok(outcome) => {
                    let mutated =
                        matches!(&outcome, Outcome::Answers { stats, .. } if stats.total() > 0);
                    if mutated {
                        let maintained = self.engine.maintenance_runs() > runs_before;
                        let flags = if maintained { oplog::FLAG_MAINTENANCE } else { 0 };
                        pending.push((i, flags, canonical, maintained));
                    }
                    results.push(Ok(outcome));
                }
                Err(e) => results.push(Err(e)),
            }
        }
        if pending.is_empty() {
            return results;
        }
        let records: Vec<(u8, String)> =
            pending.iter().map(|(_, flags, stmt, _)| (*flags, stmt.clone())).collect();
        match self.log.append_group(&records) {
            Ok(bytes) => {
                if self.opts.sync == SyncPolicy::Always {
                    self.stats.log_syncs += 1;
                }
                self.stats.records_appended += pending.len() as u64;
                self.stats.bytes_appended += bytes;
                self.stats.group_commits += 1;
                self.stats.group_commit_records += pending.len() as u64;
                self.stats.maintenance_records_appended +=
                    pending.iter().filter(|(_, _, _, m)| *m).count() as u64;
                results
            }
            Err(e) => {
                let why = e.to_string();
                self.repair_and_poison(why.clone());
                for (i, _, _, _) in &pending {
                    results[*i] = Err(EngineError::Storage(why.clone()));
                }
                results
            }
        }
    }

    /// Collects the post-images (or tombstones) of every database/relation
    /// dirtied since the last checkpoint artifact, from the store's change
    /// journal. `None` means a delta cannot represent the changes (an
    /// unscoped universe mutation, e.g. a rollback) and the checkpoint
    /// must be full.
    fn delta_entries(&self) -> Option<Vec<DeltaEntry>> {
        let store = self.engine.store();
        let mut dbs: BTreeSet<Name> = BTreeSet::new();
        let mut rels: BTreeMap<Name, BTreeSet<Name>> = BTreeMap::new();
        for rec in store.changes_since(self.ckpt_version) {
            match &rec.scope {
                ChangeScope::Universe => return None,
                ChangeScope::Database { db } => {
                    dbs.insert(db.clone());
                }
                ChangeScope::Relation { db, rel } => {
                    rels.entry(db.clone()).or_default().insert(rel.clone());
                }
            }
        }
        let universe = store.universe();
        let mut entries = Vec::new();
        for db in &dbs {
            // database granularity subsumes its relations' entries
            rels.remove(db);
            match universe.attr(db.as_str()) {
                // O(1) copy-on-write clones — the delta shares the live
                // store's interiors until either side mutates
                Some(v) => {
                    entries.push(DeltaEntry::PutDatabase { db: db.clone(), value: v.clone() })
                }
                None => entries.push(DeltaEntry::DropDatabase { db: db.clone() }),
            }
        }
        for (db, dirty) in &rels {
            match universe.attr(db.as_str()) {
                None => entries.push(DeltaEntry::DropDatabase { db: db.clone() }),
                Some(dbv) => {
                    for rel in dirty {
                        match dbv.attr(rel.as_str()) {
                            Some(v) => entries.push(DeltaEntry::PutRelation {
                                db: db.clone(),
                                rel: rel.clone(),
                                value: v.clone(),
                            }),
                            None => entries.push(DeltaEntry::DropRelation {
                                db: db.clone(),
                                rel: rel.clone(),
                            }),
                        }
                    }
                }
            }
        }
        Some(entries)
    }

    /// Checkpoints under the configured [`CheckpointPolicy`]: an
    /// incremental delta (only the slots dirtied since the last artifact)
    /// when the policy, codec, and chain length allow; a full snapshot
    /// otherwise. Either way the log rotates empty afterwards — recovery
    /// is base + delta chain + log tail, each step individually atomic,
    /// and replay skips records the artifacts cover, so a crash anywhere
    /// in between is safe.
    pub fn checkpoint(&mut self) -> Result<Outcome, EngineError> {
        self.do_checkpoint(false)
    }

    /// Forces a full-snapshot checkpoint, compacting any delta chain
    /// (the `--checkpoint full` escape hatch).
    pub fn checkpoint_full(&mut self) -> Result<Outcome, EngineError> {
        self.do_checkpoint(true)
    }

    fn do_checkpoint(&mut self, force_full: bool) -> Result<Outcome, EngineError> {
        self.check_poisoned()?;
        let sync = self.opts.sync == SyncPolicy::Always;
        // Persist the maintenance state only when the views actually
        // match the universe being snapshotted — adopting stale support
        // counts at the next open would claim freshness the data lacks.
        // The newest artifact wins on recovery, so the blob (or its
        // absence) rides every checkpoint.
        let state = if self.engine.views_fresh_now() {
            serde_json::to_string(self.engine.maintained_views()).ok()
        } else {
            None
        };
        let store_version = self.engine.store().version();
        let max_chain = match self.opts.checkpoint {
            CheckpointPolicy::Auto { max_chain } => max_chain,
            CheckpointPolicy::Full => 0,
        };
        let seal = CommitSeal { lsn: self.log.lsn(), maintenance: state, sync };
        let delta_ok = !force_full && self.storage.can_delta(max_chain);
        // `delta_entries` is None when the journal recorded an unscoped
        // universe mutation — only a full commit can represent that.
        let info = match if delta_ok { self.delta_entries() } else { None } {
            // A failed delta aborts without touching the committed
            // state, and a full commit can represent anything a delta
            // can — fall back instead of failing the checkpoint (and
            // poisoning the engine) on a delta-only limitation.
            Some(entries) => match self.storage.apply_delta(&entries, &seal) {
                Ok(info) => info,
                Err(_) => self.storage.apply_full(self.engine.store(), &seal)?,
            },
            None => self.storage.apply_full(self.engine.store(), &seal)?,
        };
        match info.kind {
            CommitKind::Delta => self.stats.delta_checkpoints += 1,
            CommitKind::Full => self.stats.full_checkpoints += 1,
        }
        self.stats.snapshot_bytes_written += info.bytes_written;
        self.stats.chain_len = info.chain_len;
        self.ckpt_lsn = seal.lsn;
        self.ckpt_version = store_version;
        self.log.rotate(Self::codec_hint(self.opts.codec))?;
        Ok(Outcome::Checkpointed { lsn: seal.lsn })
    }

    /// Number of statements currently in the operation log (diagnostics).
    pub fn log_len(&self) -> Result<usize, EngineError> {
        Ok(self.log.len()?)
    }
}

impl Backend for DurableEngine {
    fn execute(&mut self, src: &str) -> Result<Vec<Outcome>, EngineError> {
        DurableEngine::execute(self, src)
    }

    // Pure queries never touch the log, but a poisoned engine refuses
    // them too: its in-memory state holds a mutation the log could not
    // acknowledge, so answers would reflect un-durable data.
    fn query(&mut self, src: &str) -> Result<idl_eval::AnswerSet, EngineError> {
        self.check_poisoned()?;
        self.engine.query(src)
    }

    fn update(&mut self, src: &str) -> Result<Outcome, EngineError> {
        DurableEngine::update(self, src)
    }

    fn update_group(&mut self, srcs: &[String]) -> Vec<Result<Outcome, EngineError>> {
        DurableEngine::update_group(self, srcs)
    }

    fn execute_sql(&mut self, _src: &str) -> Result<Outcome, EngineError> {
        Err(EngineError::Usage(
            "SQL-sugar mutations would bypass the operation log; not available on a durable backend"
                .into(),
        ))
    }

    fn refresh_views(&mut self) -> Result<idl_eval::rules::FixpointStats, EngineError> {
        // Derived state is re-derivable code output, never logged.
        self.engine.refresh_views()
    }

    fn stats(&self) -> &idl_eval::rules::FixpointStats {
        self.engine.last_fixpoint_stats()
    }

    fn snapshot(&mut self) -> Result<EngineSnapshot, EngineError> {
        self.check_poisoned()?;
        self.engine.refresh_views_if_stale()?;
        EngineSnapshot::of(&self.engine)
    }

    fn options(&self) -> crate::engine::EngineOptions {
        self.engine.options()
    }

    fn set_options(&mut self, options: crate::engine::EngineOptions) {
        self.engine.set_options(options)
    }

    fn checkpoint(&mut self) -> Result<Outcome, EngineError> {
        DurableEngine::checkpoint(self)
    }

    fn is_durable(&self) -> bool {
        true
    }

    fn durability_stats(&self) -> Option<DurabilityStats> {
        Some(DurableEngine::durability_stats(self))
    }

    fn storage_spec(&self) -> Option<StorageSpec> {
        Some(DurableEngine::storage_spec(self))
    }

    fn is_poisoned(&self) -> bool {
        DurableEngine::is_poisoned(self)
    }

    fn analyze(&self, src: &str) -> Result<Vec<idl_eval::analyze::BindingIssue>, EngineError> {
        self.engine.analyze(src)
    }

    fn explain(&self, src: &str) -> Result<String, EngineError> {
        self.engine.explain(src)
    }

    fn universe_json(&self) -> Result<String, EngineError> {
        self.engine.universe_json()
    }

    fn save_snapshot(&self, path: &Path) -> Result<(), EngineError> {
        self.engine.save_snapshot(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use idl_storage::persist;
    use idl_storage::vfs::{FaultPlan, SimVfs};

    fn fresh_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("idl-durable-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn sim_open(vfs: &Arc<SimVfs>, opts: DurabilityOptions) -> Result<DurableEngine, EngineError> {
        let v: Arc<dyn Vfs> = Arc::clone(vfs) as Arc<dyn Vfs>;
        DurableEngine::open_with_vfs("/d", v, opts, |_| Ok(()))
    }

    #[test]
    fn log_and_recover() {
        let dir = fresh_dir("basic");
        {
            let mut d = DurableEngine::open(&dir).unwrap();
            d.update("?.euter.r+(.date=3/3/85,.stkCode=hp,.clsPrice=50)").unwrap();
            d.update("?.euter.r+(.date=3/4/85,.stkCode=hp,.clsPrice=62)").unwrap();
            d.update("?.euter.r-(.date=3/3/85,.stkCode=hp)").unwrap();
            assert_eq!(d.log_len().unwrap(), 3);
            assert_eq!(d.last_lsn(), 3);
            // engine dropped without checkpoint: only the log survives
        }
        let mut d = DurableEngine::open(&dir).unwrap();
        assert!(d.query("?.euter.r(.date=3/4/85,.stkCode=hp)").unwrap().is_true());
        assert!(!d.query("?.euter.r(.date=3/3/85)").unwrap().is_true());
        assert_eq!(d.durability_stats().records_recovered, 3);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn checkpoint_truncates_and_recovers() {
        let dir = fresh_dir("checkpoint");
        {
            let mut d = DurableEngine::open(&dir).unwrap();
            d.update("?.db.r+(.a=1)").unwrap();
            let out = d.checkpoint().unwrap();
            assert!(matches!(out, Outcome::Checkpointed { lsn: 1 }), "{out:?}");
            assert_eq!(d.log_len().unwrap(), 0);
            d.update("?.db.r+(.a=2)").unwrap();
            assert_eq!(d.log_len().unwrap(), 1);
        }
        let mut d = DurableEngine::open(&dir).unwrap();
        let a = d.query("?.db.r(.a=X)").unwrap();
        assert_eq!(a.column("X").len(), 2, "snapshot + log both replayed");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn pure_queries_and_noops_not_logged() {
        let dir = fresh_dir("noop");
        let mut d = DurableEngine::open(&dir).unwrap();
        d.update("?.db.r+(.a=1)").unwrap();
        d.update("?.db.r(.a=X)").unwrap(); // pure query
        d.update("?.db.r+(.a=1)").unwrap(); // duplicate: zero mutations
        d.update("?.db.r-(.a=99)").unwrap(); // delete miss: zero mutations
        assert_eq!(d.log_len().unwrap(), 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_log_reported() {
        let dir = fresh_dir("corrupt");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("ops.idl"), "?this is (not idl\n").unwrap();
        let Err(err) = DurableEngine::open(&dir).map(|_| ()) else {
            panic!("corrupt log must be rejected")
        };
        assert!(err.to_string().contains("corrupt log at line 1"), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn clauses_rejected_from_durable_path() {
        let dir = fresh_dir("clauses");
        let mut d = DurableEngine::open(&dir).unwrap();
        assert!(d.update(".a.b(.x=X) <- .c.d(.x=X)").is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn update_programs_replay_through_log() {
        // program *calls* are logged in canonical form; reinstalling the
        // programs before recovery replays them correctly
        let dir = fresh_dir("programs");
        {
            let mut d = DurableEngine::open(&dir).unwrap();
            d.execute(".dbU.put(.k=K, .v=V) -> .kv.data+(.k=K, .v=V) ;").unwrap();
            d.update("?.dbU.put(.k=a, .v=1)").unwrap();
            d.update("?.dbU.put(.k=b, .v=2)").unwrap();
        }
        let mut d = DurableEngine::open_with(&dir, |e| {
            e.execute(".dbU.put(.k=K, .v=V) -> .kv.data+(.k=K, .v=V) ;").map(|_| ())
        })
        .unwrap();
        assert_eq!(d.query("?.kv.data(.k=K,.v=V)").unwrap().len(), 2);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn fresh_log_is_framed_with_magic() {
        let dir = fresh_dir("framed");
        let mut d = DurableEngine::open(&dir).unwrap();
        d.update("?.db.r+(.a=1)").unwrap();
        let bytes = std::fs::read(dir.join("ops.idl")).unwrap();
        assert!(bytes.starts_with(oplog::MAGIC), "fresh logs use the framed format");
        let log = oplog::decode_log(&bytes).unwrap();
        assert_eq!(log.records.len(), 1);
        assert_eq!(log.records[0].lsn, 1);
        assert_eq!(log.records[0].stmt, "?.db.r+(.a = 1)", "canonical surface form logged");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn legacy_line_log_replays_and_migrates_to_framed() {
        let dir = fresh_dir("migrate");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(
            dir.join("ops.idl"),
            "?.db.r+(.a=1)\n% a comment\n?.db.r+(.a=2)\n?.db.r+(.a=",
        )
        .unwrap();
        let mut d = DurableEngine::open(&dir).unwrap();
        assert_eq!(d.query("?.db.r(.a=X)").unwrap().column("X").len(), 2);
        let stats = d.durability_stats();
        assert!(stats.migrated_legacy);
        assert_eq!(stats.records_recovered, 2);
        assert_eq!(stats.torn_bytes_truncated, "?.db.r+(.a=".len() as u64);
        let bytes = std::fs::read(dir.join("ops.idl")).unwrap();
        assert!(bytes.starts_with(oplog::MAGIC), "log migrated to framed");
        // appends continue after migration and everything replays again
        d.update("?.db.r+(.a=3)").unwrap();
        drop(d);
        let mut d = DurableEngine::open(&dir).unwrap();
        assert_eq!(d.query("?.db.r(.a=X)").unwrap().column("X").len(), 3);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn sync_happens_before_ack() {
        let vfs = Arc::new(SimVfs::new(FaultPlan::none(7)));
        let mut d = sim_open(&vfs, DurabilityOptions::default()).unwrap();
        let before = vfs.stats().file_syncs;
        d.update("?.db.r+(.a=1)").unwrap();
        assert!(vfs.stats().file_syncs > before, "ack without a log fsync");
        assert_eq!(d.durability_stats().log_syncs, 1);

        // the Never policy skips the fsync (ablation mode)
        let vfs2 = Arc::new(SimVfs::new(FaultPlan::none(8)));
        let mut d2 =
            sim_open(&vfs2, crate::EngineOptions::builder().sync(SyncPolicy::Never).durability())
                .unwrap();
        let before = vfs2.stats().file_syncs;
        d2.update("?.db.r+(.a=1)").unwrap();
        assert_eq!(vfs2.stats().file_syncs, before);
        assert_eq!(d2.durability_stats().log_syncs, 0);
    }

    #[test]
    fn failed_append_poisons_and_reopen_recovers() {
        // ENOSPC on the log append: the update reports failure, the
        // engine poisons, and a reopen sees none of the failed update.
        // First a fault-free probe run to find the op index of the second
        // update's append, then an armed run hitting exactly that op.
        let (after_first_update, after_second_update) = {
            let probe = Arc::new(SimVfs::new(FaultPlan::none(9)));
            let mut p = sim_open(&probe, DurabilityOptions::default()).unwrap();
            p.update("?.db.r+(.a=1)").unwrap();
            let a = probe.op_count();
            p.update("?.db.r+(.a=2)").unwrap();
            (a, probe.op_count())
        };
        // the append is the first op of the second update's log window
        let target = after_first_update + 1;
        assert!(target <= after_second_update);
        let vfs = Arc::new(SimVfs::new(FaultPlan::none(9).with_enospc_at(target)));
        let mut d = sim_open(&vfs, DurabilityOptions::default()).unwrap();
        d.update("?.db.r+(.a=1)").unwrap();
        let err = d.update("?.db.r+(.a=2)").unwrap_err();
        assert!(err.to_string().contains("log"), "{err}");
        assert!(d.is_poisoned());
        assert!(d.update("?.db.r+(.a=3)").is_err(), "poisoned engine refuses work");
        assert!(d.checkpoint().is_err(), "poisoned engine refuses checkpoints");
        drop(d);
        let mut d = sim_open(&vfs, DurabilityOptions::default()).unwrap();
        let col = d.query("?.db.r(.a=X)").unwrap();
        assert_eq!(col.column("X").len(), 1, "only the acknowledged update survives");
    }

    fn install_view(e: &mut Engine) -> Result<(), EngineError> {
        e.execute(".v.all(.x=X) <- .db.r(.a=X) ;").map(|_| ())
    }

    #[test]
    fn checkpointed_maintenance_state_resumes_maintained_replay() {
        let dir = fresh_dir("maint-ckpt");
        {
            let mut d = DurableEngine::open_with(&dir, install_view).unwrap();
            d.update("?.db.r+(.a=1)").unwrap(); // views stale: unflagged
            d.query("?.v.all(.x=X)").unwrap(); // refresh materialises .v.all
            d.update("?.db.r+(.a=2)").unwrap(); // maintained in-transaction
            assert_eq!(d.durability_stats().maintenance_records_appended, 1);
            d.checkpoint().unwrap(); // views fresh: state rides the snapshot
            d.update("?.db.r+(.a=3)").unwrap(); // maintained, in the fresh log
        }
        let mut d = DurableEngine::open_with(&dir, install_view).unwrap();
        let stats = d.durability_stats();
        assert!(stats.maintenance_state_adopted, "snapshot state must be adopted");
        assert_eq!(stats.maintenance_records_replayed, 1);
        assert_eq!(stats.maintenance_fallbacks, 0, "replay maintained, no rebuild");
        assert_eq!(d.query("?.v.all(.x=X)").unwrap().column("X").len(), 3);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn maintenance_replay_fallback_is_detected_not_silent() {
        let dir = fresh_dir("maint-fallback");
        {
            let mut d = DurableEngine::open_with(&dir, install_view).unwrap();
            d.update("?.db.r+(.a=1)").unwrap();
            d.query("?.v.all(.x=X)").unwrap();
            d.update("?.db.r+(.a=2)").unwrap(); // flagged
        }
        // Reopen configured without write-path maintenance (the reference
        // mode): the flagged record replays through the rebuild path, and
        // the stats must say so instead of pretending.
        let mut d = DurableEngine::open_with(&dir, |e| {
            install_view(e)?;
            e.set_options(crate::engine::EngineOptions::builder().maintain(false).build());
            Ok(())
        })
        .unwrap();
        let stats = d.durability_stats();
        assert!(!stats.maintenance_state_adopted, "nothing checkpointed to adopt");
        assert_eq!(stats.maintenance_records_replayed, 1);
        assert_eq!(stats.maintenance_fallbacks, 1);
        assert_eq!(d.query("?.v.all(.x=X)").unwrap().column("X").len(), 2);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn update_group_coalesces_one_sync_for_all_records() {
        let vfs = Arc::new(SimVfs::new(FaultPlan::none(11)));
        let mut d = sim_open(&vfs, DurabilityOptions::default()).unwrap();
        let before = vfs.stats().file_syncs;
        let srcs: Vec<String> = (0..4).map(|i| format!("?.db.r+(.a={i})")).collect();
        let results = d.update_group(&srcs);
        assert!(results.iter().all(|r| r.is_ok()));
        assert_eq!(vfs.stats().file_syncs, before + 1, "one fsync for the whole group");
        let stats = d.durability_stats();
        assert_eq!(stats.group_commits, 1);
        assert_eq!(stats.group_commit_records, 4);
        assert_eq!(stats.records_appended, 4);
        assert_eq!(stats.log_syncs, 1);
        assert_eq!(d.last_lsn(), 4);
        // mixed group: queries/no-ops don't log, a bad entry doesn't
        // abort its neighbours
        let mixed = vec![
            "?.db.r(.a=X)".to_string(),         // pure query
            "?.db.r+(.a=0)".to_string(),        // duplicate: zero mutations
            ".a(.x=X) <- .b(.x=X)".to_string(), // clause: E-USAGE
            "?.db.r+(.a=9)".to_string(),        // the only logged record
        ];
        let results = d.update_group(&mixed);
        assert!(results[0].is_ok() && results[1].is_ok() && results[3].is_ok());
        assert_eq!(results[2].as_ref().unwrap_err().code(), "E-USAGE");
        assert_eq!(d.durability_stats().group_commit_records, 5);
        assert_eq!(d.last_lsn(), 5);
    }

    #[test]
    fn update_group_replays_like_single_updates() {
        let dir = fresh_dir("group-replay");
        {
            let mut d = DurableEngine::open(&dir).unwrap();
            let srcs: Vec<String> = (0..5).map(|i| format!("?.db.r+(.a={i})")).collect();
            assert!(d.update_group(&srcs).iter().all(|r| r.is_ok()));
        }
        let mut d = DurableEngine::open(&dir).unwrap();
        assert_eq!(d.durability_stats().records_recovered, 5);
        assert_eq!(d.query("?.db.r(.a=X)").unwrap().column("X").len(), 5);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn failed_group_sync_unacks_every_member() {
        // probe the op window of a 3-update group's single append+sync
        let srcs: Vec<String> = (0..3).map(|i| format!("?.db.r+(.a={i})")).collect();
        let (before_group, after_group) = {
            let probe = Arc::new(SimVfs::new(FaultPlan::none(12)));
            let mut p = sim_open(&probe, DurabilityOptions::default()).unwrap();
            let a = probe.op_count();
            assert!(p.update_group(&srcs).iter().all(|r| r.is_ok()));
            (a, probe.op_count())
        };
        assert_eq!(after_group - before_group, 2, "group commit is append + sync");
        // ENOSPC the coalesced append (a seeded partial application of
        // the group's bytes lands, then the call fails): every member
        // must be un-acked, and a reopen must see none of them
        let vfs = Arc::new(SimVfs::new(FaultPlan::none(12).with_enospc_at(before_group + 1)));
        let mut d = sim_open(&vfs, DurabilityOptions::default()).unwrap();
        let results = d.update_group(&srcs);
        assert!(results.iter().all(|r| r.is_err()), "no member acked past a failed sync");
        assert!(d.is_poisoned());
        drop(d);
        let mut d = sim_open(&vfs, DurabilityOptions::default()).unwrap();
        assert!(!d.query("?.db.r(.a=X)").unwrap().is_true(), "unacked group not resurrected");
    }

    #[test]
    fn checkpoints_default_to_binary_snapshots() {
        // The subject here is the *default codec*; the IDL_CODEC
        // override legitimately changes it, so this test only runs
        // unset. Storage is pinned to mem — the snapshot file under
        // inspection only exists on that backend.
        if std::env::var_os("IDL_CODEC").is_some() {
            return;
        }
        let mem_default =
            || DurabilityOptions { storage: StorageSpec::Mem, ..DurabilityOptions::default() };
        let open_mem = |dir: &std::path::Path| {
            DurableEngine::open_with_vfs(dir, Arc::new(RealVfs::new()), mem_default(), |_| Ok(()))
        };
        let dir = fresh_dir("binary-ckpt");
        {
            let mut d = open_mem(&dir).unwrap();
            d.update("?.db.r+(.a=1)").unwrap();
            d.checkpoint().unwrap();
        }
        let bytes = std::fs::read(dir.join("universe.json")).unwrap();
        assert!(bytes.starts_with(idl_storage::codec::SNAPSHOT_MAGIC));
        let log = std::fs::read(dir.join("ops.idl")).unwrap();
        let recovered = oplog::decode_log(&log).unwrap();
        assert_eq!(recovered.version, oplog::FORMAT_VERSION);
        assert_eq!(recovered.codec_hint, oplog::CODEC_HINT_BINARY);
        let mut d = open_mem(&dir).unwrap();
        assert!(d.query("?.db.r(.a=1)").unwrap().is_true());
        assert_eq!(d.durability_stats().codec, SnapshotCodec::Binary);
        std::fs::remove_dir_all(&dir).ok();
    }

    // Tests below assert snapshot-file and codec-specific artifacts
    // that only the mem backend produces, so they pin both the codec
    // and the storage backend instead of inheriting the IDL_CODEC- /
    // IDL_STORAGE-sensitive defaults.
    fn json_opts() -> DurabilityOptions {
        DurabilityOptions {
            codec: SnapshotCodec::Json,
            storage: StorageSpec::Mem,
            ..DurabilityOptions::default()
        }
    }

    fn bin_opts() -> DurabilityOptions {
        DurabilityOptions {
            codec: SnapshotCodec::Binary,
            storage: StorageSpec::Mem,
            ..DurabilityOptions::default()
        }
    }

    #[test]
    fn second_checkpoint_is_a_delta_and_recovery_replays_the_chain() {
        let vfs = Arc::new(SimVfs::new(FaultPlan::none(31)));
        {
            let mut d = sim_open(&vfs, bin_opts()).unwrap();
            d.update("?.db.r+(.a=1)").unwrap();
            for i in 0..50 {
                d.update(&format!("?.bulk.rows+(.k={i}, .payload=somelongatomvalue{i})")).unwrap();
            }
            d.checkpoint().unwrap(); // full: no base yet
            assert_eq!(d.durability_stats().full_checkpoints, 1);
            d.update("?.db.r+(.a=2)").unwrap();
            d.update("?.other.s+(.b=1)").unwrap();
            d.checkpoint().unwrap(); // delta 1
            d.update("?.db.r-(.a=1)").unwrap();
            d.checkpoint().unwrap(); // delta 2
            let stats = d.durability_stats();
            assert_eq!(stats.delta_checkpoints, 2);
            assert_eq!(stats.chain_len, 2);
            assert!(vfs.exists(Path::new("/d/universe.delta.1")));
            assert!(vfs.exists(Path::new("/d/universe.delta.2")));
            // the deltas only carry the dirtied slots, not the universe
            let base = vfs.read(Path::new("/d/universe.json")).unwrap();
            let d2 = vfs.read(Path::new("/d/universe.delta.2")).unwrap();
            assert!(d2.len() < base.len());
            d.update("?.tail.t+(.c=9)").unwrap(); // rides the log tail
        }
        let mut d = sim_open(&vfs, bin_opts()).unwrap();
        assert_eq!(d.durability_stats().chain_len, 2, "chain adopted at open");
        assert!(!d.query("?.db.r(.a=1)").unwrap().is_true(), "delta-2 delete applied");
        assert!(d.query("?.db.r(.a=2)").unwrap().is_true());
        assert!(d.query("?.other.s(.b=1)").unwrap().is_true());
        assert!(d.query("?.tail.t(.c=9)").unwrap().is_true(), "log tail replayed on top");
        assert_eq!(d.durability_stats().records_recovered, 1, "only the tail replays");
    }

    #[test]
    fn chain_compacts_at_the_cap_and_on_demand() {
        let vfs = Arc::new(SimVfs::new(FaultPlan::none(32)));
        let opts =
            DurabilityOptions { checkpoint: CheckpointPolicy::Auto { max_chain: 2 }, ..bin_opts() };
        let mut d = sim_open(&vfs, opts).unwrap();
        d.update("?.db.r+(.a=0)").unwrap();
        d.checkpoint().unwrap(); // full
        for i in 1..=2 {
            d.update(&format!("?.db.r+(.a={i})")).unwrap();
            d.checkpoint().unwrap(); // deltas 1, 2
        }
        assert_eq!(d.durability_stats().chain_len, 2);
        d.update("?.db.r+(.a=3)").unwrap();
        d.checkpoint().unwrap(); // chain at cap: compacts to a new full
        let stats = d.durability_stats();
        assert_eq!(stats.full_checkpoints, 2);
        assert_eq!(stats.chain_len, 0);
        assert!(!vfs.exists(Path::new("/d/universe.delta.1")), "chain swept");
        // explicit full compaction regardless of chain headroom
        d.update("?.db.r+(.a=4)").unwrap();
        d.checkpoint().unwrap(); // delta again (fresh chain)
        assert_eq!(d.durability_stats().chain_len, 1);
        d.checkpoint_full().unwrap();
        assert_eq!(d.durability_stats().chain_len, 0);
        assert!(!vfs.exists(Path::new("/d/universe.delta.1")));
        // policy Full never writes deltas
        let vfs2 = Arc::new(SimVfs::new(FaultPlan::none(33)));
        let opts2 = DurabilityOptions { checkpoint: CheckpointPolicy::Full, ..bin_opts() };
        let mut d2 = sim_open(&vfs2, opts2).unwrap();
        d2.update("?.db.r+(.a=1)").unwrap();
        d2.checkpoint().unwrap();
        d2.update("?.db.r+(.a=2)").unwrap();
        d2.checkpoint().unwrap();
        let stats = d2.durability_stats();
        assert_eq!((stats.full_checkpoints, stats.delta_checkpoints), (2, 0));
    }

    #[test]
    fn lost_chain_member_reports_recovery_gap() {
        // A lying disk can lose a delta the log rotation already
        // trusted; recovery must refuse to assemble the gapped history
        // (base + log tail skipping the delta's updates), not silently
        // serve a non-prefix state.
        let vfs = Arc::new(SimVfs::new(FaultPlan::none(37)));
        let opts = bin_opts();
        {
            let mut d = sim_open(&vfs, opts).unwrap();
            d.update("?.db.r+(.a=1)").unwrap();
            d.checkpoint().unwrap(); // full base, covers lsn 1
            d.update("?.db.r+(.a=2)").unwrap();
            d.checkpoint().unwrap(); // delta 1, covers lsn 2
            d.update("?.db.r+(.a=3)").unwrap(); // lsn 3, log tail
            assert_eq!(d.durability_stats().chain_len, 1);
        }
        vfs.remove_file(Path::new("/d/universe.delta.1")).unwrap();
        let Err(err) = sim_open(&vfs, opts) else { panic!("gapped history must not open") };
        assert!(
            err.to_string().contains("recovery gap"),
            "expected a recovery-gap report, got: {err}"
        );
    }

    #[test]
    fn json_snapshot_dir_migrates_to_binary_on_open() {
        let vfs = Arc::new(SimVfs::new(FaultPlan::none(34)));
        {
            let mut d = sim_open(&vfs, json_opts()).unwrap();
            d.update("?.db.r+(.a=1)").unwrap();
            d.checkpoint().unwrap();
            d.update("?.db.r+(.a=2)").unwrap(); // in the log tail
            let bytes = vfs.read(Path::new("/d/universe.json")).unwrap();
            assert!(bytes.starts_with(b"{"), "json codec writes the JSON wrapper");
            assert_eq!(d.durability_stats().codec, SnapshotCodec::Json);
        }
        // reopen with the binary codec: one-shot migration
        let mut d = sim_open(&vfs, bin_opts()).unwrap();
        let stats = d.durability_stats();
        assert!(stats.migrated_snapshot);
        assert_eq!(d.query("?.db.r(.a=X)").unwrap().column("X").len(), 2);
        let bytes = vfs.read(Path::new("/d/universe.json")).unwrap();
        assert!(bytes.starts_with(idl_storage::codec::SNAPSHOT_MAGIC));
        // and the migrated base supports delta checkpoints immediately
        d.update("?.db.r+(.a=3)").unwrap();
        d.checkpoint().unwrap();
        assert_eq!(d.durability_stats().delta_checkpoints, 1);
        drop(d);
        let mut d = sim_open(&vfs, bin_opts()).unwrap();
        assert!(!d.durability_stats().migrated_snapshot, "migration is one-shot");
        assert_eq!(d.query("?.db.r(.a=X)").unwrap().column("X").len(), 3);
    }

    #[test]
    fn opening_binary_dir_with_json_codec_keeps_working() {
        let vfs = Arc::new(SimVfs::new(FaultPlan::none(35)));
        {
            let mut d = sim_open(&vfs, bin_opts()).unwrap();
            d.update("?.db.r+(.a=1)").unwrap();
            d.checkpoint().unwrap();
            d.update("?.db.r+(.a=2)").unwrap();
            d.checkpoint().unwrap(); // delta 1
            assert_eq!(d.durability_stats().chain_len, 1);
        }
        // no downgrade on open; the next checkpoint writes JSON and
        // clears the chain
        let mut d = sim_open(&vfs, json_opts()).unwrap();
        assert_eq!(d.query("?.db.r(.a=X)").unwrap().column("X").len(), 2);
        d.update("?.db.r+(.a=3)").unwrap();
        d.checkpoint().unwrap();
        assert_eq!(d.durability_stats().delta_checkpoints, 0);
        assert!(vfs.read(Path::new("/d/universe.json")).unwrap().starts_with(b"{"));
        assert!(!vfs.exists(Path::new("/d/universe.delta.1")), "chain cleared");
        drop(d);
        let mut d = sim_open(&vfs, json_opts()).unwrap();
        assert_eq!(d.query("?.db.r(.a=X)").unwrap().column("X").len(), 3);
    }

    #[test]
    fn unscoped_universe_changes_force_a_full_checkpoint() {
        let vfs = Arc::new(SimVfs::new(FaultPlan::none(36)));
        let mut d = sim_open(&vfs, DurabilityOptions::default()).unwrap();
        d.update("?.db.r+(.a=1)").unwrap();
        d.checkpoint().unwrap();
        // a failing request rolls its transaction back, recording
        // ChangeScope::Universe in the store journal
        assert!(d.update("?.db.r+(.a=X)").is_err(), "unbound insert must fail");
        d.update("?.db.r+(.a=3)").unwrap();
        d.checkpoint().unwrap();
        let stats = d.durability_stats();
        assert_eq!(stats.full_checkpoints, 2, "universe scope cannot ride a delta");
        assert_eq!(stats.delta_checkpoints, 0);
    }

    #[test]
    #[allow(deprecated)] // forges a legacy on-disk layout by hand
    fn stale_deltas_from_an_older_generation_are_ignored_and_swept() {
        let vfs = Arc::new(SimVfs::new(FaultPlan::none(37)));
        {
            let mut d = sim_open(&vfs, DurabilityOptions::default()).unwrap();
            d.update("?.db.r+(.a=1)").unwrap();
            d.checkpoint().unwrap();
            d.update("?.db.r+(.a=2)").unwrap();
            d.checkpoint().unwrap(); // delta 1 (gen 1)
        }
        // simulate the crash window of a later full checkpoint: the new
        // base (gen 2) renamed into place but the chain sweep never ran
        {
            let mut d = sim_open(&vfs, DurabilityOptions::default()).unwrap();
            d.update("?.db.r+(.a=3)").unwrap();
            let entries = d.delta_entries().unwrap();
            assert!(!entries.is_empty());
            persist::save_snapshot_vfs_codec(
                d.vfs.as_ref(),
                d.engine.store(),
                &DurableEngine::snapshot_path(Path::new("/d")),
                SnapshotCodec::Binary,
                2,
                d.last_lsn(),
                true,
                None,
            )
            .unwrap();
            // delta 1 still on disk, now stale (gen 1 != 2)
        }
        let mut d = sim_open(&vfs, DurabilityOptions::default()).unwrap();
        assert_eq!(d.durability_stats().chain_len, 0, "stale delta rejected");
        assert!(!vfs.exists(Path::new("/d/universe.delta.1")), "stale delta swept");
        assert_eq!(d.query("?.db.r(.a=X)").unwrap().column("X").len(), 3);
    }

    #[test]
    fn maintenance_state_rides_the_newest_chain_artifact() {
        let vfs = Arc::new(SimVfs::new(FaultPlan::none(38)));
        let open = |vfs: &Arc<SimVfs>| {
            let v: Arc<dyn Vfs> = Arc::clone(vfs) as Arc<dyn Vfs>;
            DurableEngine::open_with_vfs("/d", v, bin_opts(), install_view)
        };
        {
            let mut d = open(&vfs).unwrap();
            d.update("?.db.r+(.a=1)").unwrap();
            d.checkpoint().unwrap(); // full, views stale: no blob
            d.query("?.v.all(.x=X)").unwrap(); // materialise
            d.update("?.db.r+(.a=2)").unwrap(); // maintained
            d.checkpoint().unwrap(); // delta 1 carries the blob
            assert_eq!(d.durability_stats().delta_checkpoints, 1);
        }
        let d = open(&vfs).unwrap();
        assert!(
            d.durability_stats().maintenance_state_adopted,
            "state from the newest delta adopted"
        );
    }

    #[test]
    fn execute_logs_requests_and_installs_rules() {
        let dir = fresh_dir("script");
        {
            let mut d = DurableEngine::open(&dir).unwrap();
            let outs = d
                .execute(
                    ".v.all(.x=X) <- .db.r(.a=X) ;\n?.db.r+(.a=1) ;\n?.db.r+(.a=2) ;\n?.v.all(.x=X)",
                )
                .unwrap();
            assert_eq!(outs.len(), 4);
            assert_eq!(d.log_len().unwrap(), 2, "only the mutating requests are logged");
        }
        let mut d = DurableEngine::open(&dir).unwrap();
        assert_eq!(d.query("?.db.r(.a=X)").unwrap().column("X").len(), 2);
        std::fs::remove_dir_all(&dir).ok();
    }
}
