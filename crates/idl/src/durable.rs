//! Durability: snapshot + operation log.
//!
//! The storage layer persists point-in-time JSON snapshots
//! ([`idl_storage::persist`]); this module adds the other half of the
//! classic recipe — an **append-only operation log**. Every successful
//! *mutating* request is appended in canonical IDL surface syntax (one
//! statement per line, which is also pleasantly greppable), and recovery
//! is snapshot + replay:
//!
//! ```no_run
//! use idl::durable::DurableEngine;
//! let mut d = DurableEngine::open("./stocks")?;
//! d.engine().execute(idl::transparency::standard_update_programs())?;
//! d.update("?.dbU.insStk(.stk=hp, .date=3/3/85, .price=50)")?;  // logged
//! d.checkpoint()?;                                // snapshot + truncate log
//! # Ok::<(), idl::EngineError>(())
//! ```
//!
//! Rules and update programs are *code*: they are not logged, and the
//! application reinstalls them after `open` (the same policy as snapshot
//! loading; see `tests/integration_pipeline.rs`).

use crate::engine::Engine;
use crate::error::EngineError;
use crate::outcome::Outcome;
use idl_lang::{parse_statement, Statement};
use std::fs::{File, OpenOptions};
use std::io::{BufRead, BufReader, Write};
use std::path::{Path, PathBuf};

/// An [`Engine`] wrapped with snapshot + operation-log durability rooted
/// at a directory (`universe.json` + `ops.idl`).
pub struct DurableEngine {
    engine: Engine,
    dir: PathBuf,
    log: File,
}

impl DurableEngine {
    fn snapshot_path(dir: &Path) -> PathBuf {
        dir.join("universe.json")
    }

    fn log_path(dir: &Path) -> PathBuf {
        dir.join("ops.idl")
    }

    /// Opens (or creates) a durable engine at `dir`: loads the snapshot if
    /// present, replays the operation log, and keeps the log open for
    /// appending.
    pub fn open(dir: impl Into<PathBuf>) -> Result<Self, EngineError> {
        Self::open_with(dir, |_| Ok(()))
    }

    /// Like [`DurableEngine::open`], running `setup` (typically rule and
    /// update-program installation) after the snapshot loads but *before*
    /// the log replays — logged program calls then resolve correctly.
    pub fn open_with(
        dir: impl Into<PathBuf>,
        setup: impl FnOnce(&mut Engine) -> Result<(), EngineError>,
    ) -> Result<Self, EngineError> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)
            .map_err(|e| EngineError::Storage(format!("create {}: {e}", dir.display())))?;
        let snap = Self::snapshot_path(&dir);
        let mut engine = if snap.exists() { Engine::load_snapshot(&snap)? } else { Engine::new() };
        setup(&mut engine)?;
        // Replay the log (if any) against the snapshot state.
        let log_path = Self::log_path(&dir);
        if log_path.exists() {
            let reader = BufReader::new(
                File::open(&log_path)
                    .map_err(|e| EngineError::Storage(format!("open log: {e}")))?,
            );
            for (no, line) in reader.lines().enumerate() {
                let line = line.map_err(|e| EngineError::Storage(format!("read log: {e}")))?;
                let line = line.trim();
                if line.is_empty() || line.starts_with('%') {
                    continue;
                }
                let stmt = parse_statement(line).map_err(|e| {
                    EngineError::Storage(format!("corrupt log at line {}: {e}", no + 1))
                })?;
                engine.execute_statement(stmt)?;
            }
        }
        let log = OpenOptions::new()
            .create(true)
            .append(true)
            .open(&log_path)
            .map_err(|e| EngineError::Storage(format!("open log for append: {e}")))?;
        Ok(DurableEngine { engine, dir, log })
    }

    /// The wrapped engine, for non-durable operations (queries, installing
    /// rules/programs, configuration).
    pub fn engine(&mut self) -> &mut Engine {
        &mut self.engine
    }

    /// Read access to the wrapped engine.
    pub fn engine_ref(&self) -> &Engine {
        &self.engine
    }

    /// Executes one request statement durably: on success *with mutations*
    /// the canonical form is appended (and flushed) to the operation log.
    pub fn update(&mut self, src: &str) -> Result<Outcome, EngineError> {
        let stmt = parse_statement(src)?;
        let canonical = match &stmt {
            Statement::Request(r) => r.to_string(),
            _ => {
                return Err(EngineError::Usage(
                    "durable update takes a request; install rules/programs via engine()".into(),
                ))
            }
        };
        let outcome = self.engine.execute_statement(stmt)?;
        let mutated = matches!(&outcome, Outcome::Answers { stats, .. } if stats.total() > 0);
        if mutated {
            writeln!(self.log, "{canonical}")
                .and_then(|()| self.log.flush())
                .map_err(|e| EngineError::Storage(format!("append log: {e}")))?;
        }
        Ok(outcome)
    }

    /// Writes a fresh snapshot and truncates the operation log — recovery
    /// afterwards starts from the snapshot alone.
    pub fn checkpoint(&mut self) -> Result<(), EngineError> {
        self.engine.save_snapshot(&Self::snapshot_path(&self.dir))?;
        self.log = OpenOptions::new()
            .create(true)
            .write(true)
            .truncate(true)
            .open(Self::log_path(&self.dir))
            .map_err(|e| EngineError::Storage(format!("truncate log: {e}")))?;
        Ok(())
    }

    /// Number of statements currently in the operation log (diagnostics).
    pub fn log_len(&self) -> Result<usize, EngineError> {
        let path = Self::log_path(&self.dir);
        if !path.exists() {
            return Ok(0);
        }
        let reader =
            BufReader::new(File::open(&path).map_err(|e| EngineError::Storage(e.to_string()))?);
        Ok(reader.lines().map_while(Result::ok).filter(|l| !l.trim().is_empty()).count())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fresh_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("idl-durable-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn log_and_recover() {
        let dir = fresh_dir("basic");
        {
            let mut d = DurableEngine::open(&dir).unwrap();
            d.update("?.euter.r+(.date=3/3/85,.stkCode=hp,.clsPrice=50)").unwrap();
            d.update("?.euter.r+(.date=3/4/85,.stkCode=hp,.clsPrice=62)").unwrap();
            d.update("?.euter.r-(.date=3/3/85,.stkCode=hp)").unwrap();
            assert_eq!(d.log_len().unwrap(), 3);
            // engine dropped without checkpoint: only the log survives
        }
        let mut d = DurableEngine::open(&dir).unwrap();
        assert!(d.engine().query("?.euter.r(.date=3/4/85,.stkCode=hp)").unwrap().is_true());
        assert!(!d.engine().query("?.euter.r(.date=3/3/85)").unwrap().is_true());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn checkpoint_truncates_and_recovers() {
        let dir = fresh_dir("checkpoint");
        {
            let mut d = DurableEngine::open(&dir).unwrap();
            d.update("?.db.r+(.a=1)").unwrap();
            d.checkpoint().unwrap();
            assert_eq!(d.log_len().unwrap(), 0);
            d.update("?.db.r+(.a=2)").unwrap();
            assert_eq!(d.log_len().unwrap(), 1);
        }
        let mut d = DurableEngine::open(&dir).unwrap();
        let a = d.engine().query("?.db.r(.a=X)").unwrap();
        assert_eq!(a.column("X").len(), 2, "snapshot + log both replayed");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn pure_queries_and_noops_not_logged() {
        let dir = fresh_dir("noop");
        let mut d = DurableEngine::open(&dir).unwrap();
        d.update("?.db.r+(.a=1)").unwrap();
        d.update("?.db.r(.a=X)").unwrap(); // pure query
        d.update("?.db.r+(.a=1)").unwrap(); // duplicate: zero mutations
        d.update("?.db.r-(.a=99)").unwrap(); // delete miss: zero mutations
        assert_eq!(d.log_len().unwrap(), 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_log_reported() {
        let dir = fresh_dir("corrupt");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("ops.idl"), "?this is (not idl\n").unwrap();
        let Err(err) = DurableEngine::open(&dir).map(|_| ()) else {
            panic!("corrupt log must be rejected")
        };
        assert!(err.to_string().contains("corrupt log at line 1"), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn clauses_rejected_from_durable_path() {
        let dir = fresh_dir("clauses");
        let mut d = DurableEngine::open(&dir).unwrap();
        assert!(d.update(".a.b(.x=X) <- .c.d(.x=X)").is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn update_programs_replay_through_log() {
        // program *calls* are logged in canonical form; reinstalling the
        // programs before recovery replays them correctly
        let dir = fresh_dir("programs");
        {
            let mut d = DurableEngine::open(&dir).unwrap();
            d.engine().execute(".dbU.put(.k=K, .v=V) -> .kv.data+(.k=K, .v=V) ;").unwrap();
            d.update("?.dbU.put(.k=a, .v=1)").unwrap();
            d.update("?.dbU.put(.k=b, .v=2)").unwrap();
        }
        let mut d = DurableEngine::open_with(&dir, |e| {
            e.execute(".dbU.put(.k=K, .v=V) -> .kv.data+(.k=K, .v=V) ;").map(|_| ())
        })
        .unwrap();
        assert_eq!(d.engine().query("?.kv.data(.k=K,.v=V)").unwrap().len(), 2);
        std::fs::remove_dir_all(&dir).ok();
    }
}
