//! # `idl` — the Interoperable Database Language engine
//!
//! A from-scratch implementation of the language proposed in
//! *Krishnamurthy, Litwin & Kent, "Language Features for Interoperability
//! of Databases with Schematic Discrepancies", SIGMOD 1991*.
//!
//! IDL is a Horn-clause-based higher-order language for *multidatabase*
//! systems. Its point is schematic discrepancy: the same fact — "hp closed
//! at \$50 on 3/3/85" — may live as a **row** in one database, as an
//! **attribute** in another, and as a **relation** in a third. First-order
//! languages cannot write one query that covers all three; IDL can, because
//! variables range over data *and* metadata:
//!
//! ```
//! use idl::Engine;
//!
//! let mut engine = Engine::with_stock_universe(vec![
//!     ("3/3/85", "hp", 50.0),
//!     ("3/3/85", "ibm", 210.0),
//! ]);
//!
//! // Same intention, three schemata (paper §4.3):
//! assert!(engine.query("?.euter.r(.stkCode=S, .clsPrice>200)").unwrap().is_true());
//! assert!(engine.query("?.chwab.r(.S>200)").unwrap().is_true());
//! assert!(engine.query("?.ource.S(.clsPrice>200)").unwrap().is_true());
//! ```
//!
//! The engine bundles:
//!
//! * the storage substrate ([`idl_storage::Store`]) holding the universe of
//!   databases,
//! * the evaluator ([`idl_eval`]) for higher-order queries and updates,
//! * a **view catalog** of rules (§6) materialised with stratified
//!   fixpoints — including higher-order views whose relation count is
//!   data-dependent,
//! * an **update-program registry** (§7) giving multidatabase update
//!   translation and view updatability.
//!
//! Statements are submitted as source text via [`Engine::execute`] (or the
//! [`Engine::query`] / [`Engine::update`] conveniences); views refresh
//! automatically when base data changes.

#![warn(missing_docs)]

pub mod backend;
pub mod durable;
mod engine;
mod error;
mod outcome;
pub mod transparency;

pub use backend::{Backend, EngineSnapshot};
pub use durable::{CheckpointPolicy, DurabilityOptions, DurableEngine, SyncPolicy};
pub use engine::{Engine, EngineOptions, EngineOptionsBuilder};
pub use error::EngineError;
pub use outcome::Outcome;

// Re-exports so downstream users need only this crate.
pub use idl_eval::rules::{FixpointStats, StratumStats};
pub use idl_eval::update::UpdateStats;
pub use idl_eval::{AnswerSet, EvalOptions, PlanCache, Subst};
pub use idl_lang::{parse_program, parse_statement, Statement};
pub use idl_object::{Atom, Date, Name, SetObj, SharingCounters, TupleObj, Value};
pub use idl_storage::codec::SnapshotCodec;
pub use idl_storage::schema::{AttrDecl, ForeignKey, RelationSchema, SchemaSet, TypeTag};
pub use idl_storage::{
    BufferPoolStats, DurabilityStats, FaultPlan, LogFormat, RealVfs, SimVfs, StorageSpec, Store,
    Vfs, VfsStats,
};

/// Convenience prelude.
pub mod prelude {
    pub use crate::{AnswerSet, Engine, EngineError, Outcome, Value};
}
