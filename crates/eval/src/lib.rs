//! # `idl-eval` — evaluation engine for IDL
//!
//! Implements the semantics of *Krishnamurthy, Litwin & Kent, SIGMOD '91*:
//!
//! * **§4.2 query evaluation** — answers are *sets of grounding
//!   substitutions*; satisfaction is defined recursively over the three
//!   object categories, with higher-order variables enumerating attribute
//!   names ([`query`]);
//! * **§5.2 update evaluation** — `+`/`-` expressions as decrees of truth /
//!   falsehood henceforth, including null-atom semantics, attribute
//!   creation/deletion on single tuples, and query-dependent updates
//!   ([`update`]);
//! * **§6 rules and higher-order views** — stratified fixpoint
//!   materialisation where a single rule can define a data-dependent number
//!   of relations ([`rules`]);
//! * **§7 update programs** — named parameterised collections of update and
//!   query expressions with top-down parameter passing, binding-signature
//!   checking, a static non-recursion check, and view-update dispatch
//!   ([`program`]);
//! * a **planner** that reorders conjuncts and exploits the storage layer's
//!   indexes, with a naive reference mode kept for differential testing and
//!   the ablation benchmarks ([`plan`], [`query::EvalOptions`]);
//! * a **physical plan IR** compiled once per expression and executed many
//!   times — across substitutions, fixpoint iterations and worker threads —
//!   with a memoized plan cache keyed by canonical expression hash
//!   ([`physical`], [`compile`]);
//! * **static binding analysis** approximating the paper's "compile time
//!   analysis … to check the validity of the call" ([`analyze`]).

#![warn(missing_docs)]

pub mod analyze;
pub mod arith;
pub mod compile;
pub mod delta;
pub mod error;
pub mod maintain;
pub mod physical;
pub mod plan;
pub mod program;
pub mod query;
pub mod request;
pub mod rules;
pub mod subst;
pub mod update;

pub use compile::{compile_expr, compile_items, PlanCache};
pub use delta::{DeltaLog, DeltaSink};
pub use error::{EvalError, EvalResult};
pub use maintain::{diff_update, MaintainOutcome, MaintainedViews, UpdateDelta, ViewSupport};
pub use physical::{CompiledItems, PhysOp};
pub use program::{ProgramKey, ProgramRegistry};
pub use query::{
    default_compile, default_maintain, default_semi_naive, default_threads, EvalOptions, Evaluator,
};
pub use request::{run_request, run_request_cached, RequestOutcome};
pub use rules::{FixpointStats, MaintenanceStats, PredPat, RuleEngine, RuleSetError, StratumStats};
pub use subst::{AnswerSet, Subst};
