//! Static binding analysis.
//!
//! §7.1: *"Such compile time analysis can be used to check the validity of
//! the 'call' to the insStk program."* This module is that analysis,
//! generalised to whole requests: simulate the left-to-right flow of
//! bindings and report variables that will *definitely* be unbound where
//! groundness is required (non-`=` comparisons, arithmetic operands,
//! make-true payloads). The analysis is sound for errors it reports
//! (they would fail at runtime) and deliberately incomplete — wildcard
//! minus positions are legal unbound and are not flagged.

use idl_lang::{AttrTerm, Expr, Field, RelOp, Request, Sign, Term, Var};
use std::collections::BTreeSet;
use std::fmt;

/// One finding from the analysis.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct BindingIssue {
    /// The offending variable.
    pub var: Var,
    /// Why it must be bound.
    pub reason: IssueReason,
    /// Which request item (0-based) triggers it.
    pub item_index: usize,
}

/// Why a variable needs a binding.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum IssueReason {
    /// Operand of `<`, `<=`, `>`, `>=`, `!=`.
    Comparison,
    /// Operand of arithmetic.
    Arithmetic,
    /// Inside a make-true (`+`) payload.
    MakeTrue,
}

impl fmt::Display for BindingIssue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let why = match self.reason {
            IssueReason::Comparison => "used in a comparison",
            IssueReason::Arithmetic => "used in arithmetic",
            IssueReason::MakeTrue => "used in a make-true payload",
        };
        write!(
            f,
            "variable {} in item {} is {} before any binding occurrence",
            self.var,
            self.item_index + 1,
            why
        )
    }
}

/// Analyses a request, returning definite binding problems.
pub fn analyze_request(request: &Request) -> Vec<BindingIssue> {
    let mut bound: BTreeSet<Var> = BTreeSet::new();
    let mut issues = Vec::new();
    for (idx, item) in request.items.iter().enumerate() {
        // What this item can bind (optimistically: all its Eq-var and
        // attribute-var positions).
        let mut produced = BTreeSet::new();
        produced_vars(item, &mut produced);
        let visible: BTreeSet<Var> = bound.union(&produced).cloned().collect();
        check(item, &visible, idx, false, &mut issues);
        bound.extend(produced);
    }
    issues
}

fn check(
    e: &Expr,
    visible: &BTreeSet<Var>,
    idx: usize,
    in_plus: bool,
    out: &mut Vec<BindingIssue>,
) {
    match e {
        Expr::Epsilon => {}
        Expr::Atomic(op, t) => {
            if in_plus || *op != RelOp::Eq {
                let reason = if in_plus { IssueReason::MakeTrue } else { IssueReason::Comparison };
                report_unbound(t, visible, idx, reason, out);
            }
            check_arith(t, visible, idx, out);
        }
        Expr::AtomicUpdate(sign, t) => {
            if *sign == Sign::Plus {
                report_unbound(t, visible, idx, IssueReason::MakeTrue, out);
            }
            check_arith(t, visible, idx, out);
        }
        Expr::Constraint(a, op, b) => {
            if *op != RelOp::Eq {
                report_unbound(a, visible, idx, IssueReason::Comparison, out);
                report_unbound(b, visible, idx, IssueReason::Comparison, out);
            } else {
                // `X = t`: one simple-var side may be unbound (it binds).
                match (a, b) {
                    (Term::Var(_), _) => {
                        report_unbound(b, visible, idx, IssueReason::Comparison, out)
                    }
                    (_, Term::Var(_)) => {
                        report_unbound(a, visible, idx, IssueReason::Comparison, out)
                    }
                    _ => {}
                }
            }
            check_arith(a, visible, idx, out);
            check_arith(b, visible, idx, out);
        }
        Expr::Tuple(fields) => {
            // Within a tuple expression the evaluator threads bindings and
            // the planner reorders, so use the optimistic visible set
            // (everything any sibling can produce) for each field. Inside a
            // make-true payload nothing binds — `= X` there *reads* X.
            let mut vis = visible.clone();
            if !in_plus {
                for f in fields {
                    produced_field(f, &mut vis);
                }
            }
            for f in fields {
                let plus_here = in_plus || f.sign == Some(Sign::Plus);
                if f.sign == Some(Sign::Minus) {
                    // wildcard-legal position
                    continue;
                }
                check(&f.expr, &vis, idx, plus_here, out);
            }
        }
        Expr::Set(inner) => check(inner, visible, idx, in_plus, out),
        Expr::SetUpdate(sign, inner) => {
            if *sign == Sign::Plus {
                check(inner, visible, idx, true, out);
            }
            // minus payloads are wildcard-legal
        }
        Expr::Not(inner) => {
            // Existential inside; comparisons still need bindings, but
            // Eq-vars inside the negation self-bind.
            let mut vis = visible.clone();
            produced_vars(inner, &mut vis);
            check(inner, &vis, idx, in_plus, out);
        }
    }
}

fn check_arith(t: &Term, visible: &BTreeSet<Var>, idx: usize, out: &mut Vec<BindingIssue>) {
    if let Term::Arith(_, a, b) = t {
        report_unbound(a, visible, idx, IssueReason::Arithmetic, out);
        report_unbound(b, visible, idx, IssueReason::Arithmetic, out);
        check_arith(a, visible, idx, out);
        check_arith(b, visible, idx, out);
    }
}

fn report_unbound(
    t: &Term,
    visible: &BTreeSet<Var>,
    idx: usize,
    reason: IssueReason,
    out: &mut Vec<BindingIssue>,
) {
    let mut vars = BTreeSet::new();
    t.collect_vars(&mut vars);
    for v in vars {
        if !visible.contains(&v) && !out.iter().any(|i| i.var == v && i.item_index == idx) {
            out.push(BindingIssue { var: v, reason, item_index: idx });
        }
    }
}

fn produced_field(f: &Field, out: &mut BTreeSet<Var>) {
    if let AttrTerm::Var(v) = &f.attr {
        out.insert(v.clone());
    }
    produced_vars(&f.expr, out);
}

fn produced_vars(e: &Expr, out: &mut BTreeSet<Var>) {
    match e {
        Expr::Atomic(RelOp::Eq, Term::Var(v)) => {
            out.insert(v.clone());
        }
        Expr::Constraint(a, RelOp::Eq, b) => {
            if let Term::Var(v) = a {
                out.insert(v.clone());
            }
            if let Term::Var(v) = b {
                out.insert(v.clone());
            }
        }
        Expr::Tuple(fields) => {
            for f in fields {
                if f.sign.is_none() && f.expr.is_query() {
                    produced_field(f, out);
                }
            }
        }
        Expr::Set(inner) => produced_vars(inner, out),
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use idl_lang::{parse_statement, Statement};

    fn analyze(src: &str) -> Vec<BindingIssue> {
        let Statement::Request(r) = parse_statement(src).unwrap() else { panic!() };
        analyze_request(&r)
    }

    #[test]
    fn clean_queries_pass() {
        assert!(analyze("?.euter.r(.stkCode=hp, .clsPrice>60)").is_empty());
        assert!(analyze("?.euter.r(.clsPrice=P,.date=D), .euter.r¬(.clsPrice>P)").is_empty());
        assert!(analyze("?.chwab.r(.date=D,.S=P), .ource.S(.date=D,.clsPrice=P)").is_empty());
    }

    #[test]
    fn unbound_comparison_flagged() {
        let issues = analyze("?.euter.r(.clsPrice>P)");
        assert_eq!(issues.len(), 1);
        assert_eq!(issues[0].reason, IssueReason::Comparison);
        assert_eq!(issues[0].var, Var::new("P"));
    }

    #[test]
    fn binding_in_earlier_item_satisfies() {
        let issues = analyze("?.euter.r(.clsPrice=P), .euter.r(.clsPrice>P)");
        assert!(issues.is_empty());
    }

    #[test]
    fn unbound_insert_payload_flagged() {
        let issues = analyze("?.euter.r+(.stkCode=S)");
        assert_eq!(issues.len(), 1);
        assert_eq!(issues[0].reason, IssueReason::MakeTrue);
    }

    #[test]
    fn wildcard_delete_not_flagged() {
        assert!(analyze("?.euter.r-(.stkCode=S)").is_empty());
        assert!(analyze("?.chwab.r(.S-=X, .date=D)").is_empty());
    }

    #[test]
    fn arithmetic_needs_operands() {
        let issues = analyze("?.euter.r(.clsPrice=C+10)");
        assert!(issues.iter().any(|i| i.reason == IssueReason::Arithmetic));
        // but bound by earlier item is fine
        assert!(analyze("?.euter.r(.clsPrice=C), .euter.r(.clsPrice=C+10)").is_empty());
    }

    #[test]
    fn display_is_informative() {
        let issues = analyze("?.euter.r(.clsPrice>P)");
        let msg = issues[0].to_string();
        assert!(msg.contains('P') && msg.contains("comparison"));
    }
}
