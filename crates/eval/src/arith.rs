//! Term evaluation, including arithmetic.
//!
//! §5.2 uses `.clsPrice=C+10` with the remark that arithmetic is assumed
//! though absent from the paper's formal grammar. Semantics here: both
//! operands must be ground at evaluation time; ints combine to ints
//! (except `/`, which yields a float when inexact), mixed int/float
//! combine to floats, and `Date + Int` / `Date - Int` shift by days
//! (`Date - Date` yields the day difference), which is what stock-series
//! workloads need.

use crate::error::{EvalError, EvalResult};
use crate::subst::Subst;
use idl_lang::{ArithOp, Term, Var};
use idl_object::{Atom, Value};

/// Evaluates a term to a ground object under a substitution.
///
/// Fails with [`EvalError::Uninstantiated`] if a variable is unbound.
pub fn eval_term(term: &Term, subst: &Subst) -> EvalResult<Value> {
    match term {
        Term::Const(v) => Ok(v.clone()),
        Term::Var(v) => subst.get(v).cloned().ok_or_else(|| EvalError::Uninstantiated(v.clone())),
        Term::Arith(op, a, b) => {
            let av = eval_term(a, subst)?;
            let bv = eval_term(b, subst)?;
            apply(*op, &av, &bv)
        }
    }
}

/// Evaluates a term if fully ground, otherwise returns the unbound variable.
pub fn try_eval_term(term: &Term, subst: &Subst) -> Result<Value, Var> {
    match term {
        Term::Const(v) => Ok(v.clone()),
        Term::Var(v) => subst.get(v).cloned().ok_or_else(|| v.clone()),
        Term::Arith(_, a, b) => {
            // find first unbound var, else evaluate fully
            match (try_eval_term(a, subst), try_eval_term(b, subst)) {
                (Ok(_), Ok(_)) => eval_term(term, subst).map_err(|e| match e {
                    EvalError::Uninstantiated(v) => v,
                    // arithmetic type errors surface as a pseudo-unbound
                    // failure at the caller; keep the term's first variable
                    _ => first_var(term).unwrap_or_else(|| Var::new("_arith")),
                }),
                (Err(v), _) | (_, Err(v)) => Err(v),
            }
        }
    }
}

fn first_var(term: &Term) -> Option<Var> {
    match term {
        Term::Const(_) => None,
        Term::Var(v) => Some(v.clone()),
        Term::Arith(_, a, b) => first_var(a).or_else(|| first_var(b)),
    }
}

fn apply(op: ArithOp, a: &Value, b: &Value) -> EvalResult<Value> {
    let (Value::Atom(x), Value::Atom(y)) = (a, b) else {
        return Err(EvalError::BadArith(format!("non-atomic operands {a} and {b}")));
    };
    // Date arithmetic first.
    match (x, y, op) {
        (Atom::Date(d), Atom::Int(n), ArithOp::Add) => {
            return Ok(Value::date(d.plus_days(*n)));
        }
        (Atom::Date(d), Atom::Int(n), ArithOp::Sub) => {
            return Ok(Value::date(d.plus_days(-n)));
        }
        (Atom::Date(a), Atom::Date(b), ArithOp::Sub) => {
            return Ok(Value::int(b.days_until(a)));
        }
        _ => {}
    }
    if let (Some(i), Some(j)) = (x.as_int(), y.as_int()) {
        return match op {
            ArithOp::Add => i
                .checked_add(j)
                .map(Value::int)
                .ok_or_else(|| EvalError::BadArith("integer overflow".into())),
            ArithOp::Sub => i
                .checked_sub(j)
                .map(Value::int)
                .ok_or_else(|| EvalError::BadArith("integer overflow".into())),
            ArithOp::Mul => i
                .checked_mul(j)
                .map(Value::int)
                .ok_or_else(|| EvalError::BadArith("integer overflow".into())),
            ArithOp::Div => {
                if j == 0 {
                    Err(EvalError::BadArith("division by zero".into()))
                } else if i % j == 0 {
                    Ok(Value::int(i / j))
                } else {
                    Ok(Value::float(i as f64 / j as f64))
                }
            }
        };
    }
    let (Some(p), Some(q)) = (x.as_numeric(), y.as_numeric()) else {
        return Err(EvalError::BadArith(format!(
            "cannot apply {op} to {} and {}",
            x.type_name(),
            y.type_name()
        )));
    };
    let r = match op {
        ArithOp::Add => p + q,
        ArithOp::Sub => p - q,
        ArithOp::Mul => p * q,
        ArithOp::Div => {
            if q == 0.0 {
                return Err(EvalError::BadArith("division by zero".into()));
            }
            p / q
        }
    };
    Ok(Value::float(r))
}

#[cfg(test)]
mod tests {
    use super::*;
    use idl_object::Date;

    fn subst(pairs: &[(&str, Value)]) -> Subst {
        pairs.iter().map(|(n, v)| (Var::new(*n), v.clone())).collect()
    }

    fn arith(op: ArithOp, a: Term, b: Term) -> Term {
        Term::Arith(op, Box::new(a), Box::new(b))
    }

    #[test]
    fn constants_and_vars() {
        let s = subst(&[("C", Value::int(50))]);
        assert_eq!(eval_term(&Term::v("C"), &s).unwrap(), Value::int(50));
        assert!(matches!(eval_term(&Term::v("D"), &s), Err(EvalError::Uninstantiated(_))));
    }

    #[test]
    fn price_bump_c_plus_10() {
        let s = subst(&[("C", Value::int(50))]);
        let t = arith(ArithOp::Add, Term::v("C"), Term::c(10i64));
        assert_eq!(eval_term(&t, &s).unwrap(), Value::int(60));
        let s = subst(&[("C", Value::float(50.5))]);
        assert_eq!(eval_term(&t, &s).unwrap(), Value::float(60.5));
    }

    #[test]
    fn int_division() {
        let t = arith(ArithOp::Div, Term::c(6i64), Term::c(2i64));
        assert_eq!(eval_term(&t, &Subst::new()).unwrap(), Value::int(3));
        let t = arith(ArithOp::Div, Term::c(7i64), Term::c(2i64));
        assert_eq!(eval_term(&t, &Subst::new()).unwrap(), Value::float(3.5));
        let t = arith(ArithOp::Div, Term::c(7i64), Term::c(0i64));
        assert!(matches!(eval_term(&t, &Subst::new()), Err(EvalError::BadArith(_))));
    }

    #[test]
    fn date_shift() {
        let d = Date::new(1985, 3, 3).unwrap();
        let t = arith(ArithOp::Add, Term::c(Value::date(d)), Term::c(1i64));
        assert_eq!(eval_term(&t, &Subst::new()).unwrap(), Value::date(d.plus_days(1)));
        let t = arith(ArithOp::Sub, Term::c(Value::date(d.plus_days(10))), Term::c(Value::date(d)));
        assert_eq!(eval_term(&t, &Subst::new()).unwrap(), Value::int(10));
    }

    #[test]
    fn type_errors() {
        let t = arith(ArithOp::Add, Term::c("hp"), Term::c(1i64));
        assert!(matches!(eval_term(&t, &Subst::new()), Err(EvalError::BadArith(_))));
    }

    #[test]
    fn try_eval_reports_unbound() {
        let t = arith(ArithOp::Add, Term::v("C"), Term::c(10i64));
        assert_eq!(try_eval_term(&t, &Subst::new()).unwrap_err(), Var::new("C"));
    }

    #[test]
    fn overflow_checked() {
        let t = arith(ArithOp::Mul, Term::c(i64::MAX), Term::c(2i64));
        assert!(matches!(eval_term(&t, &Subst::new()), Err(EvalError::BadArith(_))));
    }
}
