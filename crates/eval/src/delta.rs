//! Delta relations for semi-naive fixpoint evaluation (DESIGN.md
//! "Semi-naive delta scheduling").
//!
//! One fixpoint iteration's *new* derived facts, grouped by the concrete
//! `(db, rel)` they were inserted into. The next iteration joins these
//! delta relations against the full store — `(Δ ⋈ full)` instead of
//! `full × full` — via [`crate::physical::PhysOp::DeltaScan`], and the
//! rule scheduler wakes only rules whose bodies overlap the changed
//! patterns.
//!
//! Writes that are not representable as relation rows (scalar `=` heads,
//! inserts into nested sets below the relation level, whole-database
//! effects) are recorded as *coarse* patterns instead: they still wake
//! dependent rules, but those rules fall back to a full re-evaluation —
//! delta joins are only sound over row-level inserts.
//!
//! A relation (or database) slot that did not exist before a fact
//! materialised it is a **schematic delta** — the paper's "new stock in
//! `euter` defines a new relation" wrinkle. Those are reported so the
//! engine can invalidate exactly the plan-cache entries whose read sets
//! overlap the new relations.

use crate::rules::PredPat;
use idl_object::{Name, Value};
use std::collections::BTreeMap;

/// Concrete per-relation delta rows: `(db, rel)` → facts first derived in
/// the previous iteration. Shared read-only by every worker of the next
/// iteration; values are O(1) structural-sharing clones of the stored
/// rows.
pub type DeltaTable = BTreeMap<(Name, Name), Vec<Value>>;

/// Everything one fixpoint iteration changed.
#[derive(Clone, Debug, Default)]
pub struct DeltaLog {
    /// Row-level inserts, grouped by concrete relation.
    pub rels: DeltaTable,
    /// Changes not representable as relation rows (scalar heads, nested
    /// writes): pattern-level wake information only.
    pub coarse: Vec<PredPat>,
    /// Relation (or database) slots that materialised fresh this
    /// iteration — schematic deltas.
    pub new_rels: Vec<PredPat>,
}

impl DeltaLog {
    /// Whether the iteration changed anything at all.
    pub fn is_empty(&self) -> bool {
        self.rels.is_empty() && self.coarse.is_empty()
    }

    /// Row-level facts recorded.
    pub fn fact_count(&self) -> usize {
        self.rels.values().map(Vec::len).sum()
    }

    /// The patterns a dependent rule's body must overlap to be woken:
    /// one concrete pattern per touched relation plus every coarse
    /// pattern, deduplicated.
    pub fn changed_patterns(&self) -> Vec<PredPat> {
        let mut out: Vec<PredPat> = self
            .rels
            .keys()
            .map(|(db, rel)| PredPat { db: Some(db.clone()), rel: Some(rel.clone()) })
            .collect();
        out.extend(self.coarse.iter().cloned());
        out.sort();
        out.dedup();
        out
    }

    /// Whether any coarse (non-row-representable) change overlaps `pat` —
    /// if so, a rule reading `pat` must re-evaluate in full, because the
    /// delta table cannot express what changed.
    pub fn coarse_overlaps(&self, pat: &PredPat) -> bool {
        self.coarse.iter().any(|c| c.overlaps(pat))
    }
}

/// Collector threaded through [`crate::rules::make_true_logged`]: tracks
/// the attribute path from the universe root and records row inserts,
/// coarse writes and schematic (new-slot) events into a [`DeltaLog`].
#[derive(Debug)]
pub struct DeltaSink {
    path: Vec<Name>,
    enabled: bool,
    /// The accumulated log (meaningful only when `enabled`).
    pub log: DeltaLog,
}

impl DeltaSink {
    /// A recording sink.
    pub fn new() -> Self {
        DeltaSink { path: Vec::new(), enabled: true, log: DeltaLog::default() }
    }

    /// A sink that records nothing (used by the plain [`make_true`]
    /// wrapper so callers outside the fixpoint pay no cloning cost).
    ///
    /// [`make_true`]: crate::rules::make_true
    pub fn disabled() -> Self {
        DeltaSink { path: Vec::new(), enabled: false, log: DeltaLog::default() }
    }

    /// Whether this sink records (gates the fact clone at insert sites).
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    pub(crate) fn enter(&mut self, name: &Name) {
        if self.enabled {
            self.path.push(name.clone());
        }
    }

    pub(crate) fn leave(&mut self) {
        if self.enabled {
            self.path.pop();
        }
    }

    /// The attribute slot just entered did not exist before: at relation
    /// depth this is a schematic delta (a data-dependent relation
    /// materialised); at database depth, a whole new database.
    pub(crate) fn created_slot(&mut self) {
        if !self.enabled {
            return;
        }
        match self.path.len() {
            1 => self.log.new_rels.push(PredPat { db: Some(self.path[0].clone()), rel: None }),
            2 => self
                .log
                .new_rels
                .push(PredPat { db: Some(self.path[0].clone()), rel: Some(self.path[1].clone()) }),
            _ => {}
        }
    }

    /// A set insert that was new. Row-level (exactly `db.rel`) inserts
    /// feed the delta table; anything deeper or shallower is coarse.
    pub(crate) fn set_inserted(&mut self, fact: Value) {
        if !self.enabled {
            return;
        }
        match self.path.len() {
            2 => self
                .log
                .rels
                .entry((self.path[0].clone(), self.path[1].clone()))
                .or_default()
                .push(fact),
            _ => self.coarse_here(),
        }
    }

    /// A scalar (`=` head) overwrite that changed the stored value.
    pub(crate) fn scalar_written(&mut self) {
        if self.enabled {
            self.coarse_here();
        }
    }

    fn coarse_here(&mut self) {
        self.log
            .coarse
            .push(PredPat { db: self.path.first().cloned(), rel: self.path.get(1).cloned() });
    }
}

impl Default for DeltaSink {
    fn default() -> Self {
        DeltaSink::new()
    }
}
