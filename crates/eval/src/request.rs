//! Request execution: queries, update requests and program calls, unified.
//!
//! A request `?e₁, …, eₖ` is evaluated left to right under shared bindings
//! (§5.1): query items filter and extend the current substitutions, update
//! items apply once per current substitution, and items that name a
//! registered update program dispatch to it (§7.1). The whole request is
//! atomic — wrapped in a storage transaction that rolls back on any error,
//! so a failed binding-signature check or kind mismatch leaves the universe
//! untouched.
//!
//! Updates targeting *derived* databases are rejected unless a view-update
//! program is registered for that exact path and sign (§7.2); base updates
//! go straight to the storage layer.

use crate::compile::PlanCache;
use crate::error::{EvalError, EvalResult};
use crate::program::{update_scope, ProgramRegistry};
use crate::query::{EvalOptions, Evaluator};
use crate::rules::DerivedCatalog;
use crate::subst::{AnswerSet, Subst};
use crate::update::{apply_update, UpdateStats};
use idl_lang::Request;
use idl_storage::Store;
use std::collections::BTreeSet;

/// What a request produced.
#[derive(Clone, Debug, Default)]
pub struct RequestOutcome {
    /// The answer substitutions (projected onto named variables). For a
    /// variable-free query this is the boolean reading via
    /// [`AnswerSet::is_true`].
    pub answers: AnswerSet,
    /// Mutation counters accumulated by update items and program calls.
    pub stats: UpdateStats,
}

impl RequestOutcome {
    /// Whether the request succeeded with at least one satisfying binding
    /// (queries) — updates count as satisfying too.
    pub fn is_true(&self) -> bool {
        self.answers.is_true()
    }
}

/// Runs a request atomically against the store.
///
/// `derived` is the relation-granular catalog of view-materialised state:
/// direct updates touching it are rejected
/// ([`EvalError::UpdateOnDerived`]) unless the item matches a registered
/// (view-)update program.
pub fn run_request(
    store: &mut Store,
    registry: &ProgramRegistry,
    derived: &DerivedCatalog,
    request: &Request,
    opts: EvalOptions,
) -> EvalResult<RequestOutcome> {
    run_request_cached(store, registry, derived, request, opts, None)
}

/// [`run_request`] with a memoized plan cache: query items are compiled
/// through `cache` (when [`EvalOptions::compile`] is on), so a repeated
/// request re-uses its plans instead of re-compiling.
pub fn run_request_cached(
    store: &mut Store,
    registry: &ProgramRegistry,
    derived: &DerivedCatalog,
    request: &Request,
    opts: EvalOptions,
    cache: Option<&mut PlanCache>,
) -> EvalResult<RequestOutcome> {
    store.begin();
    match run_inner(store, registry, derived, request, opts, cache) {
        Ok(outcome) => {
            store.commit().expect("transaction opened above");
            Ok(outcome)
        }
        Err(e) => {
            store.rollback().expect("transaction opened above");
            Err(e)
        }
    }
}

fn run_inner(
    store: &mut Store,
    registry: &ProgramRegistry,
    derived: &DerivedCatalog,
    request: &Request,
    opts: EvalOptions,
    mut cache: Option<&mut PlanCache>,
) -> EvalResult<RequestOutcome> {
    let mut substs = vec![Subst::new()];
    let mut stats = UpdateStats::default();
    for item in &request.items {
        // Program call? (takes precedence over the relation-scan reading)
        if let Some((key, args)) = registry.match_call(item) {
            for s in &substs {
                stats.merge(registry.call(store, &key, args, s, opts)?);
            }
            continue;
        }
        if item.is_query() {
            let ev = Evaluator::new(store, opts);
            substs = match cache.as_deref_mut() {
                Some(cache) if opts.compile => {
                    let plan = cache.get_or_compile(std::slice::from_ref(item), opts)?;
                    ev.eval_compiled(&plan, substs)?
                }
                _ => ev.eval_items(std::slice::from_ref(item), substs)?,
            };
            if substs.is_empty() {
                break;
            }
            continue;
        }
        // Plain update item: guard derived state (relation-granular).
        let scope = update_scope(item);
        if derived.guards_update(&scope) {
            return Err(EvalError::UpdateOnDerived(format!("{scope:?}")));
        }
        for s in &substs {
            let st = store.mutate(scope.clone(), |u| apply_update(u, item, s))?;
            stats.merge(st);
        }
    }
    // Project answers onto named variables.
    let vars = request.vars();
    let named: BTreeSet<_> = vars.into_iter().filter(|v| !v.is_gensym()).collect();
    let answers: AnswerSet = substs.into_iter().map(|s| s.project(&named)).collect();
    Ok(RequestOutcome { answers, stats })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::PredPat;
    use idl_lang::{parse_program, parse_statement, Statement};
    use idl_object::universe::stock_universe;
    use idl_object::{Name, Value};

    fn base_store() -> Store {
        Store::from_universe(stock_universe(vec![
            ("3/3/85", "hp", 50.0),
            ("3/3/85", "ibm", 160.0),
            ("3/4/85", "hp", 62.0),
        ]))
        .unwrap()
    }

    /// A catalog marking one whole database as derived.
    fn whole_db(db: &str) -> DerivedCatalog {
        DerivedCatalog::from_patterns([&PredPat { db: Some(Name::new(db)), rel: None }])
    }

    fn run(
        store: &mut Store,
        registry: &ProgramRegistry,
        derived: &DerivedCatalog,
        src: &str,
    ) -> EvalResult<RequestOutcome> {
        let Statement::Request(req) = parse_statement(src).unwrap() else { panic!() };
        run_request(store, registry, derived, &req, EvalOptions::default())
    }

    #[test]
    fn mixed_query_then_update_per_binding() {
        let mut store = base_store();
        let reg = ProgramRegistry::new();
        let derived = DerivedCatalog::empty();
        // delete every hp row, driven by bindings
        let out = run(
            &mut store,
            &reg,
            &derived,
            "?.euter.r(.stkCode=hp,.date=D,.clsPrice=C), .euter.r-(.stkCode=hp,.date=D,.clsPrice=C)",
        )
        .unwrap();
        assert_eq!(out.stats.deleted, 2);
        assert_eq!(store.relation("euter", "r").unwrap().len(), 1);
    }

    #[test]
    fn atomicity_on_error() {
        let mut store = base_store();
        let reg = ProgramRegistry::new();
        let derived = DerivedCatalog::empty();
        // first item succeeds, second errors (insert payload unbound)
        let err = run(
            &mut store,
            &reg,
            &derived,
            "?.euter.r+(.stkCode=sun,.date=3/5/85,.clsPrice=1), .euter.r+(.stkCode=U)",
        )
        .unwrap_err();
        assert!(matches!(err, EvalError::Uninstantiated(_)));
        assert_eq!(
            store.relation("euter", "r").unwrap().len(),
            3,
            "first insert rolled back with the failure"
        );
    }

    #[test]
    fn derived_guard() {
        let mut store = base_store();
        let reg = ProgramRegistry::new();
        let derived = whole_db("dbE");
        let err = run(&mut store, &reg, &derived, "?.dbE.r+(.stkCode=hp)").unwrap_err();
        assert!(matches!(err, EvalError::UpdateOnDerived(_)));
    }

    #[test]
    fn view_update_program_dispatch() {
        let mut store = base_store();
        let mut reg = ProgramRegistry::new();
        for stmt in parse_program(
            ".dbE.r+(.date=D,.stkCode=S,.clsPrice=P) -> .euter.r+(.date=D,.stkCode=S,.clsPrice=P) ;",
        )
        .unwrap()
        {
            let Statement::Program(p) = stmt else { panic!() };
            reg.register(&p).unwrap();
        }
        let derived = whole_db("dbE");
        let out =
            run(&mut store, &reg, &derived, "?.dbE.r+(.date=3/9/85,.stkCode=sun,.clsPrice=5)")
                .unwrap();
        assert_eq!(out.stats.inserted, 1);
        assert_eq!(store.relation("euter", "r").unwrap().len(), 4, "routed to base table");
    }

    #[test]
    fn pure_query_answers() {
        let mut store = base_store();
        let reg = ProgramRegistry::new();
        let derived = DerivedCatalog::empty();
        let out = run(&mut store, &reg, &derived, "?.euter.r(.stkCode=S, .clsPrice>100)").unwrap();
        assert_eq!(out.answers.column("S"), vec![Value::str("ibm")]);
    }

    #[test]
    fn update_with_no_matching_bindings_is_noop() {
        let mut store = base_store();
        let reg = ProgramRegistry::new();
        let derived = DerivedCatalog::empty();
        let out =
            run(&mut store, &reg, &derived, "?.euter.r(.stkCode=nope,.date=D), .euter.r-(.date=D)")
                .unwrap();
        assert_eq!(out.stats.total(), 0);
        assert!(!out.is_true());
        assert_eq!(store.relation("euter", "r").unwrap().len(), 3);
    }
}
