//! Update programs (§7).
//!
//! An update program is a *named, parameterized collection of update and
//! query expressions* with top-down parameter passing. The schema
//! administrator writes programs like `delStk` / `rmStk` / `insStk` to
//! translate a single logical update into the (schematically different)
//! physical updates each database needs — and programs named after view
//! paths (`.dbE.r+(…) -> …`, §7.2) give users *view updatability*.
//!
//! Implemented semantics:
//!
//! * **all clauses run**: a call executes every clause registered under the
//!   program's name, in definition order (delStk has one clause per
//!   database);
//! * **partial bindings**: parameters not supplied stay unbound and act as
//!   wildcards in make-false positions ("if the stock code is not passed …
//!   the closing price of all stocks … is deleted");
//! * **binding signatures**: a parameter that a clause *needs* ground (it
//!   feeds a make-true payload and no earlier body query binds it) must be
//!   supplied — calls violating this are rejected before any mutation, the
//!   paper's `insStk` "compile time analysis";
//! * **no recursion** (§7.1): the static call graph must be acyclic;
//!   programs may call other programs non-recursively (reuse);
//! * programs return **success or failure only** — no bindings escape.

use crate::arith::eval_term;
use crate::error::{EvalError, EvalResult};
use crate::query::{EvalOptions, Evaluator};
use crate::subst::Subst;
use crate::update::{apply_update, UpdateStats};
use idl_lang::{AttrTerm, Expr, Field, ProgramClause, RelOp, Sign, Term, Var};
use idl_object::{Name, Value};
use idl_storage::{ChangeScope, Store};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// Identity of an update program: its dotted constant path and the optional
/// update sign (`.dbX.p+` vs `.dbX.p-` vs plain `.dbU.delStk`).
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub struct ProgramKey {
    /// Constant attribute path, e.g. `["dbU", "delStk"]`.
    pub path: Vec<Name>,
    /// `Some(Plus)` / `Some(Minus)` for view-update programs.
    pub sign: Option<Sign>,
}

impl fmt::Display for ProgramKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for p in &self.path {
            write!(f, ".{p}")?;
        }
        if let Some(s) = self.sign {
            write!(f, "{s}")?;
        }
        Ok(())
    }
}

// Sign lacks Ord upstream; provide ordering through a local key.
impl ProgramKey {
    fn sign_rank(&self) -> u8 {
        match self.sign {
            None => 0,
            Some(Sign::Plus) => 1,
            Some(Sign::Minus) => 2,
        }
    }
}

/// One registered clause with its analysed signature.
#[derive(Clone, Debug)]
struct CompiledClause {
    /// Parameter name → head variable.
    params: BTreeMap<Name, Var>,
    /// Parameters that must be bound for this clause to execute.
    required: BTreeSet<Name>,
    body: Vec<Expr>,
}

/// Registry of update programs, keyed by [`ProgramKey`].
#[derive(Default)]
pub struct ProgramRegistry {
    programs: BTreeMap<(Vec<Name>, u8), (ProgramKey, Vec<CompiledClause>)>,
}

impl ProgramRegistry {
    /// Empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of registered program names.
    pub fn len(&self) -> usize {
        self.programs.len()
    }

    /// Whether no program is registered.
    pub fn is_empty(&self) -> bool {
        self.programs.is_empty()
    }

    /// Registered program keys.
    pub fn keys(&self) -> impl Iterator<Item = &ProgramKey> {
        self.programs.values().map(|(k, _)| k)
    }

    /// Registers one clause (clauses under the same head accumulate in
    /// definition order). Re-checks the whole registry for recursion.
    pub fn register(&mut self, clause: &ProgramClause) -> EvalResult<()> {
        let (key, params) = parse_head(&clause.head)?;
        let required = required_params(&params, &clause.body);
        let compiled = CompiledClause { params, required, body: clause.body.clone() };
        self.programs
            .entry((key.path.clone(), key.sign_rank()))
            .or_insert_with(|| (key.clone(), Vec::new()))
            .1
            .push(compiled);
        if let Err(e) = self.check_acyclic() {
            // Roll the registration back so the registry stays usable.
            let rank = key.sign_rank();
            let entry = self.programs.get_mut(&(key.path.clone(), rank)).unwrap();
            entry.1.pop();
            if entry.1.is_empty() {
                self.programs.remove(&(key.path, rank));
            }
            return Err(e);
        }
        Ok(())
    }

    /// If the expression is a call to a registered program, returns the
    /// key and the argument fields.
    pub fn match_call<'e>(&self, expr: &'e Expr) -> Option<(ProgramKey, &'e [Field])> {
        let (path, sign, args) = call_shape(expr)?;
        let key = ProgramKey { path, sign };
        let rank = key.sign_rank();
        self.programs.get(&(key.path.clone(), rank)).map(|(k, _)| (k.clone(), args))
    }

    /// Executes a program call: binds arguments to each clause's
    /// parameters, checks binding signatures, then runs every clause's
    /// body top-down. No bindings escape; mutation counters do.
    pub fn call(
        &self,
        store: &mut Store,
        key: &ProgramKey,
        args: &[Field],
        caller_subst: &Subst,
        opts: EvalOptions,
    ) -> EvalResult<UpdateStats> {
        self.call_depth(store, key, args, caller_subst, opts, 0)
    }

    fn call_depth(
        &self,
        store: &mut Store,
        key: &ProgramKey,
        args: &[Field],
        caller_subst: &Subst,
        opts: EvalOptions,
        depth: usize,
    ) -> EvalResult<UpdateStats> {
        if depth > 64 {
            return Err(EvalError::RecursiveProgram(key.to_string()));
        }
        let (_, clauses) = self
            .programs
            .get(&(key.path.clone(), key.sign_rank()))
            .ok_or_else(|| EvalError::NoSuchProgram(key.to_string()))?;

        // Evaluate the supplied arguments once, under the caller's bindings.
        let mut supplied: BTreeMap<Name, Value> = BTreeMap::new();
        for arg in args {
            let AttrTerm::Const(pname) = &arg.attr else {
                return Err(EvalError::Malformed(format!(
                    "program call {key}: argument names must be constants"
                )));
            };
            let Expr::Atomic(RelOp::Eq, term) = &arg.expr else {
                return Err(EvalError::Malformed(format!(
                    "program call {key}: arguments must be `.name = value`"
                )));
            };
            // An unbound caller variable means "parameter not supplied".
            match term {
                Term::Var(v) if !caller_subst.is_bound(v) => continue,
                _ => {
                    let val = eval_term(term, caller_subst)?;
                    supplied.insert(pname.clone(), val);
                }
            }
        }

        // Validate argument names and binding signatures across clauses
        // BEFORE any clause mutates (atomicity of the signature check).
        for pname in supplied.keys() {
            if !clauses.iter().any(|c| c.params.contains_key(pname)) {
                return Err(EvalError::UnknownParameter {
                    program: key.to_string(),
                    param: pname.clone(),
                });
            }
        }
        for clause in clauses {
            for req in &clause.required {
                if !supplied.contains_key(req) {
                    return Err(EvalError::InsufficientBindings {
                        program: key.to_string(),
                        missing: req.clone(),
                    });
                }
            }
        }

        let mut stats = UpdateStats::default();
        for clause in clauses {
            // Top-down parameter passing.
            let mut subst = Subst::new();
            for (pname, var) in &clause.params {
                if let Some(val) = supplied.get(pname) {
                    subst.insert(var.clone(), val.clone());
                }
            }
            stats.merge(self.run_body(store, &clause.body, subst, opts, depth)?);
        }
        Ok(stats)
    }

    /// Executes a clause body: query items thread bindings, update items
    /// apply per binding, nested program calls recurse.
    fn run_body(
        &self,
        store: &mut Store,
        body: &[Expr],
        seed: Subst,
        opts: EvalOptions,
        depth: usize,
    ) -> EvalResult<UpdateStats> {
        let mut stats = UpdateStats::default();
        let mut substs = vec![seed];
        for item in body {
            if let Some((key, args)) = self.match_call(item) {
                for s in &substs {
                    stats.merge(self.call_depth(store, &key, args, s, opts, depth + 1)?);
                }
            } else if item.is_query() {
                let ev = Evaluator::new(store, opts);
                substs = ev.eval_items(std::slice::from_ref(item), substs)?;
                if substs.is_empty() {
                    break; // clause conditions unmet: clause fails quietly
                }
            } else {
                let scope = update_scope(item);
                for s in &substs {
                    let st =
                        store.mutate(scope.clone(), |universe| apply_update(universe, item, s))?;
                    stats.merge(st);
                }
            }
        }
        Ok(stats)
    }

    /// Static validation of a call site without executing anything — the
    /// paper's §7.1 "compile time analysis … to check the validity of the
    /// 'call'". An argument whose term is a variable counts as *not
    /// supplied* (that is its runtime meaning). Returns human-readable
    /// problems; empty = the call shape is valid.
    pub fn static_call_issues(&self, key: &ProgramKey, args: &[Field]) -> Vec<String> {
        let Some((_, clauses)) = self.programs.get(&(key.path.clone(), key.sign_rank())) else {
            return vec![format!("no update program named {key}")];
        };
        let mut issues = Vec::new();
        let mut supplied: BTreeSet<Name> = BTreeSet::new();
        for arg in args {
            let AttrTerm::Const(pname) = &arg.attr else {
                issues.push(format!("{key}: argument names must be constants"));
                continue;
            };
            match &arg.expr {
                Expr::Atomic(RelOp::Eq, Term::Var(_)) => {} // unbound: not supplied
                Expr::Atomic(RelOp::Eq, _) => {
                    supplied.insert(pname.clone());
                }
                _ => issues.push(format!("{key}: argument .{pname} must be `.{pname} = value`")),
            }
            if !clauses.iter().any(|c| c.params.contains_key(pname)) {
                issues.push(format!("{key} has no parameter .{pname}"));
            }
        }
        for clause in clauses {
            for req in &clause.required {
                if !supplied.contains(req) {
                    issues.push(format!("{key} requires parameter .{req} to be bound"));
                }
            }
        }
        issues.sort();
        issues.dedup();
        issues
    }

    /// Static non-recursion check over the call graph (§7.1).
    fn check_acyclic(&self) -> EvalResult<()> {
        // Build edges: program → programs its bodies call.
        let keys: Vec<(Vec<Name>, u8)> = self.programs.keys().cloned().collect();
        let index_of = |k: &(Vec<Name>, u8)| keys.iter().position(|x| x == k).unwrap();
        let mut edges: Vec<Vec<usize>> = vec![Vec::new(); keys.len()];
        for (k, (_, clauses)) in &self.programs {
            let from = index_of(k);
            for clause in clauses {
                for item in &clause.body {
                    if let Some((callee, _)) = self.match_call(item) {
                        let to = index_of(&(callee.path.clone(), callee.sign_rank()));
                        edges[from].push(to);
                    }
                }
            }
        }
        // DFS cycle detection.
        #[derive(Clone, Copy, PartialEq)]
        enum Mark {
            White,
            Grey,
            Black,
        }
        fn dfs(v: usize, edges: &[Vec<usize>], marks: &mut [Mark]) -> Option<usize> {
            marks[v] = Mark::Grey;
            for &w in &edges[v] {
                match marks[w] {
                    Mark::Grey => return Some(w),
                    Mark::White => {
                        if let Some(c) = dfs(w, edges, marks) {
                            return Some(c);
                        }
                    }
                    Mark::Black => {}
                }
            }
            marks[v] = Mark::Black;
            None
        }
        let mut marks = vec![Mark::White; keys.len()];
        for v in 0..keys.len() {
            if marks[v] == Mark::White {
                if let Some(c) = dfs(v, &edges, &mut marks) {
                    let (key, _) = &self.programs[&keys[c]];
                    return Err(EvalError::RecursiveProgram(key.to_string()));
                }
            }
        }
        Ok(())
    }
}

/// The change scope an update item can touch, from its constant prefix.
pub fn update_scope(item: &Expr) -> ChangeScope {
    let mut path = Vec::new();
    let mut cur = item;
    loop {
        match cur {
            Expr::Tuple(fields) if fields.len() == 1 => {
                let f = &fields[0];
                match (&f.attr, f.sign) {
                    (AttrTerm::Const(n), _) => {
                        path.push(n.clone());
                        if path.len() == 2 {
                            break;
                        }
                        cur = &f.expr;
                    }
                    _ => break,
                }
            }
            _ => break,
        }
    }
    match path.len() {
        2 => ChangeScope::Relation { db: path[0].clone(), rel: path[1].clone() },
        1 => ChangeScope::Database { db: path[0].clone() },
        _ => ChangeScope::Universe,
    }
}

/// Decomposes a head/call expression into (constant path, sign, argument
/// fields). Shape: single-field tuple chain ending in `(…)`, `+(…)`,
/// or `-(…)`.
fn call_shape(expr: &Expr) -> Option<(Vec<Name>, Option<Sign>, &[Field])> {
    let mut path = Vec::new();
    let mut cur = expr;
    loop {
        match cur {
            Expr::Tuple(fields) if fields.len() == 1 && fields[0].sign.is_none() => {
                let f = &fields[0];
                let AttrTerm::Const(n) = &f.attr else { return None };
                path.push(n.clone());
                cur = &f.expr;
            }
            Expr::Set(inner) => {
                let Expr::Tuple(args) = inner.as_ref() else {
                    return if matches!(inner.as_ref(), Expr::Epsilon) {
                        Some((path, None, &[]))
                    } else {
                        None
                    };
                };
                return Some((path, None, args.as_slice()));
            }
            Expr::SetUpdate(sign, inner) => {
                let Expr::Tuple(args) = inner.as_ref() else {
                    return if matches!(inner.as_ref(), Expr::Epsilon) {
                        Some((path, Some(*sign), &[]))
                    } else {
                        None
                    };
                };
                return Some((path, Some(*sign), args.as_slice()));
            }
            _ => return None,
        }
    }
}

/// Extracts the program key and parameter map from a clause head.
fn parse_head(head: &Expr) -> EvalResult<(ProgramKey, BTreeMap<Name, Var>)> {
    let (path, sign, args) = call_shape(head).ok_or_else(|| {
        EvalError::Malformed(
            "program head must be a constant path ending in a parameter tuple".into(),
        )
    })?;
    if path.is_empty() {
        return Err(EvalError::Malformed("program head has an empty path".into()));
    }
    let mut params = BTreeMap::new();
    for f in args {
        let AttrTerm::Const(pname) = &f.attr else {
            return Err(EvalError::Malformed("program parameters must have constant names".into()));
        };
        let Expr::Atomic(RelOp::Eq, Term::Var(v)) = &f.expr else {
            return Err(EvalError::Malformed(format!(
                "program parameter .{pname} must be `.{pname} = Var`"
            )));
        };
        params.insert(pname.clone(), v.clone());
    }
    Ok((ProgramKey { path, sign }, params))
}

/// Parameters a clause requires bound: head variables that feed a make-true
/// payload and are not produced by an earlier query item in the body.
fn required_params(params: &BTreeMap<Name, Var>, body: &[Expr]) -> BTreeSet<Name> {
    let mut produced: BTreeSet<Var> = BTreeSet::new();
    let mut required_vars: BTreeSet<Var> = BTreeSet::new();
    for item in body {
        if item.is_query() {
            // everything a query item mentions it can in principle bind
            item.collect_vars(&mut produced);
        } else {
            collect_plus_vars(item, &mut required_vars);
        }
    }
    params
        .iter()
        .filter(|(_, v)| required_vars.contains(v) && !produced.contains(v))
        .map(|(n, _)| n.clone())
        .collect()
}

/// Variables occurring inside make-true payloads (which must be ground).
fn collect_plus_vars(e: &Expr, out: &mut BTreeSet<Var>) {
    match e {
        Expr::SetUpdate(Sign::Plus, inner) => inner.collect_vars(out),
        Expr::AtomicUpdate(Sign::Plus, t) => t.collect_vars(out),
        Expr::SetUpdate(Sign::Minus, _) | Expr::AtomicUpdate(Sign::Minus, _) => {}
        Expr::Tuple(fields) => {
            for f in fields {
                match f.sign {
                    Some(Sign::Plus) => {
                        // the attribute name of a make-true field must be
                        // ground too
                        if let AttrTerm::Var(v) = &f.attr {
                            out.insert(v.clone());
                        }
                        f.expr.collect_vars(out);
                    }
                    Some(Sign::Minus) => {}
                    None => collect_plus_vars(&f.expr, out),
                }
            }
        }
        Expr::Set(inner) | Expr::Not(inner) => collect_plus_vars(inner, out),
        Expr::Epsilon | Expr::Atomic(..) | Expr::Constraint(..) => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use idl_lang::{parse_program, parse_statement, Statement};
    use idl_object::universe::stock_universe;

    fn base_store() -> Store {
        Store::from_universe(stock_universe(vec![
            ("3/3/85", "hp", 50.0),
            ("3/3/85", "ibm", 160.0),
            ("3/4/85", "hp", 62.0),
        ]))
        .unwrap()
    }

    /// Date atom from its surface literal.
    fn dval(s: &str) -> Value {
        Value::date(s.parse().unwrap())
    }

    fn registry(src: &str) -> ProgramRegistry {
        let mut reg = ProgramRegistry::new();
        for stmt in parse_program(src).unwrap() {
            match stmt {
                Statement::Program(p) => reg.register(&p).unwrap(),
                _ => panic!("expected only programs"),
            }
        }
        reg
    }

    const DEL_STK: &str = "
        .dbU.delStk(.stk=S, .date=D) -> .euter.r-(.stkCode=S,.date=D) ;
        .dbU.delStk(.stk=S, .date=D) -> .chwab.r(.S-=X, .date=D) ;
        .dbU.delStk(.stk=S, .date=D) -> .ource.S-(.date=D) ;
    ";

    const RM_STK: &str = "
        .dbU.rmStk(.stk=S) -> .euter.r-(.stkCode=S) ;
        .dbU.rmStk(.stk=S) -> .chwab.r(-.S) ;
        .dbU.rmStk(.stk=S) -> .ource-.S ;
    ";

    const INS_STK: &str = "
        .dbU.insStk(.stk=S, .date=D, .price=P) -> .euter.r+(.stkCode=S,.date=D,.clsPrice=P) ;
        .dbU.insStk(.stk=S, .date=D, .price=P) -> .chwab.r(.date=D, +.S=P) ;
        .dbU.insStk(.stk=S, .date=D, .price=P) -> .ource.S+(.date=D,.clsPrice=P) ;
    ";

    fn call(reg: &ProgramRegistry, store: &mut Store, src: &str) -> EvalResult<UpdateStats> {
        let Statement::Request(req) = parse_statement(src).unwrap() else { panic!() };
        let (key, args) = reg.match_call(&req.items[0]).expect("call should match");
        reg.call(store, &key, args, &Subst::new(), EvalOptions::default())
    }

    #[test]
    fn delstk_full_bindings() {
        let mut store = base_store();
        let reg = registry(DEL_STK);
        let stats = call(&reg, &mut store, "?.dbU.delStk(.stk=hp, .date=3/3/85)").unwrap();
        assert!(stats.total() >= 3, "one mutation per database: {stats:?}");
        // euter: tuple gone
        assert_eq!(store.relation("euter", "r").unwrap().len(), 2);
        // chwab: hp attribute nulled on that date, attribute still present
        let r = store.relation("chwab", "r").unwrap();
        let day = r.iter().find(|t| t.attr("date") == Some(&dval("3/3/85"))).unwrap();
        assert!(day.attr("hp").unwrap().is_null());
        // ource: tuple gone from hp relation
        assert_eq!(store.relation("ource", "hp").unwrap().len(), 1);
    }

    #[test]
    fn delstk_partial_bindings_delete_wider() {
        // no date → all dates for hp
        let mut store = base_store();
        let reg = registry(DEL_STK);
        call(&reg, &mut store, "?.dbU.delStk(.stk=hp)").unwrap();
        assert_eq!(store.relation("euter", "r").unwrap().len(), 1, "only ibm remains");
        assert!(store.relation("ource", "hp").unwrap().is_empty());
        // structure preserved: relations/attributes still exist
        assert!(store.relation_names("ource").unwrap().iter().any(|n| n == "hp"));
    }

    #[test]
    fn delstk_no_bindings_clears_values_not_structure() {
        let mut store = base_store();
        let reg = registry(DEL_STK);
        call(&reg, &mut store, "?.dbU.delStk(.stk=S, .date=D)").unwrap();
        assert!(store.relation("euter", "r").unwrap().is_empty());
        assert!(store.relation("ource", "hp").unwrap().is_empty());
        assert!(store.relation("ource", "ibm").unwrap().is_empty());
        // chwab keeps its attribute names (paper: "the structure of the
        // database is not changed")
        assert!(store.relation_names("chwab").unwrap().iter().any(|n| n == "r"));
    }

    #[test]
    fn rmstk_removes_metadata() {
        let mut store = base_store();
        let reg = registry(RM_STK);
        call(&reg, &mut store, "?.dbU.rmStk(.stk=hp)").unwrap();
        // euter: data rows gone
        assert_eq!(store.relation("euter", "r").unwrap().len(), 1);
        // chwab: hp attribute deleted from every tuple
        for t in store.relation("chwab", "r").unwrap().iter() {
            assert!(t.attr("hp").is_none());
        }
        // ource: whole relation dropped
        assert!(store.relation("ource", "hp").is_err());
        assert!(store.relation("ource", "ibm").is_ok());
    }

    #[test]
    fn insstk_requires_all_parameters() {
        let mut store = base_store();
        let reg = registry(INS_STK);
        // fully bound: succeeds in all three schemata (using an existing
        // date — the chwab clause updates that date's tuple)
        call(&reg, &mut store, "?.dbU.insStk(.stk=sun, .date=3/3/85, .price=30)").unwrap();
        assert_eq!(store.relation("euter", "r").unwrap().len(), 4);
        assert!(store.relation("ource", "sun").unwrap().len() == 1);
        let r = store.relation("chwab", "r").unwrap();
        assert!(r.iter().any(|t| t.attr("sun").is_some()));

        // missing price: rejected before any mutation
        let before = store.relation("euter", "r").unwrap().clone();
        let err = call(&reg, &mut store, "?.dbU.insStk(.stk=x, .date=3/6/85)").unwrap_err();
        assert!(matches!(err, EvalError::InsufficientBindings { .. }), "{err}");
        assert_eq!(&before, store.relation("euter", "r").unwrap());
    }

    #[test]
    fn unknown_parameter_rejected() {
        let mut store = base_store();
        let reg = registry(DEL_STK);
        let err = call(&reg, &mut store, "?.dbU.delStk(.bogus=1)").unwrap_err();
        assert!(matches!(err, EvalError::UnknownParameter { .. }));
    }

    #[test]
    fn unknown_program() {
        let reg = registry(DEL_STK);
        let Statement::Request(req) = parse_statement("?.dbU.nope(.a=1)").unwrap() else {
            panic!()
        };
        assert!(reg.match_call(&req.items[0]).is_none());
    }

    #[test]
    fn programs_compose_nonrecursively() {
        let mut reg = registry(DEL_STK);
        // wipeStk deletes everywhere then logs
        let src = "
            .dbU.wipeStk(.stk=S) -> .dbU.delStk(.stk=S) ;
            .dbU.wipeStk(.stk=S) -> .audit.log+(.removed=S) ;
        ";
        for stmt in parse_program(src).unwrap() {
            let Statement::Program(p) = stmt else { panic!() };
            reg.register(&p).unwrap();
        }
        let mut store = base_store();
        call(&reg, &mut store, "?.dbU.wipeStk(.stk=hp)").unwrap();
        assert_eq!(store.relation("euter", "r").unwrap().len(), 1);
        assert_eq!(store.relation("audit", "log").unwrap().len(), 1);
    }

    #[test]
    fn recursion_rejected() {
        let mut reg = ProgramRegistry::new();
        let stmts = parse_program(
            ".dbU.a(.x=X) -> .dbU.b(.x=X) ;
             .dbU.b(.x=X) -> .dbU.a(.x=X) ;",
        )
        .unwrap();
        let Statement::Program(p1) = &stmts[0] else { panic!() };
        let Statement::Program(p2) = &stmts[1] else { panic!() };
        reg.register(p1).unwrap();
        let err = reg.register(p2).unwrap_err();
        assert!(matches!(err, EvalError::RecursiveProgram(_)));
        // failed registration rolled back
        assert_eq!(reg.len(), 1);
    }

    #[test]
    fn self_recursion_rejected() {
        let mut reg = ProgramRegistry::new();
        let stmts = parse_program(".dbU.a(.x=X) -> .dbU.a(.x=X) ;").unwrap();
        let Statement::Program(p) = &stmts[0] else { panic!() };
        assert!(matches!(reg.register(p), Err(EvalError::RecursiveProgram(_))));
    }

    #[test]
    fn view_update_program_keys() {
        let mut reg = ProgramRegistry::new();
        let stmts = parse_program(
            ".dbE.r+(.date=D,.stkCode=S,.clsPrice=P) -> .dbU.insStk(.stk=S,.date=D,.price=P) ;",
        )
        .unwrap();
        // need insStk registered first for acyclicity bookkeeping? No —
        // calls to unregistered names simply aren't matched as calls.
        let Statement::Program(p) = &stmts[0] else { panic!() };
        reg.register(p).unwrap();
        let key = reg.keys().next().unwrap();
        assert_eq!(key.to_string(), ".dbE.r+");
        assert_eq!(key.sign, Some(Sign::Plus));
    }

    #[test]
    fn query_dependent_clause_body() {
        // a program whose body first queries, then updates per binding
        let mut store = base_store();
        let reg = registry(
            ".dbU.bump(.stk=S) ->
                .euter.r(.stkCode=S,.date=D,.clsPrice=C),
                .euter.r-(.stkCode=S,.date=D,.clsPrice=C),
                .euter.r+(.stkCode=S,.date=D,.clsPrice=C+1) ;",
        );
        call(&reg, &mut store, "?.dbU.bump(.stk=hp)").unwrap();
        let Statement::Request(q) =
            parse_statement("?.euter.r(.stkCode=hp,.date=3/3/85,.clsPrice=51)").unwrap()
        else {
            panic!()
        };
        assert!(Evaluator::with_defaults(&store).query(&q).unwrap().is_true());
    }

    #[test]
    fn update_scope_extraction() {
        let Statement::Request(req) = parse_statement("?.euter.r-(.stkCode=hp)").unwrap() else {
            panic!()
        };
        assert_eq!(
            update_scope(&req.items[0]),
            ChangeScope::Relation { db: Name::new("euter"), rel: Name::new("r") }
        );
        let Statement::Request(req) = parse_statement("?.ource-.S").unwrap() else { panic!() };
        assert_eq!(update_scope(&req.items[0]), ChangeScope::Database { db: Name::new("ource") });
    }
}
