//! Evaluation errors.

use idl_lang::Var;
use idl_object::{Kind, Name};
use std::fmt;

/// Errors raised during evaluation of queries, updates, rules or programs.
#[derive(Clone, PartialEq, Debug)]
pub enum EvalError {
    /// A term needed a ground value but a variable was unbound (e.g. an
    /// arithmetic operand, a `+` payload, or a non-equality comparison with
    /// an unbound variable).
    Uninstantiated(Var),
    /// An arithmetic operation on non-numeric / incompatible operands.
    BadArith(String),
    /// Update expression applied to an object of the wrong category
    /// (§5.2: "the expression is in error and the results are undefined" —
    /// we define them: a reported error).
    KindMismatch {
        /// Category the expression requires.
        expected: Kind,
        /// Category of the object found.
        found: Kind,
        /// What was being evaluated, for the message.
        context: String,
    },
    /// A higher-order attribute variable was bound to a non-string object.
    BadAttrBinding(Var),
    /// Update attempted on a derived (view) object without a registered
    /// view-update program (§7.1: `+`/`-` are "allowed only on extensional
    /// objects").
    UpdateOnDerived(String),
    /// Call to an unknown update program.
    NoSuchProgram(String),
    /// An update-program call left required parameters unbound
    /// (binding-signature violation, §7.1's `insStk` discussion).
    InsufficientBindings {
        /// Program name.
        program: String,
        /// The parameter that must be bound.
        missing: Name,
    },
    /// An argument was supplied that is not in the program's signature.
    UnknownParameter {
        /// Program name.
        program: String,
        /// The unexpected parameter.
        param: Name,
    },
    /// Update programs may not be (mutually) recursive (§7.1).
    RecursiveProgram(String),
    /// Rule set is not stratified through negation.
    NotStratified(String),
    /// Fixpoint iteration exceeded the safety bound.
    FixpointDiverged(usize),
    /// Query evaluation result exceeded the configured limit.
    TooManyResults(usize),
    /// Malformed expression for the operation attempted.
    Malformed(String),
    /// Underlying storage failure.
    Storage(String),
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalError::Uninstantiated(v) => {
                write!(f, "variable {v} is not sufficiently instantiated")
            }
            EvalError::BadArith(m) => write!(f, "arithmetic error: {m}"),
            EvalError::KindMismatch { expected, found, context } => {
                write!(f, "{context}: expected a {expected} object, found a {found} object")
            }
            EvalError::BadAttrBinding(v) => {
                write!(f, "attribute variable {v} bound to a non-name object")
            }
            EvalError::UpdateOnDerived(p) => {
                write!(f, "cannot update derived object {p} directly; define an update program")
            }
            EvalError::NoSuchProgram(p) => write!(f, "no update program named {p}"),
            EvalError::InsufficientBindings { program, missing } => {
                write!(f, "call to {program} requires parameter .{missing} to be bound")
            }
            EvalError::UnknownParameter { program, param } => {
                write!(f, "program {program} has no parameter .{param}")
            }
            EvalError::RecursiveProgram(p) => {
                write!(f, "update program {p} is recursive (disallowed, §7.1)")
            }
            EvalError::NotStratified(m) => write!(f, "rule set is not stratified: {m}"),
            EvalError::FixpointDiverged(n) => {
                write!(f, "view fixpoint did not converge within {n} iterations")
            }
            EvalError::TooManyResults(n) => write!(f, "query exceeded result limit of {n}"),
            EvalError::Malformed(m) => write!(f, "malformed expression: {m}"),
            EvalError::Storage(m) => write!(f, "storage error: {m}"),
        }
    }
}

impl std::error::Error for EvalError {}

impl From<idl_storage::StorageError> for EvalError {
    fn from(e: idl_storage::StorageError) -> Self {
        EvalError::Storage(e.to_string())
    }
}

/// Result alias.
pub type EvalResult<T> = Result<T, EvalError>;
