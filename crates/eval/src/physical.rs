//! Physical plan IR — the compiled form of §4.2–§4.3 query evaluation.
//!
//! [`crate::compile`] lowers a `lang::Expr` into a [`PhysOp`] operator tree
//! *once*; [`Evaluator::eval_compiled`] then executes that tree any number
//! of times. Everything the tree-walk interpreter decides per call is
//! decided at compile time instead:
//!
//! * **conjunct order** — the planner's reordering is baked into the field
//!   list, so no per-call clone of the AST;
//! * **index-probe candidates** — a relation scan carries the ordered list
//!   of probeable fields ([`ProbePlan`]); at run time the first candidate
//!   whose key term is ground wins, exactly reproducing the interpreter's
//!   probe choice;
//! * **binder vs filter** — `= X` positions that can bind are split from
//!   plain comparisons ([`PhysOp::Bind`] vs [`PhysOp::Filter`]).
//!
//! The executor is deliberately a method-for-method mirror of
//! `Evaluator::satisfy_at`: the differential battery in
//! `tests/prop_compile_differential.rs` holds the two pipelines to
//! byte-identical universes and answer sets.

use crate::arith::try_eval_term;
use crate::error::EvalResult;
use crate::query::{bound_ref, compare_query, numeric_twin, range_bounds, Evaluator, Loc};
use crate::rules::PredPat;
use crate::subst::Subst;
use idl_lang::{RelOp, Term, Var};
use idl_object::{Atom, Name, SetObj, Value};
use idl_storage::IndexKind;
use std::fmt;

/// A compiled physical operator. One node per AST node of the (planned)
/// source expression — compilation changes representation, never
/// semantics.
#[derive(Clone, Debug, PartialEq)]
pub enum PhysOp {
    /// The empty expression: always satisfied.
    Epsilon,
    /// Negation as failure over the same object.
    Not(Box<PhysOp>),
    /// Atomic comparison `α t` against the current object; errors if the
    /// term has unbound variables (it can never bind).
    Filter(RelOp, Term),
    /// `= X` against the current object: compares when `X` is bound,
    /// binds `X` to the object (aggregates included, §4.1) when not.
    Bind(Var),
    /// Object-free comparison between two terms, `t₁ α t₂`; either side
    /// may bind when `α` is `=` and the other side is ground.
    Constraint(Term, RelOp, Term),
    /// Conjunction over tuple fields, threaded left to right in the
    /// (planner-chosen) order of the field list.
    Tuple(Vec<PhysField>),
    /// Set scan `(exp)`: some element satisfies the inner operator.
    /// When the walk is at a stored relation, `probes` lists the index
    /// access paths to try before falling back to the full scan.
    Scan {
        /// Operator each element is checked against.
        inner: Box<PhysOp>,
        /// Probe candidates in priority order (equalities before ranges,
        /// field order within each class).
        probes: Vec<ProbePlan>,
    },
    /// Semi-naive delta scan: like [`PhysOp::Scan`] at a stored relation,
    /// but only the facts first derived in the previous fixpoint
    /// iteration (the evaluator's delta table, sliced to the evaluator's
    /// shard) are enumerated. Outside the fixpoint — no delta table
    /// installed — it degrades to the full scan, which is always a sound
    /// superset. Deltas are small, so no index probes.
    DeltaScan {
        /// Operator each delta fact is checked against.
        inner: Box<PhysOp>,
    },
}

/// One compiled tuple field: attribute selector plus the operator applied
/// to the attribute's value.
#[derive(Clone, Debug, PartialEq)]
pub struct PhysField {
    /// Attribute position: a constant name, or a (possibly higher-order)
    /// variable that enumerates attribute names when unbound (§4.3).
    pub attr: PhysAttr,
    /// Operator applied to the selected child object.
    pub inner: PhysOp,
}

/// A compiled attribute selector.
#[derive(Clone, Debug, PartialEq)]
pub enum PhysAttr {
    /// A fixed attribute name.
    Const(Name),
    /// An attribute variable: looked up when bound, enumerating the
    /// tuple's attribute names when not.
    Var(Var),
}

/// A candidate index probe for a stored-relation scan. Chosen at run time:
/// the first candidate whose key term evaluates to a ground value is used;
/// probes yield supersets and every candidate tuple is re-checked.
#[derive(Clone, Debug, PartialEq)]
pub struct ProbePlan {
    /// The indexed attribute.
    pub attr: Name,
    /// Point lookup or range scan.
    pub kind: ProbeKind,
    /// The key term (evaluated under the ambient substitution).
    pub term: Term,
}

/// The access-path class of a [`ProbePlan`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ProbeKind {
    /// Hash-index point lookup (plus the numeric twin key).
    Eq,
    /// B-tree range scan for `attr op key`.
    Range(RelOp),
}

/// A compiled request body or rule body: one plan per conjunct, threaded
/// left to right over the substitution set exactly as
/// [`Evaluator::eval_items`] threads raw items.
#[derive(Clone, Debug, PartialEq)]
pub struct CompiledItems {
    items: Vec<PhysOp>,
}

impl CompiledItems {
    pub(crate) fn new(items: Vec<PhysOp>) -> Self {
        CompiledItems { items }
    }

    /// The compiled per-conjunct plans.
    pub fn items(&self) -> &[PhysOp] {
        &self.items
    }

    /// Multi-line, indented rendering of the plan (what `idl --explain`
    /// prints).
    pub fn explain(&self) -> String {
        let mut out = String::new();
        for (i, item) in self.items.iter().enumerate() {
            if self.items.len() > 1 {
                out.push_str(&format!("conjunct {}:\n", i + 1));
                item.render(&mut out, 1);
            } else {
                item.render(&mut out, 0);
            }
        }
        out
    }
}

impl fmt::Display for CompiledItems {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.explain())
    }
}

impl PhysOp {
    fn render(&self, out: &mut String, depth: usize) {
        let pad = "  ".repeat(depth);
        match self {
            PhysOp::Epsilon => out.push_str(&format!("{pad}epsilon\n")),
            PhysOp::Not(inner) => {
                out.push_str(&format!("{pad}not\n"));
                inner.render(out, depth + 1);
            }
            PhysOp::Filter(op, term) => out.push_str(&format!("{pad}filter {op} {term}\n")),
            PhysOp::Bind(v) => out.push_str(&format!("{pad}bind {}\n", v.name())),
            PhysOp::Constraint(a, op, b) => {
                out.push_str(&format!("{pad}constraint {a} {op} {b}\n"))
            }
            PhysOp::Tuple(fields) => {
                out.push_str(&format!("{pad}tuple\n"));
                for f in fields {
                    match &f.attr {
                        PhysAttr::Const(n) => out.push_str(&format!("{pad}  .{n}:\n")),
                        PhysAttr::Var(v) => {
                            out.push_str(&format!("{pad}  .{} (enumerates attrs):\n", v.name()))
                        }
                    }
                    f.inner.render(out, depth + 2);
                }
            }
            PhysOp::Scan { inner, probes } => {
                if probes.is_empty() {
                    out.push_str(&format!("{pad}scan\n"));
                } else {
                    let specs: Vec<String> = probes
                        .iter()
                        .map(|p| match p.kind {
                            ProbeKind::Eq => format!("eq(.{} = {})", p.attr, p.term),
                            ProbeKind::Range(op) => format!("range(.{} {} {})", p.attr, op, p.term),
                        })
                        .collect();
                    out.push_str(&format!("{pad}scan [probe {}]\n", specs.join(", ")));
                }
                inner.render(out, depth + 1);
            }
            PhysOp::DeltaScan { inner } => {
                out.push_str(&format!("{pad}delta-scan\n"));
                inner.render(out, depth + 1);
            }
        }
    }
}

/// The statically-known level of the universe walk, tracked while
/// analysing a plan (the compile-time mirror of [`Loc`]): attribute
/// positions held by variables are `None` in the resulting pattern.
#[derive(Clone, Debug)]
enum Lvl {
    Root,
    Db(Option<Name>),
    Rel(Option<Name>, Option<Name>),
    Off,
}

impl Lvl {
    fn descend(&self, attr: &PhysAttr) -> Lvl {
        let name = match attr {
            PhysAttr::Const(n) => Some(n.clone()),
            PhysAttr::Var(_) => None,
        };
        match self {
            Lvl::Root => Lvl::Db(name),
            Lvl::Db(db) => Lvl::Rel(db.clone(), name),
            Lvl::Rel(..) | Lvl::Off => Lvl::Off,
        }
    }
}

/// Pre-order collection of the positive relation-level scans a delta can
/// be anchored at. Scans under negation are excluded: the delta
/// restriction is only sound for positive occurrences (and stratification
/// guarantees negated subgoals never change within a stratum).
fn collect_occurrences(op: &PhysOp, lvl: Lvl, out: &mut Vec<PredPat>) {
    match op {
        PhysOp::Tuple(fields) => {
            for f in fields {
                collect_occurrences(&f.inner, lvl.descend(&f.attr), out);
            }
        }
        PhysOp::Scan { .. } => {
            if let Lvl::Rel(db, rel) = lvl {
                out.push(PredPat { db, rel });
            }
        }
        _ => {}
    }
}

fn rewrite_occurrence(op: &PhysOp, lvl: Lvl, counter: &mut usize, target: usize) -> PhysOp {
    match op {
        PhysOp::Tuple(fields) => PhysOp::Tuple(
            fields
                .iter()
                .map(|f| PhysField {
                    attr: f.attr.clone(),
                    inner: rewrite_occurrence(&f.inner, lvl.descend(&f.attr), counter, target),
                })
                .collect(),
        ),
        PhysOp::Scan { inner, probes } => {
            if matches!(lvl, Lvl::Rel(..)) {
                let here = *counter;
                *counter += 1;
                if here == target {
                    return PhysOp::DeltaScan { inner: inner.clone() };
                }
            }
            PhysOp::Scan { inner: inner.clone(), probes: probes.clone() }
        }
        other => other.clone(),
    }
}

impl CompiledItems {
    /// The stored-relation scan occurrences a semi-naive delta can be
    /// anchored at: every positive relation-level `Scan`, pre-order
    /// across conjuncts, with the statically-known pattern of the
    /// relation it scans. The index into the returned vector numbers the
    /// occurrence for [`CompiledItems::delta_variant`].
    pub fn delta_occurrences(&self) -> Vec<PredPat> {
        let mut out = Vec::new();
        for item in &self.items {
            collect_occurrences(item, Lvl::Root, &mut out);
        }
        out
    }

    /// A copy of this plan with the `occ`-th delta occurrence (as
    /// numbered by [`CompiledItems::delta_occurrences`]) rewritten from a
    /// full relation scan to a [`PhysOp::DeltaScan`] — the `(Δ ⋈ full)`
    /// plan for that occurrence.
    pub fn delta_variant(&self, occ: usize) -> CompiledItems {
        let mut counter = 0usize;
        let items = self
            .items
            .iter()
            .map(|item| rewrite_occurrence(item, Lvl::Root, &mut counter, occ))
            .collect();
        CompiledItems::new(items)
    }
}

impl<'a> Evaluator<'a> {
    /// Executes a compiled body: threads the per-conjunct plans over the
    /// seed substitutions left to right, sorting and deduplicating after
    /// each conjunct (the same determinism discipline as the tree walk).
    pub fn eval_compiled(&self, plan: &CompiledItems, seed: Vec<Subst>) -> EvalResult<Vec<Subst>> {
        let mut current = seed;
        for item in plan.items() {
            let mut next = Vec::new();
            for s in &current {
                self.exec_at(self.store.universe(), item, s, &Loc::Root, &mut next)?;
                self.check_limit(next.len())?;
            }
            next.sort();
            next.dedup();
            current = next;
            if current.is_empty() {
                break;
            }
        }
        Ok(current)
    }

    fn exec_at(
        &self,
        obj: &Value,
        op: &PhysOp,
        subst: &Subst,
        loc: &Loc,
        out: &mut Vec<Subst>,
    ) -> EvalResult<()> {
        match op {
            PhysOp::Epsilon => {
                out.push(subst.clone());
                Ok(())
            }
            PhysOp::Not(inner) => {
                let mut tmp = Vec::new();
                self.exec_at(obj, inner, subst, loc, &mut tmp)?;
                if tmp.is_empty() {
                    out.push(subst.clone());
                }
                Ok(())
            }
            PhysOp::Filter(rel, term) => self.atomic(obj, *rel, term, subst, out),
            PhysOp::Bind(v) => {
                // The null atom satisfies no atomic expression (§5.2).
                if obj.is_null() {
                    return Ok(());
                }
                match subst.get(v) {
                    Some(val) => {
                        if compare_query(obj, RelOp::Eq, &val.clone()) {
                            out.push(subst.clone());
                        }
                    }
                    None => {
                        if let Some(s2) = subst.bind(v, obj) {
                            out.push(s2);
                        }
                    }
                }
                Ok(())
            }
            PhysOp::Constraint(a, rel, b) => self.constraint(a, *rel, b, subst, out),
            PhysOp::Tuple(fields) => {
                if obj.as_tuple().is_none() {
                    return Ok(());
                }
                self.exec_tuple(obj, fields, 0, subst, loc, out)
            }
            PhysOp::Scan { inner, probes } => {
                let Some(s) = obj.as_set() else { return Ok(()) };
                self.exec_scan(s, inner, probes, subst, loc, out)
            }
            PhysOp::DeltaScan { inner } => {
                let Some(s) = obj.as_set() else { return Ok(()) };
                if let (Some(table), Loc::Rel(db, rel)) = (self.delta, loc) {
                    if let Some(facts) = table.get(&(db.clone(), rel.clone())) {
                        // This evaluator's shard of the delta; shards
                        // tile the vector, so the union over shard tasks
                        // is the whole delta.
                        let (shard, shards) = self.chunk;
                        let lo = shard * facts.len() / shards;
                        let hi = ((shard + 1) * facts.len() / shards).min(facts.len());
                        for fact in &facts[lo..hi] {
                            self.exec_at(fact, inner, subst, &Loc::Off, out)?;
                            self.check_limit(out.len())?;
                        }
                    }
                    return Ok(());
                }
                // No delta table installed: degrade to the full scan.
                for elem in s.iter() {
                    self.exec_at(elem, inner, subst, &Loc::Off, out)?;
                    self.check_limit(out.len())?;
                }
                Ok(())
            }
        }
    }

    fn exec_tuple(
        &self,
        obj: &Value,
        fields: &[PhysField],
        i: usize,
        subst: &Subst,
        loc: &Loc,
        out: &mut Vec<Subst>,
    ) -> EvalResult<()> {
        if i == fields.len() {
            out.push(subst.clone());
            return Ok(());
        }
        let field = &fields[i];
        let t = obj.as_tuple().expect("caller checked tuple kind");
        match &field.attr {
            PhysAttr::Const(name) => {
                let Some(child) = t.get(name.as_str()) else { return Ok(()) };
                let child_loc = loc.descend(name);
                let mut exts = Vec::new();
                self.exec_at(child, &field.inner, subst, &child_loc, &mut exts)?;
                for s2 in exts {
                    self.exec_tuple(obj, fields, i + 1, &s2, loc, out)?;
                    self.check_limit(out.len())?;
                }
                Ok(())
            }
            PhysAttr::Var(v) => {
                if let Some(bound) = subst.get(v) {
                    // Bound higher-order variable: must name an attribute.
                    let Value::Atom(Atom::Str(name)) = bound else {
                        return Ok(()); // non-name binding satisfies nothing
                    };
                    let name = name.clone();
                    let Some(child) = t.get(name.as_str()) else { return Ok(()) };
                    let child_loc = loc.descend(&name);
                    let mut exts = Vec::new();
                    self.exec_at(child, &field.inner, subst, &child_loc, &mut exts)?;
                    for s2 in exts {
                        self.exec_tuple(obj, fields, i + 1, &s2, loc, out)?;
                        self.check_limit(out.len())?;
                    }
                    Ok(())
                } else {
                    // §4.3: the higher-order variable ranges over the
                    // tuple's attribute names.
                    for (name, child) in t.iter() {
                        let Some(s1) = subst.bind(v, &Value::str(name.as_str())) else {
                            continue;
                        };
                        let child_loc = loc.descend(name);
                        let mut exts = Vec::new();
                        self.exec_at(child, &field.inner, &s1, &child_loc, &mut exts)?;
                        for s2 in exts {
                            self.exec_tuple(obj, fields, i + 1, &s2, loc, out)?;
                            self.check_limit(out.len())?;
                        }
                    }
                    Ok(())
                }
            }
        }
    }

    fn exec_scan(
        &self,
        set: &SetObj,
        inner: &PhysOp,
        probes: &[ProbePlan],
        subst: &Subst,
        loc: &Loc,
        out: &mut Vec<Subst>,
    ) -> EvalResult<()> {
        // Index probe when scanning a stored relation: the first candidate
        // whose key term is ground under the ambient substitution wins —
        // the same choice `probe_spec` makes in the interpreter. Candidates
        // are borrowed from the (Arc-held) index — no tuple cloning.
        if self.opts.use_indexes {
            if let Loc::Rel(db, rel) = loc {
                for probe in probes {
                    let Ok(key) = try_eval_term(&probe.term, subst) else { continue };
                    match probe.kind {
                        ProbeKind::Eq => {
                            let index = self.fetch_index(db, rel, &probe.attr, IndexKind::Hash)?;
                            let mut keys = vec![key];
                            if let Some(twin) = numeric_twin(&keys[0]) {
                                keys.push(twin);
                            }
                            for key in &keys {
                                for cand in index.lookup_eq(key) {
                                    self.exec_at(cand, inner, subst, &Loc::Off, out)?;
                                    self.check_limit(out.len())?;
                                }
                            }
                        }
                        ProbeKind::Range(op) => {
                            let index = self.fetch_index(db, rel, &probe.attr, IndexKind::BTree)?;
                            for (lo, hi) in &range_bounds(op, &key) {
                                if let Some(hits) = index.lookup_range(bound_ref(lo), bound_ref(hi))
                                {
                                    for cand in hits {
                                        self.exec_at(cand, inner, subst, &Loc::Off, out)?;
                                        self.check_limit(out.len())?;
                                    }
                                }
                            }
                        }
                    }
                    return Ok(());
                }
            }
        }
        for elem in set.iter() {
            self.exec_at(elem, inner, subst, &Loc::Off, out)?;
            self.check_limit(out.len())?;
        }
        Ok(())
    }
}
