//! Conjunct reordering (the planner).
//!
//! Tuple expressions are conjunctions evaluated left to right with bindings
//! flowing sideways. The written order is rarely the best order: the paper's
//! own examples write the join variable *after* selective constants, and put
//! negations wherever reads best. The planner reorders each tuple
//! expression's fields greedily:
//!
//! 1. only *eligible* fields run — those whose required variables
//!    (operands of non-`=` comparisons, arithmetic, and anything under a
//!    negation) are already bound;
//! 2. among eligible fields, the cheapest category first: ground equality
//!    probes, then ranges, then binders/navigation, then negation;
//! 3. expressions containing update signs are left untouched — update
//!    order is semantically significant (§5.2).
//!
//! Reordering never changes answers (property-tested against the naive
//! evaluator) because conjunction is commutative for pure queries; it only
//! changes evaluation order and whether an index probe is available early.

use idl_lang::{AttrTerm, Expr, Field, RelOp, Term, Var};
use std::collections::BTreeSet;

/// Reorders conjuncts inside a query expression. Expressions containing
/// updates are returned unchanged.
pub fn plan_query_expr(expr: &Expr) -> Expr {
    if !expr.is_query() {
        return expr.clone();
    }
    let mut bound = BTreeSet::new();
    plan_rec(expr, &mut bound)
}

fn plan_rec(expr: &Expr, bound: &mut BTreeSet<Var>) -> Expr {
    match expr {
        Expr::Tuple(fields) => Expr::Tuple(order_fields(fields, bound)),
        Expr::Set(inner) => Expr::Set(Box::new(plan_rec(inner, bound))),
        Expr::Not(inner) => {
            // Inside a negation, outer bindings are visible but nothing
            // escapes; plan with a scratch copy.
            let mut scratch = bound.clone();
            Expr::Not(Box::new(plan_rec(inner, &mut scratch)))
        }
        Expr::Atomic(..) | Expr::Constraint(..) | Expr::Epsilon => {
            produce(expr, bound);
            expr.clone()
        }
        Expr::AtomicUpdate(..) | Expr::SetUpdate(..) => expr.clone(),
    }
}

fn order_fields(fields: &[Field], bound: &mut BTreeSet<Var>) -> Vec<Field> {
    let mut remaining: Vec<usize> = (0..fields.len()).collect();
    let mut out = Vec::with_capacity(fields.len());
    while !remaining.is_empty() {
        // Find eligible fields (required vars all bound).
        let pick_pos = {
            let mut best: Option<(usize, u8)> = None; // (position in remaining, score)
            for (pos, &idx) in remaining.iter().enumerate() {
                let f = &fields[idx];
                if !required_vars_field(f).iter().all(|v| bound.contains(v)) {
                    continue;
                }
                let s = score(f, bound);
                match best {
                    Some((_, bs)) if bs <= s => {}
                    _ => best = Some((pos, s)),
                }
            }
            // No eligible field: fall back to the first remaining (its
            // evaluation will raise Uninstantiated, same as unplanned).
            best.map(|(pos, _)| pos).unwrap_or(0)
        };
        let idx = remaining.remove(pick_pos);
        let f = &fields[idx];
        // Plan the field's own sub-expression with current bindings, then
        // account for what it binds.
        let planned_expr = plan_rec(&f.expr, &mut bound.clone());
        if let AttrTerm::Var(v) = &f.attr {
            bound.insert(v.clone());
        }
        produce(&f.expr, bound);
        out.push(Field { sign: f.sign, attr: f.attr.clone(), expr: planned_expr });
    }
    out
}

/// Cost category: lower runs earlier.
fn score(f: &Field, bound: &BTreeSet<Var>) -> u8 {
    let attr_penalty = match &f.attr {
        AttrTerm::Const(_) => 0,
        AttrTerm::Var(v) if bound.contains(v) => 0,
        AttrTerm::Var(_) => 2, // enumerating attribute names
    };
    attr_penalty + expr_score(&f.expr, bound)
}

fn expr_score(e: &Expr, bound: &BTreeSet<Var>) -> u8 {
    match e {
        Expr::Atomic(RelOp::Eq, t) if term_ground(t, bound) => 0,
        Expr::Atomic(op, t) if *op != RelOp::Eq && *op != RelOp::Ne && term_ground(t, bound) => 1,
        Expr::Atomic(..) => 3,
        Expr::Set(_) | Expr::Tuple(_) if has_ground_eq(e, bound) => 1,
        Expr::Set(_) | Expr::Tuple(_) => 3,
        Expr::Epsilon => 4,
        Expr::Constraint(..) => 2,
        Expr::Not(_) => 6,
        Expr::AtomicUpdate(..) | Expr::SetUpdate(..) => 5,
    }
}

/// Whether the (nested) expression contains a ground equality at its top
/// tuple level — a good index-probe candidate.
fn has_ground_eq(e: &Expr, bound: &BTreeSet<Var>) -> bool {
    match e {
        Expr::Set(inner) => has_ground_eq(inner, bound),
        Expr::Tuple(fields) => fields
            .iter()
            .any(|f| matches!(&f.expr, Expr::Atomic(RelOp::Eq, t) if term_ground(t, bound))),
        _ => false,
    }
}

fn term_ground(t: &Term, bound: &BTreeSet<Var>) -> bool {
    match t {
        Term::Const(_) => true,
        Term::Var(v) => bound.contains(v),
        Term::Arith(_, a, b) => term_ground(a, bound) && term_ground(b, bound),
    }
}

/// Variables a field needs bound before it can run without
/// `Uninstantiated` errors.
fn required_vars_field(f: &Field) -> BTreeSet<Var> {
    let mut req = BTreeSet::new();
    required_vars(&f.expr, &mut req);
    req
}

fn required_vars(e: &Expr, out: &mut BTreeSet<Var>) {
    match e {
        Expr::Epsilon => {}
        Expr::Atomic(op, t) => {
            match (op, t) {
                // `= X` binds; safe unbound.
                (RelOp::Eq, Term::Var(_)) => {}
                (RelOp::Eq, Term::Const(_)) => {}
                _ => t.collect_vars(out),
            }
        }
        Expr::Constraint(a, op, b) => {
            // `X = ground` can bind X; conservatively only plain vars on
            // one side are exempt.
            if *op == RelOp::Eq {
                match (a, b) {
                    (Term::Var(_), rhs) => rhs.collect_vars(out),
                    (lhs, Term::Var(_)) => lhs.collect_vars(out),
                    _ => {
                        a.collect_vars(out);
                        b.collect_vars(out);
                    }
                }
            } else {
                a.collect_vars(out);
                b.collect_vars(out);
            }
        }
        Expr::Tuple(fields) => {
            // A nested tuple runs its own ordering; a variable is required
            // here only if required by *every* ordering — approximate by
            // requiring those that are required no matter what binds first:
            // i.e. required minus what sibling fields can produce.
            let mut req = BTreeSet::new();
            let mut prod = BTreeSet::new();
            for f in fields {
                required_vars(&f.expr, &mut req);
                produced_vars(&f.expr, &mut prod);
                if let AttrTerm::Var(v) = &f.attr {
                    prod.insert(v.clone());
                }
            }
            for v in req.difference(&prod) {
                out.insert(v.clone());
            }
        }
        Expr::Set(inner) => required_vars(inner, out),
        Expr::Not(inner) => {
            // Conservative: everything used under negation should be bound
            // unless the negation itself can bind it (it cannot — bindings
            // do not escape). Variables *only* used inside the negation are
            // existential; we cannot distinguish locally, so require those
            // that the negation cannot produce.
            let mut req = BTreeSet::new();
            required_vars(inner, &mut req);
            out.extend(req);
        }
        Expr::AtomicUpdate(_, t) => t.collect_vars(out),
        Expr::SetUpdate(_, inner) => required_vars(inner, out),
    }
}

fn produced_vars(e: &Expr, out: &mut BTreeSet<Var>) {
    match e {
        Expr::Atomic(RelOp::Eq, Term::Var(v)) => {
            out.insert(v.clone());
        }
        Expr::Constraint(a, RelOp::Eq, b) => {
            if let Term::Var(v) = a {
                out.insert(v.clone());
            }
            if let Term::Var(v) = b {
                out.insert(v.clone());
            }
        }
        Expr::Tuple(fields) => {
            for f in fields {
                if let AttrTerm::Var(v) = &f.attr {
                    out.insert(v.clone());
                }
                produced_vars(&f.expr, out);
            }
        }
        Expr::Set(inner) => produced_vars(inner, out),
        _ => {}
    }
}

fn produce(e: &Expr, bound: &mut BTreeSet<Var>) {
    let mut prod = BTreeSet::new();
    produced_vars(e, &mut prod);
    bound.extend(prod);
}

#[cfg(test)]
mod tests {
    use super::*;
    use idl_lang::parse_expr;

    fn field_order(e: &Expr) -> Vec<String> {
        // the order of fields in the innermost relation-scan tuple
        fn find(e: &Expr) -> Option<&Vec<Field>> {
            match e {
                Expr::Tuple(fs) => {
                    if fs.len() > 1 {
                        Some(fs)
                    } else {
                        find(&fs[0].expr)
                    }
                }
                Expr::Set(i) | Expr::Not(i) => find(i),
                _ => None,
            }
        }
        find(e).map(|fs| fs.iter().map(|f| f.attr.to_string()).collect()).unwrap_or_default()
    }

    #[test]
    fn ground_eq_moves_first() {
        let e = parse_expr(".euter.r(.clsPrice>60, .stkCode=hp, .date=D)").unwrap();
        let p = plan_query_expr(&e);
        assert_eq!(field_order(&p), vec!["stkCode", "clsPrice", "date"]);
    }

    #[test]
    fn negation_moves_last() {
        let e = parse_expr(".euter.r(¬(.x=1), .stkCode=hp)").unwrap_err();
        let _ = e; // negation of nested set is written differently; use field form
        let e = parse_expr(".euter.r(.a¬(.x=1), .stkCode=hp)").unwrap();
        let p = plan_query_expr(&e);
        assert_eq!(field_order(&p), vec!["stkCode", "a"]);
    }

    #[test]
    fn comparison_waits_for_binder() {
        // .clsPrice>P must not run before .P is bound — here P is bound by
        // a sibling within the same tuple expression.
        let e = parse_expr(".euter.r(.clsPrice>P, .prev=P)").unwrap();
        let p = plan_query_expr(&e);
        assert_eq!(field_order(&p), vec!["prev", "clsPrice"]);
    }

    #[test]
    fn update_exprs_untouched() {
        let e = parse_expr(".euter.r-(.b=2,.a=1)").unwrap();
        let p = plan_query_expr(&e);
        assert_eq!(e, p);
    }

    #[test]
    fn planning_is_idempotent() {
        for src in [
            ".euter.r(.clsPrice>60, .stkCode=hp, .date=D)",
            ".chwab.r(.date=D,.S=P)",
            ".X.Y(.stkCode)",
        ] {
            let e = parse_expr(src).unwrap();
            let p1 = plan_query_expr(&e);
            let p2 = plan_query_expr(&p1);
            assert_eq!(p1, p2, "{src}");
        }
    }
}
